// Property sweeps over the unsupervised layer: eigensolver invariants
// across matrix sizes, PCA variance accounting across dimensionalities,
// and k-means quality across cluster counts and seeds.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "ml/kernel.hpp"
#include "ml/kmeans.hpp"
#include "ml/pca.hpp"
#include "util/eigen.hpp"
#include "util/rng.hpp"

namespace xdmodml {
namespace {

// ---------------------------------------------------------------------
// Eigen: reconstruction and orthonormality for any size/seed.
// ---------------------------------------------------------------------
using EigenParam = std::tuple<int /*n*/, int /*seed*/>;

class EigenProperty : public ::testing::TestWithParam<EigenParam> {};

TEST_P(EigenProperty, ReconstructionAndTrace) {
  const auto [n, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  Matrix a(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      const double v = rng.normal();
      a(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) = v;
      a(static_cast<std::size_t>(j), static_cast<std::size_t>(i)) = v;
    }
  }
  const auto eig = eigen_symmetric(a);
  // Trace preserved: Σλ == Σ a_ii.
  double trace = 0.0;
  double eigsum = 0.0;
  for (int i = 0; i < n; ++i) {
    trace += a(static_cast<std::size_t>(i), static_cast<std::size_t>(i));
  }
  for (const auto w : eig.eigenvalues) eigsum += w;
  EXPECT_NEAR(trace, eigsum, 1e-8);
  // Av = λv for every pair.
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      double av = 0.0;
      for (int j = 0; j < n; ++j) {
        av += a(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) *
              eig.eigenvectors(static_cast<std::size_t>(j),
                               static_cast<std::size_t>(k));
      }
      EXPECT_NEAR(av,
                  eig.eigenvalues[static_cast<std::size_t>(k)] *
                      eig.eigenvectors(static_cast<std::size_t>(i),
                                       static_cast<std::size_t>(k)),
                  1e-7);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenProperty,
                         ::testing::Combine(::testing::Values(2, 5, 16,
                                                              48),
                                            ::testing::Values(1, 2)));

// ---------------------------------------------------------------------
// PCA: component scores are uncorrelated with variances = eigenvalues.
// ---------------------------------------------------------------------
class PcaProperty : public ::testing::TestWithParam<int> {};

TEST_P(PcaProperty, ScoresDecorrelatedWithEigenvalueVariance) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Matrix X;
  for (int i = 0; i < 400; ++i) {
    const double a = rng.normal(0.0, 3.0);
    const double b = rng.normal(0.0, 1.0);
    X.append_row(std::vector<double>{a + b, a - b,
                                     0.5 * a + rng.normal(0.0, 0.5)});
  }
  ml::Pca pca;
  pca.fit(X);
  const auto Z = pca.transform(X);
  const std::size_t d = Z.cols();
  for (std::size_t p = 0; p < d; ++p) {
    // Mean ~ 0.
    double mean = 0.0;
    for (std::size_t r = 0; r < Z.rows(); ++r) mean += Z(r, p);
    mean /= static_cast<double>(Z.rows());
    EXPECT_NEAR(mean, 0.0, 1e-9);
    // Variance == eigenvalue.
    double var = 0.0;
    for (std::size_t r = 0; r < Z.rows(); ++r) {
      var += (Z(r, p) - mean) * (Z(r, p) - mean);
    }
    var /= static_cast<double>(Z.rows() - 1);
    EXPECT_NEAR(var, pca.eigenvalues()[p],
                1e-6 * (1.0 + pca.eigenvalues()[p]));
    // Decorrelated with every other component.
    for (std::size_t q = p + 1; q < d; ++q) {
      double cov = 0.0;
      for (std::size_t r = 0; r < Z.rows(); ++r) {
        cov += Z(r, p) * Z(r, q);
      }
      cov /= static_cast<double>(Z.rows() - 1);
      EXPECT_NEAR(cov, 0.0, 1e-6 * (1.0 + pca.eigenvalues()[p]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PcaProperty, ::testing::Values(3, 7, 21));

// ---------------------------------------------------------------------
// K-means: assignments are nearest-centroid-consistent and inertia
// matches its definition, for any k and seed.
// ---------------------------------------------------------------------
using KMeansParam = std::tuple<int /*k*/, int /*seed*/>;

class KMeansProperty : public ::testing::TestWithParam<KMeansParam> {};

TEST_P(KMeansProperty, AssignmentsAndInertiaConsistent) {
  const auto [k, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  Matrix X;
  for (int i = 0; i < 240; ++i) {
    const int blob = i % 4;
    X.append_row(std::vector<double>{rng.normal(3.0 * blob, 0.8),
                                     rng.normal(blob % 2 * 4.0, 0.8)});
  }
  ml::KMeansConfig cfg;
  cfg.clusters = static_cast<std::size_t>(k);
  const auto result =
      ml::kmeans(X, cfg, static_cast<std::uint64_t>(seed) + 5);
  double inertia = 0.0;
  for (std::size_t r = 0; r < X.rows(); ++r) {
    const int assigned = result.assignments[r];
    EXPECT_EQ(ml::nearest_centroid(result.centroids, X.row(r)), assigned);
    inertia += ml::squared_distance(
        X.row(r),
        result.centroids.row(static_cast<std::size_t>(assigned)));
  }
  EXPECT_NEAR(inertia, result.inertia, 1e-6 * (1.0 + inertia));
  // Every cluster id in range.
  for (const int c : result.assignments) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, k);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, KMeansProperty,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Values(1, 2)));

}  // namespace
}  // namespace xdmodml
