// Tests for the thread pool and parallel_for.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace xdmodml {
namespace {

TEST(ThreadPool, DefaultHasWorkers) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForRejectsReversedRange) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(5, 4, [](std::size_t) {}),
               InvalidArgument);
}

TEST(ThreadPool, ParallelForRethrowsBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 10,
                                 [](std::size_t i) {
                                   if (i == 7) {
                                     throw std::runtime_error("bad item");
                                   }
                                 }),
               std::runtime_error);
}

// Counts body invocations currently executing; parallel_for must never
// return (even by exception) while this is non-zero — a live invocation
// still holds a reference to the caller's `body`.
struct InFlightGuard {
  explicit InFlightGuard(std::atomic<int>& counter) : counter_(counter) {
    counter_.fetch_add(1);
  }
  ~InFlightGuard() { counter_.fetch_sub(1); }
  std::atomic<int>& counter_;
};

TEST(ThreadPool, ParallelForJoinsAllChunksBeforeRethrow) {
  // Regression test: parallel_for used to rethrow the first failed
  // future immediately, abandoning the remaining futures — and a
  // std::future from a packaged_task does NOT block on destruction, so
  // still-running chunks kept executing against a `body` reference the
  // caller had already popped off its stack.  The fix joins every chunk
  // first and only then rethrows the first exception.
  ThreadPool pool(2);
  std::atomic<int> in_flight{0};
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(0, 64,
                        [&](std::size_t i) {
                          InFlightGuard guard(in_flight);
                          if (i == 0) throw std::runtime_error("bad item");
                          std::this_thread::sleep_for(
                              std::chrono::milliseconds(1));
                          ++completed;
                        }),
      std::runtime_error);
  // The call returned: nothing may still be running, and every chunk
  // other than the throwing one must have run to completion.  The
  // throw legitimately abandons the rest of its *own* chunk (the 7
  // indices sharing chunk 0 with i == 0), so 56 of the 63 non-throwing
  // indices are guaranteed; pre-fix the early rethrow left most chunks
  // unfinished or still running.
  EXPECT_EQ(in_flight.load(), 0);
  EXPECT_GE(completed.load(), 56);
}

TEST(ThreadPoolRanges, JoinsAllChunksBeforeRethrow) {
  ThreadPool pool(2);
  std::atomic<int> in_flight{0};
  std::atomic<int> completed{0};
  EXPECT_THROW(pool.parallel_for_ranges(
                   0, 8, 1,
                   [&](std::size_t lo, std::size_t) {
                     InFlightGuard guard(in_flight);
                     if (lo == 0) throw std::runtime_error("bad chunk");
                     std::this_thread::sleep_for(
                         std::chrono::milliseconds(20));
                     ++completed;
                   }),
               std::runtime_error);
  EXPECT_EQ(in_flight.load(), 0);
  EXPECT_EQ(completed.load(), 7);
}

TEST(ThreadPoolRanges, RethrowsFirstChunkInSubmissionOrderWhenSeveralFail) {
  // With several failing chunks, the one earliest in submission order
  // wins — deterministic, independent of which worker finished first.
  ThreadPool pool(2);
  std::string message;
  try {
    pool.parallel_for_ranges(0, 8, 1, [&](std::size_t lo, std::size_t) {
      if (lo == 2) throw std::runtime_error("chunk 2");
      if (lo == 5) throw std::runtime_error("chunk 5");
    });
    FAIL() << "expected parallel_for_ranges to throw";
  } catch (const std::runtime_error& e) {
    message = e.what();
  }
  EXPECT_EQ(message, "chunk 2");
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  // Regression test: a worker calling parallel_for used to block on
  // futures that only other workers could run — on a 1-thread pool the
  // nested call deadlocked forever.  Nested dispatch must execute
  // inline on the calling worker instead.
  ThreadPool pool(1);
  std::vector<int> hits(64, 0);
  pool.parallel_for(0, 8, [&](std::size_t outer) {
    EXPECT_TRUE(pool.on_pool_thread());
    pool.parallel_for(0, 8, [&](std::size_t inner) {
      hits[outer * 8 + inner] += 1;
    });
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, NestedParallelForPropagatesException) {
  ThreadPool pool(1);
  EXPECT_THROW(
      pool.parallel_for(0, 4,
                        [&](std::size_t) {
                          pool.parallel_for(0, 4, [](std::size_t i) {
                            if (i == 2) throw std::runtime_error("nested");
                          });
                        }),
      std::runtime_error);
}

TEST(ThreadPool, OnPoolThreadDistinguishesPools) {
  ThreadPool a(1);
  ThreadPool b(1);
  EXPECT_FALSE(a.on_pool_thread());  // caller is not a worker
  auto fut = a.submit([&] {
    // A worker of `a` is not a worker of `b`, so dispatching to `b`
    // from inside `a` still fans out normally.
    return a.on_pool_thread() && !b.on_pool_thread();
  });
  EXPECT_TRUE(fut.get());
}

TEST(ThreadPoolRanges, CoversRangeWithoutOverlap) {
  ThreadPool pool(3);
  std::vector<int> hits(257, 0);  // deliberately not a multiple of grain
  pool.parallel_for_ranges(0, hits.size(), 16,
                           [&](std::size_t lo, std::size_t hi) {
                             for (std::size_t i = lo; i < hi; ++i) {
                               hits[i] += 1;
                             }
                           });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolRanges, EmptyRangeNeverInvokesBody) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for_ranges(5, 5, 4,
                           [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolRanges, SingleElementRunsInlineAsOneChunk) {
  ThreadPool pool(4);
  std::vector<std::pair<std::size_t, std::size_t>> calls;
  pool.parallel_for_ranges(7, 8, 16, [&](std::size_t lo, std::size_t hi) {
    calls.emplace_back(lo, hi);  // inline: no synchronization needed
  });
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls.front().first, 7u);
  EXPECT_EQ(calls.front().second, 8u);
}

TEST(ThreadPoolRanges, RangeSmallerThanWorkersStillCoversAll) {
  ThreadPool pool(8);  // more workers than elements
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for_ranges(0, hits.size(), 1,
                           [&](std::size_t lo, std::size_t hi) {
                             for (std::size_t i = lo; i < hi; ++i) {
                               hits[i].fetch_add(1);
                             }
                           });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolRanges, ChunksRespectGrain) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  const std::size_t n = 100;
  const std::size_t grain = 12;
  pool.parallel_for_ranges(0, n, grain, [&](std::size_t lo, std::size_t hi) {
    std::lock_guard lock(mu);
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  std::size_t expect_lo = 0;
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    EXPECT_EQ(chunks[c].first, expect_lo);  // contiguous, no gaps
    const std::size_t len = chunks[c].second - chunks[c].first;
    if (c + 1 < chunks.size()) {
      EXPECT_GE(len, grain);  // only the last chunk may run short
    }
    expect_lo = chunks[c].second;
  }
  EXPECT_EQ(expect_lo, n);
}

TEST(ThreadPoolRanges, GrainZeroBehavesAsGrainOne) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(10);
  pool.parallel_for_ranges(0, hits.size(), 0,
                           [&](std::size_t lo, std::size_t hi) {
                             for (std::size_t i = lo; i < hi; ++i) {
                               hits[i].fetch_add(1);
                             }
                           });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolRanges, RejectsReversedRange) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for_ranges(5, 4, 1, [](std::size_t, std::size_t) {}),
      InvalidArgument);
}

TEST(ThreadPoolRanges, RethrowsChunkException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for_ranges(
                   0, 64, 4,
                   [](std::size_t lo, std::size_t) {
                     if (lo >= 32) throw std::runtime_error("bad chunk");
                   }),
               std::runtime_error);
}

TEST(ThreadPoolRanges, NestedCallRunsInline) {
  ThreadPool pool(1);
  std::vector<int> hits(64, 0);
  pool.parallel_for_ranges(0, 8, 1, [&](std::size_t olo, std::size_t ohi) {
    for (std::size_t outer = olo; outer < ohi; ++outer) {
      // From a worker the nested call must execute inline (a queued
      // chunk could only run on the other workers — none on this pool).
      pool.parallel_for_ranges(0, 8, 1,
                               [&](std::size_t ilo, std::size_t ihi) {
                                 EXPECT_TRUE(pool.on_pool_thread());
                                 for (std::size_t i = ilo; i < ihi; ++i) {
                                   hits[outer * 8 + i] += 1;
                                 }
                               });
    }
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { ++counter; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace xdmodml
