// Tests for the thread pool and parallel_for.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/error.hpp"

namespace xdmodml {
namespace {

TEST(ThreadPool, DefaultHasWorkers) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForRejectsReversedRange) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(5, 4, [](std::size_t) {}),
               InvalidArgument);
}

TEST(ThreadPool, ParallelForRethrowsBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 10,
                                 [](std::size_t i) {
                                   if (i == 7) {
                                     throw std::runtime_error("bad item");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  // Regression test: a worker calling parallel_for used to block on
  // futures that only other workers could run — on a 1-thread pool the
  // nested call deadlocked forever.  Nested dispatch must execute
  // inline on the calling worker instead.
  ThreadPool pool(1);
  std::vector<int> hits(64, 0);
  pool.parallel_for(0, 8, [&](std::size_t outer) {
    EXPECT_TRUE(pool.on_pool_thread());
    pool.parallel_for(0, 8, [&](std::size_t inner) {
      hits[outer * 8 + inner] += 1;
    });
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, NestedParallelForPropagatesException) {
  ThreadPool pool(1);
  EXPECT_THROW(
      pool.parallel_for(0, 4,
                        [&](std::size_t) {
                          pool.parallel_for(0, 4, [](std::size_t i) {
                            if (i == 2) throw std::runtime_error("nested");
                          });
                        }),
      std::runtime_error);
}

TEST(ThreadPool, OnPoolThreadDistinguishesPools) {
  ThreadPool a(1);
  ThreadPool b(1);
  EXPECT_FALSE(a.on_pool_thread());  // caller is not a worker
  auto fut = a.submit([&] {
    // A worker of `a` is not a worker of `b`, so dispatching to `b`
    // from inside `a` still fans out normally.
    return a.on_pool_thread() && !b.on_pool_thread();
  });
  EXPECT_TRUE(fut.get());
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { ++counter; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace xdmodml
