// Output-shape tests for the bench --json emitter: the file must be
// syntactically valid JSON, carry the required keys on every record,
// and escape quotes/backslashes in string fields.
#include "bench_common.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace xdmodml::bench {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Minimal JSON syntax checker — enough to reject torn emitter output
/// (unbalanced brackets, bad literals, trailing commas) without pulling
/// in a JSON dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    pos_ = 0;
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool value() {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '[':
        return array();
      case '{':
        return object();
      case '"':
        return string();
      default:
        return number();
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') return ++pos_, true;
    for (;;) {
      if (!value()) return false;
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ']') return ++pos_, true;
      if (text_[pos_] != ',') return false;
      ++pos_;
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      if (!value()) return false;
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == '}') return ++pos_, true;
      if (text_[pos_] != ',') return false;
      ++pos_;
    }
  }

  bool string() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;  // escape consumes the next char
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    return pos_ > start;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

class BenchJsonTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  const std::string path_ = "test_bench_json_out.json";
};

TEST_F(BenchJsonTest, EmitsValidJsonWithRequiredKeys) {
  BenchJsonRecorder recorder;
  recorder.set_path(path_);
  ASSERT_TRUE(recorder.enabled());
  recorder.record("bench_svm_tuning", "sweep_reuse", 123.5, 1600, 4, 5);
  recorder.record("bench_svm_tuning", "sweep_refit", 250.0, 1600, 4);
  recorder.write();

  const auto text = slurp(path_);
  ASSERT_FALSE(text.empty());
  EXPECT_TRUE(JsonChecker(text).valid()) << text;
  for (const char* key : {"\"bench\"", "\"op\"", "\"wall_ms\"", "\"n_jobs\"",
                          "\"threads\"", "\"repeats\""}) {
    EXPECT_NE(text.find(key), std::string::npos) << "missing key " << key;
  }
  EXPECT_NE(text.find("\"sweep_reuse\""), std::string::npos);
  EXPECT_NE(text.find("123.5"), std::string::npos);
  // Median-of-N rows carry their repeat count; legacy single-shot
  // records default to 1.
  EXPECT_NE(text.find("\"repeats\": 5"), std::string::npos);
  EXPECT_NE(text.find("\"repeats\": 1"), std::string::npos);
}

TEST(TimeMedianMs, MedianOverRepeatsAndRepeatCountReported) {
  int calls = 0;
  const auto timed = time_median_ms([&] { ++calls; }, 5, 2);
  EXPECT_EQ(calls, 7);  // 2 warm-up + 5 timed
  EXPECT_EQ(timed.repeats, 5u);
  EXPECT_GE(timed.median_ms, 0.0);

  // repeats == 0 is clamped to one timed run.
  calls = 0;
  const auto single = time_median_ms([&] { ++calls; }, 0, 0);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(single.repeats, 1u);
}

TEST_F(BenchJsonTest, EscapesQuotesAndBackslashes) {
  BenchJsonRecorder recorder;
  recorder.set_path(path_);
  recorder.record("bench\\one", "op \"quoted\"", 1.0, 10, 1);
  recorder.write();

  const auto text = slurp(path_);
  EXPECT_TRUE(JsonChecker(text).valid()) << text;
  EXPECT_NE(text.find("bench\\\\one"), std::string::npos);
  EXPECT_NE(text.find("op \\\"quoted\\\""), std::string::npos);
}

TEST_F(BenchJsonTest, WriteClearsRecordsAndEmptyWriteIsNoOp) {
  BenchJsonRecorder recorder;
  recorder.set_path(path_);
  recorder.record("b", "op", 2.0, 1, 1);
  recorder.write();
  ASSERT_FALSE(slurp(path_).empty());

  // A second write with no new records must not rewrite (or truncate)
  // the file: records were drained by the first write.
  std::remove(path_.c_str());
  recorder.write();
  std::ifstream probe(path_);
  EXPECT_FALSE(probe.good());
}

TEST_F(BenchJsonTest, DisabledRecorderWritesNothing) {
  BenchJsonRecorder recorder;  // no path
  EXPECT_FALSE(recorder.enabled());
  recorder.record("b", "op", 2.0, 1, 1);
  recorder.write();  // no path: silent no-op
  std::ifstream probe(path_);
  EXPECT_FALSE(probe.good());
}

TEST_F(BenchJsonTest, ParseArgsPicksJsonFlagAnywhere) {
  BenchJsonRecorder recorder;
  std::string a0 = "bench";
  std::string a1 = "--benchmark_filter=none";
  std::string a2 = "--json=" + path_;
  char* argv[] = {a0.data(), a1.data(), a2.data()};
  recorder.parse_args(3, argv);
  EXPECT_TRUE(recorder.enabled());
  recorder.record("b", "op", 3.0, 2, 1);
  recorder.write();
  EXPECT_TRUE(JsonChecker(slurp(path_)).valid());
}

}  // namespace
}  // namespace xdmodml::bench
