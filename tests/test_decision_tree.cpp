// Tests for the CART decision tree (classification and regression).
#include "ml/decision_tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace xdmodml::ml {
namespace {

TEST(DecisionTree, LearnsAxisAlignedSplit) {
  // x < 0 -> class 0; x >= 0 -> class 1.  One split suffices.
  Matrix X;
  std::vector<int> y;
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(-1.0, 1.0);
    X.append_row(std::vector<double>{x});
    y.push_back(x < 0.0 ? 0 : 1);
  }
  DecisionTreeClassifier tree;
  tree.fit(X, y, 2);
  EXPECT_EQ(tree.predict(std::vector<double>{-0.5}), 0);
  EXPECT_EQ(tree.predict(std::vector<double>{0.5}), 1);
  EXPECT_LE(tree.depth(), 3u);  // should be essentially a stump
}

TEST(DecisionTree, FitsXorWithDepthTwo) {
  // XOR is not linearly separable but a depth-2 tree nails it.
  Matrix X;
  std::vector<int> y;
  Rng rng(2);
  for (int i = 0; i < 400; ++i) {
    const double a = rng.uniform(-1.0, 1.0);
    const double b = rng.uniform(-1.0, 1.0);
    X.append_row(std::vector<double>{a, b});
    y.push_back((a > 0.0) != (b > 0.0) ? 1 : 0);
  }
  DecisionTreeClassifier tree;
  tree.fit(X, y, 2);
  std::size_t correct = 0;
  for (std::size_t r = 0; r < X.rows(); ++r) {
    if (tree.predict(X.row(r)) == y[r]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(X.rows()),
            0.98);
}

TEST(DecisionTree, PureNodeBecomesLeafImmediately) {
  Matrix X = Matrix::from_rows({{1.0}, {2.0}, {3.0}});
  const std::vector<int> y{1, 1, 1};
  DecisionTreeClassifier tree;
  tree.fit(X, y, 2);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.predict(std::vector<double>{99.0}), 1);
}

TEST(DecisionTree, MaxDepthLimitsGrowth) {
  Matrix X;
  std::vector<int> y;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    X.append_row(std::vector<double>{rng.uniform(0.0, 1.0),
                                     rng.uniform(0.0, 1.0)});
    y.push_back(static_cast<int>(rng.uniform_index(2)));
  }
  TreeConfig cfg;
  cfg.max_depth = 3;
  DecisionTreeClassifier tree(cfg);
  tree.fit(X, y, 2);
  EXPECT_LE(tree.depth(), 4u);  // root at depth 1
}

TEST(DecisionTree, MinSamplesLeafRespected) {
  Matrix X;
  std::vector<int> y;
  for (int i = 0; i < 10; ++i) {
    X.append_row(std::vector<double>{static_cast<double>(i)});
    y.push_back(i < 9 ? 0 : 1);  // one lone sample of class 1
  }
  TreeConfig cfg;
  cfg.min_samples_leaf = 3;
  DecisionTreeClassifier tree(cfg);
  tree.fit(X, y, 2);
  // The only useful split would isolate a 1-sample leaf, so the tree may
  // not fully separate — every leaf must hold >= 3 training samples.
  // Verify indirectly: prediction of the lone class-1 point cannot be
  // fully confident.
  const auto p = tree.predict_proba(std::vector<double>{9.0});
  EXPECT_LT(p[1], 1.0);
}

TEST(DecisionTree, ProbabilitiesReflectLeafMixture) {
  // Overlapping region: leaf distribution should be fractional.
  Matrix X = Matrix::from_rows({{0.0}, {0.0}, {0.0}, {0.0}});
  const std::vector<int> y{0, 0, 0, 1};
  DecisionTreeClassifier tree;
  tree.fit(X, y, 2);
  const auto p = tree.predict_proba(std::vector<double>{0.0});
  EXPECT_NEAR(p[0], 0.75, 1e-12);
  EXPECT_NEAR(p[1], 0.25, 1e-12);
}

TEST(DecisionTree, DeterministicAcrossRuns) {
  Matrix X;
  std::vector<int> y;
  Rng rng(4);
  for (int i = 0; i < 300; ++i) {
    X.append_row(std::vector<double>{rng.normal(), rng.normal()});
    y.push_back(static_cast<int>(rng.uniform_index(3)));
  }
  DecisionTreeClassifier a({}, 42);
  DecisionTreeClassifier b({}, 42);
  a.fit(X, y, 3);
  b.fit(X, y, 3);
  for (std::size_t r = 0; r < X.rows(); ++r) {
    EXPECT_EQ(a.predict(X.row(r)), b.predict(X.row(r)));
  }
}

TEST(DecisionTreeRegressor, FitsStepFunction) {
  Matrix X;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    const double x = static_cast<double>(i) / 100.0;
    X.append_row(std::vector<double>{x});
    y.push_back(x < 0.5 ? 1.0 : 3.0);
  }
  DecisionTreeRegressor tree;
  tree.fit(X, y);
  EXPECT_NEAR(tree.predict(std::vector<double>{0.2}), 1.0, 1e-9);
  EXPECT_NEAR(tree.predict(std::vector<double>{0.8}), 3.0, 1e-9);
}

TEST(DecisionTreeRegressor, ApproximatesSmoothFunction) {
  Matrix X;
  std::vector<double> y;
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform(0.0, 2.0 * 3.14159);
    X.append_row(std::vector<double>{x});
    y.push_back(std::sin(x));
  }
  DecisionTreeRegressor tree;
  tree.fit(X, y);
  double max_err = 0.0;
  for (double x = 0.1; x < 6.0; x += 0.1) {
    max_err = std::max(max_err,
                       std::abs(tree.predict(std::vector<double>{x}) -
                                std::sin(x)));
  }
  EXPECT_LT(max_err, 0.15);
}

TEST(DecisionTreeRegressor, ConstantTargetsSingleLeaf) {
  Matrix X = Matrix::from_rows({{1.0}, {2.0}, {3.0}});
  const std::vector<double> y{7.0, 7.0, 7.0};
  DecisionTreeRegressor tree;
  tree.fit(X, y);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{-1.0}), 7.0);
}

TEST(DecisionTree, RejectsBadInputs) {
  DecisionTreeClassifier tree;
  Matrix X = Matrix::from_rows({{1.0}});
  EXPECT_THROW(tree.fit(X, std::vector<int>{0, 1}, 2), InvalidArgument);
  EXPECT_THROW(tree.predict(std::vector<double>{0.0}), InvalidArgument);
  const std::vector<int> y{0};
  tree.fit(X, y, 1);
  EXPECT_THROW(tree.predict(std::vector<double>{0.0, 1.0}),
               InvalidArgument);
}

}  // namespace
}  // namespace xdmodml::ml
