// Tests for the XDMoD-lite warehouse: ingest (validation, all-or-nothing
// batches, dead letters, transient-fault retry), filters, group-by
// aggregation and report rendering.
#include "xdmod/warehouse.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/metrics.hpp"

namespace xdmodml::xdmod {
namespace {

using supremm::JobSummary;
using supremm::LabelSource;
using supremm::MetricId;

JobSummary job(const std::string& app, const std::string& category,
               std::uint32_t nodes, double wall_hours, int exit_code = 0) {
  JobSummary j;
  j.application = app;
  j.category = category;
  j.label_source = app.empty() ? LabelSource::kNotAvailable
                               : LabelSource::kIdentified;
  j.nodes = nodes;
  j.cores_per_node = 16;
  j.wall_seconds = wall_hours * 3600.0;
  j.exit_code = exit_code;
  j.set_mean(MetricId::kCpuUser, 0.8);
  j.set_mean(MetricId::kMemUsed, 10.0);
  return j;
}

Warehouse small_warehouse() {
  Warehouse w;
  w.ingest(job("VASP", "QC,ES", 4, 2.0));
  w.ingest(job("VASP", "QC,ES", 2, 1.0, 1));
  w.ingest(job("NAMD", "MD", 8, 4.0));
  w.ingest(job("", "", 1, 0.5));
  return w;
}

TEST(Warehouse, IngestAndSize) {
  const auto w = small_warehouse();
  EXPECT_EQ(w.size(), 4u);
}

TEST(Warehouse, QueryWithFilters) {
  const auto w = small_warehouse();
  Filter f;
  f.application = "VASP";
  EXPECT_EQ(w.query(f).size(), 2u);
  Filter g;
  g.min_nodes = 4;
  EXPECT_EQ(w.query(g).size(), 2u);
  Filter h;
  h.label_source = LabelSource::kNotAvailable;
  EXPECT_EQ(w.query(h).size(), 1u);
  Filter combo;
  combo.application = "VASP";
  combo.max_nodes = 2;
  EXPECT_EQ(w.query(combo).size(), 1u);
}

TEST(Warehouse, JobCountByApplication) {
  const auto w = small_warehouse();
  const auto rows = w.aggregate(Dimension::kApplication,
                                Statistic::kJobCount);
  ASSERT_EQ(rows.size(), 3u);  // VASP, NAMD, (unknown)
  EXPECT_EQ(rows[0].group, "VASP");
  EXPECT_DOUBLE_EQ(rows[0].value, 2.0);
}

TEST(Warehouse, CpuHoursComputation) {
  const auto w = small_warehouse();
  const auto rows = w.aggregate(Dimension::kApplication,
                                Statistic::kCpuHours);
  // NAMD: 8 nodes * 16 cores * 4 h = 512 CPU hours — the largest.
  EXPECT_EQ(rows[0].group, "NAMD");
  EXPECT_DOUBLE_EQ(rows[0].value, 512.0);
  // VASP: 4*16*2 + 2*16*1 = 160.
  EXPECT_EQ(rows[1].group, "VASP");
  EXPECT_DOUBLE_EQ(rows[1].value, 160.0);
}

TEST(Warehouse, AveragesDivideByJobCount) {
  const auto w = small_warehouse();
  const auto rows =
      w.aggregate(Dimension::kApplication, Statistic::kAvgWallHours);
  for (const auto& row : rows) {
    if (row.group == "VASP") {
      EXPECT_DOUBLE_EQ(row.value, 1.5);
    }
  }
}

TEST(Warehouse, GroupByJobSizeBuckets) {
  const auto w = small_warehouse();
  const auto rows = w.aggregate(Dimension::kJobSize, Statistic::kJobCount);
  std::size_t total = 0;
  for (const auto& row : rows) total += row.job_count;
  EXPECT_EQ(total, 4u);
}

TEST(Warehouse, GroupByExitStatus) {
  const auto w = small_warehouse();
  const auto rows = w.aggregate(Dimension::kExitStatus,
                                Statistic::kJobCount);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].group, "success");
  EXPECT_DOUBLE_EQ(rows[0].value, 3.0);
}

TEST(Warehouse, FilteredAggregate) {
  const auto w = small_warehouse();
  Filter f;
  f.category = "QC,ES";
  const auto rows = w.aggregate(Dimension::kApplication,
                                Statistic::kJobCount, f);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].group, "VASP");
}

TEST(Warehouse, ReportRenders) {
  const auto w = small_warehouse();
  const auto text = w.report(Dimension::kApplication, Statistic::kJobCount);
  EXPECT_NE(text.find("VASP"), std::string::npos);
  EXPECT_NE(text.find("application"), std::string::npos);
}

TEST(Warehouse, MonthDimensionAndTimeFilter) {
  Warehouse w;
  auto early = job("VASP", "QC,ES", 1, 1.0);
  early.start_epoch_seconds = 5.0 * 24 * 3600;     // month 00
  auto late = job("VASP", "QC,ES", 1, 1.0);
  late.start_epoch_seconds = 40.0 * 24 * 3600;     // month 01
  w.ingest(early);
  w.ingest(late);
  const auto rows = w.aggregate(Dimension::kMonth, Statistic::kJobCount);
  ASSERT_EQ(rows.size(), 2u);
  Filter f;
  f.start_after = 30.0 * 24 * 3600;
  EXPECT_EQ(w.query(f).size(), 1u);
  Filter g;
  g.start_before = 30.0 * 24 * 3600;
  EXPECT_EQ(w.query(g).size(), 1u);
}

TEST(Warehouse, ValidateNamesTheOffendingField) {
  EXPECT_EQ(Warehouse::validate(job("VASP", "QC,ES", 4, 2.0)), std::nullopt);
  auto zero_nodes = job("VASP", "QC,ES", 4, 2.0);
  zero_nodes.nodes = 0;
  EXPECT_NE(Warehouse::validate(zero_nodes), std::nullopt);
  auto negative_wall = job("VASP", "QC,ES", 4, -2.0);
  EXPECT_NE(Warehouse::validate(negative_wall), std::nullopt);
  auto nan_start = job("VASP", "QC,ES", 4, 2.0);
  nan_start.start_epoch_seconds = std::nan("");
  EXPECT_NE(Warehouse::validate(nan_start), std::nullopt);
}

TEST(Warehouse, SingleIngestRejectsInvalidRowUnchanged) {
  Warehouse w;
  auto bad = job("VASP", "QC,ES", 4, 2.0);
  bad.cores_per_node = 0;
  EXPECT_THROW(w.ingest(std::move(bad)), InvalidArgument);
  EXPECT_EQ(w.size(), 0u);
  EXPECT_TRUE(w.dead_letters().empty());
}

TEST(Warehouse, SpanIngestIsAllOrNothing) {
  // Regression: the old span overload inserted rows as it walked the
  // batch, so a mid-batch reject left the valid prefix applied and the
  // caller's retry then double-ingested it.  Now the whole batch is
  // validated first and a reject leaves the warehouse untouched.
  Warehouse w;
  std::vector<supremm::JobSummary> batch{job("VASP", "QC,ES", 4, 2.0),
                                         job("NAMD", "MD", 8, 4.0),
                                         job("VASP", "QC,ES", 2, 1.0)};
  batch[1].nodes = 0;  // poison the middle row
  EXPECT_THROW(w.ingest(std::span<const supremm::JobSummary>(batch)),
               InvalidArgument);
  EXPECT_EQ(w.size(), 0u);
  EXPECT_TRUE(w.dead_letters().empty());

  batch[1].nodes = 8;
  w.ingest(std::span<const supremm::JobSummary>(batch));
  EXPECT_EQ(w.size(), 3u);
}

TEST(Warehouse, IngestBatchDeadLettersInvalidRows) {
  Warehouse w;
  std::vector<supremm::JobSummary> batch{job("VASP", "QC,ES", 4, 2.0),
                                         job("NAMD", "MD", 8, 4.0),
                                         job("VASP", "QC,ES", 2, 1.0)};
  batch[1].wall_seconds = -1.0;
  const auto report = w.ingest_batch(batch);  // default: kDeadLetter
  EXPECT_EQ(report.accepted, 2u);
  EXPECT_EQ(report.dead_lettered, 1u);
  EXPECT_EQ(w.size(), 2u);
  ASSERT_EQ(w.dead_letters().size(), 1u);
  EXPECT_EQ(w.dead_letters()[0].job.application, "NAMD");
  EXPECT_NE(w.dead_letters()[0].reason.find("wall_seconds"),
            std::string::npos);
}

TEST(Warehouse, CommitRetryRecoversFromTransientFaults) {
  fp::reset();
  auto& registry = obs::MetricsRegistry::instance();
  const auto before = registry.snapshot();
  // Two injected commit failures against a budget of three retries: the
  // batch must land exactly once, with the retries visible in the
  // report and the fail./retry. counters.
  fp::arm("warehouse.ingest.commit", fp::Policy::parse("error(5)*2"));
  Warehouse w;
  std::vector<supremm::JobSummary> batch{job("VASP", "QC,ES", 4, 2.0),
                                         job("NAMD", "MD", 8, 4.0)};
  IngestOptions options;
  options.max_retries = 3;
  options.backoff_ms = 1;
  const auto report = w.ingest_batch(batch, options);
  fp::reset();
  EXPECT_EQ(report.accepted, 2u);
  EXPECT_EQ(report.retries, 2u);
  EXPECT_EQ(report.dead_lettered, 0u);
  EXPECT_EQ(w.size(), 2u);
  const auto after = registry.snapshot();
  EXPECT_EQ(after.counter("fail.warehouse.commit") -
                before.counter("fail.warehouse.commit"),
            2u);
  EXPECT_EQ(after.counter("retry.warehouse.commit") -
                before.counter("retry.warehouse.commit"),
            2u);
}

TEST(Warehouse, CommitFaultBeyondRetriesLeavesNoPartialState) {
  fp::reset();
  fp::arm("warehouse.ingest.commit", fp::Policy::parse("error(5)"));
  Warehouse w;
  std::vector<supremm::JobSummary> batch{job("VASP", "QC,ES", 4, 2.0)};
  IngestOptions options;
  options.max_retries = 2;
  options.backoff_ms = 0;
  EXPECT_THROW(w.ingest_batch(batch, options), fp::FailpointError);
  fp::reset();
  // The failed batch left no trace: nothing committed, nothing
  // dead-lettered (the rows were valid — the *commit* failed).
  EXPECT_EQ(w.size(), 0u);
  EXPECT_TRUE(w.dead_letters().empty());
}

TEST(Warehouse, ValidateRejectFailpointDeadLettersHealthyRows) {
  fp::reset();
  fp::arm("warehouse.validate.reject", fp::Policy::parse("return*1"));
  Warehouse w;
  std::vector<supremm::JobSummary> batch{job("VASP", "QC,ES", 4, 2.0),
                                         job("NAMD", "MD", 8, 4.0)};
  const auto report = w.ingest_batch(batch);
  fp::reset();
  EXPECT_EQ(report.accepted, 1u);
  EXPECT_EQ(report.dead_lettered, 1u);
  ASSERT_EQ(w.dead_letters().size(), 1u);
  EXPECT_NE(w.dead_letters()[0].reason.find("failpoint"), std::string::npos);
}

TEST(MonthBucket, Formatting) {
  EXPECT_EQ(month_bucket(0.0), "month 00");
  EXPECT_EQ(month_bucket(31.0 * 24 * 3600), "month 01");
  EXPECT_EQ(month_bucket(-5.0), "month 00");
  EXPECT_EQ(month_bucket(330.0 * 24 * 3600), "month 11");
}

TEST(JobSizeBucket, Boundaries) {
  EXPECT_EQ(job_size_bucket(1), "1");
  EXPECT_EQ(job_size_bucket(2), "2-4");
  EXPECT_EQ(job_size_bucket(4), "2-4");
  EXPECT_EQ(job_size_bucket(5), "5-16");
  EXPECT_EQ(job_size_bucket(16), "5-16");
  EXPECT_EQ(job_size_bucket(17), "17-64");
  EXPECT_EQ(job_size_bucket(64), "17-64");
  EXPECT_EQ(job_size_bucket(65), "65+");
  EXPECT_EQ(job_size_bucket(4096), "65+");
}

TEST(Names, DimensionAndStatisticNames) {
  EXPECT_STREQ(dimension_name(Dimension::kJobSize), "job size");
  EXPECT_STREQ(statistic_name(Statistic::kCpuHours), "CPU hours");
}

}  // namespace
}  // namespace xdmodml::xdmod
