// Tests for the XDMoD-lite warehouse: ingest, filters, group-by
// aggregation and report rendering.
#include "xdmod/warehouse.hpp"

#include <gtest/gtest.h>

namespace xdmodml::xdmod {
namespace {

using supremm::JobSummary;
using supremm::LabelSource;
using supremm::MetricId;

JobSummary job(const std::string& app, const std::string& category,
               std::uint32_t nodes, double wall_hours, int exit_code = 0) {
  JobSummary j;
  j.application = app;
  j.category = category;
  j.label_source = app.empty() ? LabelSource::kNotAvailable
                               : LabelSource::kIdentified;
  j.nodes = nodes;
  j.cores_per_node = 16;
  j.wall_seconds = wall_hours * 3600.0;
  j.exit_code = exit_code;
  j.set_mean(MetricId::kCpuUser, 0.8);
  j.set_mean(MetricId::kMemUsed, 10.0);
  return j;
}

Warehouse small_warehouse() {
  Warehouse w;
  w.ingest(job("VASP", "QC,ES", 4, 2.0));
  w.ingest(job("VASP", "QC,ES", 2, 1.0, 1));
  w.ingest(job("NAMD", "MD", 8, 4.0));
  w.ingest(job("", "", 1, 0.5));
  return w;
}

TEST(Warehouse, IngestAndSize) {
  const auto w = small_warehouse();
  EXPECT_EQ(w.size(), 4u);
}

TEST(Warehouse, QueryWithFilters) {
  const auto w = small_warehouse();
  Filter f;
  f.application = "VASP";
  EXPECT_EQ(w.query(f).size(), 2u);
  Filter g;
  g.min_nodes = 4;
  EXPECT_EQ(w.query(g).size(), 2u);
  Filter h;
  h.label_source = LabelSource::kNotAvailable;
  EXPECT_EQ(w.query(h).size(), 1u);
  Filter combo;
  combo.application = "VASP";
  combo.max_nodes = 2;
  EXPECT_EQ(w.query(combo).size(), 1u);
}

TEST(Warehouse, JobCountByApplication) {
  const auto w = small_warehouse();
  const auto rows = w.aggregate(Dimension::kApplication,
                                Statistic::kJobCount);
  ASSERT_EQ(rows.size(), 3u);  // VASP, NAMD, (unknown)
  EXPECT_EQ(rows[0].group, "VASP");
  EXPECT_DOUBLE_EQ(rows[0].value, 2.0);
}

TEST(Warehouse, CpuHoursComputation) {
  const auto w = small_warehouse();
  const auto rows = w.aggregate(Dimension::kApplication,
                                Statistic::kCpuHours);
  // NAMD: 8 nodes * 16 cores * 4 h = 512 CPU hours — the largest.
  EXPECT_EQ(rows[0].group, "NAMD");
  EXPECT_DOUBLE_EQ(rows[0].value, 512.0);
  // VASP: 4*16*2 + 2*16*1 = 160.
  EXPECT_EQ(rows[1].group, "VASP");
  EXPECT_DOUBLE_EQ(rows[1].value, 160.0);
}

TEST(Warehouse, AveragesDivideByJobCount) {
  const auto w = small_warehouse();
  const auto rows =
      w.aggregate(Dimension::kApplication, Statistic::kAvgWallHours);
  for (const auto& row : rows) {
    if (row.group == "VASP") {
      EXPECT_DOUBLE_EQ(row.value, 1.5);
    }
  }
}

TEST(Warehouse, GroupByJobSizeBuckets) {
  const auto w = small_warehouse();
  const auto rows = w.aggregate(Dimension::kJobSize, Statistic::kJobCount);
  std::size_t total = 0;
  for (const auto& row : rows) total += row.job_count;
  EXPECT_EQ(total, 4u);
}

TEST(Warehouse, GroupByExitStatus) {
  const auto w = small_warehouse();
  const auto rows = w.aggregate(Dimension::kExitStatus,
                                Statistic::kJobCount);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].group, "success");
  EXPECT_DOUBLE_EQ(rows[0].value, 3.0);
}

TEST(Warehouse, FilteredAggregate) {
  const auto w = small_warehouse();
  Filter f;
  f.category = "QC,ES";
  const auto rows = w.aggregate(Dimension::kApplication,
                                Statistic::kJobCount, f);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].group, "VASP");
}

TEST(Warehouse, ReportRenders) {
  const auto w = small_warehouse();
  const auto text = w.report(Dimension::kApplication, Statistic::kJobCount);
  EXPECT_NE(text.find("VASP"), std::string::npos);
  EXPECT_NE(text.find("application"), std::string::npos);
}

TEST(Warehouse, MonthDimensionAndTimeFilter) {
  Warehouse w;
  auto early = job("VASP", "QC,ES", 1, 1.0);
  early.start_epoch_seconds = 5.0 * 24 * 3600;     // month 00
  auto late = job("VASP", "QC,ES", 1, 1.0);
  late.start_epoch_seconds = 40.0 * 24 * 3600;     // month 01
  w.ingest(early);
  w.ingest(late);
  const auto rows = w.aggregate(Dimension::kMonth, Statistic::kJobCount);
  ASSERT_EQ(rows.size(), 2u);
  Filter f;
  f.start_after = 30.0 * 24 * 3600;
  EXPECT_EQ(w.query(f).size(), 1u);
  Filter g;
  g.start_before = 30.0 * 24 * 3600;
  EXPECT_EQ(w.query(g).size(), 1u);
}

TEST(MonthBucket, Formatting) {
  EXPECT_EQ(month_bucket(0.0), "month 00");
  EXPECT_EQ(month_bucket(31.0 * 24 * 3600), "month 01");
  EXPECT_EQ(month_bucket(-5.0), "month 00");
  EXPECT_EQ(month_bucket(330.0 * 24 * 3600), "month 11");
}

TEST(JobSizeBucket, Boundaries) {
  EXPECT_EQ(job_size_bucket(1), "1");
  EXPECT_EQ(job_size_bucket(2), "2-4");
  EXPECT_EQ(job_size_bucket(4), "2-4");
  EXPECT_EQ(job_size_bucket(5), "5-16");
  EXPECT_EQ(job_size_bucket(16), "5-16");
  EXPECT_EQ(job_size_bucket(17), "17-64");
  EXPECT_EQ(job_size_bucket(64), "17-64");
  EXPECT_EQ(job_size_bucket(65), "65+");
  EXPECT_EQ(job_size_bucket(4096), "65+");
}

TEST(Names, DimensionAndStatisticNames) {
  EXPECT_STREQ(dimension_name(Dimension::kJobSize), "job size");
  EXPECT_STREQ(statistic_name(Statistic::kCpuHours), "CPU hours");
}

}  // namespace
}  // namespace xdmodml::xdmod
