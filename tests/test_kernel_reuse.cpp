// Equivalence tests for the float32 kernel-row cache and the
// cross-grid/cross-fold kernel reuse path:
//  * float32-cached vs float64-cached SMO agrees on alphas/rho/objective
//    to 1e-3 (binary solve and the 20-class one-vs-one fit) and on
//    predicted labels exactly;
//  * a tuning sweep with the shared per-γ cache produces a (γ, C)
//    accuracy table bit-identical to per-cell refits;
//  * the cache's degraded modes (bypass / compute-without-caching, and
//    evict-and-retry after allocation faults) are bit-identical to the
//    cached fast path — degradation changes cost, never answers.
#include "ml/cross_validation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "ml/kernel.hpp"
#include "ml/smo.hpp"
#include "ml/svm.hpp"
#include "util/failpoint.hpp"
#include "util/matrix.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace xdmodml::ml {
namespace {

/// `classes` Gaussian blobs in `dims` dimensions, `per_class` rows each.
Dataset make_class_blobs(int classes, std::size_t per_class,
                         std::size_t dims, double separation,
                         std::uint64_t seed) {
  Dataset ds;
  Rng rng(seed);
  for (int c = 0; c < classes; ++c) {
    ds.class_names.push_back("class-" + std::to_string(c));
    for (std::size_t i = 0; i < per_class; ++i) {
      std::vector<double> row(dims);
      for (std::size_t d = 0; d < dims; ++d) {
        // Spread the class centres over a d-dimensional lattice so 20
        // classes stay separable in 6 dimensions.
        const double centre =
            separation * (((c >> (d % 5)) & 1) ? 1.0 : -1.0) +
            0.3 * separation * static_cast<double>(c % 3);
        row[d] = rng.normal(centre, 1.0);
      }
      ds.X.append_row(row);
      ds.labels.push_back(c);
    }
  }
  for (std::size_t d = 0; d < dims; ++d) {
    ds.feature_names.push_back("f" + std::to_string(d));
  }
  return ds;
}

SmoResult solve_through_cache(const Matrix& X,
                              std::span<const signed char> y,
                              GramPrecision precision,
                              bool bypass = false) {
  SharedGramCache cache(X, Kernel::rbf(0.3), X.rows(), precision);
  cache.set_bypass(bypass);
  std::vector<double> p(X.rows(), -1.0);
  std::vector<double> c(X.rows(), 10.0);
  SmoProblem prob;
  prob.n = X.rows();
  prob.p = p;
  prob.y = y;
  prob.c = c;
  prob.kernel_row = [&cache](std::size_t i, std::span<double> out) {
    const auto row = cache.row(i);
    for (std::size_t j = 0; j < row->size(); ++j) out[j] = (*row)[j];
  };
  prob.kernel_diag = [&cache](std::size_t i) { return cache.diagonal(i); };
  // A tight gap pins the (strictly-convex) dual optimum so the two
  // precision arms converge to comparable solutions, not merely to two
  // different points inside a loose 1e-3 KKT window.
  SmoConfig cfg;
  cfg.tolerance = 1e-6;
  return solve_smo(prob, cfg);
}

TEST(GramPrecisionEquivalence, BinarySmoAgreesAcrossPrecisions) {
  Rng rng(31);
  Matrix X;
  std::vector<signed char> y;
  for (int i = 0; i < 90; ++i) {
    const int label = i % 2 == 0 ? 1 : -1;
    X.append_row(std::vector<double>{rng.normal(label * 1.2, 1.0),
                                     rng.normal(0.0, 1.0),
                                     rng.normal(label * 0.4, 0.8)});
    y.push_back(static_cast<signed char>(label));
  }
  const auto r64 = solve_through_cache(X, y, GramPrecision::kFloat64);
  const auto r32 = solve_through_cache(X, y, GramPrecision::kFloat32);
  ASSERT_TRUE(r64.converged);
  ASSERT_TRUE(r32.converged);
  EXPECT_NEAR(r32.rho, r64.rho, 1e-3);
  EXPECT_NEAR(r32.objective, r64.objective, 1e-3);
  for (std::size_t i = 0; i < X.rows(); ++i) {
    EXPECT_NEAR(r32.alpha[i], r64.alpha[i], 1e-3) << "alpha " << i;
  }
}

TEST(GramPrecisionEquivalence, TwentyClassOvoFitAgreesAcrossPrecisions) {
  const auto ds = make_class_blobs(20, 12, 6, 4.0, 77);
  const auto probes = make_class_blobs(20, 5, 6, 4.0, 78);

  auto fit_with = [&](GramPrecision precision) {
    SvmConfig cfg;
    cfg.kernel = Kernel::rbf(0.1);
    cfg.c = 10.0;
    // Pin the dual optimum: at the default 1e-3 KKT window each arm can
    // legitimately stop at a different interior point, which is solver
    // slack, not cache-precision error.
    cfg.smo.tolerance = 1e-8;
    cfg.cache_precision = precision;
    SvmClassifier clf(cfg, 5);
    clf.fit(ds.X, ds.labels, 20);
    return clf;
  };
  const auto clf32 = fit_with(GramPrecision::kFloat32);
  const auto clf64 = fit_with(GramPrecision::kFloat64);

  // Per-machine solver outputs agree within the SMO tolerance budget.
  ASSERT_EQ(clf32.num_machines(), clf64.num_machines());
  for (std::size_t m = 0; m < clf32.num_machines(); ++m) {
    const auto& a = clf32.machine(m);
    const auto& b = clf64.machine(m);
    EXPECT_NEAR(a.rho(), b.rho(), 1e-3) << "machine " << m;
    ASSERT_EQ(a.num_support_vectors(), b.num_support_vectors())
        << "machine " << m;
    const auto ca = a.coefficients();
    const auto cb = b.coefficients();
    for (std::size_t s = 0; s < ca.size(); ++s) {
      EXPECT_NEAR(ca[s], cb[s], 1e-3) << "machine " << m << " coef " << s;
    }
  }

  // Labels agree exactly; coupled probabilities within the tolerance.
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const auto x = probes.X.row(i);
    EXPECT_EQ(clf32.predict(x), clf64.predict(x)) << "probe " << i;
    const auto p32 = clf32.predict_proba(x);
    const auto p64 = clf64.predict_proba(x);
    ASSERT_EQ(p32.size(), p64.size());
    for (std::size_t k = 0; k < p32.size(); ++k) {
      EXPECT_NEAR(p32[k], p64[k], 1e-3) << "probe " << i << " class " << k;
    }
  }
}

// --- Degraded-mode differentials ------------------------------------
//
// The cached path and both degraded paths (explicit bypass, failpoint-
// forced uncached rows, evict-and-retry after allocation faults) all
// fill rows through the same compute_row helper, so the solver must see
// bit-identical Gram values and produce bit-identical results.  These
// assert EXPECT_EQ on doubles deliberately.

TEST(GramCacheDegradedPaths, BypassSolvesBitIdenticalToCached) {
  Rng rng(57);
  Matrix X;
  std::vector<signed char> y;
  for (int i = 0; i < 80; ++i) {
    const int label = i % 2 == 0 ? 1 : -1;
    X.append_row(std::vector<double>{rng.normal(label * 1.1, 1.0),
                                     rng.normal(0.0, 1.0),
                                     rng.normal(label * 0.5, 0.9)});
    y.push_back(static_cast<signed char>(label));
  }
  for (const auto precision :
       {GramPrecision::kFloat32, GramPrecision::kFloat64}) {
    const auto cached = solve_through_cache(X, y, precision);
    const auto bypassed = solve_through_cache(X, y, precision, true);
    ASSERT_TRUE(cached.converged);
    EXPECT_EQ(bypassed.rho, cached.rho);
    EXPECT_EQ(bypassed.objective, cached.objective);
    ASSERT_EQ(bypassed.alpha.size(), cached.alpha.size());
    for (std::size_t i = 0; i < cached.alpha.size(); ++i) {
      EXPECT_EQ(bypassed.alpha[i], cached.alpha[i]) << "alpha " << i;
    }
  }
}

TEST(GramCacheDegradedPaths, BudgetFailpointForcesUncachedIdenticalSolve) {
  Rng rng(58);
  Matrix X;
  std::vector<signed char> y;
  for (int i = 0; i < 70; ++i) {
    const int label = i % 2 == 0 ? 1 : -1;
    X.append_row(std::vector<double>{rng.normal(label * 1.2, 1.0),
                                     rng.normal(0.0, 1.0)});
    y.push_back(static_cast<signed char>(label));
  }
  const auto cached = solve_through_cache(X, y, GramPrecision::kFloat32);

  const auto before = obs::MetricsRegistry::instance().snapshot();
  fp::reset();
  fp::arm("gram_cache.budget", fp::Policy::parse("return"));
  const auto degraded = solve_through_cache(X, y, GramPrecision::kFloat32);
  fp::reset();
  const auto after = obs::MetricsRegistry::instance().snapshot();

  // Every row was computed without caching...
  EXPECT_GT(after.counter("gram_cache.uncached_rows") -
                before.counter("gram_cache.uncached_rows"),
            0u);
  // ...and the answers did not move by a single bit.
  EXPECT_EQ(degraded.rho, cached.rho);
  EXPECT_EQ(degraded.objective, cached.objective);
  for (std::size_t i = 0; i < cached.alpha.size(); ++i) {
    EXPECT_EQ(degraded.alpha[i], cached.alpha[i]) << "alpha " << i;
  }
}

TEST(GramCacheDegradedPaths, AllocFaultsRecoverByEvictAndRetry) {
  Rng rng(59);
  Matrix X;
  std::vector<signed char> y;
  for (int i = 0; i < 70; ++i) {
    const int label = i % 2 == 0 ? 1 : -1;
    X.append_row(std::vector<double>{rng.normal(label * 1.2, 1.0),
                                     rng.normal(0.0, 1.0)});
    y.push_back(static_cast<signed char>(label));
  }
  const auto clean = solve_through_cache(X, y, GramPrecision::kFloat64);

  const auto before = obs::MetricsRegistry::instance().snapshot();
  fp::reset();
  fp::arm("gram_cache.alloc", fp::Policy::parse("one_in(3):error(1)"), 11);
  const auto faulted = solve_through_cache(X, y, GramPrecision::kFloat64);
  const auto triggers = fp::site_stats("gram_cache.alloc").triggers;
  fp::reset();
  const auto after = obs::MetricsRegistry::instance().snapshot();

  // The schedule really injected allocation failures, every one was
  // absorbed by evict-and-retry, and the solve still matches exactly.
  EXPECT_GT(triggers, 0u);
  EXPECT_EQ(after.counter("fail.gram_cache.alloc") -
                before.counter("fail.gram_cache.alloc"),
            triggers);
  EXPECT_EQ(after.counter("retry.gram_cache.evict_retry") -
                before.counter("retry.gram_cache.evict_retry"),
            triggers);
  EXPECT_EQ(faulted.rho, clean.rho);
  EXPECT_EQ(faulted.objective, clean.objective);
  for (std::size_t i = 0; i < clean.alpha.size(); ++i) {
    EXPECT_EQ(faulted.alpha[i], clean.alpha[i]) << "alpha " << i;
  }
}

TEST(GramCacheDegradedPaths, OvoFitUnderBudgetFaultMatchesCachedFit) {
  const auto ds = make_class_blobs(5, 14, 4, 4.0, 83);
  const auto probes = make_class_blobs(5, 6, 4, 4.0, 84);
  auto fit = [&] {
    SvmConfig cfg;
    cfg.kernel = Kernel::rbf(0.1);
    cfg.c = 10.0;
    cfg.smo.tolerance = 1e-8;
    SvmClassifier clf(cfg, 5);
    clf.fit(ds.X, ds.labels, 5);
    return clf;
  };
  const auto clf_cached = fit();
  fp::reset();
  fp::arm("gram_cache.budget", fp::Policy::parse("return"));
  const auto clf_degraded = fit();
  fp::reset();

  ASSERT_EQ(clf_degraded.num_machines(), clf_cached.num_machines());
  for (std::size_t m = 0; m < clf_cached.num_machines(); ++m) {
    const auto& a = clf_degraded.machine(m);
    const auto& b = clf_cached.machine(m);
    EXPECT_NEAR(a.rho(), b.rho(), 1e-3) << "machine " << m;
    const auto ca = a.coefficients();
    const auto cb = b.coefficients();
    ASSERT_EQ(ca.size(), cb.size()) << "machine " << m;
    for (std::size_t s = 0; s < ca.size(); ++s) {
      EXPECT_NEAR(ca[s], cb[s], 1e-3) << "machine " << m << " coef " << s;
    }
  }
  for (std::size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(clf_degraded.predict(probes.X.row(i)),
              clf_cached.predict(probes.X.row(i)))
        << "probe " << i;
  }
}

TEST(KernelReuse, SharedCacheGridSearchMatchesPerCellRefits) {
  const auto ds = make_class_blobs(3, 40, 2, 5.0, 91);
  const std::vector<double> gammas{0.05, 0.5};
  const std::vector<double> cs{1.0, 10.0, 100.0};

  for (const auto precision :
       {GramPrecision::kFloat32, GramPrecision::kFloat64}) {
    SvmGridSearchOptions reuse;
    reuse.reuse_kernel_cache = true;
    reuse.cache_precision = precision;
    SvmGridSearchOptions refit = reuse;
    refit.reuse_kernel_cache = false;

    const auto with_reuse = svm_grid_search(ds, gammas, cs, reuse);
    const auto with_refit = svm_grid_search(ds, gammas, cs, refit);
    ASSERT_EQ(with_reuse.size(), with_refit.size());
    // Reuse is pure plumbing: the per-γ shared cache hands every cell
    // the same Gram values a per-cell cache would compute, so the table
    // is bit-identical — including the best-first tie ordering.
    for (std::size_t i = 0; i < with_reuse.size(); ++i) {
      EXPECT_EQ(with_reuse[i].gamma, with_refit[i].gamma) << "point " << i;
      EXPECT_EQ(with_reuse[i].c, with_refit[i].c) << "point " << i;
      EXPECT_EQ(with_reuse[i].cv_accuracy, with_refit[i].cv_accuracy)
          << "point " << i;
    }
  }
}

TEST(KernelReuse, FoldAssignmentIsSharedAcrossGridCells) {
  // Two sweeps over disjoint single-cell grids with the same seed must
  // score a shared cell identically: the fold split (and the
  // standardizer) depend only on (dataset, folds, seed), never on the
  // cell being evaluated — the hoisted-RNG fix.
  const auto ds = make_class_blobs(3, 30, 2, 5.0, 92);
  const std::vector<double> g1{0.5};
  const std::vector<double> g2{0.05, 0.5};
  const std::vector<double> cs{10.0};
  SvmGridSearchOptions opts;
  const auto small = svm_grid_search(ds, g1, cs, opts);
  const auto large = svm_grid_search(ds, g2, cs, opts);
  ASSERT_EQ(small.size(), 1u);
  for (const auto& pt : large) {
    if (pt.gamma == 0.5 && pt.c == 10.0) {
      EXPECT_EQ(pt.cv_accuracy, small.front().cv_accuracy);
    }
  }
}

TEST(KernelReuse, PrecisionArmsProduceComparableTables) {
  const auto ds = make_class_blobs(3, 40, 2, 5.0, 93);
  const std::vector<double> gammas{0.05, 0.5};
  const std::vector<double> cs{1.0, 100.0};
  SvmGridSearchOptions f32;
  SvmGridSearchOptions f64;
  f64.cache_precision = GramPrecision::kFloat64;
  const auto t32 = svm_grid_search(ds, gammas, cs, f32);
  const auto t64 = svm_grid_search(ds, gammas, cs, f64);
  ASSERT_EQ(t32.size(), t64.size());
  for (const auto& a : t32) {
    for (const auto& b : t64) {
      if (a.gamma == b.gamma && a.c == b.c) {
        EXPECT_NEAR(a.cv_accuracy, b.cv_accuracy, 0.05);
      }
    }
  }
}

}  // namespace
}  // namespace xdmodml::ml
