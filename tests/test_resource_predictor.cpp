// Tests for the submit-time resource-consumption predictor.
#include "core/resource_predictor.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "workload/dataset_helpers.hpp"
#include "workload/generator.hpp"

namespace xdmodml::core {
namespace {

class ResourcePredictorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    gen_ = new workload::WorkloadGenerator(
        workload::WorkloadGenerator::standard({}, 808));
    train_ = new std::vector<supremm::JobSummary>(
        workload::summaries_of(gen_->generate_native(1200)));
    test_ = new std::vector<supremm::JobSummary>(
        workload::summaries_of(gen_->generate_native(500)));
  }
  static void TearDownTestSuite() {
    delete gen_;
    delete train_;
    delete test_;
    gen_ = nullptr;
    train_ = nullptr;
    test_ = nullptr;
  }
  static workload::WorkloadGenerator* gen_;
  static std::vector<supremm::JobSummary>* train_;
  static std::vector<supremm::JobSummary>* test_;
};
workload::WorkloadGenerator* ResourcePredictorTest::gen_ = nullptr;
std::vector<supremm::JobSummary>* ResourcePredictorTest::train_ = nullptr;
std::vector<supremm::JobSummary>* ResourcePredictorTest::test_ = nullptr;

TEST_F(ResourcePredictorTest, PredictsMemoryFromSubmitTimeFeatures) {
  ml::ForestConfig fc;
  fc.num_trees = 100;
  ResourcePredictor predictor(fc);
  predictor.train(*train_, ResourceTarget::kMemoryGb);
  const auto eval = predictor.evaluate(*test_);
  // Applications have characteristic memory footprints, so submit-time
  // features carry real signal.
  EXPECT_GT(eval.r_squared, 0.5);
  EXPECT_GT(eval.jobs_evaluated, 400u);
}

TEST_F(ResourcePredictorTest, PredictsCpuUserWell) {
  ml::ForestConfig fc;
  fc.num_trees = 100;
  ResourcePredictor predictor(fc);
  predictor.train(*train_, ResourceTarget::kAvgCpuUser);
  const auto eval = predictor.evaluate(*test_);
  EXPECT_GT(eval.r_squared, 0.4);
  EXPECT_LT(eval.mae, 0.1);
}

TEST_F(ResourcePredictorTest, WallHoursIsTheHardTarget) {
  // Wall time is dominated by per-job randomness (within-application
  // spread far exceeds the between-application medians), so this target
  // needs strong regularization to beat the constant-mean baseline and
  // must remain far harder than memory prediction.
  ml::ForestConfig fc;
  fc.num_trees = 150;
  fc.tree.min_samples_leaf = 40;  // shallow leaves: model medians only
  ResourcePredictor wall(fc);
  wall.train(*train_, ResourceTarget::kWallHours);
  const auto wall_eval = wall.evaluate(*test_);
  EXPECT_GT(wall_eval.r_squared, 0.0);

  ResourcePredictor memory(fc);
  memory.train(*train_, ResourceTarget::kMemoryGb);
  const auto mem_eval = memory.evaluate(*test_);
  EXPECT_GT(mem_eval.r_squared, wall_eval.r_squared + 0.3);
}

TEST_F(ResourcePredictorTest, FeatureNamesShape) {
  ml::ForestConfig fc;
  fc.num_trees = 20;
  ResourcePredictor predictor(fc);
  predictor.train(*train_, ResourceTarget::kMemoryGb);
  const auto names = predictor.feature_names();
  // one-hot per application seen + 3 geometry features.
  EXPECT_GE(names.size(), 20u);
  EXPECT_EQ(names.back(), "cores_per_node");
}

TEST_F(ResourcePredictorTest, UnknownApplicationStillPredicts) {
  ml::ForestConfig fc;
  fc.num_trees = 40;
  ResourcePredictor predictor(fc);
  predictor.train(*train_, ResourceTarget::kMemoryGb);
  auto job = test_->front();
  job.application = "NEVER_SEEN_APP";
  const double v = predictor.predict(job);  // zero one-hot row
  EXPECT_GT(v, 0.0);
}

TEST_F(ResourcePredictorTest, Validation) {
  ResourcePredictor predictor;
  EXPECT_THROW(predictor.predict(test_->front()), InvalidArgument);
  std::vector<supremm::JobSummary> tiny(train_->begin(),
                                        train_->begin() + 3);
  EXPECT_THROW(predictor.train(tiny, ResourceTarget::kMemoryGb),
               InvalidArgument);
  EXPECT_STREQ(resource_target_name(ResourceTarget::kWallHours),
               "wall hours");
}

}  // namespace
}  // namespace xdmodml::core
