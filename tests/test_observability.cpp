// Tests for the observability layer (util/metrics.hpp, util/trace.hpp):
// exact counting under concurrency, log₂ bucket boundaries, exporter
// shapes, the XDMODML_METRICS toggle, and the trace ring.
//
// The registry is process-global, so every test uses metric names under
// a test-local prefix and saves/restores the enabled flag it touches.
#include "util/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/classification_service.hpp"
#include "core/job_classifier.hpp"
#include "ml/svm.hpp"
#include "ml/svm_plan.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"
#include "workload/dataset_helpers.hpp"
#include "workload/generator.hpp"

namespace xdmodml::obs {
namespace {

/// Restores the global toggle on scope exit so tests cannot leak state.
class EnabledGuard {
 public:
  EnabledGuard() : prev_(enabled()) {}
  ~EnabledGuard() { set_enabled(prev_); }

 private:
  bool prev_;
};

TEST(Observability, CounterConcurrentIncrementsAreExact) {
  auto& counter = MetricsRegistry::instance().counter("test_obs.ctr_hammer");
  counter.reset();
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIncsPerThread = 10000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::size_t i = 0; i < kIncsPerThread; ++i) counter.inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.value(), kThreads * kIncsPerThread);
  counter.inc(42);
  EXPECT_EQ(counter.value(), kThreads * kIncsPerThread + 42);
}

TEST(Observability, GaugeSetAddAndHighWaterMark) {
  auto& gauge = MetricsRegistry::instance().gauge("test_obs.gauge");
  gauge.reset();
  gauge.set(10);
  gauge.add(-3);
  EXPECT_EQ(gauge.value(), 7);
  gauge.update_max(5);  // below current: no change
  EXPECT_EQ(gauge.value(), 7);
  gauge.update_max(19);
  EXPECT_EQ(gauge.value(), 19);
}

TEST(Observability, HistogramBucketBoundariesFollowBitWidth) {
  Histogram h;
  h.record(0);            // bucket 0: exact zeros
  h.record(1);            // bucket 1: [1, 2)
  h.record(2);            // bucket 2: [2, 4)
  h.record(3);            // bucket 2
  h.record(4);            // bucket 3: [4, 8)
  h.record(7);            // bucket 3
  h.record(8);            // bucket 4: [8, 16)
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 2u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 4 + 7 + 8);
  EXPECT_DOUBLE_EQ(h.mean(), 25.0 / 7.0);

  EXPECT_EQ(Histogram::bucket_floor(0), 0u);
  EXPECT_EQ(Histogram::bucket_floor(1), 1u);
  EXPECT_EQ(Histogram::bucket_floor(2), 2u);
  EXPECT_EQ(Histogram::bucket_floor(3), 4u);
  EXPECT_EQ(Histogram::bucket_floor(64), std::uint64_t{1} << 63);

  // The largest sample lands in the last bucket, never out of range.
  h.record(~std::uint64_t{0});
  EXPECT_EQ(h.bucket(Histogram::kBuckets - 1), 1u);

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.bucket(2), 0u);
}

TEST(Observability, HistogramConcurrentRecordingLosesNoSamples) {
  Histogram h;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        h.record(t + 1);  // thread t records value t+1, always bucketed
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  std::uint64_t expected_sum = 0;
  std::uint64_t bucket_total = 0;
  for (std::size_t t = 0; t < kThreads; ++t) {
    expected_sum += (t + 1) * kPerThread;
  }
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    bucket_total += h.bucket(i);
  }
  EXPECT_EQ(h.sum(), expected_sum);
  EXPECT_EQ(bucket_total, h.count());
}

TEST(Observability, QuantileReturnsBucketUpperEdge) {
  Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0u);  // empty
  for (int i = 0; i < 100; ++i) h.record(1);  // all of bucket 1
  // Upper-bound estimate: the exclusive top edge of bucket 1 is 2.
  EXPECT_EQ(h.quantile(0.5), 2u);
  EXPECT_EQ(h.quantile(0.99), 2u);
  for (int i = 0; i < 100; ++i) h.record(1000);  // bucket 10: [512, 1024)
  EXPECT_EQ(h.quantile(0.25), 2u);
  EXPECT_EQ(h.quantile(0.99), 1024u);
}

TEST(Observability, RegistryReturnsSameMetricForSameName) {
  auto& registry = MetricsRegistry::instance();
  EXPECT_EQ(&registry.counter("test_obs.same"), &registry.counter("test_obs.same"));
  EXPECT_EQ(&registry.gauge("test_obs.same_g"), &registry.gauge("test_obs.same_g"));
  EXPECT_EQ(&registry.histogram("test_obs.same_h", "ns"),
            &registry.histogram("test_obs.same_h", "ns"));
  EXPECT_EQ(&MetricsRegistry::instance(), &registry);
}

TEST(Observability, SnapshotCarriesValuesAndLookupsWork) {
  auto& registry = MetricsRegistry::instance();
  auto& ctr = registry.counter("test_obs.snap_ctr");
  auto& gauge = registry.gauge("test_obs.snap_gauge");
  auto& hist = registry.histogram("test_obs.snap_hist", "iterations");
  ctr.reset();
  gauge.reset();
  hist.reset();
  ctr.inc(5);
  gauge.set(-17);
  hist.record(3);
  hist.record(300);

  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter("test_obs.snap_ctr"), 5u);
  EXPECT_EQ(snap.gauge("test_obs.snap_gauge"), -17);
  EXPECT_EQ(snap.counter("test_obs.absent"), 0u);
  EXPECT_EQ(snap.gauge("test_obs.absent"), 0);
  EXPECT_EQ(snap.histogram("test_obs.absent"), nullptr);
  const auto* hv = snap.histogram("test_obs.snap_hist");
  ASSERT_NE(hv, nullptr);
  EXPECT_EQ(hv->unit, "iterations");
  EXPECT_EQ(hv->count, 2u);
  EXPECT_EQ(hv->sum, 303u);
  // Only non-empty buckets are exported: 3 → floor 2, 300 → floor 256.
  ASSERT_EQ(hv->buckets.size(), 2u);
  EXPECT_EQ(hv->buckets[0].first, 2u);
  EXPECT_EQ(hv->buckets[0].second, 1u);
  EXPECT_EQ(hv->buckets[1].first, 256u);
  EXPECT_EQ(hv->buckets[1].second, 1u);
}

TEST(Observability, TextExportListsMetricsAndDerivedRates) {
  auto& registry = MetricsRegistry::instance();
  registry.counter("test_obs.text_ctr").reset();
  registry.counter("test_obs.text_ctr").inc(7);
  // Feed the derived gram-cache rate: 3 hits / 1 miss = 0.75.
  auto& hits = registry.counter("gram_cache.hits");
  auto& misses = registry.counter("gram_cache.misses");
  const std::uint64_t h0 = hits.value();
  const std::uint64_t m0 = misses.value();
  hits.reset();
  misses.reset();
  hits.inc(3);
  misses.inc(1);

  const std::string text = registry.to_text();
  EXPECT_NE(text.find("counter test_obs.text_ctr 7"), std::string::npos);
  EXPECT_NE(text.find("derived gram_cache.hit_rate 0.75"), std::string::npos);

  hits.reset();
  misses.reset();
  hits.inc(h0);  // restore whatever earlier tests accumulated
  misses.inc(m0);
}

TEST(Observability, JsonExportHasTheDocumentedShape) {
  auto& registry = MetricsRegistry::instance();
  auto& hist = registry.histogram("test_obs.json_hist", "ns");
  hist.reset();
  hist.record(5);
  registry.counter("test_obs.json_ctr").reset();
  registry.counter("test_obs.json_ctr").inc(2);
  registry.gauge("test_obs.json_gauge").set(9);

  const std::string json = registry.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\": {"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\": {"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\": {"), std::string::npos);
  EXPECT_NE(json.find("\"derived\": {"), std::string::npos);
  EXPECT_NE(json.find("\"test_obs.json_ctr\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"test_obs.json_gauge\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"test_obs.json_hist\": {\"unit\": \"ns\", "
                      "\"count\": 1, \"sum\": 5"),
            std::string::npos);
  EXPECT_NE(json.find("\"buckets\": [[4, 1]]"), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity for the embedded
  // use in bench rows and report().
  int braces = 0;
  int brackets = 0;
  for (const char ch : json) {
    braces += ch == '{' ? 1 : ch == '}' ? -1 : 0;
    brackets += ch == '[' ? 1 : ch == ']' ? -1 : 0;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Observability, ScopedTimerIsInertWhenDisabled) {
  EnabledGuard guard;
  auto& hist =
      MetricsRegistry::instance().histogram("test_obs.toggle_hist", "ns");
  hist.reset();
  auto& ring = TraceRing::instance();
  ring.clear();

  set_enabled(false);
  {
    ScopedTimer timer(hist, "test_obs.disabled_span");
    EXPECT_EQ(timer.stop(), 0u);
  }
  { ScopedTimer timer(hist, "test_obs.disabled_span"); }
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(ring.total(), 0u);

  set_enabled(true);
  { ScopedTimer timer(hist, "test_obs.enabled_span"); }
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_EQ(ring.total(), 1u);
  const auto events = ring.recent();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test_obs.enabled_span");

  // Unnamed spans hit the histogram but never the ring.
  { ScopedTimer timer(hist); }
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_EQ(ring.total(), 1u);

  // stop() records exactly once; the destructor then does nothing.
  ScopedTimer timer(hist);
  (void)timer.stop();
  (void)timer.stop();
  EXPECT_EQ(hist.count(), 3u);
  ring.clear();
}

TEST(Observability, TraceRingWrapsAndKeepsOldestFirstOrder) {
  auto& ring = TraceRing::instance();
  ring.clear();
  const std::uint64_t pushes = TraceRing::kCapacity + 5;
  for (std::uint64_t i = 0; i < pushes; ++i) {
    ring.push(TraceEvent{"test_obs.wrap", i, 1, 0});
  }
  EXPECT_EQ(ring.total(), pushes);
  const auto events = ring.recent();
  ASSERT_EQ(events.size(), TraceRing::kCapacity);
  // Oldest surviving span is push #5; order is strictly oldest-first.
  EXPECT_EQ(events.front().start_ns, 5u);
  EXPECT_EQ(events.back().start_ns, pushes - 1);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].start_ns, events[i - 1].start_ns + 1);
  }
  const std::string json = ring.to_json();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"name\": \"test_obs.wrap\""), std::string::npos);
  ring.clear();
  EXPECT_EQ(ring.total(), 0u);
  EXPECT_TRUE(ring.recent().empty());
}

TEST(Observability, RegistryResetZeroesEverythingButKeepsReferences) {
  auto& registry = MetricsRegistry::instance();
  auto& ctr = registry.counter("test_obs.reset_ctr");
  auto& hist = registry.histogram("test_obs.reset_hist", "ns");
  ctr.inc(3);
  hist.record(8);
  registry.reset();
  EXPECT_EQ(ctr.value(), 0u);
  EXPECT_EQ(hist.count(), 0u);
  // The same reference keeps working after reset — call sites cache it.
  ctr.inc();
  EXPECT_EQ(ctr.value(), 1u);
  EXPECT_EQ(&registry.counter("test_obs.reset_ctr"), &ctr);
}

// ---- compiled SVM inference plan metrics ----------------------------

ml::SvmClassifier tiny_svm(bool probability = false) {
  Matrix X;
  std::vector<int> y;
  Rng rng(9);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 20; ++i) {
      X.append_row(std::vector<double>{rng.normal(4.0 * c, 0.8),
                                       rng.normal(-2.0 * c, 0.8)});
      y.push_back(c);
    }
  }
  ml::SvmConfig cfg;
  cfg.kernel = ml::Kernel::rbf(0.5);
  cfg.c = 10.0;
  cfg.probability = probability;
  cfg.platt_cv_folds = 2;
  ml::SvmClassifier clf(cfg, 3);
  clf.fit(X, y, 3);
  return clf;
}

TEST(Observability, SvmPlanGaugesPublishedOnBuild) {
  ml::set_svm_predict_mode(ml::SvmPredictMode::kCompiled);
  auto& registry = MetricsRegistry::instance();
  const std::uint64_t builds_before =
      registry.counter("svm.plan.builds").value();
  const auto clf = tiny_svm();
  const auto& plan = clf.inference_plan();

  const auto snap = registry.snapshot();
  EXPECT_EQ(registry.counter("svm.plan.builds").value(), builds_before + 1);
  EXPECT_EQ(snap.gauge("svm.plan.unique_svs"),
            static_cast<std::int64_t>(plan.unique_support_vectors()));
  EXPECT_EQ(snap.gauge("svm.plan.total_svs"),
            static_cast<std::int64_t>(plan.total_support_vectors()));
  EXPECT_EQ(snap.gauge("svm.plan.dedup_ratio_x1000"),
            static_cast<std::int64_t>(plan.dedup_ratio() * 1000.0));
  EXPECT_EQ(snap.gauge("svm.plan.pool_bytes"),
            static_cast<std::int64_t>(plan.pool_bytes()));
  EXPECT_EQ(snap.gauge("svm.plan.precision_bits"), 64);
}

TEST(Observability, SvmPredictCountersAccumulate) {
  EnabledGuard toggle;
  ml::set_svm_predict_mode(ml::SvmPredictMode::kCompiled);
  auto& registry = MetricsRegistry::instance();
  const auto clf = tiny_svm();
  const auto& plan = clf.inference_plan();
  const auto unique =
      static_cast<std::uint64_t>(plan.unique_support_vectors());

  auto& queries = registry.counter("svm.predict.queries");
  auto& elements = registry.counter("svm.predict.kernel_row_elements");
  auto& batches = registry.counter("svm.predict.batches");
  auto& batch_hist = registry.histogram("svm.predict.batch_ns", "ns");

  const std::vector<double> x{1.0, -1.0};
  const std::uint64_t q0 = queries.value();
  const std::uint64_t e0 = elements.value();
  (void)clf.predict_proba(x);
  EXPECT_EQ(queries.value(), q0 + 1);
  EXPECT_EQ(elements.value(), e0 + unique);

  Matrix probes;
  for (int i = 0; i < 5; ++i) probes.append_row(x);
  const std::uint64_t b0 = batches.value();
  const std::uint64_t h0 = batch_hist.count();
  set_enabled(true);  // batch latency histograms are gated on the toggle
  (void)clf.predict_proba_batch(probes);
  EXPECT_EQ(queries.value(), q0 + 6);
  EXPECT_EQ(elements.value(), e0 + 6 * unique);
  EXPECT_EQ(batches.value(), b0 + 1);
  EXPECT_EQ(batch_hist.count(), h0 + 1);
}

TEST(Observability, ServiceReportSurfacesPlanInfo) {
  ml::set_svm_predict_mode(ml::SvmPredictMode::kCompiled);
  auto gen = workload::WorkloadGenerator::standard({}, 77);
  const auto train_jobs = gen.generate_balanced(6);
  const auto schema = supremm::AttributeSchema::full();
  const auto train = workload::build_summary_dataset(
      train_jobs, schema, supremm::label_by_application());
  core::JobClassifierConfig cfg;
  cfg.algorithm = core::Algorithm::kSvm;
  cfg.svm.c = 10.0;
  cfg.svm.probability = false;
  auto clf = std::make_shared<core::JobClassifier>(cfg);
  clf->train(train);

  // The plan is built eagerly by the compiled-mode fit, so the report's
  // model line carries the pool stats without any prediction happening.
  core::ClassificationService service(clf, 0.5);
  const auto report = service.report();
  EXPECT_NE(report.find("model: svm"), std::string::npos);
  EXPECT_NE(report.find("predict=compiled"), std::string::npos);
  EXPECT_NE(report.find("plan "), std::string::npos);
  EXPECT_NE(report.find("dedup"), std::string::npos);
  EXPECT_NE(clf->model_info().find("machines"), std::string::npos);
}

}  // namespace
}  // namespace xdmodml::obs
