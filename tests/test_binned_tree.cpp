// Tests for the histogram-binned split engine: BinnedDataset semantics,
// binned-vs-exact split equivalence (bit-identical trees when every
// distinct value gets its own bin), histogram additivity (the identity
// behind the parent-minus-sibling subtraction trick), forest OOB parity
// between the two arms, and the tree loader's topology validation.
#include "ml/binned_dataset.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <vector>

#include "ml/decision_tree.hpp"
#include "ml/model_io.hpp"
#include "ml/random_forest.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace xdmodml::ml {
namespace {

/// Discrete three-class problem: every feature takes one of `levels`
/// values, so with levels <= 256 each distinct value gets its own bin
/// and the hist arm must reproduce the exact arm bit-for-bit.
void make_discrete_problem(std::size_t n, std::size_t levels, Matrix& X,
                           std::vector<int>& y, std::uint64_t seed = 1) {
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = static_cast<double>(rng.uniform_index(levels));
    const double b = static_cast<double>(rng.uniform_index(levels));
    const double noise = static_cast<double>(rng.uniform_index(levels));
    X.append_row(std::vector<double>{a, b, noise});
    const double half = static_cast<double>(levels) / 2.0;
    int cls = a < half ? (b < half ? 0 : 1) : 2;
    if (rng.uniform_index(10) == 0) cls = (cls + 1) % 3;  // label noise
    y.push_back(cls);
  }
}

/// Continuous three-class problem shaped like the job-classification
/// fixtures (class signal in two features, one pure-noise feature).
void make_continuous_problem(std::size_t n, Matrix& X, std::vector<int>& y,
                             std::uint64_t seed = 1) {
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(rng.uniform_index(3));
    const double f0 = static_cast<double>(cls) * 2.0 + rng.normal(0.0, 0.7);
    const double f1 = (cls == 2 ? 3.0 : 0.0) + rng.normal(0.0, 0.7);
    X.append_row(std::vector<double>{f0, f1, rng.normal(0.0, 1.0)});
    y.push_back(cls);
  }
}

TEST(BinnedDataset, OneBinPerDistinctValueWhenSaturated) {
  const Matrix X = Matrix::from_rows({{3.0}, {1.0}, {2.0}, {1.0}, {3.0}});
  const BinnedDataset binned(X);
  ASSERT_EQ(binned.features(), 1u);
  EXPECT_EQ(binned.rows(), 5u);
  ASSERT_EQ(binned.num_bins(0), 3u);
  EXPECT_EQ(binned.max_bins_used(), 3u);
  // Codes are the rank of the value among the distinct values.
  const std::vector<std::uint8_t> want{2, 0, 1, 0, 2};
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(binned.code(i, 0), want[i]) << "row " << i;
  }
  // Saturated bins hold exactly one value each.
  for (std::size_t b = 0; b < 3; ++b) {
    EXPECT_DOUBLE_EQ(binned.bin_min(0, b), static_cast<double>(b + 1));
    EXPECT_DOUBLE_EQ(binned.bin_max(0, b), static_cast<double>(b + 1));
  }
  // Threshold between adjacent bins is the exact-arm midpoint.
  EXPECT_DOUBLE_EQ(binned.split_threshold(0, 0, 1), 1.5);
  EXPECT_DOUBLE_EQ(binned.split_threshold(0, 1, 2), 2.5);
}

TEST(BinnedDataset, QuantileBinningCapsBinsAndKeepsOrder) {
  Matrix X;
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    X.append_row(std::vector<double>{rng.uniform(0.0, 1.0)});
  }
  const BinnedDataset binned(X, 16);
  ASSERT_LE(binned.num_bins(0), 16u);
  ASSERT_GE(binned.num_bins(0), 2u);
  // Code assignment is monotone in the raw value and bins are disjoint
  // ordered intervals: max of bin b sits strictly below min of bin b+1.
  for (std::size_t i = 0; i < X.rows(); ++i) {
    const double v = X.row(i)[0];
    const auto c = binned.code(i, 0);
    EXPECT_GE(v, binned.bin_min(0, c));
    EXPECT_LE(v, binned.bin_max(0, c));
  }
  for (std::size_t b = 0; b + 1 < binned.num_bins(0); ++b) {
    EXPECT_LE(binned.bin_min(0, b), binned.bin_max(0, b));
    EXPECT_LT(binned.bin_max(0, b), binned.bin_min(0, b + 1));
  }
}

TEST(BinnedDataset, DeterministicAcrossConstructions) {
  Matrix X;
  Rng rng(12);
  for (int i = 0; i < 600; ++i) {
    X.append_row(std::vector<double>{rng.normal(), rng.uniform(0.0, 5.0),
                                     static_cast<double>(rng.uniform_index(4))});
  }
  const BinnedDataset a(X, 32);
  const BinnedDataset b(X, 32);
  ASSERT_EQ(a.features(), b.features());
  ASSERT_EQ(a.rows(), b.rows());
  for (std::size_t f = 0; f < a.features(); ++f) {
    ASSERT_EQ(a.num_bins(f), b.num_bins(f)) << "feature " << f;
    for (std::size_t i = 0; i < a.rows(); ++i) {
      ASSERT_EQ(a.code(i, f), b.code(i, f)) << "row " << i;
    }
    for (std::size_t bin = 0; bin < a.num_bins(f); ++bin) {
      EXPECT_DOUBLE_EQ(a.bin_min(f, bin), b.bin_min(f, bin));
      EXPECT_DOUBLE_EQ(a.bin_max(f, bin), b.bin_max(f, bin));
    }
  }
}

TEST(BinnedDataset, SelectFeaturesCopiesColumnsVerbatim) {
  Matrix X;
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    X.append_row(std::vector<double>{rng.normal(), rng.normal(),
                                     rng.normal()});
  }
  const BinnedDataset full(X);
  const std::vector<std::size_t> keep{2, 0};
  const BinnedDataset sub = full.select_features(keep);
  ASSERT_EQ(sub.features(), 2u);
  EXPECT_EQ(sub.rows(), full.rows());
  for (std::size_t k = 0; k < keep.size(); ++k) {
    ASSERT_EQ(sub.num_bins(k), full.num_bins(keep[k]));
    for (std::size_t i = 0; i < full.rows(); ++i) {
      ASSERT_EQ(sub.code(i, k), full.code(i, keep[k]));
    }
    for (std::size_t b = 0; b < sub.num_bins(k); ++b) {
      EXPECT_DOUBLE_EQ(sub.bin_min(k, b), full.bin_min(keep[k], b));
      EXPECT_DOUBLE_EQ(sub.bin_max(k, b), full.bin_max(keep[k], b));
    }
  }
  EXPECT_THROW(full.select_features(std::vector<std::size_t>{99}),
               InvalidArgument);
}

TEST(BinnedDataset, RejectsEmptyMatrix) {
  EXPECT_THROW(BinnedDataset(Matrix{}), InvalidArgument);
}

TEST(HistAccumulation, ParentHistEqualsLeftPlusRight) {
  Matrix X;
  std::vector<int> y;
  make_discrete_problem(500, 6, X, y, 21);
  const BinnedDataset binned(X);

  // Split the sample multiset (with duplicates, like a bootstrap draw)
  // into two arbitrary halves; per-bin counts must add exactly.
  Rng rng(22);
  std::vector<std::size_t> parent;
  for (int i = 0; i < 700; ++i) parent.push_back(rng.uniform_index(X.rows()));
  const std::span<const std::size_t> left(parent.data(), 300);
  const std::span<const std::size_t> right(parent.data() + 300,
                                           parent.size() - 300);

  for (std::size_t f = 0; f < binned.features(); ++f) {
    const std::size_t width = binned.num_bins(f) * 3;
    std::vector<double> hp(width, 0.0), hl(width, 0.0), hr(width, 0.0);
    accumulate_class_hist(binned, f, parent, y, 3, hp);
    accumulate_class_hist(binned, f, left, y, 3, hl);
    accumulate_class_hist(binned, f, right, y, 3, hr);
    double total = 0.0;
    for (std::size_t k = 0; k < width; ++k) {
      EXPECT_DOUBLE_EQ(hp[k], hl[k] + hr[k]) << "slot " << k;
      total += hp[k];
    }
    EXPECT_DOUBLE_EQ(total, static_cast<double>(parent.size()));
  }
}

TEST(HistAccumulation, ValueHistAddsExactlyOnIntegralTargets) {
  Matrix X;
  std::vector<int> labels;
  make_discrete_problem(400, 5, X, labels, 23);
  // Integral targets keep the per-bin sums exact under any summation
  // order, so parent == left + right holds to the last bit.
  std::vector<double> targets;
  for (std::size_t i = 0; i < X.rows(); ++i) {
    targets.push_back(static_cast<double>(i % 7));
  }
  const BinnedDataset binned(X);
  std::vector<std::size_t> parent(X.rows());
  std::iota(parent.begin(), parent.end(), 0);
  const std::span<const std::size_t> left(parent.data(), 150);
  const std::span<const std::size_t> right(parent.data() + 150,
                                           parent.size() - 150);
  for (std::size_t f = 0; f < binned.features(); ++f) {
    const std::size_t width = binned.num_bins(f) * 3;
    std::vector<double> hp(width, 0.0), hl(width, 0.0), hr(width, 0.0);
    accumulate_value_hist(binned, f, parent, targets, hp);
    accumulate_value_hist(binned, f, left, targets, hl);
    accumulate_value_hist(binned, f, right, targets, hr);
    for (std::size_t k = 0; k < width; ++k) {
      EXPECT_DOUBLE_EQ(hp[k], hl[k] + hr[k]) << "slot " << k;
    }
  }
}

TEST(ResolveSplitAlgo, ExplicitRequestAlwaysWins) {
  EXPECT_EQ(resolve_split_algo(SplitAlgo::kExact), SplitAlgo::kExact);
  EXPECT_EQ(resolve_split_algo(SplitAlgo::kHist), SplitAlgo::kHist);
}

TEST(SplitEquivalence, ClassifierBitIdenticalOnDiscreteData) {
  Matrix X;
  std::vector<int> y;
  make_discrete_problem(400, 8, X, y, 31);

  TreeConfig exact_cfg;
  exact_cfg.split_algo = SplitAlgo::kExact;
  TreeConfig hist_cfg;
  hist_cfg.split_algo = SplitAlgo::kHist;
  DecisionTreeClassifier exact(exact_cfg, 42);
  DecisionTreeClassifier hist(hist_cfg, 42);
  exact.fit(X, y, 3);
  hist.fit(X, y, 3);

  EXPECT_EQ(exact.node_count(), hist.node_count());
  EXPECT_EQ(exact.depth(), hist.depth());
  for (std::size_t r = 0; r < X.rows(); ++r) {
    const auto pe = exact.predict_proba(X.row(r));
    const auto ph = hist.predict_proba(X.row(r));
    ASSERT_EQ(pe.size(), ph.size());
    for (std::size_t c = 0; c < pe.size(); ++c) {
      ASSERT_EQ(pe[c], ph[c]) << "row " << r << " class " << c;
    }
  }
}

TEST(SplitEquivalence, ClassifierMatchesUnderFeatureSubsampling) {
  // mtry < F exercises the lazy Fisher-Yates draw; both arms must skip
  // constant features identically for the RNG streams to stay in sync.
  Matrix X;
  std::vector<int> y;
  make_discrete_problem(300, 6, X, y, 32);
  // Append a constant column to force the constant-doesn't-count path.
  Matrix wide;
  for (std::size_t r = 0; r < X.rows(); ++r) {
    auto row = std::vector<double>(X.row(r).begin(), X.row(r).end());
    row.push_back(1.0);
    wide.append_row(row);
  }
  TreeConfig exact_cfg;
  exact_cfg.split_algo = SplitAlgo::kExact;
  exact_cfg.max_features = 2;
  TreeConfig hist_cfg = exact_cfg;
  hist_cfg.split_algo = SplitAlgo::kHist;
  DecisionTreeClassifier exact(exact_cfg, 7);
  DecisionTreeClassifier hist(hist_cfg, 7);
  exact.fit(wide, y, 3);
  hist.fit(wide, y, 3);
  EXPECT_EQ(exact.node_count(), hist.node_count());
  for (std::size_t r = 0; r < wide.rows(); ++r) {
    const auto pe = exact.predict_proba(wide.row(r));
    const auto ph = hist.predict_proba(wide.row(r));
    for (std::size_t c = 0; c < pe.size(); ++c) {
      ASSERT_EQ(pe[c], ph[c]) << "row " << r;
    }
  }
}

TEST(SplitEquivalence, RegressorMatchesOnIntegralStepFunction) {
  // Integral feature values and targets keep every partial sum exact in
  // both arms, so split decisions — and therefore trees — coincide.
  Matrix X;
  std::vector<double> y;
  Rng rng(33);
  for (int i = 0; i < 500; ++i) {
    const double a = static_cast<double>(rng.uniform_index(10));
    const double b = static_cast<double>(rng.uniform_index(10));
    X.append_row(std::vector<double>{a, b});
    y.push_back(a < 5.0 ? 1.0 : (b < 5.0 ? 3.0 : 5.0));
  }
  TreeConfig exact_cfg;
  exact_cfg.split_algo = SplitAlgo::kExact;
  TreeConfig hist_cfg;
  hist_cfg.split_algo = SplitAlgo::kHist;
  DecisionTreeRegressor exact(exact_cfg, 5);
  DecisionTreeRegressor hist(hist_cfg, 5);
  exact.fit(X, y);
  hist.fit(X, y);
  EXPECT_EQ(exact.node_count(), hist.node_count());
  for (std::size_t r = 0; r < X.rows(); ++r) {
    EXPECT_NEAR(exact.predict(X.row(r)), hist.predict(X.row(r)), 1e-12)
        << "row " << r;
  }
}

TEST(SplitEquivalence, ForestIdenticalOnDiscreteData) {
  Matrix X;
  std::vector<int> y;
  make_discrete_problem(600, 8, X, y, 34);

  ForestConfig exact_cfg;
  exact_cfg.num_trees = 30;
  exact_cfg.tree.split_algo = SplitAlgo::kExact;
  ForestConfig hist_cfg = exact_cfg;
  hist_cfg.tree.split_algo = SplitAlgo::kHist;

  RandomForestClassifier exact(exact_cfg, 9);
  RandomForestClassifier hist(hist_cfg, 9);
  exact.fit(X, y, 3);
  hist.fit(X, y, 3);

  // Same bootstrap streams + bit-identical trees => identical OOB error
  // and identical soft votes.
  EXPECT_DOUBLE_EQ(exact.oob_error(), hist.oob_error());
  for (std::size_t r = 0; r < X.rows(); ++r) {
    const auto pe = exact.predict_proba(X.row(r));
    const auto ph = hist.predict_proba(X.row(r));
    for (std::size_t c = 0; c < pe.size(); ++c) {
      ASSERT_EQ(pe[c], ph[c]) << "row " << r;
    }
  }
}

TEST(SplitEquivalence, ForestOobParityOnContinuousFixture) {
  // Continuous features quantile-bin lossily, so the arms legitimately
  // differ — but OOB error must stay within a tight band (the ISSUE's
  // acceptance bar is 1% absolute on the bench fixture).
  Matrix X;
  std::vector<int> y;
  make_continuous_problem(1200, X, y, 35);

  ForestConfig exact_cfg;
  exact_cfg.num_trees = 60;
  exact_cfg.tree.split_algo = SplitAlgo::kExact;
  ForestConfig hist_cfg = exact_cfg;
  hist_cfg.tree.split_algo = SplitAlgo::kHist;

  RandomForestClassifier exact(exact_cfg, 17);
  RandomForestClassifier hist(hist_cfg, 17);
  exact.fit(X, y, 3);
  hist.fit(X, y, 3);
  EXPECT_NEAR(exact.oob_error(), hist.oob_error(), 0.02);

  Matrix xt;
  std::vector<int> yt;
  make_continuous_problem(400, xt, yt, 36);
  std::size_t ce = 0, ch = 0;
  for (std::size_t r = 0; r < xt.rows(); ++r) {
    if (exact.predict(xt.row(r)) == yt[r]) ++ce;
    if (hist.predict(xt.row(r)) == yt[r]) ++ch;
  }
  const auto n = static_cast<double>(xt.rows());
  EXPECT_GT(static_cast<double>(ce) / n, 0.9);
  EXPECT_GT(static_cast<double>(ch) / n, 0.9);
}

TEST(SplitEquivalence, SharedBinnedDatasetMatchesSelfBinned) {
  Matrix X;
  std::vector<int> y;
  make_discrete_problem(500, 8, X, y, 37);
  std::vector<std::size_t> rows(X.rows());
  std::iota(rows.begin(), rows.end(), 0);

  ForestConfig cfg;
  cfg.num_trees = 20;
  cfg.tree.split_algo = SplitAlgo::kHist;

  RandomForestClassifier self_binned(cfg, 3);
  self_binned.fit(X, y, 3);
  RandomForestClassifier shared(cfg, 3);
  shared.fit_rows(X, y, 3, rows,
                  std::make_shared<const BinnedDataset>(X));
  EXPECT_DOUBLE_EQ(self_binned.oob_error(), shared.oob_error());
  for (std::size_t r = 0; r < X.rows(); ++r) {
    const auto pa = self_binned.predict_proba(X.row(r));
    const auto pb = shared.predict_proba(X.row(r));
    for (std::size_t c = 0; c < pa.size(); ++c) {
      ASSERT_EQ(pa[c], pb[c]) << "row " << r;
    }
  }
}

TEST(HistMetrics, SubtractionAndScanCountersAdvance) {
  // Few distinct values + many rows keeps n >= 2 * max_bins_used at the
  // top of the tree, so the sibling store engages and right children get
  // their histograms by subtraction rather than accumulation.
  Matrix X;
  std::vector<int> y;
  make_discrete_problem(2000, 8, X, y, 41);

  auto& registry = obs::MetricsRegistry::instance();
  const auto before = registry.snapshot();
  TreeConfig cfg;
  cfg.split_algo = SplitAlgo::kHist;
  DecisionTreeClassifier tree(cfg, 2);
  tree.fit(X, y, 3);
  const auto after = registry.snapshot();

  EXPECT_GT(after.counter("tree.nodes"), before.counter("tree.nodes"));
  EXPECT_GT(after.counter("tree.hist_built"),
            before.counter("tree.hist_built"));
  EXPECT_GT(after.counter("tree.hist_subtracted"),
            before.counter("tree.hist_subtracted"));
  EXPECT_GT(after.counter("tree.hist_scan_bins"),
            before.counter("tree.hist_scan_bins"));
  // The hist arm never sorts node samples.
  EXPECT_EQ(after.counter("tree.exact_sorted_values"),
            before.counter("tree.exact_sorted_values"));

  TreeConfig exact_cfg;
  exact_cfg.split_algo = SplitAlgo::kExact;
  DecisionTreeClassifier exact(exact_cfg, 2);
  exact.fit(X, y, 3);
  const auto last = registry.snapshot();
  EXPECT_GT(last.counter("tree.exact_sorted_values"),
            after.counter("tree.exact_sorted_values"));
}

// ---------------------------------------------------------------------
// Loader topology validation (crafted tree-v1 payloads).

struct NodeSpec {
  int feature = -1;
  double threshold = 0.0;
  std::int64_t left = 0;
  std::int64_t right = 0;
  double value = 0.0;
  std::vector<double> probs;
};

std::string tree_payload(int task, int classes, int features,
                         const std::vector<NodeSpec>& nodes) {
  std::ostringstream out;
  io::write_tag(out, "tree-v1");
  io::write_scalar(out, "task", static_cast<std::int64_t>(task));
  io::write_scalar(out, "classes", static_cast<std::int64_t>(classes));
  io::write_scalar(out, "features", static_cast<std::int64_t>(features));
  io::write_scalar(out, "nodes", static_cast<std::int64_t>(nodes.size()));
  for (const auto& n : nodes) {
    io::write_scalar(out, "f", static_cast<std::int64_t>(n.feature));
    io::write_scalar(out, "t", n.threshold);
    io::write_scalar(out, "l", n.left);
    io::write_scalar(out, "r", n.right);
    io::write_scalar(out, "v", n.value);
    io::write_vector(out, "p", n.probs);
  }
  io::write_vector(out, "importance",
                   std::vector<double>(static_cast<std::size_t>(features)));
  return out.str();
}

detail::TreeEngine load_payload(const std::string& payload) {
  std::istringstream in(payload);
  return detail::TreeEngine::load(in);
}

TEST(TreeLoad, AcceptsValidStump) {
  const auto payload = tree_payload(
      0, 2, 1,
      {{0, 0.5, 1, 2, 0.0, {}},
       {-1, 0.0, 0, 0, 0.0, {1.0, 0.0}},
       {-1, 0.0, 0, 0, 0.0, {0.0, 1.0}}});
  const auto engine = load_payload(payload);
  EXPECT_EQ(engine.node_count(), 3u);
  const std::vector<double> lo{0.0}, hi{1.0};
  EXPECT_DOUBLE_EQ(engine.leaf_probs(lo)[0], 1.0);
  EXPECT_DOUBLE_EQ(engine.leaf_probs(hi)[1], 1.0);
}

TEST(TreeLoad, RejectsSelfLoopChild) {
  // Root pointing left at itself: descend() would spin forever.
  const auto payload = tree_payload(
      0, 2, 1,
      {{0, 0.5, 0, 1, 0.0, {}},
       {-1, 0.0, 0, 0, 0.0, {1.0, 0.0}}});
  EXPECT_THROW(load_payload(payload), InvalidArgument);
}

TEST(TreeLoad, RejectsBackEdgeToAncestor) {
  // Node 1 points left back at the root: a cycle through two nodes.
  const auto payload = tree_payload(
      0, 2, 1,
      {{0, 0.5, 1, 2, 0.0, {}},
       {0, 0.2, 0, 2, 0.0, {}},
       {-1, 0.0, 0, 0, 0.0, {0.5, 0.5}}});
  EXPECT_THROW(load_payload(payload), InvalidArgument);
}

TEST(TreeLoad, RejectsOutOfRangeChild) {
  const auto payload = tree_payload(
      0, 2, 1,
      {{0, 0.5, 1, 7, 0.0, {}},
       {-1, 0.0, 0, 0, 0.0, {1.0, 0.0}}});
  EXPECT_THROW(load_payload(payload), InvalidArgument);
}

TEST(TreeLoad, RejectsOutOfRangeFeature) {
  const auto payload = tree_payload(
      0, 2, 2,
      {{5, 0.5, 1, 2, 0.0, {}},
       {-1, 0.0, 0, 0, 0.0, {1.0, 0.0}},
       {-1, 0.0, 0, 0, 0.0, {0.0, 1.0}}});
  EXPECT_THROW(load_payload(payload), InvalidArgument);
}

TEST(TreeLoad, RejectsLeafDistributionWidthMismatch) {
  // Classification leaf carrying three probabilities in a 2-class tree.
  const auto payload = tree_payload(
      0, 2, 1, {{-1, 0.0, 0, 0, 0.0, {0.5, 0.25, 0.25}}});
  EXPECT_THROW(load_payload(payload), InvalidArgument);
}

TEST(TreeLoad, RoundTripsTrainedTree) {
  Matrix X;
  std::vector<int> y;
  make_discrete_problem(200, 6, X, y, 51);
  TreeConfig cfg;
  cfg.split_algo = SplitAlgo::kHist;
  DecisionTreeClassifier tree(cfg, 4);
  tree.fit(X, y, 3);
  // Round-trip through the engine-level save/load.
  std::vector<std::size_t> all(X.rows());
  std::iota(all.begin(), all.end(), 0);
  Rng rng(4);
  detail::TreeEngine engine(detail::TreeEngine::Task::kClassification, cfg);
  engine.fit(X, y, {}, 3, all, rng);
  std::stringstream buf;
  engine.save(buf);
  const auto loaded = detail::TreeEngine::load(buf);
  EXPECT_EQ(loaded.node_count(), engine.node_count());
  for (std::size_t r = 0; r < X.rows(); ++r) {
    const auto pa = engine.leaf_probs(X.row(r));
    const auto pb = loaded.leaf_probs(X.row(r));
    for (std::size_t c = 0; c < pa.size(); ++c) {
      ASSERT_EQ(pa[c], pb[c]) << "row " << r;
    }
  }
}

}  // namespace
}  // namespace xdmodml::ml
