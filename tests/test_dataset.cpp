// Tests for Dataset, splits, balanced sampling, standardization, encoding.
#include "ml/dataset.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/error.hpp"

namespace xdmodml::ml {
namespace {

Dataset make_dataset(std::size_t per_class, std::size_t classes) {
  Dataset ds;
  for (std::size_t c = 0; c < classes; ++c) {
    ds.class_names.push_back("class" + std::to_string(c));
    for (std::size_t i = 0; i < per_class; ++i) {
      ds.X.append_row(std::vector<double>{static_cast<double>(c),
                                          static_cast<double>(i)});
      ds.labels.push_back(static_cast<int>(c));
    }
  }
  ds.feature_names = {"f0", "f1"};
  return ds;
}

TEST(Dataset, ValidateAcceptsConsistent) {
  const auto ds = make_dataset(3, 2);
  EXPECT_NO_THROW(ds.validate());
  EXPECT_EQ(ds.size(), 6u);
  EXPECT_EQ(ds.num_features(), 2u);
  EXPECT_EQ(ds.num_classes(), 2u);
}

TEST(Dataset, ValidateRejectsBadLabelRange) {
  auto ds = make_dataset(2, 2);
  ds.labels[0] = 5;
  EXPECT_THROW(ds.validate(), InvalidArgument);
}

TEST(Dataset, ValidateRejectsLengthMismatch) {
  auto ds = make_dataset(2, 2);
  ds.labels.pop_back();
  EXPECT_THROW(ds.validate(), InvalidArgument);
}

TEST(Dataset, ValidateRejectsBothTargets) {
  auto ds = make_dataset(2, 2);
  ds.targets.assign(ds.size(), 1.0);
  EXPECT_THROW(ds.validate(), InvalidArgument);
}

TEST(Dataset, SubsetCarriesLabelsAndNames) {
  const auto ds = make_dataset(3, 2);
  const std::vector<std::size_t> idx{0, 4};
  const auto sub = ds.subset(idx);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.labels, (std::vector<int>{0, 1}));
  EXPECT_EQ(sub.feature_names, ds.feature_names);
  EXPECT_EQ(sub.class_names, ds.class_names);
}

TEST(Dataset, SelectFeaturesReordersColumns) {
  const auto ds = make_dataset(2, 2);
  const std::vector<std::size_t> cols{1};
  const auto sub = ds.select_features(cols);
  EXPECT_EQ(sub.num_features(), 1u);
  EXPECT_EQ(sub.feature_names, (std::vector<std::string>{"f1"}));
  EXPECT_DOUBLE_EQ(sub.X(1, 0), 1.0);
  EXPECT_EQ(sub.labels.size(), ds.labels.size());
}

TEST(Dataset, ClassCounts) {
  const auto ds = make_dataset(4, 3);
  const auto counts = ds.class_counts();
  EXPECT_EQ(counts, (std::vector<std::size_t>{4, 4, 4}));
}

TEST(Split, StratifiedPreservesClassRatios) {
  const auto ds = make_dataset(100, 3);
  Rng rng(1);
  const auto split = stratified_split(ds, 0.7, rng);
  EXPECT_EQ(split.train.size(), 210u);
  EXPECT_EQ(split.test.size(), 90u);
  std::vector<int> train_counts(3, 0);
  for (const auto i : split.train) ++train_counts[ds.labels[i]];
  for (const int c : train_counts) EXPECT_EQ(c, 70);
}

TEST(Split, TrainAndTestDisjointAndComplete) {
  const auto ds = make_dataset(10, 2);
  Rng rng(2);
  const auto split = stratified_split(ds, 0.5, rng);
  std::set<std::size_t> all(split.train.begin(), split.train.end());
  all.insert(split.test.begin(), split.test.end());
  EXPECT_EQ(all.size(), ds.size());
}

TEST(Split, ExtremeFractions) {
  const auto ds = make_dataset(10, 2);
  Rng rng(3);
  EXPECT_TRUE(stratified_split(ds, 0.0, rng).train.empty());
  EXPECT_TRUE(stratified_split(ds, 1.0, rng).test.empty());
  EXPECT_THROW(stratified_split(ds, 1.5, rng), InvalidArgument);
}

TEST(BalancedSample, TakesPerClassUpToAvailable) {
  Dataset ds = make_dataset(10, 2);
  // Make class 1 scarce: drop to 4 rows.
  std::vector<std::size_t> keep;
  int kept1 = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (ds.labels[i] == 1 && ++kept1 > 4) continue;
    keep.push_back(i);
  }
  ds = ds.subset(keep);
  Rng rng(4);
  const auto sample = balanced_sample(ds, 6, rng);
  std::vector<int> counts(2, 0);
  for (const auto i : sample) ++counts[ds.labels[i]];
  EXPECT_EQ(counts[0], 6);
  EXPECT_EQ(counts[1], 4);  // all it had
}

TEST(BalancedSample, NoDuplicates) {
  const auto ds = make_dataset(20, 2);
  Rng rng(5);
  const auto sample = balanced_sample(ds, 15, rng);
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), sample.size());
}

TEST(RandomSample, SizesAndBounds) {
  Rng rng(6);
  const auto s = random_sample(50, 20, rng);
  EXPECT_EQ(s.size(), 20u);
  for (const auto i : s) EXPECT_LT(i, 50u);
  EXPECT_EQ(random_sample(5, 100, rng).size(), 5u);  // clamps
}

TEST(Standardizer, TransformsToZeroMeanUnitVariance) {
  auto X = Matrix::from_rows({{1.0, 10.0}, {2.0, 20.0}, {3.0, 30.0}});
  Standardizer s;
  const auto Z = s.fit_transform(X);
  for (std::size_t c = 0; c < 2; ++c) {
    double m = 0.0;
    for (std::size_t r = 0; r < 3; ++r) m += Z(r, c);
    EXPECT_NEAR(m / 3.0, 0.0, 1e-12);
  }
  EXPECT_NEAR(Z(0, 0), -1.0, 1e-12);
  EXPECT_NEAR(Z(2, 0), 1.0, 1e-12);
}

TEST(Standardizer, ConstantColumnMapsToZero) {
  auto X = Matrix::from_rows({{5.0}, {5.0}, {5.0}});
  Standardizer s;
  const auto Z = s.fit_transform(X);
  for (std::size_t r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(Z(r, 0), 0.0);
}

TEST(Standardizer, RequiresFitFirst) {
  Standardizer s;
  const auto X = Matrix::from_rows({{1.0}});
  EXPECT_THROW(s.transform(X), InvalidArgument);
  std::vector<double> row{1.0};
  EXPECT_THROW(s.transform_row(row), InvalidArgument);
}

TEST(Standardizer, RejectsWidthMismatch) {
  Standardizer s;
  s.fit(Matrix::from_rows({{1.0, 2.0}, {2.0, 1.0}}));
  EXPECT_THROW(s.transform(Matrix::from_rows({{1.0}})), InvalidArgument);
}

TEST(LabelEncoder, EncodeDecodeRoundTrip) {
  LabelEncoder enc;
  EXPECT_EQ(enc.encode("VASP"), 0);
  EXPECT_EQ(enc.encode("NAMD"), 1);
  EXPECT_EQ(enc.encode("VASP"), 0);  // idempotent
  EXPECT_EQ(enc.size(), 2u);
  EXPECT_EQ(enc.decode(1), "NAMD");
  EXPECT_THROW(enc.decode(2), InvalidArgument);
  EXPECT_EQ(enc.lookup("NAMD").value(), 1);
  EXPECT_FALSE(enc.lookup("LAMMPS").has_value());
}

}  // namespace
}  // namespace xdmodml::ml
