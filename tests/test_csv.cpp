// Tests for CSV escaping, writing and parsing (round-trip included).
#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace xdmodml {
namespace {

TEST(CsvEscape, PlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(CsvEscape, CommaQuoted) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, QuoteDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlineQuoted) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriter, WritesRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row(std::vector<std::string>{"x", "y"});
  w.write_row(std::vector<double>{1.5, -2.0});
  EXPECT_EQ(os.str(), "x,y\n1.5,-2\n");
}

TEST(CsvParse, SimpleLine) {
  const auto fields = parse_csv_line("a,b,c");
  EXPECT_EQ(fields, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvParse, EmptyFieldsKept) {
  const auto fields = parse_csv_line("a,,c,");
  EXPECT_EQ(fields, (std::vector<std::string>{"a", "", "c", ""}));
}

TEST(CsvParse, QuotedCommaAndQuote) {
  const auto fields = parse_csv_line("\"a,b\",\"say \"\"hi\"\"\"");
  EXPECT_EQ(fields, (std::vector<std::string>{"a,b", "say \"hi\""}));
}

TEST(CsvParse, ToleratesCrlf) {
  const auto fields = parse_csv_line("a,b\r");
  EXPECT_EQ(fields, (std::vector<std::string>{"a", "b"}));
}

TEST(CsvParse, DocumentHeaderAndRows) {
  std::istringstream in("name,value\nfoo,1\nbar,2\n");
  const auto doc = parse_csv(in);
  EXPECT_EQ(doc.header, (std::vector<std::string>{"name", "value"}));
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[1][0], "bar");
  EXPECT_EQ(doc.column_index("value"), 1u);
  EXPECT_THROW(doc.column_index("missing"), InvalidArgument);
}

TEST(CsvParse, RejectsRaggedRows) {
  std::istringstream in("a,b\n1,2,3\n");
  EXPECT_THROW(parse_csv(in), InvalidArgument);
}

TEST(CsvParse, RaggedRowMessageNamesRowAndWidths) {
  std::istringstream in("a,b\n1,2\n1,2,3\n");
  try {
    parse_csv(in);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("row 2"), std::string::npos) << message;
    EXPECT_NE(message.find("3 fields"), std::string::npos) << message;
    EXPECT_NE(message.find("header has 2"), std::string::npos) << message;
  }
}

TEST(CsvParse, QuotedNewlinesSpanPhysicalLines) {
  std::istringstream in("name,note\njob1,\"line one\nline two\"\njob2,ok\n");
  const auto doc = parse_csv(in);
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0][1], "line one\nline two");
  EXPECT_EQ(doc.rows[1][1], "ok");
}

TEST(CsvParse, RejectsUnterminatedQuotedField) {
  std::istringstream in("a,b\n1,\"never closed\n");
  EXPECT_THROW(parse_csv(in), InvalidArgument);
}

TEST(CsvParse, WriterParserRoundTripWithNewlines) {
  // The writer quotes embedded newlines per RFC 4180; the parser must
  // read them back (this round trip used to fail: parse_csv read
  // line-by-line and split the quoted field in two).
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row(std::vector<std::string>{"id", "note", "tag"});
  w.write_row(std::vector<std::string>{"1", "first\nsecond\nthird", "x"});
  w.write_row(std::vector<std::string>{"2", "crlf\r\nstyle", "says \"hi\""});
  w.write_row(std::vector<std::string>{"3", "plain", ","});
  std::istringstream in(os.str());
  const auto doc = parse_csv(in);
  EXPECT_EQ(doc.header, (std::vector<std::string>{"id", "note", "tag"}));
  ASSERT_EQ(doc.rows.size(), 3u);
  EXPECT_EQ(doc.rows[0][1], "first\nsecond\nthird");
  EXPECT_EQ(doc.rows[1][1], "crlf\r\nstyle");
  EXPECT_EQ(doc.rows[1][2], "says \"hi\"");
  EXPECT_EQ(doc.rows[2][2], ",");
}

TEST(CsvParse, RoundTrip) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row(std::vector<std::string>{"metric", "note"});
  w.write_row(std::vector<std::string>{"cpu,user", "say \"hi\""});
  std::istringstream in(os.str());
  const auto doc = parse_csv(in);
  EXPECT_EQ(doc.header[0], "metric");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "cpu,user");
  EXPECT_EQ(doc.rows[0][1], "say \"hi\"");
}

}  // namespace
}  // namespace xdmodml
