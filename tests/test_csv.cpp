// Tests for CSV escaping, writing and parsing (round-trip included),
// plus the parser's fault sites (csv.parse.read / csv.parse.truncate).
#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace xdmodml {
namespace {

TEST(CsvEscape, PlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(CsvEscape, CommaQuoted) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, QuoteDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlineQuoted) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriter, WritesRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row(std::vector<std::string>{"x", "y"});
  w.write_row(std::vector<double>{1.5, -2.0});
  EXPECT_EQ(os.str(), "x,y\n1.5,-2\n");
}

TEST(CsvParse, SimpleLine) {
  const auto fields = parse_csv_line("a,b,c");
  EXPECT_EQ(fields, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvParse, EmptyFieldsKept) {
  const auto fields = parse_csv_line("a,,c,");
  EXPECT_EQ(fields, (std::vector<std::string>{"a", "", "c", ""}));
}

TEST(CsvParse, QuotedCommaAndQuote) {
  const auto fields = parse_csv_line("\"a,b\",\"say \"\"hi\"\"\"");
  EXPECT_EQ(fields, (std::vector<std::string>{"a,b", "say \"hi\""}));
}

TEST(CsvParse, ToleratesCrlf) {
  const auto fields = parse_csv_line("a,b\r");
  EXPECT_EQ(fields, (std::vector<std::string>{"a", "b"}));
}

TEST(CsvParse, DocumentHeaderAndRows) {
  std::istringstream in("name,value\nfoo,1\nbar,2\n");
  const auto doc = parse_csv(in);
  EXPECT_EQ(doc.header, (std::vector<std::string>{"name", "value"}));
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[1][0], "bar");
  EXPECT_EQ(doc.column_index("value"), 1u);
  EXPECT_THROW(doc.column_index("missing"), InvalidArgument);
}

TEST(CsvParse, RejectsRaggedRows) {
  std::istringstream in("a,b\n1,2,3\n");
  EXPECT_THROW(parse_csv(in), InvalidArgument);
}

TEST(CsvParse, RaggedRowMessageNamesRowAndWidths) {
  std::istringstream in("a,b\n1,2\n1,2,3\n");
  try {
    parse_csv(in);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("row 2"), std::string::npos) << message;
    EXPECT_NE(message.find("3 fields"), std::string::npos) << message;
    EXPECT_NE(message.find("header has 2"), std::string::npos) << message;
  }
}

TEST(CsvParse, RaggedRowAfterQuotedNewlinesReportsPhysicalLine) {
  // Data row 1 spans physical lines 2-3 (quoted embedded newline), so
  // the ragged row 2 starts on physical line 4.  The old message used
  // the logical row count as the line number, which pointed an editor
  // two lines too high the moment any earlier field wrapped.
  std::istringstream in("a,b\n1,\"x\ny\"\n1,2,3\n");
  try {
    parse_csv(in);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("row 2"), std::string::npos) << message;
    EXPECT_NE(message.find("(line 4)"), std::string::npos) << message;
    EXPECT_NE(message.find("3 fields"), std::string::npos) << message;
    EXPECT_NE(message.find("header has 2"), std::string::npos) << message;
  }
}

TEST(CsvParse, MultiLineRaggedRowReportsItsOwnStartLine) {
  // The ragged record itself spans lines 2-3; the report must name the
  // line where the record *begins*, not where it ends.
  std::istringstream in("a,b\n\"p\nq\",2,3\n");
  try {
    parse_csv(in);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("row 1"), std::string::npos) << message;
    EXPECT_NE(message.find("(line 2)"), std::string::npos) << message;
  }
}

TEST(CsvParse, UnterminatedQuoteReportsStartLine) {
  std::istringstream in("a,b\n1,2\n3,\"never closed\nmore\n");
  try {
    parse_csv(in);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("starting at line 3"), std::string::npos)
        << message;
  }
}

TEST(CsvParse, ReadFailpointSurfacesPositionedError) {
  fp::reset();
  fp::arm("csv.parse.read", fp::Policy::parse("error(2)*1"));
  std::istringstream in("a,b\n1,2\n");
  try {
    parse_csv(in);
    FAIL() << "expected ComputeError";
  } catch (const ComputeError& e) {
    // The injected I/O error is decorated with the physical position —
    // the bare FailpointError never escapes the parser.
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
  fp::reset();
}

TEST(CsvParse, TruncateFailpointEndsTheStreamCleanly) {
  fp::reset();
  fp::arm("csv.parse.truncate", fp::Policy::parse("return*1"));
  std::istringstream in("a,b\n1,2\n3,4\n");
  // A short read at the very first line yields an empty (but valid)
  // document rather than a crash or a phantom half-record.
  const auto doc = parse_csv(in);
  EXPECT_TRUE(doc.header.empty());
  EXPECT_TRUE(doc.rows.empty());
  fp::reset();
}

TEST(CsvParse, QuotedNewlinesSpanPhysicalLines) {
  std::istringstream in("name,note\njob1,\"line one\nline two\"\njob2,ok\n");
  const auto doc = parse_csv(in);
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0][1], "line one\nline two");
  EXPECT_EQ(doc.rows[1][1], "ok");
}

TEST(CsvParse, RejectsUnterminatedQuotedField) {
  std::istringstream in("a,b\n1,\"never closed\n");
  EXPECT_THROW(parse_csv(in), InvalidArgument);
}

TEST(CsvParse, WriterParserRoundTripWithNewlines) {
  // The writer quotes embedded newlines per RFC 4180; the parser must
  // read them back (this round trip used to fail: parse_csv read
  // line-by-line and split the quoted field in two).
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row(std::vector<std::string>{"id", "note", "tag"});
  w.write_row(std::vector<std::string>{"1", "first\nsecond\nthird", "x"});
  w.write_row(std::vector<std::string>{"2", "crlf\r\nstyle", "says \"hi\""});
  w.write_row(std::vector<std::string>{"3", "plain", ","});
  std::istringstream in(os.str());
  const auto doc = parse_csv(in);
  EXPECT_EQ(doc.header, (std::vector<std::string>{"id", "note", "tag"}));
  ASSERT_EQ(doc.rows.size(), 3u);
  EXPECT_EQ(doc.rows[0][1], "first\nsecond\nthird");
  EXPECT_EQ(doc.rows[1][1], "crlf\r\nstyle");
  EXPECT_EQ(doc.rows[1][2], "says \"hi\"");
  EXPECT_EQ(doc.rows[2][2], ",");
}

TEST(CsvParse, RoundTrip) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row(std::vector<std::string>{"metric", "note"});
  w.write_row(std::vector<std::string>{"cpu,user", "say \"hi\""});
  std::istringstream in(os.str());
  const auto doc = parse_csv(in);
  EXPECT_EQ(doc.header[0], "metric");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "cpu,user");
  EXPECT_EQ(doc.rows[0][1], "say \"hi\"");
}

}  // namespace
}  // namespace xdmodml
