// Tests for the Gaussian Naive Bayes classifier.
#include "ml/naive_bayes.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace xdmodml::ml {
namespace {

/// Two well-separated Gaussian blobs in 2-D.
void make_blobs(std::size_t per_class, Matrix& X, std::vector<int>& y,
                double separation = 6.0, std::uint64_t seed = 1) {
  Rng rng(seed);
  for (std::size_t c = 0; c < 2; ++c) {
    const double cx = c == 0 ? 0.0 : separation;
    for (std::size_t i = 0; i < per_class; ++i) {
      X.append_row(std::vector<double>{rng.normal(cx, 1.0),
                                       rng.normal(cx, 1.0)});
      y.push_back(static_cast<int>(c));
    }
  }
}

TEST(NaiveBayes, SeparableBlobsClassifiedWell) {
  Matrix X;
  std::vector<int> y;
  make_blobs(200, X, y);
  NaiveBayesClassifier nb;
  nb.fit(X, y, 2);
  std::size_t correct = 0;
  for (std::size_t r = 0; r < X.rows(); ++r) {
    if (nb.predict(X.row(r)) == y[r]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(X.rows()),
            0.98);
}

TEST(NaiveBayes, ProbabilitiesSumToOne) {
  Matrix X;
  std::vector<int> y;
  make_blobs(50, X, y);
  NaiveBayesClassifier nb;
  nb.fit(X, y, 2);
  const auto p = nb.predict_proba(X.row(0));
  ASSERT_EQ(p.size(), 2u);
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
  EXPECT_GE(p[0], 0.0);
  EXPECT_GE(p[1], 0.0);
}

TEST(NaiveBayes, ConfidentFarFromBoundary) {
  Matrix X;
  std::vector<int> y;
  make_blobs(100, X, y, 10.0);
  NaiveBayesClassifier nb;
  nb.fit(X, y, 2);
  const std::vector<double> deep_in_class0{0.0, 0.0};
  EXPECT_GT(nb.predict_proba(deep_in_class0)[0], 0.999);
}

TEST(NaiveBayes, PriorsInfluencePredictions) {
  // Identical overlapping features; class 1 has 9x the prior mass.
  Matrix X;
  std::vector<int> y;
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    X.append_row(std::vector<double>{rng.normal(0.0, 1.0)});
    y.push_back(0);
  }
  for (int i = 0; i < 90; ++i) {
    X.append_row(std::vector<double>{rng.normal(0.0, 1.0)});
    y.push_back(1);
  }
  NaiveBayesClassifier nb;
  nb.fit(X, y, 2);
  const std::vector<double> origin{0.0};
  EXPECT_EQ(nb.predict(origin), 1);
  EXPECT_GT(nb.predict_proba(origin)[1], 0.7);
}

TEST(NaiveBayes, ConstantFeatureDoesNotBreak) {
  Matrix X = Matrix::from_rows(
      {{1.0, 5.0}, {1.0, 6.0}, {1.0, -5.0}, {1.0, -6.0}});
  const std::vector<int> y{0, 0, 1, 1};
  NaiveBayesClassifier nb;
  nb.fit(X, y, 2);
  EXPECT_EQ(nb.predict(std::vector<double>{1.0, 5.5}), 0);
  EXPECT_EQ(nb.predict(std::vector<double>{1.0, -5.5}), 1);
}

TEST(NaiveBayes, UnseenClassNeverPredicted) {
  // Train with num_classes = 3 but only classes 0 and 1 present.
  Matrix X = Matrix::from_rows({{0.0}, {0.1}, {5.0}, {5.1}});
  const std::vector<int> y{0, 0, 1, 1};
  NaiveBayesClassifier nb;
  nb.fit(X, y, 3);
  const auto p = nb.predict_proba(std::vector<double>{2.5});
  ASSERT_EQ(p.size(), 3u);
  EXPECT_DOUBLE_EQ(p[2], 0.0);
}

TEST(NaiveBayes, CorrelatedFeaturesDegradeIt) {
  // The paper's reason for discarding NB: correlated attributes violate
  // the independence assumption.  Construct a problem where the class is
  // carried only by x2 − x1 while both marginals are dominated by a huge
  // shared noise component: NB, which only sees the marginals, must do
  // markedly worse than on the rotated (decorrelated) version.
  Rng rng(7);
  Matrix x_corr;
  Matrix x_rot;
  std::vector<int> y;
  for (int i = 0; i < 2000; ++i) {
    const int cls = i % 2;
    const double signal = (cls == 0 ? -1.0 : 1.0) + rng.normal(0.0, 0.2);
    const double noise = rng.normal(0.0, 8.0);
    x_corr.append_row(std::vector<double>{noise, noise + signal});
    x_rot.append_row(std::vector<double>{signal, noise});
    y.push_back(cls);
  }
  NaiveBayesClassifier nb_corr;
  nb_corr.fit(x_corr, y, 2);
  NaiveBayesClassifier nb_rot;
  nb_rot.fit(x_rot, y, 2);
  std::size_t correct_corr = 0;
  std::size_t correct_rot = 0;
  for (std::size_t r = 0; r < x_corr.rows(); ++r) {
    if (nb_corr.predict(x_corr.row(r)) == y[r]) ++correct_corr;
    if (nb_rot.predict(x_rot.row(r)) == y[r]) ++correct_rot;
  }
  const auto n = static_cast<double>(x_corr.rows());
  EXPECT_LT(correct_corr / n, correct_rot / n - 0.1);
}

TEST(NaiveBayes, RejectsBadInputs) {
  NaiveBayesClassifier nb;
  Matrix X = Matrix::from_rows({{1.0}});
  const std::vector<int> y{0};
  EXPECT_THROW(nb.fit(X, std::vector<int>{}, 1), InvalidArgument);
  EXPECT_THROW(nb.fit(X, y, 0), InvalidArgument);
  EXPECT_THROW(nb.predict_proba(std::vector<double>{1.0}), InvalidArgument);
  nb.fit(X, y, 1);
  EXPECT_THROW(nb.predict_proba(std::vector<double>{1.0, 2.0}),
               InvalidArgument);
  EXPECT_THROW(NaiveBayesClassifier(-1.0), InvalidArgument);
}

TEST(NaiveBayes, BatchPredictionsMatchSerial) {
  Matrix X;
  std::vector<int> y;
  make_blobs(80, X, y);
  NaiveBayesClassifier nb;
  nb.fit(X, y, 2);
  const auto labels = nb.predict_batch(X);
  const auto probas = nb.predict_proba_batch(X);
  const auto preds = nb.predict_batch_with_probability(X);
  ASSERT_EQ(labels.size(), X.rows());
  ASSERT_EQ(probas.size(), X.rows());
  ASSERT_EQ(preds.size(), X.rows());
  for (std::size_t r = 0; r < X.rows(); ++r) {
    EXPECT_EQ(labels[r], nb.predict(X.row(r)));
    const auto serial = nb.predict_proba(X.row(r));
    ASSERT_EQ(probas[r].size(), serial.size());
    for (std::size_t c = 0; c < serial.size(); ++c) {
      EXPECT_DOUBLE_EQ(probas[r][c], serial[c]);
    }
    EXPECT_EQ(preds[r].label, labels[r]);
    EXPECT_DOUBLE_EQ(preds[r].probability,
                     serial[static_cast<std::size_t>(labels[r])]);
  }
}

}  // namespace
}  // namespace xdmodml::ml
