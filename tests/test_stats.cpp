// Tests for streaming and batch statistics.
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace xdmodml {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats rs;
  EXPECT_TRUE(rs.empty());
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_THROW(rs.min(), InvalidArgument);
  EXPECT_THROW(rs.max(), InvalidArgument);
}

TEST(RunningStats, SingleValue) {
  RunningStats rs;
  rs.add(5.0);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 5.0);
  EXPECT_DOUBLE_EQ(rs.max(), 5.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats rs;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.population_variance(), 4.0, 1e-12);
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, CovMatchesDefinition) {
  RunningStats rs;
  for (const double x : {10.0, 12.0, 8.0, 11.0, 9.0}) rs.add(x);
  EXPECT_NEAR(rs.cov(), rs.stddev() / rs.mean(), 1e-14);
}

TEST(RunningStats, CovZeroMeanConvention) {
  RunningStats rs;
  rs.add(-1.0);
  rs.add(1.0);
  EXPECT_DOUBLE_EQ(rs.cov(), 0.0);  // zero mean -> COV defined as 0
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(5);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(RunningStats, NumericalStabilityLargeOffset) {
  // Naive sum-of-squares would lose all precision here; Welford must not.
  RunningStats rs;
  const double offset = 1e9;
  for (const double x : {offset + 4.0, offset + 7.0, offset + 13.0,
                         offset + 16.0}) {
    rs.add(x);
  }
  EXPECT_NEAR(rs.mean(), offset + 10.0, 1e-3);
  EXPECT_NEAR(rs.variance(), 30.0, 1e-6);
}

TEST(BatchStats, MeanAndVariance) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(variance(xs), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(BatchStats, EmptyInputs) {
  const std::vector<double> xs;
  EXPECT_DOUBLE_EQ(mean(xs), 0.0);
  EXPECT_DOUBLE_EQ(variance(xs), 0.0);
  EXPECT_DOUBLE_EQ(median(xs), 0.0);
}

TEST(BatchStats, MedianOddEven) {
  const std::vector<double> odd{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(BatchStats, QuantileInterpolation) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 10.0);
  EXPECT_THROW(quantile(xs, 1.5), InvalidArgument);
}

TEST(BatchStats, PearsonPerfectAndAnti) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> zs{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(xs, zs), -1.0, 1e-12);
}

TEST(BatchStats, PearsonDegenerate) {
  const std::vector<double> xs{1.0, 1.0, 1.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
  EXPECT_THROW(pearson(xs, std::vector<double>{1.0}), InvalidArgument);
}

TEST(BatchStats, PearsonIndependentNearZero) {
  Rng rng(13);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 20000; ++i) {
    xs.push_back(rng.normal());
    ys.push_back(rng.normal());
  }
  EXPECT_NEAR(pearson(xs, ys), 0.0, 0.03);
}

TEST(Histogram, CountsAndClamping) {
  const std::vector<double> xs{-1.0, 0.1, 0.2, 0.55, 0.9, 2.0};
  const auto h = histogram(xs, 0.0, 1.0, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], 3u);  // -1 clamped in, 0.1, 0.2
  EXPECT_EQ(h[1], 3u);  // 0.55, 0.9, 2.0 clamped in
}

TEST(Histogram, RejectsBadArguments) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(histogram(xs, 0.0, 1.0, 0), InvalidArgument);
  EXPECT_THROW(histogram(xs, 1.0, 0.0, 4), InvalidArgument);
}

}  // namespace
}  // namespace xdmodml
