// Differential tests for the compiled SVM inference plan (ml/svm_plan):
// the compiled path (deduplicated support-vector pool + SIMD kernel
// rows + sparse per-machine reduction) must agree with the legacy
// per-machine scalar kernel walk across kernels, pool precisions,
// ISAs, batch shapes, serialization round trips and concurrent first
// use.  Registered under the `tier1-infer` ctest label, plus an
// XDMODML_SIMD=scalar environment rerun.
#include "ml/svm_plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "ml/svm.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace xdmodml::ml {
namespace {

/// Restores the prediction mode on scope exit so one test's toggle
/// cannot leak into another.
class ModeGuard {
 public:
  explicit ModeGuard(SvmPredictMode mode) : prev_(svm_predict_mode()) {
    set_svm_predict_mode(mode);
  }
  ~ModeGuard() { set_svm_predict_mode(prev_); }
  ModeGuard(const ModeGuard&) = delete;
  ModeGuard& operator=(const ModeGuard&) = delete;

 private:
  SvmPredictMode prev_;
};

/// Same for the SIMD ISA.
class IsaGuard {
 public:
  explicit IsaGuard(simd::Isa isa) : prev_(simd::active()) {
    simd::set_active(isa);
  }
  ~IsaGuard() { simd::set_active(prev_); }
  IsaGuard(const IsaGuard&) = delete;
  IsaGuard& operator=(const IsaGuard&) = delete;

 private:
  simd::Isa prev_;
};

// Five features so the SIMD 4-lane kernels exercise a remainder lane.
void make_blobs5(std::size_t per_class, std::size_t classes, Matrix& X,
                 std::vector<int>& y, std::uint64_t seed = 1) {
  Rng rng(seed);
  for (std::size_t c = 0; c < classes; ++c) {
    const double cx = 3.5 * static_cast<double>(c);
    for (std::size_t i = 0; i < per_class; ++i) {
      X.append_row(std::vector<double>{
          rng.normal(cx, 0.8), rng.normal(cx * 0.5, 0.8),
          rng.normal(-cx, 0.8), rng.normal(0.0, 0.8),
          rng.normal(cx * 0.25, 0.8)});
      y.push_back(static_cast<int>(c));
    }
  }
}

Matrix probe_rows(std::size_t n, std::uint64_t seed = 77) {
  Rng rng(seed);
  Matrix probes;
  for (std::size_t i = 0; i < n; ++i) {
    const double cx = 3.5 * static_cast<double>(i % 3);
    probes.append_row(std::vector<double>{
        rng.normal(cx, 1.2), rng.normal(cx * 0.5, 1.2),
        rng.normal(-cx, 1.2), rng.normal(0.0, 1.2),
        rng.normal(cx * 0.25, 1.2)});
  }
  return probes;
}

SvmClassifier train_blobs(SvmConfig cfg, std::size_t classes = 3,
                          std::size_t per_class = 25) {
  Matrix X;
  std::vector<int> y;
  make_blobs5(per_class, classes, X, y);
  SvmClassifier clf(cfg, 5);
  clf.fit(X, y, static_cast<int>(classes));
  return clf;
}

SvmConfig infer_config(Kernel kernel, bool probability) {
  SvmConfig cfg;
  cfg.kernel = kernel;
  cfg.c = 10.0;
  cfg.probability = probability;
  cfg.platt_cv_folds = 2;
  return cfg;
}

TEST(SvmPredictMode, ParseAndNames) {
  EXPECT_EQ(svm_predict_mode_from_string("legacy"), SvmPredictMode::kLegacy);
  EXPECT_EQ(svm_predict_mode_from_string("compiled"),
            SvmPredictMode::kCompiled);
  EXPECT_FALSE(svm_predict_mode_from_string("auto").has_value());
  EXPECT_FALSE(svm_predict_mode_from_string("").has_value());
  EXPECT_EQ(svm_predict_mode_name(SvmPredictMode::kLegacy), "legacy");
  EXPECT_EQ(svm_predict_mode_name(SvmPredictMode::kCompiled), "compiled");
}

TEST(SvmPredictMode, SetOverrides) {
  const SvmPredictMode before = svm_predict_mode();
  {
    ModeGuard guard(SvmPredictMode::kLegacy);
    EXPECT_EQ(svm_predict_mode(), SvmPredictMode::kLegacy);
    set_svm_predict_mode(SvmPredictMode::kCompiled);
    EXPECT_EQ(svm_predict_mode(), SvmPredictMode::kCompiled);
  }
  EXPECT_EQ(svm_predict_mode(), before);
}

// The core differential: for every kernel family, compiled labels /
// vote labels match legacy exactly and decision values / probabilities
// agree to 1e-10 (the compiled RBF path evaluates exp(−γ(‖x‖²+‖y‖²
// −2x·y)) instead of exp(−γ‖x−y‖²), so bit-equality is not expected).
TEST(SvmInferDifferential, CompiledMatchesLegacyAcrossKernels) {
  const std::vector<Kernel> kernels = {
      Kernel::rbf(0.3), Kernel::linear(), Kernel::polynomial(3.0, 0.5, 1.0)};
  const Matrix probes = probe_rows(12);
  for (const auto& kernel : kernels) {
    for (const bool probability : {true, false}) {
      const auto clf = train_blobs(infer_config(kernel, probability));
      const auto& plan = clf.inference_plan();
      std::vector<double> krow(plan.unique_support_vectors());
      for (std::size_t p = 0; p < probes.rows(); ++p) {
        const auto x = probes.row(p);
        // Per-machine decision values.
        plan.kernel_row(x, krow);
        for (std::size_t m = 0; m < clf.num_machines(); ++m) {
          const double legacy = clf.machine(m).decision_value(x);
          EXPECT_NEAR(plan.decision_value(m, krow), legacy, 1e-10)
              << kernel.name() << " machine " << m << " probe " << p;
        }
        // End-to-end labels, votes and probabilities.
        std::vector<double> legacy_proba;
        int legacy_label = 0;
        int legacy_votes = 0;
        {
          ModeGuard guard(SvmPredictMode::kLegacy);
          legacy_proba = clf.predict_proba(x);
          legacy_label = clf.predict(x);
          legacy_votes = clf.predict_by_votes(x);
        }
        ModeGuard guard(SvmPredictMode::kCompiled);
        EXPECT_EQ(clf.predict(x), legacy_label);
        EXPECT_EQ(clf.predict_by_votes(x), legacy_votes);
        const auto proba = clf.predict_proba(x);
        ASSERT_EQ(proba.size(), legacy_proba.size());
        for (std::size_t c = 0; c < proba.size(); ++c) {
          EXPECT_NEAR(proba[c], legacy_proba[c], 1e-10)
              << kernel.name() << " class " << c << " probe " << p;
        }
      }
    }
  }
}

// The scalar ISA must reproduce the vector ISA through the plan (both
// run the same norm-expansion math; only rounding differs).
TEST(SvmInferDifferential, ScalarIsaMatchesVectorIsa) {
  if (!simd::available(simd::Isa::kAvx2)) GTEST_SKIP() << "scalar-only build";
  ModeGuard mode(SvmPredictMode::kCompiled);
  const auto clf = train_blobs(infer_config(Kernel::rbf(0.3), true));
  const Matrix probes = probe_rows(8);
  std::vector<std::vector<double>> vec_proba;
  {
    IsaGuard isa(simd::Isa::kAvx2);
    for (std::size_t p = 0; p < probes.rows(); ++p) {
      vec_proba.push_back(clf.predict_proba(probes.row(p)));
    }
  }
  IsaGuard isa(simd::Isa::kScalar);
  for (std::size_t p = 0; p < probes.rows(); ++p) {
    const auto proba = clf.predict_proba(probes.row(p));
    for (std::size_t c = 0; c < proba.size(); ++c) {
      EXPECT_NEAR(proba[c], vec_proba[p][c], 1e-10);
    }
  }
}

// Float32 pool: labels identical, decision values within a tolerance
// scaled by the machine's coefficient mass (coordinate quantization is
// ~1e-7 relative; the kernel error it induces is amplified by Σ|coef|).
TEST(SvmInferDifferential, Float32PoolCloseToFloat64) {
  ModeGuard mode(SvmPredictMode::kCompiled);
  auto clf = train_blobs(infer_config(Kernel::rbf(0.3), true));
  const auto& f64 = clf.inference_plan();
  ASSERT_EQ(f64.precision(), GramPrecision::kFloat64);
  std::vector<double> krow64(f64.unique_support_vectors());

  auto clf32 = clf;  // copies re-derive their plan
  clf32.set_plan_precision(GramPrecision::kFloat32);
  const auto& f32 = clf32.inference_plan();
  ASSERT_EQ(f32.precision(), GramPrecision::kFloat32);
  EXPECT_EQ(f32.unique_support_vectors(), f64.unique_support_vectors());
  EXPECT_EQ(f32.pool_bytes() * 2, f64.pool_bytes());
  std::vector<double> krow32(f32.unique_support_vectors());

  const Matrix probes = probe_rows(10);
  for (std::size_t p = 0; p < probes.rows(); ++p) {
    const auto x = probes.row(p);
    f64.kernel_row(x, krow64);
    f32.kernel_row(x, krow32);
    for (std::size_t m = 0; m < clf.num_machines(); ++m) {
      double mag = 0.0;
      for (const double c : f64.machine(m).coef) mag += std::abs(c);
      EXPECT_NEAR(f32.decision_value(m, krow32),
                  f64.decision_value(m, krow64), 1e-4 * (1.0 + mag));
    }
    EXPECT_EQ(clf32.predict(x), clf.predict(x));
  }
}

// The batched sweep evaluates each query independently of its block, so
// batch results are bit-identical to the single-row compiled calls.
TEST(SvmInferBatch, BatchMatchesSingleExactly) {
  ModeGuard mode(SvmPredictMode::kCompiled);
  for (const bool probability : {true, false}) {
    const auto clf =
        train_blobs(infer_config(Kernel::rbf(0.3), probability));
    // 13 rows: exercises a partial trailing query block (13 = 8 + 5).
    const Matrix probes = probe_rows(13);
    const auto batch_labels = clf.predict_batch(probes);
    const auto batch_proba = clf.predict_proba_batch(probes);
    const auto batch_pred = clf.predict_batch_with_probability(probes);
    ASSERT_EQ(batch_labels.size(), probes.rows());
    ASSERT_EQ(batch_proba.size(), probes.rows());
    ASSERT_EQ(batch_pred.size(), probes.rows());
    for (std::size_t p = 0; p < probes.rows(); ++p) {
      const auto x = probes.row(p);
      EXPECT_EQ(batch_labels[p], clf.predict(x));
      const auto single = clf.predict_proba(x);
      ASSERT_EQ(batch_proba[p].size(), single.size());
      for (std::size_t c = 0; c < single.size(); ++c) {
        EXPECT_DOUBLE_EQ(batch_proba[p][c], single[c]);
      }
      const auto pred = clf.predict_with_probability(x);
      EXPECT_EQ(batch_pred[p].label, pred.label);
      EXPECT_DOUBLE_EQ(batch_pred[p].probability, pred.probability);
    }
  }
}

TEST(SvmInferPlan, DedupStatsAndProvenanceKeying) {
  ModeGuard mode(SvmPredictMode::kCompiled);
  // Default config: one-vs-one machines share the per-fit Gram cache,
  // so every machine carries full-matrix provenance.
  const auto clf = train_blobs(infer_config(Kernel::rbf(0.3), true));
  const auto& plan = clf.inference_plan();
  EXPECT_TRUE(plan.provenance_keyed());
  EXPECT_EQ(plan.total_support_vectors(), clf.total_support_vectors());
  EXPECT_LE(plan.unique_support_vectors(), plan.total_support_vectors());
  EXPECT_GE(plan.dedup_ratio(), 1.0);
  EXPECT_EQ(plan.dims(), 5u);
  EXPECT_EQ(plan.pool_bytes(),
            plan.unique_support_vectors() * 5 * sizeof(double));
  // A 3-class one-vs-one fit reuses training rows across pairs; some
  // dedup must happen for the pool to be worth building.
  EXPECT_LT(plan.unique_support_vectors(), plan.total_support_vectors());
}

TEST(SvmInferPlan, RoundTripPreservesUniqueCount) {
  ModeGuard mode(SvmPredictMode::kCompiled);
  // Provenance arm: v2 serialization carries sv_full_rows, so the
  // reloaded plan index-dedups to the same pool.
  {
    const auto clf = train_blobs(infer_config(Kernel::rbf(0.3), true));
    const auto& plan = clf.inference_plan();
    ASSERT_TRUE(plan.provenance_keyed());
    std::stringstream stream;
    clf.save(stream);
    const auto loaded = SvmClassifier::load(stream);
    const auto& reloaded = loaded.inference_plan();
    EXPECT_TRUE(reloaded.provenance_keyed());
    EXPECT_EQ(reloaded.unique_support_vectors(),
              plan.unique_support_vectors());
    EXPECT_EQ(reloaded.total_support_vectors(),
              plan.total_support_vectors());
  }
  // Content arm: machines fitted without the shared cache carry no
  // provenance; dedup falls back to content hashing on both sides of
  // the round trip and still finds the same pool (shared training rows
  // are gathered bit-identically into each machine).
  {
    auto cfg = infer_config(Kernel::rbf(0.3), true);
    cfg.share_kernel_cache = false;
    const auto clf = train_blobs(cfg);
    const auto& plan = clf.inference_plan();
    EXPECT_FALSE(plan.provenance_keyed());
    std::stringstream stream;
    clf.save(stream);
    const auto loaded = SvmClassifier::load(stream);
    const auto& reloaded = loaded.inference_plan();
    EXPECT_FALSE(reloaded.provenance_keyed());
    EXPECT_EQ(reloaded.unique_support_vectors(),
              plan.unique_support_vectors());
    EXPECT_EQ(reloaded.total_support_vectors(),
              plan.total_support_vectors());
  }
}

// A crafted v1 stream (no provenance vectors) must still load, and its
// plan must content-dedup the shared support vector across machines.
TEST(SvmInferPlan, V1StreamLoadsAndContentDedups) {
  ModeGuard mode(SvmPredictMode::kCompiled);
  const auto machine = [](double rho) {
    return "binary-svm-v1\nkernel_type 1\ngamma 0.5\ndegree 3\ncoef0 0\n"
           "rho " +
           std::to_string(rho) +
           "\nhas_platt 1\nplatt_a -2\nplatt_b 0\nsvs 1\ndims 2\n"
           "coef 1 1\nsv 2 1 2\n";
  };
  std::stringstream stream("svm-ovo-v1\nclasses 3\nprobability 1\n"
                           "machines 3\n" +
                           machine(0.1) + machine(0.2) + machine(0.3));
  const auto clf = SvmClassifier::load(stream);
  const auto& plan = clf.inference_plan();
  EXPECT_FALSE(plan.provenance_keyed());
  EXPECT_EQ(plan.total_support_vectors(), 3u);
  EXPECT_EQ(plan.unique_support_vectors(), 1u);
  EXPECT_NEAR(plan.dedup_ratio(), 3.0, 1e-12);
  const std::vector<double> x{1.0, 2.0};
  int legacy_label = 0;
  std::vector<double> legacy_proba;
  {
    ModeGuard legacy(SvmPredictMode::kLegacy);
    legacy_label = clf.predict(x);
    legacy_proba = clf.predict_proba(x);
  }
  EXPECT_EQ(clf.predict(x), legacy_label);
  const auto proba = clf.predict_proba(x);
  for (std::size_t c = 0; c < proba.size(); ++c) {
    EXPECT_NEAR(proba[c], legacy_proba[c], 1e-10);
  }
}

// Regression for concurrent first use: two threads race predict_batch
// against predict_proba on a freshly loaded model (no plan yet); the
// call_once build must run exactly once and both threads must see a
// fully formed plan.
TEST(SvmInferConcurrency, ConcurrentFirstUseBuildsOnce) {
  ModeGuard mode(SvmPredictMode::kCompiled);
  const auto trained = train_blobs(infer_config(Kernel::rbf(0.3), true));
  std::stringstream stream;
  trained.save(stream);

  const Matrix probes = probe_rows(16);
  // Serial reference from an independently loaded copy.
  std::stringstream ref_stream(stream.str());
  const auto reference = SvmClassifier::load(ref_stream);
  const auto ref_labels = reference.predict_batch(probes);
  const auto ref_proba = reference.predict_proba(probes.row(0));

  auto& builds =
      obs::MetricsRegistry::instance().counter("svm.plan.builds");
  const std::uint64_t builds_before = builds.value();

  const auto fresh = SvmClassifier::load(stream);
  ASSERT_EQ(fresh.plan_if_built(), nullptr);
  std::vector<int> labels;
  std::vector<double> proba;
  std::thread batch_thread(
      [&] { labels = fresh.predict_batch(probes); });
  std::thread proba_thread(
      [&] { proba = fresh.predict_proba(probes.row(0)); });
  batch_thread.join();
  proba_thread.join();

  EXPECT_EQ(builds.value(), builds_before + 1);
  ASSERT_NE(fresh.plan_if_built(), nullptr);
  EXPECT_EQ(labels, ref_labels);
  ASSERT_EQ(proba.size(), ref_proba.size());
  for (std::size_t c = 0; c < proba.size(); ++c) {
    EXPECT_DOUBLE_EQ(proba[c], ref_proba[c]);
  }
}

TEST(SvmInferPlan, EagerAfterFitLazyAfterLoad) {
  // Compiled-mode fits build the plan eagerly; legacy-mode fits skip it
  // (a grid search under the legacy toggle never pays for pools).
  {
    ModeGuard mode(SvmPredictMode::kCompiled);
    const auto clf = train_blobs(infer_config(Kernel::rbf(0.3), false));
    EXPECT_NE(clf.plan_if_built(), nullptr);
  }
  {
    ModeGuard mode(SvmPredictMode::kLegacy);
    const auto clf = train_blobs(infer_config(Kernel::rbf(0.3), false));
    EXPECT_EQ(clf.plan_if_built(), nullptr);
  }
}

TEST(SvmInferPlan, RejectsUntrainedAndMismatchedProbes) {
  ModeGuard mode(SvmPredictMode::kCompiled);
  SvmClassifier clf;
  EXPECT_THROW(clf.inference_plan(), InvalidArgument);
  const auto trained = train_blobs(infer_config(Kernel::rbf(0.3), false));
  const auto& plan = trained.inference_plan();
  std::vector<double> krow(plan.unique_support_vectors());
  const std::vector<double> narrow{1.0, 2.0};
  EXPECT_THROW(plan.kernel_row(narrow, krow), InvalidArgument);
  std::vector<double> short_out(plan.unique_support_vectors() - 1);
  const std::vector<double> x(5, 0.0);
  EXPECT_THROW(plan.kernel_row(x, short_out), InvalidArgument);
}

}  // namespace
}  // namespace xdmodml::ml
