// Tests for the ASCII table renderer and numeric formatting.
#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace xdmodml {
namespace {

TEST(TextTable, RendersHeaderRuleAndRows) {
  TextTable t({"name", "count"});
  t.add_row({"alpha", "10"});
  t.add_row({"b", "2"});
  const auto out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, RightAlignsNumbers) {
  TextTable t({"k", "v"});
  t.add_row({"x", "1"});
  t.add_row({"y", "100"});
  const auto out = t.render();
  // The value column is right-aligned, so "1" is padded to width 3.
  EXPECT_NE(out.find("  1\n"), std::string::npos);
}

TEST(TextTable, DoubleRowFormatting) {
  TextTable t({"label", "a", "b"});
  t.add_row("r", {1.234, 5.0}, 1);
  const auto out = t.render();
  EXPECT_NE(out.find("1.2"), std::string::npos);
  EXPECT_NE(out.find("5.0"), std::string::npos);
}

TEST(TextTable, RejectsBadShapes) {
  EXPECT_THROW(TextTable(std::vector<std::string>{}), InvalidArgument);
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
  EXPECT_THROW(TextTable({"a"}, {Align::kLeft, Align::kRight}),
               InvalidArgument);
}

TEST(Format, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-1.0, 0), "-1");
}

TEST(Format, FormatPercent) {
  EXPECT_EQ(format_percent(0.9695, 2), "96.95");
  EXPECT_EQ(format_percent(1.0, 0), "100");
}

TEST(Format, AsciiBar) {
  EXPECT_EQ(ascii_bar(1.0, 1.0, 10), "##########");
  EXPECT_EQ(ascii_bar(0.5, 1.0, 10), "#####");
  EXPECT_EQ(ascii_bar(0.0, 1.0, 10), "");
  EXPECT_EQ(ascii_bar(2.0, 1.0, 4), "####");  // clamped
  EXPECT_EQ(ascii_bar(1.0, 0.0, 4), "");      // degenerate max
}

}  // namespace
}  // namespace xdmodml
