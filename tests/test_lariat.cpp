// Tests for Lariat/XALT application identification.
#include "lariat/lariat.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace xdmodml::lariat {
namespace {

using supremm::LabelSource;

TEST(ApplicationTable, StandardCoversTable2Apps) {
  const auto table = ApplicationTable::standard();
  for (const char* app :
       {"AMBER", "ARPS", "CACTUS", "CHARMM++", "CHARMM", "CP2K", "ENZO",
        "FD3D", "FLASH4", "GADGET", "GROMACS", "IFORTDDWN", "LAMMPS",
        "NAMD", "OPENFOAM", "PYTHON", "Q-ESPRESSO", "SIESTA", "VASP",
        "WRF"}) {
    EXPECT_NE(table.find(app), nullptr) << "missing " << app;
  }
}

TEST(ApplicationTable, StandardCoversTable3Categories) {
  const auto cats = ApplicationTable::standard().categories();
  for (const char* cat :
       {"Astrophysics", "benchmark", "CFD", "E&M,photonics", "Lattice QCD",
        "Math", "Matlab", "MD", "Python", "QC", "QC,ES"}) {
    EXPECT_NE(std::find(cats.begin(), cats.end(), cat), cats.end())
        << "missing category " << cat;
  }
}

TEST(ApplicationTable, IdentifiesKnownPaths) {
  const auto table = ApplicationTable::standard();
  const auto id = table.identify("/opt/apps/vasp/5.3/vasp_std");
  EXPECT_EQ(id.source, LabelSource::kIdentified);
  EXPECT_EQ(id.application, "VASP");
  EXPECT_EQ(id.category, "QC,ES");
}

TEST(ApplicationTable, MatchIsCaseInsensitiveOnBasename) {
  const auto table = ApplicationTable::standard();
  EXPECT_EQ(table.identify("/home/u/VASP_GAM").application, "VASP");
  EXPECT_EQ(table.identify("/opt/apps/NAMD2").application, "NAMD");
}

TEST(ApplicationTable, PrefixMatchesVariants) {
  const auto table = ApplicationTable::standard();
  EXPECT_EQ(table.identify("/x/lmp_stampede").application, "LAMMPS");
  EXPECT_EQ(table.identify("/x/namd2_ibverbs").application, "NAMD");
  EXPECT_EQ(table.identify("/x/python2.7").application, "PYTHON");
  EXPECT_EQ(table.identify("/x/pw.x").application, "Q-ESPRESSO");
}

TEST(ApplicationTable, CharmmPlusPlusVsCharmm) {
  const auto table = ApplicationTable::standard();
  EXPECT_EQ(table.identify("/x/charmrun").application, "CHARMM++");
  EXPECT_EQ(table.identify("/x/charmm").application, "CHARMM");
}

TEST(ApplicationTable, UserBinariesAreUncategorized) {
  const auto table = ApplicationTable::standard();
  for (const auto& name : common_user_binary_names()) {
    const auto id = table.identify("/home/user123/" + name);
    EXPECT_EQ(id.source, LabelSource::kUncategorized) << name;
    EXPECT_TRUE(id.application.empty());
  }
}

TEST(ApplicationTable, EmptyPathIsNa) {
  const auto table = ApplicationTable::standard();
  EXPECT_EQ(table.identify("").source, LabelSource::kNotAvailable);
}

TEST(ApplicationTable, NamesAndSize) {
  const auto table = ApplicationTable::standard();
  const auto names = table.application_names();
  EXPECT_EQ(names.size(), table.size());
  EXPECT_GE(names.size(), 20u);
}

TEST(ApplicationTable, ValidatesEntries) {
  EXPECT_THROW(ApplicationTable(std::vector<ApplicationEntry>{}),
               InvalidArgument);
  EXPECT_THROW(
      ApplicationTable(std::vector<ApplicationEntry>{{"X", "", {"x"}}}),
      InvalidArgument);
  EXPECT_THROW(
      ApplicationTable(std::vector<ApplicationEntry>{{"X", "cat", {}}}),
      InvalidArgument);
}

}  // namespace
}  // namespace xdmodml::lariat
