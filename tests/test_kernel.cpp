// Tests for kernel functions and the Gram-row engine.
#include "ml/kernel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace xdmodml::ml {
namespace {

TEST(Kernel, DotAndSquaredDistance) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 9.0 + 49.0 + 9.0);
  EXPECT_THROW(dot(a, std::vector<double>{1.0}), InvalidArgument);
}

TEST(Kernel, LinearMatchesDot) {
  const auto k = Kernel::linear();
  const std::vector<double> a{1.0, -1.0};
  const std::vector<double> b{2.0, 3.0};
  EXPECT_DOUBLE_EQ(k(a, b), -1.0);
  EXPECT_EQ(k.name(), "linear");
}

TEST(Kernel, RbfProperties) {
  const auto k = Kernel::rbf(0.1);
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{3.0, 4.0};
  // Symmetric, bounded by 1, equal points give exactly 1.
  EXPECT_DOUBLE_EQ(k(a, b), k(b, a));
  EXPECT_DOUBLE_EQ(k(a, a), 1.0);
  EXPECT_GT(k(a, b), 0.0);
  EXPECT_LT(k(a, b), 1.0);
  EXPECT_DOUBLE_EQ(k(a, b), std::exp(-0.1 * 8.0));
}

TEST(Kernel, RbfDecaysWithDistance) {
  const auto k = Kernel::rbf(0.5);
  const std::vector<double> origin{0.0};
  EXPECT_GT(k(origin, std::vector<double>{1.0}),
            k(origin, std::vector<double>{2.0}));
}

TEST(Kernel, PolynomialKnownValue) {
  const auto k = Kernel::polynomial(2.0, 1.0, 1.0);
  const std::vector<double> a{1.0, 1.0};
  const std::vector<double> b{2.0, 0.0};
  // (1*2 + 1)² = 9
  EXPECT_DOUBLE_EQ(k(a, b), 9.0);
}

TEST(Kernel, ValidatesParameters) {
  EXPECT_THROW(Kernel::rbf(0.0), InvalidArgument);
  EXPECT_THROW(Kernel::rbf(-1.0), InvalidArgument);
  EXPECT_THROW(Kernel::polynomial(0.0, 1.0, 0.0), InvalidArgument);
}

TEST(Kernel, PowiMatchesStdPow) {
  for (const double base : {0.5, -1.3, 2.0, 7.25}) {
    for (std::uint64_t e = 0; e <= 12; ++e) {
      EXPECT_NEAR(powi(base, e), std::pow(base, static_cast<double>(e)),
                  1e-9 * std::abs(std::pow(std::abs(base),
                                           static_cast<double>(e))) + 1e-12)
          << base << "^" << e;
    }
  }
  EXPECT_DOUBLE_EQ(powi(3.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(powi(-2.0, 3), -8.0);
}

// 1e-12, relative for kernel values above 1: the SIMD dot reduction
// orders its partial sums differently from the naive scalar loop, so
// large polynomial/linear kernel values agree to ULPs (relative error),
// not to an absolute 1e-12.
double row_tolerance(double expected) {
  return 1e-12 * std::max(1.0, std::abs(expected));
}

// The norm-cached vectorized row path must reproduce the naive pairwise
// Kernel::operator() row to 1e-12 (relative above 1 — see
// row_tolerance) for every kernel family — the SMO solver's correctness
// rests on the two paths being interchangeable.
TEST(GramRowEngine, RowsMatchNaivePairwiseKernels) {
  Rng rng(99);
  Matrix X;
  for (int i = 0; i < 40; ++i) {
    std::vector<double> row(7);
    for (auto& v : row) v = rng.normal(0.0, 2.0);
    X.append_row(row);
  }
  // Duplicate a row so the RBF path exercises the clamped d² = 0 case.
  X.append_row(X.row(3));

  const std::vector<Kernel> kernels{
      Kernel::linear(), Kernel::rbf(0.1),
      Kernel::polynomial(3.0, 0.5, 1.0),    // integer degree -> powi path
      // Fractional degree -> std::pow; coef0 keeps the base positive so
      // the non-integer exponent is defined.
      Kernel::polynomial(2.5, 0.1, 30.0)};
  for (const auto& kernel : kernels) {
    const GramRowEngine engine(X, kernel);
    std::vector<double> row(X.rows());
    for (std::size_t i = 0; i < X.rows(); ++i) {
      engine.fill_row(i, row);
      for (std::size_t j = 0; j < X.rows(); ++j) {
        const double expected = kernel(X.row(i), X.row(j));
        EXPECT_NEAR(row[j], expected, row_tolerance(expected))
            << kernel.name() << " row " << i << " col " << j;
      }
      const double diag = kernel(X.row(i), X.row(i));
      EXPECT_NEAR(engine.diagonal(i), diag, row_tolerance(diag))
          << kernel.name() << " diagonal " << i;
    }
  }
}

TEST(GramRowEngine, ProbeRowMatchesScalarKernel) {
  Rng rng(7);
  Matrix X;
  for (int i = 0; i < 12; ++i) {
    std::vector<double> row(4);
    for (auto& v : row) v = rng.normal(0.0, 1.0);
    X.append_row(row);
  }
  const auto kernel = Kernel::rbf(0.25);
  const GramRowEngine engine(X, kernel);
  const std::vector<double> probe{0.3, -1.1, 0.0, 2.2};
  std::vector<double> row(X.rows());
  engine.fill_row_for(probe, row);
  for (std::size_t j = 0; j < X.rows(); ++j) {
    EXPECT_NEAR(row[j], kernel(probe, X.row(j)), 1e-12);
  }
}

TEST(GramRowEngine, SquaredNormsCached) {
  Matrix X = Matrix::from_rows({{3.0, 4.0}, {1.0, 0.0}});
  const GramRowEngine engine(X, Kernel::rbf(1.0));
  ASSERT_EQ(engine.squared_norms().size(), 2u);
  EXPECT_DOUBLE_EQ(engine.squared_norms()[0], 25.0);
  EXPECT_DOUBLE_EQ(engine.squared_norms()[1], 1.0);
}

TEST(GramRowEngine, ValidatesInputs) {
  Matrix X = Matrix::from_rows({{1.0, 2.0}});
  const GramRowEngine engine(X, Kernel::linear());
  std::vector<double> small;
  EXPECT_THROW(engine.fill_row(0, small), InvalidArgument);
  EXPECT_THROW(engine.fill_row(5, small), InvalidArgument);
  Matrix empty;
  EXPECT_THROW(GramRowEngine(empty, Kernel::linear()), InvalidArgument);
}

TEST(Kernel, RbfGramMatrixPositiveSemidefiniteDiagonal) {
  // Weak PSD sanity check: all 2x2 principal minors non-negative.
  const auto k = Kernel::rbf(0.3);
  const std::vector<std::vector<double>> pts{
      {0.0, 0.0}, {1.0, 0.5}, {-2.0, 1.0}, {3.0, -1.0}};
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = 0; j < pts.size(); ++j) {
      const double kij = k(pts[i], pts[j]);
      const double det = k(pts[i], pts[i]) * k(pts[j], pts[j]) - kij * kij;
      EXPECT_GE(det, -1e-12);
    }
  }
}

}  // namespace
}  // namespace xdmodml::ml
