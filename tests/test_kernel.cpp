// Tests for kernel functions.
#include "ml/kernel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace xdmodml::ml {
namespace {

TEST(Kernel, DotAndSquaredDistance) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 9.0 + 49.0 + 9.0);
  EXPECT_THROW(dot(a, std::vector<double>{1.0}), InvalidArgument);
}

TEST(Kernel, LinearMatchesDot) {
  const auto k = Kernel::linear();
  const std::vector<double> a{1.0, -1.0};
  const std::vector<double> b{2.0, 3.0};
  EXPECT_DOUBLE_EQ(k(a, b), -1.0);
  EXPECT_EQ(k.name(), "linear");
}

TEST(Kernel, RbfProperties) {
  const auto k = Kernel::rbf(0.1);
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{3.0, 4.0};
  // Symmetric, bounded by 1, equal points give exactly 1.
  EXPECT_DOUBLE_EQ(k(a, b), k(b, a));
  EXPECT_DOUBLE_EQ(k(a, a), 1.0);
  EXPECT_GT(k(a, b), 0.0);
  EXPECT_LT(k(a, b), 1.0);
  EXPECT_DOUBLE_EQ(k(a, b), std::exp(-0.1 * 8.0));
}

TEST(Kernel, RbfDecaysWithDistance) {
  const auto k = Kernel::rbf(0.5);
  const std::vector<double> origin{0.0};
  EXPECT_GT(k(origin, std::vector<double>{1.0}),
            k(origin, std::vector<double>{2.0}));
}

TEST(Kernel, PolynomialKnownValue) {
  const auto k = Kernel::polynomial(2.0, 1.0, 1.0);
  const std::vector<double> a{1.0, 1.0};
  const std::vector<double> b{2.0, 0.0};
  // (1*2 + 1)² = 9
  EXPECT_DOUBLE_EQ(k(a, b), 9.0);
}

TEST(Kernel, ValidatesParameters) {
  EXPECT_THROW(Kernel::rbf(0.0), InvalidArgument);
  EXPECT_THROW(Kernel::rbf(-1.0), InvalidArgument);
  EXPECT_THROW(Kernel::polynomial(0.0, 1.0, 0.0), InvalidArgument);
}

TEST(Kernel, RbfGramMatrixPositiveSemidefiniteDiagonal) {
  // Weak PSD sanity check: all 2x2 principal minors non-negative.
  const auto k = Kernel::rbf(0.3);
  const std::vector<std::vector<double>> pts{
      {0.0, 0.0}, {1.0, 0.5}, {-2.0, 1.0}, {3.0, -1.0}};
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = 0; j < pts.size(); ++j) {
      const double kij = k(pts[i], pts[j]);
      const double det = k(pts[i], pts[i]) * k(pts[j], pts[j]) - kij * kij;
      EXPECT_GE(det, -1e-12);
    }
  }
}

}  // namespace
}  // namespace xdmodml::ml
