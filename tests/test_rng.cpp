// Unit and statistical-property tests for the deterministic RNG.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace xdmodml {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  Rng parent(7);
  Rng child = parent.split();
  // The child should not simply replay the parent's continuation.
  Rng parent_copy(7);
  (void)parent_copy.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (child() == parent()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(123);
  Rng b(123);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca(), cb());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  RunningStats rs;
  for (int i = 0; i < 100000; ++i) rs.add(rng.uniform());
  EXPECT_NEAR(rs.mean(), 0.5, 0.01);
  EXPECT_NEAR(rs.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 2.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 2.0);
  }
}

TEST(Rng, UniformIndexCoversRangeUniformly) {
  Rng rng(17);
  std::array<int, 7> counts{};
  const int draws = 70000;
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform_index(7)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), draws / 7.0, draws / 7.0 * 0.1);
  }
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), InvalidArgument);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  RunningStats rs;
  for (int i = 0; i < 200000; ++i) rs.add(rng.normal());
  EXPECT_NEAR(rs.mean(), 0.0, 0.02);
  EXPECT_NEAR(rs.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalParameterized) {
  Rng rng(29);
  RunningStats rs;
  for (int i = 0; i < 100000; ++i) rs.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(rs.mean(), 10.0, 0.1);
  EXPECT_NEAR(rs.stddev(), 3.0, 0.1);
}

TEST(Rng, LognormalMedian) {
  Rng rng(31);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(rng.lognormal(1.0, 0.5));
  // Median of lognormal(mu, sigma) is exp(mu).
  EXPECT_NEAR(median(xs), std::exp(1.0), 0.1);
  for (const double x : xs) EXPECT_GT(x, 0.0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(37);
  RunningStats rs;
  for (int i = 0; i < 100000; ++i) rs.add(rng.exponential(2.0));
  EXPECT_NEAR(rs.mean(), 0.5, 0.02);
}

TEST(Rng, GammaMoments) {
  Rng rng(41);
  RunningStats rs;
  const double shape = 3.0;
  const double scale = 2.0;
  for (int i = 0; i < 100000; ++i) rs.add(rng.gamma(shape, scale));
  EXPECT_NEAR(rs.mean(), shape * scale, 0.1);
  EXPECT_NEAR(rs.variance(), shape * scale * scale, 0.5);
}

TEST(Rng, GammaSmallShape) {
  Rng rng(43);
  RunningStats rs;
  for (int i = 0; i < 100000; ++i) rs.add(rng.gamma(0.5, 1.0));
  EXPECT_NEAR(rs.mean(), 0.5, 0.05);
}

TEST(Rng, BetaBoundsAndMean) {
  Rng rng(47);
  RunningStats rs;
  for (int i = 0; i < 50000; ++i) {
    const double b = rng.beta(2.0, 5.0);
    EXPECT_GT(b, 0.0);
    EXPECT_LT(b, 1.0);
    rs.add(b);
  }
  EXPECT_NEAR(rs.mean(), 2.0 / 7.0, 0.01);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(53);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, PoissonSmallAndLargeMean) {
  Rng rng(59);
  RunningStats small;
  for (int i = 0; i < 50000; ++i) {
    small.add(static_cast<double>(rng.poisson(3.0)));
  }
  EXPECT_NEAR(small.mean(), 3.0, 0.1);
  RunningStats large;
  for (int i = 0; i < 50000; ++i) {
    large.add(static_cast<double>(rng.poisson(100.0)));
  }
  EXPECT_NEAR(large.mean(), 100.0, 1.0);
}

TEST(Rng, PoissonZeroLambda) {
  Rng rng(61);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(67);
  const std::vector<double> w{1.0, 3.0, 6.0};
  std::array<int, 3> counts{};
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rng.categorical(w)];
  EXPECT_NEAR(counts[0] / static_cast<double>(draws), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(draws), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(draws), 0.6, 0.01);
}

TEST(Rng, CategoricalSkipsZeroWeights) {
  Rng rng(71);
  const std::vector<double> w{0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.categorical(w), 1u);
}

TEST(Rng, CategoricalRejectsInvalid) {
  Rng rng(73);
  const std::vector<double> empty;
  EXPECT_THROW(rng.categorical(empty), InvalidArgument);
  const std::vector<double> zero{0.0, 0.0};
  EXPECT_THROW(rng.categorical(zero), InvalidArgument);
  const std::vector<double> negative{1.0, -1.0};
  EXPECT_THROW(rng.categorical(negative), InvalidArgument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(79);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(83);
  const auto sample = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const auto s : sample) EXPECT_LT(s, 100u);
}

TEST(Rng, SampleWithoutReplacementFullPopulation) {
  Rng rng(89);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(97);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), InvalidArgument);
}

}  // namespace
}  // namespace xdmodml
