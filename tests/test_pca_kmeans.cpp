// Tests for PCA, k-means, and the feature correlation analysis.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "ml/feature_analysis.hpp"
#include "ml/kmeans.hpp"
#include "ml/pca.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace xdmodml::ml {
namespace {

TEST(Pca, RecoversDominantDirection) {
  // Data on a noisy line y = 2x: first component must align with (1, 2).
  Rng rng(1);
  Matrix X;
  for (int i = 0; i < 500; ++i) {
    const double t = rng.normal(0.0, 3.0);
    X.append_row(std::vector<double>{t + rng.normal(0.0, 0.1),
                                     2.0 * t + rng.normal(0.0, 0.1)});
  }
  Pca pca;
  pca.fit(X, 1);
  EXPECT_GT(pca.explained_variance_ratio(1), 0.99);
  const auto z = pca.transform_row(std::vector<double>{1.0, 2.0});
  const auto z0 = pca.transform_row(std::vector<double>{0.0, 0.0});
  // Moving along (1,2) moves the first component by ~sqrt(5).
  EXPECT_NEAR(std::abs(z[0] - z0[0]), std::sqrt(5.0), 0.05);
}

TEST(Pca, ExplainedVarianceMonotone) {
  Rng rng(2);
  Matrix X;
  for (int i = 0; i < 200; ++i) {
    X.append_row(std::vector<double>{rng.normal(0, 3), rng.normal(0, 2),
                                     rng.normal(0, 1)});
  }
  Pca pca;
  pca.fit(X);
  double prev = 0.0;
  for (std::size_t k = 0; k <= 3; ++k) {
    const double r = pca.explained_variance_ratio(k);
    EXPECT_GE(r, prev);
    prev = r;
  }
  EXPECT_NEAR(pca.explained_variance_ratio(3), 1.0, 1e-9);
}

TEST(Pca, RoundTripFullRank) {
  Rng rng(3);
  Matrix X;
  for (int i = 0; i < 50; ++i) {
    X.append_row(std::vector<double>{rng.normal(), rng.normal(),
                                     rng.normal()});
  }
  Pca pca;
  pca.fit(X);  // all components
  const auto Z = pca.transform(X);
  const auto back = pca.inverse_transform(Z);
  for (std::size_t r = 0; r < X.rows(); ++r) {
    for (std::size_t c = 0; c < X.cols(); ++c) {
      EXPECT_NEAR(back(r, c), X(r, c), 1e-8);
    }
  }
}

TEST(Pca, TruncatedReconstructionLosesOnlyMinorVariance) {
  Rng rng(4);
  Matrix X;
  for (int i = 0; i < 300; ++i) {
    const double t = rng.normal(0.0, 5.0);
    X.append_row(std::vector<double>{t, -t + rng.normal(0.0, 0.2),
                                     rng.normal(0.0, 0.2)});
  }
  Pca pca;
  pca.fit(X, 1);
  const auto back = pca.inverse_transform(pca.transform(X));
  double err = 0.0;
  double total = 0.0;
  for (std::size_t r = 0; r < X.rows(); ++r) {
    for (std::size_t c = 0; c < X.cols(); ++c) {
      err += (back(r, c) - X(r, c)) * (back(r, c) - X(r, c));
      total += X(r, c) * X(r, c);
    }
  }
  EXPECT_LT(err / total, 0.01);
}

TEST(Pca, Validation) {
  Pca pca;
  EXPECT_THROW(pca.fit(Matrix(1, 2)), InvalidArgument);
  EXPECT_THROW(pca.transform(Matrix(1, 2)), InvalidArgument);
}

Matrix three_blobs(std::vector<int>* labels, std::uint64_t seed = 5) {
  Rng rng(seed);
  Matrix X;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 80; ++i) {
      X.append_row(std::vector<double>{rng.normal(6.0 * c, 1.0),
                                       rng.normal(c == 1 ? 6.0 : 0.0, 1.0)});
      if (labels) labels->push_back(c);
    }
  }
  return X;
}

TEST(KMeans, FindsWellSeparatedBlobs) {
  std::vector<int> labels;
  const auto X = three_blobs(&labels);
  KMeansConfig cfg;
  cfg.clusters = 3;
  const auto result = kmeans(X, cfg, 9);
  EXPECT_EQ(result.centroids.rows(), 3u);
  EXPECT_EQ(result.assignments.size(), X.rows());
  EXPECT_GT(cluster_purity(result.assignments, labels), 0.98);
  EXPECT_GT(normalized_mutual_information(result.assignments, labels),
            0.9);
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  std::vector<int> labels;
  const auto X = three_blobs(&labels);
  double prev = std::numeric_limits<double>::infinity();
  for (const std::size_t k : {1u, 2u, 3u, 6u}) {
    KMeansConfig cfg;
    cfg.clusters = k;
    const auto result = kmeans(X, cfg, 11);
    EXPECT_LT(result.inertia, prev);
    prev = result.inertia;
  }
}

TEST(KMeans, NearestCentroidConsistent) {
  std::vector<int> labels;
  const auto X = three_blobs(&labels);
  KMeansConfig cfg;
  cfg.clusters = 3;
  const auto result = kmeans(X, cfg, 13);
  for (std::size_t r = 0; r < X.rows(); ++r) {
    EXPECT_EQ(nearest_centroid(result.centroids, X.row(r)),
              result.assignments[r]);
  }
}

TEST(KMeans, Validation) {
  Matrix X = Matrix::from_rows({{1.0}, {2.0}});
  KMeansConfig cfg;
  cfg.clusters = 3;
  EXPECT_THROW(kmeans(X, cfg), InvalidArgument);
  EXPECT_THROW(cluster_purity(std::vector<int>{0},
                              std::vector<int>{0, 1}),
               InvalidArgument);
}

TEST(KMeans, NmiProperties) {
  const std::vector<int> a{0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(normalized_mutual_information(a, a), 1.0, 1e-12);
  const std::vector<int> relabeled{5, 5, 9, 9, 7, 7};
  EXPECT_NEAR(normalized_mutual_information(a, relabeled), 1.0, 1e-12);
  const std::vector<int> constant{1, 1, 1, 1, 1, 1};
  EXPECT_NEAR(normalized_mutual_information(a, constant), 0.0, 1e-12);
}

TEST(FeatureAnalysis, CorrelationMatrixKnownValues) {
  Matrix X;
  Rng rng(15);
  for (int i = 0; i < 400; ++i) {
    const double t = rng.normal();
    X.append_row(std::vector<double>{t, -t, rng.normal(), 3.0});
  }
  const auto corr = correlation_matrix(X);
  EXPECT_NEAR(corr(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(corr(0, 1), -1.0, 1e-9);
  EXPECT_NEAR(std::abs(corr(0, 2)), 0.0, 0.15);
  // Constant column: correlation defined as 0.
  EXPECT_DOUBLE_EQ(corr(0, 3), 0.0);
}

TEST(FeatureAnalysis, PrunesPerfectlyCorrelatedPair) {
  Matrix X;
  Rng rng(16);
  for (int i = 0; i < 300; ++i) {
    const double t = rng.normal();
    const double u = rng.normal();
    X.append_row(std::vector<double>{t, 2.0 * t + 0.001 * rng.normal(), u});
  }
  const auto pruned = prune_correlated(X, 0.95);
  ASSERT_EQ(pruned.size(), 1u);
  EXPECT_GT(pruned[0].correlation, 0.99);
  const std::set<std::size_t> pair{pruned[0].dropped, pruned[0].kept};
  EXPECT_EQ(pair, (std::set<std::size_t>{0, 1}));
  const auto survivors = surviving_columns(3, pruned);
  EXPECT_EQ(survivors.size(), 2u);
}

TEST(FeatureAnalysis, RespectsMaxDrops) {
  Matrix X;
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    const double t = rng.normal();
    X.append_row(std::vector<double>{t, t + 0.001 * rng.normal(),
                                     t + 0.002 * rng.normal(),
                                     t + 0.003 * rng.normal()});
  }
  const auto pruned = prune_correlated(X, 0.9, 2);
  EXPECT_EQ(pruned.size(), 2u);
  EXPECT_THROW(prune_correlated(X, 1.5), InvalidArgument);
}

}  // namespace
}  // namespace xdmodml::ml
