// Property-based (parameterized) sweeps over the data pipeline: the
// collector + aggregator must recover known ground-truth rates for any
// (interval length, node count, core count) combination, and COV
// attributes must track the injected node-to-node variation.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "taccstats/aggregator.hpp"
#include "taccstats/collector.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace xdmodml::taccstats {
namespace {

using supremm::MetricId;

// ---------------------------------------------------------------------
// Rate recovery across collection geometries.
// ---------------------------------------------------------------------
using GeoParam =
    std::tuple<double /*interval_s*/, int /*nodes*/, int /*cores*/>;

class RateRecoveryProperty : public ::testing::TestWithParam<GeoParam> {};

TEST_P(RateRecoveryProperty, RecoversGroundTruth) {
  const auto [interval, nodes, cores] = GetParam();
  CollectorConfig cfg;
  cfg.interval_seconds = interval;
  cfg.cores_per_node = static_cast<std::uint32_t>(cores);
  cfg.counter_noise = 0.0;

  const double instr_rate = 1.7e9;
  const double cycles_rate = 2.3e9;
  const double lustre_rate = 12.5e6;
  NodeRateModel model = [&](std::size_t, std::size_t) {
    NodeInterval iv;
    iv.core_user_fraction.assign(static_cast<std::size_t>(cores), 0.75);
    iv.system_fraction_of_rest = 0.4;
    iv.mem_used_gb = 5.0;
    iv.rates[static_cast<std::size_t>(CounterId::kInstructions)] =
        instr_rate;
    iv.rates[static_cast<std::size_t>(CounterId::kClockCycles)] =
        cycles_rate;
    iv.rates[static_cast<std::size_t>(CounterId::kL1dLoads)] =
        cycles_rate / 3.0;
    iv.rates[static_cast<std::size_t>(CounterId::kLustreTxBytes)] =
        lustre_rate;
    return iv;
  };

  Rng rng(5);
  const double wall = interval * 5.5;  // exercise the short tail interval
  std::vector<std::vector<RawSample>> streams;
  for (int n = 0; n < nodes; ++n) {
    streams.push_back(collect_node(model, static_cast<std::size_t>(n),
                                   wall, cfg, rng));
  }
  const auto result = aggregate_job(streams, cfg);
  const auto& job = result.job;
  EXPECT_EQ(job.nodes, static_cast<std::uint32_t>(nodes));
  EXPECT_NEAR(job.mean_of(MetricId::kCpi), cycles_rate / instr_rate, 0.02);
  EXPECT_NEAR(job.mean_of(MetricId::kCpld), 3.0, 0.05);
  EXPECT_NEAR(job.mean_of(MetricId::kLustreTransmit), 12.5, 0.3);
  EXPECT_NEAR(job.mean_of(MetricId::kCpuUser), 0.75, 0.02);
  EXPECT_NEAR(job.mean_of(MetricId::kMemUsed), 5.0, 0.1);
  // Identical nodes: COV near zero everywhere it is defined.
  EXPECT_NEAR(job.cov_of(MetricId::kLustreTransmit), 0.0, 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, RateRecoveryProperty,
    ::testing::Combine(::testing::Values(120.0, 600.0, 1800.0),
                       ::testing::Values(1, 3, 8),
                       ::testing::Values(4, 16)));

// ---------------------------------------------------------------------
// COV attributes track injected node variation.
// ---------------------------------------------------------------------
class CovTrackingProperty : public ::testing::TestWithParam<double> {};

TEST_P(CovTrackingProperty, JobCovGrowsWithNodeVariation) {
  const double variation = GetParam();
  CollectorConfig cfg;
  cfg.cores_per_node = 4;
  cfg.counter_noise = 0.0;
  Rng factor_rng(17);
  const int nodes = 24;
  std::vector<double> factors;
  for (int n = 0; n < nodes; ++n) {
    factors.push_back(std::max(0.05, factor_rng.normal(1.0, variation)));
  }
  NodeRateModel model = [&](std::size_t node, std::size_t) {
    NodeInterval iv;
    iv.core_user_fraction.assign(4, 0.8);
    iv.mem_used_gb = 4.0 * factors[node];
    iv.rates[static_cast<std::size_t>(CounterId::kInstructions)] = 1e9;
    iv.rates[static_cast<std::size_t>(CounterId::kClockCycles)] = 1e9;
    iv.rates[static_cast<std::size_t>(CounterId::kL1dLoads)] = 1e9;
    return iv;
  };
  Rng rng(3);
  std::vector<std::vector<RawSample>> streams;
  for (int n = 0; n < nodes; ++n) {
    streams.push_back(collect_node(model, static_cast<std::size_t>(n),
                                   3000.0, cfg, rng));
  }
  const auto result = aggregate_job(streams, cfg);
  // Measured COV should be close to the injected coefficient of
  // variation (sample error shrinks with 24 nodes).
  EXPECT_NEAR(result.job.cov_of(MetricId::kMemUsed), variation,
              0.35 * variation + 0.02);
}

INSTANTIATE_TEST_SUITE_P(Variations, CovTrackingProperty,
                         ::testing::Values(0.05, 0.15, 0.3, 0.5));

// ---------------------------------------------------------------------
// Workload generator: every application's jobs stay within physical
// bounds for any seed.
// ---------------------------------------------------------------------
class GeneratorSanityProperty : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorSanityProperty, JobsPhysicallyPlausible) {
  auto gen = workload::WorkloadGenerator::standard(
      {}, static_cast<std::uint64_t>(GetParam()));
  const auto jobs = gen.generate_native(60);
  for (const auto& job : jobs) {
    const auto& s = job.summary;
    const double user = s.mean_of(MetricId::kCpuUser);
    const double sys = s.mean_of(MetricId::kCpuSystem);
    const double idle = s.mean_of(MetricId::kCpuIdle);
    EXPECT_NEAR(user + sys + idle, 1.0, 1e-6);
    EXPECT_GE(user, 0.0);
    EXPECT_LE(user, 1.0);
    EXPECT_GT(s.mean_of(MetricId::kCpi), 0.05);
    EXPECT_LT(s.mean_of(MetricId::kCpi), 30.0);
    EXPECT_LT(s.mean_of(MetricId::kMemUsed), 32.0);
    EXPECT_GE(s.nodes, 1u);
    EXPECT_LE(s.nodes, 128u);
    EXPECT_GE(s.wall_seconds, 120.0);
    EXPECT_LE(s.wall_seconds, 48.0 * 3600.0);
    for (const auto& name : job.time_features) {
      EXPECT_TRUE(std::isfinite(name));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSanityProperty,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace xdmodml::taccstats
