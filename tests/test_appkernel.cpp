// Tests for the application-kernel QoS module: history generation,
// CUSUM degradation detection, and the regression dataset.
#include "xdmod/appkernel.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace xdmodml::xdmod {
namespace {

AppKernelHistoryConfig short_history() {
  AppKernelHistoryConfig cfg;
  cfg.days = 60.0;
  cfg.runs_per_day = 1.0;
  cfg.node_counts = {1, 4};
  return cfg;
}

TEST(AppKernelStore, AddAndSeries) {
  AppKernelStore store;
  store.add({"hpl", 1.0, 4, 1.0, 100.0, 50.0});
  store.add({"hpl", 0.5, 4, 1.0, 110.0, 45.0});
  store.add({"hpl", 2.0, 1, 1.0, 300.0, 20.0});
  store.add({"graph500", 1.0, 4, 1.0, 200.0, 10.0});
  EXPECT_EQ(store.size(), 4u);
  EXPECT_EQ(store.kernels(),
            (std::vector<std::string>{"hpl", "graph500"}));
  const auto series = store.series("hpl", 4);
  ASSERT_EQ(series.size(), 2u);
  // Ordered by day.
  EXPECT_DOUBLE_EQ(series[0].day, 0.5);
  EXPECT_DOUBLE_EQ(series[1].day, 1.0);
}

TEST(GenerateHistory, CountsAndScaling) {
  Rng rng(1);
  const std::vector<std::string> kernels{"hpl", "nwchem"};
  const auto runs =
      generate_appkernel_history(kernels, short_history(), {}, rng);
  // 2 kernels x 60 days x 1/day x 2 node counts.
  EXPECT_EQ(runs.size(), 240u);
  // Strong scaling: more nodes -> shorter wall for the same kernel.
  AppKernelStore store;
  store.add(runs);
  const auto s1 = store.series("hpl", 1);
  const auto s4 = store.series("hpl", 4);
  double w1 = 0.0;
  double w4 = 0.0;
  for (const auto& r : s1) w1 += r.wall_seconds;
  for (const auto& r : s4) w4 += r.wall_seconds;
  EXPECT_GT(w1 / static_cast<double>(s1.size()),
            w4 / static_cast<double>(s4.size()));
}

TEST(GenerateHistory, ValidatesInputs) {
  Rng rng(2);
  EXPECT_THROW(generate_appkernel_history({}, short_history(), {}, rng),
               InvalidArgument);
  AppKernelHistoryConfig bad = short_history();
  bad.days = 0.0;
  const std::vector<std::string> kernels{"hpl"};
  EXPECT_THROW(generate_appkernel_history(kernels, bad, {}, rng),
               InvalidArgument);
}

TEST(Cusum, DetectsInjectedDegradation) {
  Rng rng(3);
  const std::vector<std::string> kernels{"hpl"};
  const std::vector<DegradationEvent> events{{40.0, 60.0, 1.4}};
  const auto runs =
      generate_appkernel_history(kernels, short_history(), events, rng);
  AppKernelStore store;
  store.add(runs);
  const auto series = store.series("hpl", 4);
  const auto alarms = detect_degradations(series, {});
  ASSERT_FALSE(alarms.empty());
  // The first alarm should fire shortly after day 40.
  const double first_alarm_day = series[alarms.front()].day;
  EXPECT_GT(first_alarm_day, 39.0);
  EXPECT_LT(first_alarm_day, 48.0);
}

TEST(Cusum, QuietOnHealthySeries) {
  Rng rng(4);
  const std::vector<std::string> kernels{"hpl"};
  const auto runs =
      generate_appkernel_history(kernels, short_history(), {}, rng);
  AppKernelStore store;
  store.add(runs);
  const auto series = store.series("hpl", 1);
  const auto alarms = detect_degradations(series, {});
  EXPECT_TRUE(alarms.empty());
}

TEST(Cusum, RejectsShortSeries) {
  const std::vector<AppKernelRun> series(5);
  EXPECT_THROW(detect_degradations(series, {}), InvalidArgument);
}

TEST(Ewma, DetectsInjectedDegradation) {
  Rng rng(5);
  const std::vector<std::string> kernels{"hpl"};
  const std::vector<DegradationEvent> events{{40.0, 60.0, 1.4}};
  const auto runs =
      generate_appkernel_history(kernels, short_history(), events, rng);
  AppKernelStore store;
  store.add(runs);
  const auto series = store.series("hpl", 4);
  const auto alarms = detect_degradations_ewma(series, {});
  ASSERT_FALSE(alarms.empty());
  const double first_alarm_day = series[alarms.front()].day;
  EXPECT_GT(first_alarm_day, 39.0);
  EXPECT_LT(first_alarm_day, 50.0);
}

TEST(Ewma, QuietOnHealthySeries) {
  Rng rng(6);
  const std::vector<std::string> kernels{"hpl"};
  const auto runs =
      generate_appkernel_history(kernels, short_history(), {}, rng);
  AppKernelStore store;
  store.add(runs);
  const auto series = store.series("hpl", 1);
  EXPECT_TRUE(detect_degradations_ewma(series, {}).empty());
}

TEST(Ewma, SlowerThanCusumOnSmallShift) {
  // A small sustained shift: CUSUM accumulates evidence and should alarm
  // no later than the (3σ-limited) EWMA.
  Rng rng(7);
  const std::vector<std::string> kernels{"hpl"};
  AppKernelHistoryConfig cfg = short_history();
  cfg.runs_per_day = 2.0;
  const std::vector<DegradationEvent> events{{30.0, 60.0, 1.08}};
  const auto runs = generate_appkernel_history(kernels, cfg, events, rng);
  AppKernelStore store;
  store.add(runs);
  const auto series = store.series("hpl", 4);
  const auto cusum_alarms = detect_degradations(series, {});
  const auto ewma_alarms = detect_degradations_ewma(series, {});
  ASSERT_FALSE(cusum_alarms.empty());
  if (!ewma_alarms.empty()) {
    EXPECT_LE(series[cusum_alarms.front()].day,
              series[ewma_alarms.front()].day + 1.0);
  }
}

TEST(Ewma, Validation) {
  const std::vector<AppKernelRun> series(5);
  EXPECT_THROW(detect_degradations_ewma(series, {}), InvalidArgument);
  Rng rng(8);
  const std::vector<std::string> kernels{"hpl"};
  const auto runs =
      generate_appkernel_history(kernels, short_history(), {}, rng);
  AppKernelStore store;
  store.add(runs);
  const auto ok = store.series("hpl", 1);
  EwmaConfig bad;
  bad.lambda = 0.0;
  EXPECT_THROW(detect_degradations_ewma(ok, bad), InvalidArgument);
}

TEST(RegressionDataset, OneHotPlusShapeFeatures) {
  AppKernelStore store;
  store.add({"hpl", 1.0, 4, 1.0, 100.0, 50.0});
  store.add({"nwchem", 1.0, 2, 2.0, 400.0, 20.0});
  const auto ds = store.regression_dataset();
  EXPECT_EQ(ds.num_features(), 4u);  // 2 one-hot + nodes + input_scale
  EXPECT_EQ(ds.targets.size(), 2u);
  EXPECT_DOUBLE_EQ(ds.X(0, 0), 1.0);  // is_hpl
  EXPECT_DOUBLE_EQ(ds.X(1, 1), 1.0);  // is_nwchem
  EXPECT_DOUBLE_EQ(ds.X(1, 2), 2.0);  // nodes
  EXPECT_DOUBLE_EQ(ds.targets[1], 400.0);
  AppKernelStore empty;
  EXPECT_THROW(empty.regression_dataset(), InvalidArgument);
}

}  // namespace
}  // namespace xdmodml::xdmod
