// Tests for the random forest: accuracy, OOB, permutation importance.
#include "ml/random_forest.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace xdmodml::ml {
namespace {

/// Three-class problem: class determined by feature 0 and feature 1;
/// feature 2 is pure noise.
void make_problem(std::size_t n, Matrix& X, std::vector<int>& y,
                  std::uint64_t seed = 1) {
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(rng.uniform_index(3));
    const double f0 = static_cast<double>(cls) * 2.0 + rng.normal(0.0, 0.7);
    const double f1 = (cls == 2 ? 3.0 : 0.0) + rng.normal(0.0, 0.7);
    const double noise = rng.normal(0.0, 1.0);
    X.append_row(std::vector<double>{f0, f1, noise});
    y.push_back(cls);
  }
}

ForestConfig small_forest(std::size_t trees = 60) {
  ForestConfig cfg;
  cfg.num_trees = trees;
  return cfg;
}

TEST(RandomForest, LearnsSeparableProblem) {
  Matrix X;
  std::vector<int> y;
  make_problem(1500, X, y);
  RandomForestClassifier rf(small_forest());
  rf.fit(X, y, 3);

  Matrix xt;
  std::vector<int> yt;
  make_problem(500, xt, yt, 77);
  std::size_t correct = 0;
  for (std::size_t r = 0; r < xt.rows(); ++r) {
    if (rf.predict(xt.row(r)) == yt[r]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(xt.rows()),
            0.9);
}

TEST(RandomForest, ProbabilitiesSumToOne) {
  Matrix X;
  std::vector<int> y;
  make_problem(300, X, y);
  RandomForestClassifier rf(small_forest(20));
  rf.fit(X, y, 3);
  const auto p = rf.predict_proba(X.row(0));
  ASSERT_EQ(p.size(), 3u);
  double total = 0.0;
  for (const auto v : p) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(RandomForest, OobErrorTracksTestError) {
  Matrix X;
  std::vector<int> y;
  make_problem(1200, X, y);
  RandomForestClassifier rf(small_forest());
  rf.fit(X, y, 3);
  const double oob = rf.oob_error();
  EXPECT_GT(oob, 0.0);
  EXPECT_LT(oob, 0.2);

  Matrix xt;
  std::vector<int> yt;
  make_problem(600, xt, yt, 99);
  std::size_t wrong = 0;
  for (std::size_t r = 0; r < xt.rows(); ++r) {
    if (rf.predict(xt.row(r)) != yt[r]) ++wrong;
  }
  const double test_err =
      static_cast<double>(wrong) / static_cast<double>(xt.rows());
  EXPECT_NEAR(oob, test_err, 0.05);
}

TEST(RandomForest, OobUnavailableWithoutBootstrap) {
  Matrix X;
  std::vector<int> y;
  make_problem(200, X, y);
  ForestConfig cfg = small_forest(10);
  cfg.bootstrap = false;
  RandomForestClassifier rf(cfg);
  rf.fit(X, y, 3);
  EXPECT_THROW(rf.oob_error(), InvalidArgument);
}

TEST(RandomForest, PermutationImportanceRanksSignalOverNoise) {
  Matrix X;
  std::vector<int> y;
  make_problem(1500, X, y);
  RandomForestClassifier rf(small_forest());
  rf.fit(X, y, 3);
  const auto imp = rf.permutation_importance(X, y);
  ASSERT_EQ(imp.size(), 3u);
  // Features 0 and 1 carry the signal; feature 2 is noise.
  EXPECT_GT(imp[0].mean_decrease_accuracy,
            imp[2].mean_decrease_accuracy + 0.05);
  EXPECT_GT(imp[1].mean_decrease_accuracy,
            imp[2].mean_decrease_accuracy + 0.05);
  EXPECT_NEAR(imp[2].mean_decrease_accuracy, 0.0, 0.02);
  // Impurity importance should agree on the ordering.
  EXPECT_GT(imp[0].mean_decrease_impurity, imp[2].mean_decrease_impurity);
}

TEST(RandomForest, CorrelatedMateDepressesImportance) {
  // The paper's caveat: when two features are highly correlated, permuting
  // one while the other is present understates its importance.  Duplicate
  // the signal feature and check both copies score below a lone copy.
  Rng rng(11);
  Matrix x_lone;
  Matrix x_dup;
  std::vector<int> y;
  for (int i = 0; i < 1200; ++i) {
    const int cls = static_cast<int>(rng.uniform_index(2));
    const double signal =
        static_cast<double>(cls) * 2.0 + rng.normal(0.0, 0.8);
    x_lone.append_row(std::vector<double>{signal, rng.normal()});
    x_dup.append_row(
        std::vector<double>{signal, signal + rng.normal(0.0, 0.01),
                            rng.normal()});
    y.push_back(cls);
  }
  RandomForestClassifier rf_lone(small_forest());
  rf_lone.fit(x_lone, y, 2);
  RandomForestClassifier rf_dup(small_forest());
  rf_dup.fit(x_dup, y, 2);
  const auto imp_lone = rf_lone.permutation_importance(x_lone, y);
  const auto imp_dup = rf_dup.permutation_importance(x_dup, y);
  EXPECT_LT(imp_dup[0].mean_decrease_accuracy,
            imp_lone[0].mean_decrease_accuracy);
  EXPECT_LT(imp_dup[1].mean_decrease_accuracy,
            imp_lone[0].mean_decrease_accuracy);
}

TEST(RandomForest, DeterministicForFixedSeed) {
  Matrix X;
  std::vector<int> y;
  make_problem(400, X, y);
  RandomForestClassifier a(small_forest(15), 123);
  RandomForestClassifier b(small_forest(15), 123);
  a.fit(X, y, 3);
  b.fit(X, y, 3);
  EXPECT_DOUBLE_EQ(a.oob_error(), b.oob_error());
  for (std::size_t r = 0; r < 50; ++r) {
    EXPECT_EQ(a.predict(X.row(r)), b.predict(X.row(r)));
  }
}

TEST(RandomForest, ParallelMatchesSerial) {
  Matrix X;
  std::vector<int> y;
  make_problem(400, X, y);
  ForestConfig par = small_forest(15);
  ForestConfig ser = small_forest(15);
  ser.parallel = false;
  RandomForestClassifier a(par, 5);
  RandomForestClassifier b(ser, 5);
  a.fit(X, y, 3);
  b.fit(X, y, 3);
  EXPECT_DOUBLE_EQ(a.oob_error(), b.oob_error());
  for (std::size_t r = 0; r < 50; ++r) {
    const auto pa = a.predict_proba(X.row(r));
    const auto pb = b.predict_proba(X.row(r));
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(pa[c], pb[c]);
  }
}

TEST(RandomForestRegressor, FitsNoisyLinear) {
  Rng rng(13);
  Matrix X;
  std::vector<double> y;
  for (int i = 0; i < 2000; ++i) {
    const double a = rng.uniform(0.0, 10.0);
    const double b = rng.uniform(0.0, 10.0);
    X.append_row(std::vector<double>{a, b});
    y.push_back(2.0 * a - b + rng.normal(0.0, 0.3));
  }
  RandomForestRegressor rf(small_forest());
  rf.fit(X, y);
  double se = 0.0;
  int n = 0;
  for (double a = 1.0; a < 9.0; a += 1.0) {
    for (double b = 1.0; b < 9.0; b += 1.0) {
      const double pred = rf.predict(std::vector<double>{a, b});
      const double truth = 2.0 * a - b;
      se += (pred - truth) * (pred - truth);
      ++n;
    }
  }
  EXPECT_LT(std::sqrt(se / n), 1.0);
  EXPECT_GT(rf.oob_mse(), 0.0);
  EXPECT_LT(rf.oob_mse(), 2.0);
}

TEST(RandomForest, RejectsBadInputs) {
  RandomForestClassifier rf(small_forest(5));
  Matrix X = Matrix::from_rows({{1.0}});
  EXPECT_THROW(rf.fit(X, std::vector<int>{0, 1}, 2), InvalidArgument);
  EXPECT_THROW(rf.predict(std::vector<double>{1.0}), InvalidArgument);
  ForestConfig zero;
  zero.num_trees = 0;
  EXPECT_THROW(RandomForestClassifier{zero}, InvalidArgument);
}

TEST(RandomForest, BatchPredictionsMatchSerial) {
  Matrix X;
  std::vector<int> y;
  make_problem(300, X, y);
  RandomForestClassifier rf(small_forest(30));
  rf.fit(X, y, 3);
  const auto labels = rf.predict_batch(X);
  const auto probas = rf.predict_proba_batch(X);
  const auto preds = rf.predict_batch_with_probability(X);
  ASSERT_EQ(labels.size(), X.rows());
  ASSERT_EQ(probas.size(), X.rows());
  ASSERT_EQ(preds.size(), X.rows());
  for (std::size_t r = 0; r < X.rows(); ++r) {
    EXPECT_EQ(labels[r], rf.predict(X.row(r)));
    const auto serial = rf.predict_proba(X.row(r));
    ASSERT_EQ(probas[r].size(), serial.size());
    for (std::size_t c = 0; c < serial.size(); ++c) {
      EXPECT_DOUBLE_EQ(probas[r][c], serial[c]);
    }
    EXPECT_EQ(preds[r].label, labels[r]);
  }
}

}  // namespace
}  // namespace xdmodml::ml
