// Property tests for SharedGramCache: LRU eviction order, byte-budget
// capacity accounting under float32 vs float64 rows, slice helpers, and
// a multi-threaded hammer asserting no torn rows or double-fills.
#include "ml/smo.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "ml/kernel.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace xdmodml::ml {
namespace {

Matrix make_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Matrix X(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      X(r, c) = rng.normal(0.0, 1.0);
    }
  }
  return X;
}

TEST(SharedGramCacheProps, LruEvictionOrder) {
  const Matrix X = make_matrix(8, 3, 11);
  SharedGramCache cache(X, Kernel::rbf(0.5), 2);
  EXPECT_EQ(cache.capacity_rows(), 2u);

  (void)cache.row(0);  // miss, fill
  (void)cache.row(1);  // miss, fill — cache = {1, 0} (MRU first)
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.evictions(), 0u);

  (void)cache.row(0);  // hit, refreshes 0 — cache = {0, 1}
  EXPECT_EQ(cache.hits(), 1u);

  (void)cache.row(2);  // miss, evicts the LRU row 1 — cache = {2, 0}
  EXPECT_EQ(cache.evictions(), 1u);
  (void)cache.row(0);  // still resident: the refresh kept it off the tail
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 3u);

  (void)cache.row(1);  // evicted above, so this recomputes (evicting 2)
  EXPECT_EQ(cache.misses(), 4u);
  EXPECT_EQ(cache.evictions(), 2u);
}

TEST(SharedGramCacheProps, RepeatedAccessDoesNotDoubleFill) {
  const Matrix X = make_matrix(6, 3, 12);
  SharedGramCache cache(X, Kernel::rbf(0.5), 4);
  const auto first = cache.row(3);
  const auto second = cache.row(3);
  // Same shared payload, not a recomputed copy.
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(SharedGramCacheProps, ByteBudgetAccountsForPrecision) {
  const std::size_t n = 100;
  const std::size_t budget = 100 * 1024;  // 100 KiB
  // float32 rows cost n*4 bytes, float64 rows n*8: the same byte budget
  // affords exactly twice the float rows.
  const auto rows_f32 = SharedGramCache::rows_for_budget(
      n, budget, GramPrecision::kFloat32);
  const auto rows_f64 = SharedGramCache::rows_for_budget(
      n, budget, GramPrecision::kFloat64);
  EXPECT_EQ(rows_f32, budget / (n * sizeof(float)));
  EXPECT_EQ(rows_f64, budget / (n * sizeof(double)));
  EXPECT_EQ(rows_f32, 2 * rows_f64);
  // Tiny budgets floor at 2 rows so the LRU always has a victim.
  EXPECT_EQ(SharedGramCache::rows_for_budget(n, 0, GramPrecision::kFloat32),
            2u);

  const Matrix X = make_matrix(n, 4, 13);
  SharedGramCache f32(X, Kernel::rbf(0.1), rows_f32,
                      GramPrecision::kFloat32);
  SharedGramCache f64(X, Kernel::rbf(0.1), rows_f64,
                      GramPrecision::kFloat64);
  EXPECT_EQ(f32.row_bytes(), n * sizeof(float));
  EXPECT_EQ(f64.row_bytes(), n * sizeof(double));
  EXPECT_LE(f32.capacity_bytes(), budget);
  EXPECT_LE(f64.capacity_bytes(), budget);
  EXPECT_EQ(f32.capacity_bytes(), f64.capacity_bytes());
}

TEST(SharedGramCacheProps, GatherAndDotMatchElementAccess) {
  const Matrix X = make_matrix(12, 4, 14);
  for (const auto precision :
       {GramPrecision::kFloat32, GramPrecision::kFloat64}) {
    SharedGramCache cache(X, Kernel::rbf(0.2), X.rows(), precision);
    const auto row = cache.row(5);
    const std::vector<std::size_t> idx{7, 0, 11, 5, 2};
    std::vector<double> out(idx.size());
    row->gather(idx, out);
    const std::vector<double> coef{0.5, -1.0, 2.0, 0.25, -0.75};
    double expected_dot = 0.0;
    for (std::size_t t = 0; t < idx.size(); ++t) {
      EXPECT_EQ(out[t], (*row)[idx[t]]);
      expected_dot += coef[t] * (*row)[idx[t]];
    }
    EXPECT_DOUBLE_EQ(row->dot_at(idx, coef), expected_dot);
  }
}

TEST(SharedGramCacheProps, Float32RowsRoundTheDoubleRows) {
  const Matrix X = make_matrix(20, 5, 15);
  const Kernel kernel = Kernel::rbf(0.3);
  SharedGramCache f32(X, kernel, X.rows(), GramPrecision::kFloat32);
  SharedGramCache f64(X, kernel, X.rows(), GramPrecision::kFloat64);
  for (std::size_t i = 0; i < X.rows(); ++i) {
    const auto a = f32.row(i);
    const auto b = f64.row(i);
    for (std::size_t j = 0; j < X.rows(); ++j) {
      // The float row is exactly the rounded double row: same sweep,
      // one narrowing conversion.
      EXPECT_EQ((*a)[j], static_cast<double>(static_cast<float>((*b)[j])));
    }
  }
}

// N threads × M rows hammering a small cache must never observe a torn
// or partially-filled row: every handed-out row matches the engine's
// reference values exactly, even while other threads force evictions.
TEST(SharedGramCacheProps, ConcurrentHammerYieldsNoTornRows) {
  const std::size_t n = 32;
  const Matrix X = make_matrix(n, 6, 16);
  const Kernel kernel = Kernel::rbf(0.25);

  // Reference rows straight from a private engine.
  const GramRowEngine reference(X, kernel);
  Matrix expected(n, n);
  for (std::size_t i = 0; i < n; ++i) reference.fill_row(i, expected.row(i));

  for (const auto precision :
       {GramPrecision::kFloat32, GramPrecision::kFloat64}) {
    SharedGramCache cache(X, kernel, 6, precision);  // deliberately small
    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kOpsPerThread = 300;
    std::atomic<std::size_t> mismatches{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(100 + t);
        for (std::size_t op = 0; op < kOpsPerThread; ++op) {
          const auto i = static_cast<std::size_t>(rng.uniform_index(n));
          const auto row = cache.row(i);
          if (row->size() != n) {
            ++mismatches;
            continue;
          }
          for (std::size_t j = 0; j < n; ++j) {
            const double want =
                precision == GramPrecision::kFloat32
                    ? static_cast<double>(static_cast<float>(expected(i, j)))
                    : expected(i, j);
            if ((*row)[j] != want) ++mismatches;
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(mismatches.load(), 0u);
    // Every access is exactly one hit or one miss — racing threads may
    // compute a row twice, but the accounting never loses an access.
    EXPECT_EQ(cache.hits() + cache.misses(), kThreads * kOpsPerThread);
    EXPECT_GE(cache.misses(), n - cache.capacity_rows());
  }
}

// Regression test: composing the per-field accessors (hits(), misses(),
// evictions() — each taking the lock separately) could tear: a reader
// could see an eviction whose miss it had not seen, violating
// evictions <= misses.  `stats()` takes the lock once, so every
// snapshot must satisfy the cache invariants even while writer threads
// force continuous eviction churn.
TEST(SharedGramCacheProps, StatsSnapshotNeverTearsUnderConcurrentChurn) {
  const std::size_t n = 24;
  const Matrix X = make_matrix(n, 5, 17);
  SharedGramCache cache(X, Kernel::rbf(0.4), 4);  // small: constant churn

  std::atomic<bool> done{false};
  std::atomic<std::size_t> violations{0};
  std::thread reader([&] {
    std::size_t last_accesses = 0;
    while (!done.load()) {
      const auto s = cache.stats();
      if (s.evictions > s.misses) ++violations;
      if (s.resident_rows > cache.capacity_rows()) ++violations;
      if (s.resident_bytes != s.resident_rows * cache.row_bytes()) {
        ++violations;
      }
      // Accesses only ever accumulate.
      const std::size_t accesses = s.hits + s.misses;
      if (accesses < last_accesses) ++violations;
      last_accesses = accesses;
    }
  });

  constexpr std::size_t kWriters = 4;
  constexpr std::size_t kOpsPerWriter = 400;
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      Rng rng(200 + t);
      for (std::size_t op = 0; op < kOpsPerWriter; ++op) {
        (void)cache.row(static_cast<std::size_t>(rng.uniform_index(n)));
      }
    });
  }
  for (auto& th : writers) th.join();
  done.store(true);
  reader.join();
  EXPECT_EQ(violations.load(), 0u);

  // Quiesced, the snapshot and the convenience accessors agree.
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, cache.hits());
  EXPECT_EQ(s.misses, cache.misses());
  EXPECT_EQ(s.evictions, cache.evictions());
  EXPECT_EQ(s.hits + s.misses, kWriters * kOpsPerWriter);
  EXPECT_LE(s.resident_rows, cache.capacity_rows());
  EXPECT_EQ(s.resident_bytes, s.resident_rows * cache.row_bytes());
}

}  // namespace
}  // namespace xdmodml::ml
