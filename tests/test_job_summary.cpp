// Tests for JobSummary extraction, node aggregation and the efficiency
// rules, plus dataset building.
#include "supremm/dataset_builder.hpp"
#include "supremm/efficiency.hpp"
#include "supremm/job_summary.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace xdmodml::supremm {
namespace {

NodeSummary node_with(MetricId id, double value) {
  NodeSummary n;
  n.means[static_cast<std::size_t>(id)] = value;
  return n;
}

TEST(AggregateNodes, MeanAndCovAcrossNodes) {
  std::vector<NodeSummary> nodes;
  for (const double v : {10.0, 12.0, 8.0}) {
    nodes.push_back(node_with(MetricId::kMemUsed, v));
  }
  JobSummary job;
  job.cores_per_node = 16;
  aggregate_nodes(nodes, job);
  EXPECT_DOUBLE_EQ(job.mean_of(MetricId::kMemUsed), 10.0);
  // COV = sd/mean with sd = 2.
  EXPECT_NEAR(job.cov_of(MetricId::kMemUsed), 0.2, 1e-12);
  EXPECT_DOUBLE_EQ(job.mean_of(MetricId::kNodes), 3.0);
  EXPECT_EQ(job.nodes, 3u);
  EXPECT_DOUBLE_EQ(job.mean_of(MetricId::kCoresPerNode), 16.0);
}

TEST(AggregateNodes, SingleNodeHasZeroCov) {
  std::vector<NodeSummary> nodes{node_with(MetricId::kCpuUser, 0.9)};
  JobSummary job;
  aggregate_nodes(nodes, job);
  EXPECT_DOUBLE_EQ(job.cov_of(MetricId::kCpuUser), 0.0);
  EXPECT_DOUBLE_EQ(job.mean_of(MetricId::kNodes), 1.0);
}

TEST(AggregateNodes, RejectsEmpty) {
  JobSummary job;
  EXPECT_THROW(aggregate_nodes({}, job), InvalidArgument);
}

TEST(JobSummary, ExtractFollowsSchema) {
  JobSummary job;
  job.set_mean(MetricId::kCpi, 1.5);
  job.set_cov(MetricId::kCpi, 0.25);
  const AttributeSchema schema({{MetricId::kCpi, false},
                                {MetricId::kCpi, true}});
  const auto features = job.extract(schema);
  ASSERT_EQ(features.size(), 2u);
  EXPECT_DOUBLE_EQ(features[0], 1.5);
  EXPECT_DOUBLE_EQ(features[1], 0.25);
}

TEST(BuildFeatureMatrix, ShapeAndValues) {
  JobSummary a;
  a.set_mean(MetricId::kCpi, 1.0);
  JobSummary b;
  b.set_mean(MetricId::kCpi, 2.0);
  const std::vector<JobSummary> jobs{a, b};
  const AttributeSchema schema({{MetricId::kCpi, false}});
  const auto X = build_feature_matrix(jobs, schema);
  EXPECT_EQ(X.rows(), 2u);
  EXPECT_EQ(X.cols(), 1u);
  EXPECT_DOUBLE_EQ(X(1, 0), 2.0);
}

JobSummary efficient_job() {
  JobSummary job;
  job.set_mean(MetricId::kCpuUser, 0.9);
  job.set_mean(MetricId::kCpi, 0.8);
  job.set_mean(MetricId::kCpld, 3.0);
  job.set_mean(MetricId::kCatastrophe, 0.9);
  job.set_mean(MetricId::kCpuUserImbalance, 0.1);
  return job;
}

TEST(EfficiencyRules, EfficientJobPasses) {
  const EfficiencyRules rules;
  EXPECT_FALSE(rules.is_inefficient(efficient_job()));
}

TEST(EfficiencyRules, EachRuleFiresIndependently) {
  const EfficiencyRules rules;
  {
    auto job = efficient_job();
    job.set_mean(MetricId::kCpuUser, 0.2);
    const auto v = rules.evaluate(job);
    EXPECT_TRUE(v.inefficient);
    EXPECT_TRUE(v.low_cpu_user);
    EXPECT_FALSE(v.high_cpi);
  }
  {
    auto job = efficient_job();
    job.set_mean(MetricId::kCpi, 3.0);
    EXPECT_TRUE(rules.evaluate(job).high_cpi);
  }
  {
    auto job = efficient_job();
    job.set_mean(MetricId::kCpld, 8.0);
    EXPECT_TRUE(rules.evaluate(job).high_cpld);
  }
  {
    auto job = efficient_job();
    job.set_mean(MetricId::kCatastrophe, 0.1);
    EXPECT_TRUE(rules.evaluate(job).catastrophe);
  }
  {
    auto job = efficient_job();
    job.set_mean(MetricId::kCpuUserImbalance, 2.0);
    EXPECT_TRUE(rules.evaluate(job).imbalance);
  }
}

TEST(EfficiencyRules, ThresholdsConfigurable) {
  EfficiencyRules rules;
  rules.min_cpu_user = 0.95;
  EXPECT_TRUE(rules.is_inefficient(efficient_job()));
}

JobSummary labeled_job(const std::string& app, const std::string& category,
                       LabelSource source, double cpi) {
  JobSummary job;
  job.application = app;
  job.category = category;
  job.label_source = source;
  job.set_mean(MetricId::kCpi, cpi);
  return job;
}

TEST(DatasetBuilder, LabelByApplicationDropsUnidentified) {
  const std::vector<JobSummary> jobs{
      labeled_job("VASP", "QC,ES", LabelSource::kIdentified, 1.0),
      labeled_job("", "", LabelSource::kUncategorized, 2.0),
      labeled_job("NAMD", "MD", LabelSource::kIdentified, 3.0),
  };
  const AttributeSchema schema({{MetricId::kCpi, false}});
  const auto ds = build_dataset(jobs, schema, label_by_application());
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds.class_names,
            (std::vector<std::string>{"VASP", "NAMD"}));
}

TEST(DatasetBuilder, ClassOrderPinsCodes) {
  const std::vector<JobSummary> jobs{
      labeled_job("NAMD", "MD", LabelSource::kIdentified, 1.0),
  };
  const AttributeSchema schema({{MetricId::kCpi, false}});
  const std::vector<std::string> order{"VASP", "NAMD"};
  const auto ds = build_dataset(jobs, schema, label_by_application(), order);
  EXPECT_EQ(ds.class_names.size(), 2u);
  EXPECT_EQ(ds.labels[0], 1);  // NAMD pinned to code 1
}

TEST(DatasetBuilder, LabelByCategory) {
  const std::vector<JobSummary> jobs{
      labeled_job("VASP", "QC,ES", LabelSource::kIdentified, 1.0),
      labeled_job("NAMD", "MD", LabelSource::kIdentified, 2.0),
  };
  const AttributeSchema schema({{MetricId::kCpi, false}});
  const auto ds = build_dataset(jobs, schema, label_by_category());
  EXPECT_EQ(ds.class_names, (std::vector<std::string>{"QC,ES", "MD"}));
}

TEST(DatasetBuilder, LabelByEfficiencyAndExit) {
  auto good = efficient_job();
  auto bad = efficient_job();
  bad.set_mean(MetricId::kCpi, 5.0);
  bad.exit_code = 1;
  const std::vector<JobSummary> jobs{good, bad};
  const AttributeSchema schema({{MetricId::kCpi, false}});
  const auto eff = build_dataset(jobs, schema, label_by_efficiency());
  EXPECT_EQ(eff.class_names[eff.labels[0]], "efficient");
  EXPECT_EQ(eff.class_names[eff.labels[1]], "inefficient");
  const auto exit = build_dataset(jobs, schema, label_by_exit_status());
  EXPECT_EQ(exit.class_names[exit.labels[0]], "success");
  EXPECT_EQ(exit.class_names[exit.labels[1]], "failure");
}

TEST(DatasetBuilder, UnlabeledAndRegression) {
  const std::vector<JobSummary> jobs{
      labeled_job("VASP", "QC,ES", LabelSource::kIdentified, 1.0)};
  const AttributeSchema schema({{MetricId::kCpi, false}});
  const auto pool = build_unlabeled(jobs, schema);
  EXPECT_TRUE(pool.labels.empty());
  EXPECT_EQ(pool.size(), 1u);
  const auto reg = build_regression_dataset(
      jobs, schema, [](const JobSummary& j) { return j.wall_seconds; });
  EXPECT_EQ(reg.targets.size(), 1u);
}

}  // namespace
}  // namespace xdmodml::supremm
