// Tests for the Jacobi symmetric eigensolver.
#include "util/eigen.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace xdmodml {
namespace {

TEST(Eigen, DiagonalMatrixTrivial) {
  auto a = Matrix::from_rows({{3.0, 0.0}, {0.0, 1.0}});
  const auto eig = eigen_symmetric(a);
  ASSERT_EQ(eig.eigenvalues.size(), 2u);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 1.0, 1e-12);
}

TEST(Eigen, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1)/√2, (1,-1)/√2.
  auto a = Matrix::from_rows({{2.0, 1.0}, {1.0, 2.0}});
  const auto eig = eigen_symmetric(a);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[1], 1.0, 1e-10);
  EXPECT_NEAR(std::abs(eig.eigenvectors(0, 0)), 1.0 / std::sqrt(2.0),
              1e-8);
}

TEST(Eigen, ReconstructsRandomSymmetric) {
  Rng rng(7);
  const std::size_t n = 12;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      a(i, j) = rng.normal();
      a(j, i) = a(i, j);
    }
  }
  const auto eig = eigen_symmetric(a);
  // A == V diag(w) V^T
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        s += eig.eigenvectors(i, k) * eig.eigenvalues[k] *
             eig.eigenvectors(j, k);
      }
      EXPECT_NEAR(s, a(i, j), 1e-8);
    }
  }
}

TEST(Eigen, EigenvectorsOrthonormal) {
  Rng rng(11);
  const std::size_t n = 8;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      a(i, j) = rng.normal();
      a(j, i) = a(i, j);
    }
  }
  const auto eig = eigen_symmetric(a);
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = 0; q < n; ++q) {
      double dot = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        dot += eig.eigenvectors(i, p) * eig.eigenvectors(i, q);
      }
      EXPECT_NEAR(dot, p == q ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(Eigen, EigenvaluesDescending) {
  Rng rng(13);
  Matrix a(6, 6);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = i; j < 6; ++j) {
      a(i, j) = rng.normal();
      a(j, i) = a(i, j);
    }
  }
  const auto eig = eigen_symmetric(a);
  for (std::size_t i = 1; i < eig.eigenvalues.size(); ++i) {
    EXPECT_GE(eig.eigenvalues[i - 1], eig.eigenvalues[i]);
  }
}

TEST(Eigen, PsdMatrixNonNegativeSpectrum) {
  // Gram matrices are PSD; all eigenvalues must be >= -eps.
  Rng rng(17);
  Matrix b(10, 4);
  for (auto& v : b.data()) v = rng.normal();
  Matrix gram(4, 4, 0.0);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      for (std::size_t r = 0; r < 10; ++r) gram(i, j) += b(r, i) * b(r, j);
    }
  }
  const auto eig = eigen_symmetric(gram);
  for (const auto w : eig.eigenvalues) EXPECT_GT(w, -1e-9);
}

TEST(Eigen, RejectsNonSquareAndAsymmetric) {
  EXPECT_THROW(eigen_symmetric(Matrix(2, 3)), InvalidArgument);
  auto bad = Matrix::from_rows({{1.0, 2.0}, {3.0, 1.0}});
  EXPECT_THROW(eigen_symmetric(bad), InvalidArgument);
}

}  // namespace
}  // namespace xdmodml
