// Round-trip tests for model serialization: standardizer, trees, forest,
// SVM, naive Bayes, and the full JobClassifier pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/job_classifier.hpp"
#include "ml/model_io.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/random_forest.hpp"
#include "ml/svm.hpp"
#include "ml/svm_plan.hpp"
#include "util/error.hpp"
#include "workload/dataset_helpers.hpp"
#include "workload/generator.hpp"

namespace xdmodml {
namespace {

using ml::Dataset;

Dataset blob_dataset(std::size_t per_class, std::uint64_t seed = 1) {
  Dataset ds;
  Rng rng(seed);
  ds.class_names = {"a", "b", "c"};
  for (int c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      ds.X.append_row(std::vector<double>{rng.normal(4.0 * c, 1.0),
                                          rng.normal(-2.0 * c, 1.0)});
      ds.labels.push_back(c);
    }
  }
  return ds;
}

TEST(ModelIo, TokenReaderValidates) {
  std::istringstream in("foo 1.5");
  ml::io::TokenReader reader(in);
  EXPECT_THROW(reader.expect("bar"), InvalidArgument);
  std::istringstream in2("x");
  ml::io::TokenReader reader2(in2);
  EXPECT_THROW(reader2.read_double("x"), InvalidArgument);  // truncated
}

TEST(ModelIo, VectorRoundTrip) {
  std::ostringstream out;
  const std::vector<double> values{1.5, -2.25, 1e-17, 3.0};
  ml::io::write_vector(out, "v", values);
  std::istringstream in(out.str());
  ml::io::TokenReader reader(in);
  EXPECT_EQ(reader.read_vector("v"), values);
}

TEST(ModelIo, StandardizerRoundTrip) {
  const auto ds = blob_dataset(20);
  ml::Standardizer s;
  s.fit(ds.X);
  std::ostringstream out;
  s.save(out);
  std::istringstream in(out.str());
  const auto loaded = ml::Standardizer::load(in);
  const auto a = s.transform(ds.X);
  const auto b = loaded.transform(ds.X);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      EXPECT_DOUBLE_EQ(a(r, c), b(r, c));
    }
  }
  ml::Standardizer unfitted;
  std::ostringstream dummy;
  EXPECT_THROW(unfitted.save(dummy), InvalidArgument);
}

TEST(ModelIo, ForestRoundTripPredictionsIdentical) {
  const auto ds = blob_dataset(50);
  ml::ForestConfig cfg;
  cfg.num_trees = 30;
  ml::RandomForestClassifier rf(cfg, 3);
  rf.fit(ds.X, ds.labels, 3);
  std::ostringstream out;
  rf.save(out);
  std::istringstream in(out.str());
  const auto loaded = ml::RandomForestClassifier::load(in);
  EXPECT_EQ(loaded.num_trees(), rf.num_trees());
  for (std::size_t r = 0; r < ds.X.rows(); ++r) {
    const auto pa = rf.predict_proba(ds.X.row(r));
    const auto pb = loaded.predict_proba(ds.X.row(r));
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t c = 0; c < pa.size(); ++c) {
      EXPECT_DOUBLE_EQ(pa[c], pb[c]);
    }
  }
  // OOB is a training-time artifact, not serialized.
  EXPECT_THROW(loaded.oob_error(), InvalidArgument);
}

TEST(ModelIo, SvmRoundTripPredictionsIdentical) {
  const auto ds = blob_dataset(30);
  ml::SvmConfig cfg;
  cfg.kernel = ml::Kernel::rbf(0.5);
  cfg.c = 10.0;
  cfg.probability = true;
  ml::SvmClassifier svm(cfg, 7);
  svm.fit(ds.X, ds.labels, 3);
  std::ostringstream out;
  svm.save(out);
  std::istringstream in(out.str());
  const auto loaded = ml::SvmClassifier::load(in);
  EXPECT_EQ(loaded.num_machines(), svm.num_machines());
  EXPECT_EQ(loaded.total_support_vectors(), svm.total_support_vectors());
  // v2 streams carry the SV provenance, so the reloaded compiled plan
  // rebuilds the same deduplicated pool the pre-save model had.
  const auto& plan = svm.inference_plan();
  const auto& reloaded_plan = loaded.inference_plan();
  EXPECT_EQ(reloaded_plan.unique_support_vectors(),
            plan.unique_support_vectors());
  EXPECT_EQ(reloaded_plan.provenance_keyed(), plan.provenance_keyed());
  for (std::size_t r = 0; r < ds.X.rows(); ++r) {
    const auto pa = svm.predict_proba(ds.X.row(r));
    const auto pb = loaded.predict_proba(ds.X.row(r));
    for (std::size_t c = 0; c < pa.size(); ++c) {
      EXPECT_NEAR(pa[c], pb[c], 1e-12);
    }
  }
}

TEST(ModelIo, NaiveBayesRoundTrip) {
  const auto ds = blob_dataset(30);
  ml::NaiveBayesClassifier nb;
  nb.fit(ds.X, ds.labels, 4);  // one class unseen -> -inf prior path
  std::ostringstream out;
  nb.save(out);
  std::istringstream in(out.str());
  const auto loaded = ml::NaiveBayesClassifier::load(in);
  for (std::size_t r = 0; r < ds.X.rows(); ++r) {
    const auto pa = nb.predict_proba(ds.X.row(r));
    const auto pb = loaded.predict_proba(ds.X.row(r));
    for (std::size_t c = 0; c < pa.size(); ++c) {
      EXPECT_DOUBLE_EQ(pa[c], pb[c]);
    }
  }
}

TEST(ModelIo, JobClassifierFullPipelineRoundTrip) {
  auto gen = workload::WorkloadGenerator::standard({}, 21);
  std::vector<workload::GeneratedJob> jobs;
  for (const auto& app : {"VASP", "NAMD", "PYTHON"}) {
    auto batch = gen.generate_for(app, 40);
    jobs.insert(jobs.end(), std::make_move_iterator(batch.begin()),
                std::make_move_iterator(batch.end()));
  }
  const auto schema = supremm::AttributeSchema::full();
  const auto train = workload::build_summary_dataset(
      jobs, schema, supremm::label_by_application());

  core::JobClassifierConfig cfg;
  cfg.algorithm = core::Algorithm::kRandomForest;
  cfg.forest.num_trees = 40;
  core::JobClassifier clf(cfg);
  clf.train(train);

  std::ostringstream out;
  clf.save(out);
  std::istringstream in(out.str());
  const auto loaded = core::JobClassifier::load(in);

  EXPECT_EQ(loaded.class_names(), clf.class_names());
  EXPECT_EQ(loaded.schema().names(), clf.schema().names());
  for (const auto& job : jobs) {
    const auto a = clf.predict(job.summary);
    const auto b = loaded.predict(job.summary);
    EXPECT_EQ(a.class_name, b.class_name);
    EXPECT_DOUBLE_EQ(a.probability, b.probability);
  }
}

TEST(ModelIo, JobClassifierSvmRoundTrip) {
  auto gen = workload::WorkloadGenerator::standard({}, 22);
  std::vector<workload::GeneratedJob> jobs;
  for (const auto& app : {"VASP", "GROMACS"}) {
    auto batch = gen.generate_for(app, 30);
    jobs.insert(jobs.end(), std::make_move_iterator(batch.begin()),
                std::make_move_iterator(batch.end()));
  }
  const auto schema = supremm::AttributeSchema::full();
  const auto train = workload::build_summary_dataset(
      jobs, schema, supremm::label_by_application());
  core::JobClassifierConfig cfg;
  cfg.algorithm = core::Algorithm::kSvm;
  core::JobClassifier clf(cfg);
  clf.train(train);
  std::ostringstream out;
  clf.save(out);
  std::istringstream in(out.str());
  const auto loaded = core::JobClassifier::load(in);
  for (const auto& job : jobs) {
    EXPECT_EQ(clf.predict(job.summary).class_name,
              loaded.predict(job.summary).class_name);
  }
}

TEST(ModelIo, ForestRegressorRoundTrip) {
  Rng rng(41);
  Matrix X;
  std::vector<double> y;
  for (int i = 0; i < 300; ++i) {
    const double a = rng.uniform(0.0, 5.0);
    X.append_row(std::vector<double>{a, rng.normal()});
    y.push_back(3.0 * a + rng.normal(0.0, 0.1));
  }
  ml::ForestConfig cfg;
  cfg.num_trees = 25;
  ml::RandomForestRegressor rf(cfg, 5);
  rf.fit(X, y);
  std::ostringstream out;
  rf.save(out);
  std::istringstream in(out.str());
  const auto loaded = ml::RandomForestRegressor::load(in);
  for (std::size_t r = 0; r < 50; ++r) {
    EXPECT_DOUBLE_EQ(loaded.predict(X.row(r)), rf.predict(X.row(r)));
  }
  EXPECT_THROW(loaded.oob_mse(), InvalidArgument);
}

TEST(ModelIo, SvrRoundTrip) {
  Rng rng(43);
  Matrix X;
  std::vector<double> y;
  for (int i = 0; i < 120; ++i) {
    const double a = rng.uniform(-2.0, 2.0);
    X.append_row(std::vector<double>{a});
    y.push_back(std::sin(a));
  }
  ml::SvmConfig cfg;
  cfg.kernel = ml::Kernel::rbf(1.0);
  cfg.c = 50.0;
  cfg.epsilon = 0.05;
  ml::SvmRegressor svr(cfg);
  svr.fit(X, y);
  std::ostringstream out;
  svr.save(out);
  std::istringstream in(out.str());
  const auto loaded = ml::SvmRegressor::load(in);
  EXPECT_EQ(loaded.num_support_vectors(), svr.num_support_vectors());
  for (double a = -1.5; a <= 1.5; a += 0.25) {
    EXPECT_DOUBLE_EQ(loaded.predict(std::vector<double>{a}),
                     svr.predict(std::vector<double>{a}));
  }
}

TEST(ModelIo, CorruptStreamsRejected) {
  std::istringstream garbage("not-a-model 42");
  EXPECT_THROW(ml::RandomForestClassifier::load(garbage), InvalidArgument);
  std::istringstream truncated("forest-v1 classes 3");
  EXPECT_THROW(ml::RandomForestClassifier::load(truncated),
               InvalidArgument);
  std::istringstream wrong_algo(
      "job-classifier-v1 algorithm quantum classes 1 class x");
  EXPECT_THROW(core::JobClassifier::load(wrong_algo), InvalidArgument);
}

}  // namespace
}  // namespace xdmodml
