// Tests for the dense row-major Matrix.
#include "util/matrix.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace xdmodml {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(Matrix, ConstructWithFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
  }
}

TEST(Matrix, ElementReadWrite) {
  Matrix m(2, 2);
  m(0, 1) = 3.0;
  m(1, 0) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 0), -2.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), InvalidArgument);
  EXPECT_THROW(m.at(0, 2), InvalidArgument);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(Matrix, RowSpanIsZeroCopy) {
  Matrix m(2, 3);
  auto row = m.row(1);
  row[2] = 9.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 9.0);
}

TEST(Matrix, FromRowsAndColumn) {
  const auto m = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  const auto col = m.column(1);
  EXPECT_EQ(col, (std::vector<double>{2.0, 4.0, 6.0}));
  EXPECT_THROW(m.column(2), InvalidArgument);
}

TEST(Matrix, AppendRowGrowsAndValidates) {
  Matrix m;
  m.append_row(std::vector<double>{1.0, 2.0});
  EXPECT_EQ(m.cols(), 2u);
  m.append_row(std::vector<double>{3.0, 4.0});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_THROW(m.append_row(std::vector<double>{1.0}), InvalidArgument);
}

TEST(Matrix, GatherRowsSelectsAndDuplicates) {
  const auto m = Matrix::from_rows({{1.0}, {2.0}, {3.0}});
  const std::vector<std::size_t> idx{2, 0, 2};
  const auto g = m.gather_rows(idx);
  EXPECT_EQ(g.rows(), 3u);
  EXPECT_DOUBLE_EQ(g(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(g(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(g(2, 0), 3.0);
  const std::vector<std::size_t> bad{5};
  EXPECT_THROW(m.gather_rows(bad), InvalidArgument);
}

TEST(Matrix, GatherColsReorders) {
  const auto m = Matrix::from_rows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  const std::vector<std::size_t> idx{2, 0};
  const auto g = m.gather_cols(idx);
  EXPECT_EQ(g.cols(), 2u);
  EXPECT_DOUBLE_EQ(g(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(g(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(g(1, 0), 6.0);
  const std::vector<std::size_t> bad{3};
  EXPECT_THROW(m.gather_cols(bad), InvalidArgument);
}

TEST(Matrix, GatherEmptyIndices) {
  const auto m = Matrix::from_rows({{1.0, 2.0}});
  const std::vector<std::size_t> none;
  EXPECT_EQ(m.gather_rows(none).rows(), 0u);
}

}  // namespace
}  // namespace xdmodml
