// Tests for the TACC_Stats collector simulator and job aggregation:
// counter rollover, prolog/epilog semantics, rate recovery, catastrophe
// and imbalance metrics, and time-feature extraction.
#include "taccstats/aggregator.hpp"
#include "taccstats/collector.hpp"
#include "taccstats/counters.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace xdmodml::taccstats {
namespace {

using supremm::MetricId;

/// A constant-rate model for known-answer tests.
NodeRateModel constant_model(double cpu_user, std::uint32_t cores,
                             double instr_rate, double cycles_rate,
                             double ib_mbps, double mem_gb) {
  return [=](std::size_t, std::size_t) {
    NodeInterval iv;
    iv.core_user_fraction.assign(cores, cpu_user);
    iv.system_fraction_of_rest = 0.5;
    iv.mem_used_gb = mem_gb;
    iv.rates[static_cast<std::size_t>(CounterId::kClockCycles)] = cycles_rate;
    iv.rates[static_cast<std::size_t>(CounterId::kInstructions)] = instr_rate;
    iv.rates[static_cast<std::size_t>(CounterId::kL1dLoads)] =
        cycles_rate / 4.0;
    iv.rates[static_cast<std::size_t>(CounterId::kIbRxBytes)] = ib_mbps * 1e6;
    iv.rates[static_cast<std::size_t>(CounterId::kIbTxBytes)] = ib_mbps * 1e6;
    return iv;
  };
}

CollectorConfig noiseless_config() {
  CollectorConfig cfg;
  cfg.counter_noise = 0.0;
  cfg.cores_per_node = 4;
  return cfg;
}

TEST(CounterDelta, NormalAndRollover) {
  EXPECT_EQ(counter_delta(CounterId::kIbRxBytes, 100, 250), 150u);
  // 32-bit ethernet counter rolls over.
  const std::uint64_t modulus = std::uint64_t{1} << 32;
  EXPECT_EQ(counter_delta(CounterId::kEthTxBytes, modulus - 10, 20), 30u);
  // 64-bit counters must not decrease.
  EXPECT_THROW(counter_delta(CounterId::kIbRxBytes, 200, 100),
               InvalidArgument);
  // Width violations are rejected.
  EXPECT_THROW(counter_delta(CounterId::kEthTxBytes, modulus + 5, 1),
               InvalidArgument);
}

TEST(Collector, PrologCronEpilogSampleCount) {
  Rng rng(1);
  const auto cfg = noiseless_config();
  // 25 minutes at a 10-minute interval: prolog + 600 + 1200 + 1500(end).
  const auto samples = collect_node(constant_model(0.9, 4, 1e9, 2e9, 10, 4),
                                    0, 1500.0, cfg, rng);
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_DOUBLE_EQ(samples.front().timestamp, 0.0);
  EXPECT_DOUBLE_EQ(samples[1].timestamp, 600.0);
  EXPECT_DOUBLE_EQ(samples.back().timestamp, 1500.0);
}

TEST(Collector, CountersAreMonotoneModuloWidth) {
  Rng rng(2);
  const auto cfg = noiseless_config();
  const auto samples = collect_node(constant_model(0.5, 4, 1e9, 2e9, 50, 4),
                                    0, 3600.0, cfg, rng);
  for (std::size_t c = 0; c < kNumCounters; ++c) {
    const auto id = static_cast<CounterId>(c);
    if (counter_bits(id) < 64) continue;  // may wrap legitimately
    for (std::size_t s = 1; s < samples.size(); ++s) {
      EXPECT_GE(samples[s].counters[c], samples[s - 1].counters[c]);
    }
  }
}

TEST(Collector, RejectsBadArguments) {
  Rng rng(3);
  const auto cfg = noiseless_config();
  EXPECT_THROW(collect_node(nullptr, 0, 100.0, cfg, rng), InvalidArgument);
  EXPECT_THROW(
      collect_node(constant_model(0.5, 4, 1e9, 2e9, 1, 1), 0, 0.0, cfg, rng),
      InvalidArgument);
  // Core-count mismatch between model and config must be caught.
  auto bad_cfg = cfg;
  bad_cfg.cores_per_node = 8;
  EXPECT_THROW(collect_node(constant_model(0.5, 4, 1e9, 2e9, 1, 1), 0,
                            1000.0, bad_cfg, rng),
               InvalidArgument);
}

TEST(Aggregator, RecoversKnownRates) {
  Rng rng(4);
  const auto cfg = noiseless_config();
  const double instr_rate = 2.0e9;
  const double cycles_rate = 3.0e9;
  std::vector<std::vector<RawSample>> streams;
  streams.push_back(collect_node(
      constant_model(0.8, 4, instr_rate, cycles_rate, 25.0, 6.0), 0, 3000.0,
      cfg, rng));
  const auto result = aggregate_job(streams, cfg);
  const auto& job = result.job;
  // CPI = cycles/instructions.
  EXPECT_NEAR(job.mean_of(MetricId::kCpi), 1.5, 0.02);
  // CPLD = cycles / (cycles/4) = 4.
  EXPECT_NEAR(job.mean_of(MetricId::kCpld), 4.0, 0.05);
  // IB rate round-trips in MB/s.
  EXPECT_NEAR(job.mean_of(MetricId::kIbReceive), 25.0, 0.5);
  // Memory gauge.
  EXPECT_NEAR(job.mean_of(MetricId::kMemUsed), 6.0, 0.1);
  // CPU user 0.8; the rest splits 50/50 kernel/idle.
  EXPECT_NEAR(job.mean_of(MetricId::kCpuUser), 0.8, 0.02);
  EXPECT_NEAR(job.mean_of(MetricId::kCpuSystem), 0.1, 0.02);
  EXPECT_NEAR(job.mean_of(MetricId::kCpuIdle), 0.1, 0.02);
  // Steady activity: no catastrophe, no imbalance.
  EXPECT_GT(job.mean_of(MetricId::kCatastrophe), 0.9);
  EXPECT_NEAR(job.mean_of(MetricId::kCpuUserImbalance), 0.0, 0.1);
  EXPECT_EQ(job.nodes, 1u);
}

TEST(Aggregator, EthernetRolloverHandledInRates) {
  // Run long enough at a high ethernet rate that the 32-bit counter wraps
  // several times per interval would be ambiguous — but once per interval
  // must be recovered exactly.
  Rng rng(5);
  auto cfg = noiseless_config();
  cfg.interval_seconds = 400.0;
  const double eth_rate = 8e6;  // 8 MB/s -> 3.2e9 per interval < 2^32
  NodeRateModel model = [&](std::size_t, std::size_t) {
    NodeInterval iv;
    iv.core_user_fraction.assign(4, 0.5);
    iv.mem_used_gb = 1.0;
    iv.rates[static_cast<std::size_t>(CounterId::kEthTxBytes)] = eth_rate;
    iv.rates[static_cast<std::size_t>(CounterId::kInstructions)] = 1e9;
    iv.rates[static_cast<std::size_t>(CounterId::kClockCycles)] = 1e9;
    iv.rates[static_cast<std::size_t>(CounterId::kL1dLoads)] = 1e9;
    return iv;
  };
  // Whole-job delta (first->last) would alias for long jobs; aggregation
  // uses the same rollover-corrected diff, so verify per-interval rates.
  std::vector<std::vector<RawSample>> streams;
  streams.push_back(collect_node(model, 0, 1200.0, cfg, rng));
  const auto result = aggregate_job(streams, cfg);
  const auto& series = result.time_series[0];
  const auto eth = static_cast<std::size_t>(CounterId::kEthTxBytes);
  for (std::size_t i = 0; i < series.midpoints.size(); ++i) {
    EXPECT_NEAR(series.interval_rates(i, eth), eth_rate, eth_rate * 0.01);
  }
}

TEST(Aggregator, CatastropheDetectsActivityCollapse) {
  Rng rng(6);
  const auto cfg = noiseless_config();
  // Full activity for 3 intervals, then the CPU goes quiet.
  NodeRateModel model = [](std::size_t, std::size_t interval) {
    NodeInterval iv;
    const double factor = interval < 3 ? 1.0 : 0.02;
    iv.core_user_fraction.assign(4, 0.9 * factor);
    iv.mem_used_gb = 2.0;
    iv.rates[static_cast<std::size_t>(CounterId::kInstructions)] =
        2e9 * factor;
    iv.rates[static_cast<std::size_t>(CounterId::kClockCycles)] =
        2e9 * factor;
    iv.rates[static_cast<std::size_t>(CounterId::kL1dLoads)] = 1e9 * factor;
    return iv;
  };
  std::vector<std::vector<RawSample>> streams;
  streams.push_back(collect_node(model, 0, 6 * 600.0, cfg, rng));
  const auto result = aggregate_job(streams, cfg);
  EXPECT_LT(result.job.mean_of(MetricId::kCatastrophe), 0.1);
}

TEST(Aggregator, ImbalanceDetectsIdleCores) {
  Rng rng(7);
  const auto cfg = noiseless_config();
  // Half the cores busy, half idle.
  NodeRateModel model = [](std::size_t, std::size_t) {
    NodeInterval iv;
    iv.core_user_fraction = {0.95, 0.95, 0.02, 0.02};
    iv.mem_used_gb = 2.0;
    iv.rates[static_cast<std::size_t>(CounterId::kInstructions)] = 1e9;
    iv.rates[static_cast<std::size_t>(CounterId::kClockCycles)] = 1e9;
    iv.rates[static_cast<std::size_t>(CounterId::kL1dLoads)] = 1e9;
    return iv;
  };
  std::vector<std::vector<RawSample>> streams;
  streams.push_back(collect_node(model, 0, 1800.0, cfg, rng));
  const auto result = aggregate_job(streams, cfg);
  // (max - min)/mean = (0.95 - 0.02)/0.485 ≈ 1.9.
  EXPECT_GT(result.job.mean_of(MetricId::kCpuUserImbalance), 1.5);
}

TEST(Aggregator, MultiNodeCovReflectsNodeVariation) {
  Rng rng(8);
  const auto cfg = noiseless_config();
  NodeRateModel model = [](std::size_t node, std::size_t) {
    NodeInterval iv;
    iv.core_user_fraction.assign(4, 0.9);
    iv.mem_used_gb = node == 0 ? 2.0 : 6.0;  // uneven memory
    iv.rates[static_cast<std::size_t>(CounterId::kInstructions)] = 1e9;
    iv.rates[static_cast<std::size_t>(CounterId::kClockCycles)] = 1e9;
    iv.rates[static_cast<std::size_t>(CounterId::kL1dLoads)] = 1e9;
    return iv;
  };
  std::vector<std::vector<RawSample>> streams;
  for (std::size_t n = 0; n < 2; ++n) {
    streams.push_back(collect_node(model, n, 1800.0, cfg, rng));
  }
  const auto result = aggregate_job(streams, cfg);
  EXPECT_EQ(result.job.nodes, 2u);
  EXPECT_GT(result.job.cov_of(MetricId::kMemUsed), 0.4);
  EXPECT_LT(result.job.cov_of(MetricId::kCpuUser), 0.05);
}

TEST(Aggregator, RejectsEmptyAndShortStreams) {
  const auto cfg = noiseless_config();
  EXPECT_THROW(aggregate_job({}, cfg), InvalidArgument);
  std::vector<std::vector<RawSample>> streams{{RawSample{}}};
  EXPECT_THROW(aggregate_job(streams, cfg), InvalidArgument);
}

TEST(TimeFeatures, NamesMatchWidth) {
  TimeFeatureConfig tf;
  tf.segments = 4;
  // (7 derived metrics + memory gauge) x 4 segments
  // + 6 shape counters x 3 statistics.
  EXPECT_EQ(time_feature_names(tf).size(), 50u);
  TimeFeatureConfig raw_only;
  raw_only.include_shape_stats = false;
  EXPECT_EQ(time_feature_names(raw_only).size(), 32u);
  TimeFeatureConfig shape_only;
  shape_only.include_raw_segments = false;
  EXPECT_EQ(time_feature_names(shape_only).size(), 18u);
}

TEST(TimeFeatures, DistinguishFrontLoadedFromSteady) {
  Rng rng(9);
  auto cfg = noiseless_config();
  cfg.interval_seconds = 300.0;
  const auto steady = constant_model(0.9, 4, 2e9, 2e9, 10.0, 2.0);
  NodeRateModel front = [](std::size_t, std::size_t interval) {
    NodeInterval iv;
    iv.core_user_fraction.assign(4, 0.9);
    iv.mem_used_gb = 2.0;
    const double factor = interval < 2 ? 3.0 : 0.5;
    iv.rates[static_cast<std::size_t>(CounterId::kInstructions)] =
        2e9 * factor;
    iv.rates[static_cast<std::size_t>(CounterId::kClockCycles)] = 2e9;
    iv.rates[static_cast<std::size_t>(CounterId::kL1dLoads)] = 1e9;
    return iv;
  };
  TimeFeatureConfig tf;
  auto run = [&](const NodeRateModel& model) {
    std::vector<std::vector<RawSample>> streams;
    streams.push_back(collect_node(model, 0, 8 * 300.0, cfg, rng));
    return extract_time_features(aggregate_job(streams, cfg), tf);
  };
  const auto f_steady = run(steady);
  const auto f_front = run(front);
  // Layout: 7 derived metrics x 4 segments, then 3 shape triples
  // (instructions first: tcov, burst, trend at 28..30).
  const std::size_t tcov = 32;
  const std::size_t burst = 33;
  const std::size_t trend = 34;
  EXPECT_NEAR(f_steady[tcov], 0.0, 0.05);   // steady: no variation
  EXPECT_NEAR(f_steady[burst], 1.0, 0.05);  // steady: max == mean
  EXPECT_NEAR(f_steady[trend], 1.0, 0.05);  // steady: flat
  EXPECT_GT(f_front[tcov], 0.5);            // front-loaded: bursty
  EXPECT_GT(f_front[burst], 1.5);
  EXPECT_LT(f_front[trend], 0.5);           // activity collapses
  // CPI in segment 0: the front-loaded job retires 3x the instructions
  // on the same cycle budget, so its segment-0 CPI is far lower.
  EXPECT_LT(f_front[0], 0.6 * f_steady[0]);
}

}  // namespace
}  // namespace xdmodml::taccstats
