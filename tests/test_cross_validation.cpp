// Tests for k-fold cross-validation and the SVM grid search.
#include "ml/cross_validation.hpp"

#include <gtest/gtest.h>

#include <set>

#include "ml/naive_bayes.hpp"
#include "ml/random_forest.hpp"
#include "util/error.hpp"

namespace xdmodml::ml {
namespace {

Dataset make_blobs(std::size_t per_class, double separation,
                   std::uint64_t seed = 1) {
  Dataset ds;
  Rng rng(seed);
  ds.class_names = {"a", "b", "c"};
  for (int c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      ds.X.append_row(std::vector<double>{
          rng.normal(separation * c, 1.0),
          rng.normal(separation * (c % 2), 1.0)});
      ds.labels.push_back(c);
    }
  }
  ds.feature_names = {"x", "y"};
  return ds;
}

TEST(StratifiedFolds, BalancedAssignment) {
  Rng rng(2);
  std::vector<int> labels;
  for (int i = 0; i < 90; ++i) labels.push_back(i % 3);
  const auto folds = stratified_folds(labels, 5, rng);
  ASSERT_EQ(folds.size(), labels.size());
  // Each fold gets 18 rows, 6 of each class.
  std::vector<std::vector<int>> class_counts(5, std::vector<int>(3, 0));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    EXPECT_LT(folds[i], 5u);
    ++class_counts[folds[i]][labels[i]];
  }
  for (const auto& counts : class_counts) {
    for (const int c : counts) EXPECT_EQ(c, 6);
  }
}

TEST(StratifiedFolds, RejectsBadInputs) {
  Rng rng(3);
  const std::vector<int> labels{0, 1};
  EXPECT_THROW(stratified_folds(labels, 1, rng), InvalidArgument);
  EXPECT_THROW(stratified_folds({}, 3, rng), InvalidArgument);
}

TEST(CrossValidate, SeparableDataScoresHigh) {
  const auto ds = make_blobs(60, 8.0);
  const auto result = cross_validate(
      ds,
      [] {
        ForestConfig cfg;
        cfg.num_trees = 40;
        return std::make_unique<RandomForestClassifier>(cfg);
      },
      4);
  EXPECT_EQ(result.fold_accuracies.size(), 4u);
  EXPECT_GT(result.mean_accuracy, 0.95);
  EXPECT_LT(result.stddev_accuracy, 0.1);
}

TEST(CrossValidate, OverlappingDataScoresLower) {
  const auto separable = make_blobs(60, 8.0);
  const auto overlapping = make_blobs(60, 0.8);
  auto factory = [] {
    return std::make_unique<NaiveBayesClassifier>();
  };
  const auto good = cross_validate(separable, factory, 3);
  const auto bad = cross_validate(overlapping, factory, 3);
  EXPECT_GT(good.mean_accuracy, bad.mean_accuracy + 0.2);
}

TEST(CrossValidate, DeterministicForSeed) {
  const auto ds = make_blobs(40, 4.0);
  auto factory = [] {
    ForestConfig cfg;
    cfg.num_trees = 20;
    return std::make_unique<RandomForestClassifier>(cfg, 5);
  };
  const auto a = cross_validate(ds, factory, 3, 9);
  const auto b = cross_validate(ds, factory, 3, 9);
  EXPECT_EQ(a.fold_accuracies, b.fold_accuracies);
}

TEST(CrossValidate, RejectsUnlabeledAndMissingFactory) {
  Dataset ds = make_blobs(10, 4.0);
  EXPECT_THROW(cross_validate(ds, nullptr, 3), InvalidArgument);
  ds.labels.clear();
  EXPECT_THROW(cross_validate(ds,
                              [] {
                                return std::make_unique<
                                    NaiveBayesClassifier>();
                              },
                              3),
               InvalidArgument);
}

TEST(GridSearch, FindsWorkingRegion) {
  const auto ds = make_blobs(40, 5.0);
  const std::vector<double> gammas{0.001, 0.1, 10.0};
  const std::vector<double> cs{1.0, 100.0};
  const auto points = svm_grid_search(ds, gammas, cs, 3, 4);
  ASSERT_EQ(points.size(), 6u);
  // Sorted best-first.
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i - 1].cv_accuracy, points[i].cv_accuracy);
  }
  EXPECT_GT(points.front().cv_accuracy, 0.9);
  // γ = 10 on standardized 2-D blobs is pathologically local: it cannot
  // be the best cell.
  EXPECT_NE(points.front().gamma, 10.0);
}

TEST(GridSearch, RejectsEmptyGrid) {
  const auto ds = make_blobs(10, 5.0);
  EXPECT_THROW(svm_grid_search(ds, {}, std::vector<double>{1.0}),
               InvalidArgument);
}

}  // namespace
}  // namespace xdmodml::ml
