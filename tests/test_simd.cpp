// SIMD microkernel layer: dispatch plumbing, the vectorized exp's
// accuracy contract (ULP-bounded vs std::exp, exact underflow-to-zero,
// NaN/Inf propagation), and SIMD-vs-scalar equivalence of every kernel
// row path — including remainder lanes when sizes are not multiples of
// the vector width.
//
// AVX2-specific tests GTEST_SKIP on builds/CPUs without the AVX2 table,
// so the suite is green under XDMODML_SIMD=OFF and on non-x86 hosts.
#include "util/simd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "ml/kernel.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace xdmodml {
namespace {

// Distance between two finite same-sign doubles in units in the last
// place: consecutive positive doubles have consecutive bit patterns.
std::uint64_t ulp_distance(double a, double b) {
  const auto ia = std::bit_cast<std::int64_t>(a);
  const auto ib = std::bit_cast<std::int64_t>(b);
  return static_cast<std::uint64_t>(ia > ib ? ia - ib : ib - ia);
}

// Restores the startup ISA after each test so forcing scalar/AVX2 here
// cannot leak into other tests in the binary.
class SimdTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = simd::active(); }
  void TearDown() override { simd::set_active(saved_); }

  static bool avx2() { return simd::available(simd::Isa::kAvx2); }

  simd::Isa saved_ = simd::Isa::kScalar;
};

TEST_F(SimdTest, DispatchPlumbing) {
  EXPECT_TRUE(simd::available(simd::Isa::kScalar));
  ASSERT_TRUE(simd::set_active(simd::Isa::kScalar));
  EXPECT_EQ(simd::active(), simd::Isa::kScalar);
  EXPECT_EQ(simd::isa_name(simd::Isa::kScalar), "scalar");
  EXPECT_EQ(simd::isa_name(simd::Isa::kAvx2), "avx2");
  EXPECT_EQ(simd::isa_from_string("scalar"), simd::Isa::kScalar);
  EXPECT_EQ(simd::isa_from_string("avx2"), simd::Isa::kAvx2);
  EXPECT_EQ(simd::isa_from_string("auto"), std::nullopt);
  EXPECT_EQ(simd::isa_from_string("sse9"), std::nullopt);
  // detect_best is what auto resolves to and must itself be available.
  EXPECT_TRUE(simd::available(simd::detect_best()));
  if (avx2()) {
    ASSERT_TRUE(simd::set_active(simd::Isa::kAvx2));
    EXPECT_EQ(simd::active(), simd::Isa::kAvx2);
  }
}

TEST_F(SimdTest, ScalarExpMatchesStdExp) {
  ASSERT_TRUE(simd::set_active(simd::Isa::kScalar));
  std::vector<double> xs{-5.0, -0.5, 0.0, 1.0, 3.25};
  auto expected = xs;
  for (auto& v : expected) v = std::exp(v);
  simd::exp_inplace(xs.data(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_DOUBLE_EQ(xs[i], expected[i]);
  }
}

// ULP sweep over the primary domain [-708.39, 709]: dense deterministic
// grid plus uniform random draws, with extra density on the RBF band
// (-50, 0] the SVM actually hits.
TEST_F(SimdTest, VectorExpUlpBoundOverFullDomain) {
  if (!avx2()) GTEST_SKIP() << "AVX2 table unavailable";
  ASSERT_TRUE(simd::set_active(simd::Isa::kAvx2));
  std::vector<double> xs;
  constexpr std::size_t kGrid = 200000;
  constexpr double kLo = -708.39;
  constexpr double kHi = 709.0;
  xs.reserve(kGrid + 120000);
  for (std::size_t i = 0; i < kGrid; ++i) {
    xs.push_back(kLo + (kHi - kLo) * static_cast<double>(i) /
                          static_cast<double>(kGrid - 1));
  }
  Rng rng(20260808);
  for (std::size_t i = 0; i < 80000; ++i) xs.push_back(rng.uniform(kLo, kHi));
  for (std::size_t i = 0; i < 40000; ++i) xs.push_back(rng.uniform(-50.0, 0.0));

  auto got = xs;
  simd::exp_inplace(got.data(), got.size());
  std::uint64_t max_ulp = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double expected = std::exp(xs[i]);
    const std::uint64_t ulp = ulp_distance(got[i], expected);
    ASSERT_LE(ulp, 4u) << "x=" << xs[i] << " got=" << got[i]
                       << " expected=" << expected;
    max_ulp = std::max(max_ulp, ulp);
  }
  // The Cephes polynomial is good to ~2 ULP; a regression past 4 means
  // the range reduction or the 2^n scaling broke.
  EXPECT_LE(max_ulp, 4u);
}

TEST_F(SimdTest, VectorExpUnderflowsToExactZero) {
  if (!avx2()) GTEST_SKIP() << "AVX2 table unavailable";
  ASSERT_TRUE(simd::set_active(simd::Isa::kAvx2));
  std::vector<double> xs{-708.4, -709.0, -745.0, -1.0e5, -1.0e300,
                         -std::numeric_limits<double>::infinity()};
  simd::exp_inplace(xs.data(), xs.size());
  for (const double v : xs) {
    EXPECT_EQ(v, 0.0);
    EXPECT_FALSE(std::signbit(v)) << "underflow must be +0";
  }
}

TEST_F(SimdTest, VectorExpSpecialValues) {
  if (!avx2()) GTEST_SKIP() << "AVX2 table unavailable";
  ASSERT_TRUE(simd::set_active(simd::Isa::kAvx2));
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> xs{std::numeric_limits<double>::quiet_NaN(),
                         inf,
                         0.0,
                         -0.0,
                         710.0,
                         1.0e300};
  simd::exp_inplace(xs.data(), xs.size());
  EXPECT_TRUE(std::isnan(xs[0]));
  EXPECT_EQ(xs[1], inf);
  EXPECT_EQ(xs[2], 1.0);
  EXPECT_EQ(xs[3], 1.0);
  EXPECT_EQ(xs[4], inf);  // saturates above the 709.0 contract bound
  EXPECT_EQ(xs[5], inf);
}

// Remainder-lane handling: every length 1..2·kMaxLanes+3 must agree
// with std::exp, not just multiples of the vector width.
TEST_F(SimdTest, VectorExpRemainderLanes) {
  if (!avx2()) GTEST_SKIP() << "AVX2 table unavailable";
  ASSERT_TRUE(simd::set_active(simd::Isa::kAvx2));
  Rng rng(7);
  for (std::size_t n = 1; n <= 2 * simd::kMaxLanes + 3; ++n) {
    std::vector<double> xs(n);
    for (auto& v : xs) v = rng.uniform(-40.0, 2.0);
    auto got = xs;
    simd::exp_inplace(got.data(), got.size());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_LE(ulp_distance(got[i], std::exp(xs[i])), 4u)
          << "n=" << n << " lane " << i;
    }
  }
}

TEST_F(SimdTest, DotAndNormMatchScalarAcrossLengths) {
  if (!avx2()) GTEST_SKIP() << "AVX2 table unavailable";
  Rng rng(31);
  for (std::size_t n = 1; n <= 67; ++n) {
    std::vector<double> a(n);
    std::vector<double> b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = rng.normal(0.0, 2.0);
      b[i] = rng.normal(0.0, 2.0);
    }
    ASSERT_TRUE(simd::set_active(simd::Isa::kScalar));
    const double dot_s = simd::dot(a.data(), b.data(), n);
    const double norm_s = simd::squared_norm(a.data(), n);
    ASSERT_TRUE(simd::set_active(simd::Isa::kAvx2));
    EXPECT_NEAR(simd::dot(a.data(), b.data(), n), dot_s, 1e-12) << "n=" << n;
    EXPECT_NEAR(simd::squared_norm(a.data(), n), norm_s, 1e-12) << "n=" << n;
  }
}

TEST_F(SimdTest, DotRowsMatchesPerRowDot) {
  if (!avx2()) GTEST_SKIP() << "AVX2 table unavailable";
  Rng rng(17);
  // 11 rows of width 13: a 3-row block remainder and a 5-lane column
  // remainder in one shot.
  const std::size_t d = 13;
  const std::size_t n_rows = 11;
  std::vector<double> rows(n_rows * d);
  std::vector<double> x(d);
  for (auto& v : rows) v = rng.normal(0.0, 2.0);
  for (auto& v : x) v = rng.normal(0.0, 2.0);
  ASSERT_TRUE(simd::set_active(simd::Isa::kScalar));
  std::vector<double> expected(n_rows);
  simd::dot_rows(x.data(), rows.data(), d, n_rows, expected.data());
  for (std::size_t j = 0; j < n_rows; ++j) {
    EXPECT_DOUBLE_EQ(expected[j], simd::dot(x.data(), rows.data() + j * d, d));
  }
  ASSERT_TRUE(simd::set_active(simd::Isa::kAvx2));
  std::vector<double> got(n_rows);
  simd::dot_rows(x.data(), rows.data(), d, n_rows, got.data());
  for (std::size_t j = 0; j < n_rows; ++j) {
    EXPECT_NEAR(got[j], expected[j], 1e-12) << "row " << j;
  }
}

TEST_F(SimdTest, RowSquaredNormsIsaIndependent) {
  if (!avx2()) GTEST_SKIP() << "AVX2 table unavailable";
  Rng rng(13);
  Matrix X;
  for (int i = 0; i < 9; ++i) {  // 9 rows x 13 cols: remainders everywhere
    std::vector<double> row(13);
    for (auto& v : row) v = rng.normal(0.0, 3.0);
    X.append_row(row);
  }
  ASSERT_TRUE(simd::set_active(simd::Isa::kScalar));
  const auto scalar = X.row_squared_norms();
  ASSERT_TRUE(simd::set_active(simd::Isa::kAvx2));
  const auto vec = X.row_squared_norms();
  ASSERT_EQ(scalar.size(), vec.size());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_NEAR(vec[i], scalar[i], 1e-12) << "row " << i;
  }
}

TEST_F(SimdTest, PolyPowiTransformLaneExactAgainstScalar) {
  if (!avx2()) GTEST_SKIP() << "AVX2 table unavailable";
  Rng rng(41);
  // 11 dots: two full vectors plus a 3-lane remainder.
  std::vector<double> dots(11);
  for (auto& v : dots) v = rng.uniform(-2.0, 2.0);
  auto scalar = dots;
  auto vec = dots;
  ASSERT_TRUE(simd::set_active(simd::Isa::kScalar));
  simd::poly_row_transform_powi(scalar.data(), scalar.size(), 0.5, 1.0, 3);
  ASSERT_TRUE(simd::set_active(simd::Isa::kAvx2));
  simd::poly_row_transform_powi(vec.data(), vec.size(), 0.5, 1.0, 3);
  for (std::size_t i = 0; i < dots.size(); ++i) {
    // Same base arithmetic and the same squaring order as simd::powi —
    // vector lanes reproduce the scalar path to the last bit.
    EXPECT_DOUBLE_EQ(vec[i], scalar[i]) << "lane " << i;
  }
}

TEST_F(SimdTest, ClampedSqDistFloorsRoundOff) {
  // Identical vectors: expansion can round below zero; the shared helper
  // must floor at exactly 0 so exp(−γ·d²) stays exactly 1.
  EXPECT_EQ(simd::clamped_sq_dist(2.0, 2.0, 2.0 + 1e-16), 0.0);
  EXPECT_EQ(simd::clamped_sq_dist(25.0, 1.0, 2.0), 25.0 + 1.0 - 4.0);
}

// 1e-12, relative for kernel values above 1 (the AVX2 dot reduction
// orders partial sums differently, so big polynomial values agree to
// ULPs rather than an absolute 1e-12).
double row_tolerance(double expected) {
  return 1e-12 * std::max(1.0, std::abs(expected));
}

// The property the SMO solver rests on: fill_range output must be
// ISA-independent to 1e-12 (relative above 1) for every kernel family,
// with sizes chosen so both the dot sweep (cols % 8 != 0) and the
// transform pass (rows % kMaxLanes != 0) exercise remainder lanes.
TEST_F(SimdTest, GramRowsAgreeAcrossIsasAllKernels) {
  if (!avx2()) GTEST_SKIP() << "AVX2 table unavailable";
  Rng rng(99);
  Matrix X;
  for (int i = 0; i < 37; ++i) {
    std::vector<double> row(13);
    for (auto& v : row) v = rng.normal(0.0, 2.0);
    X.append_row(row);
  }
  X.append_row(X.row(5));  // duplicate row → clamped d² = 0 case

  const std::vector<ml::Kernel> kernels{
      ml::Kernel::linear(), ml::Kernel::rbf(0.1),
      ml::Kernel::polynomial(3.0, 0.5, 1.0),
      ml::Kernel::polynomial(2.5, 0.1, 30.0)};
  const std::vector<double> probe(13, 0.25);
  for (const auto& kernel : kernels) {
    const ml::GramRowEngine engine(X, kernel);
    std::vector<double> scalar_row(X.rows());
    std::vector<double> vec_row(X.rows());
    for (std::size_t i = 0; i < X.rows(); ++i) {
      ASSERT_TRUE(simd::set_active(simd::Isa::kScalar));
      engine.fill_row(i, scalar_row);
      ASSERT_TRUE(simd::set_active(simd::Isa::kAvx2));
      engine.fill_row(i, vec_row);
      for (std::size_t j = 0; j < X.rows(); ++j) {
        ASSERT_NEAR(vec_row[j], scalar_row[j], row_tolerance(scalar_row[j]))
            << kernel.name() << " row " << i << " col " << j;
      }
    }
    ASSERT_TRUE(simd::set_active(simd::Isa::kScalar));
    engine.fill_row_for(probe, scalar_row);
    ASSERT_TRUE(simd::set_active(simd::Isa::kAvx2));
    engine.fill_row_for(probe, vec_row);
    for (std::size_t j = 0; j < X.rows(); ++j) {
      ASSERT_NEAR(vec_row[j], scalar_row[j], row_tolerance(scalar_row[j]))
          << kernel.name() << " probe col " << j;
    }
  }
}

}  // namespace
}  // namespace xdmodml
