// Tests for the SVM family: binary C-SVC, Platt scaling, pairwise
// coupling, one-vs-one multiclass, and ε-SVR.
#include "ml/svm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "ml/dataset.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace xdmodml::ml {
namespace {

SvmConfig fast_config() {
  SvmConfig cfg;
  cfg.kernel = Kernel::rbf(0.5);
  cfg.c = 10.0;
  cfg.probability = false;
  return cfg;
}

void make_blobs(std::size_t per_class, std::size_t classes, Matrix& X,
                std::vector<int>& y, double sep = 4.0,
                std::uint64_t seed = 1) {
  Rng rng(seed);
  for (std::size_t c = 0; c < classes; ++c) {
    const double cx = sep * static_cast<double>(c);
    const double cy = sep * static_cast<double>(c % 2);
    for (std::size_t i = 0; i < per_class; ++i) {
      X.append_row(std::vector<double>{rng.normal(cx, 0.8),
                                       rng.normal(cy, 0.8)});
      y.push_back(static_cast<int>(c));
    }
  }
}

TEST(PlattSigmoid, MonotoneAndBounded) {
  // Well-separated decision values -> steep but finite sigmoid.
  std::vector<double> decisions;
  std::vector<signed char> labels;
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const bool pos = i % 2 == 0;
    decisions.push_back(rng.normal(pos ? 2.0 : -2.0, 0.7));
    labels.push_back(pos ? 1 : -1);
  }
  const auto sigmoid = fit_platt_sigmoid(decisions, labels);
  EXPECT_GT(sigmoid.probability(3.0), 0.9);
  EXPECT_LT(sigmoid.probability(-3.0), 0.1);
  EXPECT_GT(sigmoid.probability(1.0), sigmoid.probability(0.0));
  for (double f = -5.0; f <= 5.0; f += 0.5) {
    const double p = sigmoid.probability(f);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(PlattSigmoid, HandlesOverlappingClasses) {
  // Heavy overlap -> shallow sigmoid near 0.5 at f = 0.
  std::vector<double> decisions;
  std::vector<signed char> labels;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const bool pos = i % 2 == 0;
    decisions.push_back(rng.normal(pos ? 0.3 : -0.3, 1.5));
    labels.push_back(pos ? 1 : -1);
  }
  const auto sigmoid = fit_platt_sigmoid(decisions, labels);
  EXPECT_NEAR(sigmoid.probability(0.0), 0.5, 0.1);
}

TEST(PlattSigmoid, RejectsEmptyInput) {
  EXPECT_THROW(fit_platt_sigmoid({}, {}), InvalidArgument);
}

TEST(PairwiseCoupling, RecoverUnanimousWinner) {
  // Class 1 beats everyone with probability 0.9.
  Matrix pairwise(3, 3, 0.0);
  const double p = 0.9;
  pairwise(1, 0) = p;
  pairwise(0, 1) = 1 - p;
  pairwise(1, 2) = p;
  pairwise(2, 1) = 1 - p;
  pairwise(0, 2) = 0.5;
  pairwise(2, 0) = 0.5;
  const auto probs = couple_pairwise_probabilities(pairwise);
  ASSERT_EQ(probs.size(), 3u);
  EXPECT_GT(probs[1], probs[0]);
  EXPECT_GT(probs[1], probs[2]);
  double total = 0.0;
  for (const auto v : probs) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PairwiseCoupling, UniformInputGivesUniformOutput) {
  Matrix pairwise(4, 4, 0.5);
  const auto probs = couple_pairwise_probabilities(pairwise);
  for (const auto v : probs) EXPECT_NEAR(v, 0.25, 1e-6);
}

TEST(PairwiseCoupling, SingleClass) {
  Matrix pairwise(1, 1, 0.0);
  const auto probs = couple_pairwise_probabilities(pairwise);
  ASSERT_EQ(probs.size(), 1u);
  EXPECT_DOUBLE_EQ(probs[0], 1.0);
}

TEST(BinarySvm, SeparatesBlobs) {
  Matrix X;
  std::vector<int> yi;
  make_blobs(60, 2, X, yi);
  std::vector<signed char> y;
  for (const auto v : yi) y.push_back(v == 0 ? 1 : -1);
  BinarySvm svm;
  svm.fit(X, y, fast_config());
  EXPECT_GT(svm.num_support_vectors(), 0u);
  EXPECT_LT(svm.num_support_vectors(), X.rows());
  std::size_t correct = 0;
  for (std::size_t r = 0; r < X.rows(); ++r) {
    const double f = svm.decision_value(X.row(r));
    if ((f > 0.0) == (y[r] > 0)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(X.rows()),
            0.97);
}

TEST(BinarySvm, ProbabilityCalibrated) {
  Matrix X;
  std::vector<int> yi;
  make_blobs(80, 2, X, yi, 5.0);
  std::vector<signed char> y;
  for (const auto v : yi) y.push_back(v == 0 ? 1 : -1);
  auto cfg = fast_config();
  cfg.probability = true;
  BinarySvm svm;
  svm.fit(X, y, cfg);
  ASSERT_TRUE(svm.has_probability());
  // Deep inside the positive blob -> high probability; negative blob -> low.
  EXPECT_GT(svm.probability_positive(std::vector<double>{0.0, 0.0}), 0.8);
  EXPECT_LT(svm.probability_positive(std::vector<double>{5.0, 5.0}), 0.2);
}

TEST(BinarySvm, ValidatesLabels) {
  BinarySvm svm;
  Matrix X = Matrix::from_rows({{0.0}, {1.0}});
  EXPECT_THROW(svm.fit(X, std::vector<signed char>{1, 0}, fast_config()),
               InvalidArgument);
  EXPECT_THROW(svm.fit(X, std::vector<signed char>{1, 1}, fast_config()),
               InvalidArgument);
  EXPECT_THROW(svm.decision_value(std::vector<double>{0.0}),
               InvalidArgument);
}

TEST(SvmClassifier, MulticlassBlobsHighAccuracy) {
  Matrix X;
  std::vector<int> y;
  make_blobs(50, 4, X, y);
  SvmClassifier svm(fast_config());
  svm.fit(X, y, 4);
  EXPECT_EQ(svm.num_machines(), 6u);  // 4 choose 2
  std::size_t correct = 0;
  for (std::size_t r = 0; r < X.rows(); ++r) {
    if (svm.predict(X.row(r)) == y[r]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(X.rows()),
            0.97);
}

TEST(SvmClassifier, ProbabilitiesValidAndPeakAtTruth) {
  Matrix X;
  std::vector<int> y;
  make_blobs(40, 3, X, y, 5.0);
  auto cfg = fast_config();
  cfg.probability = true;
  SvmClassifier svm(cfg);
  svm.fit(X, y, 3);
  std::size_t peaked = 0;
  for (std::size_t r = 0; r < X.rows(); ++r) {
    const auto p = svm.predict_proba(X.row(r));
    double total = 0.0;
    for (const auto v : p) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    if (static_cast<int>(std::max_element(p.begin(), p.end()) -
                         p.begin()) == y[r]) {
      ++peaked;
    }
  }
  EXPECT_GT(static_cast<double>(peaked) / static_cast<double>(X.rows()),
            0.95);
}

TEST(SvmClassifier, LowProbabilityFarFromAllClasses) {
  // The paper's thresholding idea: a point unlike every training class
  // should receive a low top-class probability.
  Matrix X;
  std::vector<int> y;
  make_blobs(40, 3, X, y, 5.0);
  auto cfg = fast_config();
  cfg.probability = true;
  SvmClassifier svm(cfg);
  svm.fit(X, y, 3);
  const std::vector<double> alien{-40.0, 40.0};
  const auto p = svm.predict_proba(alien);
  const double top = *std::max_element(p.begin(), p.end());
  EXPECT_LT(top, 0.75);
}

TEST(SvmClassifier, VotePredictWithoutProbability) {
  Matrix X;
  std::vector<int> y;
  make_blobs(30, 3, X, y);
  SvmClassifier svm(fast_config());
  svm.fit(X, y, 3);
  const auto proba = svm.predict_proba(X.row(0));  // vote fractions
  double total = 0.0;
  for (const auto v : proba) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SvmClassifier, ParallelMatchesSerial) {
  Matrix X;
  std::vector<int> y;
  make_blobs(30, 3, X, y);
  auto cfg_par = fast_config();
  auto cfg_ser = fast_config();
  cfg_ser.parallel = false;
  SvmClassifier a(cfg_par, 9);
  SvmClassifier b(cfg_ser, 9);
  a.fit(X, y, 3);
  b.fit(X, y, 3);
  for (std::size_t r = 0; r < X.rows(); ++r) {
    EXPECT_EQ(a.predict(X.row(r)), b.predict(X.row(r)));
  }
}

TEST(SvmClassifier, RejectsBadInputs) {
  SvmClassifier svm(fast_config());
  Matrix X = Matrix::from_rows({{1.0}, {2.0}});
  const std::vector<int> y{0, 1};
  EXPECT_THROW(svm.fit(X, y, 1), InvalidArgument);  // needs >= 2 classes
  EXPECT_THROW(svm.predict(std::vector<double>{1.0}), InvalidArgument);
  // A class with no samples must be rejected during OvO training.
  EXPECT_THROW(svm.fit(X, y, 3), InvalidArgument);
}

// A hand-built 1-D linear binary machine (one support vector [1],
// coef 1 unless overridden, rho 0) whose decision value at x is
// `coef * x`.  `platt_a` sets the Platt sigmoid P(+1|f) = 1/(1+e^{af}):
// a negative `a` is the normal orientation (positive f → high
// probability), a positive `a` inverts the sigmoid against the votes.
std::string crafted_machine(double platt_a, bool has_platt,
                            double coef = 1.0) {
  std::ostringstream os;
  os << "binary-svm-v1\nkernel_type 0\ngamma 0\ndegree 1\ncoef0 0\n"
     << "rho 0\nhas_platt " << (has_platt ? 1 : 0) << "\nplatt_a "
     << platt_a << "\nplatt_b 0\nsvs 1\ndims 1\ncoef 1 " << coef
     << "\nsv 1 1\n";
  return os.str();
}

TEST(SvmClassifier, ProbabilityModeLabelMatchesCoupledArgmax) {
  // Regression test for the label/probability disagreement: a crafted
  // 3-class model where the hard one-vs-one votes and the coupled
  // pairwise probabilities pick different classes.  At x = 1 every
  // machine's decision value is +1, so the votes go 2:1:0 in favour of
  // class 0 — but machine (0,1) carries an inverted Platt sigmoid
  // (as the Lin–Weng CV fit produces on noisy data), so pairwise class 1
  // beats class 0 with p ≈ 0.98 and the coupled argmax is class 1.
  std::ostringstream os;
  os << "svm-ovo-v1\nclasses 3\nprobability 1\nmachines 3\n"
     << crafted_machine(4.0, true)     // (0,1): vote 0, P(0|{0,1}) ~ 0.02
     << crafted_machine(-4.0, true)    // (0,2): vote 0, P(0|{0,2}) ~ 0.98
     << crafted_machine(-4.0, true);   // (1,2): vote 1, P(1|{1,2}) ~ 0.98
  std::istringstream in(os.str());
  const auto svm = SvmClassifier::load(in);
  const std::vector<double> x{1.0};

  EXPECT_EQ(svm.predict_by_votes(x), 0);  // LIBSVM's vote rule says 0
  const auto proba = svm.predict_proba(x);
  ASSERT_EQ(proba.size(), 3u);
  const int argmax = static_cast<int>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
  EXPECT_EQ(argmax, 1);  // ...but the probability mass sits on class 1

  // The old predict_with_probability returned {0, proba[0]} here —
  // a vote label gated by the *wrong class's* probability.
  const auto pred = svm.predict_with_probability(x);
  EXPECT_EQ(pred.label, argmax);
  EXPECT_DOUBLE_EQ(pred.probability, proba[static_cast<std::size_t>(argmax)]);
  EXPECT_EQ(svm.predict(x), argmax);  // predict agrees in probability mode
}

TEST(SvmClassifier, VoteFractionTiesResolveToLowestClass) {
  // Circular votes (0 beats 1, 1 beats 2, 2 beats 0) leave every class
  // with exactly one vote; the tie must resolve deterministically to the
  // lowest class index on both the vote path and the vote-fraction path.
  std::ostringstream os;
  os << "svm-ovo-v1\nclasses 3\nprobability 0\nmachines 3\n"
     << crafted_machine(0.0, false)        // (0,1): f = +1 -> vote 0
     << crafted_machine(0.0, false, -1.0)  // (0,2): f = -1 -> vote 2
     << crafted_machine(0.0, false);       // (1,2): f = +1 -> vote 1
  std::istringstream in(os.str());
  const auto svm = SvmClassifier::load(in);
  const std::vector<double> x{1.0};

  const auto proba = svm.predict_proba(x);  // vote fractions
  ASSERT_EQ(proba.size(), 3u);
  for (const auto v : proba) EXPECT_DOUBLE_EQ(v, 1.0 / 3.0);
  EXPECT_EQ(svm.predict_by_votes(x), 0);
  EXPECT_EQ(svm.predict(x), 0);
  const auto pred = svm.predict_with_probability(x);
  EXPECT_EQ(pred.label, 0);
  EXPECT_DOUBLE_EQ(pred.probability, 1.0 / 3.0);
}

TEST(SvmClassifier, SelfConsistentUnderNoiseLabels) {
  // On pure-noise labels the cross-validated Platt sigmoids invert
  // relative to the memorizing in-sample decision values, so the hard
  // votes and the coupled probabilities genuinely disagree on many
  // training points.  Whatever the votes say, the reported prediction
  // must stay self-consistent: label == argmax of the probability
  // vector, probability == that class's entry.
  Rng rng(71);
  Matrix X;
  std::vector<int> y;
  for (int i = 0; i < 160; ++i) {
    X.append_row(std::vector<double>{rng.normal(), rng.normal()});
    y.push_back(static_cast<int>(rng.uniform_index(2)));  // noise labels
  }
  SvmConfig cfg;  // probability fitting on, very local kernel so the
  cfg.c = 1000.0;  // machine can memorize the 2-D noise
  cfg.kernel = Kernel::rbf(20.0);
  SvmClassifier svm(cfg);
  svm.fit(X, y, 2);
  std::size_t vote_correct = 0;
  std::size_t disagreements = 0;
  for (std::size_t r = 0; r < X.rows(); ++r) {
    const auto proba = svm.predict_proba(X.row(r));
    const int argmax = static_cast<int>(
        std::max_element(proba.begin(), proba.end()) - proba.begin());
    const auto pred = svm.predict_with_probability(X.row(r));
    EXPECT_EQ(pred.label, argmax);
    EXPECT_DOUBLE_EQ(pred.probability,
                     proba[static_cast<std::size_t>(argmax)]);
    EXPECT_EQ(svm.predict(X.row(r)), argmax);
    if (svm.predict_by_votes(X.row(r)) != argmax) ++disagreements;
    if (svm.predict_by_votes(X.row(r)) == y[r]) ++vote_correct;
  }
  // The memorizing machines still classify their own training data via
  // the vote rule...
  EXPECT_GT(static_cast<double>(vote_correct) /
                static_cast<double>(X.rows()),
            0.95);
  // ...while the inverted sigmoids make votes and probabilities clash —
  // the very disagreement the consistency fix is about.
  EXPECT_GT(disagreements, 0u);
}

TEST(SvmClassifier, BatchPredictionsMatchSerial) {
  Matrix X;
  std::vector<int> y;
  make_blobs(30, 3, X, y, 5.0);
  auto cfg = fast_config();
  cfg.probability = true;
  SvmClassifier svm(cfg);
  svm.fit(X, y, 3);
  const auto labels = svm.predict_batch(X);
  const auto probas = svm.predict_proba_batch(X);
  const auto preds = svm.predict_batch_with_probability(X);
  ASSERT_EQ(labels.size(), X.rows());
  ASSERT_EQ(probas.size(), X.rows());
  ASSERT_EQ(preds.size(), X.rows());
  for (std::size_t r = 0; r < X.rows(); ++r) {
    EXPECT_EQ(labels[r], svm.predict(X.row(r)));
    const auto serial = svm.predict_proba(X.row(r));
    ASSERT_EQ(probas[r].size(), serial.size());
    for (std::size_t c = 0; c < serial.size(); ++c) {
      EXPECT_DOUBLE_EQ(probas[r][c], serial[c]);
    }
    EXPECT_EQ(preds[r].label, labels[r]);
    EXPECT_DOUBLE_EQ(preds[r].probability,
                     serial[static_cast<std::size_t>(labels[r])]);
  }
}

TEST(SvmClassifier, ClassWeightsShiftBoundaryTowardRareClass) {
  // Imbalanced overlapping blobs: unweighted SVM sacrifices the rare
  // class; inverse-frequency weights recover its recall.
  Rng rng(31);
  Matrix X;
  std::vector<int> y;
  for (int i = 0; i < 300; ++i) {
    X.append_row(std::vector<double>{rng.normal(0.0, 1.2)});
    y.push_back(0);
  }
  for (int i = 0; i < 30; ++i) {
    X.append_row(std::vector<double>{rng.normal(2.0, 1.2)});
    y.push_back(1);
  }
  auto recall_of_rare = [&](const SvmConfig& cfg) {
    SvmClassifier svm(cfg);
    svm.fit(X, y, 2);
    std::size_t hit = 0;
    std::size_t total = 0;
    for (std::size_t r = 0; r < X.rows(); ++r) {
      if (y[r] != 1) continue;
      ++total;
      if (svm.predict(X.row(r)) == 1) ++hit;
    }
    return static_cast<double>(hit) / static_cast<double>(total);
  };
  SvmConfig plain = fast_config();
  plain.c = 1.0;
  SvmConfig weighted = plain;
  weighted.class_weights = {1.0, 10.0};  // boost the rare class
  EXPECT_GT(recall_of_rare(weighted), recall_of_rare(plain) + 0.1);
}

TEST(SvmClassifier, ClassWeightsValidated) {
  Matrix X = Matrix::from_rows({{0.0}, {1.0}, {2.0}, {3.0}});
  const std::vector<int> y{0, 0, 1, 1};
  SvmConfig cfg = fast_config();
  cfg.class_weights = {1.0};  // wrong size for 2 classes
  SvmClassifier svm(cfg);
  EXPECT_THROW(svm.fit(X, y, 2), InvalidArgument);
}

TEST(SvmRegressor, FitsLinearFunction) {
  Rng rng(17);
  Matrix X;
  std::vector<double> y;
  for (int i = 0; i < 150; ++i) {
    const double x = rng.uniform(-2.0, 2.0);
    X.append_row(std::vector<double>{x});
    y.push_back(3.0 * x + 1.0);
  }
  SvmConfig cfg;
  cfg.kernel = Kernel::linear();
  cfg.c = 100.0;
  cfg.epsilon = 0.05;
  SvmRegressor svr(cfg);
  svr.fit(X, y);
  for (double x = -1.5; x <= 1.5; x += 0.5) {
    EXPECT_NEAR(svr.predict(std::vector<double>{x}), 3.0 * x + 1.0, 0.2);
  }
}

TEST(SvmRegressor, FitsNonlinearWithRbf) {
  Rng rng(19);
  Matrix X;
  std::vector<double> y;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.uniform(-3.0, 3.0);
    X.append_row(std::vector<double>{x});
    y.push_back(std::sin(x));
  }
  SvmConfig cfg;
  cfg.kernel = Kernel::rbf(1.0);
  cfg.c = 50.0;
  cfg.epsilon = 0.05;
  SvmRegressor svr(cfg);
  svr.fit(X, y);
  double max_err = 0.0;
  for (double x = -2.5; x <= 2.5; x += 0.25) {
    max_err = std::max(max_err,
                       std::abs(svr.predict(std::vector<double>{x}) -
                                std::sin(x)));
  }
  EXPECT_LT(max_err, 0.25);
}

TEST(SvmRegressor, EpsilonTubeSparsifiesSupport) {
  // With a wide tube, most points sit strictly inside it -> few SVs.
  Rng rng(23);
  Matrix X;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    X.append_row(std::vector<double>{x});
    y.push_back(x + rng.normal(0.0, 0.01));
  }
  SvmConfig tight;
  tight.kernel = Kernel::linear();
  tight.epsilon = 0.001;
  SvmConfig wide = tight;
  wide.epsilon = 0.5;
  SvmRegressor svr_tight(tight);
  SvmRegressor svr_wide(wide);
  svr_tight.fit(X, y);
  svr_wide.fit(X, y);
  EXPECT_LT(svr_wide.num_support_vectors(),
            svr_tight.num_support_vectors());
}

TEST(SvmRegressor, RejectsBadInputs) {
  SvmConfig cfg;
  cfg.epsilon = -1.0;
  EXPECT_THROW(SvmRegressor{cfg}, InvalidArgument);
  SvmRegressor svr;
  EXPECT_THROW(svr.predict(std::vector<double>{0.0}), InvalidArgument);
}

}  // namespace
}  // namespace xdmodml::ml
