// Property-based (parameterized) test sweeps over the ML layer:
// SMO KKT conditions across solver configurations, pairwise-coupling
// invariants across class counts, forest OOB consistency across
// hyper-parameters, and standardizer invariants across shapes.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "ml/dataset.hpp"
#include "ml/kernel.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"
#include "ml/smo.hpp"
#include "ml/svm.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace xdmodml::ml {
namespace {

// ---------------------------------------------------------------------
// SMO: for every (C, kernel, seed), the solution must satisfy the dual
// constraints and the KKT complementarity conditions.
// ---------------------------------------------------------------------
using SmoParam = std::tuple<double /*C*/, int /*kernel*/, int /*seed*/>;

class SmoKktProperty : public ::testing::TestWithParam<SmoParam> {};

TEST_P(SmoKktProperty, SolutionSatisfiesKkt) {
  const auto [c_value, kernel_kind, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  Matrix X;
  std::vector<signed char> y;
  for (int i = 0; i < 60; ++i) {
    const int label = i % 2 == 0 ? 1 : -1;
    X.append_row(std::vector<double>{rng.normal(label * 0.8, 1.0),
                                     rng.normal(0.0, 1.0)});
    y.push_back(static_cast<signed char>(label));
  }
  const Kernel kernel =
      kernel_kind == 0 ? Kernel::linear() : Kernel::rbf(0.5);
  std::vector<double> p(X.rows(), -1.0);
  std::vector<double> c(X.rows(), c_value);
  SmoProblem problem;
  problem.n = X.rows();
  problem.p = p;
  problem.y = y;
  problem.c = c;
  problem.kernel_row = [&](std::size_t i, std::span<double> out) {
    for (std::size_t j = 0; j < X.rows(); ++j) {
      out[j] = kernel(X.row(i), X.row(j));
    }
  };
  SmoConfig config;
  config.tolerance = 1e-4;
  const auto result = solve_smo(problem, config);
  ASSERT_TRUE(result.converged);

  // Dual feasibility.
  double balance = 0.0;
  for (std::size_t i = 0; i < X.rows(); ++i) {
    EXPECT_GE(result.alpha[i], -1e-12);
    EXPECT_LE(result.alpha[i], c_value + 1e-12);
    balance += result.alpha[i] * static_cast<double>(y[i]);
  }
  EXPECT_NEAR(balance, 0.0, 1e-8);

  // KKT complementarity.
  auto decision = [&](std::span<const double> x) {
    double f = -result.rho;
    for (std::size_t j = 0; j < X.rows(); ++j) {
      f += result.alpha[j] * static_cast<double>(y[j]) *
           kernel(X.row(j), x);
    }
    return f;
  };
  const double tol = 2e-2;
  for (std::size_t i = 0; i < X.rows(); ++i) {
    const double margin = static_cast<double>(y[i]) * decision(X.row(i));
    if (margin > 1.0 + tol) {
      EXPECT_NEAR(result.alpha[i], 0.0, 1e-8) << "row " << i;
    } else if (margin < 1.0 - tol) {
      EXPECT_NEAR(result.alpha[i], c_value, 1e-8) << "row " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SolverGrid, SmoKktProperty,
    ::testing::Combine(::testing::Values(0.5, 10.0, 1000.0),
                       ::testing::Values(0, 1),
                       ::testing::Values(1, 2, 3)));

// ---------------------------------------------------------------------
// Pairwise coupling: for any class count and any consistent random
// pairwise matrix, the coupled probabilities are a distribution, and a
// matrix generated *from* a known distribution recovers its argmax.
// ---------------------------------------------------------------------
class CouplingProperty : public ::testing::TestWithParam<int> {};

TEST_P(CouplingProperty, ProducesConsistentDistribution) {
  const int k = GetParam();
  Rng rng(static_cast<std::uint64_t>(k) * 31 + 7);
  // Ground-truth class distribution with an unambiguous winner (the
  // coupling noise below could flip a near-tie, which would not be a
  // coupling defect).
  std::vector<double> truth(static_cast<std::size_t>(k));
  for (auto& t : truth) t = rng.uniform(0.05, 1.0);
  truth[rng.uniform_index(truth.size())] = 3.0;
  double total = 0.0;
  for (const auto t : truth) total += t;
  for (auto& t : truth) t /= total;

  // Pairwise matrix from the truth: r_ij = p_i / (p_i + p_j), plus noise.
  Matrix pairwise(static_cast<std::size_t>(k), static_cast<std::size_t>(k),
                  0.0);
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      const auto ui = static_cast<std::size_t>(i);
      const auto uj = static_cast<std::size_t>(j);
      double r = truth[ui] / (truth[ui] + truth[uj]);
      r = std::clamp(r + rng.normal(0.0, 0.01), 0.01, 0.99);
      pairwise(ui, uj) = r;
      pairwise(uj, ui) = 1.0 - r;
    }
  }
  const auto coupled = couple_pairwise_probabilities(pairwise);
  ASSERT_EQ(coupled.size(), static_cast<std::size_t>(k));
  double sum = 0.0;
  for (const auto p : coupled) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Argmax preserved.
  const auto truth_best =
      std::max_element(truth.begin(), truth.end()) - truth.begin();
  const auto coupled_best =
      std::max_element(coupled.begin(), coupled.end()) - coupled.begin();
  EXPECT_EQ(truth_best, coupled_best);
}

INSTANTIATE_TEST_SUITE_P(ClassCounts, CouplingProperty,
                         ::testing::Values(2, 3, 4, 6, 8, 12, 20));

// ---------------------------------------------------------------------
// Random forest: across tree counts and mtry settings, the OOB estimate
// must track a held-out estimate.
// ---------------------------------------------------------------------
using ForestParam = std::tuple<int /*trees*/, int /*mtry*/>;

class ForestOobProperty : public ::testing::TestWithParam<ForestParam> {};

TEST_P(ForestOobProperty, OobTracksHoldout) {
  const auto [trees, mtry] = GetParam();
  Rng rng(99);
  auto sample = [&rng](Matrix& X, std::vector<int>& y, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      const int cls = static_cast<int>(rng.uniform_index(3));
      X.append_row(std::vector<double>{
          rng.normal(cls * 1.6, 1.0), rng.normal(cls % 2 * 2.0, 1.0),
          rng.normal(0.0, 1.0)});
      y.push_back(cls);
    }
  };
  Matrix X;
  std::vector<int> y;
  sample(X, y, 900);
  Matrix xt;
  std::vector<int> yt;
  sample(xt, yt, 600);

  ForestConfig cfg;
  cfg.num_trees = static_cast<std::size_t>(trees);
  cfg.tree.max_features = static_cast<std::size_t>(mtry);
  RandomForestClassifier rf(cfg, 7);
  rf.fit(X, y, 3);
  std::size_t wrong = 0;
  for (std::size_t r = 0; r < xt.rows(); ++r) {
    if (rf.predict(xt.row(r)) != yt[r]) ++wrong;
  }
  const double holdout =
      static_cast<double>(wrong) / static_cast<double>(xt.rows());
  EXPECT_NEAR(rf.oob_error(), holdout, 0.07);
}

INSTANTIATE_TEST_SUITE_P(ForestGrid, ForestOobProperty,
                         ::testing::Combine(::testing::Values(40, 120),
                                            ::testing::Values(0, 1, 3)));

// ---------------------------------------------------------------------
// Standardizer: across shapes and seeds, transformed training data has
// zero mean / unit variance per column, and transform is affine.
// ---------------------------------------------------------------------
using StdParam = std::tuple<int /*cols*/, int /*seed*/>;

class StandardizerProperty : public ::testing::TestWithParam<StdParam> {};

TEST_P(StandardizerProperty, ZeroMeanUnitVariance) {
  const auto [cols, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  Matrix X(200, static_cast<std::size_t>(cols));
  for (std::size_t r = 0; r < X.rows(); ++r) {
    for (std::size_t c = 0; c < X.cols(); ++c) {
      X(r, c) = rng.lognormal(static_cast<double>(c), 1.0 + 0.1 * c);
    }
  }
  Standardizer s;
  const auto Z = s.fit_transform(X);
  for (std::size_t c = 0; c < Z.cols(); ++c) {
    RunningStats rs;
    for (std::size_t r = 0; r < Z.rows(); ++r) rs.add(Z(r, c));
    EXPECT_NEAR(rs.mean(), 0.0, 1e-9);
    EXPECT_NEAR(rs.stddev(), 1.0, 1e-6);
  }
  // Affine: transform(x) == (x - mean) / scale exactly.
  std::vector<double> probe(X.cols(), 1.0);
  auto copy = probe;
  s.transform_row(copy);
  for (std::size_t c = 0; c < X.cols(); ++c) {
    EXPECT_DOUBLE_EQ(copy[c], (1.0 - s.means()[c]) / s.scales()[c]);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, StandardizerProperty,
                         ::testing::Combine(::testing::Values(1, 5, 48),
                                            ::testing::Values(1, 2)));

// ---------------------------------------------------------------------
// Threshold sweeps: for random predictions, the descending-grid curves
// are monotone, bounded, and hit exact endpoints.
// ---------------------------------------------------------------------
class ThresholdSweepProperty : public ::testing::TestWithParam<int> {};

TEST_P(ThresholdSweepProperty, CurveInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<Prediction> preds;
  std::vector<int> actual;
  for (int i = 0; i < 500; ++i) {
    preds.push_back({static_cast<int>(rng.uniform_index(5)),
                     rng.uniform()});
    actual.push_back(static_cast<int>(rng.uniform_index(5)));
  }
  const auto grid = default_threshold_grid();
  const auto curve = threshold_sweep(preds, actual, grid);
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const auto& pt = curve[i];
    EXPECT_GE(pt.classified_fraction, pt.correct_fraction);
    EXPECT_GE(pt.classified_fraction, 0.0);
    EXPECT_LE(pt.classified_fraction, 1.0);
    EXPECT_GE(pt.eq1_x, 0.0);
    EXPECT_LE(pt.eq1_x, 1.0);
    if (i > 0) {
      EXPECT_LE(curve[i - 1].classified_fraction,
                curve[i].classified_fraction);
    }
  }
  // At the lowest threshold (0.05), essentially everything classifies.
  EXPECT_GT(curve.back().classified_fraction, 0.94);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThresholdSweepProperty,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace xdmodml::ml
