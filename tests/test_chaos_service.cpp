// Chaos suite: seeded randomized failpoint schedules driven against a
// live ClassificationService under concurrent load.
//
// The assertions are deliberately *invariants*, not event orders (see
// the determinism contract in util/failpoint.hpp):
//   - no crash, no deadlock (a watchdog aborts the process with a
//     message instead of letting CTest hang on a lost lock);
//   - no exception escapes the serving path — every injected fault is
//     either recovered invisibly or surfaced as a structured kFailed
//     outcome with the job dead-lettered;
//   - tallies, warehouse contents, dead letters and the fail.*/retry.*
//     metrics all agree exactly after every iteration;
//   - a schedule made only of *recoverable* faults produces results
//     bit-identical to the fault-free golden run.
//
// Iteration count defaults low enough for tier-1; the sanitizer legs
// raise it via XDMODML_CHAOS_ITERS (the acceptance bar is 100 clean
// iterations under ASan and TSan).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/classification_service.hpp"
#include "supremm/summary_io.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/metrics.hpp"
#include "workload/dataset_helpers.hpp"
#include "workload/generator.hpp"

namespace xdmodml::core {
namespace {

/// Aborts the process (with output CTest will show) if `done` is not
/// signalled within the limit — turns a chaos-induced deadlock into a
/// diagnosable failure instead of a hung test runner.
class Watchdog {
 public:
  explicit Watchdog(std::chrono::seconds limit, const char* label)
      : thread_([this, limit, label] {
          std::unique_lock lock(mutex_);
          if (!cv_.wait_for(lock, limit, [this] { return done_; })) {
            std::fprintf(stderr,
                         "chaos watchdog: '%s' exceeded %lld s — "
                         "deadlock suspected, aborting\n",
                         label, static_cast<long long>(limit.count()));
            std::abort();
          }
        }) {}

  ~Watchdog() {
    {
      std::lock_guard lock(mutex_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

int chaos_iterations() {
  if (const char* s = std::getenv("XDMODML_CHAOS_ITERS")) {
    const int n = std::atoi(s);
    if (n > 0) return n;
  }
  return 20;
}

class ChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload::WorkloadGenerator gen(
        workload::WorkloadGenerator::standard({}, 321));
    const auto train_jobs = gen.generate_balanced(40);
    const auto schema = supremm::AttributeSchema::full();
    const auto train = workload::build_summary_dataset(
        train_jobs, schema, supremm::label_by_application());
    JobClassifierConfig cfg;
    cfg.algorithm = Algorithm::kRandomForest;
    cfg.forest.num_trees = 60;
    auto clf = std::make_shared<JobClassifier>(cfg);
    clf->train(train);
    clf_ = new std::shared_ptr<const JobClassifier>(std::move(clf));

    // Fixed job streams, generated once: the generator is stateful, and
    // the golden-run comparison needs byte-identical inputs per run.
    stream_ = new std::vector<supremm::JobSummary>();
    for (const auto& job : gen.generate_native(15)) {
      stream_->push_back(job.summary);
    }
    for (const auto& job : gen.generate_na(25, 1.0)) {
      stream_->push_back(job.summary);
    }
    for (const auto& job : gen.generate_uncategorized(10)) {
      stream_->push_back(job.summary);
    }
    single_pool_ = new std::vector<supremm::JobSummary>();
    for (const auto& job : gen.generate_na(30, 1.0)) {
      single_pool_->push_back(job.summary);
    }
  }

  static void TearDownTestSuite() {
    delete clf_;
    delete stream_;
    delete single_pool_;
    clf_ = nullptr;
    stream_ = nullptr;
    single_pool_ = nullptr;
  }

  void SetUp() override { fp::reset(); }
  void TearDown() override { fp::reset(); }

  static std::shared_ptr<const JobClassifier>* clf_;
  static std::vector<supremm::JobSummary>* stream_;
  static std::vector<supremm::JobSummary>* single_pool_;
};
std::shared_ptr<const JobClassifier>* ChaosTest::clf_ = nullptr;
std::vector<supremm::JobSummary>* ChaosTest::stream_ = nullptr;
std::vector<supremm::JobSummary>* ChaosTest::single_pool_ = nullptr;

/// A randomized failpoint schedule that is *safe by construction*: every
/// site gets only policies its call site recovers from, so any escape is
/// a hardening bug, not a test artifact.
std::string random_schedule(std::mt19937_64& rng) {
  std::ostringstream spec;
  const auto chance = [&rng](double p) {
    return std::uniform_real_distribution<>(0.0, 1.0)(rng) < p;
  };
  const auto one_in = [&rng] {
    return std::uniform_int_distribution<int>(2, 8)(rng);
  };
  // Throw-tolerant sites: classify converts the error into kFailed, the
  // batch path falls back to a serial pass.
  if (chance(0.7)) {
    spec << "service.classify=one_in(" << one_in() << "):"
         << (chance(0.5) ? "error(11)" : "delay(1)") << ";";
  }
  if (chance(0.5)) {
    spec << "thread_pool.chunk=one_in(" << one_in() << "):error(12)*"
         << std::uniform_int_distribution<int>(1, 3)(rng) << ";";
  }
  // Return-arm sites: queue-full degrades to inline execution, a
  // validation reject dead-letters the job.
  if (chance(0.6)) {
    spec << "thread_pool.submit.queue_full=one_in(" << one_in()
         << "):return;";
  }
  if (chance(0.6)) {
    spec << "warehouse.validate.reject=one_in(" << one_in() << "):return*"
         << std::uniform_int_distribution<int>(1, 6)(rng) << ";";
  }
  return spec.str();
}

TEST_F(ChaosTest, RecoveredFaultsMatchGoldenRunExactly) {
  Watchdog watchdog(std::chrono::seconds(240), "golden-run comparison");

  // Golden run: no faults armed.
  ClassificationService golden(*clf_, 0.5);
  const auto golden_results = golden.ingest_batch(*stream_);

  // Faulted run: only faults whose recovery is exact — queue-full
  // degrades to inline execution, a chunk error reruns the batch
  // serially, a classify delay just stalls.  None of them may change a
  // single bit of the output.
  fp::arm_from_spec(
      "thread_pool.submit.queue_full=one_in(3):return;"
      "thread_pool.chunk=error(3)*1;"
      "service.classify=one_in(9):delay(1)",
      /*seed=*/7);
  ClassificationService faulted(*clf_, 0.5);
  const auto faulted_results = faulted.ingest_batch(*stream_);
  fp::disarm_all();

  // The faults actually happened (otherwise this test proves nothing).
  EXPECT_GE(fp::site_stats("thread_pool.chunk").triggers, 1u);

  ASSERT_EQ(faulted_results.size(), golden_results.size());
  for (std::size_t i = 0; i < golden_results.size(); ++i) {
    EXPECT_EQ(faulted_results[i].outcome, golden_results[i].outcome);
    EXPECT_EQ(faulted_results[i].prediction.class_name,
              golden_results[i].prediction.class_name);
    // Bit-identical, not approximately equal.
    EXPECT_EQ(faulted_results[i].prediction.probability,
              golden_results[i].prediction.probability);
    EXPECT_TRUE(faulted_results[i].error.empty());
  }
  EXPECT_EQ(faulted.stats().identified, golden.stats().identified);
  EXPECT_EQ(faulted.stats().attributed, golden.stats().attributed);
  EXPECT_EQ(faulted.stats().unresolved, golden.stats().unresolved);
  EXPECT_EQ(faulted.stats().failed, 0u);
  EXPECT_EQ(faulted.warehouse()->size(), golden.warehouse()->size());
  EXPECT_EQ(faulted.attributed_cpu_hours(), golden.attributed_cpu_hours());
  EXPECT_TRUE(faulted.warehouse()->dead_letters().empty());
}

TEST_F(ChaosTest, SeededSchedulesKeepEveryInvariant) {
  const int iters = chaos_iterations();
  auto& registry = obs::MetricsRegistry::instance();
  for (int iter = 0; iter < iters; ++iter) {
    SCOPED_TRACE("chaos iteration " + std::to_string(iter));
    fp::reset();
    std::mt19937_64 schedule_rng(1234u + static_cast<unsigned>(iter));
    const std::string spec = random_schedule(schedule_rng);
    fp::arm_from_spec(spec, /*seed=*/static_cast<std::uint64_t>(iter));

    const auto before = registry.snapshot();
    Watchdog watchdog(std::chrono::seconds(120), "chaos iteration");
    ClassificationService service(*clf_, 0.5);

    // Concurrent load: one batch ingest plus three threads of single
    // ingests and a report() reader, all against the same service.
    std::vector<ClassificationService::IngestResult> batch_results;
    std::atomic<std::size_t> single_failed{0};
    std::thread batch_thread([&] {
      batch_results = service.ingest_batch(*stream_);
    });
    std::vector<std::thread> singles;
    for (int t = 0; t < 3; ++t) {
      singles.emplace_back([&, t] {
        for (std::size_t i = static_cast<std::size_t>(t);
             i < single_pool_->size(); i += 3) {
          const auto result = service.ingest((*single_pool_)[i]);
          if (result.outcome == ClassificationService::Outcome::kFailed) {
            single_failed.fetch_add(1, std::memory_order_relaxed);
            EXPECT_FALSE(result.error.empty());
          } else {
            EXPECT_TRUE(result.error.empty());
          }
        }
      });
    }
    std::thread reader([&] {
      for (int r = 0; r < 5; ++r) {
        (void)service.report();
        (void)service.stats();
      }
    });
    batch_thread.join();
    for (auto& th : singles) th.join();
    reader.join();
    fp::disarm_all();

    // Conservation: every submitted job is accounted for exactly once —
    // stored in the warehouse or dead-lettered, never both, never lost.
    const auto total_submitted = stream_->size() + single_pool_->size();
    const auto stats = service.stats();
    EXPECT_EQ(stats.total(), total_submitted);
    std::size_t batch_failed = 0;
    for (const auto& r : batch_results) {
      if (r.outcome == ClassificationService::Outcome::kFailed) {
        ++batch_failed;
        EXPECT_FALSE(r.error.empty());
      }
    }
    EXPECT_EQ(stats.failed, batch_failed + single_failed.load());
    {
      const auto view = service.warehouse();
      EXPECT_EQ(view->size() + view->dead_letters().size(),
                total_submitted);
      EXPECT_EQ(view->dead_letters().size(), stats.failed);
    }

    // Metrics-vs-outcome consistency: the global counters moved by
    // exactly what this iteration's service reports.
    const auto after = registry.snapshot();
    const auto delta = [&](const char* name) {
      return after.counter(name) - before.counter(name);
    };
    EXPECT_EQ(delta("service.identified"), stats.identified);
    EXPECT_EQ(delta("service.attributed"), stats.attributed);
    EXPECT_EQ(delta("service.unresolved"), stats.unresolved);
    EXPECT_EQ(delta("service.failed"), stats.failed);
    EXPECT_EQ(delta("warehouse.dead_letters"), stats.failed);
    // Every recovery that claims to have happened is backed by a
    // triggered failpoint, and vice versa nothing fired silently.
    const auto injected = delta("failpoint.triggers");
    const auto recovered_or_surfaced =
        delta("fail.service.classify") + delta("fail.service.timeout") +
        delta("fail.service.batch") + delta("fail.thread_pool.queue_full") +
        delta("fail.warehouse.commit");
    if (injected == 0) {
      EXPECT_EQ(recovered_or_surfaced, 0u);
      EXPECT_EQ(stats.failed, 0u);
    }
  }
}

TEST_F(ChaosTest, IngestParsersSurfaceStructuredErrorsUnderFaults) {
  Watchdog watchdog(std::chrono::seconds(120), "parser chaos");
  // Round-trip the fixed stream through the CSV interchange format with
  // read-path faults armed: every iteration must either succeed, return
  // a truncated-but-valid prefix, or throw a *structured* error — never
  // crash, never leak a bare failpoint exception.
  std::ostringstream csv;
  supremm::write_jobs_csv(csv, *stream_);
  const std::string text = csv.str();

  const int iters = chaos_iterations();
  int failures = 0;
  int truncations = 0;
  for (int iter = 0; iter < iters; ++iter) {
    SCOPED_TRACE("parser iteration " + std::to_string(iter));
    fp::reset();
    fp::arm_from_spec(
        "csv.parse.read=one_in(40):error(2);"
        "csv.parse.truncate=one_in(40):return;"
        "summary_io.read.row=one_in(40):error(3)",
        /*seed=*/static_cast<std::uint64_t>(iter));
    std::istringstream in(text);
    try {
      const auto jobs = supremm::read_jobs_csv(in);
      EXPECT_LE(jobs.size(), stream_->size());
      if (jobs.size() < stream_->size()) ++truncations;
    } catch (const Error& e) {
      // Structured: the message names the failing position ("row N" /
      // "line N") — or, when a short read lands inside the header, the
      // header-format mismatch — and the raw FailpointError never
      // escapes undecorated.
      ++failures;
      EXPECT_EQ(dynamic_cast<const fp::FailpointError*>(&e), nullptr);
      const std::string what = e.what();
      EXPECT_TRUE(what.find("row") != std::string::npos ||
                  what.find("line") != std::string::npos ||
                  what.find("header") != std::string::npos)
          << what;
    }
  }
  // With one_in(40) over ~50 rows per pass, both arms fire across the
  // run (probabilistically certain: P(never) < 1e-10 at 20 iters).
  EXPECT_GT(failures + truncations, 0);
  fp::reset();
}

TEST_F(ChaosTest, ClassifyDeadlineSurfacesAsStructuredTimeout) {
  Watchdog watchdog(std::chrono::seconds(120), "deadline test");
  // Fast path: a generous deadline is never tripped by a real
  // classification, even on slow sanitizer machines.
  ClassificationService::Limits lax;
  lax.classify_timeout_ms = 10'000;
  ClassificationService relaxed(*clf_, 0.5, lax);
  const auto ok = relaxed.ingest(stream_->front());
  EXPECT_NE(ok.outcome, ClassificationService::Outcome::kFailed);

  // A 50 ms injected stall against a 1 ms deadline overruns it
  // deterministically: structured timeout, job dead-lettered,
  // fail.service.timeout counted.
  ClassificationService::Limits tight;
  tight.classify_timeout_ms = 1;
  ClassificationService service(*clf_, 0.5, tight);
  auto& registry = obs::MetricsRegistry::instance();
  const auto before = registry.snapshot();
  fp::arm("service.classify", fp::Policy::parse("delay(50)*1"));
  const auto result = service.ingest(stream_->front());
  fp::disarm_all();
  EXPECT_EQ(result.outcome, ClassificationService::Outcome::kFailed);
  EXPECT_NE(result.error.find("deadline"), std::string::npos);
  EXPECT_EQ(service.stats().failed, 1u);
  EXPECT_EQ(service.warehouse()->dead_letters().size(), 1u);
  const auto after = registry.snapshot();
  EXPECT_EQ(after.counter("fail.service.timeout") -
                before.counter("fail.service.timeout"),
            1u);
}

}  // namespace
}  // namespace xdmodml::core
