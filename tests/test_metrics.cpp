// Tests for confusion matrices, accuracy and the paper's threshold sweeps.
#include "ml/metrics.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace xdmodml::ml {
namespace {

TEST(ConfusionMatrix, CountsAndAccuracy) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  cm.add(2, 2);
  EXPECT_EQ(cm.total(), 4u);
  EXPECT_EQ(cm.correct(), 3u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.75);
  EXPECT_EQ(cm.count(0, 1), 1u);
  EXPECT_EQ(cm.count(1, 0), 0u);
}

TEST(ConfusionMatrix, RecallAndPrecision) {
  ConfusionMatrix cm(2);
  // class 0: 3 correct, 1 missed; class 1: 2 correct, 1 stolen.
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  cm.add(1, 1);
  cm.add(1, 0);
  EXPECT_DOUBLE_EQ(cm.recall(0), 0.75);
  EXPECT_DOUBLE_EQ(cm.recall(1), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.precision(0), 0.75);
  EXPECT_DOUBLE_EQ(cm.precision(1), 2.0 / 3.0);
}

TEST(ConfusionMatrix, AbsentClassConventions) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  EXPECT_DOUBLE_EQ(cm.recall(1), 0.0);
  EXPECT_DOUBLE_EQ(cm.precision(1), 0.0);
}

TEST(ConfusionMatrix, RejectsOutOfRange) {
  ConfusionMatrix cm(2);
  EXPECT_THROW(cm.add(2, 0), InvalidArgument);
  EXPECT_THROW(cm.add(0, -1), InvalidArgument);
  EXPECT_THROW(ConfusionMatrix(0), InvalidArgument);
}

TEST(ConfusionMatrix, PaperStyleRendering) {
  ConfusionMatrix cm(3);
  for (int i = 0; i < 5; ++i) cm.add(0, 0);
  cm.add(0, 2);
  cm.add(1, 1);
  const auto text =
      cm.render_paper_style({"AMBER", "VASP", "GROMACS"});
  EXPECT_NE(text.find("AMBER (5): GROMACS (1)"), std::string::npos);
  EXPECT_NE(text.find("VASP (1)"), std::string::npos);
  // Zero off-diagonals omitted.
  EXPECT_EQ(text.find("AMBER (5): GROMACS (1), "), std::string::npos);
}

TEST(ConfusionMatrix, GridRendering) {
  ConfusionMatrix cm(2);
  cm.add(0, 1);
  const auto text = cm.render_grid({"a", "b"});
  EXPECT_NE(text.find("actual\\pred"), std::string::npos);
  EXPECT_THROW(cm.render_grid({"only-one"}), InvalidArgument);
}

TEST(BuildConfusion, FromVectors) {
  const std::vector<int> actual{0, 1, 1, 0};
  const std::vector<int> predicted{0, 1, 0, 0};
  const auto cm = build_confusion(actual, predicted, 2);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.75);
  EXPECT_THROW(build_confusion(actual, std::vector<int>{0}, 2),
               InvalidArgument);
}

TEST(Accuracy, BasicAndErrors) {
  EXPECT_DOUBLE_EQ(accuracy(std::vector<int>{1, 2, 3},
                            std::vector<int>{1, 2, 0}),
                   2.0 / 3.0);
  EXPECT_THROW(accuracy(std::vector<int>{}, std::vector<int>{}),
               InvalidArgument);
}

TEST(ThresholdSweep, LabeledCurves) {
  // 4 predictions: two confident correct, one confident wrong,
  // one unconfident correct.
  const std::vector<Prediction> preds{
      {0, 0.95}, {1, 0.90}, {0, 0.85}, {1, 0.40}};
  const std::vector<int> actual{0, 1, 1, 1};
  const std::vector<double> thresholds{0.9, 0.5, 0.1};
  const auto pts = threshold_sweep(preds, actual, thresholds);
  ASSERT_EQ(pts.size(), 3u);

  // t = 0.9: predictions 0 and 1 qualify, both correct.
  EXPECT_DOUBLE_EQ(pts[0].classified_fraction, 0.5);
  EXPECT_DOUBLE_EQ(pts[0].correct_fraction, 0.5);
  // Eq. 1: N_correct = 3, N_incorrect = 1.
  EXPECT_DOUBLE_EQ(pts[0].eq1_x, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(pts[0].eq1_y, 0.0);

  // t = 0.5: three qualify (the wrong one included).
  EXPECT_DOUBLE_EQ(pts[1].classified_fraction, 0.75);
  EXPECT_DOUBLE_EQ(pts[1].correct_fraction, 0.5);
  EXPECT_DOUBLE_EQ(pts[1].eq1_y, 1.0);

  // t = 0.1: everything qualifies.
  EXPECT_DOUBLE_EQ(pts[2].classified_fraction, 1.0);
  EXPECT_DOUBLE_EQ(pts[2].correct_fraction, 0.75);
  EXPECT_DOUBLE_EQ(pts[2].eq1_x, 1.0);
}

TEST(ThresholdSweep, MonotoneInThreshold) {
  std::vector<Prediction> preds;
  std::vector<int> actual;
  for (int i = 0; i < 100; ++i) {
    preds.push_back({i % 3, 0.01 * i});
    actual.push_back((i * 7) % 3);
  }
  const auto grid = default_threshold_grid();
  const auto pts = threshold_sweep(preds, actual, grid);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    // Grid descends, so classified fraction must be non-decreasing.
    EXPECT_LE(pts[i - 1].classified_fraction, pts[i].classified_fraction);
    EXPECT_LE(pts[i - 1].correct_fraction, pts[i].correct_fraction);
    EXPECT_LE(pts[i - 1].eq1_x, pts[i].eq1_x);
    EXPECT_LE(pts[i - 1].eq1_y, pts[i].eq1_y);
  }
}

TEST(ThresholdSweep, UnlabeledPool) {
  const std::vector<Prediction> preds{{0, 0.9}, {1, 0.2}};
  const std::vector<double> thresholds{0.5};
  const auto pts = threshold_sweep(preds, {}, thresholds);
  EXPECT_DOUBLE_EQ(pts[0].classified_fraction, 0.5);
  EXPECT_DOUBLE_EQ(pts[0].correct_fraction, 0.0);
  EXPECT_DOUBLE_EQ(pts[0].eq1_x, 0.0);
}

TEST(ThresholdSweep, RejectsBadInputs) {
  const std::vector<double> thresholds{0.5};
  EXPECT_THROW(threshold_sweep({}, {}, thresholds), InvalidArgument);
  const std::vector<Prediction> preds{{0, 0.9}};
  const std::vector<int> wrong_len{0, 1};
  EXPECT_THROW(threshold_sweep(preds, wrong_len, thresholds),
               InvalidArgument);
}

TEST(DefaultGrid, PaperShape) {
  const auto grid = default_threshold_grid();
  ASSERT_EQ(grid.size(), 20u);
  EXPECT_DOUBLE_EQ(grid.front(), 1.0);
  EXPECT_NEAR(grid.back(), 0.05, 1e-12);
}

TEST(RegressionMetrics, KnownValues) {
  const std::vector<double> actual{1.0, 2.0, 3.0};
  const std::vector<double> pred{1.0, 2.5, 2.5};
  EXPECT_NEAR(mean_squared_error(actual, pred), (0.25 + 0.25) / 3.0, 1e-12);
  EXPECT_NEAR(mean_absolute_error(actual, pred), 1.0 / 3.0, 1e-12);
  EXPECT_GT(r_squared(actual, pred), 0.5);
  EXPECT_DOUBLE_EQ(r_squared(actual, actual), 1.0);
}

TEST(RegressionMetrics, ConstantActual) {
  const std::vector<double> actual{2.0, 2.0};
  EXPECT_DOUBLE_EQ(r_squared(actual, actual), 1.0);
  const std::vector<double> off{1.0, 3.0};
  EXPECT_DOUBLE_EQ(r_squared(actual, off), 0.0);
}

}  // namespace
}  // namespace xdmodml::ml
