// Tests for the workload generator: signatures, mixes, pools, exit-code
// model, determinism, and dataset helpers.
#include "workload/dataset_helpers.hpp"
#include "workload/generator.hpp"
#include "workload/signature.hpp"

#include <gtest/gtest.h>

#include <map>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace xdmodml::workload {
namespace {

using supremm::LabelSource;
using supremm::MetricId;

GeneratorConfig fast_config() {
  GeneratorConfig cfg;
  cfg.parallel = true;
  return cfg;
}

TEST(Signatures, StandardSetMatchesLariatTable) {
  const auto sigs = standard_signatures();
  const auto table = lariat::ApplicationTable::standard();
  EXPECT_EQ(sigs.size(), table.size());
  for (const auto& sig : sigs) {
    EXPECT_NE(table.find(sig.application), nullptr) << sig.application;
    // Each signature's executable must identify as its own application.
    const auto id = table.identify(sig.executable);
    EXPECT_EQ(id.application, sig.application) << sig.executable;
  }
}

TEST(Signatures, FindSignature) {
  const auto sigs = standard_signatures();
  EXPECT_EQ(find_signature(sigs, "VASP").application, "VASP");
  EXPECT_THROW(find_signature(sigs, "NOPE"), InvalidArgument);
}

TEST(Signatures, VaspDominatesMix) {
  const auto sigs = standard_signatures();
  double total = 0.0;
  double vasp = 0.0;
  for (const auto& s : sigs) {
    total += s.mix_weight;
    if (s.application == "VASP") vasp = s.mix_weight;
  }
  // Paper: VASP is ~33% of the native mixture.
  EXPECT_NEAR(vasp / total, 0.33, 0.05);
}

TEST(TemporalShapes, FactorsBoundedAndPositive) {
  for (const auto kind :
       {TemporalShape::Kind::kSteady, TemporalShape::Kind::kBurstyIo,
        TemporalShape::Kind::kPhased, TemporalShape::Kind::kRampUp,
        TemporalShape::Kind::kFrontLoaded}) {
    const TemporalShape shape{kind, 4.0, 0.5};
    for (std::size_t i = 0; i < 20; ++i) {
      EXPECT_GT(shape.compute_factor(i), 0.0);
      EXPECT_LE(shape.compute_factor(i), 1.5);
      EXPECT_GT(shape.io_factor(i), 0.0);
    }
  }
}

TEST(Generator, NativeJobsAreIdentified) {
  auto gen = WorkloadGenerator::standard(fast_config(), 7);
  const auto jobs = gen.generate_native(60);
  EXPECT_EQ(jobs.size(), 60u);
  for (const auto& job : jobs) {
    EXPECT_EQ(job.summary.label_source, LabelSource::kIdentified);
    EXPECT_FALSE(job.summary.application.empty());
    EXPECT_FALSE(job.summary.category.empty());
    EXPECT_GE(job.summary.nodes, 1u);
    EXPECT_GT(job.summary.wall_seconds, 0.0);
  }
}

TEST(Generator, JobIdsAreUnique) {
  auto gen = WorkloadGenerator::standard(fast_config(), 8);
  const auto jobs = gen.generate_native(50);
  std::set<std::uint64_t> ids;
  for (const auto& job : jobs) ids.insert(job.summary.job_id);
  EXPECT_EQ(ids.size(), jobs.size());
}

TEST(Generator, GenerateForProducesOnlyThatApp) {
  auto gen = WorkloadGenerator::standard(fast_config(), 9);
  const auto jobs = gen.generate_for("GROMACS", 20);
  for (const auto& job : jobs) {
    EXPECT_EQ(job.summary.application, "GROMACS");
  }
}

TEST(Generator, BalancedHasEqualCounts) {
  auto gen = WorkloadGenerator::standard(fast_config(), 10);
  const auto jobs = gen.generate_balanced(5);
  std::map<std::string, int> counts;
  for (const auto& job : jobs) ++counts[job.summary.application];
  EXPECT_EQ(counts.size(), gen.signatures().size());
  for (const auto& [app, n] : counts) EXPECT_EQ(n, 5) << app;
}

TEST(Generator, UncategorizedPoolHasNoApplication) {
  auto gen = WorkloadGenerator::standard(fast_config(), 11);
  const auto jobs = gen.generate_uncategorized(25);
  for (const auto& job : jobs) {
    EXPECT_EQ(job.summary.label_source, LabelSource::kUncategorized);
    EXPECT_TRUE(job.summary.application.empty());
    EXPECT_FALSE(job.summary.executable_path.empty());
  }
}

TEST(Generator, NaPoolHasNoLariatRecord) {
  auto gen = WorkloadGenerator::standard(fast_config(), 12);
  const auto jobs = gen.generate_na(25);
  for (const auto& job : jobs) {
    EXPECT_EQ(job.summary.label_source, LabelSource::kNotAvailable);
    EXPECT_TRUE(job.summary.executable_path.empty());
  }
}

TEST(Generator, DeterministicForFixedSeed) {
  auto a = WorkloadGenerator::standard(fast_config(), 42);
  auto b = WorkloadGenerator::standard(fast_config(), 42);
  const auto ja = a.generate_native(15);
  const auto jb = b.generate_native(15);
  ASSERT_EQ(ja.size(), jb.size());
  for (std::size_t i = 0; i < ja.size(); ++i) {
    EXPECT_EQ(ja[i].summary.application, jb[i].summary.application);
    EXPECT_DOUBLE_EQ(ja[i].summary.mean_of(MetricId::kCpi),
                     jb[i].summary.mean_of(MetricId::kCpi));
    EXPECT_DOUBLE_EQ(ja[i].summary.cov_of(MetricId::kMemUsed),
                     jb[i].summary.cov_of(MetricId::kMemUsed));
  }
}

TEST(Generator, ParallelMatchesSerial) {
  auto cfg_ser = fast_config();
  cfg_ser.parallel = false;
  auto a = WorkloadGenerator::standard(fast_config(), 77);
  auto b = WorkloadGenerator::standard(cfg_ser, 77);
  const auto ja = a.generate_native(10);
  const auto jb = b.generate_native(10);
  for (std::size_t i = 0; i < ja.size(); ++i) {
    EXPECT_DOUBLE_EQ(ja[i].summary.mean_of(MetricId::kFlops),
                     jb[i].summary.mean_of(MetricId::kFlops));
  }
}

TEST(Generator, ExitCodeLooselyCoupledToSuccess) {
  auto gen = WorkloadGenerator::standard(fast_config(), 13);
  const auto jobs = gen.generate_native(400);
  std::size_t succeeded_nonzero = 0;
  std::size_t succeeded = 0;
  for (const auto& job : jobs) {
    if (job.summary.application_succeeded) {
      ++succeeded;
      if (job.summary.exit_code != 0) ++succeeded_nonzero;
    }
  }
  ASSERT_GT(succeeded, 100u);
  // Script noise: a nontrivial fraction of successful jobs exit nonzero.
  const double noise_rate =
      static_cast<double>(succeeded_nonzero) / static_cast<double>(succeeded);
  EXPECT_GT(noise_rate, 0.05);
  EXPECT_LT(noise_rate, 0.25);
}

TEST(Generator, MetricsAreSane) {
  auto gen = WorkloadGenerator::standard(fast_config(), 14);
  const auto jobs = gen.generate_native(80);
  for (const auto& job : jobs) {
    const auto& s = job.summary;
    const double user = s.mean_of(MetricId::kCpuUser);
    const double sys = s.mean_of(MetricId::kCpuSystem);
    const double idle = s.mean_of(MetricId::kCpuIdle);
    EXPECT_GE(user, 0.0);
    EXPECT_NEAR(user + sys + idle, 1.0, 1e-6);
    EXPECT_GT(s.mean_of(MetricId::kCpi), 0.0);
    EXPECT_LT(s.mean_of(MetricId::kCpi), 20.0);
    EXPECT_GT(s.mean_of(MetricId::kMemUsed), 0.0);
    EXPECT_LT(s.mean_of(MetricId::kMemUsed), 32.0);  // Stampede nodes
    EXPECT_GE(s.mean_of(MetricId::kCatastrophe), 0.0);
    EXPECT_LE(s.mean_of(MetricId::kCatastrophe), 1.0 + 1e-9);
    EXPECT_GE(s.cov_of(MetricId::kMemUsed), 0.0);
  }
}

TEST(Generator, CustomSignaturesAreDiverse) {
  Rng rng(15);
  RunningStats cpi;
  for (int i = 0; i < 200; ++i) {
    const auto sig = random_custom_signature(rng);
    cpi.add(sig.cpi.median);
    EXPECT_TRUE(sig.application.empty());
  }
  // Much wider CPI spread than any single community app.
  EXPECT_GT(cpi.cov(), 0.4);
}

TEST(Platform, StampedeVsMaverickDiffer) {
  const auto a = Platform::stampede();
  const auto b = Platform::maverick();
  EXPECT_NE(a.cores_per_node, b.cores_per_node);
  EXPECT_NE(a.mem_bw_scale, b.mem_bw_scale);
  // The same signature yields shifted mean metrics across platforms.
  const auto sigs = standard_signatures();
  const auto& vasp = find_signature(sigs, "VASP");
  Rng rng(16);
  const auto draw_a = vasp.draw_job(a, rng);
  Rng rng2(16);
  const auto draw_b = vasp.draw_job(b, rng2);
  EXPECT_NE(draw_a.cpi, draw_b.cpi);  // cpi_scale differs
}

TEST(DatasetHelpers, SummaryDatasetShape) {
  auto gen = WorkloadGenerator::standard(fast_config(), 17);
  const auto jobs = gen.generate_native(40);
  const auto schema = supremm::AttributeSchema::full();
  const auto ds = build_summary_dataset(jobs, schema,
                                        supremm::label_by_application());
  EXPECT_EQ(ds.num_features(), schema.size());
  EXPECT_EQ(ds.size(), 40u);
  EXPECT_FALSE(ds.class_names.empty());
}

TEST(DatasetHelpers, TimeDatasetShape) {
  auto gen = WorkloadGenerator::standard(fast_config(), 18);
  const auto jobs = gen.generate_native(30);
  const auto names = gen.time_feature_names();
  const auto ds =
      build_time_dataset(jobs, names, supremm::label_by_application());
  EXPECT_EQ(ds.num_features(), names.size());
  EXPECT_EQ(ds.size(), 30u);
}

TEST(DatasetHelpers, CombinedDatasetConcatenates) {
  auto gen = WorkloadGenerator::standard(fast_config(), 19);
  const auto jobs = gen.generate_native(20);
  const auto schema = supremm::AttributeSchema::full();
  const auto names = gen.time_feature_names();
  const auto ds = build_combined_dataset(jobs, schema, names,
                                         supremm::label_by_application());
  EXPECT_EQ(ds.num_features(), schema.size() + names.size());
}

TEST(DatasetHelpers, PoolAndSummaries) {
  auto gen = WorkloadGenerator::standard(fast_config(), 20);
  const auto jobs = gen.generate_uncategorized(15);
  const auto schema = supremm::AttributeSchema::full();
  const auto pool = build_summary_pool(jobs, schema);
  EXPECT_EQ(pool.size(), 15u);
  EXPECT_TRUE(pool.labels.empty());
  EXPECT_EQ(summaries_of(jobs).size(), 15u);
}

}  // namespace
}  // namespace xdmodml::workload
