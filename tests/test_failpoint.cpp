// Tests for the deterministic fault-injection subsystem (util/failpoint):
// policy grammar, arming forms, action semantics, one_in determinism,
// trigger budgets, env arming and concurrent evaluation.
#include "util/failpoint.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace xdmodml::fp {
namespace {

/// Every test starts and ends with a clean registry so the global armed
/// gate never leaks between tests (or into other suites in this binary).
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
};

int guarded_call() {
  XDMODML_FAILPOINT_RETURN("test.guarded", -1);
  return 42;
}

void plain_site() { XDMODML_FAILPOINT("test.plain"); }

TEST_F(FailpointTest, ParseActions) {
  const auto err = Policy::parse("error(5)");
  EXPECT_EQ(err.action, Policy::Action::kError);
  EXPECT_EQ(err.error_code, 5);
  EXPECT_EQ(err.one_in, 0u);
  EXPECT_EQ(err.max_triggers, 0u);

  const auto ret = Policy::parse("return");
  EXPECT_EQ(ret.action, Policy::Action::kReturnEarly);

  const auto delay = Policy::parse("delay(10)");
  EXPECT_EQ(delay.action, Policy::Action::kDelay);
  EXPECT_EQ(delay.delay_ms, 10u);

  const auto noop = Policy::parse("noop");
  EXPECT_EQ(noop.action, Policy::Action::kNoop);
}

TEST_F(FailpointTest, ParseModifiers) {
  const auto p = Policy::parse("one_in(4):error(2)*3");
  EXPECT_EQ(p.action, Policy::Action::kError);
  EXPECT_EQ(p.error_code, 2);
  EXPECT_EQ(p.one_in, 4u);
  EXPECT_EQ(p.max_triggers, 3u);

  const auto q = Policy::parse("return*2");
  EXPECT_EQ(q.action, Policy::Action::kReturnEarly);
  EXPECT_EQ(q.max_triggers, 2u);

  // Surrounding whitespace is tolerated (env specs get hand-typed).
  const auto r = Policy::parse(" one_in(2):delay(1) ");
  EXPECT_EQ(r.action, Policy::Action::kDelay);
  EXPECT_EQ(r.one_in, 2u);
}

TEST_F(FailpointTest, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(Policy::parse(""), InvalidArgument);
  EXPECT_THROW(Policy::parse("bogus"), InvalidArgument);
  // Bare `error` is accepted shorthand for error(1).
  EXPECT_EQ(Policy::parse("error").error_code, 1);
  EXPECT_THROW(Policy::parse("error()"), InvalidArgument);
  EXPECT_THROW(Policy::parse("error(x)"), InvalidArgument);
  EXPECT_THROW(Policy::parse("error(1)x"), InvalidArgument);
  EXPECT_THROW(Policy::parse("error(1)*"), InvalidArgument);
  EXPECT_THROW(Policy::parse("one_in():error(1)"), InvalidArgument);
  EXPECT_THROW(Policy::parse("one_in(2)error(1)"), InvalidArgument);
  EXPECT_THROW(Policy::parse("delay(-3)"), InvalidArgument);
}

TEST_F(FailpointTest, UnarmedSitesAreInertAndUncounted) {
  EXPECT_FALSE(armed());
  for (int i = 0; i < 10; ++i) {
    plain_site();
    EXPECT_EQ(guarded_call(), 42);
  }
  // The registry was never consulted: arming afterwards shows zero
  // lifetime evaluations for both sites.
  arm("test.plain", Policy::parse("noop"));
  EXPECT_EQ(site_stats("test.plain").evaluations, 0u);
  EXPECT_EQ(site_stats("test.guarded").evaluations, 0u);
}

TEST_F(FailpointTest, ErrorPolicyThrowsWithSiteAndCode) {
  arm("test.plain", Policy::parse("error(17)"));
  EXPECT_TRUE(armed());
  try {
    plain_site();
    FAIL() << "expected FailpointError";
  } catch (const FailpointError& e) {
    EXPECT_EQ(e.site(), "test.plain");
    EXPECT_EQ(e.code(), 17);
    EXPECT_NE(std::string(e.what()).find("test.plain"), std::string::npos);
  }
  const auto stats = site_stats("test.plain");
  EXPECT_EQ(stats.evaluations, 1u);
  EXPECT_EQ(stats.triggers, 1u);
}

TEST_F(FailpointTest, ReturnPolicyTakesTheReturnArm) {
  arm("test.guarded", Policy::parse("return"));
  EXPECT_EQ(guarded_call(), -1);
  disarm("test.guarded");
  EXPECT_EQ(guarded_call(), 42);
}

TEST_F(FailpointTest, ReturnPolicyIsANoopAtPlainSites) {
  // XDMODML_FAILPOINT has no return arm; a return policy must not turn
  // into a throw or a hang there.
  arm("test.plain", Policy::parse("return"));
  EXPECT_NO_THROW(plain_site());
  EXPECT_EQ(site_stats("test.plain").triggers, 1u);
}

TEST_F(FailpointTest, TriggeredHelperReportsAndCounts) {
  arm("test.helper", Policy::parse("return*1"));
  EXPECT_TRUE(triggered("test.helper"));
  EXPECT_FALSE(triggered("test.helper"));  // budget spent
  EXPECT_EQ(site_stats("test.helper").triggers, 1u);
  EXPECT_EQ(site_stats("test.helper").evaluations, 2u);
}

TEST_F(FailpointTest, DelayPolicyStalls) {
  arm("test.plain", Policy::parse("delay(20)"));
  const auto start = std::chrono::steady_clock::now();
  plain_site();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 20);
}

TEST_F(FailpointTest, TriggerBudgetStopsFiring) {
  arm("test.plain", Policy::parse("error(1)*2"));
  EXPECT_THROW(plain_site(), FailpointError);
  EXPECT_THROW(plain_site(), FailpointError);
  for (int i = 0; i < 5; ++i) EXPECT_NO_THROW(plain_site());
  const auto stats = site_stats("test.plain");
  EXPECT_EQ(stats.triggers, 2u);
  EXPECT_EQ(stats.evaluations, 7u);
}

TEST_F(FailpointTest, OneInIsDeterministicPerSeed) {
  const auto pattern_for = [](std::uint64_t seed) {
    reset();
    arm("test.guarded", Policy::parse("one_in(3):return"), seed);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) fired.push_back(guarded_call() == -1);
    return fired;
  };
  const auto a = pattern_for(42);
  const auto b = pattern_for(42);
  EXPECT_EQ(a, b);  // same seed → identical fire/skip sequence

  // The rate is honest: ~1/3 of 200 evaluations, with slack.
  const auto fires = static_cast<std::size_t>(
      std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires, 30u);
  EXPECT_LT(fires, 110u);

  // A different seed almost surely produces a different sequence.
  EXPECT_NE(pattern_for(43), a);
}

TEST_F(FailpointTest, ArmFromSpecArmsEverySite) {
  const auto armed_count =
      arm_from_spec("test.a=error(1);test.b=return*1; test.c = noop");
  EXPECT_EQ(armed_count, 3u);
  const auto sites = armed_sites();
  EXPECT_EQ(sites.size(), 3u);
  EXPECT_THROW(XDMODML_FAILPOINT("test.a"), FailpointError);
  EXPECT_TRUE(triggered("test.b"));
  EXPECT_NO_THROW(XDMODML_FAILPOINT("test.c"));
  EXPECT_THROW(arm_from_spec("test.d"), InvalidArgument);        // no '='
  EXPECT_THROW(arm_from_spec("test.d=nope"), InvalidArgument);   // bad action
  EXPECT_THROW(arm_from_spec("=error(1)"), InvalidArgument);     // no site
}

TEST_F(FailpointTest, ArmFromEnvReadsSpecAndSeed) {
  ::setenv("XDMODML_FAILPOINTS", "test.env=error(9)", 1);
  ::setenv("XDMODML_FAILPOINT_SEED", "7", 1);
  EXPECT_EQ(arm_from_env(), 1u);
  try {
    XDMODML_FAILPOINT("test.env");
    FAIL() << "expected FailpointError";
  } catch (const FailpointError& e) {
    EXPECT_EQ(e.code(), 9);
  }
  ::unsetenv("XDMODML_FAILPOINTS");
  ::unsetenv("XDMODML_FAILPOINT_SEED");
  reset();
  EXPECT_EQ(arm_from_env(), 0u);
  EXPECT_FALSE(armed());
}

TEST_F(FailpointTest, DisarmAllQuiescesTheGate) {
  arm_from_spec("test.a=error(1);test.b=return");
  EXPECT_TRUE(armed());
  disarm_all();
  EXPECT_FALSE(armed());
  EXPECT_NO_THROW(plain_site());
  // Counters survive disarm (until reset).
  arm("test.a", Policy::parse("noop"));
  EXPECT_NO_THROW(XDMODML_FAILPOINT("test.a"));
}

TEST_F(FailpointTest, RearmResetsBudgetKeepsLifetimeCounters) {
  arm("test.plain", Policy::parse("error(1)*1"));
  EXPECT_THROW(plain_site(), FailpointError);
  EXPECT_NO_THROW(plain_site());  // budget spent
  arm("test.plain", Policy::parse("error(2)*1"));  // re-arm: fresh budget
  EXPECT_THROW(plain_site(), FailpointError);
  const auto stats = site_stats("test.plain");
  EXPECT_EQ(stats.triggers, 2u);
  EXPECT_EQ(stats.evaluations, 3u);
}

TEST_F(FailpointTest, ConcurrentEvaluationIsExactlyCounted) {
  constexpr int kThreads = 8;
  constexpr int kEvalsPerThread = 1000;
  constexpr std::uint64_t kBudget = 100;
  arm("test.concurrent",
      Policy::parse("one_in(3):error(1)*" + std::to_string(kBudget)));
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> caught{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&caught] {
      for (int i = 0; i < kEvalsPerThread; ++i) {
        try {
          XDMODML_FAILPOINT("test.concurrent");
        } catch (const FailpointError&) {
          caught.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto stats = site_stats("test.concurrent");
  EXPECT_EQ(stats.evaluations,
            static_cast<std::uint64_t>(kThreads) * kEvalsPerThread);
  // The trigger budget is enforced exactly even under contention, and
  // every trigger surfaced as exactly one caught exception.
  EXPECT_EQ(stats.triggers, kBudget);
  EXPECT_EQ(caught.load(), kBudget);
}

}  // namespace
}  // namespace xdmodml::fp
