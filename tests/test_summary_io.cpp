// Round-trip tests for the job-summary CSV interchange format.
#include "supremm/summary_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"
#include "workload/dataset_helpers.hpp"
#include "workload/generator.hpp"

namespace xdmodml::supremm {
namespace {

TEST(SummaryIo, HeaderShape) {
  const auto header = jobs_csv_header();
  // 11 accounting fields + 26 means + 22 COVs.
  EXPECT_EQ(header.size(), 59u);
  EXPECT_EQ(header.front(), "job_id");
  EXPECT_EQ(header[11], "CPU_USER");
  EXPECT_EQ(header.back(), "LOCAL_DISK_WRITE_IOS_COV");
}

TEST(SummaryIo, RoundTripPreservesEverything) {
  auto gen = workload::WorkloadGenerator::standard({}, 77);
  auto jobs = workload::summaries_of(gen.generate_native(25));
  auto uncat = workload::summaries_of(gen.generate_uncategorized(5));
  auto na = workload::summaries_of(gen.generate_na(5));
  jobs.insert(jobs.end(), uncat.begin(), uncat.end());
  jobs.insert(jobs.end(), na.begin(), na.end());

  std::ostringstream out;
  write_jobs_csv(out, jobs);
  std::istringstream in(out.str());
  const auto loaded = read_jobs_csv(in);

  ASSERT_EQ(loaded.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& a = jobs[i];
    const auto& b = loaded[i];
    EXPECT_EQ(a.job_id, b.job_id);
    EXPECT_EQ(a.executable_path, b.executable_path);
    EXPECT_EQ(a.application, b.application);
    EXPECT_EQ(a.category, b.category);
    EXPECT_EQ(a.label_source, b.label_source);
    EXPECT_EQ(a.nodes, b.nodes);
    EXPECT_EQ(a.cores_per_node, b.cores_per_node);
    EXPECT_DOUBLE_EQ(a.wall_seconds, b.wall_seconds);
    EXPECT_DOUBLE_EQ(a.start_epoch_seconds, b.start_epoch_seconds);
    EXPECT_EQ(a.exit_code, b.exit_code);
    EXPECT_EQ(a.application_succeeded, b.application_succeeded);
    for (std::size_t m = 0; m < kNumMetrics; ++m) {
      EXPECT_DOUBLE_EQ(a.means[m], b.means[m]) << "metric " << m;
      if (metric_catalog()[m].has_cov) {
        EXPECT_DOUBLE_EQ(a.covs[m], b.covs[m]) << "cov " << m;
      }
    }
  }
}

TEST(SummaryIo, RejectsWrongHeader) {
  std::istringstream in("foo,bar\n1,2\n");
  EXPECT_THROW(read_jobs_csv(in), InvalidArgument);
}

TEST(SummaryIo, RejectsBadNumericField) {
  auto gen = workload::WorkloadGenerator::standard({}, 78);
  const auto jobs = workload::summaries_of(gen.generate_native(1));
  std::ostringstream out;
  write_jobs_csv(out, jobs);
  auto text = out.str();
  // Corrupt the wall_seconds field of the data row.
  const auto row_start = text.find('\n') + 1;
  auto pos = row_start;
  for (int commas = 0; commas < 7; ++pos) {
    if (text[pos] == ',') ++commas;
  }
  text.insert(pos, "x");
  std::istringstream in(text);
  EXPECT_THROW(read_jobs_csv(in), std::exception);
}

TEST(SummaryIo, EmptyDocumentRoundTrips) {
  std::ostringstream out;
  write_jobs_csv(out, {});
  std::istringstream in(out.str());
  EXPECT_TRUE(read_jobs_csv(in).empty());
}

}  // namespace
}  // namespace xdmodml::supremm
