// Tests for the PCP-style continuous archive and window extraction:
// the collector-agnostic summarization claim.
#include "taccstats/pcp_archive.hpp"

#include <gtest/gtest.h>

#include "taccstats/aggregator.hpp"
#include "util/error.hpp"

namespace xdmodml::taccstats {
namespace {

using supremm::MetricId;

NodeRateModel busy_model(std::uint32_t cores) {
  return [cores](std::size_t, std::size_t) {
    NodeInterval iv;
    iv.core_user_fraction.assign(cores, 0.85);
    iv.system_fraction_of_rest = 0.4;
    iv.mem_used_gb = 7.0;
    iv.rates[static_cast<std::size_t>(CounterId::kClockCycles)] = 2.4e9;
    iv.rates[static_cast<std::size_t>(CounterId::kInstructions)] = 1.6e9;
    iv.rates[static_cast<std::size_t>(CounterId::kL1dLoads)] = 8e8;
    iv.rates[static_cast<std::size_t>(CounterId::kIbRxBytes)] = 2e7;
    return iv;
  };
}

CollectorConfig pcp_config() {
  CollectorConfig cfg;
  cfg.interval_seconds = 60.0;  // pmlogger logs more often than cron
  cfg.cores_per_node = 4;
  cfg.counter_noise = 0.0;
  return cfg;
}

TEST(PcpArchive, CoversAllPhases) {
  Rng rng(1);
  const auto archive = PcpArchive::record(busy_model(4), 0, 1800.0, 600.0,
                                          600.0, pcp_config(), rng);
  EXPECT_NEAR(archive.duration(), 3000.0, 1.0);
  // 3000s at 60s per sample + prolog.
  EXPECT_EQ(archive.samples().size(), 51u);
}

TEST(PcpArchive, WindowExtractionRebasesTimestamps) {
  Rng rng(2);
  const auto archive = PcpArchive::record(busy_model(4), 0, 1800.0, 600.0,
                                          600.0, pcp_config(), rng);
  const auto window = archive.extract_window(600.0, 2400.0);
  ASSERT_GE(window.size(), 2u);
  EXPECT_DOUBLE_EQ(window.front().timestamp, 0.0);
  EXPECT_NEAR(window.back().timestamp, 1800.0, 60.0);
  for (std::size_t i = 1; i < window.size(); ++i) {
    EXPECT_GT(window[i].timestamp, window[i - 1].timestamp);
  }
}

TEST(PcpArchive, ExtractedWindowAggregatesLikeDirectCollection) {
  // The same ground truth measured by (a) the job-aligned TACC_Stats
  // collector and (b) a PCP archive windowed to the job must agree.
  Rng rng_a(3);
  Rng rng_b(3);
  const auto cfg = pcp_config();
  const double busy = 1800.0;

  std::vector<std::vector<RawSample>> direct;
  direct.push_back(collect_node(busy_model(4), 0, busy, cfg, rng_a));
  const auto direct_result = aggregate_job(direct, cfg);

  const auto archive = PcpArchive::record(busy_model(4), 0, busy, 600.0,
                                          600.0, cfg, rng_b);
  std::vector<std::vector<RawSample>> windowed;
  windowed.push_back(archive.extract_window(600.0, 600.0 + busy));
  const auto pcp_result = aggregate_job(windowed, cfg);

  EXPECT_NEAR(pcp_result.job.mean_of(MetricId::kCpi),
              direct_result.job.mean_of(MetricId::kCpi), 0.03);
  EXPECT_NEAR(pcp_result.job.mean_of(MetricId::kCpuUser),
              direct_result.job.mean_of(MetricId::kCpuUser), 0.03);
  EXPECT_NEAR(pcp_result.job.mean_of(MetricId::kIbReceive),
              direct_result.job.mean_of(MetricId::kIbReceive), 0.7);
  EXPECT_NEAR(pcp_result.job.mean_of(MetricId::kMemUsed),
              direct_result.job.mean_of(MetricId::kMemUsed), 0.3);
}

TEST(PcpArchive, IdlePaddingStaysOutsideWindow) {
  Rng rng(4);
  const auto archive = PcpArchive::record(busy_model(4), 0, 1800.0, 600.0,
                                          600.0, pcp_config(), rng);
  // A window over the *idle* head must show near-zero activity.
  std::vector<std::vector<RawSample>> idle;
  idle.push_back(archive.extract_window(0.0, 540.0));
  const auto result = aggregate_job(idle, pcp_config());
  EXPECT_LT(result.job.mean_of(MetricId::kCpuUser), 0.05);
  EXPECT_LT(result.job.mean_of(MetricId::kMemUsed), 1.0);
}

TEST(PcpArchive, Validation) {
  Rng rng(5);
  const auto archive = PcpArchive::record(busy_model(4), 0, 600.0, 120.0,
                                          120.0, pcp_config(), rng);
  EXPECT_THROW(archive.extract_window(500.0, 100.0), InvalidArgument);
  EXPECT_THROW(archive.extract_window(0.0, 1e6), InvalidArgument);
  EXPECT_THROW(PcpArchive::record(busy_model(4), 0, 0.0, 1.0, 1.0,
                                  pcp_config(), rng),
               InvalidArgument);
}

}  // namespace
}  // namespace xdmodml::taccstats
