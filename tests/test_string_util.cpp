// Tests for string helpers.
#include "util/string_util.hpp"

#include <gtest/gtest.h>

namespace xdmodml {
namespace {

TEST(StringUtil, ToLower) {
  EXPECT_EQ(to_lower("VaSp-5.3_X"), "vasp-5.3_x");
  EXPECT_EQ(to_lower(""), "");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StringUtil, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a:b::c", ':'),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("x,", ','), (std::vector<std::string>{"x", ""}));
}

TEST(StringUtil, StartsEndsWith) {
  EXPECT_TRUE(starts_with("/opt/apps/vasp", "/opt"));
  EXPECT_FALSE(starts_with("vasp", "/opt"));
  EXPECT_TRUE(ends_with("namd2", "2"));
  EXPECT_FALSE(ends_with("a", "ab"));
}

TEST(StringUtil, Basename) {
  EXPECT_EQ(basename("/opt/apps/vasp/vasp_std"), "vasp_std");
  EXPECT_EQ(basename("a.out"), "a.out");
  EXPECT_EQ(basename("/trailing/"), "");
}

TEST(StringUtil, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

}  // namespace
}  // namespace xdmodml
