// Tests for the error types and the XDMODML_CHECK macro.
#include "util/error.hpp"

#include <gtest/gtest.h>

namespace xdmodml {
namespace {

TEST(Error, HierarchyIsCatchable) {
  EXPECT_THROW(throw InvalidArgument("x"), Error);
  EXPECT_THROW(throw ComputeError("x"), Error);
  EXPECT_THROW(throw Error("x"), std::runtime_error);
}

TEST(Check, PassesOnTrue) {
  EXPECT_NO_THROW(XDMODML_CHECK(1 + 1 == 2, "math works"));
}

TEST(Check, ThrowsInvalidArgumentOnFalse) {
  EXPECT_THROW(XDMODML_CHECK(false, "always fails"), InvalidArgument);
}

TEST(Check, MessageCarriesExpressionAndText) {
  try {
    XDMODML_CHECK(2 > 3, "two is not greater");
    FAIL() << "check did not throw";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("two is not greater"), std::string::npos);
    EXPECT_NE(what.find("test_error.cpp"), std::string::npos);
  }
}

TEST(Check, EvaluatesExpressionOnce) {
  int calls = 0;
  const auto bump = [&calls] {
    ++calls;
    return true;
  };
  XDMODML_CHECK(bump(), "side effect");
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace xdmodml
