// Tests for the SMO solver and kernel-row cache.
#include "ml/smo.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "ml/kernel.hpp"
#include "util/error.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace xdmodml::ml {
namespace {

/// Builds an SMO problem for a hard-margin-ish linear SVM over given points.
struct LinearProblemFixture {
  Matrix X;
  std::vector<signed char> y;
  std::vector<double> p;
  std::vector<double> c;
  Kernel kernel = Kernel::linear();

  SmoProblem problem() {
    SmoProblem prob;
    prob.n = X.rows();
    prob.p = p;
    prob.y = y;
    prob.c = c;
    prob.kernel_row = [this](std::size_t i, std::span<double> out) {
      for (std::size_t j = 0; j < X.rows(); ++j) {
        out[j] = kernel(X.row(i), X.row(j));
      }
    };
    return prob;
  }

  void add(double x0, double x1, int label) {
    X.append_row(std::vector<double>{x0, x1});
    y.push_back(static_cast<signed char>(label));
    p.push_back(-1.0);
    c.push_back(10.0);
  }

  double decision(const SmoResult& r, std::span<const double> x) {
    double f = -r.rho;
    for (std::size_t i = 0; i < X.rows(); ++i) {
      f += r.alpha[i] * static_cast<double>(y[i]) * kernel(X.row(i), x);
    }
    return f;
  }
};

TEST(Smo, SolvesTinySeparableProblem) {
  LinearProblemFixture fx;
  fx.add(2.0, 0.0, 1);
  fx.add(3.0, 1.0, 1);
  fx.add(-2.0, 0.0, -1);
  fx.add(-3.0, -1.0, -1);
  const auto result = solve_smo(fx.problem());
  EXPECT_TRUE(result.converged);
  // Equality constraint Σ y_i a_i = 0.
  double balance = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    balance += result.alpha[i] * static_cast<double>(fx.y[i]);
    EXPECT_GE(result.alpha[i], 0.0);
    EXPECT_LE(result.alpha[i], 10.0);
  }
  EXPECT_NEAR(balance, 0.0, 1e-9);
  // Correct sign on both sides.
  EXPECT_GT(fx.decision(result, std::vector<double>{2.5, 0.5}), 0.0);
  EXPECT_LT(fx.decision(result, std::vector<double>{-2.5, -0.5}), 0.0);
}

TEST(Smo, MarginIsMaximal) {
  // Two points at x = ±1: the maximum-margin hyperplane is x = 0 and the
  // analytic dual solution is alpha = [0.5, 0.5], w = 1, rho = 0.
  LinearProblemFixture fx;
  fx.add(1.0, 0.0, 1);
  fx.add(-1.0, 0.0, -1);
  const auto result = solve_smo(fx.problem());
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.alpha[0], 0.5, 1e-6);
  EXPECT_NEAR(result.alpha[1], 0.5, 1e-6);
  EXPECT_NEAR(result.rho, 0.0, 1e-6);
  EXPECT_NEAR(fx.decision(result, std::vector<double>{1.0, 0.0}), 1.0,
              1e-6);
}

TEST(Smo, KktConditionsHoldAtSolution) {
  // KKT complementarity on a random soft-margin problem:
  //   y_i f(x_i) > 1  =>  a_i = 0
  //   y_i f(x_i) < 1  =>  a_i = C
  //   0 < a_i < C     =>  y_i f(x_i) = 1
  Rng rng(21);
  LinearProblemFixture fx;
  for (int i = 0; i < 80; ++i) {
    const int label = i % 2 == 0 ? 1 : -1;
    fx.add(rng.normal(label * 1.0, 1.5), rng.normal(0.0, 1.0), label);
  }
  for (auto& ci : fx.c) ci = 1.0;
  SmoConfig cfg;
  cfg.tolerance = 1e-4;
  const auto result = solve_smo(fx.problem(), cfg);
  EXPECT_TRUE(result.converged);
  const double kkt_tol = 1e-2;
  for (std::size_t i = 0; i < fx.X.rows(); ++i) {
    const double margin = static_cast<double>(fx.y[i]) *
                          fx.decision(result, fx.X.row(i));
    if (margin > 1.0 + kkt_tol) {
      EXPECT_NEAR(result.alpha[i], 0.0, 1e-9) << "row " << i;
    } else if (margin < 1.0 - kkt_tol) {
      EXPECT_NEAR(result.alpha[i], 1.0, 1e-9) << "row " << i;
    } else if (result.alpha[i] > 1e-6 && result.alpha[i] < 1.0 - 1e-6) {
      EXPECT_NEAR(margin, 1.0, kkt_tol) << "row " << i;
    }
  }
}

TEST(Smo, RbfSolvesNonlinearRing) {
  // Inner cluster vs outer ring — linearly inseparable, RBF separable.
  Rng rng(3);
  Matrix X;
  std::vector<signed char> y;
  for (int i = 0; i < 60; ++i) {
    const double angle = rng.uniform(0.0, 6.283);
    const double radius = i % 2 == 0 ? rng.uniform(0.0, 1.0)
                                     : rng.uniform(3.0, 4.0);
    X.append_row(std::vector<double>{radius * std::cos(angle),
                                     radius * std::sin(angle)});
    y.push_back(i % 2 == 0 ? 1 : -1);
  }
  const Kernel kernel = Kernel::rbf(0.5);
  std::vector<double> p(X.rows(), -1.0);
  std::vector<double> c(X.rows(), 100.0);
  SmoProblem prob;
  prob.n = X.rows();
  prob.p = p;
  prob.y = y;
  prob.c = c;
  prob.kernel_row = [&](std::size_t i, std::span<double> out) {
    for (std::size_t j = 0; j < X.rows(); ++j) {
      out[j] = kernel(X.row(i), X.row(j));
    }
  };
  const auto result = solve_smo(prob);
  EXPECT_TRUE(result.converged);
  // All training points classified correctly.
  for (std::size_t i = 0; i < X.rows(); ++i) {
    double f = -result.rho;
    for (std::size_t j = 0; j < X.rows(); ++j) {
      f += result.alpha[j] * static_cast<double>(y[j]) *
           kernel(X.row(j), X.row(i));
    }
    EXPECT_GT(f * static_cast<double>(y[i]), 0.0);
  }
}

TEST(Smo, ObjectiveIsNegativeForNontrivialSolution) {
  LinearProblemFixture fx;
  fx.add(1.0, 0.0, 1);
  fx.add(-1.0, 0.0, -1);
  const auto result = solve_smo(fx.problem());
  // Dual objective 1/2 aQa - Σa at optimum is negative when any a > 0.
  EXPECT_LT(result.objective, 0.0);
}

TEST(Smo, IterationCapReported) {
  LinearProblemFixture fx;
  for (int i = 0; i < 20; ++i) {
    fx.add(static_cast<double>(i % 5), static_cast<double>(i % 3),
           i % 2 == 0 ? 1 : -1);
  }
  SmoConfig cfg;
  cfg.max_iterations = 1;
  const auto result = solve_smo(fx.problem(), cfg);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 1u);
}

TEST(Smo, ValidatesInputs) {
  SmoProblem empty;
  EXPECT_THROW(solve_smo(empty), InvalidArgument);
  LinearProblemFixture fx;
  fx.add(1.0, 0.0, 1);
  fx.add(-1.0, 0.0, -1);
  auto prob = fx.problem();
  prob.kernel_row = nullptr;
  EXPECT_THROW(solve_smo(prob), InvalidArgument);
}

// Shrinking must be a pure optimization: the shrunk and unshrunk solvers
// have to land on the same solution (alphas, rho, objective) because the
// active-set heuristic only skips variables whose KKT conditions already
// pin them to a bound, and the gradient is reconstructed before the final
// convergence check.
TEST(Smo, ShrinkingMatchesUnshrunkSolver) {
  for (const std::uint64_t seed : {7u, 21u, 1234u}) {
    Rng rng(seed);
    Matrix X;
    std::vector<signed char> y;
    for (int i = 0; i < 120; ++i) {
      const int label = i % 2 == 0 ? 1 : -1;
      X.append_row(std::vector<double>{rng.normal(label * 0.8, 1.2),
                                       rng.normal(0.0, 1.0),
                                       rng.normal(label * 0.3, 0.7)});
      y.push_back(static_cast<signed char>(label));
    }
    std::vector<double> p(X.rows(), -1.0);
    std::vector<double> c(X.rows(), 10.0);
    const Kernel kernel = Kernel::rbf(0.4);
    const GramRowEngine engine(X, kernel);
    SmoProblem prob;
    prob.n = X.rows();
    prob.p = p;
    prob.y = y;
    prob.c = c;
    prob.kernel_row = [&engine](std::size_t i, std::span<double> out) {
      engine.fill_row(i, out);
    };
    prob.kernel_diag = [&engine](std::size_t i) {
      return engine.diagonal(i);
    };

    // Both arms run at a tight duality-gap tolerance: the RBF Gram matrix
    // on distinct points is strictly PD, so the dual optimum is unique
    // and both solvers must land on it — the default 1e-3 gap would leave
    // each arm at a different approximate solution.
    SmoConfig off;
    off.shrinking = false;
    off.tolerance = 1e-9;
    SmoConfig on;
    on.shrinking = true;
    on.tolerance = 1e-9;
    on.shrink_interval = 10;  // force many shrink passes on a small problem
    const auto r_off = solve_smo(prob, off);
    const auto r_on = solve_smo(prob, on);
    ASSERT_TRUE(r_off.converged);
    ASSERT_TRUE(r_on.converged);
    EXPECT_NEAR(r_on.rho, r_off.rho, 1e-6) << "seed " << seed;
    EXPECT_NEAR(r_on.objective, r_off.objective, 1e-6) << "seed " << seed;
    for (std::size_t i = 0; i < X.rows(); ++i) {
      EXPECT_NEAR(r_on.alpha[i], r_off.alpha[i], 1e-6)
          << "seed " << seed << " alpha " << i;
    }
  }
}

TEST(Smo, ShrinkingHandlesIterationCapWhileShrunk) {
  // Hitting the cap with variables still shrunk must reconstruct the
  // gradient so rho/objective are computed from a consistent state.
  Rng rng(5);
  Matrix X;
  std::vector<signed char> y;
  for (int i = 0; i < 60; ++i) {
    const int label = i % 2 == 0 ? 1 : -1;
    X.append_row(std::vector<double>{rng.normal(label * 1.0, 1.0),
                                     rng.normal(0.0, 1.0)});
    y.push_back(static_cast<signed char>(label));
  }
  std::vector<double> p(X.rows(), -1.0);
  std::vector<double> c(X.rows(), 5.0);
  const Kernel kernel = Kernel::rbf(0.5);
  const GramRowEngine engine(X, kernel);
  SmoProblem prob;
  prob.n = X.rows();
  prob.p = p;
  prob.y = y;
  prob.c = c;
  prob.kernel_row = [&engine](std::size_t i, std::span<double> out) {
    engine.fill_row(i, out);
  };
  SmoConfig cfg;
  cfg.shrinking = true;
  cfg.shrink_interval = 5;
  cfg.max_iterations = 40;
  const auto r = solve_smo(prob, cfg);
  EXPECT_FALSE(r.converged);
  EXPECT_TRUE(std::isfinite(r.rho));
  EXPECT_TRUE(std::isfinite(r.objective));
}

TEST(SharedGramCache, SlicedRowsMatchDirectComputation) {
  Rng rng(17);
  Matrix X;
  for (int i = 0; i < 24; ++i) {
    X.append_row(std::vector<double>{rng.normal(0.0, 1.0),
                                     rng.normal(1.0, 2.0),
                                     rng.normal(-1.0, 0.5)});
  }
  const Kernel kernel = Kernel::rbf(0.3);
  // The float64 arm reproduces the scalar kernel exactly; the float32
  // default is only one rounding away (well inside the SMO tolerance).
  struct Arm {
    GramPrecision precision;
    double tol;
  };
  for (const auto arm : {Arm{GramPrecision::kFloat64, 1e-12},
                         Arm{GramPrecision::kFloat32, 1e-6}}) {
    SharedGramCache cache(X, kernel, 4, arm.precision);  // force evictions
    for (std::size_t i = 0; i < X.rows(); ++i) {
      const auto row = cache.row(i);
      ASSERT_EQ(row->size(), X.rows());
      for (std::size_t j = 0; j < X.rows(); ++j) {
        EXPECT_NEAR((*row)[j], kernel(X.row(i), X.row(j)), arm.tol);
      }
      EXPECT_NEAR(cache.diagonal(i), kernel(X.row(i), X.row(i)), 1e-12);
    }
    // A row handed out before eviction stays valid afterwards.
    const auto pinned = cache.row(0);
    for (std::size_t i = 1; i < X.rows(); ++i) (void)cache.row(i);
    EXPECT_NEAR((*pinned)[5], kernel(X.row(0), X.row(5)), arm.tol);
    EXPECT_GT(cache.misses(), 0u);
  }
}

TEST(KernelRowCache, ComputesAndCaches) {
  int computations = 0;
  KernelRowCache cache(4, 2, [&](std::size_t i, std::span<double> out) {
    ++computations;
    for (std::size_t j = 0; j < out.size(); ++j) {
      out[j] = static_cast<double>(i * 10 + j);
    }
  });
  const auto row1 = cache.row(1);
  EXPECT_DOUBLE_EQ(row1[3], 13.0);
  (void)cache.row(1);  // hit
  EXPECT_EQ(computations, 1);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(KernelRowCache, EvictsLeastRecentlyUsed) {
  int computations = 0;
  KernelRowCache cache(4, 2, [&](std::size_t, std::span<double> out) {
    ++computations;
    for (auto& v : out) v = 0.0;
  });
  (void)cache.row(0);
  (void)cache.row(1);
  (void)cache.row(0);  // refresh 0; 1 becomes LRU
  (void)cache.row(2);  // evicts 1
  (void)cache.row(0);  // still cached
  EXPECT_EQ(computations, 3);
  (void)cache.row(1);  // must recompute
  EXPECT_EQ(computations, 4);
}

TEST(KernelRowCache, RejectsOutOfRange) {
  KernelRowCache cache(2, 2, [](std::size_t, std::span<double> out) {
    for (auto& v : out) v = 0.0;
  });
  EXPECT_THROW(cache.row(2), InvalidArgument);
}

}  // namespace
}  // namespace xdmodml::ml
