// Tests for the SUPReMM metric catalogue and attribute schema.
#include "supremm/metrics.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"

namespace xdmodml::supremm {
namespace {

TEST(MetricCatalog, CompleteAndConsistent) {
  const auto& catalog = metric_catalog();
  EXPECT_EQ(catalog.size(), kNumMetrics);
  std::set<std::string> names;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(catalog[i].id), i)
        << "catalog order must match MetricId order";
    EXPECT_NE(catalog[i].name, nullptr);
    EXPECT_TRUE(names.insert(catalog[i].name).second)
        << "duplicate metric name " << catalog[i].name;
  }
}

TEST(MetricCatalog, PaperTable1MetricsPresent) {
  // Spot-check the metrics the paper's Table 1 lists.
  for (const char* name :
       {"CPU_SYSTEM", "CPU_USER", "CPU_IDLE", "CPLD", "CPI", "MEMORY_USED",
        "MEMORY_TRANSFERRED", "ETHERNET_TRANSMIT", "INFINIBAND_RECEIVE",
        "HOME_WRITE", "SCRATCH_WRITE", "LUSTRE_TRANSMIT",
        "LOCAL_DISK_READ_IOS", "LOCAL_DISK_READ_BYTES", "NODES"}) {
    bool found = false;
    for (const auto& info : metric_catalog()) {
      if (std::string(info.name) == name) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "missing Table 1 metric " << name;
  }
}

TEST(MetricCatalog, LookupHelpers) {
  EXPECT_EQ(metric_name(MetricId::kCpi), "CPI");
  EXPECT_EQ(metric_info(MetricId::kMemUsed).category,
            MetricCategory::kMemory);
  EXPECT_STREQ(category_name(MetricCategory::kIo), "IO");
}

TEST(Attribute, NamesCovSuffix) {
  const Attribute mean_attr{MetricId::kCpuUser, false};
  const Attribute cov_attr{MetricId::kCpuUser, true};
  EXPECT_EQ(mean_attr.name(), "CPU_USER");
  EXPECT_EQ(cov_attr.name(), "CPU_USER_COV");
}

TEST(AttributeSchema, FullHas48Attributes) {
  const auto schema = AttributeSchema::full();
  // 26 means + 22 COV attributes (catastrophe, imbalance, nodes and
  // cores/node have no COV).
  EXPECT_EQ(schema.size(), 48u);
  std::size_t covs = 0;
  for (const auto& a : schema.attributes()) covs += a.is_cov ? 1 : 0;
  EXPECT_EQ(covs, 22u);
}

TEST(AttributeSchema, MeansComeFirst) {
  const auto schema = AttributeSchema::full();
  bool seen_cov = false;
  for (const auto& a : schema.attributes()) {
    if (a.is_cov) seen_cov = true;
    EXPECT_FALSE(seen_cov && !a.is_cov) << "mean after a COV attribute";
  }
}

TEST(AttributeSchema, NamesUniqueAndIndexable) {
  const auto schema = AttributeSchema::full();
  const auto names = schema.names();
  const std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
  EXPECT_EQ(schema.index_of("CPI"), 3u);
  EXPECT_THROW(schema.index_of("NOT_A_METRIC"), InvalidArgument);
}

TEST(AttributeSchema, SelectSubset) {
  const auto schema = AttributeSchema::full();
  const std::vector<std::size_t> keep{schema.index_of("CPI"),
                                      schema.index_of("MEMORY_USED_COV")};
  const auto sub = schema.select(keep);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.names()[1], "MEMORY_USED_COV");
  const std::vector<std::size_t> bad{99};
  EXPECT_THROW(schema.select(bad), InvalidArgument);
}

TEST(AttributeSchema, WithoutCovDropsAllCovs) {
  const auto schema = AttributeSchema::full().without_cov();
  EXPECT_EQ(schema.size(), 26u);
  for (const auto& a : schema.attributes()) EXPECT_FALSE(a.is_cov);
}

TEST(AttributeSchema, RejectsCovOfCovLessMetric) {
  EXPECT_THROW(AttributeSchema({{MetricId::kNodes, true}}),
               InvalidArgument);
  EXPECT_THROW(AttributeSchema({}), InvalidArgument);
}

}  // namespace
}  // namespace xdmodml::supremm
