// Integration tests for the core JobClassifier pipeline on generated
// workloads, plus the importance / predictor-sweep analyses.
#include "core/importance.hpp"
#include "core/job_classifier.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "workload/dataset_helpers.hpp"
#include "workload/generator.hpp"

namespace xdmodml::core {
namespace {

using workload::GeneratedJob;
using workload::WorkloadGenerator;

/// Shared fixture data: one generator, modest train/test pools over a
/// subset of applications so the SVM stays fast.
class JobClassifierTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    gen_ = new WorkloadGenerator(WorkloadGenerator::standard({}, 99));
    const std::vector<std::string> apps{"VASP", "NAMD", "GROMACS",
                                        "PYTHON", "GAUSSIAN", "WRF"};
    apps_ = apps;
    for (const auto& app : apps) {
      auto jobs = gen_->generate_for(app, 60);
      train_jobs_.insert(train_jobs_.end(),
                         std::make_move_iterator(jobs.begin()),
                         std::make_move_iterator(jobs.end()));
      auto test = gen_->generate_for(app, 25);
      test_jobs_.insert(test_jobs_.end(),
                        std::make_move_iterator(test.begin()),
                        std::make_move_iterator(test.end()));
    }
    schema_ = new supremm::AttributeSchema(supremm::AttributeSchema::full());
    train_ = new ml::Dataset(workload::build_summary_dataset(
        train_jobs_, *schema_, supremm::label_by_application(), apps_));
    test_ = new ml::Dataset(workload::build_summary_dataset(
        test_jobs_, *schema_, supremm::label_by_application(), apps_));
  }

  static void TearDownTestSuite() {
    delete gen_;
    delete schema_;
    delete train_;
    delete test_;
    gen_ = nullptr;
    schema_ = nullptr;
    train_ = nullptr;
    test_ = nullptr;
  }

  static WorkloadGenerator* gen_;
  static std::vector<std::string> apps_;
  static std::vector<GeneratedJob> train_jobs_;
  static std::vector<GeneratedJob> test_jobs_;
  static supremm::AttributeSchema* schema_;
  static ml::Dataset* train_;
  static ml::Dataset* test_;
};

WorkloadGenerator* JobClassifierTest::gen_ = nullptr;
std::vector<std::string> JobClassifierTest::apps_;
std::vector<GeneratedJob> JobClassifierTest::train_jobs_;
std::vector<GeneratedJob> JobClassifierTest::test_jobs_;
supremm::AttributeSchema* JobClassifierTest::schema_ = nullptr;
ml::Dataset* JobClassifierTest::train_ = nullptr;
ml::Dataset* JobClassifierTest::test_ = nullptr;

TEST_F(JobClassifierTest, RandomForestClassifiesApplications) {
  JobClassifierConfig cfg;
  cfg.algorithm = Algorithm::kRandomForest;
  cfg.forest.num_trees = 80;
  JobClassifier clf(cfg);
  clf.train(*train_);
  const auto eval = clf.evaluate(*test_);
  EXPECT_GT(eval.accuracy, 0.9);
  EXPECT_EQ(eval.confusion.num_classes(), apps_.size());
}

TEST_F(JobClassifierTest, SvmClassifiesApplications) {
  JobClassifierConfig cfg;
  cfg.algorithm = Algorithm::kSvm;  // paper settings: RBF γ=0.1, C=1000
  JobClassifier clf(cfg);
  clf.train(*train_);
  const auto eval = clf.evaluate(*test_);
  EXPECT_GT(eval.accuracy, 0.85);
  // Threshold curve is monotone in the descending grid.
  for (std::size_t i = 1; i < eval.threshold_curve.size(); ++i) {
    EXPECT_LE(eval.threshold_curve[i - 1].classified_fraction,
              eval.threshold_curve[i].classified_fraction);
  }
}

TEST_F(JobClassifierTest, PredictSingleJobGivesNamedClass) {
  JobClassifierConfig cfg;
  cfg.algorithm = Algorithm::kRandomForest;
  cfg.forest.num_trees = 50;
  JobClassifier clf(cfg);
  clf.train(*train_);
  const auto pred = clf.predict(test_jobs_.front().summary);
  EXPECT_FALSE(pred.class_name.empty());
  EXPECT_GE(pred.probability, 0.0);
  EXPECT_LE(pred.probability, 1.0);
  EXPECT_EQ(pred.class_name,
            clf.class_names()[static_cast<std::size_t>(pred.label)]);
}

TEST_F(JobClassifierTest, UnknownPoolGetsLowProbabilities) {
  JobClassifierConfig cfg;
  cfg.algorithm = Algorithm::kSvm;
  JobClassifier clf(cfg);
  clf.train(*train_);
  const auto eval = clf.evaluate(*test_);
  const auto pool_jobs = gen_->generate_uncategorized(100);
  const auto pool = workload::build_summary_pool(pool_jobs, *schema_);
  const auto pool_curve = clf.threshold_curve_unlabeled(pool);
  const auto& test_curve = eval.threshold_curve;
  // At the 0.8 threshold, far fewer pool jobs classify than test jobs —
  // the Figure 1 vs Figure 3 contrast.
  auto at = [](const std::vector<ml::ThresholdPoint>& curve, double t) {
    for (const auto& pt : curve) {
      if (std::abs(pt.threshold - t) < 1e-9) return pt.classified_fraction;
    }
    return -1.0;
  };
  const double pool_frac = at(pool_curve, 0.8);
  const double test_frac = at(test_curve, 0.8);
  ASSERT_GE(pool_frac, 0.0);
  ASSERT_GE(test_frac, 0.0);
  EXPECT_LT(pool_frac, test_frac * 0.6);
}

TEST_F(JobClassifierTest, NaiveBayesWorksButUnderperformsOnEfficiency) {
  JobClassifierConfig cfg;
  cfg.algorithm = Algorithm::kNaiveBayes;
  JobClassifier clf(cfg);
  clf.train(*train_);
  const auto eval = clf.evaluate(*test_);
  EXPECT_GT(eval.accuracy, 0.3);  // works at all
}

TEST_F(JobClassifierTest, SchemaMismatchRejected) {
  JobClassifierConfig cfg;
  cfg.algorithm = Algorithm::kRandomForest;
  JobClassifier clf(cfg);
  ml::Dataset narrow = *train_;
  const std::vector<std::size_t> one{0};
  narrow = narrow.select_features(one);
  EXPECT_THROW(clf.train(narrow), InvalidArgument);
  EXPECT_THROW(clf.predict(test_jobs_.front().summary), InvalidArgument);
}

TEST_F(JobClassifierTest, ForestAccessorGuarded) {
  JobClassifierConfig cfg;
  cfg.algorithm = Algorithm::kSvm;
  JobClassifier clf(cfg);
  clf.train(*train_);
  EXPECT_THROW(clf.forest(), InvalidArgument);
}

TEST_F(JobClassifierTest, ImportanceRanksCpuMemoryAttributesHighly) {
  ml::ForestConfig fc;
  fc.num_trees = 80;
  const auto ranking = rank_attributes(*train_, fc, 3);
  ASSERT_EQ(ranking.size(), schema_->size());
  // Descending order.
  for (std::size_t i = 1; i < ranking.size(); ++i) {
    EXPECT_GE(ranking[i - 1].mean_decrease_accuracy,
              ranking[i].mean_decrease_accuracy);
  }
  // The paper's top attributes are CPU/memory ones; check that at least
  // three of the top eight are from {CPI, CPLD, CPU_SYSTEM, MEMORY_USED,
  // MEMORY_TRANSFERRED, FLOPS}.
  std::size_t hits = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const auto& name = ranking[i].name;
    if (name == "CPI" || name == "CPLD" || name == "CPU_SYSTEM" ||
        name == "MEMORY_USED" || name == "MEMORY_TRANSFERRED" ||
        name == "FLOPS") {
      ++hits;
    }
  }
  EXPECT_GE(hits, 3u);
}

TEST_F(JobClassifierTest, PredictorSweepDegradesGracefully) {
  ml::ForestConfig fc;
  fc.num_trees = 60;
  const auto ranking = rank_attributes(*train_, fc, 4);
  const std::vector<std::size_t> counts{ranking.size(), 10, 5, 2, 1};
  const auto sweep = predictor_sweep(*train_, *test_, ranking, counts, fc, 4);
  ASSERT_EQ(sweep.size(), counts.size());
  // Full set is strong; five predictors still decent; one predictor worse.
  EXPECT_GT(sweep[0].accuracy, 0.9);
  EXPECT_GT(sweep[2].accuracy, 0.6);
  EXPECT_LT(sweep.back().accuracy, sweep.front().accuracy);
  EXPECT_EQ(sweep[2].attributes.size(), 5u);
}

TEST(DefaultSweepCounts, ShapeAndBounds) {
  const auto counts = default_sweep_counts(48);
  EXPECT_EQ(counts.front(), 48u);
  EXPECT_EQ(counts.back(), 1u);
  for (std::size_t i = 1; i < counts.size(); ++i) {
    EXPECT_LT(counts[i], counts[i - 1]);
  }
  const auto tiny = default_sweep_counts(3);
  EXPECT_EQ(tiny.front(), 3u);
  EXPECT_EQ(tiny.back(), 1u);
}

TEST(AlgorithmNames, Stable) {
  EXPECT_STREQ(algorithm_name(Algorithm::kSvm), "svm");
  EXPECT_STREQ(algorithm_name(Algorithm::kRandomForest), "randomForest");
  EXPECT_STREQ(algorithm_name(Algorithm::kNaiveBayes), "naiveBayes");
}

}  // namespace
}  // namespace xdmodml::core
