// Tests for the streaming classification service.
#include "core/classification_service.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/error.hpp"
#include "workload/dataset_helpers.hpp"
#include "workload/generator.hpp"

namespace xdmodml::core {
namespace {

class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    gen_ = new workload::WorkloadGenerator(
        workload::WorkloadGenerator::standard({}, 321));
    const auto train_jobs = gen_->generate_balanced(40);
    const auto schema = supremm::AttributeSchema::full();
    const auto train = workload::build_summary_dataset(
        train_jobs, schema, supremm::label_by_application());
    JobClassifierConfig cfg;
    cfg.algorithm = Algorithm::kRandomForest;
    cfg.forest.num_trees = 60;
    auto clf = std::make_shared<JobClassifier>(cfg);
    clf->train(train);
    clf_ = new std::shared_ptr<const JobClassifier>(std::move(clf));
  }
  static void TearDownTestSuite() {
    delete gen_;
    delete clf_;
    gen_ = nullptr;
    clf_ = nullptr;
  }
  static workload::WorkloadGenerator* gen_;
  static std::shared_ptr<const JobClassifier>* clf_;
};
workload::WorkloadGenerator* ServiceTest::gen_ = nullptr;
std::shared_ptr<const JobClassifier>* ServiceTest::clf_ = nullptr;

TEST_F(ServiceTest, IdentifiedJobsPassThrough) {
  ClassificationService service(*clf_, 0.9);
  const auto jobs = gen_->generate_native(20);
  for (const auto& job : jobs) {
    const auto result = service.ingest(job.summary);
    EXPECT_EQ(result.outcome, ClassificationService::Outcome::kIdentified);
  }
  EXPECT_EQ(service.stats().identified, 20u);
  EXPECT_EQ(service.stats().attributed, 0u);
  EXPECT_EQ(service.warehouse().size(), 20u);
}

TEST_F(ServiceTest, CommunityNaJobsGetAttributed) {
  ClassificationService service(*clf_, 0.5);
  // NA pool of pure community jobs: many should clear the threshold.
  const auto jobs = gen_->generate_na(60, /*community_fraction=*/1.0);
  for (const auto& job : jobs) service.ingest(job.summary);
  EXPECT_GT(service.stats().attributed, 25u);
  EXPECT_EQ(service.stats().identified, 0u);
  // Attributed CPU hours recorded per application.
  EXPECT_FALSE(service.attributed_cpu_hours().empty());
  // Warehouse sees the attributed application names.
  xdmod::Filter na_filter;
  na_filter.label_source = supremm::LabelSource::kNotAvailable;
  std::size_t with_app = 0;
  for (const auto* job : service.warehouse().query(na_filter)) {
    if (!job->application.empty()) ++with_app;
  }
  EXPECT_EQ(with_app, service.stats().attributed);
}

TEST_F(ServiceTest, CustomCodesStayUnresolved) {
  ClassificationService service(*clf_, 0.9);
  const auto jobs = gen_->generate_uncategorized(50);
  for (const auto& job : jobs) service.ingest(job.summary);
  EXPECT_GT(service.stats().unresolved, 40u);
}

TEST_F(ServiceTest, ReportMentionsCounts) {
  ClassificationService service(*clf_, 0.9);
  service.ingest(gen_->generate_native(1).front().summary);
  const auto text = service.report();
  EXPECT_NE(text.find("1 jobs ingested"), std::string::npos);
  EXPECT_NE(text.find("1 identified"), std::string::npos);
}

TEST_F(ServiceTest, IngestBatchMatchesSerialIngest) {
  // The batched path must be outcome-for-outcome identical to a serial
  // ingest loop: same per-job results, same tallies, same warehouse.
  auto mixed = gen_->generate_native(15);
  for (auto& job : gen_->generate_na(25, /*community_fraction=*/1.0)) {
    mixed.push_back(std::move(job));
  }
  for (auto& job : gen_->generate_uncategorized(10)) {
    mixed.push_back(std::move(job));
  }

  ClassificationService serial(*clf_, 0.5);
  ClassificationService batched(*clf_, 0.5);
  std::vector<ClassificationService::IngestResult> serial_results;
  std::vector<supremm::JobSummary> batch;
  for (const auto& job : mixed) {
    serial_results.push_back(serial.ingest(job.summary));
    batch.push_back(job.summary);
  }
  const auto batch_results = batched.ingest_batch(std::move(batch));

  ASSERT_EQ(batch_results.size(), serial_results.size());
  for (std::size_t i = 0; i < serial_results.size(); ++i) {
    EXPECT_EQ(batch_results[i].outcome, serial_results[i].outcome);
    EXPECT_EQ(batch_results[i].prediction.class_name,
              serial_results[i].prediction.class_name);
    EXPECT_DOUBLE_EQ(batch_results[i].prediction.probability,
                     serial_results[i].prediction.probability);
  }
  EXPECT_EQ(batched.stats().identified, serial.stats().identified);
  EXPECT_EQ(batched.stats().attributed, serial.stats().attributed);
  EXPECT_EQ(batched.stats().unresolved, serial.stats().unresolved);
  EXPECT_EQ(batched.warehouse().size(), serial.warehouse().size());
  EXPECT_EQ(batched.attributed_cpu_hours(), serial.attributed_cpu_hours());
}

TEST_F(ServiceTest, ConcurrentIngestKeepsExactTallies) {
  // The header promises several threads may share one service: hammer a
  // single instance from four threads and require *exact* tallies —
  // with the old unguarded stats_ the increments raced and drifted.
  ClassificationService service(*clf_, 0.5);
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kJobsPerThread = 30;
  std::vector<std::vector<workload::GeneratedJob>> work;
  std::size_t expected_identified = 0;
  for (std::size_t t = 0; t < kThreads; ++t) {
    // Alternate pools so identified and classified paths interleave.
    auto jobs = t % 2 == 0
                    ? gen_->generate_native(kJobsPerThread)
                    : gen_->generate_na(kJobsPerThread, 1.0);
    for (const auto& job : jobs) {
      if (job.summary.label_source == supremm::LabelSource::kIdentified) {
        ++expected_identified;
      }
    }
    work.push_back(std::move(jobs));
  }
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &work, t] {
      for (const auto& job : work[t]) service.ingest(job.summary);
    });
  }
  for (auto& th : threads) th.join();

  const auto stats = service.stats();
  EXPECT_EQ(stats.total(), kThreads * kJobsPerThread);
  EXPECT_EQ(stats.identified, expected_identified);
  EXPECT_EQ(service.warehouse().size(), kThreads * kJobsPerThread);
}

TEST_F(ServiceTest, ConcurrentIngestBatchKeepsExactTallies) {
  // ingest_batch itself fans out on the shared pool; several threads
  // calling it on one service must still produce exact totals.
  ClassificationService service(*clf_, 0.5);
  constexpr std::size_t kThreads = 3;
  constexpr std::size_t kJobsPerThread = 40;
  std::vector<std::vector<supremm::JobSummary>> batches;
  for (std::size_t t = 0; t < kThreads; ++t) {
    std::vector<supremm::JobSummary> batch;
    for (const auto& job : gen_->generate_na(kJobsPerThread, 1.0)) {
      batch.push_back(job.summary);
    }
    batches.push_back(std::move(batch));
  }
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &batches, t] {
      service.ingest_batch(std::move(batches[t]));
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(service.stats().total(), kThreads * kJobsPerThread);
  EXPECT_EQ(service.warehouse().size(), kThreads * kJobsPerThread);
}

TEST_F(ServiceTest, Validation) {
  EXPECT_THROW(ClassificationService(*clf_, 1.5), InvalidArgument);
  EXPECT_THROW(ClassificationService(nullptr, 0.9), InvalidArgument);
  JobClassifierConfig cfg;
  const auto untrained = std::make_shared<const JobClassifier>(cfg);
  EXPECT_THROW(ClassificationService(untrained, 0.9), InvalidArgument);
}

}  // namespace
}  // namespace xdmodml::core
