// Tests for the streaming classification service.
#include "core/classification_service.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "workload/dataset_helpers.hpp"
#include "workload/generator.hpp"

namespace xdmodml::core {
namespace {

class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    gen_ = new workload::WorkloadGenerator(
        workload::WorkloadGenerator::standard({}, 321));
    const auto train_jobs = gen_->generate_balanced(40);
    const auto schema = supremm::AttributeSchema::full();
    const auto train = workload::build_summary_dataset(
        train_jobs, schema, supremm::label_by_application());
    JobClassifierConfig cfg;
    cfg.algorithm = Algorithm::kRandomForest;
    cfg.forest.num_trees = 60;
    auto clf = std::make_shared<JobClassifier>(cfg);
    clf->train(train);
    clf_ = new std::shared_ptr<const JobClassifier>(std::move(clf));
  }
  static void TearDownTestSuite() {
    delete gen_;
    delete clf_;
    gen_ = nullptr;
    clf_ = nullptr;
  }
  static workload::WorkloadGenerator* gen_;
  static std::shared_ptr<const JobClassifier>* clf_;
};
workload::WorkloadGenerator* ServiceTest::gen_ = nullptr;
std::shared_ptr<const JobClassifier>* ServiceTest::clf_ = nullptr;

TEST_F(ServiceTest, IdentifiedJobsPassThrough) {
  ClassificationService service(*clf_, 0.9);
  const auto jobs = gen_->generate_native(20);
  for (const auto& job : jobs) {
    const auto result = service.ingest(job.summary);
    EXPECT_EQ(result.outcome, ClassificationService::Outcome::kIdentified);
  }
  EXPECT_EQ(service.stats().identified, 20u);
  EXPECT_EQ(service.stats().attributed, 0u);
  EXPECT_EQ(service.warehouse().size(), 20u);
}

TEST_F(ServiceTest, CommunityNaJobsGetAttributed) {
  ClassificationService service(*clf_, 0.5);
  // NA pool of pure community jobs: many should clear the threshold.
  const auto jobs = gen_->generate_na(60, /*community_fraction=*/1.0);
  for (const auto& job : jobs) service.ingest(job.summary);
  EXPECT_GT(service.stats().attributed, 25u);
  EXPECT_EQ(service.stats().identified, 0u);
  // Attributed CPU hours recorded per application.
  EXPECT_FALSE(service.attributed_cpu_hours().empty());
  // Warehouse sees the attributed application names.
  xdmod::Filter na_filter;
  na_filter.label_source = supremm::LabelSource::kNotAvailable;
  std::size_t with_app = 0;
  for (const auto* job : service.warehouse().query(na_filter)) {
    if (!job->application.empty()) ++with_app;
  }
  EXPECT_EQ(with_app, service.stats().attributed);
}

TEST_F(ServiceTest, CustomCodesStayUnresolved) {
  ClassificationService service(*clf_, 0.9);
  const auto jobs = gen_->generate_uncategorized(50);
  for (const auto& job : jobs) service.ingest(job.summary);
  EXPECT_GT(service.stats().unresolved, 40u);
}

TEST_F(ServiceTest, ReportMentionsCounts) {
  ClassificationService service(*clf_, 0.9);
  service.ingest(gen_->generate_native(1).front().summary);
  const auto text = service.report();
  EXPECT_NE(text.find("1 jobs ingested"), std::string::npos);
  EXPECT_NE(text.find("1 identified"), std::string::npos);
}

TEST_F(ServiceTest, Validation) {
  EXPECT_THROW(ClassificationService(*clf_, 1.5), InvalidArgument);
  EXPECT_THROW(ClassificationService(nullptr, 0.9), InvalidArgument);
  JobClassifierConfig cfg;
  const auto untrained = std::make_shared<const JobClassifier>(cfg);
  EXPECT_THROW(ClassificationService(untrained, 0.9), InvalidArgument);
}

}  // namespace
}  // namespace xdmodml::core
