// Tests for the streaming classification service.
#include "core/classification_service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/metrics.hpp"
#include "workload/dataset_helpers.hpp"
#include "workload/generator.hpp"

namespace xdmodml::core {
namespace {

class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    gen_ = new workload::WorkloadGenerator(
        workload::WorkloadGenerator::standard({}, 321));
    const auto train_jobs = gen_->generate_balanced(40);
    const auto schema = supremm::AttributeSchema::full();
    const auto train = workload::build_summary_dataset(
        train_jobs, schema, supremm::label_by_application());
    JobClassifierConfig cfg;
    cfg.algorithm = Algorithm::kRandomForest;
    cfg.forest.num_trees = 60;
    auto clf = std::make_shared<JobClassifier>(cfg);
    clf->train(train);
    clf_ = new std::shared_ptr<const JobClassifier>(std::move(clf));
  }
  static void TearDownTestSuite() {
    delete gen_;
    delete clf_;
    gen_ = nullptr;
    clf_ = nullptr;
  }
  static workload::WorkloadGenerator* gen_;
  static std::shared_ptr<const JobClassifier>* clf_;
};
workload::WorkloadGenerator* ServiceTest::gen_ = nullptr;
std::shared_ptr<const JobClassifier>* ServiceTest::clf_ = nullptr;

TEST_F(ServiceTest, IdentifiedJobsPassThrough) {
  ClassificationService service(*clf_, 0.9);
  const auto jobs = gen_->generate_native(20);
  for (const auto& job : jobs) {
    const auto result = service.ingest(job.summary);
    EXPECT_EQ(result.outcome, ClassificationService::Outcome::kIdentified);
  }
  EXPECT_EQ(service.stats().identified, 20u);
  EXPECT_EQ(service.stats().attributed, 0u);
  EXPECT_EQ(service.warehouse()->size(), 20u);
}

TEST_F(ServiceTest, CommunityNaJobsGetAttributed) {
  ClassificationService service(*clf_, 0.5);
  // NA pool of pure community jobs: many should clear the threshold.
  const auto jobs = gen_->generate_na(60, /*community_fraction=*/1.0);
  for (const auto& job : jobs) service.ingest(job.summary);
  EXPECT_GT(service.stats().attributed, 25u);
  EXPECT_EQ(service.stats().identified, 0u);
  // Attributed CPU hours recorded per application.
  EXPECT_FALSE(service.attributed_cpu_hours().empty());
  // Warehouse sees the attributed application names.
  xdmod::Filter na_filter;
  na_filter.label_source = supremm::LabelSource::kNotAvailable;
  std::size_t with_app = 0;
  {
    // Hold the view across the query loop so the returned pointers stay
    // pinned, and release it before touching stats() below — the view
    // owns the same mutex.
    const auto view = service.warehouse();
    for (const auto* job : view->query(na_filter)) {
      if (!job->application.empty()) ++with_app;
    }
  }
  EXPECT_EQ(with_app, service.stats().attributed);
}

TEST_F(ServiceTest, CustomCodesStayUnresolved) {
  ClassificationService service(*clf_, 0.9);
  const auto jobs = gen_->generate_uncategorized(50);
  for (const auto& job : jobs) service.ingest(job.summary);
  EXPECT_GT(service.stats().unresolved, 40u);
}

TEST_F(ServiceTest, ReportMentionsCounts) {
  ClassificationService service(*clf_, 0.9);
  service.ingest(gen_->generate_native(1).front().summary);
  const auto text = service.report();
  EXPECT_NE(text.find("1 jobs ingested"), std::string::npos);
  EXPECT_NE(text.find("1 identified"), std::string::npos);
}

TEST_F(ServiceTest, IngestBatchMatchesSerialIngest) {
  // The batched path must be outcome-for-outcome identical to a serial
  // ingest loop: same per-job results, same tallies, same warehouse.
  auto mixed = gen_->generate_native(15);
  for (auto& job : gen_->generate_na(25, /*community_fraction=*/1.0)) {
    mixed.push_back(std::move(job));
  }
  for (auto& job : gen_->generate_uncategorized(10)) {
    mixed.push_back(std::move(job));
  }

  ClassificationService serial(*clf_, 0.5);
  ClassificationService batched(*clf_, 0.5);
  std::vector<ClassificationService::IngestResult> serial_results;
  std::vector<supremm::JobSummary> batch;
  for (const auto& job : mixed) {
    serial_results.push_back(serial.ingest(job.summary));
    batch.push_back(job.summary);
  }
  const auto batch_results = batched.ingest_batch(std::move(batch));

  ASSERT_EQ(batch_results.size(), serial_results.size());
  for (std::size_t i = 0; i < serial_results.size(); ++i) {
    EXPECT_EQ(batch_results[i].outcome, serial_results[i].outcome);
    EXPECT_EQ(batch_results[i].prediction.class_name,
              serial_results[i].prediction.class_name);
    EXPECT_DOUBLE_EQ(batch_results[i].prediction.probability,
                     serial_results[i].prediction.probability);
  }
  EXPECT_EQ(batched.stats().identified, serial.stats().identified);
  EXPECT_EQ(batched.stats().attributed, serial.stats().attributed);
  EXPECT_EQ(batched.stats().unresolved, serial.stats().unresolved);
  EXPECT_EQ(batched.warehouse()->size(), serial.warehouse()->size());
  EXPECT_EQ(batched.attributed_cpu_hours(), serial.attributed_cpu_hours());
}

TEST_F(ServiceTest, ConcurrentIngestKeepsExactTallies) {
  // The header promises several threads may share one service: hammer a
  // single instance from four threads and require *exact* tallies —
  // with the old unguarded stats_ the increments raced and drifted.
  ClassificationService service(*clf_, 0.5);
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kJobsPerThread = 30;
  std::vector<std::vector<workload::GeneratedJob>> work;
  std::size_t expected_identified = 0;
  for (std::size_t t = 0; t < kThreads; ++t) {
    // Alternate pools so identified and classified paths interleave.
    auto jobs = t % 2 == 0
                    ? gen_->generate_native(kJobsPerThread)
                    : gen_->generate_na(kJobsPerThread, 1.0);
    for (const auto& job : jobs) {
      if (job.summary.label_source == supremm::LabelSource::kIdentified) {
        ++expected_identified;
      }
    }
    work.push_back(std::move(jobs));
  }
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &work, t] {
      for (const auto& job : work[t]) service.ingest(job.summary);
    });
  }
  for (auto& th : threads) th.join();

  const auto stats = service.stats();
  EXPECT_EQ(stats.total(), kThreads * kJobsPerThread);
  EXPECT_EQ(stats.identified, expected_identified);
  EXPECT_EQ(service.warehouse()->size(), kThreads * kJobsPerThread);
}

TEST_F(ServiceTest, ConcurrentIngestBatchKeepsExactTallies) {
  // ingest_batch itself fans out on the shared pool; several threads
  // calling it on one service must still produce exact totals.
  ClassificationService service(*clf_, 0.5);
  constexpr std::size_t kThreads = 3;
  constexpr std::size_t kJobsPerThread = 40;
  std::vector<std::vector<supremm::JobSummary>> batches;
  for (std::size_t t = 0; t < kThreads; ++t) {
    std::vector<supremm::JobSummary> batch;
    for (const auto& job : gen_->generate_na(kJobsPerThread, 1.0)) {
      batch.push_back(job.summary);
    }
    batches.push_back(std::move(batch));
  }
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &batches, t] {
      service.ingest_batch(std::move(batches[t]));
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(service.stats().total(), kThreads * kJobsPerThread);
  EXPECT_EQ(service.warehouse()->size(), kThreads * kJobsPerThread);
}

TEST_F(ServiceTest, WarehouseViewBlocksConcurrentIngest) {
  // Regression test for the old reference escape: warehouse() used to
  // return the warehouse with no synchronization, so a reader could
  // race ingest (TSan flagged the map mutation under the reader's
  // feet) and watch the size change mid-read.  The locked view pins
  // the warehouse: while a view is alive the contents are frozen.
  ClassificationService service(*clf_, 0.5);
  const auto seed_jobs = gen_->generate_native(5);
  for (const auto& job : seed_jobs) service.ingest(job.summary);

  std::atomic<bool> stop{false};
  std::thread ingester([&] {
    const auto jobs = gen_->generate_native(64);
    std::size_t i = 0;
    while (!stop.load()) {
      service.ingest(jobs[i % jobs.size()].summary);
      ++i;
    }
  });
  for (int round = 0; round < 50; ++round) {
    const auto view = service.warehouse();
    const std::size_t size_first = view->size();
    const std::size_t size_again = view->size();
    EXPECT_EQ(size_first, size_again);
    // Query results stay valid for the lifetime of the view and agree
    // with the frozen size.
    EXPECT_EQ(view->query({}).size(), size_first);
  }
  stop.store(true);
  ingester.join();
  EXPECT_GE(service.warehouse()->size(), seed_jobs.size());
}

TEST_F(ServiceTest, MetricsSnapshotMatchesIngestTallies) {
  // The observability counters must agree exactly with the service's
  // own tallies.  Outcome counters are process-global and always-on, so
  // the assertion is on before/after deltas.
  const bool prev_enabled = obs::enabled();
  obs::set_enabled(true);
  auto& registry = obs::MetricsRegistry::instance();
  const auto before = registry.snapshot();

  ClassificationService service(*clf_, 0.5);
  auto jobs = gen_->generate_native(10);
  for (auto& job : gen_->generate_na(30, /*community_fraction=*/1.0)) {
    jobs.push_back(std::move(job));
  }
  for (auto& job : gen_->generate_uncategorized(10)) {
    jobs.push_back(std::move(job));
  }
  for (const auto& job : jobs) service.ingest(job.summary);

  const auto stats = service.stats();
  const auto after = registry.snapshot();
  EXPECT_EQ(after.counter("service.identified") -
                before.counter("service.identified"),
            stats.identified);
  EXPECT_EQ(after.counter("service.attributed") -
                before.counter("service.attributed"),
            stats.attributed);
  EXPECT_EQ(after.counter("service.unresolved") -
                before.counter("service.unresolved"),
            stats.unresolved);

  // With the toggle on, every ingest timed exactly one classify and one
  // commit into the latency histograms.
  const auto* classify_before = before.histogram("service.classify_ns");
  const auto* commit_before = before.histogram("service.commit_ns");
  const auto* classify_after = after.histogram("service.classify_ns");
  const auto* commit_after = after.histogram("service.commit_ns");
  ASSERT_NE(classify_after, nullptr);
  ASSERT_NE(commit_after, nullptr);
  const auto count_of = [](const obs::MetricsSnapshot::HistogramValue* h) {
    return h == nullptr ? std::uint64_t{0} : h->count;
  };
  EXPECT_EQ(classify_after->count - count_of(classify_before), stats.total());
  EXPECT_EQ(commit_after->count - count_of(commit_before), stats.total());

  // report() embeds the registry snapshot while the toggle is on...
  EXPECT_NE(service.report().find("-- metrics snapshot --"),
            std::string::npos);
  EXPECT_NE(service.report().find("counter service.identified"),
            std::string::npos);
  // ...and stays a plain service summary when it is off.
  obs::set_enabled(false);
  EXPECT_EQ(service.report().find("-- metrics snapshot --"),
            std::string::npos);
  obs::set_enabled(prev_enabled);
}

TEST_F(ServiceTest, Validation) {
  EXPECT_THROW(ClassificationService(*clf_, 1.5), InvalidArgument);
  EXPECT_THROW(ClassificationService(nullptr, 0.9), InvalidArgument);
  JobClassifierConfig cfg;
  const auto untrained = std::make_shared<const JobClassifier>(cfg);
  EXPECT_THROW(ClassificationService(untrained, 0.9), InvalidArgument);
}

}  // namespace
}  // namespace xdmodml::core
