file(REMOVE_RECURSE
  "CMakeFiles/xdmod_ml.dir/classifier.cpp.o"
  "CMakeFiles/xdmod_ml.dir/classifier.cpp.o.d"
  "CMakeFiles/xdmod_ml.dir/cross_validation.cpp.o"
  "CMakeFiles/xdmod_ml.dir/cross_validation.cpp.o.d"
  "CMakeFiles/xdmod_ml.dir/dataset.cpp.o"
  "CMakeFiles/xdmod_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/xdmod_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/xdmod_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/xdmod_ml.dir/feature_analysis.cpp.o"
  "CMakeFiles/xdmod_ml.dir/feature_analysis.cpp.o.d"
  "CMakeFiles/xdmod_ml.dir/kernel.cpp.o"
  "CMakeFiles/xdmod_ml.dir/kernel.cpp.o.d"
  "CMakeFiles/xdmod_ml.dir/kmeans.cpp.o"
  "CMakeFiles/xdmod_ml.dir/kmeans.cpp.o.d"
  "CMakeFiles/xdmod_ml.dir/metrics.cpp.o"
  "CMakeFiles/xdmod_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/xdmod_ml.dir/model_io.cpp.o"
  "CMakeFiles/xdmod_ml.dir/model_io.cpp.o.d"
  "CMakeFiles/xdmod_ml.dir/naive_bayes.cpp.o"
  "CMakeFiles/xdmod_ml.dir/naive_bayes.cpp.o.d"
  "CMakeFiles/xdmod_ml.dir/pca.cpp.o"
  "CMakeFiles/xdmod_ml.dir/pca.cpp.o.d"
  "CMakeFiles/xdmod_ml.dir/random_forest.cpp.o"
  "CMakeFiles/xdmod_ml.dir/random_forest.cpp.o.d"
  "CMakeFiles/xdmod_ml.dir/smo.cpp.o"
  "CMakeFiles/xdmod_ml.dir/smo.cpp.o.d"
  "CMakeFiles/xdmod_ml.dir/svm.cpp.o"
  "CMakeFiles/xdmod_ml.dir/svm.cpp.o.d"
  "libxdmod_ml.a"
  "libxdmod_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdmod_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
