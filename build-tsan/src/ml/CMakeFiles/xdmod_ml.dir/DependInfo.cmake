
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/classifier.cpp" "src/ml/CMakeFiles/xdmod_ml.dir/classifier.cpp.o" "gcc" "src/ml/CMakeFiles/xdmod_ml.dir/classifier.cpp.o.d"
  "/root/repo/src/ml/cross_validation.cpp" "src/ml/CMakeFiles/xdmod_ml.dir/cross_validation.cpp.o" "gcc" "src/ml/CMakeFiles/xdmod_ml.dir/cross_validation.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/xdmod_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/xdmod_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/ml/CMakeFiles/xdmod_ml.dir/decision_tree.cpp.o" "gcc" "src/ml/CMakeFiles/xdmod_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ml/feature_analysis.cpp" "src/ml/CMakeFiles/xdmod_ml.dir/feature_analysis.cpp.o" "gcc" "src/ml/CMakeFiles/xdmod_ml.dir/feature_analysis.cpp.o.d"
  "/root/repo/src/ml/kernel.cpp" "src/ml/CMakeFiles/xdmod_ml.dir/kernel.cpp.o" "gcc" "src/ml/CMakeFiles/xdmod_ml.dir/kernel.cpp.o.d"
  "/root/repo/src/ml/kmeans.cpp" "src/ml/CMakeFiles/xdmod_ml.dir/kmeans.cpp.o" "gcc" "src/ml/CMakeFiles/xdmod_ml.dir/kmeans.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/xdmod_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/xdmod_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/model_io.cpp" "src/ml/CMakeFiles/xdmod_ml.dir/model_io.cpp.o" "gcc" "src/ml/CMakeFiles/xdmod_ml.dir/model_io.cpp.o.d"
  "/root/repo/src/ml/naive_bayes.cpp" "src/ml/CMakeFiles/xdmod_ml.dir/naive_bayes.cpp.o" "gcc" "src/ml/CMakeFiles/xdmod_ml.dir/naive_bayes.cpp.o.d"
  "/root/repo/src/ml/pca.cpp" "src/ml/CMakeFiles/xdmod_ml.dir/pca.cpp.o" "gcc" "src/ml/CMakeFiles/xdmod_ml.dir/pca.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/ml/CMakeFiles/xdmod_ml.dir/random_forest.cpp.o" "gcc" "src/ml/CMakeFiles/xdmod_ml.dir/random_forest.cpp.o.d"
  "/root/repo/src/ml/smo.cpp" "src/ml/CMakeFiles/xdmod_ml.dir/smo.cpp.o" "gcc" "src/ml/CMakeFiles/xdmod_ml.dir/smo.cpp.o.d"
  "/root/repo/src/ml/svm.cpp" "src/ml/CMakeFiles/xdmod_ml.dir/svm.cpp.o" "gcc" "src/ml/CMakeFiles/xdmod_ml.dir/svm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/xdmod_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
