file(REMOVE_RECURSE
  "libxdmod_ml.a"
)
