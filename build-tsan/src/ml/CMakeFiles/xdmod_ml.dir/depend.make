# Empty dependencies file for xdmod_ml.
# This may be replaced when dependencies are built.
