file(REMOVE_RECURSE
  "CMakeFiles/xdmod_supremm.dir/dataset_builder.cpp.o"
  "CMakeFiles/xdmod_supremm.dir/dataset_builder.cpp.o.d"
  "CMakeFiles/xdmod_supremm.dir/efficiency.cpp.o"
  "CMakeFiles/xdmod_supremm.dir/efficiency.cpp.o.d"
  "CMakeFiles/xdmod_supremm.dir/job_summary.cpp.o"
  "CMakeFiles/xdmod_supremm.dir/job_summary.cpp.o.d"
  "CMakeFiles/xdmod_supremm.dir/metrics.cpp.o"
  "CMakeFiles/xdmod_supremm.dir/metrics.cpp.o.d"
  "CMakeFiles/xdmod_supremm.dir/summary_io.cpp.o"
  "CMakeFiles/xdmod_supremm.dir/summary_io.cpp.o.d"
  "libxdmod_supremm.a"
  "libxdmod_supremm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdmod_supremm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
