file(REMOVE_RECURSE
  "libxdmod_supremm.a"
)
