# Empty dependencies file for xdmod_supremm.
# This may be replaced when dependencies are built.
