# Empty compiler generated dependencies file for xdmod_supremm.
# This may be replaced when dependencies are built.
