
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/supremm/dataset_builder.cpp" "src/supremm/CMakeFiles/xdmod_supremm.dir/dataset_builder.cpp.o" "gcc" "src/supremm/CMakeFiles/xdmod_supremm.dir/dataset_builder.cpp.o.d"
  "/root/repo/src/supremm/efficiency.cpp" "src/supremm/CMakeFiles/xdmod_supremm.dir/efficiency.cpp.o" "gcc" "src/supremm/CMakeFiles/xdmod_supremm.dir/efficiency.cpp.o.d"
  "/root/repo/src/supremm/job_summary.cpp" "src/supremm/CMakeFiles/xdmod_supremm.dir/job_summary.cpp.o" "gcc" "src/supremm/CMakeFiles/xdmod_supremm.dir/job_summary.cpp.o.d"
  "/root/repo/src/supremm/metrics.cpp" "src/supremm/CMakeFiles/xdmod_supremm.dir/metrics.cpp.o" "gcc" "src/supremm/CMakeFiles/xdmod_supremm.dir/metrics.cpp.o.d"
  "/root/repo/src/supremm/summary_io.cpp" "src/supremm/CMakeFiles/xdmod_supremm.dir/summary_io.cpp.o" "gcc" "src/supremm/CMakeFiles/xdmod_supremm.dir/summary_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/xdmod_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ml/CMakeFiles/xdmod_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
