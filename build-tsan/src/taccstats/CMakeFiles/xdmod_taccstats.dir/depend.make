# Empty dependencies file for xdmod_taccstats.
# This may be replaced when dependencies are built.
