file(REMOVE_RECURSE
  "CMakeFiles/xdmod_taccstats.dir/aggregator.cpp.o"
  "CMakeFiles/xdmod_taccstats.dir/aggregator.cpp.o.d"
  "CMakeFiles/xdmod_taccstats.dir/collector.cpp.o"
  "CMakeFiles/xdmod_taccstats.dir/collector.cpp.o.d"
  "CMakeFiles/xdmod_taccstats.dir/counters.cpp.o"
  "CMakeFiles/xdmod_taccstats.dir/counters.cpp.o.d"
  "CMakeFiles/xdmod_taccstats.dir/pcp_archive.cpp.o"
  "CMakeFiles/xdmod_taccstats.dir/pcp_archive.cpp.o.d"
  "libxdmod_taccstats.a"
  "libxdmod_taccstats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdmod_taccstats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
