file(REMOVE_RECURSE
  "libxdmod_taccstats.a"
)
