file(REMOVE_RECURSE
  "libxdmod_core.a"
)
