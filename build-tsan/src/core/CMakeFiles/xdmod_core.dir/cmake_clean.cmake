file(REMOVE_RECURSE
  "CMakeFiles/xdmod_core.dir/classification_service.cpp.o"
  "CMakeFiles/xdmod_core.dir/classification_service.cpp.o.d"
  "CMakeFiles/xdmod_core.dir/importance.cpp.o"
  "CMakeFiles/xdmod_core.dir/importance.cpp.o.d"
  "CMakeFiles/xdmod_core.dir/job_classifier.cpp.o"
  "CMakeFiles/xdmod_core.dir/job_classifier.cpp.o.d"
  "CMakeFiles/xdmod_core.dir/resource_predictor.cpp.o"
  "CMakeFiles/xdmod_core.dir/resource_predictor.cpp.o.d"
  "libxdmod_core.a"
  "libxdmod_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdmod_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
