
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/classification_service.cpp" "src/core/CMakeFiles/xdmod_core.dir/classification_service.cpp.o" "gcc" "src/core/CMakeFiles/xdmod_core.dir/classification_service.cpp.o.d"
  "/root/repo/src/core/importance.cpp" "src/core/CMakeFiles/xdmod_core.dir/importance.cpp.o" "gcc" "src/core/CMakeFiles/xdmod_core.dir/importance.cpp.o.d"
  "/root/repo/src/core/job_classifier.cpp" "src/core/CMakeFiles/xdmod_core.dir/job_classifier.cpp.o" "gcc" "src/core/CMakeFiles/xdmod_core.dir/job_classifier.cpp.o.d"
  "/root/repo/src/core/resource_predictor.cpp" "src/core/CMakeFiles/xdmod_core.dir/resource_predictor.cpp.o" "gcc" "src/core/CMakeFiles/xdmod_core.dir/resource_predictor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/xdmod_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ml/CMakeFiles/xdmod_ml.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/supremm/CMakeFiles/xdmod_supremm.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/xdmod/CMakeFiles/xdmod_warehouse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
