# Empty compiler generated dependencies file for xdmod_core.
# This may be replaced when dependencies are built.
