# Empty compiler generated dependencies file for xdmod_workload.
# This may be replaced when dependencies are built.
