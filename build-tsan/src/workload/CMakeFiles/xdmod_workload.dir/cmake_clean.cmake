file(REMOVE_RECURSE
  "CMakeFiles/xdmod_workload.dir/dataset_helpers.cpp.o"
  "CMakeFiles/xdmod_workload.dir/dataset_helpers.cpp.o.d"
  "CMakeFiles/xdmod_workload.dir/generator.cpp.o"
  "CMakeFiles/xdmod_workload.dir/generator.cpp.o.d"
  "CMakeFiles/xdmod_workload.dir/platform.cpp.o"
  "CMakeFiles/xdmod_workload.dir/platform.cpp.o.d"
  "CMakeFiles/xdmod_workload.dir/signature.cpp.o"
  "CMakeFiles/xdmod_workload.dir/signature.cpp.o.d"
  "libxdmod_workload.a"
  "libxdmod_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdmod_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
