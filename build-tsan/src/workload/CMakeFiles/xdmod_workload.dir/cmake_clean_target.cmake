file(REMOVE_RECURSE
  "libxdmod_workload.a"
)
