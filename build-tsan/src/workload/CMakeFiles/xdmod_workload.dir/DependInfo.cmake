
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/dataset_helpers.cpp" "src/workload/CMakeFiles/xdmod_workload.dir/dataset_helpers.cpp.o" "gcc" "src/workload/CMakeFiles/xdmod_workload.dir/dataset_helpers.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/workload/CMakeFiles/xdmod_workload.dir/generator.cpp.o" "gcc" "src/workload/CMakeFiles/xdmod_workload.dir/generator.cpp.o.d"
  "/root/repo/src/workload/platform.cpp" "src/workload/CMakeFiles/xdmod_workload.dir/platform.cpp.o" "gcc" "src/workload/CMakeFiles/xdmod_workload.dir/platform.cpp.o.d"
  "/root/repo/src/workload/signature.cpp" "src/workload/CMakeFiles/xdmod_workload.dir/signature.cpp.o" "gcc" "src/workload/CMakeFiles/xdmod_workload.dir/signature.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/xdmod_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/supremm/CMakeFiles/xdmod_supremm.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/taccstats/CMakeFiles/xdmod_taccstats.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/lariat/CMakeFiles/xdmod_lariat.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ml/CMakeFiles/xdmod_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
