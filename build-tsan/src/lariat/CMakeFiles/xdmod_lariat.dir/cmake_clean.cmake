file(REMOVE_RECURSE
  "CMakeFiles/xdmod_lariat.dir/lariat.cpp.o"
  "CMakeFiles/xdmod_lariat.dir/lariat.cpp.o.d"
  "libxdmod_lariat.a"
  "libxdmod_lariat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdmod_lariat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
