file(REMOVE_RECURSE
  "libxdmod_lariat.a"
)
