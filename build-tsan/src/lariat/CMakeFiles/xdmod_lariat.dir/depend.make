# Empty dependencies file for xdmod_lariat.
# This may be replaced when dependencies are built.
