file(REMOVE_RECURSE
  "CMakeFiles/xdmod_warehouse.dir/appkernel.cpp.o"
  "CMakeFiles/xdmod_warehouse.dir/appkernel.cpp.o.d"
  "CMakeFiles/xdmod_warehouse.dir/warehouse.cpp.o"
  "CMakeFiles/xdmod_warehouse.dir/warehouse.cpp.o.d"
  "libxdmod_warehouse.a"
  "libxdmod_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdmod_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
