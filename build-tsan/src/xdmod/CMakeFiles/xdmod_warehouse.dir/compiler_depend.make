# Empty compiler generated dependencies file for xdmod_warehouse.
# This may be replaced when dependencies are built.
