file(REMOVE_RECURSE
  "libxdmod_warehouse.a"
)
