file(REMOVE_RECURSE
  "libxdmod_util.a"
)
