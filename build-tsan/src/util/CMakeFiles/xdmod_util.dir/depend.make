# Empty dependencies file for xdmod_util.
# This may be replaced when dependencies are built.
