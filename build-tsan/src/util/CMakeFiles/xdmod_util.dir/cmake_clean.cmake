file(REMOVE_RECURSE
  "CMakeFiles/xdmod_util.dir/csv.cpp.o"
  "CMakeFiles/xdmod_util.dir/csv.cpp.o.d"
  "CMakeFiles/xdmod_util.dir/eigen.cpp.o"
  "CMakeFiles/xdmod_util.dir/eigen.cpp.o.d"
  "CMakeFiles/xdmod_util.dir/error.cpp.o"
  "CMakeFiles/xdmod_util.dir/error.cpp.o.d"
  "CMakeFiles/xdmod_util.dir/matrix.cpp.o"
  "CMakeFiles/xdmod_util.dir/matrix.cpp.o.d"
  "CMakeFiles/xdmod_util.dir/rng.cpp.o"
  "CMakeFiles/xdmod_util.dir/rng.cpp.o.d"
  "CMakeFiles/xdmod_util.dir/stats.cpp.o"
  "CMakeFiles/xdmod_util.dir/stats.cpp.o.d"
  "CMakeFiles/xdmod_util.dir/string_util.cpp.o"
  "CMakeFiles/xdmod_util.dir/string_util.cpp.o.d"
  "CMakeFiles/xdmod_util.dir/table.cpp.o"
  "CMakeFiles/xdmod_util.dir/table.cpp.o.d"
  "CMakeFiles/xdmod_util.dir/thread_pool.cpp.o"
  "CMakeFiles/xdmod_util.dir/thread_pool.cpp.o.d"
  "libxdmod_util.a"
  "libxdmod_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdmod_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
