# Empty compiler generated dependencies file for test_appkernel.
# This may be replaced when dependencies are built.
