file(REMOVE_RECURSE
  "CMakeFiles/test_appkernel.dir/test_appkernel.cpp.o"
  "CMakeFiles/test_appkernel.dir/test_appkernel.cpp.o.d"
  "test_appkernel"
  "test_appkernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_appkernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
