file(REMOVE_RECURSE
  "CMakeFiles/test_warehouse.dir/test_warehouse.cpp.o"
  "CMakeFiles/test_warehouse.dir/test_warehouse.cpp.o.d"
  "test_warehouse"
  "test_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
