# Empty dependencies file for test_naive_bayes.
# This may be replaced when dependencies are built.
