file(REMOVE_RECURSE
  "CMakeFiles/test_naive_bayes.dir/test_naive_bayes.cpp.o"
  "CMakeFiles/test_naive_bayes.dir/test_naive_bayes.cpp.o.d"
  "test_naive_bayes"
  "test_naive_bayes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_naive_bayes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
