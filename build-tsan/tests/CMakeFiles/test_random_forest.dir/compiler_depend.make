# Empty compiler generated dependencies file for test_random_forest.
# This may be replaced when dependencies are built.
