file(REMOVE_RECURSE
  "CMakeFiles/test_random_forest.dir/test_random_forest.cpp.o"
  "CMakeFiles/test_random_forest.dir/test_random_forest.cpp.o.d"
  "test_random_forest"
  "test_random_forest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
