file(REMOVE_RECURSE
  "CMakeFiles/test_supremm_metrics.dir/test_supremm_metrics.cpp.o"
  "CMakeFiles/test_supremm_metrics.dir/test_supremm_metrics.cpp.o.d"
  "test_supremm_metrics"
  "test_supremm_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_supremm_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
