file(REMOVE_RECURSE
  "CMakeFiles/test_svm.dir/test_svm.cpp.o"
  "CMakeFiles/test_svm.dir/test_svm.cpp.o.d"
  "test_svm"
  "test_svm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_svm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
