file(REMOVE_RECURSE
  "CMakeFiles/test_properties_ml.dir/test_properties_ml.cpp.o"
  "CMakeFiles/test_properties_ml.dir/test_properties_ml.cpp.o.d"
  "test_properties_ml"
  "test_properties_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
