# Empty compiler generated dependencies file for test_properties_ml.
# This may be replaced when dependencies are built.
