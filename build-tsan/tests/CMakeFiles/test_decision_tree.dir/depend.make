# Empty dependencies file for test_decision_tree.
# This may be replaced when dependencies are built.
