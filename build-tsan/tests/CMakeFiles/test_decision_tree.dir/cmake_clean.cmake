file(REMOVE_RECURSE
  "CMakeFiles/test_decision_tree.dir/test_decision_tree.cpp.o"
  "CMakeFiles/test_decision_tree.dir/test_decision_tree.cpp.o.d"
  "test_decision_tree"
  "test_decision_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_decision_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
