# Empty compiler generated dependencies file for test_properties_pipeline.
# This may be replaced when dependencies are built.
