file(REMOVE_RECURSE
  "CMakeFiles/test_properties_pipeline.dir/test_properties_pipeline.cpp.o"
  "CMakeFiles/test_properties_pipeline.dir/test_properties_pipeline.cpp.o.d"
  "test_properties_pipeline"
  "test_properties_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
