file(REMOVE_RECURSE
  "CMakeFiles/test_pca_kmeans.dir/test_pca_kmeans.cpp.o"
  "CMakeFiles/test_pca_kmeans.dir/test_pca_kmeans.cpp.o.d"
  "test_pca_kmeans"
  "test_pca_kmeans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pca_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
