# Empty compiler generated dependencies file for test_pca_kmeans.
# This may be replaced when dependencies are built.
