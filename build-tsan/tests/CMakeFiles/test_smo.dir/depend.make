# Empty dependencies file for test_smo.
# This may be replaced when dependencies are built.
