file(REMOVE_RECURSE
  "CMakeFiles/test_smo.dir/test_smo.cpp.o"
  "CMakeFiles/test_smo.dir/test_smo.cpp.o.d"
  "test_smo"
  "test_smo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
