file(REMOVE_RECURSE
  "CMakeFiles/test_taccstats.dir/test_taccstats.cpp.o"
  "CMakeFiles/test_taccstats.dir/test_taccstats.cpp.o.d"
  "test_taccstats"
  "test_taccstats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_taccstats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
