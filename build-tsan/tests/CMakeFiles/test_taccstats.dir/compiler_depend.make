# Empty compiler generated dependencies file for test_taccstats.
# This may be replaced when dependencies are built.
