file(REMOVE_RECURSE
  "CMakeFiles/test_summary_io.dir/test_summary_io.cpp.o"
  "CMakeFiles/test_summary_io.dir/test_summary_io.cpp.o.d"
  "test_summary_io"
  "test_summary_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_summary_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
