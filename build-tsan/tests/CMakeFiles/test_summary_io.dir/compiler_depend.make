# Empty compiler generated dependencies file for test_summary_io.
# This may be replaced when dependencies are built.
