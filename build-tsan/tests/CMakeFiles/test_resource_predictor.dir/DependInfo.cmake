
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_resource_predictor.cpp" "tests/CMakeFiles/test_resource_predictor.dir/test_resource_predictor.cpp.o" "gcc" "tests/CMakeFiles/test_resource_predictor.dir/test_resource_predictor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/xdmod_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workload/CMakeFiles/xdmod_workload.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/xdmod/CMakeFiles/xdmod_warehouse.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/taccstats/CMakeFiles/xdmod_taccstats.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/lariat/CMakeFiles/xdmod_lariat.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/supremm/CMakeFiles/xdmod_supremm.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ml/CMakeFiles/xdmod_ml.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/xdmod_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
