file(REMOVE_RECURSE
  "CMakeFiles/test_resource_predictor.dir/test_resource_predictor.cpp.o"
  "CMakeFiles/test_resource_predictor.dir/test_resource_predictor.cpp.o.d"
  "test_resource_predictor"
  "test_resource_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resource_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
