file(REMOVE_RECURSE
  "CMakeFiles/test_job_classifier.dir/test_job_classifier.cpp.o"
  "CMakeFiles/test_job_classifier.dir/test_job_classifier.cpp.o.d"
  "test_job_classifier"
  "test_job_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_job_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
