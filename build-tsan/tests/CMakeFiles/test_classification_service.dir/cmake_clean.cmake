file(REMOVE_RECURSE
  "CMakeFiles/test_classification_service.dir/test_classification_service.cpp.o"
  "CMakeFiles/test_classification_service.dir/test_classification_service.cpp.o.d"
  "test_classification_service"
  "test_classification_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_classification_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
