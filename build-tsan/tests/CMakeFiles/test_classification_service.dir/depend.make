# Empty dependencies file for test_classification_service.
# This may be replaced when dependencies are built.
