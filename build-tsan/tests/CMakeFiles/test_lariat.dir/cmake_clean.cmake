file(REMOVE_RECURSE
  "CMakeFiles/test_lariat.dir/test_lariat.cpp.o"
  "CMakeFiles/test_lariat.dir/test_lariat.cpp.o.d"
  "test_lariat"
  "test_lariat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lariat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
