# Empty compiler generated dependencies file for test_lariat.
# This may be replaced when dependencies are built.
