# Empty dependencies file for test_pcp_archive.
# This may be replaced when dependencies are built.
