file(REMOVE_RECURSE
  "CMakeFiles/test_pcp_archive.dir/test_pcp_archive.cpp.o"
  "CMakeFiles/test_pcp_archive.dir/test_pcp_archive.cpp.o.d"
  "test_pcp_archive"
  "test_pcp_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pcp_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
