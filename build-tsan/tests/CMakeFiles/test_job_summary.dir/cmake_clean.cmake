file(REMOVE_RECURSE
  "CMakeFiles/test_job_summary.dir/test_job_summary.cpp.o"
  "CMakeFiles/test_job_summary.dir/test_job_summary.cpp.o.d"
  "test_job_summary"
  "test_job_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_job_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
