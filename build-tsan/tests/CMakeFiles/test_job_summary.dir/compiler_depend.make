# Empty compiler generated dependencies file for test_job_summary.
# This may be replaced when dependencies are built.
