# Empty dependencies file for test_properties_unsupervised.
# This may be replaced when dependencies are built.
