file(REMOVE_RECURSE
  "CMakeFiles/test_properties_unsupervised.dir/test_properties_unsupervised.cpp.o"
  "CMakeFiles/test_properties_unsupervised.dir/test_properties_unsupervised.cpp.o.d"
  "test_properties_unsupervised"
  "test_properties_unsupervised.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_unsupervised.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
