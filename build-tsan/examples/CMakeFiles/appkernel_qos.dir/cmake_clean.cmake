file(REMOVE_RECURSE
  "CMakeFiles/appkernel_qos.dir/appkernel_qos.cpp.o"
  "CMakeFiles/appkernel_qos.dir/appkernel_qos.cpp.o.d"
  "appkernel_qos"
  "appkernel_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appkernel_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
