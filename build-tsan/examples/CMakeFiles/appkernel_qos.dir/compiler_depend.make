# Empty compiler generated dependencies file for appkernel_qos.
# This may be replaced when dependencies are built.
