# Empty dependencies file for classify_unknown_jobs.
# This may be replaced when dependencies are built.
