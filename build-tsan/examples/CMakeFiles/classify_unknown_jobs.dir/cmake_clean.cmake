file(REMOVE_RECURSE
  "CMakeFiles/classify_unknown_jobs.dir/classify_unknown_jobs.cpp.o"
  "CMakeFiles/classify_unknown_jobs.dir/classify_unknown_jobs.cpp.o.d"
  "classify_unknown_jobs"
  "classify_unknown_jobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_unknown_jobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
