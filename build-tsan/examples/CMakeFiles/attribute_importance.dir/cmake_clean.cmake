file(REMOVE_RECURSE
  "CMakeFiles/attribute_importance.dir/attribute_importance.cpp.o"
  "CMakeFiles/attribute_importance.dir/attribute_importance.cpp.o.d"
  "attribute_importance"
  "attribute_importance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attribute_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
