# Empty compiler generated dependencies file for attribute_importance.
# This may be replaced when dependencies are built.
