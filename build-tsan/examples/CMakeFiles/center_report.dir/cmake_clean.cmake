file(REMOVE_RECURSE
  "CMakeFiles/center_report.dir/center_report.cpp.o"
  "CMakeFiles/center_report.dir/center_report.cpp.o.d"
  "center_report"
  "center_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/center_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
