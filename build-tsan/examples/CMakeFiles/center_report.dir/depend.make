# Empty dependencies file for center_report.
# This may be replaced when dependencies are built.
