file(REMOVE_RECURSE
  "CMakeFiles/bench_job_mixture.dir/bench_job_mixture.cpp.o"
  "CMakeFiles/bench_job_mixture.dir/bench_job_mixture.cpp.o.d"
  "bench_job_mixture"
  "bench_job_mixture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_job_mixture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
