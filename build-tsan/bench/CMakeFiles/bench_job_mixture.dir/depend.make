# Empty dependencies file for bench_job_mixture.
# This may be replaced when dependencies are built.
