file(REMOVE_RECURSE
  "CMakeFiles/bench_cross_platform.dir/bench_cross_platform.cpp.o"
  "CMakeFiles/bench_cross_platform.dir/bench_cross_platform.cpp.o.d"
  "bench_cross_platform"
  "bench_cross_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cross_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
