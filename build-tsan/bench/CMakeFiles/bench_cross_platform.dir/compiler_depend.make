# Empty compiler generated dependencies file for bench_cross_platform.
# This may be replaced when dependencies are built.
