file(REMOVE_RECURSE
  "CMakeFiles/bench_importance.dir/bench_importance.cpp.o"
  "CMakeFiles/bench_importance.dir/bench_importance.cpp.o.d"
  "bench_importance"
  "bench_importance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
