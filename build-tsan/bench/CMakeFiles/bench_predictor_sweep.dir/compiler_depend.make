# Empty compiler generated dependencies file for bench_predictor_sweep.
# This may be replaced when dependencies are built.
