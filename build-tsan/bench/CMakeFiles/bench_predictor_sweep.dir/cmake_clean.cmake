file(REMOVE_RECURSE
  "CMakeFiles/bench_predictor_sweep.dir/bench_predictor_sweep.cpp.o"
  "CMakeFiles/bench_predictor_sweep.dir/bench_predictor_sweep.cpp.o.d"
  "bench_predictor_sweep"
  "bench_predictor_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_predictor_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
