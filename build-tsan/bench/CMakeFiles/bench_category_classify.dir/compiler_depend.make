# Empty compiler generated dependencies file for bench_category_classify.
# This may be replaced when dependencies are built.
