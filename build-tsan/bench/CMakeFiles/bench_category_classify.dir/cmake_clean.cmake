file(REMOVE_RECURSE
  "CMakeFiles/bench_category_classify.dir/bench_category_classify.cpp.o"
  "CMakeFiles/bench_category_classify.dir/bench_category_classify.cpp.o.d"
  "bench_category_classify"
  "bench_category_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_category_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
