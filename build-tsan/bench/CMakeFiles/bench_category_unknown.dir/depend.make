# Empty dependencies file for bench_category_unknown.
# This may be replaced when dependencies are built.
