file(REMOVE_RECURSE
  "CMakeFiles/bench_category_unknown.dir/bench_category_unknown.cpp.o"
  "CMakeFiles/bench_category_unknown.dir/bench_category_unknown.cpp.o.d"
  "bench_category_unknown"
  "bench_category_unknown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_category_unknown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
