file(REMOVE_RECURSE
  "CMakeFiles/bench_confusion_matrix.dir/bench_confusion_matrix.cpp.o"
  "CMakeFiles/bench_confusion_matrix.dir/bench_confusion_matrix.cpp.o.d"
  "bench_confusion_matrix"
  "bench_confusion_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_confusion_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
