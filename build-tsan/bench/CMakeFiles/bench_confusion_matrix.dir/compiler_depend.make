# Empty compiler generated dependencies file for bench_confusion_matrix.
# This may be replaced when dependencies are built.
