# Empty compiler generated dependencies file for bench_exit_code.
# This may be replaced when dependencies are built.
