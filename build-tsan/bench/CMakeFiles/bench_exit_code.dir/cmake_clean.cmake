file(REMOVE_RECURSE
  "CMakeFiles/bench_exit_code.dir/bench_exit_code.cpp.o"
  "CMakeFiles/bench_exit_code.dir/bench_exit_code.cpp.o.d"
  "bench_exit_code"
  "bench_exit_code.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exit_code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
