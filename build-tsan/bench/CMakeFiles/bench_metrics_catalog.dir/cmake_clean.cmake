file(REMOVE_RECURSE
  "CMakeFiles/bench_metrics_catalog.dir/bench_metrics_catalog.cpp.o"
  "CMakeFiles/bench_metrics_catalog.dir/bench_metrics_catalog.cpp.o.d"
  "bench_metrics_catalog"
  "bench_metrics_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_metrics_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
