# Empty dependencies file for bench_metrics_catalog.
# This may be replaced when dependencies are built.
