file(REMOVE_RECURSE
  "CMakeFiles/bench_batch_inference.dir/bench_batch_inference.cpp.o"
  "CMakeFiles/bench_batch_inference.dir/bench_batch_inference.cpp.o.d"
  "bench_batch_inference"
  "bench_batch_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_batch_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
