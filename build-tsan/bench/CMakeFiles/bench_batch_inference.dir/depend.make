# Empty dependencies file for bench_batch_inference.
# This may be replaced when dependencies are built.
