# Empty compiler generated dependencies file for bench_time_features.
# This may be replaced when dependencies are built.
