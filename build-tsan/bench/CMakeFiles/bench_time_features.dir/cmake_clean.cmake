file(REMOVE_RECURSE
  "CMakeFiles/bench_time_features.dir/bench_time_features.cpp.o"
  "CMakeFiles/bench_time_features.dir/bench_time_features.cpp.o.d"
  "bench_time_features"
  "bench_time_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_time_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
