file(REMOVE_RECURSE
  "CMakeFiles/bench_unknown_pools.dir/bench_unknown_pools.cpp.o"
  "CMakeFiles/bench_unknown_pools.dir/bench_unknown_pools.cpp.o.d"
  "bench_unknown_pools"
  "bench_unknown_pools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_unknown_pools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
