# Empty dependencies file for bench_unknown_pools.
# This may be replaced when dependencies are built.
