file(REMOVE_RECURSE
  "CMakeFiles/bench_threshold_curves.dir/bench_threshold_curves.cpp.o"
  "CMakeFiles/bench_threshold_curves.dir/bench_threshold_curves.cpp.o.d"
  "bench_threshold_curves"
  "bench_threshold_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_threshold_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
