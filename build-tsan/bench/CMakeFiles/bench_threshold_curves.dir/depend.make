# Empty dependencies file for bench_threshold_curves.
# This may be replaced when dependencies are built.
