# Empty dependencies file for bench_roc_like.
# This may be replaced when dependencies are built.
