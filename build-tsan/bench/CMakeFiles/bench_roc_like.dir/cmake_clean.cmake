file(REMOVE_RECURSE
  "CMakeFiles/bench_roc_like.dir/bench_roc_like.cpp.o"
  "CMakeFiles/bench_roc_like.dir/bench_roc_like.cpp.o.d"
  "bench_roc_like"
  "bench_roc_like.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_roc_like.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
