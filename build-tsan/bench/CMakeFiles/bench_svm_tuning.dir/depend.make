# Empty dependencies file for bench_svm_tuning.
# This may be replaced when dependencies are built.
