file(REMOVE_RECURSE
  "CMakeFiles/bench_svm_tuning.dir/bench_svm_tuning.cpp.o"
  "CMakeFiles/bench_svm_tuning.dir/bench_svm_tuning.cpp.o.d"
  "bench_svm_tuning"
  "bench_svm_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_svm_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
