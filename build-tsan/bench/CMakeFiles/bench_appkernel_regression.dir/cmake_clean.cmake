file(REMOVE_RECURSE
  "CMakeFiles/bench_appkernel_regression.dir/bench_appkernel_regression.cpp.o"
  "CMakeFiles/bench_appkernel_regression.dir/bench_appkernel_regression.cpp.o.d"
  "bench_appkernel_regression"
  "bench_appkernel_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appkernel_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
