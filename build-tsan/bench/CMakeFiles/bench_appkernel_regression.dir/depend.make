# Empty dependencies file for bench_appkernel_regression.
# This may be replaced when dependencies are built.
