file(REMOVE_RECURSE
  "CMakeFiles/bench_efficiency_classify.dir/bench_efficiency_classify.cpp.o"
  "CMakeFiles/bench_efficiency_classify.dir/bench_efficiency_classify.cpp.o.d"
  "bench_efficiency_classify"
  "bench_efficiency_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_efficiency_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
