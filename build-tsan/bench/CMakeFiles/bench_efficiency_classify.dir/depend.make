# Empty dependencies file for bench_efficiency_classify.
# This may be replaced when dependencies are built.
