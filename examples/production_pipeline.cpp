// The production workflow the paper's Section IV envisions ("we do plan
// to develop the machine learning technology ... into production tools
// for use in XDMoD"), file to file:
//
//   1. a site exports its SUPReMM job summaries as CSV,
//   2. a classifier is trained from the CSV and saved to disk,
//   3. a later process loads the model and classifies a new batch,
//      writing predictions back out as CSV,
//   4. a serving process wraps the same model in a ClassificationService
//      and bulk-ingests unidentified traffic through the thread-pooled
//      `ingest_batch` path.
//
//   ./build/examples/production_pipeline [workdir]
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "core/classification_service.hpp"
#include "core/job_classifier.hpp"
#include "supremm/summary_io.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "workload/dataset_helpers.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace xdmodml;
  const std::string workdir = argc > 1 ? argv[1] : ".";
  const std::string train_csv = workdir + "/site_jobs.csv";
  const std::string model_file = workdir + "/app_classifier.model";
  const std::string batch_csv = workdir + "/new_jobs.csv";
  const std::string predictions_csv = workdir + "/predictions.csv";

  // --- 1. Site export: identified jobs with their summaries. ----------
  auto generator = workload::WorkloadGenerator::standard({}, 33);
  {
    const auto jobs =
        workload::summaries_of(generator.generate_balanced(50));
    std::ofstream out(train_csv);
    supremm::write_jobs_csv(out, jobs);
    std::printf("wrote %zu training jobs to %s\n", jobs.size(),
                train_csv.c_str());
  }

  // --- 2. Train from the CSV and persist the model. -------------------
  {
    std::ifstream in(train_csv);
    const auto jobs = supremm::read_jobs_csv(in);
    const auto schema = supremm::AttributeSchema::full();
    const auto train = supremm::build_dataset(
        jobs, schema, supremm::label_by_application());
    core::JobClassifierConfig config;
    config.algorithm = core::Algorithm::kRandomForest;
    config.forest.num_trees = 120;
    core::JobClassifier classifier(config);
    classifier.train(train);
    std::ofstream out(model_file);
    classifier.save(out);
    std::printf("trained on %zu jobs / %zu applications; model saved to "
                "%s\n",
                train.size(), train.class_names.size(),
                model_file.c_str());
  }

  // --- 3. A different process: load the model, classify a new batch. --
  {
    const auto batch = workload::summaries_of(generator.generate_native(200));
    {
      std::ofstream out(batch_csv);
      supremm::write_jobs_csv(out, batch);
    }
    std::ifstream model_in(model_file);
    const auto classifier = core::JobClassifier::load(model_in);

    std::ifstream batch_in(batch_csv);
    const auto jobs = supremm::read_jobs_csv(batch_in);
    std::ofstream out(predictions_csv);
    CsvWriter writer(out);
    writer.write_row(std::vector<std::string>{
        "job_id", "actual_application", "predicted_application",
        "probability"});
    std::size_t correct = 0;
    std::size_t labeled = 0;
    for (const auto& job : jobs) {
      const auto pred = classifier.predict(job);
      writer.write_row(std::vector<std::string>{
          std::to_string(job.job_id), job.application, pred.class_name,
          format_double(pred.probability, 4)});
      if (!job.application.empty()) {
        ++labeled;
        if (pred.class_name == job.application) ++correct;
      }
    }
    std::printf("classified %zu jobs -> %s (accuracy on labeled jobs: "
                "%.1f%%)\n",
                jobs.size(), predictions_csv.c_str(),
                labeled ? 100.0 * static_cast<double>(correct) /
                              static_cast<double>(labeled)
                        : 0.0);
  }

  // --- 4. Serve: bulk-ingest unidentified traffic through the
  //        thread-safe batched service path. ---------------------------
  {
    std::ifstream model_in(model_file);
    auto classifier = std::make_shared<core::JobClassifier>(
        core::JobClassifier::load(model_in));
    core::ClassificationService service(std::move(classifier), 0.5);
    auto traffic = workload::summaries_of(
        generator.generate_na(300, /*community_fraction=*/1.0));
    service.ingest_batch(std::move(traffic));
    std::printf("\n%s", service.report().c_str());
  }
  return 0;
}
