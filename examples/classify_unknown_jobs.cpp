// The paper's headline workflow: train on identified community
// applications, then probe the Uncategorized and NA job pools with a
// probability threshold to decide which unknown jobs are actually
// familiar applications in disguise.
//
//   ./build/examples/classify_unknown_jobs [threshold]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/job_classifier.hpp"
#include "workload/dataset_helpers.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace xdmodml;
  const double threshold = argc > 1 ? std::atof(argv[1]) : 0.9;

  auto generator = workload::WorkloadGenerator::standard({}, 7);
  const auto train_jobs = generator.generate_balanced(60);
  const auto uncategorized = generator.generate_uncategorized(300);
  // The NA pool contains a minority of community applications launched
  // outside ibrun — those are the recoverable ones.
  const auto na = generator.generate_na(300, /*community_fraction=*/0.25);

  const auto schema = supremm::AttributeSchema::full();
  const auto train = workload::build_summary_dataset(
      train_jobs, schema, supremm::label_by_application());

  core::JobClassifierConfig config;
  config.algorithm = core::Algorithm::kSvm;
  core::JobClassifier classifier(config);
  classifier.train(train);
  std::printf("classifier trained on %zu applications; threshold %.2f\n\n",
              train.class_names.size(), threshold);

  auto probe = [&](const char* pool_name,
                   const std::vector<workload::GeneratedJob>& pool) {
    std::size_t classified = 0;
    std::map<std::string, std::size_t> hits;
    for (const auto& job : pool) {
      const auto pred = classifier.predict(job.summary);
      if (pred.probability >= threshold) {
        ++classified;
        ++hits[pred.class_name];
      }
    }
    std::printf("%s pool: %zu of %zu jobs (%.1f%%) classified above "
                "threshold\n",
                pool_name, classified, pool.size(),
                100.0 * static_cast<double>(classified) /
                    static_cast<double>(pool.size()));
    for (const auto& [app, count] : hits) {
      std::printf("    %-12s %zu\n", app.c_str(), count);
    }
    std::printf("\n");
  };
  probe("Uncategorized", uncategorized);
  probe("NA", na);

  std::printf("paper: 'Very few jobs can be classified, on the order of "
              "20%% or less, for a ~0.8 probability threshold' — the "
              "unknown pools are dominated by custom codes unlike any "
              "community application.\n");
  return 0;
}
