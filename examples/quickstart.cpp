// Quickstart: generate a synthetic SUPReMM workload, train the paper's
// SVM job classifier, and classify a few jobs — in ~60 lines.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/job_classifier.hpp"
#include "ml/cross_validation.hpp"
#include "supremm/dataset_builder.hpp"
#include "workload/dataset_helpers.hpp"
#include "workload/generator.hpp"

int main() {
  using namespace xdmodml;

  // 1. Generate a Stampede-like workload.  Every job goes through the
  //    full pipeline: application signature -> node-level TACC_Stats
  //    collector -> SUPReMM aggregation -> Lariat identification.
  auto generator = workload::WorkloadGenerator::standard({}, /*seed=*/42);
  const auto train_jobs = generator.generate_balanced(/*per_class=*/60);
  const auto test_jobs = generator.generate_native(/*count=*/400);
  std::printf("generated %zu training and %zu test jobs\n",
              train_jobs.size(), test_jobs.size());

  // 2. Build a labeled dataset over the full 48-attribute SUPReMM schema.
  const auto schema = supremm::AttributeSchema::full();
  const auto train = workload::build_summary_dataset(
      train_jobs, schema, supremm::label_by_application());
  const auto test = workload::build_summary_dataset(
      test_jobs, schema, supremm::label_by_application(),
      train.class_names);

  // 3. Train the paper's classifier: RBF SVM with gamma=0.1, C=1000 on
  //    standardized attributes, with Platt-calibrated probabilities.
  core::JobClassifierConfig config;
  config.algorithm = core::Algorithm::kSvm;
  core::JobClassifier classifier(config);
  classifier.train(train);
  std::printf("trained %s on %zu jobs over %zu applications\n",
              core::algorithm_name(config.algorithm), train.size(),
              train.class_names.size());

  // 4. Evaluate on the withheld native-mix jobs.
  const auto eval = classifier.evaluate(test);
  std::printf("test accuracy: %.2f%%\n", 100.0 * eval.accuracy);

  // 5. Classify individual jobs with probabilities.
  std::printf("\nsample predictions:\n");
  for (std::size_t i = 0; i < 8 && i < test_jobs.size(); ++i) {
    const auto& job = test_jobs[i].summary;
    const auto pred = classifier.predict(job);
    std::printf("  job %llu: actual %-10s predicted %-10s (p = %.2f)\n",
                static_cast<unsigned long long>(job.job_id),
                job.application.c_str(), pred.class_name.c_str(),
                pred.probability);
  }

  // 6. Tune C with a quick cross-validated sweep at the paper's γ.  All
  //    three C cells (and their CV folds) slice kernel rows out of one
  //    shared per-γ cache — the Gram matrix depends on γ alone, so the
  //    sweep costs little more than a single fit.
  const std::vector<double> gammas{0.1};
  const std::vector<double> cs{10.0, 100.0, 1000.0};
  const auto sweep = ml::svm_grid_search(train, gammas, cs,
                                         ml::SvmGridSearchOptions{});
  std::printf("\nC sweep at gamma=0.1 (3-fold CV):\n");
  for (const auto& pt : sweep) {
    std::printf("  C = %-6g -> %.2f%% CV accuracy\n", pt.c,
                100.0 * pt.cv_accuracy);
  }
  return 0;
}
