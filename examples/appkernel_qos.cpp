// Application-kernel QoS monitoring: generate a season of periodic
// kernel runs with a mid-season filesystem degradation, catch it with the
// CUSUM control chart, and fit the Section-IV wall-time regression.
//
//   ./build/examples/appkernel_qos
#include <cstdio>

#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"
#include "ml/svm.hpp"
#include "util/table.hpp"
#include "xdmod/appkernel.hpp"

int main() {
  using namespace xdmodml;

  // 1. Simulate 120 days of app-kernel runs; the filesystem degrades by
  //    30% between days 70 and 95.
  Rng rng(2015);
  const std::vector<std::string> kernels{"xhpl", "namd", "ior"};
  xdmod::AppKernelHistoryConfig history;
  history.days = 120.0;
  const std::vector<xdmod::DegradationEvent> events{{70.0, 95.0, 1.3}};
  xdmod::AppKernelStore store;
  store.add(xdmod::generate_appkernel_history(kernels, history, events,
                                              rng));
  std::printf("app-kernel store: %zu runs of %zu kernels over %.0f days\n\n",
              store.size(), kernels.size(), history.days);

  // 2. Control-chart every kernel series; report the alarms.
  for (const auto& kernel : store.kernels()) {
    const auto series = store.series(kernel, 8);
    const auto alarms = xdmod::detect_degradations(series, {});
    if (alarms.empty()) {
      std::printf("%-8s (8 nodes): healthy, no alarms\n", kernel.c_str());
    } else {
      std::printf("%-8s (8 nodes): ALARM from day %.1f (%zu alarmed runs) "
                  "— notify support staff\n",
                  kernel.c_str(), series[alarms.front()].day,
                  alarms.size());
    }
  }

  // 3. §IV regression: model wall time from kernel identity and run size.
  const auto ds = store.regression_dataset();
  Rng split_rng(7);
  std::vector<std::size_t> order(ds.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  split_rng.shuffle(order);
  const std::size_t n_train = order.size() * 7 / 10;
  const auto train = ds.subset({order.begin(), order.begin() + n_train});
  const auto test = ds.subset({order.begin() + n_train, order.end()});

  ml::Standardizer standardizer;
  const auto x_train = standardizer.fit_transform(train.X);
  const auto x_test = standardizer.transform(test.X);

  std::printf("\nwall-time regression (train %zu / test %zu):\n",
              train.size(), test.size());
  {
    ml::SvmConfig config;
    config.kernel = ml::Kernel::rbf(0.5);
    config.epsilon = 5.0;
    ml::SvmRegressor svr(config);
    svr.fit(x_train, train.targets);
    const auto pred = svr.predict_batch(x_test);
    std::printf("  eps-SVR:       R^2 = %.4f, MAE = %.1f s\n",
                ml::r_squared(test.targets, pred),
                ml::mean_absolute_error(test.targets, pred));
  }
  {
    ml::ForestConfig config;
    config.num_trees = 150;
    ml::RandomForestRegressor rf(config);
    rf.fit(x_train, train.targets);
    const auto pred = rf.predict_batch(x_test);
    std::printf("  randomForest:  R^2 = %.4f, MAE = %.1f s\n",
                ml::r_squared(test.targets, pred),
                ml::mean_absolute_error(test.targets, pred));
  }
  return 0;
}
