// Attribute-importance study: which SUPReMM metrics carry the
// application signature?  Reproduces the Figure 5 / Figure 6 analyses as
// a library workflow: rank attributes by permutation importance, then
// sweep the predictor count.
//
//   ./build/examples/attribute_importance
#include <cstdio>

#include "core/importance.hpp"
#include "util/table.hpp"
#include "workload/dataset_helpers.hpp"
#include "workload/generator.hpp"

int main() {
  using namespace xdmodml;

  auto generator = workload::WorkloadGenerator::standard({}, 12);
  const auto train_jobs = generator.generate_balanced(60);
  const auto test_jobs = generator.generate_native(800);
  const auto schema = supremm::AttributeSchema::full();
  std::vector<std::string> apps;
  for (const auto& sig : generator.signatures()) {
    apps.push_back(sig.application);
  }
  const auto train = workload::build_summary_dataset(
      train_jobs, schema, supremm::label_by_application(), apps);
  const auto test = workload::build_summary_dataset(
      test_jobs, schema, supremm::label_by_application(), apps);

  // Rank all 48 attributes by random-forest permutation importance.
  ml::ForestConfig forest;
  forest.num_trees = 120;
  const auto ranking = core::rank_attributes(train, forest);
  std::printf("top 10 attributes by mean decrease in accuracy:\n");
  const double top = ranking.front().mean_decrease_accuracy;
  for (std::size_t i = 0; i < 10; ++i) {
    std::printf("  %2zu. %-24s %.4f %s\n", i + 1, ranking[i].name.c_str(),
                ranking[i].mean_decrease_accuracy,
                ascii_bar(ranking[i].mean_decrease_accuracy, top, 24)
                    .c_str());
  }

  // Sweep the predictor count: how few attributes preserve the signature?
  const std::vector<std::size_t> counts{48, 20, 10, 5, 3, 1};
  const auto sweep =
      core::predictor_sweep(train, test, ranking, counts, forest);
  std::printf("\naccuracy vs number of predictors:\n");
  for (const auto& pt : sweep) {
    std::printf("  %2zu predictors: %5.2f%%  %s\n", pt.num_predictors,
                100.0 * pt.accuracy,
                ascii_bar(pt.accuracy, 1.0, 30).c_str());
  }
  std::printf("\nwith 5 predictors the model keeps most of its accuracy "
              "(paper: >= 90%% with CPI, CPLD, CPU SYSTEM, MEMORY USED, "
              "MEMORY USED COV).\n");
  return 0;
}
