// XDMoD-style center report: ingest a month of jobs into the warehouse
// and print the usage breakdowns an HPC center director would ask for —
// then use the classifier to attribute the *unidentified* CPU hours to
// probable applications, the paper's motivating use case.
//
//   ./build/examples/center_report
#include <cstdio>
#include <map>

#include "core/job_classifier.hpp"
#include "workload/dataset_helpers.hpp"
#include "workload/generator.hpp"
#include "xdmod/warehouse.hpp"

int main() {
  using namespace xdmodml;

  // A month of mixed traffic: identified community jobs plus the two
  // unidentified pools.
  auto generator = workload::WorkloadGenerator::standard({}, 99);
  const auto native = generator.generate_native(1200);
  const auto uncategorized = generator.generate_uncategorized(250);
  const auto na = generator.generate_na(250);

  xdmod::Warehouse warehouse;
  warehouse.ingest(workload::summaries_of(native));
  warehouse.ingest(workload::summaries_of(uncategorized));
  warehouse.ingest(workload::summaries_of(na));
  std::printf("warehouse: %zu jobs ingested\n\n", warehouse.size());

  // Standard XDMoD-style breakdowns.
  std::printf("--- CPU hours by label source ---\n%s\n",
              warehouse.report(xdmod::Dimension::kLabelSource,
                               xdmod::Statistic::kCpuHours).c_str());
  std::printf("--- CPU hours by application (identified jobs) ---\n");
  xdmod::Filter identified;
  identified.label_source = supremm::LabelSource::kIdentified;
  std::printf("%s\n", warehouse.report(xdmod::Dimension::kApplication,
                                       xdmod::Statistic::kCpuHours,
                                       identified).c_str());
  std::printf("--- jobs by size bucket ---\n%s\n",
              warehouse.report(xdmod::Dimension::kJobSize,
                               xdmod::Statistic::kJobCount).c_str());
  // Time dimension: the last quarter of the simulated year.
  xdmod::Filter last_quarter;
  last_quarter.start_after = 270.0 * 24.0 * 3600.0;
  std::printf("--- CPU hours by month (last quarter) ---\n%s\n",
              warehouse.report(xdmod::Dimension::kMonth,
                               xdmod::Statistic::kCpuHours,
                               last_quarter).c_str());
  std::printf("--- average CPU user fraction by category ---\n%s\n",
              warehouse.report(xdmod::Dimension::kCategory,
                               xdmod::Statistic::kAvgCpuUser,
                               identified).c_str());

  // Attribute the unidentified CPU hours: train on the identified jobs,
  // classify NA jobs whose probability clears 0.9.
  const auto schema = supremm::AttributeSchema::full();
  const auto train = workload::build_summary_dataset(
      native, schema, supremm::label_by_application());
  core::JobClassifierConfig config;
  config.algorithm = core::Algorithm::kRandomForest;
  config.forest.num_trees = 150;
  core::JobClassifier classifier(config);
  classifier.train(train);

  std::map<std::string, double> attributed;
  double unattributed = 0.0;
  xdmod::Filter na_filter;
  na_filter.label_source = supremm::LabelSource::kNotAvailable;
  for (const auto* job : warehouse.query(na_filter)) {
    const double cpu_hours = job->wall_seconds / 3600.0 * job->nodes *
                             job->cores_per_node;
    const auto pred = classifier.predict(*job);
    if (pred.probability >= 0.9) {
      attributed[pred.class_name] += cpu_hours;
    } else {
      unattributed += cpu_hours;
    }
  }
  std::printf("--- NA CPU hours attributed by the classifier (p >= 0.9) "
              "---\n");
  for (const auto& [app, hours] : attributed) {
    std::printf("  %-12s %10.1f\n", app.c_str(), hours);
  }
  std::printf("  %-12s %10.1f  (custom codes, left unattributed)\n",
              "(unknown)", unattributed);
  return 0;
}
