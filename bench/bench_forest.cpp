// Random-forest training perf harness: exact sort-and-scan splits vs
// histogram-binned splits over a shared BinnedDataset.
//
// Times the forest hot path and records the results as machine-readable
// JSON (BENCH_forest.json by default; override with --json=<path> or
// XDMODML_BENCH_JSON):
//   1. binning cost — one BinnedDataset build over the full training
//      table (the once-per-forest cost the hist arm amortises);
//   2. the headline 200-tree job-classification fit, exact vs hist,
//      with the OOB error of both arms (the acceptance bar: >= 2x
//      wall-clock, OOB within 1% absolute);
//   3. a tree-count sweep (50/100/200 trees) of both arms;
//   4. a feature-width sweep (8/16/full attributes) of both arms, the
//      hist arm deriving each subset from the shared codes via
//      select_features instead of re-binning.
// Every op is a median over warmed-up repeats (time_median_ms); sizes
// honour XDMODML_SCALE like every other bench.  With --metrics the rows
// carry the observability snapshot (tree.nodes, tree.hist_built,
// tree.hist_subtracted, ... — see DESIGN.md §9/§10).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <numeric>
#include <vector>

#include "bench_common.hpp"
#include "ml/binned_dataset.hpp"
#include "ml/random_forest.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace xdmodml;
using namespace xdmodml::bench;

/// Balanced 20-application training set on the full attribute schema.
/// Raw features: trees are invariant to monotone per-feature transforms,
/// so the forest benches (unlike the SVM ones) skip standardization.
ml::Dataset make_forest_dataset(std::size_t per_class) {
  auto gen = workload::WorkloadGenerator::standard({}, 4242);
  const auto jobs = generate_table2_train(gen, per_class);
  const auto schema = supremm::AttributeSchema::full();
  return workload::build_summary_dataset(
      jobs, schema, supremm::label_by_application(), table2_applications());
}

ml::ForestConfig forest_config(std::size_t trees, ml::SplitAlgo algo) {
  ml::ForestConfig cfg;
  cfg.num_trees = trees;
  cfg.tree.split_algo = algo;
  return cfg;
}

/// Fits one forest and returns its OOB error.
double fit_oob(const ml::Dataset& ds, const ml::ForestConfig& cfg,
               std::uint64_t seed = 7) {
  ml::RandomForestClassifier forest(cfg, seed);
  forest.fit(ds.X, ds.labels, static_cast<int>(ds.num_classes()));
  return forest.oob_error();
}

void run_experiment() {
  auto& json = BenchJsonRecorder::instance();
  const std::size_t threads = ThreadPool::global().size();

  // 100 jobs/class ≈ 2000 jobs over the 20 Table-2 applications — the
  // same fixture as the SVM benches, so the two BENCH files describe the
  // same classification problem.
  const std::size_t per_class = scaled(100);
  const std::size_t headline_trees = scaled(200);
  const auto ds = make_forest_dataset(per_class);
  const std::size_t n = ds.size();
  std::printf("=== random-forest split-search timings ===\n");
  std::printf("dataset: %zu jobs, %zu features, %zu classes, %zu threads\n\n",
              n, ds.num_features(), ds.num_classes(), threads);

  // ---- 1. binning cost ---------------------------------------------
  const auto bin_t = time_median_ms([&] {
    const ml::BinnedDataset binned(ds.X);
    benchmark::DoNotOptimize(&binned);
  });
  {
    const ml::BinnedDataset binned(ds.X);
    std::printf(
        "BinnedDataset build      : %9.2f ms  (%zu bins max, %.1f KiB)\n\n",
        bin_t.median_ms, binned.max_bins_used(),
        static_cast<double>(binned.memory_bytes()) / 1024.0);
  }
  json.record("bench_forest", "binned_build", bin_t.median_ms, n, threads,
              bin_t.repeats);

  // ---- 2. headline fit: exact vs hist ------------------------------
  double oob_exact = 0.0;
  double oob_hist = 0.0;
  const auto cfg_exact = forest_config(headline_trees, ml::SplitAlgo::kExact);
  const auto cfg_hist = forest_config(headline_trees, ml::SplitAlgo::kHist);
  const auto exact_t =
      time_median_ms([&] { oob_exact = fit_oob(ds, cfg_exact); }, 3);
  const auto hist_t =
      time_median_ms([&] { oob_hist = fit_oob(ds, cfg_hist); }, 3);
  std::printf("%zu-tree fit (%zu jobs, median of %zu):\n", headline_trees, n,
              exact_t.repeats);
  std::printf("  exact splits : %9.2f ms  (OOB %.4f)\n", exact_t.median_ms,
              oob_exact);
  std::printf("  hist splits  : %9.2f ms  (OOB %.4f)\n", hist_t.median_ms,
              oob_hist);
  std::printf("  speedup      : %9.2fx  (OOB delta %+.4f)\n\n",
              exact_t.median_ms / hist_t.median_ms, oob_hist - oob_exact);
  json.record("bench_forest", "fit200_exact", exact_t.median_ms, n, threads,
              exact_t.repeats);
  json.record("bench_forest", "fit200_hist", hist_t.median_ms, n, threads,
              hist_t.repeats);
  // OOB error in percent, recorded so the trajectory can assert parity
  // (wall_ms carries the value; these rows are accuracy, not time).
  json.record("bench_forest", "oob200_exact_pct", 100.0 * oob_exact, n,
              threads, exact_t.repeats);
  json.record("bench_forest", "oob200_hist_pct", 100.0 * oob_hist, n, threads,
              hist_t.repeats);

  // ---- 3. tree-count sweep -----------------------------------------
  std::printf("tree-count sweep (median of 3):\n");
  for (const std::size_t base : {50, 100, 200}) {
    const std::size_t trees = scaled(static_cast<std::size_t>(base));
    const auto ce = forest_config(trees, ml::SplitAlgo::kExact);
    const auto ch = forest_config(trees, ml::SplitAlgo::kHist);
    const auto te = time_median_ms([&] { fit_oob(ds, ce); }, 3);
    const auto th = time_median_ms([&] { fit_oob(ds, ch); }, 3);
    std::printf("  %4zu trees: exact %9.2f ms, hist %9.2f ms  (%.2fx)\n",
                trees, te.median_ms, th.median_ms,
                te.median_ms / th.median_ms);
    json.record("bench_forest", "trees" + std::to_string(base) + "_exact",
                te.median_ms, n, threads, te.repeats);
    json.record("bench_forest", "trees" + std::to_string(base) + "_hist",
                th.median_ms, n, threads, th.repeats);
  }
  std::printf("\n");

  // ---- 4. feature-width sweep --------------------------------------
  // The hist arm reuses the full-table codes: each width's dataset is a
  // select_features view of the one shared BinnedDataset, the same path
  // the predictor-sweep experiment (Figure 6) takes per cutoff.
  const auto shared = std::make_shared<const ml::BinnedDataset>(ds.X);
  std::vector<std::size_t> all_rows(n);
  std::iota(all_rows.begin(), all_rows.end(), 0);
  const std::size_t sweep_trees = scaled(100);
  std::printf("feature-width sweep (%zu trees, median of 3):\n", sweep_trees);
  for (const std::size_t width : {std::size_t{8}, std::size_t{16},
                                  ds.num_features()}) {
    if (width > ds.num_features()) continue;
    std::vector<std::size_t> keep(width);
    std::iota(keep.begin(), keep.end(), 0);
    const auto sub = ds.select_features(keep);
    const auto ce = forest_config(sweep_trees, ml::SplitAlgo::kExact);
    const auto ch = forest_config(sweep_trees, ml::SplitAlgo::kHist);
    const auto te = time_median_ms([&] { fit_oob(sub, ce); }, 3);
    const auto th = time_median_ms(
        [&] {
          const auto sub_binned = std::make_shared<const ml::BinnedDataset>(
              shared->select_features(keep));
          ml::RandomForestClassifier forest(ch, 7);
          forest.fit_rows(sub.X, sub.labels,
                          static_cast<int>(sub.num_classes()), all_rows,
                          sub_binned);
        },
        3);
    std::printf("  %4zu features: exact %9.2f ms, hist %9.2f ms  (%.2fx)\n",
                width, te.median_ms, th.median_ms,
                te.median_ms / th.median_ms);
    json.record("bench_forest", "width" + std::to_string(width) + "_exact",
                te.median_ms, n, threads, te.repeats);
    json.record("bench_forest", "width" + std::to_string(width) + "_hist",
                th.median_ms, n, threads, th.repeats);
  }
  json.write();
}

void bm_forest_fit_exact(benchmark::State& state) {
  const auto ds = make_forest_dataset(20);
  const auto cfg = forest_config(20, ml::SplitAlgo::kExact);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fit_oob(ds, cfg));
  }
}
BENCHMARK(bm_forest_fit_exact)->Unit(benchmark::kMillisecond);

void bm_forest_fit_hist(benchmark::State& state) {
  const auto ds = make_forest_dataset(20);
  const auto cfg = forest_config(20, ml::SplitAlgo::kHist);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fit_oob(ds, cfg));
  }
}
BENCHMARK(bm_forest_fit_hist)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  auto& json = xdmodml::bench::BenchJsonRecorder::instance();
  json.parse_args(argc, argv);
  if (!json.enabled()) json.set_path("BENCH_forest.json");
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
