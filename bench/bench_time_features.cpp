// X1 — Section IV: time-dependent attributes.
//
// Paper: "We have made some preliminary randomForest models in which time
// dependent attributes rather than the mean attributes were used for the
// classification.  These models worked very well and were approximately
// as good as the models using mean attributes."  This bench compares
// mean-attribute, time-shape-attribute, and combined models.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace xdmodml;
using namespace xdmodml::bench;

void run_experiment() {
  auto gen = workload::WorkloadGenerator::standard({}, 888);
  const auto train_jobs = gen.generate_balanced(scaled(120));
  const auto test_jobs = gen.generate_native(scaled(2500));
  const auto schema = supremm::AttributeSchema::full();
  const auto time_names = gen.time_feature_names();
  std::vector<std::string> apps;
  for (const auto& sig : gen.signatures()) apps.push_back(sig.application);

  auto evaluate = [&](const ml::Dataset& train, const ml::Dataset& test) {
    ml::Standardizer st;
    const auto X = st.fit_transform(train.X);
    ml::ForestConfig fc;
    fc.num_trees = 200;
    ml::RandomForestClassifier rf(fc, 3);
    rf.fit(X, train.labels, static_cast<int>(train.num_classes()));
    const auto Xt = st.transform(test.X);
    const auto pred = rf.predict_batch(Xt);
    return ml::accuracy(test.labels, pred);
  };

  std::printf("=== Section IV: time-dependent attributes (randomForest) "
              "===\n");
  TextTable table({"attribute set", "# attributes", "accuracy %"});

  const auto label = supremm::label_by_application();
  {
    const auto train =
        workload::build_summary_dataset(train_jobs, schema, label, apps);
    const auto test =
        workload::build_summary_dataset(test_jobs, schema, label, apps);
    table.add_row({"mean/COV attributes", std::to_string(schema.size()),
                   format_percent(evaluate(train, test), 2)});
  }
  {
    const auto train =
        workload::build_time_dataset(train_jobs, time_names, label, apps);
    const auto test =
        workload::build_time_dataset(test_jobs, time_names, label, apps);
    table.add_row({"time-shape attributes", std::to_string(time_names.size()),
                   format_percent(evaluate(train, test), 2)});
  }
  {
    const auto train = workload::build_combined_dataset(
        train_jobs, schema, time_names, label, apps);
    const auto test = workload::build_combined_dataset(
        test_jobs, schema, time_names, label, apps);
    table.add_row({"combined",
                   std::to_string(schema.size() + time_names.size()),
                   format_percent(evaluate(train, test), 2)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\npaper: time-dependent models 'worked very well and were "
              "approximately as good as the models using mean attributes'. "
              "Note the time-shape attributes alone carry less absolute "
              "signal but are platform-normalized (see "
              "bench_cross_platform).\n");
}

void bm_time_feature_extraction(benchmark::State& state) {
  auto gen = workload::WorkloadGenerator::standard({}, 889);
  for (auto _ : state) {
    auto jobs = gen.generate_native(50);
    benchmark::DoNotOptimize(jobs.front().time_features);
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(bm_time_feature_extraction)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
