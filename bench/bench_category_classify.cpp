// T3 — Table 3: classification by broad application category.
//
// Paper: applications grouped into 12 broad categories; an SVM classifies
// known applications into the categories with a 97% success rate; groups
// with very few jobs classify worst (benchmark 76%, Math 74%, Python 66%)
// while the dominant MD and QC,ES groups exceed 98%.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace xdmodml;
using namespace xdmodml::bench;

void run_experiment() {
  auto gen = workload::WorkloadGenerator::standard({}, 444);
  // Balanced-by-application training over ALL community apps (the
  // category mixture then follows the table's app-per-category counts).
  const auto train_jobs = gen.generate_balanced(scaled(120));
  const auto test_jobs = gen.generate_native(scaled(3000));
  const auto schema = supremm::AttributeSchema::full();
  const auto categories = gen.table().categories();

  const auto train = workload::build_summary_dataset(
      train_jobs, schema, supremm::label_by_category(), categories);
  const auto test = workload::build_summary_dataset(
      test_jobs, schema, supremm::label_by_category(), categories);

  std::printf("=== Table 3: classification by general application type ===\n");
  std::printf("train %zu jobs (app-balanced), test %zu native-mix jobs, "
              "%zu categories\n",
              train.size(), test.size(), categories.size());

  core::JobClassifierConfig cfg;
  cfg.algorithm = core::Algorithm::kSvm;
  core::JobClassifier clf(cfg);
  clf.train(train);
  const auto eval = clf.evaluate(test);

  TextTable table({"group name", "number", "% mix", "% correct"});
  const auto totals = eval.confusion.actual_totals();
  for (std::size_t c = 0; c < categories.size(); ++c) {
    const double mix = 100.0 * static_cast<double>(totals[c]) /
                       static_cast<double>(test.size());
    table.add_row({categories[c], std::to_string(totals[c]),
                   format_double(mix, 2),
                   format_percent(
                       eval.confusion.recall(static_cast<int>(c)), 2)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\noverall category accuracy: %s%% (paper: 97%%)\n",
              format_percent(eval.accuracy, 2).c_str());
  std::printf("paper's note: 'The only groups that are not well classified "
              "are those which are represented by a very small number of "
              "jobs.'\n");
}

void bm_category_dataset_build(benchmark::State& state) {
  auto gen = workload::WorkloadGenerator::standard({}, 445);
  const auto jobs = gen.generate_native(800);
  const auto schema = supremm::AttributeSchema::full();
  for (auto _ : state) {
    auto ds = workload::build_summary_dataset(
        jobs, schema, supremm::label_by_category());
    benchmark::DoNotOptimize(ds);
  }
}
BENCHMARK(bm_category_dataset_build)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
