// T2 — Table 2: the 20-application SVM confusion matrix.
//
// Paper protocol: RBF SVM (γ = 0.1, C = 1000) trained on an
// application-balanced mixture, evaluated on a native-mix test set over
// the same 20 applications; ~97% correctly classified, with the confusion
// structure dominated by (a) the heavy hitters VASP/NAMD absorbing
// stragglers and (b) similar codes (the MD family) confusing each other.
// Ablation arm: training on the *native* (unbalanced) mix instead.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace xdmodml;
using namespace xdmodml::bench;

void run_experiment() {
  auto gen = workload::WorkloadGenerator::standard({}, 2015);
  const auto per_class = scaled(350);
  const auto train_jobs = generate_table2_train(gen, per_class);
  const auto test_jobs = generate_table2_test(gen, scaled(2500));
  const auto schema = supremm::AttributeSchema::full();
  const auto& apps = table2_applications();

  const auto train = workload::build_summary_dataset(
      train_jobs, schema, supremm::label_by_application(), apps);
  const auto test = workload::build_summary_dataset(
      test_jobs, schema, supremm::label_by_application(), apps);

  std::printf("=== Table 2: svm classifier confusion matrix ===\n");
  std::printf("balanced train: %zu jobs (%zu per app); native-mix test: "
              "%zu jobs\n",
              train.size(), per_class, test.size());

  core::JobClassifierConfig cfg;
  cfg.algorithm = core::Algorithm::kSvm;  // γ=0.1, C=1000 defaults
  core::JobClassifier clf(cfg);
  clf.train(train);
  const auto train_eval = clf.evaluate(train);
  const auto eval = clf.evaluate(test);

  std::printf("\ntrain-set accuracy: %s%% (paper: 99.95%%)\n",
              format_percent(train_eval.accuracy, 2).c_str());
  std::printf("test-set accuracy:  %s%% (paper: ~97%%)\n\n",
              format_percent(eval.accuracy, 2).c_str());
  std::printf("%s", eval.confusion.render_paper_style(apps).c_str());

  // Ablations around the paper's remark that misclassification into the
  // dominant applications "could possibly be ameliorated by weighting
  // the classes or using a non-native job mixture":
  //  (a) native-mix training (no balancing at all);
  //  (b) native-mix training with inverse-frequency class weights.
  const auto native_train_jobs = generate_table2_test(gen, train.size());
  const auto native_train = workload::build_summary_dataset(
      native_train_jobs, schema, supremm::label_by_application(), apps);
  core::JobClassifier native_clf(cfg);
  native_clf.train(native_train);
  const auto native_eval = native_clf.evaluate(test);
  std::printf("\nablation — native-mix training (same size): accuracy %s%%\n",
              format_percent(native_eval.accuracy, 2).c_str());

  {
    core::JobClassifierConfig weighted_cfg = cfg;
    const auto counts = native_train.class_counts();
    const double mean_count = static_cast<double>(native_train.size()) /
                              static_cast<double>(counts.size());
    weighted_cfg.svm.class_weights.clear();
    for (const auto count : counts) {
      weighted_cfg.svm.class_weights.push_back(
          count > 0 ? mean_count / static_cast<double>(count) : 1.0);
    }
    core::JobClassifier weighted_clf(weighted_cfg);
    weighted_clf.train(native_train);
    const auto weighted_eval = weighted_clf.evaluate(test);
    std::printf("ablation — native-mix training + inverse-frequency class "
                "weights: accuracy %s%%\n",
                format_percent(weighted_eval.accuracy, 2).c_str());
  }

  // Per-class recall for the dominant applications.
  std::printf("\nper-application recall (balanced-train svm):\n");
  TextTable table({"application", "test jobs", "recall %", "precision %"});
  const auto totals = eval.confusion.actual_totals();
  for (std::size_t c = 0; c < apps.size(); ++c) {
    table.add_row({apps[c], std::to_string(totals[c]),
                   format_percent(eval.confusion.recall(static_cast<int>(c)), 1),
                   format_percent(
                       eval.confusion.precision(static_cast<int>(c)), 1)});
  }
  std::printf("%s", table.render().c_str());
}

void bm_svm_predict(benchmark::State& state) {
  auto gen = workload::WorkloadGenerator::standard({}, 2016);
  std::vector<workload::GeneratedJob> train_jobs;
  for (const auto& app : {"VASP", "NAMD", "LAMMPS", "GROMACS"}) {
    auto batch = gen.generate_for(app, 80);
    train_jobs.insert(train_jobs.end(),
                      std::make_move_iterator(batch.begin()),
                      std::make_move_iterator(batch.end()));
  }
  const auto schema = supremm::AttributeSchema::full();
  const auto train = workload::build_summary_dataset(
      train_jobs, schema, supremm::label_by_application());
  core::JobClassifierConfig cfg;
  cfg.algorithm = core::Algorithm::kSvm;
  core::JobClassifier clf(cfg);
  clf.train(train);
  const auto probe = train_jobs.front().summary;
  for (auto _ : state) {
    auto pred = clf.predict(probe);
    benchmark::DoNotOptimize(pred);
  }
}
BENCHMARK(bm_svm_predict)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
