// Hyper-parameter tuning — the provenance of "γ = 0.1 and C = 1000".
//
// The paper states its SVM was "tuned with γ = 0.1 and C = 1000"; this
// bench reproduces such a tuning run: a (γ, C) grid searched with
// 3-fold cross-validation on a balanced application mixture, printed as
// a CV-accuracy heat map.  The paper's cell should sit in the winning
// region.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "ml/cross_validation.hpp"

namespace {

using namespace xdmodml;
using namespace xdmodml::bench;

void run_experiment() {
  auto gen = workload::WorkloadGenerator::standard({}, 1999);
  // A compact 8-application tuning set keeps the grid affordable.
  const std::vector<std::string> apps{"VASP",   "NAMD",  "GROMACS",
                                      "LAMMPS", "WRF",   "PYTHON",
                                      "GAUSSIAN", "CACTUS"};
  std::vector<workload::GeneratedJob> jobs;
  for (const auto& app : apps) {
    auto batch = gen.generate_for(app, scaled(80));
    jobs.insert(jobs.end(), std::make_move_iterator(batch.begin()),
                std::make_move_iterator(batch.end()));
  }
  const auto schema = supremm::AttributeSchema::full();
  const auto ds = workload::build_summary_dataset(
      jobs, schema, supremm::label_by_application(), apps);

  const std::vector<double> gammas{0.001, 0.01, 0.1, 1.0};
  const std::vector<double> cs{1.0, 10.0, 100.0, 1000.0};
  std::printf("=== SVM (γ, C) grid search, 3-fold CV, %zu jobs, "
              "%zu applications ===\n\n",
              ds.size(), apps.size());
  const auto points = ml::svm_grid_search(ds, gammas, cs, 3, 7);

  // Render as a γ-row / C-column heat map.
  std::vector<std::string> header{"gamma \\ C"};
  for (const double c : cs) header.push_back(format_double(c, 0));
  TextTable table(std::move(header));
  for (const double gamma : gammas) {
    std::vector<std::string> row{format_double(gamma, 3)};
    for (const double c : cs) {
      for (const auto& pt : points) {
        if (pt.gamma == gamma && pt.c == c) {
          row.push_back(format_percent(pt.cv_accuracy, 1));
        }
      }
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nbest cell: gamma=%g C=%g at %s%% CV accuracy\n",
              points.front().gamma, points.front().c,
              format_percent(points.front().cv_accuracy, 2).c_str());
  for (const auto& pt : points) {
    if (pt.gamma == 0.1 && pt.c == 1000.0) {
      std::printf("paper's cell (gamma=0.1, C=1000): %s%% — %.1f points "
                  "behind the best cell at this training size\n",
                  format_percent(pt.cv_accuracy, 2).c_str(),
                  100.0 * (points.front().cv_accuracy - pt.cv_accuracy));
    }
  }
  std::printf("\nnote: the optimal gamma grows with training density — a "
              "local kernel needs neighbours.  Small tuning sets favour "
              "smoother kernels (gamma <= 0.01); the paper tuned at ~100k "
              "jobs where gamma=0.1 pays off (see bench_scaling for the "
              "sample-size effect).  Re-run with XDMODML_SCALE=4 to watch "
              "the winning cell migrate toward the paper's.\n");
}

void bm_cv_fold(benchmark::State& state) {
  auto gen = workload::WorkloadGenerator::standard({}, 2000);
  std::vector<workload::GeneratedJob> jobs;
  for (const auto& app : {"VASP", "NAMD", "PYTHON"}) {
    auto batch = gen.generate_for(app, 50);
    jobs.insert(jobs.end(), std::make_move_iterator(batch.begin()),
                std::make_move_iterator(batch.end()));
  }
  const auto schema = supremm::AttributeSchema::full();
  const auto ds = workload::build_summary_dataset(
      jobs, schema, supremm::label_by_application());
  for (auto _ : state) {
    ml::SvmConfig cfg;
    cfg.probability = false;
    auto result = ml::cross_validate(
        ds,
        [&cfg] { return std::make_unique<ml::SvmClassifier>(cfg); }, 3);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(bm_cv_fold)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
