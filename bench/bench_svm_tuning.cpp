// Hyper-parameter tuning — the provenance of "γ = 0.1 and C = 1000".
//
// The paper states its SVM was "tuned with γ = 0.1 and C = 1000"; this
// bench reproduces such a tuning run: a (γ, C) grid searched with
// 3-fold cross-validation on a balanced application mixture, printed as
// a CV-accuracy heat map.  The paper's cell should sit in the winning
// region.
//
// The sweep is also the perf harness for cross-grid/cross-fold kernel
// reuse: the fold assignment and standardization are hoisted out of the
// cell loop, so each γ row can share one full-matrix kernel-row cache
// across every C cell and every CV fold.  Timings for the reuse arm vs
// per-cell refits (and the float32 vs float64 row-storage ablation) are
// recorded as JSON (BENCH_tuning.json by default; override with
// --json=<path> or XDMODML_BENCH_JSON).  Reuse is pure plumbing — the
// arms must produce bit-identical accuracy tables, which this bench
// verifies on every run.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "ml/cross_validation.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace xdmodml;
using namespace xdmodml::bench;

bool tables_identical(const std::vector<ml::GridPoint>& a,
                      const std::vector<ml::GridPoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].gamma != b[i].gamma || a[i].c != b[i].c ||
        a[i].cv_accuracy != b[i].cv_accuracy) {
      return false;
    }
  }
  return true;
}

void run_experiment() {
  auto& json = BenchJsonRecorder::instance();
  const std::size_t threads = ThreadPool::global().size();

  auto gen = workload::WorkloadGenerator::standard({}, 1999);
  // A compact 8-application tuning set keeps the grid affordable.
  const std::vector<std::string> apps{"VASP",   "NAMD",  "GROMACS",
                                      "LAMMPS", "WRF",   "PYTHON",
                                      "GAUSSIAN", "CACTUS"};
  std::vector<workload::GeneratedJob> jobs;
  for (const auto& app : apps) {
    auto batch = gen.generate_for(app, scaled(80));
    jobs.insert(jobs.end(), std::make_move_iterator(batch.begin()),
                std::make_move_iterator(batch.end()));
  }
  const auto schema = supremm::AttributeSchema::full();
  const auto ds = workload::build_summary_dataset(
      jobs, schema, supremm::label_by_application(), apps);

  const std::vector<double> gammas{0.001, 0.01, 0.1, 1.0};
  const std::vector<double> cs{1.0, 10.0, 100.0, 1000.0};
  std::printf("=== SVM (γ, C) grid search, 3-fold CV, %zu jobs, "
              "%zu applications ===\n\n",
              ds.size(), apps.size());

  // Three timed arms over the identical grid: per-cell refits (the
  // pre-reuse baseline), the shared per-γ cache with float64 rows, and
  // the default float32 rows (same byte budget, twice the rows).
  ml::SvmGridSearchOptions refit;
  refit.seed = 7;
  refit.reuse_kernel_cache = false;
  ml::SvmGridSearchOptions reuse64 = refit;
  reuse64.reuse_kernel_cache = true;
  reuse64.cache_precision = ml::GramPrecision::kFloat64;
  ml::SvmGridSearchOptions reuse32 = reuse64;
  reuse32.cache_precision = ml::GramPrecision::kFloat32;

  std::vector<ml::GridPoint> points_refit;
  std::vector<ml::GridPoint> points_reuse64;
  std::vector<ml::GridPoint> points;
  const auto refit_t = time_median_ms(
      [&] { points_refit = ml::svm_grid_search(ds, gammas, cs, refit); }, 3);
  const auto reuse64_t = time_median_ms(
      [&] { points_reuse64 = ml::svm_grid_search(ds, gammas, cs, reuse64); },
      3);
  const auto reuse32_t = time_median_ms(
      [&] { points = ml::svm_grid_search(ds, gammas, cs, reuse32); }, 3);
  const double refit_ms = refit_t.median_ms;
  const double reuse64_ms = reuse64_t.median_ms;
  const double reuse32_ms = reuse32_t.median_ms;
  json.record("bench_svm_tuning", "sweep_refit_per_cell", refit_ms,
              ds.size(), threads, refit_t.repeats);
  json.record("bench_svm_tuning", "sweep_reuse_f64", reuse64_ms, ds.size(),
              threads, reuse64_t.repeats);
  json.record("bench_svm_tuning", "sweep_reuse_f32", reuse32_ms, ds.size(),
              threads, reuse32_t.repeats);

  // Render as a γ-row / C-column heat map.
  std::vector<std::string> header{"gamma \\ C"};
  for (const double c : cs) header.push_back(format_double(c, 0));
  TextTable table(std::move(header));
  for (const double gamma : gammas) {
    std::vector<std::string> row{format_double(gamma, 3)};
    for (const double c : cs) {
      for (const auto& pt : points) {
        if (pt.gamma == gamma && pt.c == c) {
          row.push_back(format_percent(pt.cv_accuracy, 1));
        }
      }
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nbest cell: gamma=%g C=%g at %s%% CV accuracy\n",
              points.front().gamma, points.front().c,
              format_percent(points.front().cv_accuracy, 2).c_str());
  for (const auto& pt : points) {
    if (pt.gamma == 0.1 && pt.c == 1000.0) {
      std::printf("paper's cell (gamma=0.1, C=1000): %s%% — %.1f points "
                  "behind the best cell at this training size\n",
                  format_percent(pt.cv_accuracy, 2).c_str(),
                  100.0 * (points.front().cv_accuracy - pt.cv_accuracy));
    }
  }

  std::printf("\nsweep wall time: refit per cell %.0f ms | shared cache "
              "f64 %.0f ms (%.2fx) | shared cache f32 %.0f ms (%.2fx)\n",
              refit_ms, reuse64_ms, refit_ms / reuse64_ms, reuse32_ms,
              refit_ms / reuse32_ms);
  std::printf("accuracy tables across the arms: %s\n",
              tables_identical(points, points_refit) &&
                      tables_identical(points, points_reuse64)
                  ? "bit-identical (reuse is pure plumbing)"
                  : "MISMATCH — reuse changed results!");

  std::printf("\nnote: the optimal gamma grows with training density — a "
              "local kernel needs neighbours.  Small tuning sets favour "
              "smoother kernels (gamma <= 0.01); the paper tuned at ~100k "
              "jobs where gamma=0.1 pays off (see bench_scaling for the "
              "sample-size effect).  Re-run with XDMODML_SCALE=4 to watch "
              "the winning cell migrate toward the paper's.\n");
  json.write();
}

void bm_cv_fold(benchmark::State& state) {
  auto gen = workload::WorkloadGenerator::standard({}, 2000);
  std::vector<workload::GeneratedJob> jobs;
  for (const auto& app : {"VASP", "NAMD", "PYTHON"}) {
    auto batch = gen.generate_for(app, 50);
    jobs.insert(jobs.end(), std::make_move_iterator(batch.begin()),
                std::make_move_iterator(batch.end()));
  }
  const auto schema = supremm::AttributeSchema::full();
  const auto ds = workload::build_summary_dataset(
      jobs, schema, supremm::label_by_application());
  for (auto _ : state) {
    ml::SvmConfig cfg;
    cfg.probability = false;
    auto result = ml::cross_validate(
        ds,
        [&cfg] { return std::make_unique<ml::SvmClassifier>(cfg); }, 3);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(bm_cv_fold)->Unit(benchmark::kMillisecond);

void bm_grid_sweep(benchmark::State& state) {
  const bool reuse = state.range(0) != 0;
  auto gen = workload::WorkloadGenerator::standard({}, 2001);
  std::vector<workload::GeneratedJob> jobs;
  for (const auto& app : {"VASP", "NAMD", "PYTHON", "WRF"}) {
    auto batch = gen.generate_for(app, 40);
    jobs.insert(jobs.end(), std::make_move_iterator(batch.begin()),
                std::make_move_iterator(batch.end()));
  }
  const auto schema = supremm::AttributeSchema::full();
  const auto ds = workload::build_summary_dataset(
      jobs, schema, supremm::label_by_application());
  const std::vector<double> gammas{0.01, 0.1};
  const std::vector<double> cs{1.0, 10.0, 100.0};
  ml::SvmGridSearchOptions options;
  options.reuse_kernel_cache = reuse;
  for (auto _ : state) {
    auto result = ml::svm_grid_search(ds, gammas, cs, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(bm_grid_sweep)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("reuse")
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  auto& json = BenchJsonRecorder::instance();
  json.parse_args(argc, argv);
  if (!json.enabled()) json.set_path("BENCH_tuning.json");
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
