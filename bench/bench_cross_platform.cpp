// X2 — Section IV: cross-platform classification.
//
// Paper: "Some initial efforts developing time dependent attribute based
// cross platform classification models showed limited success.  They were
// superior to the mean based cross platform classifiers."  We train on a
// Stampede-like platform and test on a Haswell-era platform with
// different clock, core count, memory and fabric scales: mean-value
// signatures shift with the hardware, but the normalized time-shape
// attributes mostly survive the move.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace xdmodml;
using namespace xdmodml::bench;

void run_experiment() {
  workload::GeneratorConfig stampede_cfg;
  stampede_cfg.platform = workload::Platform::stampede();
  workload::GeneratorConfig maverick_cfg;
  maverick_cfg.platform = workload::Platform::maverick();

  auto gen_a = workload::WorkloadGenerator::standard(stampede_cfg, 991);
  auto gen_b = workload::WorkloadGenerator::standard(maverick_cfg, 992);

  const auto train_jobs = gen_a.generate_balanced(scaled(120));
  const auto same_test = gen_a.generate_native(scaled(1500));
  const auto cross_test = gen_b.generate_native(scaled(1500));
  const auto schema = supremm::AttributeSchema::full();
  const auto time_names = gen_a.time_feature_names();
  std::vector<std::string> apps;
  for (const auto& sig : gen_a.signatures()) apps.push_back(sig.application);

  auto evaluate = [&](const ml::Dataset& train, const ml::Dataset& test) {
    ml::Standardizer st;
    const auto X = st.fit_transform(train.X);
    ml::ForestConfig fc;
    fc.num_trees = 200;
    ml::RandomForestClassifier rf(fc, 4);
    rf.fit(X, train.labels, static_cast<int>(train.num_classes()));
    const auto Xt = st.transform(test.X);
    return ml::accuracy(test.labels, rf.predict_batch(Xt));
  };

  std::printf("=== Section IV: cross-platform classification ===\n");
  std::printf("train: %s; test: %s vs %s\n",
              stampede_cfg.platform.name.c_str(),
              stampede_cfg.platform.name.c_str(),
              maverick_cfg.platform.name.c_str());
  TextTable table({"attribute set", "same-platform %", "cross-platform %"});

  const auto label = supremm::label_by_application();
  {
    const auto train =
        workload::build_summary_dataset(train_jobs, schema, label, apps);
    const auto same =
        workload::build_summary_dataset(same_test, schema, label, apps);
    const auto cross =
        workload::build_summary_dataset(cross_test, schema, label, apps);
    table.add_row({"mean/COV attributes",
                   format_percent(evaluate(train, same), 2),
                   format_percent(evaluate(train, cross), 2)});
  }
  {
    const auto train =
        workload::build_time_dataset(train_jobs, time_names, label, apps);
    const auto same =
        workload::build_time_dataset(same_test, time_names, label, apps);
    const auto cross =
        workload::build_time_dataset(cross_test, time_names, label, apps);
    table.add_row({"time attributes (raw + shape)",
                   format_percent(evaluate(train, same), 2),
                   format_percent(evaluate(train, cross), 2)});

    // Shape-only arm: restrict to the dimensionless temporal statistics
    // (the trailing _tcov/_burst/_trend columns) — the only part of the
    // signature that does not move with the hardware.
    std::vector<std::size_t> shape_cols;
    for (std::size_t i = 0; i < time_names.size(); ++i) {
      const auto& name = time_names[i];
      if (name.find("_tcov") != std::string::npos ||
          name.find("_burst") != std::string::npos ||
          name.find("_trend") != std::string::npos) {
        shape_cols.push_back(i);
      }
    }
    const auto train_shape = train.select_features(shape_cols);
    const auto same_shape = same.select_features(shape_cols);
    const auto cross_shape = cross.select_features(shape_cols);
    table.add_row({"time attributes (shape only)",
                   format_percent(evaluate(train_shape, same_shape), 2),
                   format_percent(evaluate(train_shape, cross_shape), 2)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\npaper: cross-platform classification shows 'limited "
              "success'; time-dependent attribute models are 'superior to "
              "the mean based cross platform classifiers'.  The mean and "
              "raw-rate attributes move with the hardware; only the "
              "dimensionless temporal-shape statistics survive the "
              "platform change, which is why their cross-platform drop is "
              "the smallest.\n");
}

void bm_cross_platform_generation(benchmark::State& state) {
  workload::GeneratorConfig cfg;
  cfg.platform = workload::Platform::maverick();
  auto gen = workload::WorkloadGenerator::standard(cfg, 993);
  for (auto _ : state) {
    auto jobs = gen.generate_native(100);
    benchmark::DoNotOptimize(jobs);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(bm_cross_platform_generation)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
