// Training-set scaling study (documents the one systematic deviation
// from the paper).
//
// The paper's application classifier trains on a 100 k-job balanced
// mixture (~5 000 per application); the default bench scale is 20×
// smaller.  This bench sweeps the per-class training size for both the
// SVM and the random forest on the 20 Table-2 applications, showing the
// γ = 0.1 RBF SVM's sample hunger — and why its headline accuracy here
// trails the paper's 97 % while the forest does not.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace xdmodml;
using namespace xdmodml::bench;

void run_experiment() {
  auto gen = workload::WorkloadGenerator::standard({}, 4242);
  const auto schema = supremm::AttributeSchema::full();
  const auto& apps = table2_applications();
  const auto test_jobs = generate_table2_test(gen, scaled(2000));
  const auto test = workload::build_summary_dataset(
      test_jobs, schema, supremm::label_by_application(), apps);

  std::printf("=== accuracy vs per-application training size (20 apps) "
              "===\n");
  std::printf("(the paper trains at ~5000 per application)\n\n");
  TextTable table({"jobs/app", "train size", "svm %", "rF %"});
  std::vector<std::size_t> sizes{25, 50, 100, 200, 400};
  for (const auto per_class : sizes) {
    const auto train_jobs = generate_table2_train(gen, per_class);
    const auto train = workload::build_summary_dataset(
        train_jobs, schema, supremm::label_by_application(), apps);

    core::JobClassifierConfig svm_cfg;
    svm_cfg.algorithm = core::Algorithm::kSvm;
    svm_cfg.svm.probability = false;  // accuracy-only: faster sweep
    core::JobClassifier svm(svm_cfg);
    svm.train(train);

    core::JobClassifierConfig rf_cfg;
    rf_cfg.algorithm = core::Algorithm::kRandomForest;
    rf_cfg.forest.num_trees = 150;
    core::JobClassifier rf(rf_cfg);
    rf.train(train);

    table.add_row({std::to_string(per_class), std::to_string(train.size()),
                   format_percent(svm.evaluate(test).accuracy, 2),
                   format_percent(rf.evaluate(test).accuracy, 2)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nthe SVM curve is still climbing at the right edge; the "
              "forest saturates early.  At the paper's scale the two "
              "converge near its 97%%.\n");
}

void bm_svm_train_size(benchmark::State& state) {
  auto gen = workload::WorkloadGenerator::standard({}, 4243);
  const auto per_class = static_cast<std::size_t>(state.range(0));
  std::vector<workload::GeneratedJob> jobs;
  for (const auto& app : {"VASP", "NAMD", "LAMMPS", "GROMACS"}) {
    auto batch = gen.generate_for(app, per_class);
    jobs.insert(jobs.end(), std::make_move_iterator(batch.begin()),
                std::make_move_iterator(batch.end()));
  }
  const auto schema = supremm::AttributeSchema::full();
  const auto train = workload::build_summary_dataset(
      jobs, schema, supremm::label_by_application());
  for (auto _ : state) {
    core::JobClassifierConfig cfg;
    cfg.algorithm = core::Algorithm::kSvm;
    cfg.svm.probability = false;
    core::JobClassifier clf(cfg);
    clf.train(train);
    benchmark::DoNotOptimize(clf);
  }
  state.SetItemsProcessed(state.iterations() * train.size());
}
BENCHMARK(bm_svm_train_size)->Arg(50)->Arg(150)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
