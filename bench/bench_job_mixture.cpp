// §II / abstract — characterizing the job mixture with unsupervised
// methods.
//
// The abstract promises machine learning can assist "in characterizing
// the job mixture"; §II names "dimensionality reduction, and clustering"
// among the suitable techniques.  This bench runs both on the native
// mix: a PCA variance profile of the standardized 48-attribute space,
// and k-means clusters compared against the (hidden) application and
// category labels — the unsupervised face of the signature claim.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "ml/kmeans.hpp"
#include "ml/pca.hpp"

namespace {

using namespace xdmodml;
using namespace xdmodml::bench;

void run_experiment() {
  auto gen = workload::WorkloadGenerator::standard({}, 1212);
  const auto jobs = gen.generate_native(scaled(3000));
  const auto schema = supremm::AttributeSchema::full();
  const auto ds = workload::build_summary_dataset(
      jobs, schema, supremm::label_by_application());
  const auto cat_ds = workload::build_summary_dataset(
      jobs, schema, supremm::label_by_category());

  ml::Standardizer st;
  const auto X = st.fit_transform(ds.X);

  std::printf("=== Job-mixture characterization (PCA + k-means) ===\n");
  std::printf("%zu native-mix jobs, %zu attributes, %zu applications, "
              "%zu categories\n\n",
              ds.size(), ds.num_features(), ds.num_classes(),
              cat_ds.num_classes());

  // PCA variance profile.
  ml::Pca pca;
  pca.fit(X);
  std::printf("PCA cumulative explained variance:\n");
  for (const std::size_t k : {1u, 2u, 3u, 5u, 10u, 15u, 20u, 30u, 48u}) {
    std::printf("  %2zu components: %5.1f%%  %s\n", k,
                100.0 * pca.explained_variance_ratio(k),
                ascii_bar(pca.explained_variance_ratio(k), 1.0, 30)
                    .c_str());
  }

  // Clustering at the category and application granularities.
  TextTable table({"k", "inertia", "purity vs app %", "purity vs cat %",
                   "NMI vs app"});
  for (const std::size_t k : {6u, 12u, 29u}) {
    ml::KMeansConfig cfg;
    cfg.clusters = k;
    const auto result = ml::kmeans(X, cfg, 77);
    table.add_row(
        {std::to_string(k), format_double(result.inertia, 0),
         format_percent(ml::cluster_purity(result.assignments, ds.labels),
                        1),
         format_percent(
             ml::cluster_purity(result.assignments, cat_ds.labels), 1),
         format_double(ml::normalized_mutual_information(
                           result.assignments, ds.labels),
                       3)});
  }
  std::printf("\n%s", table.render().c_str());
  std::printf("\nhigh purity at k = #categories / #applications means the "
              "unsupervised cluster structure recovers the application "
              "signatures without labels — the mixture characterizes "
              "itself.\n");
}

void bm_kmeans(benchmark::State& state) {
  auto gen = workload::WorkloadGenerator::standard({}, 1213);
  const auto jobs = gen.generate_native(400);
  const auto schema = supremm::AttributeSchema::full();
  const auto ds = workload::build_summary_dataset(
      jobs, schema, supremm::label_by_application());
  ml::Standardizer st;
  const auto X = st.fit_transform(ds.X);
  for (auto _ : state) {
    ml::KMeansConfig cfg;
    cfg.clusters = 12;
    cfg.restarts = 1;
    auto result = ml::kmeans(X, cfg, 3);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(bm_kmeans)->Unit(benchmark::kMillisecond);

void bm_pca_fit(benchmark::State& state) {
  auto gen = workload::WorkloadGenerator::standard({}, 1214);
  const auto jobs = gen.generate_native(400);
  const auto schema = supremm::AttributeSchema::full();
  const auto ds = workload::build_summary_dataset(
      jobs, schema, supremm::label_by_application());
  ml::Standardizer st;
  const auto X = st.fit_transform(ds.X);
  for (auto _ : state) {
    ml::Pca pca;
    pca.fit(X, 10);
    benchmark::DoNotOptimize(pca);
  }
}
BENCHMARK(bm_pca_fit)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
