// Shared helpers for the experiment benches.
//
// Every bench binary reproduces one table or figure of the paper: it
// generates a synthetic Stampede-like workload, trains the relevant
// model(s), prints the paper-style table/series to stdout, and then runs
// a few google-benchmark timings of the hot operations.  EXPERIMENTS.md
// records the paper-vs-measured comparison for each binary.
//
// Scale: the paper trains on 100k jobs; that is out of budget for a
// 2-core CI box, so each bench defaults to a few hundred jobs per class
// and honours the XDMODML_SCALE environment variable (a positive float
// multiplier) for larger runs.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/job_classifier.hpp"
#include "ml/metrics.hpp"
#include "supremm/dataset_builder.hpp"
#include "util/metrics.hpp"
#include "util/table.hpp"
#include "workload/dataset_helpers.hpp"
#include "workload/generator.hpp"

namespace xdmodml::bench {

/// Result of a repeated timing run (see `time_median_ms`).
struct TimedRuns {
  double median_ms = 0.0;
  std::size_t repeats = 1;
};

/// Median-of-N wall time with untimed warm-up runs.
///
/// Single-shot timings let first-touch page faults, cold caches, and
/// scheduler noise bias whichever arm runs first — BENCH_smo once
/// recorded the *warm* Gram sweep slower than the cold one for exactly
/// that reason.  Benches should time every recorded op through this
/// helper and pass the returned `repeats` to `record()` so BENCH files
/// state how each number was measured and stay comparable across PRs.
template <typename Fn>
TimedRuns time_median_ms(Fn&& fn, std::size_t repeats = 5,
                         std::size_t warmup = 1) {
  if (repeats == 0) repeats = 1;
  for (std::size_t i = 0; i < warmup; ++i) fn();
  std::vector<double> samples;
  samples.reserve(repeats);
  for (std::size_t i = 0; i < repeats; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::sort(samples.begin(), samples.end());
  const std::size_t mid = samples.size() / 2;
  const double median = (samples.size() % 2 == 1)
                            ? samples[mid]
                            : 0.5 * (samples[mid - 1] + samples[mid]);
  return {median, repeats};
}

/// Machine-readable timing emitter.  Benches call `record()` for each
/// measured operation; when a path was supplied via `--json=<path>` (any
/// argv position) or the XDMODML_BENCH_JSON environment variable, the
/// collected records are written on destruction (or an explicit
/// `write()`) as a JSON array of
///   {"bench": ..., "op": ..., "wall_ms": ..., "n_jobs": ...,
///    "threads": ..., "repeats": ...}
/// so the perf trajectory of every PR can be recorded and diffed.
/// `wall_ms` is the median over `repeats` runs when the bench used
/// `time_median_ms`; `repeats` is 1 for legacy single-shot timings.
class BenchJsonRecorder {
 public:
  static BenchJsonRecorder& instance() {
    static BenchJsonRecorder recorder;
    return recorder;
  }

  /// Scans argv for --json=<path> and --metrics; falls back to the
  /// XDMODML_BENCH_JSON / XDMODML_METRICS environment variables.
  /// --metrics turns the observability registry on (obs::set_enabled)
  /// and appends its JSON snapshot to every recorded row, so a
  /// BENCH_*.json trajectory can correlate wall time with cache hit
  /// rates, SMO iteration counts and latency histograms.
  void parse_args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--json=", 0) == 0) path_ = arg.substr(7);
      if (arg == "--metrics") metrics_ = true;
    }
    if (path_.empty()) {
      if (const char* env = std::getenv("XDMODML_BENCH_JSON")) path_ = env;
    }
    if (obs::enabled()) metrics_ = true;  // XDMODML_METRICS env toggle
    if (metrics_) obs::set_enabled(true);
  }

  void set_path(std::string path) { path_ = std::move(path); }
  bool enabled() const { return !path_.empty(); }
  /// True when rows carry a metrics snapshot.
  bool metrics() const { return metrics_; }
  void set_metrics(bool on) {
    metrics_ = on;
    if (on) obs::set_enabled(true);
  }

  void record(const std::string& bench, const std::string& op,
              double wall_ms, std::size_t n_jobs, std::size_t threads,
              std::size_t repeats = 1) {
    // Snapshot at record time: each row sees the registry state right
    // after its op ran, so deltas between rows attribute cache/solver
    // behaviour to individual arms.
    std::string snapshot;
    if (metrics_) {
      snapshot = xdmodml::obs::MetricsRegistry::instance().to_json();
    }
    records_.push_back(
        {bench, op, wall_ms, n_jobs, threads, repeats, std::move(snapshot)});
  }

  /// Writes and clears the collected records; no-op without a path.
  void write() {
    if (path_.empty() || records_.empty()) return;
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "bench: cannot write JSON to %s\n", path_.c_str());
      return;
    }
    out << "[\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const auto& r = records_[i];
      out << "  {\"bench\": \"" << escape(r.bench) << "\", \"op\": \""
          << escape(r.op) << "\", \"wall_ms\": " << r.wall_ms
          << ", \"n_jobs\": " << r.n_jobs << ", \"threads\": " << r.threads
          << ", \"repeats\": " << r.repeats;
      // Already a JSON object — embedded verbatim, never escaped.
      if (!r.metrics_json.empty()) out << ", \"metrics\": " << r.metrics_json;
      out << "}" << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "]\n";
    std::printf("\nwrote %zu timing records to %s\n", records_.size(),
                path_.c_str());
    records_.clear();
  }

  ~BenchJsonRecorder() { write(); }

 private:
  struct Record {
    std::string bench;
    std::string op;
    double wall_ms;
    std::size_t n_jobs;
    std::size_t threads;
    std::size_t repeats;
    std::string metrics_json;  ///< registry snapshot; empty = no --metrics
  };

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char ch : s) {
      if (ch == '"' || ch == '\\') out.push_back('\\');
      out.push_back(ch);
    }
    return out;
  }

  std::string path_;
  bool metrics_ = false;
  std::vector<Record> records_;
};

/// Scale multiplier from the environment (default 1.0).
inline double scale_factor() {
  if (const char* s = std::getenv("XDMODML_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.0) return v;
  }
  return 1.0;
}

/// Applies the scale factor with a floor.
inline std::size_t scaled(std::size_t base, std::size_t floor = 10) {
  const auto v = static_cast<std::size_t>(
      static_cast<double>(base) * scale_factor());
  return v < floor ? floor : v;
}

/// The paper's 20 Table-2 applications, in Table 2's row order.
inline const std::vector<std::string>& table2_applications() {
  static const std::vector<std::string> apps{
      "AMBER",  "ARPS",      "CACTUS", "CHARMM++",  "CHARMM",
      "CP2K",   "ENZO",      "FD3D",   "FLASH4",    "GADGET",
      "GROMACS", "IFORTDDWN", "LAMMPS", "NAMD",      "OPENFOAM",
      "PYTHON", "Q-ESPRESSO", "SIESTA", "VASP",      "WRF"};
  return apps;
}

/// Balanced training pool over the Table-2 applications.
inline std::vector<workload::GeneratedJob> generate_table2_train(
    workload::WorkloadGenerator& gen, std::size_t per_class) {
  std::vector<workload::GeneratedJob> jobs;
  for (const auto& app : table2_applications()) {
    auto batch = gen.generate_for(app, per_class);
    jobs.insert(jobs.end(), std::make_move_iterator(batch.begin()),
                std::make_move_iterator(batch.end()));
  }
  return jobs;
}

/// Native-mix test pool restricted to the Table-2 applications.
inline std::vector<workload::GeneratedJob> generate_table2_test(
    workload::WorkloadGenerator& gen, std::size_t target) {
  std::vector<workload::GeneratedJob> jobs;
  while (jobs.size() < target) {
    auto batch = gen.generate_native(target);
    for (auto& job : batch) {
      const auto& apps = table2_applications();
      if (std::find(apps.begin(), apps.end(), job.summary.application) !=
              apps.end() &&
          jobs.size() < target) {
        jobs.push_back(std::move(job));
      }
    }
  }
  return jobs;
}

/// Prints a threshold curve as an aligned table.
inline void print_threshold_curve(
    const std::string& title,
    const std::vector<ml::ThresholdPoint>& curve, bool labeled) {
  std::printf("\n%s\n", title.c_str());
  std::vector<std::string> header{"threshold", "% classified"};
  if (labeled) header.push_back("% correctly classified");
  TextTable table(std::move(header));
  for (const auto& pt : curve) {
    std::vector<std::string> row{format_double(pt.threshold, 2),
                                 format_percent(pt.classified_fraction, 1)};
    if (labeled) row.push_back(format_percent(pt.correct_fraction, 1));
    table.add_row(std::move(row));
  }
  std::printf("%s", table.render().c_str());
}

/// Finds the curve point at a threshold (exact grid match).
inline const ml::ThresholdPoint& curve_at(
    const std::vector<ml::ThresholdPoint>& curve, double threshold) {
  for (const auto& pt : curve) {
    if (std::abs(pt.threshold - threshold) < 1e-9) return pt;
  }
  throw InvalidArgument("threshold not on grid");
}

}  // namespace xdmodml::bench
