// Batched inference throughput: single-job ingest vs ingest_batch.
//
// The ROADMAP's north star is a production service under heavy traffic;
// the paper's headline workflow pushes every Uncategorized/NA job
// through the classifier, so classification throughput — not just
// accuracy — is the deployment bottleneck.  This bench ingests the same
// unidentified pool twice into a ClassificationService: once through the
// serial single-job `ingest` loop and once through `ingest_batch`, which
// classifies on the shared thread pool, and reports jobs/sec for both.
// On a multi-core host the batched path should scale with the pool size
// (≥ 2× on 2+ cores); on one core the two are equivalent.
//
// `--faults` adds a third arm that re-runs ingest_batch with a
// recoverable failpoint schedule armed (sparse queue-full rejections and
// classify delays): the outcomes must stay identical to the fault-free
// run, and the timing gap quantifies the cost of recovery.  Without the
// flag no failpoint is armed, so the recorded medians double as the
// "unarmed macros are free" perf check against the BENCH JSON baseline.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>

#include "bench_common.hpp"
#include "core/classification_service.hpp"
#include "util/failpoint.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace xdmodml;
using namespace xdmodml::bench;

std::shared_ptr<const core::JobClassifier> train_classifier(
    workload::WorkloadGenerator& gen) {
  const auto schema = supremm::AttributeSchema::full();
  const auto train_jobs = generate_table2_train(gen, scaled(60));
  const auto train = workload::build_summary_dataset(
      train_jobs, schema, supremm::label_by_application(),
      table2_applications());
  core::JobClassifierConfig cfg;
  cfg.algorithm = core::Algorithm::kRandomForest;
  cfg.forest.num_trees = 150;
  auto clf = std::make_shared<core::JobClassifier>(cfg);
  clf->train(train);
  return clf;
}

std::vector<supremm::JobSummary> unidentified_pool(
    workload::WorkloadGenerator& gen, std::size_t n) {
  std::vector<supremm::JobSummary> jobs;
  jobs.reserve(n);
  for (const auto& job : gen.generate_na(n, /*community_fraction=*/1.0)) {
    jobs.push_back(job.summary);
  }
  return jobs;
}

void run_experiment(bool faults) {
  auto gen = workload::WorkloadGenerator::standard({}, 515);
  const auto clf = train_classifier(gen);
  const auto jobs = unidentified_pool(gen, scaled(1500));
  auto& json = BenchJsonRecorder::instance();
  const std::size_t threads = ThreadPool::global().size();

  std::printf("=== batched inference: %zu unidentified jobs, %zu pool "
              "thread(s)%s ===\n\n",
              jobs.size(), threads, faults ? ", --faults arm on" : "");

  std::optional<core::ClassificationService::Stats> serial_stats;
  const auto serial_t = time_median_ms(
      [&] {
        core::ClassificationService service(clf, 0.5);
        for (const auto& job : jobs) service.ingest(job);
        serial_stats = service.stats();
      },
      /*repeats=*/3);

  std::optional<core::ClassificationService::Stats> batch_stats;
  const auto batch_t = time_median_ms(
      [&] {
        core::ClassificationService service(clf, 0.5);
        service.ingest_batch(jobs);
        batch_stats = service.stats();
      },
      /*repeats=*/3);

  if (serial_stats->attributed != batch_stats->attributed ||
      serial_stats->total() != batch_stats->total()) {
    std::printf("ERROR: serial and batched outcomes disagree\n");
    return;
  }
  json.record("bench_batch_inference", "serial_ingest", serial_t.median_ms,
              jobs.size(), 1, serial_t.repeats);
  json.record("bench_batch_inference", "ingest_batch", batch_t.median_ms,
              jobs.size(), threads, batch_t.repeats);

  const double n = static_cast<double>(jobs.size());
  TextTable table({"path", "ms (median)", "jobs/sec"});
  table.add_row({"serial ingest", format_double(serial_t.median_ms, 1),
                 format_double(n / serial_t.median_ms * 1000.0, 0)});
  table.add_row({"ingest_batch", format_double(batch_t.median_ms, 1),
                 format_double(n / batch_t.median_ms * 1000.0, 0)});

  if (faults) {
    // Recoverable-by-construction schedule: queue-full degrades submit()
    // to inline execution, the sparse delay models a slow classifier
    // with no deadline configured.  Neither changes any outcome, so the
    // golden comparison below must hold bit-for-bit.
    std::optional<core::ClassificationService::Stats> fault_stats;
    fp::reset();
    fp::arm_from_spec(
        "thread_pool.submit.queue_full=one_in(64):return;"
        "service.classify=one_in(512):delay(1)",
        /*seed=*/99);
    const auto fault_t = time_median_ms(
        [&] {
          core::ClassificationService service(clf, 0.5);
          service.ingest_batch(jobs);
          fault_stats = service.stats();
        },
        /*repeats=*/3);
    const auto queue_faults =
        fp::site_stats("thread_pool.submit.queue_full").triggers;
    const auto classify_delays = fp::site_stats("service.classify").triggers;
    fp::reset();
    if (fault_stats->attributed != batch_stats->attributed ||
        fault_stats->total() != batch_stats->total() ||
        fault_stats->failed != 0) {
      std::printf("ERROR: faulted batch outcomes diverged from golden run\n");
      return;
    }
    json.record("bench_batch_inference", "ingest_batch_faults",
                fault_t.median_ms, jobs.size(), threads, fault_t.repeats);
    table.add_row({"ingest_batch --faults", format_double(fault_t.median_ms, 1),
                   format_double(n / fault_t.median_ms * 1000.0, 0)});
    std::printf("%s", table.render().c_str());
    std::printf("\nfaults arm: %llu queue-full rejections, %llu injected "
                "delays — all recovered, outcomes identical to golden run\n",
                static_cast<unsigned long long>(queue_faults),
                static_cast<unsigned long long>(classify_delays));
  } else {
    std::printf("%s", table.render().c_str());
  }
  std::printf("\nbatched speedup: %.2fx (%zu attributed, %zu unresolved "
              "on both paths)\n",
              serial_t.median_ms / batch_t.median_ms,
              serial_stats->attributed, serial_stats->unresolved);
}

void bm_serial_ingest(benchmark::State& state) {
  auto gen = workload::WorkloadGenerator::standard({}, 516);
  const auto clf = train_classifier(gen);
  const auto jobs =
      unidentified_pool(gen, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    core::ClassificationService service(clf, 0.5);
    for (const auto& job : jobs) service.ingest(job);
    benchmark::DoNotOptimize(service.stats().total());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(jobs.size()));
}
BENCHMARK(bm_serial_ingest)->Arg(200)->Unit(benchmark::kMillisecond);

void bm_batch_ingest(benchmark::State& state) {
  auto gen = workload::WorkloadGenerator::standard({}, 516);
  const auto clf = train_classifier(gen);
  const auto jobs =
      unidentified_pool(gen, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    core::ClassificationService service(clf, 0.5);
    service.ingest_batch(jobs);
    benchmark::DoNotOptimize(service.stats().total());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(jobs.size()));
}
BENCHMARK(bm_batch_ingest)->Arg(200)->Unit(benchmark::kMillisecond);

void bm_predict_proba_batch(benchmark::State& state) {
  auto gen = workload::WorkloadGenerator::standard({}, 517);
  const auto clf = train_classifier(gen);
  const auto schema = supremm::AttributeSchema::full();
  const auto pool_jobs = gen.generate_na(
      static_cast<std::size_t>(state.range(0)), 1.0);
  const auto pool = workload::build_summary_pool(pool_jobs, schema);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clf->predict_dataset(pool));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pool.size()));
}
BENCHMARK(bm_predict_proba_batch)->Arg(500)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool faults = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--faults") == 0) faults = true;
  }
  xdmodml::bench::BenchJsonRecorder::instance().parse_args(argc, argv);
  run_experiment(faults);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
