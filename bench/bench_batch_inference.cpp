// Batched inference throughput: single-job ingest vs ingest_batch.
//
// The ROADMAP's north star is a production service under heavy traffic;
// the paper's headline workflow pushes every Uncategorized/NA job
// through the classifier, so classification throughput — not just
// accuracy — is the deployment bottleneck.  This bench ingests the same
// unidentified pool twice into a ClassificationService: once through the
// serial single-job `ingest` loop and once through `ingest_batch`, which
// classifies on the shared thread pool, and reports jobs/sec for both.
// On a multi-core host the batched path should scale with the pool size
// (≥ 2× on 2+ cores); on one core the two are equivalent.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/classification_service.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace xdmodml;
using namespace xdmodml::bench;

std::shared_ptr<const core::JobClassifier> train_classifier(
    workload::WorkloadGenerator& gen) {
  const auto schema = supremm::AttributeSchema::full();
  const auto train_jobs = generate_table2_train(gen, scaled(60));
  const auto train = workload::build_summary_dataset(
      train_jobs, schema, supremm::label_by_application(),
      table2_applications());
  core::JobClassifierConfig cfg;
  cfg.algorithm = core::Algorithm::kRandomForest;
  cfg.forest.num_trees = 150;
  auto clf = std::make_shared<core::JobClassifier>(cfg);
  clf->train(train);
  return clf;
}

std::vector<supremm::JobSummary> unidentified_pool(
    workload::WorkloadGenerator& gen, std::size_t n) {
  std::vector<supremm::JobSummary> jobs;
  jobs.reserve(n);
  for (const auto& job : gen.generate_na(n, /*community_fraction=*/1.0)) {
    jobs.push_back(job.summary);
  }
  return jobs;
}

double seconds_since(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void run_experiment() {
  auto gen = workload::WorkloadGenerator::standard({}, 515);
  const auto clf = train_classifier(gen);
  const auto jobs = unidentified_pool(gen, scaled(1500));

  std::printf("=== batched inference: %zu unidentified jobs, %zu pool "
              "thread(s) ===\n\n",
              jobs.size(), ThreadPool::global().size());

  core::ClassificationService serial(clf, 0.5);
  auto start = std::chrono::steady_clock::now();
  for (const auto& job : jobs) serial.ingest(job);
  const double serial_s = seconds_since(start);

  core::ClassificationService batched(clf, 0.5);
  start = std::chrono::steady_clock::now();
  batched.ingest_batch(jobs);
  const double batch_s = seconds_since(start);

  if (serial.stats().attributed != batched.stats().attributed ||
      serial.stats().total() != batched.stats().total()) {
    std::printf("ERROR: serial and batched outcomes disagree\n");
    return;
  }

  const double n = static_cast<double>(jobs.size());
  TextTable table({"path", "seconds", "jobs/sec"});
  table.add_row({"serial ingest", format_double(serial_s, 3),
                 format_double(n / serial_s, 0)});
  table.add_row({"ingest_batch", format_double(batch_s, 3),
                 format_double(n / batch_s, 0)});
  std::printf("%s", table.render().c_str());
  std::printf("\nbatched speedup: %.2fx (%zu attributed, %zu unresolved "
              "on both paths)\n",
              serial_s / batch_s, serial.stats().attributed,
              serial.stats().unresolved);
}

void bm_serial_ingest(benchmark::State& state) {
  auto gen = workload::WorkloadGenerator::standard({}, 516);
  const auto clf = train_classifier(gen);
  const auto jobs =
      unidentified_pool(gen, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    core::ClassificationService service(clf, 0.5);
    for (const auto& job : jobs) service.ingest(job);
    benchmark::DoNotOptimize(service.stats().total());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(jobs.size()));
}
BENCHMARK(bm_serial_ingest)->Arg(200)->Unit(benchmark::kMillisecond);

void bm_batch_ingest(benchmark::State& state) {
  auto gen = workload::WorkloadGenerator::standard({}, 516);
  const auto clf = train_classifier(gen);
  const auto jobs =
      unidentified_pool(gen, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    core::ClassificationService service(clf, 0.5);
    service.ingest_batch(jobs);
    benchmark::DoNotOptimize(service.stats().total());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(jobs.size()));
}
BENCHMARK(bm_batch_ingest)->Arg(200)->Unit(benchmark::kMillisecond);

void bm_predict_proba_batch(benchmark::State& state) {
  auto gen = workload::WorkloadGenerator::standard({}, 517);
  const auto clf = train_classifier(gen);
  const auto schema = supremm::AttributeSchema::full();
  const auto pool_jobs = gen.generate_na(
      static_cast<std::size_t>(state.range(0)), 1.0);
  const auto pool = workload::build_summary_pool(pool_jobs, schema);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clf->predict_dataset(pool));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pool.size()));
}
BENCHMARK(bm_predict_proba_batch)->Arg(500)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
