// X3 — Section IV: application-kernel wall-time regression and QoS
// monitoring.
//
// Paper: "We have done some initial svm and rF regression analysis of the
// application kernel data.  Initial efforts have been successful in
// modeling wall time on Stampede for all of the application kernels."
// This bench (a) regenerates an app-kernel history with an injected
// system-wide degradation, (b) shows the CUSUM control chart catching it
// (the application-kernel QoS mechanism of Section I), and (c) fits
// ε-SVR and random-forest regressors to model kernel wall time.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "xdmod/appkernel.hpp"

namespace {

using namespace xdmodml;
using namespace xdmodml::bench;

void run_experiment() {
  Rng rng(31);
  const std::vector<std::string> kernels{"xhpl", "nwchem", "namd",
                                         "graph500", "ior"};
  xdmod::AppKernelHistoryConfig cfg;
  cfg.days = 90.0 * std::min(4.0, std::max(1.0, scale_factor()));
  const std::vector<xdmod::DegradationEvent> events{{55.0, 70.0, 1.35}};
  const auto runs =
      xdmod::generate_appkernel_history(kernels, cfg, events, rng);
  xdmod::AppKernelStore store;
  store.add(runs);

  std::printf("=== Section IV: application-kernel QoS + wall-time "
              "regression ===\n");
  std::printf("%zu runs of %zu kernels over %.0f days; degradation "
              "injected on days [55, 70) at 1.35x\n",
              store.size(), kernels.size(), cfg.days);

  // (a) control-chart detection per kernel — CUSUM vs EWMA.
  TextTable detect({"kernel", "nodes", "CUSUM first alarm (day)",
                    "EWMA first alarm (day)"});
  for (const auto& kernel : kernels) {
    const auto series = store.series(kernel, 4);
    const auto cusum = xdmod::detect_degradations(series, {});
    const auto ewma = xdmod::detect_degradations_ewma(series, {});
    const auto first_day = [&](const std::vector<std::size_t>& alarms) {
      return alarms.empty()
                 ? std::string("-")
                 : format_double(series[alarms.front()].day, 1);
    };
    detect.add_row({kernel, "4", first_day(cusum), first_day(ewma)});
  }
  std::printf("\nCUSUM control chart (paper §I: 'process control "
              "algorithms automatically detect underperforming application "
              "kernels'):\n%s",
              detect.render().c_str());

  // (b) wall-time regression: train on a random 70%, test on the rest.
  auto ds = store.regression_dataset();
  Rng split_rng(32);
  std::vector<std::size_t> order(ds.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  split_rng.shuffle(order);
  const std::size_t n_train = order.size() * 7 / 10;
  const std::vector<std::size_t> train_rows(order.begin(),
                                            order.begin() + n_train);
  const std::vector<std::size_t> test_rows(order.begin() + n_train,
                                           order.end());
  const auto train = ds.subset(train_rows);
  const auto test = ds.subset(test_rows);

  ml::Standardizer st;
  const auto Xtr = st.fit_transform(train.X);
  const auto Xte = st.transform(test.X);

  TextTable reg({"regressor", "test R^2", "test MAE (s)"});
  {
    ml::SvmConfig svr_cfg;
    svr_cfg.kernel = ml::Kernel::rbf(0.5);
    svr_cfg.c = 1000.0;
    svr_cfg.epsilon = 5.0;
    ml::SvmRegressor svr(svr_cfg);
    svr.fit(Xtr, train.targets);
    const auto pred = svr.predict_batch(Xte);
    reg.add_row({"svm (eps-SVR, rbf)",
                 format_double(ml::r_squared(test.targets, pred), 4),
                 format_double(ml::mean_absolute_error(test.targets, pred),
                               2)});
  }
  {
    ml::ForestConfig fc;
    fc.num_trees = 200;
    ml::RandomForestRegressor rf(fc, 6);
    rf.fit(Xtr, train.targets);
    const auto pred = rf.predict_batch(Xte);
    reg.add_row({"randomForest",
                 format_double(ml::r_squared(test.targets, pred), 4),
                 format_double(ml::mean_absolute_error(test.targets, pred),
                               2)});
  }
  std::printf("\nwall-time regression (train %zu / test %zu runs):\n%s",
              train.size(), test.size(), reg.render().c_str());
  std::printf("\npaper: svm and rF regression 'successful in modeling wall "
              "time on Stampede for all of the application kernels'.\n");
}

void bm_cusum_detection(benchmark::State& state) {
  Rng rng(33);
  const std::vector<std::string> kernels{"xhpl"};
  xdmod::AppKernelHistoryConfig cfg;
  cfg.days = 365.0;
  const auto runs = xdmod::generate_appkernel_history(kernels, cfg, {}, rng);
  xdmod::AppKernelStore store;
  store.add(runs);
  const auto series = store.series("xhpl", 4);
  for (auto _ : state) {
    auto alarms = xdmod::detect_degradations(series, {});
    benchmark::DoNotOptimize(alarms);
  }
  state.SetItemsProcessed(state.iterations() * series.size());
}
BENCHMARK(bm_cusum_detection);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
