// S2-exit — Section II exit-status prediction.
//
// The paper: "Although both classifiers trained very well, they were not
// very successful in predicting the success or failure status of the jobs
// in the withheld test data" — because the script's exit code is usually
// the exit code of the *last command in the run script*, not of the
// application.  The workload generator models exactly that decoupling, so
// this bench shows high train accuracy with test accuracy collapsing
// towards the majority-class rate.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace xdmodml;
using namespace xdmodml::bench;

void run_experiment() {
  auto gen = workload::WorkloadGenerator::standard({}, 616);
  const auto jobs = gen.generate_native(scaled(3000));
  const auto schema = supremm::AttributeSchema::full();
  const std::vector<std::string> order{"success", "failure"};
  auto ds = workload::build_summary_dataset(
      jobs, schema, supremm::label_by_exit_status(), order);

  Rng rng(11);
  const auto counts = ds.class_counts();
  const auto balanced =
      ml::balanced_sample(ds, std::min(counts[0], counts[1]), rng);
  ds = ds.subset(balanced);
  const auto split = ml::stratified_split(ds, 0.6, rng);
  const auto train = ds.subset(split.train);
  const auto test = ds.subset(split.test);

  std::printf("=== Section II: exit-code (success/failure) prediction ===\n");
  std::printf("train %zu, test %zu (class-balanced; chance = 50%%)\n",
              train.size(), test.size());
  TextTable table({"classifier", "train accuracy %", "test accuracy %"});
  for (const auto algorithm :
       {core::Algorithm::kSvm, core::Algorithm::kRandomForest}) {
    core::JobClassifierConfig cfg;
    cfg.algorithm = algorithm;
    cfg.forest.num_trees = 150;
    core::JobClassifier clf(cfg);
    clf.train(train);
    const double train_acc = clf.evaluate(train).accuracy;
    const double test_acc = clf.evaluate(test).accuracy;
    table.add_row({core::algorithm_name(algorithm),
                   format_percent(train_acc, 2),
                   format_percent(test_acc, 2)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("paper: classifiers train very well but are 'not very "
              "successful' on withheld data — the exit code comes from the "
              "run script, not the application\n");
}

void bm_exit_label_extraction(benchmark::State& state) {
  auto gen = workload::WorkloadGenerator::standard({}, 617);
  const auto jobs = gen.generate_native(500);
  const auto schema = supremm::AttributeSchema::full();
  for (auto _ : state) {
    auto ds = workload::build_summary_dataset(
        jobs, schema, supremm::label_by_exit_status());
    benchmark::DoNotOptimize(ds);
  }
}
BENCHMARK(bm_exit_label_extraction)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
