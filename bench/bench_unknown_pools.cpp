// F3 — Figure 3: applying the trained 20-application SVM to the
// Uncategorized and NA job pools.
//
// Paper: "Very few jobs can be classified, on the order of 20% or less,
// for a ~0.8 probability threshold.  The contrast between Figures 1 and 3
// is striking." — the unknown pools are custom codes unlike the community
// applications the classifier knows.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace xdmodml;
using namespace xdmodml::bench;

void run_experiment() {
  auto gen = workload::WorkloadGenerator::standard({}, 333);
  const auto train_jobs = generate_table2_train(gen, scaled(250));
  const auto test_jobs = generate_table2_test(gen, scaled(1500));
  const auto uncategorized = gen.generate_uncategorized(scaled(1200));
  const auto na = gen.generate_na(scaled(1200));
  const auto schema = supremm::AttributeSchema::full();
  const auto& apps = table2_applications();

  const auto train = workload::build_summary_dataset(
      train_jobs, schema, supremm::label_by_application(), apps);
  const auto test = workload::build_summary_dataset(
      test_jobs, schema, supremm::label_by_application(), apps);

  core::JobClassifierConfig cfg;
  cfg.algorithm = core::Algorithm::kSvm;
  core::JobClassifier clf(cfg);
  clf.train(train);

  std::printf("=== Figure 3: %% classified vs threshold for the "
              "Uncategorized and NA pools ===\n");
  std::printf("(trained on %zu balanced jobs over the 20 Table-2 apps)\n",
              train.size());

  const auto eval = clf.evaluate(test);
  print_threshold_curve("known-application test set (Figure 1 reference):",
                        eval.threshold_curve, true);

  const auto uncat_pool = workload::build_summary_pool(uncategorized, schema);
  const auto uncat_curve = clf.threshold_curve_unlabeled(uncat_pool);
  print_threshold_curve("Uncategorized pool:", uncat_curve, false);

  const auto na_pool = workload::build_summary_pool(na, schema);
  const auto na_curve = clf.threshold_curve_unlabeled(na_pool);
  print_threshold_curve("NA pool:", na_curve, false);

  const double t = 0.80;
  std::printf("\nat t=%.2f: known %s%%, Uncategorized %s%%, NA %s%% "
              "classified (paper: unknown pools ~20%% or less)\n",
              t,
              format_percent(curve_at(eval.threshold_curve, t)
                                 .classified_fraction, 1).c_str(),
              format_percent(curve_at(uncat_curve, t).classified_fraction, 1)
                  .c_str(),
              format_percent(curve_at(na_curve, t).classified_fraction, 1)
                  .c_str());
}

void bm_pool_prediction(benchmark::State& state) {
  auto gen = workload::WorkloadGenerator::standard({}, 334);
  std::vector<workload::GeneratedJob> train_jobs;
  for (const auto& app : {"VASP", "NAMD", "LAMMPS"}) {
    auto batch = gen.generate_for(app, 60);
    train_jobs.insert(train_jobs.end(),
                      std::make_move_iterator(batch.begin()),
                      std::make_move_iterator(batch.end()));
  }
  const auto schema = supremm::AttributeSchema::full();
  const auto train = workload::build_summary_dataset(
      train_jobs, schema, supremm::label_by_application());
  core::JobClassifierConfig cfg;
  cfg.algorithm = core::Algorithm::kSvm;
  core::JobClassifier clf(cfg);
  clf.train(train);
  const auto pool_jobs = gen.generate_uncategorized(100);
  const auto pool = workload::build_summary_pool(pool_jobs, schema);
  for (auto _ : state) {
    auto curve = clf.threshold_curve_unlabeled(pool);
    benchmark::DoNotOptimize(curve);
  }
  state.SetItemsProcessed(state.iterations() * pool.size());
}
BENCHMARK(bm_pool_prediction)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
