// Compiled SVM inference plan: single-query and batched prediction
// throughput, compiled vs legacy, f32 vs f64 pools, SIMD vs scalar.
//
// The paper's deployment story pushes every unidentified job through a
// 20-class one-vs-one SVM (190 machines, rbf γ=0.1, C=1000).  The
// legacy path evaluates K(x, sv) machine by machine, re-touching every
// duplicated support vector; the compiled plan (DESIGN.md §12) fuses
// all machines into one deduplicated SV pool, computes a single kernel
// row per query through the SIMD microkernels, and reduces each
// machine as a sparse coef-dot.  This bench trains the Table-2 model,
// verifies the two paths agree (labels identical, f64 decision values
// within 1e-10), reports the pool's dedup ratio, and times six arms:
//
//   legacy_single / legacy_batch      — old path (native ISA)
//   legacy_single_scalar              — old path, XDMODML_SIMD=scalar
//   compiled_single / compiled_batch  — plan path (native ISA)
//   compiled_batch_f32                — plan path, float32 pool
//   compiled_batch_scalar             — plan path, scalar microkernels
//
// Acceptance gate (ISSUE 10): compiled+SIMD batched predict_proba must
// run ≥ 3× the legacy-scalar throughput, and the pool must dedup > 2×.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "ml/svm.hpp"
#include "ml/svm_plan.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace xdmodml;
using namespace xdmodml::bench;

struct InferModel {
  ml::SvmClassifier svm;
  Matrix probes;          ///< standardized probe features
  std::size_t classes;
};

InferModel build_model(std::uint64_t seed, std::size_t per_class,
                       std::size_t n_probes) {
  auto gen = workload::WorkloadGenerator::standard({}, seed);
  const auto schema = supremm::AttributeSchema::full();
  const auto train_jobs = generate_table2_train(gen, per_class);
  const auto train = workload::build_summary_dataset(
      train_jobs, schema, supremm::label_by_application(),
      table2_applications());

  ml::Standardizer standardizer;
  const Matrix X = standardizer.fit_transform(train.X);

  ml::SvmConfig cfg;
  cfg.kernel = ml::Kernel::rbf(0.1);
  cfg.c = 1000.0;
  cfg.probability = true;
  ml::SvmClassifier svm(cfg, 42);
  svm.fit(X, train.labels, static_cast<int>(train.class_names.size()));

  const auto probe_jobs = generate_table2_test(gen, n_probes);
  Matrix probes;
  for (const auto& job : probe_jobs) {
    auto row = job.summary.extract(schema);
    standardizer.transform_row(row);
    probes.append_row(row);
  }
  return {std::move(svm), std::move(probes), train.class_names.size()};
}

/// Sums predict_proba over every probe row (single-query path).
double sweep_single(const ml::SvmClassifier& svm, const Matrix& probes) {
  double sink = 0.0;
  for (std::size_t r = 0; r < probes.rows(); ++r) {
    sink += svm.predict_proba(probes.row(r))[0];
  }
  return sink;
}

/// Sums predict_proba_batch over the probe matrix (batched path).
double sweep_batch(const ml::SvmClassifier& svm, const Matrix& probes) {
  double sink = 0.0;
  for (const auto& p : svm.predict_proba_batch(probes)) sink += p[0];
  return sink;
}

bool verify_paths(const ml::SvmClassifier& svm, const Matrix& probes) {
  ml::set_svm_predict_mode(ml::SvmPredictMode::kLegacy);
  const auto legacy_labels = svm.predict_batch(probes);
  ml::set_svm_predict_mode(ml::SvmPredictMode::kCompiled);
  const auto compiled_labels = svm.predict_batch(probes);
  if (legacy_labels != compiled_labels) {
    std::printf("ERROR: legacy and compiled labels disagree\n");
    return false;
  }

  // Per-machine decision values on a probe sample: the compiled sparse
  // coef-dot over the shared kernel row must match the legacy
  // machine-by-machine evaluation to 1e-10 (f64 pool).
  const auto& plan = svm.inference_plan();
  std::vector<double> krow(plan.unique_support_vectors());
  double max_diff = 0.0;
  const std::size_t sample = probes.rows() < 32 ? probes.rows() : 32;
  for (std::size_t r = 0; r < sample; ++r) {
    const auto x = probes.row(r);
    plan.kernel_row(x, krow);
    for (std::size_t m = 0; m < plan.num_machines(); ++m) {
      const double diff =
          std::abs(plan.decision_value(m, krow) -
                   svm.machine(m).decision_value(x));
      if (diff > max_diff) max_diff = diff;
    }
  }
  std::printf("max |compiled - legacy| decision value: %.3g over %zu "
              "probes x %zu machines\n",
              max_diff, sample, plan.num_machines());
  if (max_diff > 1e-10) {
    std::printf("ERROR: f64 decision values diverge beyond 1e-10\n");
    return false;
  }
  return true;
}

void run_experiment() {
  const auto model = build_model(601, scaled(30), scaled(500));
  const auto& svm = model.svm;
  const auto& probes = model.probes;
  auto& json = BenchJsonRecorder::instance();
  const std::size_t threads = ThreadPool::global().size();
  const auto best_isa = simd::active();
  const double n = static_cast<double>(probes.rows());

  std::printf("=== compiled SVM inference: %zu classes, %zu machines, "
              "%zu probes, %zu pool thread(s), isa=%s ===\n\n",
              model.classes, svm.num_machines(), probes.rows(), threads,
              std::string(simd::isa_name(best_isa)).c_str());

  const auto& plan = svm.inference_plan();
  std::printf("plan: %zu/%zu unique SVs, dedup %.2fx, %zu KiB f64 pool, "
              "provenance=%s\n\n",
              plan.unique_support_vectors(), plan.total_support_vectors(),
              plan.dedup_ratio(), plan.pool_bytes() / 1024,
              plan.provenance_keyed() ? "rows" : "content-hash");
  if (plan.dedup_ratio() <= 2.0) {
    std::printf("ERROR: dedup ratio %.2fx below the 2x acceptance gate\n",
                plan.dedup_ratio());
    return;
  }
  if (!verify_paths(svm, probes)) return;

  // f32 arm rides a copy so the f64 plan above stays live for the
  // other arms; labels must not change under quantization.
  ml::SvmClassifier svm32 = svm;
  svm32.set_plan_precision(ml::GramPrecision::kFloat32);
  ml::set_svm_predict_mode(ml::SvmPredictMode::kCompiled);
  if (svm32.predict_batch(probes) != svm.predict_batch(probes)) {
    std::printf("ERROR: f32 pool changes predicted labels\n");
    return;
  }

  struct Arm {
    const char* op;
    ml::SvmPredictMode mode;
    simd::Isa isa;
    const ml::SvmClassifier* clf;
    bool batch;
  };
  const Arm arms[] = {
      {"legacy_single", ml::SvmPredictMode::kLegacy, best_isa, &svm, false},
      {"legacy_single_scalar", ml::SvmPredictMode::kLegacy,
       simd::Isa::kScalar, &svm, false},
      {"legacy_batch", ml::SvmPredictMode::kLegacy, best_isa, &svm, true},
      {"compiled_single", ml::SvmPredictMode::kCompiled, best_isa, &svm,
       false},
      {"compiled_batch", ml::SvmPredictMode::kCompiled, best_isa, &svm,
       true},
      {"compiled_batch_f32", ml::SvmPredictMode::kCompiled, best_isa,
       &svm32, true},
      {"compiled_batch_scalar", ml::SvmPredictMode::kCompiled,
       simd::Isa::kScalar, &svm, true},
  };

  TextTable table({"arm", "ms (median)", "probes/sec"});
  double legacy_scalar_ms = 0.0;
  double compiled_batch_ms = 0.0;
  for (const auto& arm : arms) {
    ml::set_svm_predict_mode(arm.mode);
    simd::set_active(arm.isa);
    const auto t = time_median_ms(
        [&] {
          benchmark::DoNotOptimize(arm.batch ? sweep_batch(*arm.clf, probes)
                                             : sweep_single(*arm.clf, probes));
        },
        /*repeats=*/3);
    simd::set_active(best_isa);
    if (std::string_view(arm.op) == "legacy_single_scalar") {
      legacy_scalar_ms = t.median_ms;
    }
    if (std::string_view(arm.op) == "compiled_batch") {
      compiled_batch_ms = t.median_ms;
    }
    json.record("bench_svm_infer", arm.op, t.median_ms, probes.rows(),
                arm.batch ? threads : 1, t.repeats);
    table.add_row({arm.op, format_double(t.median_ms, 2),
                   format_double(n / t.median_ms * 1000.0, 0)});
  }
  ml::set_svm_predict_mode(ml::SvmPredictMode::kCompiled);
  std::printf("%s", table.render().c_str());

  const double speedup = legacy_scalar_ms / compiled_batch_ms;
  std::printf("\ncompiled+SIMD batch vs legacy scalar: %.2fx "
              "(gate: >= 3x)%s\n",
              speedup, speedup >= 3.0 ? "" : "  *** BELOW GATE ***");
}

void bm_legacy_single(benchmark::State& state) {
  const auto model = build_model(602, scaled(20), 100);
  ml::set_svm_predict_mode(ml::SvmPredictMode::kLegacy);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sweep_single(model.svm, model.probes));
  }
  ml::set_svm_predict_mode(ml::SvmPredictMode::kCompiled);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(model.probes.rows()));
}
BENCHMARK(bm_legacy_single)->Unit(benchmark::kMillisecond);

void bm_compiled_batch(benchmark::State& state) {
  const auto model = build_model(602, scaled(20), 100);
  ml::set_svm_predict_mode(ml::SvmPredictMode::kCompiled);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sweep_batch(model.svm, model.probes));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(model.probes.rows()));
}
BENCHMARK(bm_compiled_batch)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  xdmodml::bench::BenchJsonRecorder::instance().parse_args(argc, argv);
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
