// F1 — Figure 1: percentage of jobs classified, and correctly classified,
// as a function of the probability threshold.
//
// Paper: "over 85% of the test jobs are considered classified, even if we
// require a 90% probability threshold", and "over 90% of the jobs can be
// classified while incurring very few misclassifications".  Ablation arm:
// naive vote-fraction probabilities instead of Platt + pairwise coupling.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace xdmodml;
using namespace xdmodml::bench;

void run_experiment() {
  auto gen = workload::WorkloadGenerator::standard({}, 111);
  const auto train_jobs = generate_table2_train(gen, scaled(350));
  const auto test_jobs = generate_table2_test(gen, scaled(2500));
  const auto schema = supremm::AttributeSchema::full();
  const auto& apps = table2_applications();
  const auto train = workload::build_summary_dataset(
      train_jobs, schema, supremm::label_by_application(), apps);
  const auto test = workload::build_summary_dataset(
      test_jobs, schema, supremm::label_by_application(), apps);

  std::printf("=== Figure 1: %% classified / %% correctly classified vs "
              "probability threshold (svm) ===\n");
  core::JobClassifierConfig cfg;
  cfg.algorithm = core::Algorithm::kSvm;
  core::JobClassifier clf(cfg);
  clf.train(train);
  const auto eval = clf.evaluate(test);
  print_threshold_curve("coupled Platt probabilities:", eval.threshold_curve,
                        true);
  const auto& p90 = curve_at(eval.threshold_curve, 0.90);
  std::printf("\nat t=0.90: %s%% classified (paper: >85%%), %s%% correctly\n",
              format_percent(p90.classified_fraction, 1).c_str(),
              format_percent(p90.correct_fraction, 1).c_str());

  // Ablation: vote-fraction probabilities.
  core::JobClassifierConfig vote_cfg = cfg;
  vote_cfg.svm.probability = false;
  core::JobClassifier vote_clf(vote_cfg);
  vote_clf.train(train);
  const auto vote_eval = vote_clf.evaluate(test);
  print_threshold_curve(
      "ablation — one-vs-one vote fractions (no Platt calibration):",
      vote_eval.threshold_curve, true);
  std::printf("\nvote fractions saturate near (k-1)/k of the vote and are "
              "not calibrated: the curve shape degrades, which is why the "
              "paper (and LIBSVM) couple Platt sigmoids instead.\n");
}

void bm_threshold_sweep(benchmark::State& state) {
  std::vector<ml::Prediction> preds;
  std::vector<int> actual;
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    preds.push_back({static_cast<int>(rng.uniform_index(20)),
                     rng.uniform()});
    actual.push_back(static_cast<int>(rng.uniform_index(20)));
  }
  const auto grid = ml::default_threshold_grid();
  for (auto _ : state) {
    auto curve = ml::threshold_sweep(preds, actual, grid);
    benchmark::DoNotOptimize(curve);
  }
  state.SetItemsProcessed(state.iterations() * preds.size());
}
BENCHMARK(bm_threshold_sweep)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
