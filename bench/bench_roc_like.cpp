// F2 — Figure 2: the ROC-like comparison of the SVM and RF classifiers
// using Equation 1.
//
//   (x, y) = ( Σ(P_t ∧ C_correct)/N_correct, Σ(P_t ∧ C_incorrect)/N_incorrect )
//
// swept over thresholds 1.0 down to 0.05 in steps of 0.05.  Paper: "Both
// classifiers do an excellent job on this classification problem and
// approach the ideal behavior."
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace xdmodml;
using namespace xdmodml::bench;

void run_experiment() {
  auto gen = workload::WorkloadGenerator::standard({}, 222);
  const auto train_jobs = generate_table2_train(gen, scaled(350));
  const auto test_jobs = generate_table2_test(gen, scaled(2500));
  const auto schema = supremm::AttributeSchema::full();
  const auto& apps = table2_applications();
  const auto train = workload::build_summary_dataset(
      train_jobs, schema, supremm::label_by_application(), apps);
  const auto test = workload::build_summary_dataset(
      test_jobs, schema, supremm::label_by_application(), apps);

  std::printf("=== Figure 2: ROC-like curves (Equation 1), svm vs rF ===\n");
  std::printf("threshold grid: 1.00 down to 0.05, step 0.05\n\n");

  auto run = [&](core::Algorithm algorithm) {
    core::JobClassifierConfig cfg;
    cfg.algorithm = algorithm;
    cfg.forest.num_trees = 200;
    core::JobClassifier clf(cfg);
    clf.train(train);
    return clf.evaluate(test);
  };
  const auto svm_eval = run(core::Algorithm::kSvm);
  const auto rf_eval = run(core::Algorithm::kRandomForest);

  TextTable table({"threshold", "svm x", "svm y", "rF x", "rF y"});
  for (std::size_t i = 0; i < svm_eval.threshold_curve.size(); ++i) {
    const auto& s = svm_eval.threshold_curve[i];
    const auto& r = rf_eval.threshold_curve[i];
    table.add_row(format_double(s.threshold, 2),
                  {s.eq1_x, s.eq1_y, r.eq1_x, r.eq1_y}, 3);
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nideal behavior: x -> 1 while y stays near 0. overall "
              "accuracies: svm %s%%, rF %s%%\n",
              format_percent(svm_eval.accuracy, 2).c_str(),
              format_percent(rf_eval.accuracy, 2).c_str());

  // Area-under-curve style scalar for the comparison.
  auto auc = [](const std::vector<ml::ThresholdPoint>& curve) {
    // Trapezoid over (y, x) points sorted by y; both curves start near
    // (0,0) at t=1 and end near (1,1) at t=0.05.
    double area = 0.0;
    for (std::size_t i = 1; i < curve.size(); ++i) {
      const double dy = curve[i].eq1_y - curve[i - 1].eq1_y;
      area += dy * 0.5 * (curve[i].eq1_x + curve[i - 1].eq1_x);
    }
    // Close the polygon to y=1.
    const auto& last = curve.back();
    area += (1.0 - last.eq1_y) * last.eq1_x;
    return area;
  };
  std::printf("AUC-like score: svm %.4f, rF %.4f (1.0 = ideal)\n",
              auc(svm_eval.threshold_curve), auc(rf_eval.threshold_curve));
}

void bm_rf_predict_proba(benchmark::State& state) {
  auto gen = workload::WorkloadGenerator::standard({}, 223);
  const auto jobs = gen.generate_native(600);
  const auto schema = supremm::AttributeSchema::full();
  const auto ds = workload::build_summary_dataset(
      jobs, schema, supremm::label_by_application());
  ml::ForestConfig fc;
  fc.num_trees = 100;
  ml::RandomForestClassifier rf(fc);
  ml::Standardizer st;
  const auto X = st.fit_transform(ds.X);
  rf.fit(X, ds.labels, static_cast<int>(ds.num_classes()));
  for (auto _ : state) {
    auto proba = rf.predict_proba(X.row(0));
    benchmark::DoNotOptimize(proba);
  }
}
BENCHMARK(bm_rf_predict_proba)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
