// F5 — Figure 5: attribute importance from the randomForest model.
//
// Paper: the four most important attributes are MEMORY USED, CPI,
// CPU SYSTEM and CPLD; the next six (MEMORY USED COV ... LUSTRE
// TRANSMITTED COV) still contribute; the final ~20 — including every
// non-IO network attribute — contribute little.  Includes the paper's
// correlated-variable caveat demonstration (CPU USER/SYSTEM/IDLE sum to
// one, so permuting one understates its importance).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "core/importance.hpp"

namespace {

using namespace xdmodml;
using namespace xdmodml::bench;

void run_experiment() {
  auto gen = workload::WorkloadGenerator::standard({}, 666);
  const auto train_jobs = generate_table2_train(gen, scaled(150));
  const auto schema = supremm::AttributeSchema::full();
  const auto& apps = table2_applications();
  const auto train = workload::build_summary_dataset(
      train_jobs, schema, supremm::label_by_application(), apps);

  std::printf("=== Figure 5: randomForest attribute importance ===\n");
  ml::ForestConfig fc;
  fc.num_trees = 200;
  const auto ranking = core::rank_attributes(train, fc, 7);

  const double top = ranking.front().mean_decrease_accuracy;
  TextTable table({"rank", "attribute", "mean decr. accuracy", ""},
                  {Align::kRight, Align::kLeft, Align::kRight, Align::kLeft});
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    table.add_row({std::to_string(i + 1), ranking[i].name,
                   format_double(ranking[i].mean_decrease_accuracy, 4),
                   ascii_bar(ranking[i].mean_decrease_accuracy, top, 30)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\npaper: top 4 = MEMORY USED, CPI, CPU SYSTEM, CPLD; "
              "non-IO network attributes all land in the tail.\n");

  // Where do the network attributes rank?
  std::printf("\nnetwork-attribute ranks: ");
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    const auto& name = ranking[i].name;
    if (name.find("ETHERNET") != std::string::npos ||
        name.find("INFINIBAND") != std::string::npos) {
      std::printf("%s=%zu ", name.c_str(), i + 1);
    }
  }
  std::printf("\n");

  // Correlated-variable caveat: drop CPU_SYSTEM and watch CPU_USER /
  // CPU_IDLE importance rise (they sum to one with CPU_SYSTEM).
  std::vector<std::size_t> keep;
  for (std::size_t i = 0; i < schema.size(); ++i) {
    if (schema.attributes()[i].name() != "CPU_SYSTEM") keep.push_back(i);
  }
  const auto reduced = train.select_features(keep);
  const auto reduced_ranking = core::rank_attributes(reduced, fc, 7);
  auto rank_of = [](const std::vector<core::RankedAttribute>& r,
                    const std::string& name) -> std::size_t {
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (r[i].name == name) return i + 1;
    }
    return 0;
  };
  std::printf("\ncorrelated-variable caveat (paper: removing CPU SYSTEM "
              "should promote CPU USER / CPU IDLE):\n");
  std::printf("  CPU_USER rank: %zu -> %zu; CPU_IDLE rank: %zu -> %zu "
              "(of %zu / %zu attributes)\n",
              rank_of(ranking, "CPU_USER"),
              rank_of(reduced_ranking, "CPU_USER"),
              rank_of(ranking, "CPU_IDLE"),
              rank_of(reduced_ranking, "CPU_IDLE"), ranking.size(),
              reduced_ranking.size());
}

void bm_permutation_importance(benchmark::State& state) {
  auto gen = workload::WorkloadGenerator::standard({}, 667);
  const auto jobs = gen.generate_native(500);
  const auto schema = supremm::AttributeSchema::full();
  const auto ds = workload::build_summary_dataset(
      jobs, schema, supremm::label_by_application());
  ml::Standardizer st;
  const auto X = st.fit_transform(ds.X);
  ml::ForestConfig fc;
  fc.num_trees = 50;
  ml::RandomForestClassifier rf(fc);
  rf.fit(X, ds.labels, static_cast<int>(ds.num_classes()));
  for (auto _ : state) {
    auto imp = rf.permutation_importance(X, ds.labels);
    benchmark::DoNotOptimize(imp);
  }
}
BENCHMARK(bm_permutation_importance)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
