// S2-eff — Section II efficiency classification.
//
// The paper labels jobs efficient / inefficient with simple rules on a
// deliberately separable set and finds: Naive Bayes performs very poorly;
// SVM and random forest achieve nearly 100% on withheld test data.
// This bench reproduces the three-way comparison with a class-balanced
// train/test protocol.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "supremm/efficiency.hpp"

namespace {

using namespace xdmodml;
using namespace xdmodml::bench;

struct Pools {
  ml::Dataset train;
  ml::Dataset test;
};

Pools make_pools(std::size_t total_jobs) {
  // Mix native jobs (mostly efficient) with custom/uncategorized jobs
  // (often inefficient) so both classes are populated.  Jobs within 15%
  // of any rule threshold are dropped — the paper's protocol ("The data
  // were selected to be completely separable and only intended to test
  // different machine learning classification tools") — then balance.
  auto gen = workload::WorkloadGenerator::standard({}, 515);
  auto jobs = gen.generate_native(total_jobs / 2);
  auto custom = gen.generate_uncategorized(total_jobs / 2);
  jobs.insert(jobs.end(), std::make_move_iterator(custom.begin()),
              std::make_move_iterator(custom.end()));

  const auto schema = supremm::AttributeSchema::full();
  const std::vector<std::string> order{"efficient", "inefficient"};
  const supremm::EfficiencyRules rules;
  const supremm::LabelFn margin_label =
      [rules](const supremm::JobSummary& job) -> std::string {
    const auto verdict = rules.clearly_inefficient(job, 0.15);
    if (!verdict.has_value()) return {};  // boundary job: drop
    return *verdict ? "inefficient" : "efficient";
  };
  auto ds =
      workload::build_summary_dataset(jobs, schema, margin_label, order);

  Rng rng(7);
  const auto counts = ds.class_counts();
  const std::size_t per_class = std::min(counts[0], counts[1]);
  XDMODML_CHECK(per_class > 0,
                "efficiency rules labelled every job the same way — "
                "rule thresholds are miscalibrated for this workload");
  const auto balanced = ml::balanced_sample(ds, per_class, rng);
  ds = ds.subset(balanced);
  const auto split = ml::stratified_split(ds, 0.6, rng);
  return {ds.subset(split.train), ds.subset(split.test)};
}

double evaluate(core::Algorithm algorithm, const Pools& pools) {
  core::JobClassifierConfig cfg;
  cfg.algorithm = algorithm;
  cfg.forest.num_trees = 100;
  core::JobClassifier clf(cfg);
  clf.train(pools.train);
  return clf.evaluate(pools.test).accuracy;
}

void run_experiment() {
  const auto pools = make_pools(scaled(12000));
  std::printf("=== Section II: efficient/inefficient classification ===\n");
  std::printf("train %zu jobs, test %zu jobs (class-balanced)\n",
              pools.train.size(), pools.test.size());
  TextTable table({"classifier", "test accuracy %"});
  for (const auto algorithm :
       {core::Algorithm::kNaiveBayes, core::Algorithm::kSvm,
        core::Algorithm::kRandomForest}) {
    const double acc = evaluate(algorithm, pools);
    table.add_row({core::algorithm_name(algorithm),
                   format_percent(acc, 2)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("paper: nb performs very poorly; svm and rF achieve nearly "
              "100%% on this separable problem\n");
}

void bm_train_efficiency_rf(benchmark::State& state) {
  const auto pools = make_pools(1200);
  for (auto _ : state) {
    core::JobClassifierConfig cfg;
    cfg.algorithm = core::Algorithm::kRandomForest;
    cfg.forest.num_trees = 50;
    core::JobClassifier clf(cfg);
    clf.train(pools.train);
    benchmark::DoNotOptimize(clf);
  }
}
BENCHMARK(bm_train_efficiency_rf)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
