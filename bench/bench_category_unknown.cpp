// F4 — Figure 4: the broad-category classifier applied to the
// Uncategorized and NA pools.
//
// Paper: "The distribution of this data is very similar and only slightly
// improved over the simple application plots shown in Figure 3" — even a
// coarse 12-way grouping cannot absorb the custom codes, underscoring how
// different the unknown pools are from the community mix.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace xdmodml;
using namespace xdmodml::bench;

void run_experiment() {
  auto gen = workload::WorkloadGenerator::standard({}, 555);
  const auto train_jobs = gen.generate_balanced(scaled(120));
  const auto uncategorized = gen.generate_uncategorized(scaled(1200));
  const auto na = gen.generate_na(scaled(1200));
  const auto schema = supremm::AttributeSchema::full();
  const auto categories = gen.table().categories();

  const auto train = workload::build_summary_dataset(
      train_jobs, schema, supremm::label_by_category(), categories);

  core::JobClassifierConfig cfg;
  cfg.algorithm = core::Algorithm::kSvm;
  core::JobClassifier clf(cfg);
  clf.train(train);

  std::printf("=== Figure 4: category-level %% classified vs threshold, "
              "Uncategorized and NA pools ===\n");

  const auto uncat_pool = workload::build_summary_pool(uncategorized, schema);
  const auto uncat_curve = clf.threshold_curve_unlabeled(uncat_pool);
  print_threshold_curve("Uncategorized pool (12 broad categories):",
                        uncat_curve, false);

  const auto na_pool = workload::build_summary_pool(na, schema);
  const auto na_curve = clf.threshold_curve_unlabeled(na_pool);
  print_threshold_curve("NA pool (12 broad categories):", na_curve, false);

  const double t = 0.80;
  std::printf("\nat t=%.2f: Uncategorized %s%%, NA %s%% classified "
              "(paper: ~20%% or less, 'very similar and only slightly "
              "improved over' Figure 3)\n",
              t,
              format_percent(curve_at(uncat_curve, t).classified_fraction, 1)
                  .c_str(),
              format_percent(curve_at(na_curve, t).classified_fraction, 1)
                  .c_str());
}

void bm_category_train(benchmark::State& state) {
  auto gen = workload::WorkloadGenerator::standard({}, 556);
  const auto train_jobs = gen.generate_balanced(20);
  const auto schema = supremm::AttributeSchema::full();
  const auto train = workload::build_summary_dataset(
      train_jobs, schema, supremm::label_by_category());
  for (auto _ : state) {
    core::JobClassifierConfig cfg;
    cfg.algorithm = core::Algorithm::kRandomForest;
    cfg.forest.num_trees = 50;
    core::JobClassifier clf(cfg);
    clf.train(train);
    benchmark::DoNotOptimize(clf);
  }
}
BENCHMARK(bm_category_train)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
