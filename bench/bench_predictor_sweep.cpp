// F6 — Figure 6: model accuracy vs number of predictors.
//
// Paper protocol: train on the full attribute set (97%); removing five
// highly correlated attributes keeps 97%; then sweep an importance cutoff
// and retrain with 43 down to 1 attributes.  Accuracy remains >= 90%
// until fewer than five attributes remain (CPI, CPLD, CPU SYSTEM,
// MEMORY USED, MEMORY USED COV in most models).  Ablation arm: the same
// sweep with all COV attributes removed, quantifying the paper's claim
// that the COV attributes "made a real contribution".
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "core/importance.hpp"
#include "ml/feature_analysis.hpp"

namespace {

using namespace xdmodml;
using namespace xdmodml::bench;

void run_experiment() {
  auto gen = workload::WorkloadGenerator::standard({}, 777);
  const auto train_jobs = generate_table2_train(gen, scaled(150));
  const auto test_jobs = generate_table2_test(gen, scaled(2000));
  const auto schema = supremm::AttributeSchema::full();
  const auto& apps = table2_applications();
  auto train = workload::build_summary_dataset(
      train_jobs, schema, supremm::label_by_application(), apps);
  auto test = workload::build_summary_dataset(
      test_jobs, schema, supremm::label_by_application(), apps);

  ml::ForestConfig fc;
  fc.num_trees = 150;

  std::printf("=== Figure 6: accuracy vs number of predictors ===\n");

  // Step 1: drop the five most correlated attributes, found
  // automatically (paper: "Removing five highly correlated attributes
  // such as the number of file device IOPs and read/write rates").
  const auto pruned = ml::prune_correlated(train.X, 0.9, 5);
  std::printf("correlation pruning (|r| > 0.9, at most 5):\n");
  for (const auto& p : pruned) {
    std::printf("  dropped %-28s (r = %.3f with %s)\n",
                train.feature_names[p.dropped].c_str(), p.correlation,
                train.feature_names[p.kept].c_str());
  }
  const auto keep = ml::surviving_columns(schema.size(), pruned);
  const auto train43 = train.select_features(keep);
  const auto test43 = test.select_features(keep);
  std::printf("full set: %zu attributes; after pruning: %zu\n",
              schema.size(), train43.num_features());

  const auto ranking = core::rank_attributes(train43, fc, 9);
  const auto counts = core::default_sweep_counts(train43.num_features());
  const auto sweep =
      core::predictor_sweep(train43, test43, ranking, counts, fc, 9);

  TextTable table({"# predictors", "accuracy %", ""},
                  {Align::kRight, Align::kRight, Align::kLeft});
  for (const auto& pt : sweep) {
    table.add_row({std::to_string(pt.num_predictors),
                   format_percent(pt.accuracy, 2),
                   ascii_bar(pt.accuracy, 1.0, 40)});
  }
  std::printf("%s", table.render().c_str());

  for (const auto& pt : sweep) {
    if (pt.num_predictors == 5) {
      std::printf("\ntop-5 attributes: ");
      for (const auto& name : pt.attributes) {
        std::printf("%s ", name.c_str());
      }
      std::printf("\n(paper: CPI, CPLD, CPU SYSTEM, MEMORY USED, "
                  "MEMORY USED COV; >= 90%% accuracy)\n");
    }
  }

  // Ablation: no COV attributes at all.
  const auto no_cov_schema = schema.without_cov();
  std::vector<std::size_t> mean_cols;
  for (std::size_t i = 0; i < schema.size(); ++i) {
    if (!schema.attributes()[i].is_cov) mean_cols.push_back(i);
  }
  const auto train_nc = train.select_features(mean_cols);
  const auto test_nc = test.select_features(mean_cols);
  const auto rank_nc = core::rank_attributes(train_nc, fc, 9);
  const std::vector<std::size_t> full_count{train_nc.num_features()};
  const auto sweep_nc =
      core::predictor_sweep(train_nc, test_nc, rank_nc, full_count, fc, 9);
  std::printf("\nablation — all COV attributes removed (%zu mean-only "
              "attributes): accuracy %s%% (vs %s%% with COV attributes)\n",
              no_cov_schema.size(),
              format_percent(sweep_nc.front().accuracy, 2).c_str(),
              format_percent(sweep.front().accuracy, 2).c_str());
}

void bm_predictor_sweep_point(benchmark::State& state) {
  auto gen = workload::WorkloadGenerator::standard({}, 778);
  const auto jobs = gen.generate_native(600);
  const auto schema = supremm::AttributeSchema::full();
  const auto ds = workload::build_summary_dataset(
      jobs, schema, supremm::label_by_application());
  ml::ForestConfig fc;
  fc.num_trees = 40;
  const auto ranking = core::rank_attributes(ds, fc, 1);
  const std::vector<std::size_t> counts{5};
  for (auto _ : state) {
    auto sweep = core::predictor_sweep(ds, ds, ranking, counts, fc, 1);
    benchmark::DoNotOptimize(sweep);
  }
}
BENCHMARK(bm_predictor_sweep_point)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
