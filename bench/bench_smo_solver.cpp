// SMO / Gram-row engine perf harness.
//
// Times the training hot path three ways and records the results as
// machine-readable JSON (BENCH_smo.json by default; override with
// --json=<path> or XDMODML_BENCH_JSON):
//   1. kernel-row fill — the pre-PR scalar Kernel::operator() loop vs
//      the norm-cached GramRowEngine on the SIMD microkernels (warm),
//      cold (engine construction included), and with the microkernel
//      ISA forced to scalar to isolate the AVX2 contribution;
//   2. one binary RBF SMO solve with shrinking off vs on;
//   3. the paper's 20-class one-vs-one RBF fit (γ = 0.1, C = 1000) on
//      the scalar path vs the full engine + shared-cache + shrinking
//      path — the headline speedup.
// Every op is a median over warmed-up repeats (time_median_ms), and the
// JSON rows carry the repeat count.  Sizes honour XDMODML_SCALE like
// every other bench.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "ml/svm.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace xdmodml;
using namespace xdmodml::bench;

/// Balanced, standardized 20-application training set.
ml::Dataset make_table2_dataset(std::size_t per_class) {
  auto gen = workload::WorkloadGenerator::standard({}, 4242);
  const auto jobs = generate_table2_train(gen, per_class);
  const auto schema = supremm::AttributeSchema::full();
  auto ds = workload::build_summary_dataset(
      jobs, schema, supremm::label_by_application(), table2_applications());
  ml::Standardizer std_;
  std_.fit(ds.X);
  ds.X = std_.transform(ds.X);
  return ds;
}

void run_experiment() {
  auto& json = BenchJsonRecorder::instance();
  const std::size_t threads = ThreadPool::global().size();
  const auto kernel = ml::Kernel::rbf(0.1);

  // 100 jobs/class ≈ 2000 jobs — the same order as the paper's training
  // sets, and large enough that kernel work (which scales ~n² per
  // machine) dominates the fixed per-machine solver overhead.
  const std::size_t per_class = scaled(100);
  const auto ds = make_table2_dataset(per_class);
  const std::size_t n = ds.size();
  std::printf("=== SMO solver / Gram-row engine timings ===\n");
  std::printf(
      "dataset: %zu jobs, %zu features, %zu classes, %zu threads, "
      "simd=%s\n\n",
      n, ds.num_features(), ds.num_classes(), threads,
      std::string(simd::isa_name(simd::active())).c_str());

  // ---- 1. kernel-row fill: scalar vs engine ------------------------
  std::vector<double> row(n);
  const auto scalar_t = time_median_ms([&] {
    for (std::size_t i = 0; i < n; ++i) {
      const auto xi = ds.X.row(i);
      for (std::size_t j = 0; j < n; ++j) {
        row[j] = kernel(xi, ds.X.row(j));
      }
      benchmark::DoNotOptimize(row.data());
    }
  });
  // Cold = engine construction (norm cache pass) + one full sweep.
  const auto cold_t = time_median_ms([&] {
    const ml::GramRowEngine engine(ds.X, kernel);
    for (std::size_t i = 0; i < n; ++i) {
      engine.fill_row(i, row);
      benchmark::DoNotOptimize(row.data());
    }
  });
  const ml::GramRowEngine engine(ds.X, kernel);
  const auto sweep_once = [&] {
    for (std::size_t i = 0; i < n; ++i) {
      engine.fill_row(i, row);
      benchmark::DoNotOptimize(row.data());
    }
  };
  const auto warm_t = time_median_ms(sweep_once);
  // Same engine with the microkernels pinned to the scalar table —
  // isolates the AVX2/FMA contribution from the norm-cache win.
  TimedRuns nosimd_t;
  const simd::Isa active_isa = simd::active();
  if (simd::set_active(simd::Isa::kScalar)) {
    nosimd_t = time_median_ms(sweep_once);
    simd::set_active(active_isa);
  }
  std::printf("full Gram sweep (%zu rows x %zu cols, median of %zu):\n", n, n,
              warm_t.repeats);
  std::printf("  scalar kernel loop   : %9.2f ms\n", scalar_t.median_ms);
  std::printf("  engine, scalar isa   : %9.2f ms  (%.2fx)\n",
              nosimd_t.median_ms, scalar_t.median_ms / nosimd_t.median_ms);
  std::printf("  engine, cold         : %9.2f ms  (%.2fx)\n", cold_t.median_ms,
              scalar_t.median_ms / cold_t.median_ms);
  std::printf("  engine, warm norms   : %9.2f ms  (%.2fx)\n\n",
              warm_t.median_ms, scalar_t.median_ms / warm_t.median_ms);
  json.record("bench_smo_solver", "gram_sweep_scalar", scalar_t.median_ms, n,
              threads, scalar_t.repeats);
  json.record("bench_smo_solver", "gram_sweep_engine_scalar_isa",
              nosimd_t.median_ms, n, threads, nosimd_t.repeats);
  json.record("bench_smo_solver", "gram_sweep_engine_cold", cold_t.median_ms,
              n, threads, cold_t.repeats);
  json.record("bench_smo_solver", "gram_sweep_engine_warm", warm_t.median_ms,
              n, threads, warm_t.repeats);

  // ---- 2. binary SMO: shrinking off vs on --------------------------
  // The first two classes give a deterministic binary subset.
  std::vector<std::size_t> rows_bin;
  std::vector<signed char> y_bin;
  for (std::size_t i = 0; i < n; ++i) {
    if (ds.labels[i] == 0 || ds.labels[i] == 1) {
      rows_bin.push_back(i);
      y_bin.push_back(ds.labels[i] == 0 ? 1 : -1);
    }
  }
  const Matrix x_bin = ds.X.gather_rows(rows_bin);
  const std::size_t nb = x_bin.rows();
  const ml::GramRowEngine bin_engine(x_bin, kernel);
  std::vector<double> p_bin(nb, -1.0);
  std::vector<double> c_bin(nb, 1000.0);
  ml::SmoProblem prob;
  prob.n = nb;
  prob.p = p_bin;
  prob.y = y_bin;
  prob.c = c_bin;
  prob.kernel_row = [&bin_engine](std::size_t i, std::span<double> out) {
    bin_engine.fill_row(i, out);
  };
  prob.kernel_diag = [&bin_engine](std::size_t i) {
    return bin_engine.diagonal(i);
  };
  ml::SmoResult res_off;
  ml::SmoResult res_on;
  ml::SmoConfig cfg_off;
  cfg_off.shrinking = false;
  const auto smo_off_t =
      time_median_ms([&] { res_off = ml::solve_smo(prob, cfg_off); });
  ml::SmoConfig cfg_on;
  cfg_on.shrinking = true;
  const auto smo_on_t =
      time_median_ms([&] { res_on = ml::solve_smo(prob, cfg_on); });
  std::printf("binary RBF SMO (%zu rows, C=1000, median of %zu):\n", nb,
              smo_on_t.repeats);
  std::printf("  shrinking off: %9.2f ms  (%zu iterations, obj %.4f)\n",
              smo_off_t.median_ms, res_off.iterations, res_off.objective);
  std::printf("  shrinking on : %9.2f ms  (%zu iterations, obj %.4f)\n\n",
              smo_on_t.median_ms, res_on.iterations, res_on.objective);
  json.record("bench_smo_solver", "smo_binary_noshrink", smo_off_t.median_ms,
              nb, threads, smo_off_t.repeats);
  json.record("bench_smo_solver", "smo_binary_shrink", smo_on_t.median_ms, nb,
              threads, smo_on_t.repeats);

  // ---- 3. 20-class one-vs-one fit: scalar path vs engine path ------
  // Probability mode on (the default and the paper's Figures 1–4
  // workflow): every machine also trains Platt CV folds, so the shared
  // cache amortises each Gram row across machine + folds.
  ml::SvmConfig scalar_cfg;
  scalar_cfg.gram_engine = false;
  scalar_cfg.share_kernel_cache = false;
  scalar_cfg.smo.shrinking = false;
  ml::SvmConfig engine_cfg;

  const auto ovo_scalar_t = time_median_ms(
      [&] {
        ml::SvmClassifier clf(scalar_cfg);
        clf.fit(ds.X, ds.labels, static_cast<int>(ds.num_classes()));
      },
      3);
  const auto ovo_engine_t = time_median_ms(
      [&] {
        ml::SvmClassifier clf(engine_cfg);
        clf.fit(ds.X, ds.labels, static_cast<int>(ds.num_classes()));
      },
      3);
  std::printf(
      "20-class one-vs-one RBF fit (%zu jobs, %zu machines, median of "
      "%zu):\n",
      n, ds.num_classes() * (ds.num_classes() - 1) / 2,
      ovo_engine_t.repeats);
  std::printf("  pre-PR scalar path        : %9.2f ms\n",
              ovo_scalar_t.median_ms);
  std::printf("  engine + shared + shrink  : %9.2f ms\n",
              ovo_engine_t.median_ms);
  std::printf("  speedup                   : %9.2fx\n\n",
              ovo_scalar_t.median_ms / ovo_engine_t.median_ms);
  json.record("bench_smo_solver", "ovo20_fit_scalar", ovo_scalar_t.median_ms,
              n, threads, ovo_scalar_t.repeats);
  json.record("bench_smo_solver", "ovo20_fit_engine", ovo_engine_t.median_ms,
              n, threads, ovo_engine_t.repeats);
  json.write();
}

void bm_gram_row_engine(benchmark::State& state) {
  const auto ds = make_table2_dataset(20);
  const ml::GramRowEngine engine(ds.X, ml::Kernel::rbf(0.1));
  std::vector<double> row(ds.size());
  std::size_t i = 0;
  for (auto _ : state) {
    engine.fill_row(i, row);
    benchmark::DoNotOptimize(row.data());
    i = (i + 1) % ds.size();
  }
}
BENCHMARK(bm_gram_row_engine)->Unit(benchmark::kMicrosecond);

void bm_gram_row_scalar(benchmark::State& state) {
  const auto ds = make_table2_dataset(20);
  const auto kernel = ml::Kernel::rbf(0.1);
  std::vector<double> row(ds.size());
  std::size_t i = 0;
  for (auto _ : state) {
    const auto xi = ds.X.row(i);
    for (std::size_t j = 0; j < ds.size(); ++j) {
      row[j] = kernel(xi, ds.X.row(j));
    }
    benchmark::DoNotOptimize(row.data());
    i = (i + 1) % ds.size();
  }
}
BENCHMARK(bm_gram_row_scalar)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  auto& json = xdmodml::bench::BenchJsonRecorder::instance();
  json.parse_args(argc, argv);
  if (!json.enabled()) json.set_path("BENCH_smo.json");
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
