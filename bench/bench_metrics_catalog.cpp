// T1 — Table 1: the SUPReMM metric catalogue, plus per-metric summary
// statistics of a generated native workload and generation-throughput
// timings.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "supremm/metrics.hpp"
#include "util/stats.hpp"

namespace {

using namespace xdmodml;
using namespace xdmodml::bench;

void print_table1() {
  std::printf("=== Table 1: SUPReMM metrics included ===\n");
  TextTable table({"Metric", "Unit", "Category", "COV?", "Description"},
                  {Align::kLeft, Align::kLeft, Align::kLeft, Align::kLeft,
                   Align::kLeft});
  for (const auto& info : supremm::metric_catalog()) {
    table.add_row({info.name, info.unit,
                   supremm::category_name(info.category),
                   info.has_cov ? "yes" : "no", info.description});
  }
  std::printf("%s", table.render().c_str());
}

void print_dataset_summary() {
  auto gen = workload::WorkloadGenerator::standard({}, 2014);
  const auto jobs = gen.generate_native(scaled(2000));
  std::printf("\n=== Generated native workload: per-metric summary "
              "(%zu jobs) ===\n",
              jobs.size());
  TextTable table({"Metric", "mean", "median", "p95", "max"});
  for (const auto& info : supremm::metric_catalog()) {
    std::vector<double> values;
    values.reserve(jobs.size());
    for (const auto& job : jobs) {
      values.push_back(job.summary.mean_of(info.id));
    }
    RunningStats rs;
    for (const double v : values) rs.add(v);
    table.add_row(info.name,
                  {rs.mean(), median(values), quantile(values, 0.95),
                   rs.max()},
                  3);
  }
  std::printf("%s", table.render().c_str());
}

void bm_generate_native(benchmark::State& state) {
  auto gen = workload::WorkloadGenerator::standard({}, 99);
  for (auto _ : state) {
    auto jobs = gen.generate_native(static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(jobs);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_generate_native)->Arg(100)->Arg(500)->Unit(benchmark::kMillisecond);

void bm_extract_features(benchmark::State& state) {
  auto gen = workload::WorkloadGenerator::standard({}, 98);
  const auto jobs = gen.generate_native(200);
  const auto schema = supremm::AttributeSchema::full();
  for (auto _ : state) {
    for (const auto& job : jobs) {
      auto features = job.summary.extract(schema);
      benchmark::DoNotOptimize(features);
    }
  }
  state.SetItemsProcessed(state.iterations() * jobs.size());
}
BENCHMARK(bm_extract_features);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  print_dataset_summary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
