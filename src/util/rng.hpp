// Deterministic pseudo-random number generation for the workload simulator
// and the ML library.
//
// All stochastic components of xdmod-ml draw from `Rng`, a small
// xoshiro256** engine wrapper.  Two properties matter here:
//
//  * Reproducibility — every experiment binary takes a seed and produces
//    identical output for identical seeds, across platforms.
//  * Stream splitting — `split()` derives an independent child stream, so
//    that e.g. each simulated compute node or each tree in a random forest
//    gets its own generator and results do not depend on evaluation order
//    or thread scheduling.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace xdmodml {

/// xoshiro256** engine with SplitMix64 seeding and distribution helpers.
///
/// Satisfies `std::uniform_random_bit_generator`, so it can also be used
/// with <random> distributions, although the built-in helpers below are
/// preferred for cross-platform determinism (libstdc++'s distributions are
/// implementation-defined).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the engine from a single 64-bit value via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Next raw 64-bit value.
  std::uint64_t operator()();

  /// Derives an independent child stream.  The child's sequence is
  /// decorrelated from the parent's continuation.
  Rng split();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).  Requires n > 0.  Unbiased (rejection).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (cached second variate).
  double normal();

  /// Normal with the given mean and standard deviation (sd >= 0).
  double normal(double mean, double sd);

  /// Log-normal: exp(N(mu, sigma)) — the workhorse for skewed HPC metrics.
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate (> 0).
  double exponential(double rate);

  /// Gamma(shape k > 0, scale theta > 0) via Marsaglia–Tsang.
  double gamma(double shape, double scale);

  /// Beta(a, b) with a, b > 0.
  double beta(double a, double b);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Poisson with mean lambda >= 0 (Knuth for small, PTRS-like normal
  /// approximation with rounding for large lambda).
  std::uint64_t poisson(double lambda);

  /// Samples an index with probability proportional to `weights[i]`.
  /// Requires at least one strictly positive weight; negatives are invalid.
  std::size_t categorical(std::span<const double> weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Draws k distinct indices from [0, n) in random order (k <= n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace xdmodml
