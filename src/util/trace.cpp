#include "util/trace.hpp"

#include <chrono>
#include <functional>
#include <sstream>
#include <thread>

namespace xdmodml::obs {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

std::uint64_t current_thread_id() {
  return static_cast<std::uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

}  // namespace

TraceRing& TraceRing::instance() {
  static auto* ring = new TraceRing();
  return *ring;
}

void TraceRing::push(const TraceEvent& event) {
  std::lock_guard lock(mutex_);
  if (events_.size() < kCapacity) {
    events_.push_back(event);
  } else {
    events_[next_ % kCapacity] = event;
  }
  ++next_;
}

std::vector<TraceEvent> TraceRing::recent() const {
  std::lock_guard lock(mutex_);
  if (events_.size() < kCapacity) return events_;
  // Ring is full: the oldest entry sits at the next write slot.
  std::vector<TraceEvent> out;
  out.reserve(kCapacity);
  const std::size_t head = next_ % kCapacity;
  for (std::size_t i = 0; i < kCapacity; ++i) {
    out.push_back(events_[(head + i) % kCapacity]);
  }
  return out;
}

std::uint64_t TraceRing::total() const {
  std::lock_guard lock(mutex_);
  return next_;
}

std::string TraceRing::to_json() const {
  const auto events = recent();
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& e = events[i];
    os << (i ? ", " : "") << "{\"name\": \"" << (e.name ? e.name : "")
       << "\", \"start_ns\": " << e.start_ns
       << ", \"duration_ns\": " << e.duration_ns
       << ", \"thread\": " << e.thread_id << "}";
  }
  os << "]";
  return os.str();
}

void TraceRing::clear() {
  std::lock_guard lock(mutex_);
  events_.clear();
  next_ = 0;
}

ScopedTimer::ScopedTimer(Histogram& hist, const char* span_name) {
  if (!enabled()) return;  // inert: no clock read, nothing to record
  hist_ = &hist;
  name_ = span_name;
  start_ = now_ns();
}

std::uint64_t ScopedTimer::stop() {
  if (hist_ == nullptr) return 0;
  const std::uint64_t elapsed = now_ns() - start_;
  hist_->record(elapsed);
  if (name_ != nullptr) {
    TraceRing::instance().push(
        TraceEvent{name_, start_, elapsed, current_thread_id()});
  }
  hist_ = nullptr;
  return elapsed;
}

ScopedTimer::~ScopedTimer() { stop(); }

}  // namespace xdmodml::obs
