#include "util/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace xdmodml {

EigenDecomposition eigen_symmetric(const Matrix& a, double symmetry_tol,
                                   std::size_t max_sweeps) {
  const std::size_t n = a.rows();
  XDMODML_CHECK(n > 0 && a.cols() == n, "eigen requires a square matrix");
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      XDMODML_CHECK(std::abs(a(i, j) - a(j, i)) <=
                        symmetry_tol * (1.0 + std::abs(a(i, j))),
                    "eigen requires a symmetric matrix");
    }
  }

  Matrix m = a;        // working copy, driven to diagonal form
  Matrix v(n, n, 0.0); // accumulated rotations
  for (std::size_t i = 0; i < n; ++i) v(i, i) = 1.0;

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    // Off-diagonal Frobenius norm — convergence test.
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) off += m(i, j) * m(i, j);
    }
    if (off < 1e-24) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::abs(apq) < 1e-300) continue;
        // Classic Jacobi rotation annihilating m(p, q).
        const double theta = (m(q, q) - m(p, p)) / (2.0 * apq);
        const double t =
            (theta >= 0.0 ? 1.0 : -1.0) /
            (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double mkp = m(k, p);
          const double mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double mpk = m(p, k);
          const double mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    return m(i, i) > m(j, j);
  });

  EigenDecomposition out;
  out.eigenvalues.resize(n);
  out.eigenvectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.eigenvalues[j] = m(order[j], order[j]);
    for (std::size_t i = 0; i < n; ++i) {
      out.eigenvectors(i, j) = v(i, order[j]);
    }
  }
  return out;
}

}  // namespace xdmodml
