#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace xdmodml {

namespace {
// Which pool (if any) owns the current thread; set for the lifetime of
// each worker.  Lets parallel_for detect nested dispatch from its own
// workers and degrade to inline execution instead of deadlocking.
thread_local const ThreadPool* t_current_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

bool ThreadPool::on_pool_thread() const { return t_current_pool == this; }

std::uint64_t ThreadPool::maybe_now_ns() {
  return obs::enabled() ? obs::now_ns() : 0;
}

void ThreadPool::record_task_done(std::uint64_t enqueue_ns) {
  // Latency includes the queue wait, so a deep queue shows up here as
  // well as in the high-water mark.
  static auto& latency =
      obs::MetricsRegistry::instance().histogram("thread_pool.task_ns", "ns");
  latency.record(obs::now_ns() - enqueue_ns);
}

void ThreadPool::note_enqueued(std::size_t queue_depth) {
  static auto& tasks =
      obs::MetricsRegistry::instance().counter("thread_pool.tasks");
  static auto& hwm =
      obs::MetricsRegistry::instance().gauge("thread_pool.queue_hwm");
  tasks.inc();
  hwm.update_max(static_cast<std::int64_t>(queue_depth));
}

void ThreadPool::note_queue_full() {
  static auto& rejected = obs::MetricsRegistry::instance().counter(
      "fail.thread_pool.queue_full");
  static auto& inline_runs = obs::MetricsRegistry::instance().counter(
      "retry.thread_pool.inline_run");
  rejected.inc();
  inline_runs.inc();
}

void ThreadPool::join_all(std::vector<std::future<void>>& futures) {
  // Every future must be drained before anything propagates: a future
  // abandoned mid-loop leaves its chunk running (std::future from a
  // packaged_task does not block on destruction), and that chunk still
  // holds references to the caller's `body`.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  t_current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  XDMODML_CHECK(begin <= end, "parallel_for requires begin <= end");
  const std::size_t n = end - begin;
  if (n == 0) return;
  if (on_pool_thread()) {
    // Nested dispatch: queued chunks could only run on the *other*
    // workers, so a busy pool (or a 1-thread pool) would deadlock on
    // the futures below.  Run the body inline instead.
    XDMODML_FAILPOINT("thread_pool.chunk");
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t chunks = std::min(n, size() * 4);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk_size);
    futures.push_back(submit([lo, hi, &body] {
      // Task-throw injection: the fault is captured by the
      // packaged_task and surfaces through join_all after every chunk
      // has finished — exactly the worker-crash path the chaos suite
      // drives.
      XDMODML_FAILPOINT("thread_pool.chunk");
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  join_all(futures);  // all chunks finish, then the first exception
}

void ThreadPool::parallel_for_ranges(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  XDMODML_CHECK(begin <= end, "parallel_for_ranges requires begin <= end");
  const std::size_t n = end - begin;
  if (n == 0) return;
  if (grain == 0) grain = 1;
  // Inline when there is nothing to split or when called from a pool
  // worker (same nested-dispatch deadlock hazard as parallel_for).
  if (n <= grain || on_pool_thread()) {
    XDMODML_FAILPOINT("thread_pool.chunk");
    body(begin, end);
    return;
  }
  const std::size_t max_chunks = std::min((n + grain - 1) / grain, size() * 4);
  const std::size_t chunk_size = (n + max_chunks - 1) / max_chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(max_chunks);
  for (std::size_t lo = begin; lo < end; lo += chunk_size) {
    const std::size_t hi = std::min(end, lo + chunk_size);
    futures.push_back(submit([lo, hi, &body] {
      XDMODML_FAILPOINT("thread_pool.chunk");
      body(lo, hi);
    }));
  }
  join_all(futures);  // all chunks finish, then the first exception
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace xdmodml
