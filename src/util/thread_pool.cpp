#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace xdmodml {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  XDMODML_CHECK(begin <= end, "parallel_for requires begin <= end");
  const std::size_t n = end - begin;
  if (n == 0) return;
  const std::size_t chunks = std::min(n, size() * 4);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk_size);
    futures.push_back(submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  for (auto& f : futures) f.get();  // rethrows the first chunk exception
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace xdmodml
