#include "util/error.hpp"

#include <sstream>

namespace xdmodml::detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& msg) {
  std::ostringstream os;
  os << "check failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvalidArgument(os.str());
}

}  // namespace xdmodml::detail
