#include "util/metrics.hpp"

#include <bit>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace xdmodml::obs {

namespace {

bool env_enabled() {
  const char* v = std::getenv("XDMODML_METRICS");
  if (v == nullptr) return false;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
         std::strcmp(v, "on") == 0;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_enabled()};
  return flag;
}

/// Formats a double with enough precision for ratios, no locale.
std::string format_ratio(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

/// Derived hit-rate from a pair of counters; negative when undefined.
double hit_rate(const MetricsSnapshot& snap, const std::string& hits,
                const std::string& misses) {
  const std::uint64_t h = snap.counter(hits);
  const std::uint64_t m = snap.counter(misses);
  if (h + m == 0) return -1.0;
  return static_cast<double>(h) / static_cast<double>(h + m);
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

void Histogram::record(std::uint64_t value) {
  const std::size_t idx = static_cast<std::size_t>(std::bit_width(value));
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::uint64_t Histogram::bucket_floor(std::size_t i) {
  if (i == 0) return 0;
  return std::uint64_t{1} << (i - 1);
}

std::uint64_t Histogram::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total) + 0.5);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += bucket(i);
    if (cumulative >= target && cumulative > 0) {
      // Exclusive upper edge of bucket i (bucket 0 holds exact zeros).
      return i == 0 ? 0 : (i >= 64 ? ~std::uint64_t{0} : std::uint64_t{1} << i);
    }
  }
  return ~std::uint64_t{0};
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

std::int64_t MetricsSnapshot::gauge(const std::string& name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

const MetricsSnapshot::HistogramValue* MetricsSnapshot::histogram(
    const std::string& name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

MetricsRegistry& MetricsRegistry::instance() {
  // Leaked on purpose: pool workers and bench destructors may record
  // during static teardown, after a normal static would be gone.
  static auto* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& unit) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot.second) {
    slot.first = unit;
    slot.second = std::make_unique<Histogram>();
  }
  return *slot.second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, entry] : histograms_) {
    const Histogram& h = *entry.second;
    MetricsSnapshot::HistogramValue hv;
    hv.name = name;
    hv.unit = entry.first;
    hv.count = h.count();
    hv.sum = h.sum();
    hv.p50 = h.quantile(0.5);
    hv.p99 = h.quantile(0.99);
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t c = h.bucket(i);
      if (c > 0) hv.buckets.emplace_back(Histogram::bucket_floor(i), c);
    }
    snap.histograms.push_back(std::move(hv));
  }
  return snap;
}

std::string MetricsRegistry::to_text() const {
  const MetricsSnapshot snap = snapshot();
  std::ostringstream os;
  for (const auto& [name, v] : snap.counters) {
    os << "counter " << name << " " << v << "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    os << "gauge " << name << " " << v << "\n";
  }
  for (const auto& h : snap.histograms) {
    os << "hist " << h.name << " count=" << h.count << " sum=" << h.sum
       << " p50=" << h.p50 << " p99=" << h.p99 << " unit=" << h.unit << "\n";
  }
  const double gram = hit_rate(snap, "gram_cache.hits", "gram_cache.misses");
  if (gram >= 0.0) {
    os << "derived gram_cache.hit_rate " << format_ratio(gram) << "\n";
  }
  const double grid = hit_rate(snap, "grid.cache_hits", "grid.cache_misses");
  if (grid >= 0.0) {
    os << "derived grid.cache_reuse_ratio " << format_ratio(grid) << "\n";
  }
  return os.str();
}

std::string MetricsRegistry::to_json() const {
  const MetricsSnapshot snap = snapshot();
  std::ostringstream os;
  os << "{\"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    os << (i ? ", " : "") << "\"" << snap.counters[i].first
       << "\": " << snap.counters[i].second;
  }
  os << "}, \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    os << (i ? ", " : "") << "\"" << snap.gauges[i].first
       << "\": " << snap.gauges[i].second;
  }
  os << "}, \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    os << (i ? ", " : "") << "\"" << h.name << "\": {\"unit\": \"" << h.unit
       << "\", \"count\": " << h.count << ", \"sum\": " << h.sum
       << ", \"p50\": " << h.p50 << ", \"p99\": " << h.p99
       << ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      os << (b ? ", " : "") << "[" << h.buckets[b].first << ", "
         << h.buckets[b].second << "]";
    }
    os << "]}";
  }
  os << "}, \"derived\": {";
  bool first = true;
  const double gram = hit_rate(snap, "gram_cache.hits", "gram_cache.misses");
  if (gram >= 0.0) {
    os << "\"gram_cache.hit_rate\": " << format_ratio(gram);
    first = false;
  }
  const double grid = hit_rate(snap, "grid.cache_hits", "grid.cache_misses");
  if (grid >= 0.0) {
    os << (first ? "" : ", ")
       << "\"grid.cache_reuse_ratio\": " << format_ratio(grid);
  }
  os << "}}";
  return os.str();
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h.second->reset();
}

}  // namespace xdmodml::obs
