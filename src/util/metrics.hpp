// Low-overhead runtime observability: counters, gauges and log-bucketed
// histograms behind a process-wide registry.
//
// The serving story (ROADMAP north star, paper §IV) needs cache hit
// rates, SMO iteration counts and ingest latencies to be visible at
// runtime, not only in ad-hoc benches.  This layer makes every hot path
// self-reporting while staying cheap enough to leave compiled in:
//
//  * Counters and gauges are single relaxed atomics.  Producers update
//    them unconditionally, but only at *coarse* sites — once per kernel
//    row, per SMO solve, per ingest — never per matrix element, so the
//    steady-state cost is a handful of uncontended relaxed adds per
//    unit of real work (far below measurement noise; the bench
//    trajectories in BENCH_*.json guard the <2 % budget).
//  * Histograms are 65 power-of-two buckets of relaxed atomics; one
//    `record()` is three relaxed adds.
//  * Anything that must touch a clock (ScopedTimer in util/trace.hpp)
//    is gated on `enabled()` — with the toggle off no time source is
//    read and no histogram is touched.
//  * The registry itself takes a mutex only on metric *lookup*; hot
//    call sites cache the returned reference in a function-local
//    static, so lookup happens once per process.
//
// Toggle: the XDMODML_METRICS environment variable ("1"/"true"/"on")
// read once at first use, overridable at runtime via `set_enabled`.
// Exporters: `to_text()` (human) and `to_json()` (machine; embedded in
// bench JSON rows and in ClassificationService::report()).
//
// How to add a metric: grab it once and cache the reference —
//
//   static auto& hits =
//       obs::MetricsRegistry::instance().counter("my_cache.hits");
//   hits.inc();
//
// Names are dot-separated (subsystem.metric).  See DESIGN.md §9.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace xdmodml::obs {

/// Global observability toggle.  Defaults to the XDMODML_METRICS
/// environment variable (read once); `set_enabled` overrides at runtime.
bool enabled();
void set_enabled(bool on);

/// Monotonic event counter (relaxed atomic increments).
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous level (queue depth, resident bytes, ...).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if larger (high-water-mark tracking).
  void update_max(std::int64_t v) {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log₂-bucketed histogram of non-negative integer samples (latency in
/// nanoseconds, iterations per solve, ...).  Bucket i ≥ 1 covers
/// [2^(i−1), 2^i); bucket 0 holds exact zeros.  One record() is three
/// relaxed atomic adds; concurrent recording never loses samples.
class Histogram {
 public:
  /// bit_width(uint64) ranges over [0, 64] — 65 buckets.
  static constexpr std::size_t kBuckets = 65;

  void record(std::uint64_t value);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Inclusive lower bound of bucket i (0, 1, 2, 4, 8, ...).
  static std::uint64_t bucket_floor(std::size_t i);

  /// Upper-bound estimate of the q-quantile (q in [0, 1]): the
  /// exclusive upper edge of the first bucket whose cumulative count
  /// reaches q·count.  0 when empty.
  std::uint64_t quantile(double q) const;

  double mean() const {
    const std::uint64_t c = count();
    return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
  }

  void reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Point-in-time copy of every registered metric, consistent per metric
/// (each atomic is loaded once; histograms may be mid-record across
/// fields, which over/under-counts by at most the in-flight samples).
struct MetricsSnapshot {
  struct HistogramValue {
    std::string name;
    std::string unit;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p99 = 0;
    /// (bucket_floor, count) for non-empty buckets only.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
  };
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramValue> histograms;

  /// Convenience lookups (0 when absent).
  std::uint64_t counter(const std::string& name) const;
  std::int64_t gauge(const std::string& name) const;
  const HistogramValue* histogram(const std::string& name) const;
};

/// Process-wide metric registry.  Lookup is mutex-guarded and intended
/// to run once per call site (cache the reference in a static); the
/// returned references stay valid for the life of the process.  The
/// singleton is deliberately leaked so worker threads may record during
/// static destruction.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, const std::string& unit = "ns");

  MetricsSnapshot snapshot() const;

  /// Human-readable dump: one metric per line, plus derived rates
  /// (e.g. gram_cache.hit_rate) where the inputs exist.
  std::string to_text() const;

  /// One JSON object:
  ///   {"counters": {...}, "gauges": {...},
  ///    "histograms": {name: {"unit", "count", "sum", "p50", "p99",
  ///                          "buckets": [[floor, count], ...]}},
  ///    "derived": {"gram_cache.hit_rate": 0.93, ...}}
  std::string to_json() const;

  /// Zeroes every registered metric (tests and bench arms; metrics are
  /// never unregistered, so cached references stay valid).
  void reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::pair<std::string, std::unique_ptr<Histogram>>>
      histograms_;
};

}  // namespace xdmodml::obs
