#include "util/simd.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/simd_ops.hpp"

namespace xdmodml::simd {

namespace detail {

namespace {

double dot_scalar(const double* a, const double* b, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

void dot_rows_scalar(const double* x, const double* rows, std::size_t d,
                     std::size_t n_rows, double* out) {
  for (std::size_t j = 0; j < n_rows; ++j) {
    out[j] = dot_scalar(x, rows + j * d, d);
  }
}

double squared_norm_scalar(const double* x, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += x[i] * x[i];
  return s;
}

void exp_inplace_scalar(double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] = std::exp(x[i]);
}

void rbf_row_transform_scalar(double* dots, const double* sq_norms,
                              std::size_t n, double x_sq, double gamma) {
  for (std::size_t j = 0; j < n; ++j) {
    dots[j] = std::exp(-gamma * clamped_sq_dist(x_sq, sq_norms[j], dots[j]));
  }
}

void poly_row_transform_powi_scalar(double* dots, std::size_t n, double gamma,
                                    double coef0, std::uint64_t degree) {
  for (std::size_t j = 0; j < n; ++j) {
    dots[j] = powi(gamma * dots[j] + coef0, degree);
  }
}

}  // namespace

const Ops* scalar_ops() {
  static constexpr Ops ops{dot_scalar,          dot_rows_scalar,
                           squared_norm_scalar, exp_inplace_scalar,
                           rbf_row_transform_scalar,
                           poly_row_transform_powi_scalar};
  return &ops;
}

}  // namespace detail

namespace {

const detail::Ops* ops_for(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return detail::scalar_ops();
    case Isa::kAvx2:
      return detail::avx2_ops();
  }
  return detail::scalar_ops();  // unreachable
}

bool cpu_has_avx2_fma() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

// The active table, published once.  Loads are relaxed — the tables are
// immutable statics, so any table a reader observes is fully formed.
std::atomic<const detail::Ops*> g_ops{nullptr};
std::atomic<Isa> g_isa{Isa::kScalar};

Isa choose_startup_isa() {
  if (const char* env = std::getenv("XDMODML_SIMD")) {
    if (const auto requested = isa_from_string(env)) {
      if (available(*requested)) return *requested;
      std::fprintf(stderr,
                   "xdmodml: XDMODML_SIMD=%s unavailable on this build/CPU; "
                   "using %s\n",
                   env, std::string(isa_name(detect_best())).c_str());
    }
  }
  return detect_best();
}

const detail::Ops* ops() {
  const detail::Ops* p = g_ops.load(std::memory_order_relaxed);
  if (p != nullptr) return p;
  // Racing first calls all compute the same selection; last store wins
  // with an identical value.
  const Isa isa = choose_startup_isa();
  p = ops_for(isa);
  g_isa.store(isa, std::memory_order_relaxed);
  g_ops.store(p, std::memory_order_relaxed);
  return p;
}

}  // namespace

Isa detect_best() {
  if (detail::avx2_ops() != nullptr && cpu_has_avx2_fma()) return Isa::kAvx2;
  return Isa::kScalar;
}

bool available(Isa isa) {
  if (isa == Isa::kAvx2) {
    return detail::avx2_ops() != nullptr && cpu_has_avx2_fma();
  }
  return true;
}

Isa active() {
  ops();  // force startup selection
  return g_isa.load(std::memory_order_relaxed);
}

bool set_active(Isa isa) {
  if (!available(isa)) return false;
  g_isa.store(isa, std::memory_order_relaxed);
  g_ops.store(ops_for(isa), std::memory_order_relaxed);
  return true;
}

std::string_view isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
  }
  return "?";  // unreachable
}

std::optional<Isa> isa_from_string(std::string_view name) {
  if (name == "scalar") return Isa::kScalar;
  if (name == "avx2") return Isa::kAvx2;
  return std::nullopt;
}

double dot(const double* a, const double* b, std::size_t n) {
  return ops()->dot(a, b, n);
}

void dot_rows(const double* x, const double* rows, std::size_t d,
              std::size_t n_rows, double* out) {
  ops()->dot_rows(x, rows, d, n_rows, out);
}

double squared_norm(const double* x, std::size_t n) {
  return ops()->squared_norm(x, n);
}

void exp_inplace(double* x, std::size_t n) { ops()->exp_inplace(x, n); }

void rbf_row_transform(double* dots, const double* sq_norms, std::size_t n,
                       double x_sq, double gamma) {
  ops()->rbf_row_transform(dots, sq_norms, n, x_sq, gamma);
}

void poly_row_transform_powi(double* dots, std::size_t n, double gamma,
                             double coef0, std::uint64_t degree) {
  ops()->poly_row_transform_powi(dots, n, gamma, coef0, degree);
}

}  // namespace xdmodml::simd
