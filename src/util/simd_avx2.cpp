// AVX2 + FMA microkernel table.
//
// Compiled with -mavx2 -mfma when the XDMODML_SIMD CMake option is ON
// and the compiler supports those flags (XDMODML_HAVE_AVX2 is defined
// for this target's sources in that case); otherwise the table is
// absent and `avx2_ops()` returns nullptr so dispatch can never reach
// this ISA.  Nothing here is called unless cpuid reported AVX2+FMA at
// startup (see simd.cpp), so the intrinsics are safe to contain.
#include "util/simd.hpp"
#include "util/simd_ops.hpp"

#if defined(XDMODML_HAVE_AVX2)

#include <immintrin.h>

#include <cmath>
#include <cstring>
#include <limits>

namespace xdmodml::simd::detail {

namespace {

// ---- vectorized exp -------------------------------------------------
//
// Cephes-style exp for 4 doubles: range-reduce x = n·ln2 + r with a
// Cody–Waite two-term ln2, evaluate exp(r) on |r| ≤ ln2/2 as the Padé
// form 1 + 2·r·P(r²)/(Q(r²) − r·P(r²)), and scale by 2ⁿ through the
// exponent bits.  Accuracy and edge behaviour are documented in
// simd.hpp (a few ULP in the primary range; underflow band flushes to
// exactly +0, x > 709 saturates to +inf, NaN propagates).

constexpr double kExpMaxArg = 709.0;
// log(DBL_MIN) — below this exp() is subnormal; this path returns +0.
constexpr double kExpMinArg = -708.396418532264106224;

inline __m256d exp4(__m256d x) {
  const __m256d log2e = _mm256_set1_pd(1.4426950408889634073599);
  // ln2 split so n·c1 is exact for |n| < 2^20.
  const __m256d c1 = _mm256_set1_pd(6.93145751953125e-1);
  const __m256d c2 = _mm256_set1_pd(1.42860682030941723212e-6);
  const __m256d p0 = _mm256_set1_pd(1.26177193074810590878e-4);
  const __m256d p1 = _mm256_set1_pd(3.02994407707441961300e-2);
  const __m256d p2 = _mm256_set1_pd(9.99999999999999999910e-1);
  const __m256d q0 = _mm256_set1_pd(3.00198505138664455042e-6);
  const __m256d q1 = _mm256_set1_pd(2.52448340349684104192e-3);
  const __m256d q2 = _mm256_set1_pd(2.27265548208155028766e-1);
  const __m256d q3 = _mm256_set1_pd(2.00000000000000000005e0);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d two = _mm256_set1_pd(2.0);

  // n = round(x / ln2); r = x − n·ln2 in two exact-ish steps.
  const __m256d n = _mm256_round_pd(
      _mm256_mul_pd(x, log2e), _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256d r = _mm256_fnmadd_pd(n, c1, x);
  r = _mm256_fnmadd_pd(n, c2, r);

  const __m256d r2 = _mm256_mul_pd(r, r);
  __m256d px = _mm256_fmadd_pd(p0, r2, p1);
  px = _mm256_fmadd_pd(px, r2, p2);
  px = _mm256_mul_pd(px, r);
  __m256d qx = _mm256_fmadd_pd(q0, r2, q1);
  qx = _mm256_fmadd_pd(qx, r2, q2);
  qx = _mm256_fmadd_pd(qx, r2, q3);
  const __m256d er = _mm256_fmadd_pd(
      two, _mm256_div_pd(px, _mm256_sub_pd(qx, px)), one);

  // 2ⁿ via the exponent field: for x in [kExpMinArg, kExpMaxArg] n is in
  // [−1022, 1023], so n + 1023 is a valid biased exponent and the int32
  // intermediate cannot overflow.  Out-of-range lanes produce garbage
  // here and are overwritten by the blends below.
  const __m128i n32 = _mm256_cvtpd_epi32(n);
  const __m256i n64 = _mm256_cvtepi32_epi64(n32);
  const __m256i pow2 =
      _mm256_slli_epi64(_mm256_add_epi64(n64, _mm256_set1_epi64x(1023)), 52);
  __m256d result = _mm256_mul_pd(er, _mm256_castsi256_pd(pow2));

  const __m256d inf =
      _mm256_set1_pd(std::numeric_limits<double>::infinity());
  const __m256d over =
      _mm256_cmp_pd(x, _mm256_set1_pd(kExpMaxArg), _CMP_GT_OQ);
  const __m256d under =
      _mm256_cmp_pd(x, _mm256_set1_pd(kExpMinArg), _CMP_LT_OQ);
  const __m256d is_nan = _mm256_cmp_pd(x, x, _CMP_UNORD_Q);
  result = _mm256_blendv_pd(result, inf, over);
  result = _mm256_blendv_pd(result, _mm256_setzero_pd(), under);
  result = _mm256_blendv_pd(result, x, is_nan);  // keep the NaN payload
  return result;
}

// Applies exp4 to a tail of 1–3 values through a padded register so
// remainder lanes go through exactly the same math as full blocks.
inline void exp4_partial(double* x, std::size_t count) {
  alignas(32) double tmp[4] = {0.0, 0.0, 0.0, 0.0};
  std::memcpy(tmp, x, count * sizeof(double));
  _mm256_store_pd(tmp, exp4(_mm256_load_pd(tmp)));
  std::memcpy(x, tmp, count * sizeof(double));
}

inline double hsum(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(lo, _mm_unpackhi_pd(lo, lo)));
}

double dot_avx2(const double* a, const double* b, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
  }
  if (i + 4 <= n) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    i += 4;
  }
  double s = hsum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

// Four rows per pass: the probe chunk is loaded once and FMA'd into
// four accumulators, then the lane sums collapse with two hadds into a
// single 4-wide store.  One indirect call covers a whole block, so the
// per-row dispatch cost of the dot pass disappears.
void dot_rows_avx2(const double* x, const double* rows, std::size_t d,
                   std::size_t n_rows, double* out) {
  std::size_t j = 0;
  for (; j + 4 <= n_rows; j += 4) {
    const double* r0 = rows + (j + 0) * d;
    const double* r1 = rows + (j + 1) * d;
    const double* r2 = rows + (j + 2) * d;
    const double* r3 = rows + (j + 3) * d;
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd();
    __m256d a3 = _mm256_setzero_pd();
    std::size_t c = 0;
    for (; c + 4 <= d; c += 4) {
      const __m256d xv = _mm256_loadu_pd(x + c);
      a0 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(r0 + c), a0);
      a1 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(r1 + c), a1);
      a2 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(r2 + c), a2);
      a3 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(r3 + c), a3);
    }
    // hadd(a0,a1) = [a0₀+a0₁, a1₀+a1₁, a0₂+a0₃, a1₂+a1₃]; adding the
    // swapped 128-bit halves of the two hadds yields [Σa0 Σa1 Σa2 Σa3].
    const __m256d t01 = _mm256_hadd_pd(a0, a1);
    const __m256d t23 = _mm256_hadd_pd(a2, a3);
    __m256d sums = _mm256_add_pd(_mm256_permute2f128_pd(t01, t23, 0x20),
                                 _mm256_permute2f128_pd(t01, t23, 0x31));
    if (c < d) {
      alignas(32) double tail[4] = {0.0, 0.0, 0.0, 0.0};
      for (; c < d; ++c) {
        tail[0] += x[c] * r0[c];
        tail[1] += x[c] * r1[c];
        tail[2] += x[c] * r2[c];
        tail[3] += x[c] * r3[c];
      }
      sums = _mm256_add_pd(sums, _mm256_load_pd(tail));
    }
    _mm256_storeu_pd(out + j, sums);
  }
  for (; j < n_rows; ++j) out[j] = dot_avx2(x, rows + j * d, d);
}

double squared_norm_avx2(const double* x, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d v0 = _mm256_loadu_pd(x + i);
    const __m256d v1 = _mm256_loadu_pd(x + i + 4);
    acc0 = _mm256_fmadd_pd(v0, v0, acc0);
    acc1 = _mm256_fmadd_pd(v1, v1, acc1);
  }
  if (i + 4 <= n) {
    const __m256d v = _mm256_loadu_pd(x + i);
    acc0 = _mm256_fmadd_pd(v, v, acc0);
    i += 4;
  }
  double s = hsum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) s += x[i] * x[i];
  return s;
}

void exp_inplace_avx2(double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, exp4(_mm256_loadu_pd(x + i)));
  }
  if (i < n) exp4_partial(x + i, n - i);
}

void rbf_row_transform_avx2(double* dots, const double* sq_norms,
                            std::size_t n, double x_sq, double gamma) {
  const __m256d vx_sq = _mm256_set1_pd(x_sq);
  const __m256d vneg_g = _mm256_set1_pd(-gamma);
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d zero = _mm256_setzero_pd();
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d dotv = _mm256_loadu_pd(dots + j);
    // Lane-wise clamped_sq_dist: ‖x‖² + ‖xⱼ‖² − 2·x·xⱼ, floored at 0
    // (2·dot is exact, so the fnmadd matches the scalar helper to 1 ulp).
    __m256d d2 = _mm256_fnmadd_pd(
        two, dotv, _mm256_add_pd(vx_sq, _mm256_loadu_pd(sq_norms + j)));
    d2 = _mm256_max_pd(zero, d2);
    _mm256_storeu_pd(dots + j, exp4(_mm256_mul_pd(vneg_g, d2)));
  }
  if (j < n) {
    for (std::size_t k = j; k < n; ++k) {
      dots[k] = -gamma * clamped_sq_dist(x_sq, sq_norms[k], dots[k]);
    }
    exp4_partial(dots + j, n - j);
  }
}

void poly_row_transform_powi_avx2(double* dots, std::size_t n, double gamma,
                                  double coef0, std::uint64_t degree) {
  const __m256d vg = _mm256_set1_pd(gamma);
  const __m256d vc0 = _mm256_set1_pd(coef0);
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    // mul+add (not fmadd) so the base matches the scalar g·dot + c0.
    const __m256d base =
        _mm256_add_pd(_mm256_mul_pd(vg, _mm256_loadu_pd(dots + j)), vc0);
    __m256d result = one;
    __m256d term = base;
    std::uint64_t e = degree;
    // Same multiplication order as simd::powi → lane-exact agreement.
    while (e > 0) {
      if (e & 1u) result = _mm256_mul_pd(result, term);
      term = _mm256_mul_pd(term, term);
      e >>= 1u;
    }
    _mm256_storeu_pd(dots + j, result);
  }
  for (; j < n; ++j) dots[j] = powi(gamma * dots[j] + coef0, degree);
}

}  // namespace

const Ops* avx2_ops() {
  static constexpr Ops ops{dot_avx2,          dot_rows_avx2,
                           squared_norm_avx2, exp_inplace_avx2,
                           rbf_row_transform_avx2,
                           poly_row_transform_powi_avx2};
  return &ops;
}

}  // namespace xdmodml::simd::detail

#else  // !XDMODML_HAVE_AVX2

namespace xdmodml::simd::detail {

const Ops* avx2_ops() { return nullptr; }

}  // namespace xdmodml::simd::detail

#endif
