// SIMD microkernel layer with runtime CPU dispatch.
//
// The SVM training hot path spends nearly all of its time in two loops:
// the blocked dot-product sweep that turns a probe row into raw inner
// products against every training row, and the kernel transform that
// maps those inner products through exp / powi.  Auto-vectorization
// covers the dot pass reasonably well but leaves the transform pass on
// scalar `std::exp`, which caps the raw RBF sweep speedup.  This header
// exposes the handful of microkernels both passes need:
//
//   * dot / squared_norm   — FMA-chained reductions over contiguous rows;
//   * exp_inplace          — vectorized exp (Cephes-style polynomial);
//   * rbf_row_transform    — dots → exp(−γ·clamped ‖x−xⱼ‖²) in one pass;
//   * poly_row_transform_powi — dots → (γ·dot + c0)^degree, integral degree.
//
// Each call dispatches through a function-pointer table selected ONCE at
// startup from cpuid (AVX2 + FMA today; a scalar fallback always exists,
// and new ISA targets slot in as another table — see DESIGN.md).  The
// choice can be overridden for A/B testing:
//
//   * environment: XDMODML_SIMD=scalar|avx2|auto (read at first use);
//   * programmatically: set_active(Isa) — used by the equivalence tests
//     and the bench binaries to time both paths in one process.
//
// Building the AVX2 translation unit is controlled by the XDMODML_SIMD
// CMake option (default ON where the compiler supports -mavx2 -mfma);
// with it OFF the scalar table is the only candidate and behaviour is
// identical everywhere.
//
// Accuracy contract for the vectorized exp (AVX2 path):
//   * |result − std::exp(x)| ≤ a few ULP for x in [−708.39, 709.0];
//   * exactly +0.0 for x < −708.396 (std::exp returns subnormals down to
//     ≈ −745; this path flushes the whole subnormal band to zero, which
//     is the correct limit for RBF arguments −γ‖x−y‖² → −∞);
//   * +inf for x > 709.0 (std::exp stays finite up to ≈ 709.78; RBF
//     arguments are never positive so the band is unreachable there);
//   * NaN → NaN, +inf → +inf, −inf → +0.0, ±0.0 → 1.0 exactly.
// The scalar table uses std::exp and has no such edges.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace xdmodml::simd {

/// Instruction-set targets, in preference order.
enum class Isa { kScalar, kAvx2 };

/// Largest vector lane count any target uses (doubles per register).
/// Tests exercise remainder handling with sizes not divisible by this.
inline constexpr std::size_t kMaxLanes = 4;

/// Round-off in the norm expansion ‖x−y‖² = ‖x‖² + ‖y‖² − 2·x·y can push
/// the result a hair negative for near-identical rows.  Every transform
/// path — scalar and SIMD alike — clamps through this one helper (the
/// AVX2 kernel mirrors it lane-wise with max(0, ·)) so the two cannot
/// drift.
inline double clamped_sq_dist(double x_sq, double y_sq, double xy) {
  const double d2 = x_sq + y_sq - 2.0 * xy;
  return d2 > 0.0 ? d2 : 0.0;
}

/// base^exp by squaring — shared by the scalar kernel paths and the
/// per-lane SIMD polynomial transform (same multiplication order, so the
/// two agree bit-for-bit on equal inputs).
inline double powi(double base, std::uint64_t exp) {
  double result = 1.0;
  double term = base;
  while (exp > 0) {
    if (exp & 1u) result *= term;
    term *= term;
    exp >>= 1u;
  }
  return result;
}

/// Best ISA this build AND this CPU support (cpuid-based, cached).
Isa detect_best();

/// True when `isa` is both compiled in and supported by the CPU.
bool available(Isa isa);

/// The active ISA.  Selected once on first use: XDMODML_SIMD if set and
/// available, otherwise detect_best().
Isa active();

/// Forces the active ISA (A/B testing, equivalence tests).  Returns
/// false — leaving the selection unchanged — if `isa` is unavailable.
bool set_active(Isa isa);

/// "scalar" / "avx2".
std::string_view isa_name(Isa isa);

/// Parses an XDMODML_SIMD value ("scalar", "avx2"); nullopt for "auto"
/// or anything unrecognized.  Exposed for tests.
std::optional<Isa> isa_from_string(std::string_view name);

// ---- microkernels (dispatch through the active ISA) -----------------

/// Σ a[i]·b[i].
double dot(const double* a, const double* b, std::size_t n);

/// Blocked dot sweep against contiguous row-major storage:
///   out[j] = x · rows[j·d .. j·d+d)  for j in [0, n_rows).
/// One dispatch for the whole block (the AVX2 path processes four rows
/// per pass, reusing the probe vector from registers) — this is the
/// Gram-row engine's dot pass.
void dot_rows(const double* x, const double* rows, std::size_t d,
              std::size_t n_rows, double* out);

/// Σ x[i]².
double squared_norm(const double* x, std::size_t n);

/// x[i] = exp(x[i]) for i in [0, n) — see the accuracy contract above.
void exp_inplace(double* x, std::size_t n);

/// RBF transform over a block of raw inner products:
///   dots[j] = exp(−gamma · clamped_sq_dist(x_sq, sq_norms[j], dots[j]))
void rbf_row_transform(double* dots, const double* sq_norms, std::size_t n,
                       double x_sq, double gamma);

/// Integral-degree polynomial transform over a block of inner products:
///   dots[j] = powi(gamma · dots[j] + coef0, degree)
void poly_row_transform_powi(double* dots, std::size_t n, double gamma,
                             double coef0, std::uint64_t degree);

}  // namespace xdmodml::simd
