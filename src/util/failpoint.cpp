#include "util/failpoint.hpp"

#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"

namespace xdmodml::fp {

namespace detail {
std::atomic<int> g_armed_count{kUninitialized};
}  // namespace detail

namespace {

/// FNV-1a, so every site gets a decorrelated stream from one seed.
std::uint64_t hash_site(const std::string& site) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : site) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// One registered site.  Stats outlive disarming; the decision state
/// (rng, trigger budget) is taken under the site mutex so the per-site
/// fire/skip sequence is deterministic even when threads race the site.
struct Site {
  std::atomic<std::uint64_t> evaluations{0};
  std::atomic<std::uint64_t> triggers{0};

  std::mutex mutex;  ///< guards everything below
  bool is_armed = false;
  Policy policy;
  Rng rng{0};
  std::uint64_t fired = 0;  ///< triggers under the *current* arming
};

struct Registry {
  std::mutex mutex;  ///< guards the map and armed-count recomputation
  std::map<std::string, std::shared_ptr<Site>> sites;

  static Registry& instance() {
    // Leaked like the metrics registry: worker threads may evaluate
    // failpoints during static destruction.
    static Registry* r = new Registry();
    return *r;
  }

  /// Recomputes the macro gate; call under `mutex`.
  void publish_armed_count() {
    int armed = 0;
    for (const auto& [name, site] : sites) {
      std::lock_guard site_lock(site->mutex);
      if (site->is_armed) ++armed;
    }
    detail::g_armed_count.store(armed, std::memory_order_relaxed);
  }
};

void arm_locked(Registry& reg, const std::string& site_name, Policy policy,
                std::uint64_t seed) {
  auto& slot = reg.sites[site_name];
  if (!slot) slot = std::make_shared<Site>();
  {
    std::lock_guard site_lock(slot->mutex);
    slot->is_armed = true;
    slot->policy = policy;
    slot->rng = Rng(seed ^ hash_site(site_name));
    slot->fired = 0;
  }
  reg.publish_armed_count();
}

std::size_t arm_from_spec_impl(Registry& reg, const std::string& spec,
                               std::uint64_t seed) {
  std::size_t armed = 0;
  for (const auto& entry : split(spec, ';')) {
    const std::string trimmed = trim(entry);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    XDMODML_CHECK(eq != std::string::npos && eq > 0,
                  "failpoint spec entry needs site=policy: " + trimmed);
    const std::string site = trim(trimmed.substr(0, eq));
    const Policy policy = Policy::parse(trimmed.substr(eq + 1));
    arm_locked(reg, site, policy, seed);
    ++armed;
  }
  return armed;
}

std::size_t arm_from_env_impl(Registry& reg) {
  const char* spec = std::getenv("XDMODML_FAILPOINTS");
  std::uint64_t seed = 0;
  if (const char* s = std::getenv("XDMODML_FAILPOINT_SEED")) {
    seed = std::strtoull(s, nullptr, 10);
  }
  if (spec == nullptr || *spec == '\0') return 0;
  return arm_from_spec_impl(reg, spec, seed);
}

/// One-time env read.  Every public entry point and the first macro
/// evaluation funnel through here; afterwards g_armed_count holds the
/// real armed-site count and the not-armed macro path is one load.
void ensure_init(Registry& reg) {
  static std::once_flag once;
  std::call_once(once, [&reg] {
    std::lock_guard lock(reg.mutex);
    arm_from_env_impl(reg);
    reg.publish_armed_count();  // 0 when the env armed nothing
  });
}

/// Outcome of one evaluation, decided under the site lock and applied
/// outside it (sleeping or throwing under a lock would serialize every
/// other site).
enum class Fired { kNo, kNoop, kError, kReturnEarly, kDelay };

Fired decide(Site& site) {
  site.evaluations.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(site.mutex);
  if (!site.is_armed) return Fired::kNo;
  const Policy& p = site.policy;
  if (p.max_triggers != 0 && site.fired >= p.max_triggers) return Fired::kNo;
  if (p.one_in > 1 && site.rng.uniform_index(p.one_in) != 0) return Fired::kNo;
  ++site.fired;
  site.triggers.fetch_add(1, std::memory_order_relaxed);
  switch (p.action) {
    case Policy::Action::kNoop:
      return Fired::kNoop;
    case Policy::Action::kError:
      return Fired::kError;
    case Policy::Action::kReturnEarly:
      return Fired::kReturnEarly;
    case Policy::Action::kDelay:
      return Fired::kDelay;
  }
  return Fired::kNoop;  // unreachable
}

/// Shared slow path for the two macros; returns true when a
/// return-early policy fired.
bool evaluate_impl(const char* site_name) {
  auto& reg = Registry::instance();
  ensure_init(reg);
  if (detail::g_armed_count.load(std::memory_order_relaxed) <= 0) {
    return false;  // env armed nothing (first-call funnel) or raced disarm
  }
  std::shared_ptr<Site> site;
  {
    std::lock_guard lock(reg.mutex);
    const auto it = reg.sites.find(site_name);
    if (it == reg.sites.end()) return false;
    site = it->second;
  }
  const Fired fired = decide(*site);
  if (fired == Fired::kNo || fired == Fired::kNoop) {
    return false;
  }
  static auto& triggers =
      obs::MetricsRegistry::instance().counter("failpoint.triggers");
  triggers.inc();
  switch (fired) {
    case Fired::kError: {
      int code;
      {
        std::lock_guard lock(site->mutex);
        code = site->policy.error_code;
      }
      throw FailpointError(site_name, code);
    }
    case Fired::kDelay: {
      std::uint64_t ms;
      {
        std::lock_guard lock(site->mutex);
        ms = site->policy.delay_ms;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      return false;
    }
    case Fired::kReturnEarly:
      return true;
    default:
      return false;
  }
}

/// Strict "name(number)" or bare "name" matcher for the policy grammar.
bool take_call(const std::string& text, const std::string& name,
               std::uint64_t* value, bool* had_value) {
  if (text == name) {
    *had_value = false;
    return true;
  }
  if (text.size() > name.size() + 2 && text.compare(0, name.size(), name) == 0 &&
      text[name.size()] == '(' && text.back() == ')') {
    const std::string digits =
        text.substr(name.size() + 1, text.size() - name.size() - 2);
    XDMODML_CHECK(!digits.empty() &&
                      digits.find_first_not_of("0123456789") ==
                          std::string::npos,
                  "failpoint policy needs a non-negative integer: " + text);
    *value = std::strtoull(digits.c_str(), nullptr, 10);
    *had_value = true;
    return true;
  }
  return false;
}

}  // namespace

Policy Policy::parse(const std::string& text) {
  Policy policy;
  std::string rest = trim(text);
  XDMODML_CHECK(!rest.empty(), "empty failpoint policy");

  // [one_in(N):] prefix
  if (rest.rfind("one_in(", 0) == 0) {
    const auto colon = rest.find("):");
    XDMODML_CHECK(colon != std::string::npos,
                  "one_in(N) must be followed by ':action': " + text);
    std::uint64_t n = 0;
    bool had = false;
    XDMODML_CHECK(take_call(rest.substr(0, colon + 1), "one_in", &n, &had) &&
                      had && n >= 1,
                  "bad one_in(N) prefix: " + text);
    policy.one_in = n;
    rest = trim(rest.substr(colon + 2));
  }

  // [*COUNT] suffix
  const auto star = rest.rfind('*');
  if (star != std::string::npos) {
    const std::string digits = rest.substr(star + 1);
    XDMODML_CHECK(!digits.empty() &&
                      digits.find_first_not_of("0123456789") ==
                          std::string::npos,
                  "bad *COUNT suffix: " + text);
    policy.max_triggers = std::strtoull(digits.c_str(), nullptr, 10);
    XDMODML_CHECK(policy.max_triggers > 0, "*COUNT must be positive: " + text);
    rest = trim(rest.substr(0, star));
  }

  std::uint64_t value = 0;
  bool had_value = false;
  if (take_call(rest, "error", &value, &had_value)) {
    policy.action = Action::kError;
    policy.error_code = had_value ? static_cast<int>(value) : 1;
  } else if (take_call(rest, "return", &value, &had_value)) {
    XDMODML_CHECK(!had_value, "return takes no argument: " + text);
    policy.action = Action::kReturnEarly;
  } else if (take_call(rest, "delay", &value, &had_value)) {
    XDMODML_CHECK(had_value, "delay needs delay(MS): " + text);
    policy.action = Action::kDelay;
    policy.delay_ms = value;
  } else if (take_call(rest, "noop", &value, &had_value)) {
    XDMODML_CHECK(!had_value, "noop takes no argument: " + text);
    policy.action = Action::kNoop;
  } else {
    throw InvalidArgument("unknown failpoint action: " + text);
  }
  return policy;
}

void arm(const std::string& site, Policy policy, std::uint64_t seed) {
  auto& reg = Registry::instance();
  ensure_init(reg);
  std::lock_guard lock(reg.mutex);
  arm_locked(reg, site, policy, seed);
}

std::size_t arm_from_spec(const std::string& spec, std::uint64_t seed) {
  auto& reg = Registry::instance();
  ensure_init(reg);
  std::lock_guard lock(reg.mutex);
  return arm_from_spec_impl(reg, spec, seed);
}

std::size_t arm_from_env() {
  auto& reg = Registry::instance();
  ensure_init(reg);
  std::lock_guard lock(reg.mutex);
  const std::size_t armed = arm_from_env_impl(reg);
  reg.publish_armed_count();
  return armed;
}

void disarm(const std::string& site) {
  auto& reg = Registry::instance();
  ensure_init(reg);
  std::lock_guard lock(reg.mutex);
  const auto it = reg.sites.find(site);
  if (it != reg.sites.end()) {
    std::lock_guard site_lock(it->second->mutex);
    it->second->is_armed = false;
  }
  reg.publish_armed_count();
}

void disarm_all() {
  auto& reg = Registry::instance();
  ensure_init(reg);
  std::lock_guard lock(reg.mutex);
  for (auto& [name, site] : reg.sites) {
    std::lock_guard site_lock(site->mutex);
    site->is_armed = false;
  }
  reg.publish_armed_count();
}

void reset() {
  auto& reg = Registry::instance();
  ensure_init(reg);
  std::lock_guard lock(reg.mutex);
  reg.sites.clear();
  reg.publish_armed_count();
}

SiteStats site_stats(const std::string& site) {
  auto& reg = Registry::instance();
  ensure_init(reg);
  std::lock_guard lock(reg.mutex);
  const auto it = reg.sites.find(site);
  if (it == reg.sites.end()) return {};
  SiteStats stats;
  stats.evaluations = it->second->evaluations.load(std::memory_order_relaxed);
  stats.triggers = it->second->triggers.load(std::memory_order_relaxed);
  return stats;
}

std::vector<std::string> armed_sites() {
  auto& reg = Registry::instance();
  ensure_init(reg);
  std::lock_guard lock(reg.mutex);
  std::vector<std::string> names;
  for (const auto& [name, site] : reg.sites) {
    std::lock_guard site_lock(site->mutex);
    if (site->is_armed) names.push_back(name);
  }
  return names;
}

namespace detail {

void evaluate(const char* site) { evaluate_impl(site); }

bool should_return(const char* site) { return evaluate_impl(site); }

}  // namespace detail

}  // namespace xdmodml::fp
