// Deterministic fault injection: named failure sites (failpoints) that
// production code plants on its error-handling paths and tests arm at
// runtime.
//
// The paper's pipeline (TACC_Stats → SUPReMM summaries → warehouse →
// classifiers) is a multi-stage ingest path, and real job-log pipelines
// are dominated by dirty/partial data and infrastructure hiccups:
// truncated CSVs, allocation pressure in the Gram cache, task failures
// in the pool, transient warehouse write errors.  The happy path gets
// tested by everything else in the suite; this subsystem exists so the
// *unhappy* paths — evict-and-retry, compute-without-caching, batch
// retry with backoff, dead-lettering, structured error outcomes — can be
// driven deterministically instead of waiting for production to find
// them.  See DESIGN.md §11 and the chaos suite in test_chaos_service.
//
// Cost contract: with no failpoint armed (the production steady state)
// every XDMODML_FAILPOINT macro is ONE relaxed atomic load and a
// predicted-not-taken branch — no string, no lock, no map lookup.  The
// registry is consulted only while at least one site is armed, which
// only happens in tests and chaos drills; an armed process is explicitly
// trading speed for failure coverage.
//
// Determinism contract: `one_in(n)` draws from a per-site xoshiro stream
// seeded with (global seed ⊕ site-name hash), so for a fixed seed the
// k-th evaluation of a given site always makes the same fire/skip
// decision.  Per-site sequences are deterministic even under
// concurrency (the decision is taken under the site lock, keyed by the
// site's own evaluation counter); the *interleaving across sites* still
// follows the thread schedule, which is why the chaos suite asserts
// invariants and golden-run equivalence, never exact event orders.
//
// Arming:
//   * env — XDMODML_FAILPOINTS="site=policy[;site=policy...]" read once
//     at first use, seed from XDMODML_FAILPOINT_SEED (default 0);
//   * API — fp::arm("gram_cache.alloc", fp::Policy::parse("error(12)*2")).
//
// Policy grammar (see Policy::parse):
//   policy  := [one_in(N):]action[*COUNT]
//   action  := error(CODE) | return | delay(MS) | noop
// Examples:  "error(5)"          throw FailpointError on every hit
//            "return*3"          take the site's early-return arm 3 times
//            "one_in(4):delay(10)"  10 ms stall on ~1/4 of evaluations
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace xdmodml::fp {

/// Thrown by a triggered `error(code)` policy.  Derives from
/// xdmodml::Error so hardened call sites that already convert library
/// errors into structured outcomes handle injected faults for free.
class FailpointError : public Error {
 public:
  FailpointError(const std::string& site, int code)
      : Error("failpoint '" + site + "' injected error " +
              std::to_string(code)),
        site_(site),
        code_(code) {}

  const std::string& site() const { return site_; }
  int code() const { return code_; }

 private:
  std::string site_;
  int code_;
};

/// What an armed site does when it fires.
struct Policy {
  enum class Action {
    kNoop,         ///< count the trigger, do nothing (probe mode)
    kError,        ///< throw FailpointError(site, error_code)
    kReturnEarly,  ///< make XDMODML_FAILPOINT_RETURN take its return arm
    kDelay,        ///< sleep delay_ms, then continue
  };

  Action action = Action::kNoop;
  int error_code = 0;          ///< payload for kError
  std::uint64_t delay_ms = 0;  ///< stall for kDelay
  /// Fire on ~1/n of evaluations (seeded, per-site deterministic).
  /// 0 or 1 = fire on every evaluation.
  std::uint64_t one_in = 0;
  /// Stop firing after this many triggers (site stays registered and
  /// keeps counting evaluations).  0 = unlimited.
  std::uint64_t max_triggers = 0;

  /// Parses "[one_in(N):]action[*COUNT]"; throws InvalidArgument on any
  /// malformed spec (unknown action, bad number, trailing garbage).
  static Policy parse(const std::string& text);
};

/// True while at least one site is armed — the macros' fast gate.  The
/// not-armed read is a single relaxed atomic load.
bool armed();

/// Arms (or re-arms) one site.  `seed` feeds the site's one_in stream;
/// re-arming resets the site's trigger budget and RNG but keeps its
/// lifetime evaluation/trigger counters.
void arm(const std::string& site, Policy policy, std::uint64_t seed = 0);

/// Arms every "site=policy" entry of a ';'-separated spec (the
/// XDMODML_FAILPOINTS syntax).  Returns the number of sites armed.
std::size_t arm_from_spec(const std::string& spec, std::uint64_t seed = 0);

/// Re-reads XDMODML_FAILPOINTS / XDMODML_FAILPOINT_SEED and arms
/// accordingly (also runs implicitly once at first macro evaluation).
/// Returns the number of sites armed.
std::size_t arm_from_env();

/// Disarms one site / every site.  Counters survive until reset().
void disarm(const std::string& site);
void disarm_all();

/// Drops every site *and* its counters (test isolation).
void reset();

/// Lifetime counters of one site (zeros when the site was never armed).
struct SiteStats {
  std::uint64_t evaluations = 0;  ///< macro hits while the site was armed
  std::uint64_t triggers = 0;     ///< evaluations on which the policy fired
};
SiteStats site_stats(const std::string& site);

/// Names of currently armed sites (diagnostics).
std::vector<std::string> armed_sites();

namespace detail {

/// kUninitialized until the env spec has been consulted; afterwards the
/// number of armed sites.  The macros treat "uninitialized" as armed so
/// the first evaluation funnels into the slow path and performs the
/// one-time env read.
inline constexpr int kUninitialized = -1;
extern std::atomic<int> g_armed_count;

/// Slow paths, called only while armed() is true.  `evaluate` applies
/// the site policy (may throw / delay); `should_return` additionally
/// reports whether a return-early policy fired.
void evaluate(const char* site);
bool should_return(const char* site);

}  // namespace detail

inline bool armed() {
  return detail::g_armed_count.load(std::memory_order_relaxed) != 0;
}

/// Evaluates `site` like XDMODML_FAILPOINT and reports whether a
/// return_early policy fired — for call sites whose graceful arm is not
/// a plain `return` (break out of a loop, route to a fallback path).
/// Same fast gate: one relaxed load when nothing is armed.
inline bool triggered(const char* site) {
  return armed() && detail::should_return(site);
}

}  // namespace xdmodml::fp

/// Plants a failure site.  Disabled (nothing armed): one relaxed atomic
/// load.  Armed: consults the registry; an error policy throws, a delay
/// policy stalls, return-early is a no-op at this macro (use
/// XDMODML_FAILPOINT_RETURN for sites with a graceful-degradation arm).
#define XDMODML_FAILPOINT(site)                                         \
  do {                                                                  \
    if (::xdmodml::fp::armed()) ::xdmodml::fp::detail::evaluate(site);  \
  } while (false)

/// Plants a failure site with an early-return arm: when a return_early
/// policy fires, the enclosing function returns `...` (which may be
/// empty for void functions).  Error/delay policies behave as in
/// XDMODML_FAILPOINT.
#define XDMODML_FAILPOINT_RETURN(site, ...)                             \
  do {                                                                  \
    if (::xdmodml::fp::armed() &&                                       \
        ::xdmodml::fp::detail::should_return(site)) {                   \
      return __VA_ARGS__;                                               \
    }                                                                   \
  } while (false)
