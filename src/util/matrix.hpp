// A minimal dense row-major matrix of doubles.
//
// Feature matrices in this library are tall and skinny (10^4–10^6 rows,
// ~30 columns), accessed row-at-a-time by every classifier, so row-major
// contiguous storage with `row()` returning a std::span is the right shape.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace xdmodml {

/// Dense row-major matrix.  Rows are contiguous; `row(i)` is zero-copy.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols, value-initialized to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer data (rows of equal length).
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access (throws InvalidArgument).
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  /// Copies column c.
  std::vector<double> column(std::size_t c) const;

  /// Appends a row (must match cols(), or sets cols() when empty).
  void append_row(std::span<const double> values);

  /// Squared Euclidean norm of every row (‖xᵢ‖² for i in [0, rows)).
  /// One SIMD-microkernel pass over the contiguous storage; the Gram-row
  /// engine computes this once per fit and reuses it for every RBF
  /// kernel row.
  std::vector<double> row_squared_norms() const;

  /// Returns a new matrix containing the given rows, in order.
  Matrix gather_rows(std::span<const std::size_t> indices) const;

  /// Returns a new matrix containing the given columns, in order.
  Matrix gather_cols(std::span<const std::size_t> indices) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace xdmodml
