#include "util/string_util.hpp"

#include <algorithm>
#include <cctype>

namespace xdmodml {

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string trim(std::string_view s) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && is_space(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string basename(std::string_view path) {
  const auto pos = path.find_last_of('/');
  if (pos == std::string_view::npos) return std::string(path);
  return std::string(path.substr(pos + 1));
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace xdmodml
