// Internal dispatch table for the SIMD microkernels.
//
// Each ISA target fills one immutable `Ops` table; `simd.cpp` owns the
// scalar table and the startup selection, `simd_<isa>.cpp` owns that
// ISA's table behind a compile-time gate (returning nullptr when the
// translation unit was built without the ISA).  Adding a new target —
// AVX-512, NEON — means one new source file implementing these five
// entry points plus a line in the selection ladder; the public API in
// simd.hpp never changes.
#pragma once

#include <cstddef>
#include <cstdint>

namespace xdmodml::simd::detail {

struct Ops {
  double (*dot)(const double*, const double*, std::size_t);
  void (*dot_rows)(const double*, const double*, std::size_t, std::size_t,
                   double*);
  double (*squared_norm)(const double*, std::size_t);
  void (*exp_inplace)(double*, std::size_t);
  void (*rbf_row_transform)(double*, const double*, std::size_t, double,
                            double);
  void (*poly_row_transform_powi)(double*, std::size_t, double, double,
                                  std::uint64_t);
};

/// Always present.
const Ops* scalar_ops();

/// AVX2+FMA table, or nullptr when the build lacks the AVX2 TU.
const Ops* avx2_ops();

}  // namespace xdmodml::simd::detail
