#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace xdmodml {

TextTable::TextTable(std::vector<std::string> header,
                     std::vector<Align> aligns)
    : header_(std::move(header)), aligns_(std::move(aligns)) {
  XDMODML_CHECK(!header_.empty(), "table requires a header");
  if (aligns_.empty()) {
    aligns_.assign(header_.size(), Align::kRight);
    aligns_[0] = Align::kLeft;
  }
  XDMODML_CHECK(aligns_.size() == header_.size(),
                "alignment count must match header");
}

void TextTable::add_row(std::vector<std::string> row) {
  XDMODML_CHECK(row.size() == header_.size(),
                "row width must match header");
  rows_.push_back(std::move(row));
}

void TextTable::add_row(const std::string& label,
                        const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (const double v : values) row.push_back(format_double(v, precision));
  add_row(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << "  ";
      const auto pad = widths[c] - row[c].size();
      if (aligns_[c] == Align::kRight) os << std::string(pad, ' ');
      os << row[c];
      if (aligns_[c] == Align::kLeft && c + 1 != row.size()) {
        os << std::string(pad, ' ');
      }
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string format_percent(double fraction, int precision) {
  return format_double(fraction * 100.0, precision);
}

std::string ascii_bar(double v, double vmax, std::size_t width) {
  if (vmax <= 0.0 || v < 0.0) return std::string();
  const double frac = std::min(1.0, v / vmax);
  const auto filled = static_cast<std::size_t>(frac * static_cast<double>(width) + 0.5);
  return std::string(filled, '#');
}

}  // namespace xdmodml
