#include "util/matrix.hpp"

#include <algorithm>

#include "util/simd.hpp"

namespace xdmodml {

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  Matrix m;
  for (const auto& r : rows) m.append_row(r);
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  XDMODML_CHECK(r < rows_ && c < cols_, "Matrix::at out of range");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  XDMODML_CHECK(r < rows_ && c < cols_, "Matrix::at out of range");
  return (*this)(r, c);
}

std::vector<double> Matrix::column(std::size_t c) const {
  XDMODML_CHECK(c < cols_, "Matrix::column out of range");
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::append_row(std::span<const double> values) {
  if (rows_ == 0 && cols_ == 0) {
    XDMODML_CHECK(!values.empty(), "cannot append an empty first row");
    cols_ = values.size();
  }
  XDMODML_CHECK(values.size() == cols_, "appended row has wrong width");
  data_.insert(data_.end(), values.begin(), values.end());
  ++rows_;
}

std::vector<double> Matrix::row_squared_norms() const {
  std::vector<double> norms(rows_, 0.0);
  const double* base = data_.data();
  for (std::size_t r = 0; r < rows_; ++r) {
    norms[r] = simd::squared_norm(base + r * cols_, cols_);
  }
  return norms;
}

Matrix Matrix::gather_rows(std::span<const std::size_t> indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    XDMODML_CHECK(indices[i] < rows_, "gather_rows index out of range");
    const auto src = row(indices[i]);
    std::copy(src.begin(), src.end(), out.row(i).begin());
  }
  return out;
}

Matrix Matrix::gather_cols(std::span<const std::size_t> indices) const {
  Matrix out(rows_, indices.size());
  for (std::size_t c = 0; c < indices.size(); ++c) {
    XDMODML_CHECK(indices[c] < cols_, "gather_cols index out of range");
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < indices.size(); ++c) {
      out(r, c) = (*this)(r, indices[c]);
    }
  }
  return out;
}

}  // namespace xdmodml
