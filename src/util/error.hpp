// Error handling utilities for the xdmod-ml library.
//
// We follow the C++ Core Guidelines: report errors that the immediate caller
// cannot handle via exceptions (E.2), and check preconditions at API
// boundaries (I.5).  The XDMODML_CHECK macro throws `xdmodml::Error` with a
// message that includes the failing expression and source location.
#pragma once

#include <stdexcept>
#include <string>

namespace xdmodml {

/// Base exception type for all errors raised by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// Raised when an argument violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what_arg) : Error(what_arg) {}
};

/// Raised when a computation cannot proceed (singular system, empty data, ...).
class ComputeError : public Error {
 public:
  explicit ComputeError(const std::string& what_arg) : Error(what_arg) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

}  // namespace xdmodml

/// Precondition check: throws xdmodml::InvalidArgument when `expr` is false.
/// Always enabled (these guard public API boundaries, not hot loops).
#define XDMODML_CHECK(expr, msg)                                          \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::xdmodml::detail::throw_check_failure(#expr, __FILE__, __LINE__,   \
                                             (msg));                      \
    }                                                                     \
  } while (false)
