// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace xdmodml {

/// Lower-cases ASCII characters.
std::string to_lower(std::string_view s);

/// Strips leading/trailing whitespace.
std::string trim(std::string_view s);

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// True when `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// True when `s` ends with `suffix`.
bool ends_with(std::string_view s, std::string_view suffix);

/// Last path component of a POSIX path ("/a/b/c" -> "c", "x" -> "x").
std::string basename(std::string_view path);

/// Joins strings with a separator.
std::string join(const std::vector<std::string>& parts,
                 std::string_view sep);

}  // namespace xdmodml
