#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace xdmodml {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // xoshiro must not be seeded with all zeros; splitmix64 output of any
  // seed cannot produce four zero words, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::split() {
  // Derive the child from two fresh words; SplitMix64 inside the child
  // constructor decorrelates the streams.
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng(a ^ rotl(b, 31) ^ 0xd2b74407b1ce6e93ULL);
}

double Rng::uniform() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  XDMODML_CHECK(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  XDMODML_CHECK(n > 0, "uniform_index requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  XDMODML_CHECK(lo <= hi, "uniform_int requires lo <= hi");
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] so log() is finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double sd) {
  XDMODML_CHECK(sd >= 0.0, "normal requires sd >= 0");
  return mean + sd * normal();
}

double Rng::lognormal(double mu, double sigma) {
  XDMODML_CHECK(sigma >= 0.0, "lognormal requires sigma >= 0");
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) {
  XDMODML_CHECK(rate > 0.0, "exponential requires rate > 0");
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::gamma(double shape, double scale) {
  XDMODML_CHECK(shape > 0.0 && scale > 0.0,
                "gamma requires shape > 0 and scale > 0");
  if (shape < 1.0) {
    // Boost to shape+1 then apply the power correction (Marsaglia–Tsang).
    const double g = gamma(shape + 1.0, 1.0);
    double u = 0.0;
    do {
      u = uniform();
    } while (u <= 0.0);
    return scale * g * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    const double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) return scale * d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) {
      return scale * d * v;
    }
  }
}

double Rng::beta(double a, double b) {
  XDMODML_CHECK(a > 0.0 && b > 0.0, "beta requires a > 0 and b > 0");
  const double x = gamma(a, 1.0);
  const double y = gamma(b, 1.0);
  return x / (x + y);
}

bool Rng::bernoulli(double p) {
  XDMODML_CHECK(p >= 0.0 && p <= 1.0, "bernoulli requires p in [0, 1]");
  return uniform() < p;
}

std::uint64_t Rng::poisson(double lambda) {
  XDMODML_CHECK(lambda >= 0.0, "poisson requires lambda >= 0");
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth's multiplicative method.
    const double limit = std::exp(-lambda);
    double prod = uniform();
    std::uint64_t n = 0;
    while (prod > limit) {
      ++n;
      prod *= uniform();
    }
    return n;
  }
  // Normal approximation with continuity correction — adequate for the
  // simulator's use (sample counts, packet counts).
  const double x = normal(lambda, std::sqrt(lambda));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

std::size_t Rng::categorical(std::span<const double> weights) {
  XDMODML_CHECK(!weights.empty(), "categorical requires weights");
  double total = 0.0;
  for (const double w : weights) {
    XDMODML_CHECK(w >= 0.0, "categorical weights must be non-negative");
    total += w;
  }
  XDMODML_CHECK(total > 0.0, "categorical requires a positive total weight");
  const double target = uniform() * total;
  double cum = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    cum += weights[i];
    if (target < cum) return i;
  }
  // Floating-point round-off: return the last positively weighted index.
  for (std::size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  XDMODML_CHECK(k <= n, "cannot sample more items than the population");
  // Partial Fisher–Yates over an index vector.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(uniform_index(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace xdmodml
