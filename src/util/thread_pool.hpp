// A small fixed-size thread pool with a blocking task queue and a
// `parallel_for` helper.
//
// Random-forest training, one-vs-one SVM training, the workload
// generator and the batched inference layer all fan out embarrassingly
// parallel work through this pool.  Determinism is preserved by
// assigning each work item its own RNG stream *before* dispatch, so
// results are independent of scheduling order.
//
// `parallel_for` is safe to call from a pool worker: a nested call runs
// its body inline instead of enqueuing, because queued chunks could only
// be executed by the other workers — on a busy (or 1-thread) pool the
// nested caller would block on futures nobody can run.  This lets the
// batch-inference layer sit above classifiers that already parallelize
// internally.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/failpoint.hpp"

namespace xdmodml {

/// Fixed-size worker pool.  Tasks are std::function<void()>; submit()
/// returns a future.  The destructor drains outstanding tasks and joins.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (0 means hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the returned future reports its result/exception.
  /// Failpoint site `thread_pool.submit.queue_full` (return_early)
  /// simulates a saturated queue: the task then degrades to running
  /// inline on the caller — slower, but the future still delivers the
  /// result and nothing is dropped.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    if (fp::triggered("thread_pool.submit.queue_full")) {
      note_queue_full();
      (*task)();  // packaged_task captures any exception into the future
      return fut;
    }
    // 0 when metrics are off — the task then runs unwrapped and no
    // clock is ever read (see util/metrics.hpp's cost rules).
    const std::uint64_t enqueue_ns = maybe_now_ns();
    {
      std::lock_guard lock(mutex_);
      if (enqueue_ns != 0) {
        tasks_.emplace([task, enqueue_ns] {
          (*task)();
          record_task_done(enqueue_ns);
        });
      } else {
        tasks_.emplace([task] { (*task)(); });
      }
      note_enqueued(tasks_.size());
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs `body(i)` for i in [begin, end), partitioned into contiguous
  /// chunks across the pool.  Blocks until *every* chunk has finished —
  /// even when one throws — and only then rethrows the first chunk's
  /// exception, so `body` and anything it captures are never touched
  /// after this returns (rethrowing before the join let still-running
  /// chunks race a caller already unwinding its stack).
  /// When called from one of this pool's own workers the body runs
  /// inline on the caller (see the nested-dispatch note above).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Ranged variant: runs `body(lo, hi)` on contiguous sub-ranges of
  /// [begin, end), each at least `grain` long (the last may be shorter).
  /// The per-chunk callback keeps dispatch overhead off the inner loop —
  /// the Gram-row engine hands each chunk a raw pointer sweep that the
  /// compiler can vectorize.  Runs inline when the range fits in a single
  /// chunk or the caller is already a pool worker.
  void parallel_for_ranges(std::size_t begin, std::size_t end,
                           std::size_t grain,
                           const std::function<void(std::size_t, std::size_t)>&
                               body);

  /// True when the calling thread is one of this pool's workers.
  bool on_pool_thread() const;

  /// Process-wide shared pool (lazily constructed, hardware-sized).
  static ThreadPool& global();

 private:
  void worker_loop();

  /// now_ns() when metrics are enabled, 0 otherwise (keeps the metrics
  /// headers out of this one and the clock off the disabled path).
  static std::uint64_t maybe_now_ns();
  /// Records task latency (enqueue → completion) into the registry.
  static void record_task_done(std::uint64_t enqueue_ns);
  /// Task counter + queue-depth high-water mark; call under `mutex_`.
  void note_enqueued(std::size_t queue_depth);
  /// Counts a simulated queue-full rejection recovered by inline
  /// execution (fail.*/retry.* metrics).
  static void note_queue_full();

  /// Waits on every future, then rethrows the first captured exception.
  static void join_all(std::vector<std::future<void>>& futures);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace xdmodml
