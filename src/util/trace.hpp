// RAII timing spans and a bounded in-memory trace ring.
//
// `ScopedTimer` is the one sanctioned way to put a wall clock on a code
// path: when the observability toggle (obs::enabled()) is off it reads
// no time source and records nothing, so instrumented paths cost a
// single predicted branch.  When on, the elapsed nanoseconds land in a
// registry histogram, and — if the span was given a name — a TraceEvent
// is appended to the process-wide TraceRing so the last few thousand
// spans can be dumped as JSON for latency forensics.
//
// Spans are meant to be coarse (an SMO solve, a grid cell, a batch
// ingest), never per-element: the ring takes a mutex per push, which is
// fine at span granularity and TSan-clean, but would serialize a hot
// loop.  See DESIGN.md §9 for the cost rules.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/metrics.hpp"

namespace xdmodml::obs {

/// Monotonic timestamp in nanoseconds (steady clock).
std::uint64_t now_ns();

/// One completed span.  `name` must be a string literal (or otherwise
/// outlive the ring) — spans are recorded by pointer, never copied.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  std::uint64_t thread_id = 0;
};

/// Fixed-capacity ring of the most recent spans.  Push is mutex-guarded
/// (span-granularity only); the singleton is leaked like the registry.
class TraceRing {
 public:
  static constexpr std::size_t kCapacity = 4096;

  static TraceRing& instance();

  void push(const TraceEvent& event);

  /// Recorded events, oldest first (at most kCapacity).
  std::vector<TraceEvent> recent() const;

  /// Total spans ever pushed (recent() holds min(total, kCapacity)).
  std::uint64_t total() const;

  /// [{"name": ..., "start_ns": ..., "duration_ns": ..., "thread": ...}]
  std::string to_json() const;

  void clear();

 private:
  TraceRing() { events_.reserve(kCapacity); }

  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;  // ring once size() == kCapacity
  std::uint64_t next_ = 0;          // total pushes; next_ % kCapacity = slot
};

/// Times a scope into `hist` (nanoseconds).  With obs::enabled() off at
/// construction this is inert — no clock read, no record.  A non-null
/// `span_name` additionally logs the span to TraceRing::instance().
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist, const char* span_name = nullptr);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Stops early and records; returns the elapsed nanoseconds (0 when
  /// the timer was inert).  The destructor then does nothing.
  std::uint64_t stop();

 private:
  Histogram* hist_ = nullptr;  // null once stopped or when inert
  const char* name_ = nullptr;
  std::uint64_t start_ = 0;
};

}  // namespace xdmodml::obs
