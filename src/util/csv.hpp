// Minimal CSV read/write support.
//
// Benches and examples dump their series as CSV so that the paper's figures
// can be re-plotted externally; the reader supports round-tripping those
// files and loading user-provided job summaries.  Fields containing commas,
// quotes or newlines are quoted per RFC 4180, and the parser reads quoted
// embedded newlines back (a record may span physical lines), so everything
// the writer emits round-trips.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace xdmodml {

/// Parsed CSV document: a header row plus data rows of strings.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column; throws InvalidArgument when absent.
  std::size_t column_index(const std::string& name) const;
};

/// Streaming CSV writer.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& fields);
  void write_row(const std::vector<double>& fields);

 private:
  std::ostream& out_;
};

/// Quotes a single field per RFC 4180 if needed.
std::string csv_escape(const std::string& field);

/// Parses a full CSV document (first row is the header).  Quoted fields
/// may contain embedded newlines; rows whose width does not match the
/// header are rejected with the offending row number *and* the physical
/// line the record starts on (the two diverge once any earlier field
/// contained a quoted newline).  Failpoint sites: `csv.parse.read`
/// (injected I/O error, surfaced as ComputeError with the line) and
/// `csv.parse.truncate` (short read — the stream ends early; truncation
/// inside a record is caught by the unterminated-field check).
CsvDocument parse_csv(std::istream& in);

/// Parses one logical CSV record into fields.  Newlines inside quoted
/// fields are kept verbatim (parse_csv assembles multi-line records
/// before calling this).
std::vector<std::string> parse_csv_line(const std::string& line);

}  // namespace xdmodml
