// Streaming and batch descriptive statistics.
//
// `RunningStats` implements Welford's online algorithm — numerically stable
// single-pass mean/variance — which the TACC_Stats aggregator uses to roll
// node-level samples up into job-level summaries, and which the SUPReMM
// layer uses to compute the coefficient-of-variation (COV) attributes the
// paper found so valuable.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace xdmodml {

/// Single-pass mean/variance/min/max accumulator (Welford).
class RunningStats {
 public:
  void add(double x);

  /// Merges another accumulator (parallel reduction; Chan et al.).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }

  /// Mean of the observed values; 0 when empty.
  double mean() const { return n_ == 0 ? 0.0 : mean_; }

  /// Unbiased sample variance (n-1 denominator); 0 when n < 2.
  double variance() const;

  /// sqrt(variance()).
  double stddev() const;

  /// Population variance (n denominator); 0 when empty.
  double population_variance() const;

  /// Coefficient of variation: stddev / mean.  Returns 0 when the mean is
  /// zero (the SUPReMM convention for all-idle counters) or when n < 2.
  double cov() const;

  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch helpers (empty input yields 0 unless stated otherwise).
double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // unbiased, 0 when n < 2
double stddev(std::span<const double> xs);
double median(std::span<const double> xs);  // 0 when empty

/// Linear-interpolated quantile, q in [0, 1]; 0 when empty.
double quantile(std::span<const double> xs, double q);

/// Pearson correlation of two equal-length series; 0 when degenerate.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Histogram with equal-width bins over [lo, hi]; values outside the range
/// are clamped into the edge bins.
std::vector<std::size_t> histogram(std::span<const double> xs, double lo,
                                   double hi, std::size_t bins);

}  // namespace xdmodml
