#include "util/csv.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace xdmodml {

std::size_t CsvDocument::column_index(const std::string& name) const {
  const auto it = std::find(header.begin(), header.end(), name);
  XDMODML_CHECK(it != header.end(), "CSV column not found: " + name);
  return static_cast<std::size_t>(it - header.begin());
}

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << csv_escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& fields) {
  std::vector<std::string> text;
  text.reserve(fields.size());
  for (const double f : fields) {
    std::ostringstream os;
    os.precision(12);
    os << f;
    text.push_back(os.str());
  }
  write_row(text);
}

std::vector<std::string> parse_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\r') {
      // tolerate CRLF
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

CsvDocument parse_csv(std::istream& in) {
  CsvDocument doc;
  std::string line;
  std::string record;
  bool have_header = false;
  std::size_t line_no = 0;           // physical lines consumed
  std::size_t record_start_line = 0; // where the current record began
  while (std::getline(in, line)) {
    ++line_no;
    // Fault sites for the ingest pipeline: `csv.parse.read` models an
    // I/O error mid-file (surfaced with the exact position), while
    // `csv.parse.truncate` models a short read — the stream simply ends
    // here, and the unterminated-record check below decides whether
    // that is detectable.
    try {
      XDMODML_FAILPOINT("csv.parse.read");
    } catch (const fp::FailpointError& e) {
      throw ComputeError("CSV read failed at line " +
                         std::to_string(line_no) + ": " + e.what());
    }
    if (fp::triggered("csv.parse.truncate")) break;
    if (record.empty()) {
      if (line.empty()) continue;
      record = std::move(line);
      record_start_line = line_no;
    } else {
      // Still inside a quoted field: the writer emitted an embedded
      // newline, which getline consumed — restore it and keep reading.
      record += '\n';
      record += line;
    }
    // An odd number of quote characters means a quoted field is still
    // open across the line break (RFC 4180 escapes quotes by doubling
    // them, which keeps the per-record count even).
    if (std::count(record.begin(), record.end(), '"') % 2 != 0) continue;
    auto fields = parse_csv_line(record);
    record.clear();
    if (!have_header) {
      doc.header = std::move(fields);
      have_header = true;
    } else {
      // The row number counts logical records, the line number physical
      // lines: once any earlier field contained a quoted newline the
      // two diverge, and only the *line* locates the bad record in an
      // editor.  record_start_line (not line_no) is the record's first
      // physical line, which is also correct for multi-line records.
      XDMODML_CHECK(fields.size() == doc.header.size(),
                    "CSV data row " + std::to_string(doc.rows.size() + 1) +
                        " (line " + std::to_string(record_start_line) +
                        ") has " + std::to_string(fields.size()) +
                        " fields; the header has " +
                        std::to_string(doc.header.size()));
      doc.rows.push_back(std::move(fields));
    }
  }
  XDMODML_CHECK(record.empty(),
                "CSV input ends inside an unterminated quoted field "
                "starting at line " +
                    std::to_string(record_start_line));
  return doc;
}

}  // namespace xdmodml
