#include "util/csv.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace xdmodml {

std::size_t CsvDocument::column_index(const std::string& name) const {
  const auto it = std::find(header.begin(), header.end(), name);
  XDMODML_CHECK(it != header.end(), "CSV column not found: " + name);
  return static_cast<std::size_t>(it - header.begin());
}

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << csv_escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& fields) {
  std::vector<std::string> text;
  text.reserve(fields.size());
  for (const double f : fields) {
    std::ostringstream os;
    os.precision(12);
    os << f;
    text.push_back(os.str());
  }
  write_row(text);
}

std::vector<std::string> parse_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\r') {
      // tolerate CRLF
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

CsvDocument parse_csv(std::istream& in) {
  CsvDocument doc;
  std::string line;
  bool have_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto fields = parse_csv_line(line);
    if (!have_header) {
      doc.header = std::move(fields);
      have_header = true;
    } else {
      XDMODML_CHECK(fields.size() == doc.header.size(),
                    "CSV row width does not match header");
      doc.rows.push_back(std::move(fields));
    }
  }
  return doc;
}

}  // namespace xdmodml
