// ASCII table rendering for bench / example output.
//
// Every bench binary prints the paper's tables and figure series in a
// fixed-width layout so the output can be eyeballed against the paper
// (EXPERIMENTS.md records the comparison).
#pragma once

#include <string>
#include <vector>

namespace xdmodml {

/// Column alignment inside a rendered table.
enum class Align { kLeft, kRight };

/// Simple text table: set a header, add rows of strings, render.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header,
                     std::vector<Align> aligns = {});

  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 2);

  /// Renders with column separators and a header rule.
  std::string render() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision.
std::string format_double(double v, int precision = 2);

/// Formats a fraction as a percentage string, e.g. 0.9695 -> "96.95".
std::string format_percent(double fraction, int precision = 2);

/// Renders an ASCII sparkline-style bar of given width for v in [0, vmax].
std::string ascii_bar(double v, double vmax, std::size_t width = 40);

}  // namespace xdmodml
