// Symmetric eigendecomposition via the cyclic Jacobi method.
//
// PCA needs the eigensystem of a covariance matrix (~48×48 here).  Jacobi
// is simple, unconditionally stable for symmetric input, and at this size
// far from being a bottleneck.  Eigenvalues are returned in descending
// order with matching orthonormal eigenvectors.
#pragma once

#include <vector>

#include "util/matrix.hpp"

namespace xdmodml {

/// Result of a symmetric eigendecomposition: A = V diag(w) Vᵀ.
struct EigenDecomposition {
  std::vector<double> eigenvalues;  ///< descending
  Matrix eigenvectors;              ///< column j pairs with eigenvalue j
};

/// Decomposes a symmetric matrix.  Throws InvalidArgument when `a` is not
/// square or not symmetric within `symmetry_tol`.
EigenDecomposition eigen_symmetric(const Matrix& a,
                                   double symmetry_tol = 1e-9,
                                   std::size_t max_sweeps = 64);

}  // namespace xdmodml
