#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace xdmodml {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::population_variance() const {
  return n_ == 0 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStats::cov() const {
  if (n_ < 2 || mean_ == 0.0) return 0.0;
  return stddev() / mean_;
}

double RunningStats::min() const {
  XDMODML_CHECK(n_ > 0, "min() of empty RunningStats");
  return min_;
}

double RunningStats::max() const {
  XDMODML_CHECK(n_ > 0, "max() of empty RunningStats");
  return max_;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (const double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  RunningStats rs;
  for (const double x : xs) rs.add(x);
  return rs.variance();
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double quantile(std::span<const double> xs, double q) {
  XDMODML_CHECK(q >= 0.0 && q <= 1.0, "quantile requires q in [0, 1]");
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  XDMODML_CHECK(xs.size() == ys.size(), "pearson requires equal lengths");
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<std::size_t> histogram(std::span<const double> xs, double lo,
                                   double hi, std::size_t bins) {
  XDMODML_CHECK(bins > 0, "histogram requires at least one bin");
  XDMODML_CHECK(lo < hi, "histogram requires lo < hi");
  std::vector<std::size_t> counts(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (const double x : xs) {
    auto bin = static_cast<std::ptrdiff_t>((x - lo) / width);
    bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                     static_cast<std::ptrdiff_t>(bins) - 1);
    ++counts[static_cast<std::size_t>(bin)];
  }
  return counts;
}

}  // namespace xdmodml
