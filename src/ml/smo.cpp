#include "ml/smo.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/metrics.hpp"

namespace xdmodml::ml {

namespace {

/// Process-wide shared-cache metrics, aggregated over every cache
/// instance (grid sweeps create one per γ).  Looked up once.
struct GramCacheMetrics {
  obs::Counter& hits =
      obs::MetricsRegistry::instance().counter("gram_cache.hits");
  obs::Counter& misses =
      obs::MetricsRegistry::instance().counter("gram_cache.misses");
  obs::Counter& evictions =
      obs::MetricsRegistry::instance().counter("gram_cache.evictions");
  obs::Gauge& resident_rows =
      obs::MetricsRegistry::instance().gauge("gram_cache.resident_rows");
  obs::Gauge& resident_bytes =
      obs::MetricsRegistry::instance().gauge("gram_cache.resident_bytes");
  obs::Counter& uncached_rows =
      obs::MetricsRegistry::instance().counter("gram_cache.uncached_rows");
  obs::Counter& alloc_failures =
      obs::MetricsRegistry::instance().counter("fail.gram_cache.alloc");
  obs::Counter& evict_retries =
      obs::MetricsRegistry::instance().counter("retry.gram_cache.evict_retry");

  static GramCacheMetrics& get() {
    static GramCacheMetrics m;
    return m;
  }
};

}  // namespace

KernelRowCache::KernelRowCache(
    std::size_t n, std::size_t capacity,
    std::function<void(std::size_t, std::span<double>)> compute)
    : n_(n), capacity_(std::max<std::size_t>(2, capacity)),
      compute_(std::move(compute)) {}

std::span<const double> KernelRowCache::row(std::size_t i) {
  XDMODML_CHECK(i < n_, "kernel row index out of range");
  const auto it = rows_.find(i);
  if (it != rows_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.data;
  }
  ++misses_;
  if (rows_.size() >= capacity_) {
    const std::size_t victim = lru_.back();
    lru_.pop_back();
    rows_.erase(victim);
  }
  lru_.push_front(i);
  Entry entry;
  entry.data.resize(n_);
  compute_(i, entry.data);
  entry.lru_it = lru_.begin();
  auto [pos, inserted] = rows_.emplace(i, std::move(entry));
  (void)inserted;
  return pos->second.data;
}

void SharedGramCache::Row::gather(std::span<const std::size_t> idx,
                                  std::span<double> out) const {
  if (!f32_.empty()) {
    const float* r = f32_.data();
    for (std::size_t t = 0; t < idx.size(); ++t) {
      out[t] = static_cast<double>(r[idx[t]]);
    }
  } else {
    const double* r = f64_.data();
    for (std::size_t t = 0; t < idx.size(); ++t) out[t] = r[idx[t]];
  }
}

double SharedGramCache::Row::dot_at(std::span<const std::size_t> idx,
                                    std::span<const double> coef) const {
  double f = 0.0;
  if (!f32_.empty()) {
    const float* r = f32_.data();
    for (std::size_t s = 0; s < idx.size(); ++s) {
      f += coef[s] * static_cast<double>(r[idx[s]]);
    }
  } else {
    const double* r = f64_.data();
    for (std::size_t s = 0; s < idx.size(); ++s) f += coef[s] * r[idx[s]];
  }
  return f;
}

SharedGramCache::SharedGramCache(const Matrix& X, Kernel kernel,
                                 std::size_t capacity_rows,
                                 GramPrecision precision)
    : engine_(X, kernel), capacity_(std::max<std::size_t>(2, capacity_rows)),
      precision_(precision) {
  diag_.resize(X.rows());
  for (std::size_t i = 0; i < X.rows(); ++i) diag_[i] = engine_.diagonal(i);
}

SharedGramCache::~SharedGramCache() {
  auto& metrics = GramCacheMetrics::get();
  metrics.resident_rows.add(-static_cast<std::int64_t>(rows_.size()));
  metrics.resident_bytes.add(
      -static_cast<std::int64_t>(rows_.size() * row_bytes()));
}

std::size_t SharedGramCache::row_bytes() const {
  return engine_.rows() * (precision_ == GramPrecision::kFloat32
                               ? sizeof(float)
                               : sizeof(double));
}

std::size_t SharedGramCache::rows_for_budget(std::size_t n,
                                             std::size_t budget_bytes,
                                             GramPrecision precision) {
  XDMODML_CHECK(n > 0, "rows_for_budget requires a non-empty matrix");
  const std::size_t elem = precision == GramPrecision::kFloat32
                               ? sizeof(float)
                               : sizeof(double);
  return std::max<std::size_t>(2, budget_bytes / (n * elem));
}

SharedGramCache::RowPtr SharedGramCache::compute_row(std::size_t i) const {
  // The engine always emits doubles; the float32 path narrows once at
  // fill time so every later reuse reads half the bytes.  This is the
  // only place a row payload is built — the cached, bypass and
  // evict-retry paths all share it, which is what makes the degraded
  // modes bit-identical to the healthy one.
  auto fresh = std::make_shared<Row>();
  if (precision_ == GramPrecision::kFloat32) {
    std::vector<double> scratch(engine_.rows());
    engine_.fill_row(i, scratch);
    fresh->f32_.resize(scratch.size());
    for (std::size_t j = 0; j < scratch.size(); ++j) {
      fresh->f32_[j] = static_cast<float>(scratch[j]);
    }
  } else {
    fresh->f64_.resize(engine_.rows());
    engine_.fill_row(i, fresh->f64_);
  }
  return fresh;
}

void SharedGramCache::evict_all() {
  auto& metrics = GramCacheMetrics::get();
  std::lock_guard lock(mutex_);
  const auto dropped = static_cast<std::int64_t>(rows_.size());
  if (dropped == 0) return;
  evictions_ += rows_.size();
  metrics.evictions.inc(rows_.size());
  rows_.clear();
  lru_.clear();
  metrics.resident_rows.add(-dropped);
  metrics.resident_bytes.add(-dropped *
                             static_cast<std::int64_t>(row_bytes()));
}

SharedGramCache::RowPtr SharedGramCache::row(std::size_t i) {
  XDMODML_CHECK(i < engine_.rows(), "shared kernel row index out of range");
  auto& metrics = GramCacheMetrics::get();
  // Budget-exceeded fallback: compute the row, hand it out, never touch
  // the LRU.  Slower (no reuse) but numerically indistinguishable.
  if (bypass() || fp::triggered("gram_cache.budget")) {
    metrics.uncached_rows.inc();
    return compute_row(i);
  }
  {
    std::lock_guard lock(mutex_);
    const auto it = rows_.find(i);
    if (it != rows_.end()) {
      ++hits_;
      metrics.hits.inc();
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.data;
    }
    ++misses_;
    metrics.misses.inc();
  }
  // Compute outside the lock so concurrent misses on different rows fill
  // in parallel; a race on the *same* row does redundant work but the
  // first insert wins and both callers see a valid row.
  RowPtr fresh;
  try {
    XDMODML_FAILPOINT("gram_cache.alloc");
    fresh = compute_row(i);
  } catch (const std::bad_alloc&) {
    // Allocation pressure: this cache is the dominant consumer, so shed
    // every resident row and retry once with the budget to ourselves.
    metrics.alloc_failures.inc();
    metrics.evict_retries.inc();
    evict_all();
    fresh = compute_row(i);
  } catch (const fp::FailpointError&) {
    // Injected stand-in for the bad_alloc above — same recovery.
    metrics.alloc_failures.inc();
    metrics.evict_retries.inc();
    evict_all();
    fresh = compute_row(i);
  }
  std::lock_guard lock(mutex_);
  const auto it = rows_.find(i);
  if (it != rows_.end()) {
    // Lost a same-row race: the access was already counted as a miss.
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.data;
  }
  std::int64_t delta_rows = 1;  // net resident change: insert − eviction
  if (rows_.size() >= capacity_) {
    const std::size_t victim = lru_.back();
    lru_.pop_back();
    rows_.erase(victim);
    ++evictions_;
    metrics.evictions.inc();
    delta_rows = 0;
  }
  lru_.push_front(i);
  auto [pos, inserted] =
      rows_.emplace(i, Entry{RowPtr(std::move(fresh)), lru_.begin()});
  (void)inserted;
  // Gauges aggregate across every live cache; updated under the lock we
  // still hold so they track the map exactly.
  metrics.resident_rows.add(delta_rows);
  metrics.resident_bytes.add(delta_rows *
                             static_cast<std::int64_t>(row_bytes()));
  return pos->second.data;
}

SharedGramCache::Stats SharedGramCache::stats() const {
  std::lock_guard lock(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.resident_rows = rows_.size();
  s.resident_bytes = rows_.size() * row_bytes();
  return s;
}

SmoResult solve_smo(const SmoProblem& problem, const SmoConfig& config) {
  const std::size_t n = problem.n;
  XDMODML_CHECK(n > 0, "SMO requires at least one variable");
  XDMODML_CHECK(problem.p.size() == n && problem.y.size() == n &&
                    problem.c.size() == n,
                "SMO problem vectors must all have size n");
  XDMODML_CHECK(static_cast<bool>(problem.kernel_row),
                "SMO requires a kernel_row callback");

  constexpr double kTau = 1e-12;
  const auto y = problem.y;
  const auto c = problem.c;

  KernelRowCache cache(n, config.cache_rows, problem.kernel_row);

  // Kernel diagonal (needed by second-order selection every iteration).
  std::vector<double> k_diag(n);
  if (problem.kernel_diag) {
    for (std::size_t i = 0; i < n; ++i) k_diag[i] = problem.kernel_diag(i);
  } else {
    // Legacy path: materialise each row once through the cache; when the
    // capacity covers n this doubles as a warm start for the solver.
    for (std::size_t i = 0; i < n; ++i) {
      k_diag[i] = cache.row(i)[i];
    }
  }

  SmoResult result;
  result.alpha.assign(n, 0.0);
  auto& alpha = result.alpha;

  // Gradient of the signed-Q objective; alpha = 0 -> G = p.
  std::vector<double> grad(problem.p.begin(), problem.p.end());

  const auto is_upper = [&](std::size_t t) { return alpha[t] >= c[t]; };
  const auto is_lower = [&](std::size_t t) { return alpha[t] <= 0.0; };

  // --- Shrinking state -----------------------------------------------
  // `active` lists the variables the working-set search and gradient
  // maintenance still touch; entries of `grad` outside it go stale and
  // are rebuilt by reconstruct_gradient.  grad_bar[t] accumulates
  // Σ_{s at upper bound} C_s y_t y_s K_ts so the rebuild is exact.
  const bool shrinking = config.shrinking && n > 2;
  const std::size_t shrink_interval =
      config.shrink_interval > 0 ? config.shrink_interval
                                 : std::min<std::size_t>(n, 1000);
  std::vector<std::size_t> active(n);
  std::iota(active.begin(), active.end(), 0);
  std::vector<char> active_mask(n, 1);
  std::vector<double> grad_bar;
  if (shrinking) grad_bar.assign(n, 0.0);
  bool unshrunk = false;
  // Tallied locally (zero shared-state traffic in the loop) and pushed
  // to the registry once at the end of the solve.
  std::size_t shrink_passes = 0;
  std::size_t unshrink_events = 0;

  const auto restore_active = [&]() {
    active.resize(n);
    std::iota(active.begin(), active.end(), 0);
    std::fill(active_mask.begin(), active_mask.end(), 1);
  };

  // Rebuilds grad for inactive variables: grad_bar covers the
  // upper-bound variables, free variables (never shrunk) contribute
  // directly, zero variables contribute nothing.
  const auto reconstruct_gradient = [&]() {
    if (active.size() == n) return;
    for (std::size_t t = 0; t < n; ++t) {
      if (!active_mask[t]) grad[t] = grad_bar[t] + problem.p[t];
    }
    for (const std::size_t s : active) {
      if (is_lower(s) || is_upper(s)) continue;  // only free α contribute
      const auto row_s = cache.row(s);
      const double as = alpha[s] * static_cast<double>(y[s]);
      for (std::size_t t = 0; t < n; ++t) {
        if (!active_mask[t]) {
          grad[t] += as * static_cast<double>(y[t]) * row_s[t];
        }
      }
    }
  };

  // First-order max violation over I_up restricted to the active set.
  const auto select_i = [&](double& g_max) -> std::ptrdiff_t {
    g_max = -std::numeric_limits<double>::infinity();
    std::ptrdiff_t i = -1;
    for (const std::size_t t : active) {
      const bool in_up = (y[t] > 0 && !is_upper(t)) ||
                         (y[t] < 0 && !is_lower(t));
      if (!in_up) continue;
      const double v = -static_cast<double>(y[t]) * grad[t];
      if (v > g_max) {
        g_max = v;
        i = static_cast<std::ptrdiff_t>(t);
      }
    }
    return i;
  };

  // Second-order (WSS2) partner for i over I_low in the active set.
  const auto select_j = [&](std::size_t ui, double g_max,
                            std::span<const double> row_i,
                            double& g_min) -> std::ptrdiff_t {
    g_min = std::numeric_limits<double>::infinity();
    double best_obj = std::numeric_limits<double>::infinity();
    std::ptrdiff_t j = -1;
    for (const std::size_t t : active) {
      const bool in_low = (y[t] > 0 && !is_lower(t)) ||
                          (y[t] < 0 && !is_upper(t));
      if (!in_low) continue;
      const double v = -static_cast<double>(y[t]) * grad[t];
      g_min = std::min(g_min, v);
      const double b = g_max - v;  // violation of pair (i, t)
      if (b <= 0.0) continue;
      // Curvature along the pair direction is ||φ(x_i) − φ(x_t)||²
      // regardless of the label signs.
      double a = k_diag[ui] + k_diag[t] - 2.0 * row_i[t];
      if (a <= 0.0) a = kTau;
      const double obj = -(b * b) / a;
      if (obj < best_obj) {
        best_obj = obj;
        j = static_cast<std::ptrdiff_t>(t);
      }
    }
    return j;
  };

  // LIBSVM do_shrinking: compute the violation window (m, M) over the
  // active set, unshrink once when it first closes to within 10·tol,
  // then drop bound-clamped variables lying strictly outside it.
  const auto do_shrinking = [&]() {
    ++shrink_passes;
    double g_max1 = -std::numeric_limits<double>::infinity();  // max -yG, I_up
    double g_max2 = -std::numeric_limits<double>::infinity();  // max  yG, I_low
    for (const std::size_t t : active) {
      const double g = grad[t];
      if (y[t] > 0) {
        if (!is_upper(t)) g_max1 = std::max(g_max1, -g);
        if (!is_lower(t)) g_max2 = std::max(g_max2, g);
      } else {
        if (!is_upper(t)) g_max2 = std::max(g_max2, -g);
        if (!is_lower(t)) g_max1 = std::max(g_max1, g);
      }
    }
    if (!unshrunk && g_max1 + g_max2 <= config.tolerance * 10.0) {
      unshrunk = true;
      ++unshrink_events;
      reconstruct_gradient();
      restore_active();
      // Recompute the window on the now-exact full gradient before
      // shrinking against it.
      g_max1 = -std::numeric_limits<double>::infinity();
      g_max2 = -std::numeric_limits<double>::infinity();
      for (const std::size_t t : active) {
        const double g = grad[t];
        if (y[t] > 0) {
          if (!is_upper(t)) g_max1 = std::max(g_max1, -g);
          if (!is_lower(t)) g_max2 = std::max(g_max2, g);
        } else {
          if (!is_upper(t)) g_max2 = std::max(g_max2, -g);
          if (!is_lower(t)) g_max1 = std::max(g_max1, g);
        }
      }
    }
    const auto be_shrunk = [&](std::size_t t) {
      if (is_upper(t)) {
        return y[t] > 0 ? -grad[t] > g_max1 : -grad[t] > g_max2;
      }
      if (is_lower(t)) {
        return y[t] > 0 ? grad[t] > g_max2 : grad[t] > g_max1;
      }
      return false;  // free variables always stay active
    };
    for (std::size_t idx = 0; idx < active.size();) {
      const std::size_t t = active[idx];
      if (be_shrunk(t)) {
        active_mask[t] = 0;
        active[idx] = active.back();
        active.pop_back();
      } else {
        ++idx;
      }
    }
  };

  std::size_t since_shrink = 0;
  std::size_t iter = 0;
  for (; iter < config.max_iterations; ++iter) {
    if (shrinking && ++since_shrink >= shrink_interval) {
      since_shrink = 0;
      do_shrinking();
    }

    double g_max = 0.0;
    std::ptrdiff_t i = select_i(g_max);
    std::span<const double> row_i;
    double g_min = 0.0;
    std::ptrdiff_t j = -1;
    if (i >= 0) {
      row_i = cache.row(static_cast<std::size_t>(i));
      j = select_j(static_cast<std::size_t>(i), g_max, row_i, g_min);
    }
    if (i < 0 || j < 0 || g_max - g_min < config.tolerance) {
      // Optimal on the active set.  If anything is shrunk, rebuild the
      // full gradient and re-check on all n variables before declaring
      // convergence (LIBSVM's final unshrink pass).
      if (active.size() < n) {
        ++unshrink_events;
        reconstruct_gradient();
        restore_active();
        since_shrink = 0;
        i = select_i(g_max);
        if (i >= 0) {
          row_i = cache.row(static_cast<std::size_t>(i));
          j = select_j(static_cast<std::size_t>(i), g_max, row_i, g_min);
        } else {
          j = -1;
        }
      }
      if (i < 0 || j < 0 || g_max - g_min < config.tolerance) {
        result.converged = true;
        break;
      }
    }
    const auto ui = static_cast<std::size_t>(i);
    const auto uj = static_cast<std::size_t>(j);
    const auto row_j = cache.row(uj);

    // Two-variable analytic update (LIBSVM's update rules).
    const double old_ai = alpha[ui];
    const double old_aj = alpha[uj];
    const bool was_upper_i = is_upper(ui);
    const bool was_upper_j = is_upper(uj);
    const double ci = c[ui];
    const double cj = c[uj];
    if (y[ui] != y[uj]) {
      double quad = k_diag[ui] + k_diag[uj] - 2.0 * row_i[uj];
      if (quad <= 0.0) quad = kTau;
      const double delta = (-grad[ui] - grad[uj]) / quad;
      const double diff = alpha[ui] - alpha[uj];
      alpha[ui] += delta;
      alpha[uj] += delta;
      if (diff > 0.0) {
        if (alpha[uj] < 0.0) {
          alpha[uj] = 0.0;
          alpha[ui] = diff;
        }
      } else {
        if (alpha[ui] < 0.0) {
          alpha[ui] = 0.0;
          alpha[uj] = -diff;
        }
      }
      if (diff > ci - cj) {
        if (alpha[ui] > ci) {
          alpha[ui] = ci;
          alpha[uj] = ci - diff;
        }
      } else {
        if (alpha[uj] > cj) {
          alpha[uj] = cj;
          alpha[ui] = cj + diff;
        }
      }
    } else {
      double quad = k_diag[ui] + k_diag[uj] - 2.0 * row_i[uj];
      if (quad <= 0.0) quad = kTau;
      const double delta = (grad[ui] - grad[uj]) / quad;
      const double sum = alpha[ui] + alpha[uj];
      alpha[ui] -= delta;
      alpha[uj] += delta;
      if (sum > ci) {
        if (alpha[ui] > ci) {
          alpha[ui] = ci;
          alpha[uj] = sum - ci;
        }
      } else {
        if (alpha[uj] < 0.0) {
          alpha[uj] = 0.0;
          alpha[ui] = sum;
        }
      }
      if (sum > cj) {
        if (alpha[uj] > cj) {
          alpha[uj] = cj;
          alpha[ui] = sum - cj;
        }
      } else {
        if (alpha[ui] < 0.0) {
          alpha[ui] = 0.0;
          alpha[uj] = sum;
        }
      }
    }

    // Gradient maintenance over the active set:
    // G_t += Q_ti * dai + Q_tj * daj.
    const double dai = alpha[ui] - old_ai;
    const double daj = alpha[uj] - old_aj;
    if (dai != 0.0 || daj != 0.0) {
      const double si = static_cast<double>(y[ui]) * dai;
      const double sj = static_cast<double>(y[uj]) * daj;
      for (const std::size_t t : active) {
        grad[t] += static_cast<double>(y[t]) * (si * row_i[t] + sj * row_j[t]);
      }
      if (shrinking) {
        // Keep grad_bar exact across bound crossings (full-length rows
        // are available, so the update covers inactive entries too).
        if (was_upper_i != is_upper(ui)) {
          const double sign = is_upper(ui) ? 1.0 : -1.0;
          const double w = sign * ci * static_cast<double>(y[ui]);
          for (std::size_t t = 0; t < n; ++t) {
            grad_bar[t] += w * static_cast<double>(y[t]) * row_i[t];
          }
        }
        if (was_upper_j != is_upper(uj)) {
          const double sign = is_upper(uj) ? 1.0 : -1.0;
          const double w = sign * cj * static_cast<double>(y[uj]);
          for (std::size_t t = 0; t < n; ++t) {
            grad_bar[t] += w * static_cast<double>(y[t]) * row_j[t];
          }
        }
      }
    }
  }
  result.iterations = iter;
  if (iter >= config.max_iterations) {
    result.converged = false;
    if (active.size() < n) {
      ++unshrink_events;
      reconstruct_gradient();  // rho/objective need the full gradient
      restore_active();
    }
  }

  {
    auto& registry = obs::MetricsRegistry::instance();
    static auto& solves = registry.counter("smo.solves");
    static auto& iterations = registry.counter("smo.iterations");
    static auto& shrinks = registry.counter("smo.shrink_passes");
    static auto& unshrinks = registry.counter("smo.unshrink_events");
    static auto& rows_computed = registry.counter("smo.kernel_rows_computed");
    static auto& row_hits = registry.counter("smo.kernel_row_hits");
    static auto& iter_hist =
        registry.histogram("smo.iterations_per_solve", "iterations");
    solves.inc();
    iterations.inc(iter);
    shrinks.inc(shrink_passes);
    unshrinks.inc(unshrink_events);
    rows_computed.inc(cache.misses());
    row_hits.inc(cache.hits());
    iter_hist.record(iter);
  }

  // rho (decision offset): average of y_i G_i over free SVs, or the
  // midpoint of the bound interval when none are free.
  double ub = std::numeric_limits<double>::infinity();
  double lb = -std::numeric_limits<double>::infinity();
  double sum_free = 0.0;
  std::size_t nr_free = 0;
  for (std::size_t t = 0; t < n; ++t) {
    const double yg = static_cast<double>(y[t]) * grad[t];
    if (is_upper(t)) {
      if (y[t] < 0) {
        ub = std::min(ub, yg);
      } else {
        lb = std::max(lb, yg);
      }
    } else if (is_lower(t)) {
      if (y[t] > 0) {
        ub = std::min(ub, yg);
      } else {
        lb = std::max(lb, yg);
      }
    } else {
      ++nr_free;
      sum_free += yg;
    }
  }
  result.rho = nr_free > 0 ? sum_free / static_cast<double>(nr_free)
                           : 0.5 * (ub + lb);

  double obj = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    obj += alpha[t] * (grad[t] + problem.p[t]);
  }
  result.objective = 0.5 * obj;
  return result;
}

}  // namespace xdmodml::ml
