#include "ml/smo.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace xdmodml::ml {

KernelRowCache::KernelRowCache(
    std::size_t n, std::size_t capacity,
    std::function<void(std::size_t, std::span<double>)> compute)
    : n_(n), capacity_(std::max<std::size_t>(2, capacity)),
      compute_(std::move(compute)) {}

std::span<const double> KernelRowCache::row(std::size_t i) {
  XDMODML_CHECK(i < n_, "kernel row index out of range");
  const auto it = rows_.find(i);
  if (it != rows_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.data;
  }
  ++misses_;
  if (rows_.size() >= capacity_) {
    const std::size_t victim = lru_.back();
    lru_.pop_back();
    rows_.erase(victim);
  }
  lru_.push_front(i);
  Entry entry;
  entry.data.resize(n_);
  compute_(i, entry.data);
  entry.lru_it = lru_.begin();
  auto [pos, inserted] = rows_.emplace(i, std::move(entry));
  (void)inserted;
  return pos->second.data;
}

SmoResult solve_smo(const SmoProblem& problem, const SmoConfig& config) {
  const std::size_t n = problem.n;
  XDMODML_CHECK(n > 0, "SMO requires at least one variable");
  XDMODML_CHECK(problem.p.size() == n && problem.y.size() == n &&
                    problem.c.size() == n,
                "SMO problem vectors must all have size n");
  XDMODML_CHECK(static_cast<bool>(problem.kernel_row),
                "SMO requires a kernel_row callback");

  constexpr double kTau = 1e-12;
  const auto y = problem.y;
  const auto c = problem.c;

  KernelRowCache cache(n, config.cache_rows, problem.kernel_row);

  // Kernel diagonal (needed by second-order selection every iteration).
  std::vector<double> k_diag(n);
  for (std::size_t i = 0; i < n; ++i) {
    k_diag[i] = cache.row(i)[i];
  }

  SmoResult result;
  result.alpha.assign(n, 0.0);
  auto& alpha = result.alpha;

  // Gradient of the signed-Q objective; alpha = 0 -> G = p.
  std::vector<double> grad(problem.p.begin(), problem.p.end());

  const auto is_upper = [&](std::size_t t) { return alpha[t] >= c[t]; };
  const auto is_lower = [&](std::size_t t) { return alpha[t] <= 0.0; };

  std::size_t iter = 0;
  for (; iter < config.max_iterations; ++iter) {
    // Working-set selection: i by first-order max violation, j by the
    // second-order rule (LIBSVM WSS2).
    double g_max = -std::numeric_limits<double>::infinity();
    std::ptrdiff_t i = -1;
    for (std::size_t t = 0; t < n; ++t) {
      const bool in_up = (y[t] > 0 && !is_upper(t)) ||
                         (y[t] < 0 && !is_lower(t));
      if (!in_up) continue;
      const double v = -static_cast<double>(y[t]) * grad[t];
      if (v > g_max) {
        g_max = v;
        i = static_cast<std::ptrdiff_t>(t);
      }
    }
    if (i < 0) {  // nothing movable upward: optimal
      result.converged = true;
      break;
    }
    const auto ui = static_cast<std::size_t>(i);
    const auto row_i = cache.row(ui);

    double g_min = std::numeric_limits<double>::infinity();
    double best_obj = std::numeric_limits<double>::infinity();
    std::ptrdiff_t j = -1;
    for (std::size_t t = 0; t < n; ++t) {
      const bool in_low = (y[t] > 0 && !is_lower(t)) ||
                          (y[t] < 0 && !is_upper(t));
      if (!in_low) continue;
      const double v = -static_cast<double>(y[t]) * grad[t];
      g_min = std::min(g_min, v);
      const double b = g_max - v;  // violation of pair (i, t)
      if (b <= 0.0) continue;
      // Curvature along the pair direction is ||φ(x_i) − φ(x_t)||²
      // regardless of the label signs.
      double a = k_diag[ui] + k_diag[t] - 2.0 * row_i[t];
      if (a <= 0.0) a = kTau;
      const double obj = -(b * b) / a;
      if (obj < best_obj) {
        best_obj = obj;
        j = static_cast<std::ptrdiff_t>(t);
      }
    }
    if (j < 0 || g_max - g_min < config.tolerance) {
      result.converged = (j < 0) || (g_max - g_min < config.tolerance);
      break;
    }
    const auto uj = static_cast<std::size_t>(j);
    const auto row_j = cache.row(uj);

    // Two-variable analytic update (LIBSVM's update rules).
    const double old_ai = alpha[ui];
    const double old_aj = alpha[uj];
    const double ci = c[ui];
    const double cj = c[uj];
    if (y[ui] != y[uj]) {
      double quad = k_diag[ui] + k_diag[uj] - 2.0 * row_i[uj];
      if (quad <= 0.0) quad = kTau;
      const double delta = (-grad[ui] - grad[uj]) / quad;
      const double diff = alpha[ui] - alpha[uj];
      alpha[ui] += delta;
      alpha[uj] += delta;
      if (diff > 0.0) {
        if (alpha[uj] < 0.0) {
          alpha[uj] = 0.0;
          alpha[ui] = diff;
        }
      } else {
        if (alpha[ui] < 0.0) {
          alpha[ui] = 0.0;
          alpha[uj] = -diff;
        }
      }
      if (diff > ci - cj) {
        if (alpha[ui] > ci) {
          alpha[ui] = ci;
          alpha[uj] = ci - diff;
        }
      } else {
        if (alpha[uj] > cj) {
          alpha[uj] = cj;
          alpha[ui] = cj + diff;
        }
      }
    } else {
      double quad = k_diag[ui] + k_diag[uj] - 2.0 * row_i[uj];
      if (quad <= 0.0) quad = kTau;
      const double delta = (grad[ui] - grad[uj]) / quad;
      const double sum = alpha[ui] + alpha[uj];
      alpha[ui] -= delta;
      alpha[uj] += delta;
      if (sum > ci) {
        if (alpha[ui] > ci) {
          alpha[ui] = ci;
          alpha[uj] = sum - ci;
        }
      } else {
        if (alpha[uj] < 0.0) {
          alpha[uj] = 0.0;
          alpha[ui] = sum;
        }
      }
      if (sum > cj) {
        if (alpha[uj] > cj) {
          alpha[uj] = cj;
          alpha[ui] = sum - cj;
        }
      } else {
        if (alpha[ui] < 0.0) {
          alpha[ui] = 0.0;
          alpha[uj] = sum;
        }
      }
    }

    // Gradient maintenance: G_t += Q_ti * dai + Q_tj * daj.
    const double dai = alpha[ui] - old_ai;
    const double daj = alpha[uj] - old_aj;
    if (dai != 0.0 || daj != 0.0) {
      for (std::size_t t = 0; t < n; ++t) {
        const auto yt = static_cast<double>(y[t]);
        grad[t] += yt * (static_cast<double>(y[ui]) * row_i[t] * dai +
                         static_cast<double>(y[uj]) * row_j[t] * daj);
      }
    }
  }
  result.iterations = iter;
  if (iter >= config.max_iterations) result.converged = false;

  // rho (decision offset): average of y_i G_i over free SVs, or the
  // midpoint of the bound interval when none are free.
  double ub = std::numeric_limits<double>::infinity();
  double lb = -std::numeric_limits<double>::infinity();
  double sum_free = 0.0;
  std::size_t nr_free = 0;
  for (std::size_t t = 0; t < n; ++t) {
    const double yg = static_cast<double>(y[t]) * grad[t];
    if (is_upper(t)) {
      if (y[t] < 0) {
        ub = std::min(ub, yg);
      } else {
        lb = std::max(lb, yg);
      }
    } else if (is_lower(t)) {
      if (y[t] > 0) {
        ub = std::min(ub, yg);
      } else {
        lb = std::max(lb, yg);
      }
    } else {
      ++nr_free;
      sum_free += yg;
    }
  }
  result.rho = nr_free > 0 ? sum_free / static_cast<double>(nr_free)
                           : 0.5 * (ub + lb);

  double obj = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    obj += alpha[t] * (grad[t] + problem.p[t]);
  }
  result.objective = 0.5 * obj;
  return result;
}

}  // namespace xdmodml::ml
