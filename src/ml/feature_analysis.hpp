// Attribute correlation analysis.
//
// The paper removes "five highly correlated attributes such as the
// number of file device IOPs and read/write rates" before the Figure 6
// sweep, and warns that permutation importance understates correlated
// mates.  This module computes the attribute correlation matrix and
// performs the greedy pruning that produces such a removal list
// automatically.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "util/matrix.hpp"

namespace xdmodml::ml {

/// Pearson correlation matrix of the dataset's columns.
Matrix correlation_matrix(const Matrix& X);

/// One pruned attribute and why.
struct PrunedAttribute {
  std::size_t dropped = 0;   ///< column index removed
  std::size_t kept = 0;      ///< its correlated mate that stays
  double correlation = 0.0;  ///< |r| between the two
};

/// Greedy correlation pruning: repeatedly finds the most correlated
/// remaining pair with |r| above `threshold` and drops the member with
/// the larger mean absolute correlation to everything else.  Stops when
/// no pair exceeds the threshold or `max_drops` attributes were removed.
std::vector<PrunedAttribute> prune_correlated(const Matrix& X,
                                              double threshold = 0.95,
                                              std::size_t max_drops = 16);

/// Convenience: the surviving column indices after pruning.
std::vector<std::size_t> surviving_columns(std::size_t num_columns,
                                           const std::vector<PrunedAttribute>& pruned);

}  // namespace xdmodml::ml
