#include "ml/pca.hpp"

#include <algorithm>

#include "util/eigen.hpp"
#include "util/error.hpp"

namespace xdmodml::ml {

void Pca::fit(const Matrix& X, std::size_t components) {
  XDMODML_CHECK(X.rows() >= 2, "PCA requires at least two samples");
  const std::size_t d = X.cols();
  components_ = components == 0 ? d : std::min(components, d);

  means_.assign(d, 0.0);
  for (std::size_t r = 0; r < X.rows(); ++r) {
    const auto row = X.row(r);
    for (std::size_t c = 0; c < d; ++c) means_[c] += row[c];
  }
  for (auto& m : means_) m /= static_cast<double>(X.rows());

  // Covariance (unbiased).
  Matrix cov(d, d, 0.0);
  for (std::size_t r = 0; r < X.rows(); ++r) {
    const auto row = X.row(r);
    for (std::size_t i = 0; i < d; ++i) {
      const double di = row[i] - means_[i];
      for (std::size_t j = i; j < d; ++j) {
        cov(i, j) += di * (row[j] - means_[j]);
      }
    }
  }
  const double denom = static_cast<double>(X.rows() - 1);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i; j < d; ++j) {
      cov(i, j) /= denom;
      cov(j, i) = cov(i, j);
    }
  }

  const auto eig = eigen_symmetric(cov);
  eigenvalues_ = eig.eigenvalues;
  // Numerical round-off can leave tiny negative eigenvalues.
  for (auto& w : eigenvalues_) w = std::max(0.0, w);

  basis_ = Matrix(d, components_);
  for (std::size_t c = 0; c < components_; ++c) {
    for (std::size_t i = 0; i < d; ++i) {
      basis_(i, c) = eig.eigenvectors(i, c);
    }
  }
}

double Pca::explained_variance_ratio(std::size_t k) const {
  XDMODML_CHECK(fitted(), "PCA used before fit");
  XDMODML_CHECK(k <= eigenvalues_.size(), "k exceeds dimension");
  double total = 0.0;
  for (const auto w : eigenvalues_) total += w;
  if (total <= 0.0) return 0.0;
  double head = 0.0;
  for (std::size_t i = 0; i < k; ++i) head += eigenvalues_[i];
  return head / total;
}

std::vector<double> Pca::transform_row(std::span<const double> x) const {
  XDMODML_CHECK(fitted(), "PCA used before fit");
  XDMODML_CHECK(x.size() == means_.size(), "PCA input width mismatch");
  std::vector<double> z(components_, 0.0);
  for (std::size_t c = 0; c < components_; ++c) {
    double s = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      s += (x[i] - means_[i]) * basis_(i, c);
    }
    z[c] = s;
  }
  return z;
}

Matrix Pca::transform(const Matrix& X) const {
  Matrix Z(X.rows(), components_);
  for (std::size_t r = 0; r < X.rows(); ++r) {
    const auto z = transform_row(X.row(r));
    std::copy(z.begin(), z.end(), Z.row(r).begin());
  }
  return Z;
}

Matrix Pca::inverse_transform(const Matrix& Z) const {
  XDMODML_CHECK(fitted(), "PCA used before fit");
  XDMODML_CHECK(Z.cols() == components_, "component width mismatch");
  const std::size_t d = means_.size();
  Matrix X(Z.rows(), d);
  for (std::size_t r = 0; r < Z.rows(); ++r) {
    for (std::size_t i = 0; i < d; ++i) {
      double s = means_[i];
      for (std::size_t c = 0; c < components_; ++c) {
        s += Z(r, c) * basis_(i, c);
      }
      X(r, i) = s;
    }
  }
  return X;
}

}  // namespace xdmodml::ml
