#include "ml/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace xdmodml::ml {

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : n_(num_classes), counts_(num_classes * num_classes, 0) {
  XDMODML_CHECK(num_classes > 0, "confusion matrix needs >= 1 class");
}

std::size_t ConfusionMatrix::index(int actual, int predicted) const {
  XDMODML_CHECK(actual >= 0 && static_cast<std::size_t>(actual) < n_ &&
                    predicted >= 0 &&
                    static_cast<std::size_t>(predicted) < n_,
                "confusion matrix class out of range");
  return static_cast<std::size_t>(actual) * n_ +
         static_cast<std::size_t>(predicted);
}

void ConfusionMatrix::add(int actual, int predicted) {
  ++counts_[index(actual, predicted)];
  ++total_;
}

std::size_t ConfusionMatrix::count(int actual, int predicted) const {
  return counts_[index(actual, predicted)];
}

std::size_t ConfusionMatrix::correct() const {
  std::size_t c = 0;
  for (std::size_t i = 0; i < n_; ++i) c += counts_[i * n_ + i];
  return c;
}

double ConfusionMatrix::accuracy() const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(correct()) /
                           static_cast<double>(total_);
}

double ConfusionMatrix::recall(int cls) const {
  const auto c = static_cast<std::size_t>(cls);
  XDMODML_CHECK(cls >= 0 && c < n_, "recall class out of range");
  std::size_t row_total = 0;
  for (std::size_t j = 0; j < n_; ++j) row_total += counts_[c * n_ + j];
  if (row_total == 0) return 0.0;
  return static_cast<double>(counts_[c * n_ + c]) /
         static_cast<double>(row_total);
}

double ConfusionMatrix::precision(int cls) const {
  const auto c = static_cast<std::size_t>(cls);
  XDMODML_CHECK(cls >= 0 && c < n_, "precision class out of range");
  std::size_t col_total = 0;
  for (std::size_t i = 0; i < n_; ++i) col_total += counts_[i * n_ + c];
  if (col_total == 0) return 0.0;
  return static_cast<double>(counts_[c * n_ + c]) /
         static_cast<double>(col_total);
}

std::vector<std::size_t> ConfusionMatrix::actual_totals() const {
  std::vector<std::size_t> totals(n_, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) totals[i] += counts_[i * n_ + j];
  }
  return totals;
}

std::string ConfusionMatrix::render_paper_style(
    const std::vector<std::string>& class_names) const {
  XDMODML_CHECK(class_names.size() == n_,
                "class name count must match matrix size");
  std::ostringstream os;
  for (std::size_t i = 0; i < n_; ++i) {
    os << class_names[i] << " (" << counts_[i * n_ + i] << ")";
    bool first = true;
    for (std::size_t j = 0; j < n_; ++j) {
      if (i == j || counts_[i * n_ + j] == 0) continue;
      os << (first ? ": " : ", ") << class_names[j] << " ("
         << counts_[i * n_ + j] << ")";
      first = false;
    }
    os << '\n';
  }
  return os.str();
}

std::string ConfusionMatrix::render_grid(
    const std::vector<std::string>& class_names) const {
  XDMODML_CHECK(class_names.size() == n_,
                "class name count must match matrix size");
  std::vector<std::string> header{"actual\\pred"};
  for (const auto& name : class_names) header.push_back(name);
  TextTable table(std::move(header));
  for (std::size_t i = 0; i < n_; ++i) {
    std::vector<std::string> row{class_names[i]};
    for (std::size_t j = 0; j < n_; ++j) {
      row.push_back(std::to_string(counts_[i * n_ + j]));
    }
    table.add_row(std::move(row));
  }
  return table.render();
}

ConfusionMatrix build_confusion(std::span<const int> actual,
                                std::span<const int> predicted,
                                std::size_t num_classes) {
  XDMODML_CHECK(actual.size() == predicted.size(),
                "actual/predicted lengths differ");
  ConfusionMatrix cm(num_classes);
  for (std::size_t i = 0; i < actual.size(); ++i) {
    cm.add(actual[i], predicted[i]);
  }
  return cm;
}

double accuracy(std::span<const int> actual,
                std::span<const int> predicted) {
  XDMODML_CHECK(actual.size() == predicted.size() && !actual.empty(),
                "accuracy requires equal, non-empty vectors");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (actual[i] == predicted[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(actual.size());
}

std::vector<ThresholdPoint> threshold_sweep(
    std::span<const Prediction> predictions, std::span<const int> actual,
    std::span<const double> thresholds) {
  XDMODML_CHECK(!predictions.empty(), "threshold_sweep requires predictions");
  const bool labeled = !actual.empty();
  if (labeled) {
    XDMODML_CHECK(actual.size() == predictions.size(),
                  "actual length must match predictions");
  }
  std::size_t n_correct = 0;
  std::size_t n_incorrect = 0;
  if (labeled) {
    for (std::size_t i = 0; i < predictions.size(); ++i) {
      (predictions[i].label == actual[i] ? n_correct : n_incorrect)++;
    }
  }
  const auto n = static_cast<double>(predictions.size());
  std::vector<ThresholdPoint> out;
  out.reserve(thresholds.size());
  for (const double t : thresholds) {
    ThresholdPoint pt;
    pt.threshold = t;
    std::size_t classified = 0;
    std::size_t classified_correct = 0;
    std::size_t classified_incorrect = 0;
    for (std::size_t i = 0; i < predictions.size(); ++i) {
      if (predictions[i].probability < t) continue;
      ++classified;
      if (labeled) {
        (predictions[i].label == actual[i] ? classified_correct
                                           : classified_incorrect)++;
      }
    }
    pt.classified_fraction = static_cast<double>(classified) / n;
    if (labeled) {
      pt.correct_fraction = static_cast<double>(classified_correct) / n;
      pt.eq1_x = n_correct == 0 ? 0.0
                                : static_cast<double>(classified_correct) /
                                      static_cast<double>(n_correct);
      pt.eq1_y = n_incorrect == 0
                     ? 0.0
                     : static_cast<double>(classified_incorrect) /
                           static_cast<double>(n_incorrect);
    }
    out.push_back(pt);
  }
  return out;
}

std::vector<double> default_threshold_grid() {
  std::vector<double> grid;
  for (int i = 20; i >= 1; --i) grid.push_back(0.05 * i);
  return grid;
}

double mean_squared_error(std::span<const double> actual,
                          std::span<const double> predicted) {
  XDMODML_CHECK(actual.size() == predicted.size() && !actual.empty(),
                "MSE requires equal, non-empty vectors");
  double s = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double d = actual[i] - predicted[i];
    s += d * d;
  }
  return s / static_cast<double>(actual.size());
}

double mean_absolute_error(std::span<const double> actual,
                           std::span<const double> predicted) {
  XDMODML_CHECK(actual.size() == predicted.size() && !actual.empty(),
                "MAE requires equal, non-empty vectors");
  double s = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    s += std::abs(actual[i] - predicted[i]);
  }
  return s / static_cast<double>(actual.size());
}

double r_squared(std::span<const double> actual,
                 std::span<const double> predicted) {
  XDMODML_CHECK(actual.size() == predicted.size() && !actual.empty(),
                "R^2 requires equal, non-empty vectors");
  const double m = mean(actual);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double dr = actual[i] - predicted[i];
    const double dt = actual[i] - m;
    ss_res += dr * dr;
    ss_tot += dt * dt;
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace xdmodml::ml
