#include "ml/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "ml/model_io.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace xdmodml::ml {

void Dataset::validate() const {
  XDMODML_CHECK(labels.empty() || targets.empty(),
                "dataset cannot have both labels and targets");
  if (!labels.empty()) {
    XDMODML_CHECK(labels.size() == X.rows(),
                  "label count must match row count");
    for (const int y : labels) {
      XDMODML_CHECK(y >= 0 && static_cast<std::size_t>(y) < class_names.size(),
                    "label out of range of class_names");
    }
  }
  if (!targets.empty()) {
    XDMODML_CHECK(targets.size() == X.rows(),
                  "target count must match row count");
  }
  if (!feature_names.empty()) {
    XDMODML_CHECK(feature_names.size() == X.cols(),
                  "feature_names must match column count");
  }
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out;
  out.X = X.gather_rows(indices);
  out.feature_names = feature_names;
  out.class_names = class_names;
  if (!labels.empty()) {
    out.labels.reserve(indices.size());
    for (const auto i : indices) {
      XDMODML_CHECK(i < labels.size(), "subset index out of range");
      out.labels.push_back(labels[i]);
    }
  }
  if (!targets.empty()) {
    out.targets.reserve(indices.size());
    for (const auto i : indices) {
      XDMODML_CHECK(i < targets.size(), "subset index out of range");
      out.targets.push_back(targets[i]);
    }
  }
  return out;
}

Dataset Dataset::select_features(
    std::span<const std::size_t> feature_indices) const {
  Dataset out;
  out.X = X.gather_cols(feature_indices);
  out.labels = labels;
  out.targets = targets;
  out.class_names = class_names;
  if (!feature_names.empty()) {
    out.feature_names.reserve(feature_indices.size());
    for (const auto f : feature_indices) {
      out.feature_names.push_back(feature_names[f]);
    }
  }
  return out;
}

std::vector<std::size_t> Dataset::class_counts() const {
  std::vector<std::size_t> counts(num_classes(), 0);
  for (const int y : labels) ++counts[static_cast<std::size_t>(y)];
  return counts;
}

SplitIndices stratified_split(const Dataset& ds, double train_fraction,
                              Rng& rng) {
  XDMODML_CHECK(train_fraction >= 0.0 && train_fraction <= 1.0,
                "train_fraction must be in [0, 1]");
  XDMODML_CHECK(!ds.labels.empty(), "stratified_split requires labels");
  std::vector<std::vector<std::size_t>> by_class(ds.num_classes());
  for (std::size_t i = 0; i < ds.labels.size(); ++i) {
    by_class[static_cast<std::size_t>(ds.labels[i])].push_back(i);
  }
  SplitIndices split;
  for (auto& rows : by_class) {
    rng.shuffle(rows);
    const auto n_train = static_cast<std::size_t>(
        std::llround(train_fraction * static_cast<double>(rows.size())));
    for (std::size_t i = 0; i < rows.size(); ++i) {
      (i < n_train ? split.train : split.test).push_back(rows[i]);
    }
  }
  rng.shuffle(split.train);
  rng.shuffle(split.test);
  return split;
}

std::vector<std::size_t> balanced_sample(const Dataset& ds,
                                         std::size_t per_class, Rng& rng) {
  XDMODML_CHECK(!ds.labels.empty(), "balanced_sample requires labels");
  std::vector<std::vector<std::size_t>> by_class(ds.num_classes());
  for (std::size_t i = 0; i < ds.labels.size(); ++i) {
    by_class[static_cast<std::size_t>(ds.labels[i])].push_back(i);
  }
  std::vector<std::size_t> out;
  for (auto& rows : by_class) {
    rng.shuffle(rows);
    const std::size_t take = std::min(per_class, rows.size());
    out.insert(out.end(), rows.begin(), rows.begin() + take);
  }
  rng.shuffle(out);
  return out;
}

std::vector<std::size_t> random_sample(std::size_t dataset_size,
                                       std::size_t n, Rng& rng) {
  return rng.sample_without_replacement(dataset_size,
                                        std::min(n, dataset_size));
}

void Standardizer::fit(const Matrix& X) {
  XDMODML_CHECK(X.rows() > 0, "Standardizer::fit requires data");
  means_.assign(X.cols(), 0.0);
  scales_.assign(X.cols(), 1.0);
  for (std::size_t c = 0; c < X.cols(); ++c) {
    RunningStats rs;
    for (std::size_t r = 0; r < X.rows(); ++r) rs.add(X(r, c));
    means_[c] = rs.mean();
    const double sd = rs.stddev();
    scales_[c] = sd > 0.0 ? sd : 1.0;
  }
}

Matrix Standardizer::transform(const Matrix& X) const {
  XDMODML_CHECK(fitted(), "Standardizer used before fit()");
  XDMODML_CHECK(X.cols() == means_.size(),
                "Standardizer column count mismatch");
  Matrix out = X;
  for (std::size_t r = 0; r < out.rows(); ++r) transform_row(out.row(r));
  return out;
}

void Standardizer::transform_row(std::span<double> row) const {
  XDMODML_CHECK(fitted(), "Standardizer used before fit()");
  XDMODML_CHECK(row.size() == means_.size(),
                "Standardizer row width mismatch");
  for (std::size_t c = 0; c < row.size(); ++c) {
    row[c] = (row[c] - means_[c]) / scales_[c];
  }
}

Matrix Standardizer::fit_transform(const Matrix& X) {
  fit(X);
  return transform(X);
}

void Standardizer::save(std::ostream& out) const {
  XDMODML_CHECK(fitted(), "cannot save an unfitted Standardizer");
  io::write_tag(out, "standardizer-v1");
  io::write_vector(out, "means", means_);
  io::write_vector(out, "scales", scales_);
}

Standardizer Standardizer::load(std::istream& in) {
  io::TokenReader reader(in);
  reader.expect("standardizer-v1");
  Standardizer s;
  s.means_ = reader.read_vector("means");
  s.scales_ = reader.read_vector("scales");
  XDMODML_CHECK(s.means_.size() == s.scales_.size() && !s.means_.empty(),
                "corrupt standardizer stream");
  for (const double scale : s.scales_) {
    XDMODML_CHECK(scale > 0.0, "corrupt standardizer scale");
  }
  return s;
}

int LabelEncoder::encode(const std::string& label) {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == label) return static_cast<int>(i);
  }
  names_.push_back(label);
  return static_cast<int>(names_.size() - 1);
}

std::optional<int> LabelEncoder::lookup(const std::string& label) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == label) return static_cast<int>(i);
  }
  return std::nullopt;
}

const std::string& LabelEncoder::decode(int code) const {
  XDMODML_CHECK(code >= 0 && static_cast<std::size_t>(code) < names_.size(),
                "LabelEncoder::decode out of range");
  return names_[static_cast<std::size_t>(code)];
}

}  // namespace xdmodml::ml
