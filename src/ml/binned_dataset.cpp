#include "ml/binned_dataset.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

namespace xdmodml::ml {

namespace {

/// Bins one column: builds the cut table, assigns codes, and records the
/// per-bin raw min/max.  `sorted` and `cuts` are caller-owned scratch so
/// a range of features reuses the same allocations.
void bin_feature(const Matrix& X, std::size_t f, std::size_t max_bins,
                 std::size_t rows, std::uint8_t* col,
                 std::size_t& num_bins, std::vector<double>& bmin,
                 std::vector<double>& bmax, std::vector<double>& sorted,
                 std::vector<double>& cuts) {
  sorted.resize(rows);
  for (std::size_t i = 0; i < rows; ++i) sorted[i] = X(i, f);
  std::sort(sorted.begin(), sorted.end());

  std::size_t distinct = 1;
  for (std::size_t i = 1; i < rows; ++i) {
    if (sorted[i] != sorted[i - 1]) ++distinct;
  }

  // Cut points are strictly between two adjacent sorted values, so a
  // value's code — the number of cuts below it — is never ambiguous.
  cuts.clear();
  if (distinct <= max_bins) {
    // One bin per distinct value: binned split search degenerates to the
    // exact algorithm (every exact candidate threshold is a bin edge).
    for (std::size_t i = 1; i < rows; ++i) {
      if (sorted[i] != sorted[i - 1]) {
        cuts.push_back(0.5 * (sorted[i - 1] + sorted[i]));
      }
    }
  } else {
    // Quantile cuts at ranks b·n/max_bins, skipping ranks that land
    // inside a run of equal values (a cut there would be meaningless);
    // heavy-tailed SUPReMM metrics get narrow bins where the mass is.
    for (std::size_t b = 1; b < max_bins; ++b) {
      const std::size_t rank = b * rows / max_bins;
      if (rank == 0 || rank >= rows) continue;
      const double lo = sorted[rank - 1];
      const double hi = sorted[rank];
      if (lo == hi) continue;
      const double cut = 0.5 * (lo + hi);
      if (!cuts.empty() && cuts.back() >= cut) continue;
      cuts.push_back(cut);
    }
  }

  num_bins = cuts.size() + 1;
  bmin.assign(num_bins, std::numeric_limits<double>::infinity());
  bmax.assign(num_bins, -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < rows; ++i) {
    const double x = X(i, f);
    const auto code = static_cast<std::uint8_t>(
        std::lower_bound(cuts.begin(), cuts.end(), x) - cuts.begin());
    col[i] = code;
    bmin[code] = std::min(bmin[code], x);
    bmax[code] = std::max(bmax[code], x);
  }
}

}  // namespace

BinnedDataset::BinnedDataset(const Matrix& X, std::size_t max_bins) {
  XDMODML_CHECK(!X.empty(), "binning requires a non-empty matrix");
  max_bins = std::clamp<std::size_t>(max_bins, 2, kMaxBins);
  rows_ = X.rows();
  const std::size_t num_features = X.cols();
  bins_.assign(num_features, 1);
  codes_.assign(num_features * rows_, 0);
  bin_min_.resize(num_features);
  bin_max_.resize(num_features);

  // Features are independent: bin them in parallel, with per-range
  // scratch so the sort buffer is reused across a worker's features.
  ThreadPool::global().parallel_for_ranges(
      0, num_features, 1, [&](std::size_t lo, std::size_t hi) {
        std::vector<double> sorted;
        std::vector<double> cuts;
        for (std::size_t f = lo; f < hi; ++f) {
          bin_feature(X, f, max_bins, rows_, codes_.data() + f * rows_,
                      bins_[f], bin_min_[f], bin_max_[f], sorted, cuts);
        }
      });

  max_bins_used_ = *std::max_element(bins_.begin(), bins_.end());

  static auto& builds =
      obs::MetricsRegistry::instance().counter("binned.builds");
  static auto& bytes =
      obs::MetricsRegistry::instance().gauge("binned.bytes_hwm");
  builds.inc();
  bytes.update_max(static_cast<std::int64_t>(memory_bytes()));
}

BinnedDataset BinnedDataset::select_features(
    std::span<const std::size_t> features) const {
  XDMODML_CHECK(!features.empty(), "feature subset must be non-empty");
  BinnedDataset out;
  out.rows_ = rows_;
  out.bins_.reserve(features.size());
  out.codes_.reserve(features.size() * rows_);
  out.bin_min_.reserve(features.size());
  out.bin_max_.reserve(features.size());
  for (const auto f : features) {
    XDMODML_CHECK(f < this->features(), "feature index out of range");
    out.bins_.push_back(bins_[f]);
    const std::uint8_t* col = column(f);
    out.codes_.insert(out.codes_.end(), col, col + rows_);
    out.bin_min_.push_back(bin_min_[f]);
    out.bin_max_.push_back(bin_max_[f]);
    out.max_bins_used_ = std::max(out.max_bins_used_, bins_[f]);
  }
  return out;
}

std::size_t BinnedDataset::memory_bytes() const {
  std::size_t edges = 0;
  for (const auto b : bins_) edges += 2 * b * sizeof(double);
  return codes_.size() * sizeof(std::uint8_t) +
         bins_.size() * sizeof(std::size_t) + edges;
}

void accumulate_class_hist(const BinnedDataset& binned, std::size_t feature,
                           std::span<const std::size_t> samples,
                           std::span<const int> labels,
                           std::size_t num_classes, std::span<double> out) {
  XDMODML_CHECK(out.size() == binned.num_bins(feature) * num_classes,
                "histogram buffer size mismatch");
  const std::uint8_t* col = binned.column(feature);
  for (const auto s : samples) {
    out[col[s] * num_classes + static_cast<std::size_t>(labels[s])] += 1.0;
  }
}

void accumulate_value_hist(const BinnedDataset& binned, std::size_t feature,
                           std::span<const std::size_t> samples,
                           std::span<const double> targets,
                           std::span<double> out) {
  XDMODML_CHECK(out.size() == binned.num_bins(feature) * 3,
                "histogram buffer size mismatch");
  const std::uint8_t* col = binned.column(feature);
  for (const auto s : samples) {
    double* slot = out.data() + col[s] * 3;
    const double v = targets[s];
    slot[0] += 1.0;
    slot[1] += v;
    slot[2] += v * v;
  }
}

}  // namespace xdmodml::ml
