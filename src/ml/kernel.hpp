// Kernel functions for the SVM family.
//
// The paper uses the radial basis kernel with γ = 0.1 and C = 1000 (the
// e1071 defaults it quotes); linear and polynomial kernels are provided
// for completeness and for the test suite's sanity checks.
//
// Two evaluation paths exist:
//  * `Kernel::operator()` — scalar k(a, b), used at prediction time and
//    as the reference implementation in tests;
//  * `GramRowEngine` — the training-time path.  It precomputes per-row
//    squared norms once per fit and emits whole kernel rows as a single
//    blocked matrix–vector sweep over the contiguous Matrix storage,
//    K[i][j] = exp(−γ(‖xᵢ‖² + ‖xⱼ‖² − 2·xᵢ·xⱼ)) for RBF, fanned out
//    across the thread pool when the row is long enough.  Both the dot
//    pass and the kernel-transform pass run on the runtime-dispatched
//    SIMD microkernels in util/simd.hpp (AVX2/FMA with a vectorized
//    exp where available; scalar fallback everywhere else).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/matrix.hpp"

namespace xdmodml::ml {

/// Kernel family selector + parameters.
struct Kernel {
  enum class Type { kLinear, kRbf, kPolynomial };

  Type type = Type::kRbf;
  double gamma = 0.1;   ///< RBF / polynomial scale
  double degree = 3.0;  ///< polynomial degree
  double coef0 = 0.0;   ///< polynomial offset

  /// k(a, b); spans must have equal length.
  double operator()(std::span<const double> a,
                    std::span<const double> b) const;

  static Kernel linear();
  static Kernel rbf(double gamma);
  static Kernel polynomial(double degree, double gamma, double coef0);

  std::string name() const;
};

/// Squared Euclidean distance (RBF helper, exposed for tests).
double squared_distance(std::span<const double> a, std::span<const double> b);

/// Dot product.
double dot(std::span<const double> a, std::span<const double> b);

/// base^exp by squaring — the polynomial row path hoists the common
/// integer-degree case out of per-element std::pow.  Exposed for tests.
double powi(double base, std::uint64_t exp);

/// Vectorized kernel-row generator over the rows of a fixed matrix.
///
/// Construction runs one pass to cache ‖xᵢ‖² for every row; `fill_row`
/// then computes a full kernel row with one blocked dot-product sweep
/// (contiguous row-major reads, auto-vectorizable inner loop) instead of
/// n scalar `Kernel::operator()` calls that each re-derive both norms.
/// Rows longer than a work threshold are filled in parallel via
/// `ThreadPool::global().parallel_for_ranges`; the engine itself is
/// immutable after construction and safe to share across threads.
class GramRowEngine {
 public:
  GramRowEngine(const Matrix& X, Kernel kernel);

  /// out[j] = k(x_i, x_j) for j in [0, rows()); out.size() must be >= rows().
  void fill_row(std::size_t i, std::span<double> out) const;

  /// Same sweep for an arbitrary probe vector x (‖x‖² derived once):
  /// out[j] = k(x, x_j).  x.size() must equal cols().
  void fill_row_for(std::span<const double> x, std::span<double> out) const;

  /// k(x_i, x_i) in O(1) from the cached norms (RBF diagonal is exactly 1).
  double diagonal(std::size_t i) const;

  std::size_t rows() const { return X_->rows(); }
  const Kernel& kernel() const { return kernel_; }

  /// Cached per-row squared norms (exposed for tests and reuse).
  std::span<const double> squared_norms() const { return sq_norms_; }

 private:
  /// Dot-product sweep out[j] = x · row_j over rows [lo, hi), then the
  /// kernel transform in place, both on the SIMD microkernels.
  /// `x_sq_norm` is ‖x‖² (RBF only).
  void fill_range(std::span<const double> x, double x_sq_norm,
                  std::size_t lo, std::size_t hi, double* out) const;

  const Matrix* X_;               // not owned; must outlive the engine
  Kernel kernel_;
  std::vector<double> sq_norms_;  // ‖xᵢ‖², cached once per fit
  bool integral_degree_ = false;  // polynomial degree is a small integer
  std::uint64_t degree_int_ = 0;
};

}  // namespace xdmodml::ml
