// Kernel functions for the SVM family.
//
// The paper uses the radial basis kernel with γ = 0.1 and C = 1000 (the
// e1071 defaults it quotes); linear and polynomial kernels are provided
// for completeness and for the test suite's sanity checks.
#pragma once

#include <span>
#include <string>

namespace xdmodml::ml {

/// Kernel family selector + parameters.
struct Kernel {
  enum class Type { kLinear, kRbf, kPolynomial };

  Type type = Type::kRbf;
  double gamma = 0.1;   ///< RBF / polynomial scale
  double degree = 3.0;  ///< polynomial degree
  double coef0 = 0.0;   ///< polynomial offset

  /// k(a, b); spans must have equal length.
  double operator()(std::span<const double> a,
                    std::span<const double> b) const;

  static Kernel linear();
  static Kernel rbf(double gamma);
  static Kernel polynomial(double degree, double gamma, double coef0);

  std::string name() const;
};

/// Squared Euclidean distance (RBF helper, exposed for tests).
double squared_distance(std::span<const double> a, std::span<const double> b);

/// Dot product.
double dot(std::span<const double> a, std::span<const double> b);

}  // namespace xdmodml::ml
