#include "ml/cross_validation.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "ml/binned_dataset.hpp"
#include "ml/metrics.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/stats.hpp"
#include "util/trace.hpp"

namespace xdmodml::ml {

std::vector<std::size_t> stratified_folds(std::span<const int> labels,
                                          std::size_t folds, Rng& rng) {
  XDMODML_CHECK(folds >= 2, "need at least two folds");
  XDMODML_CHECK(!labels.empty(), "need labels");
  int max_label = 0;
  for (const int y : labels) max_label = std::max(max_label, y);
  std::vector<std::vector<std::size_t>> by_class(
      static_cast<std::size_t>(max_label) + 1);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    by_class[static_cast<std::size_t>(labels[i])].push_back(i);
  }
  std::vector<std::size_t> fold_of(labels.size(), 0);
  for (auto& rows : by_class) {
    rng.shuffle(rows);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      fold_of[rows[i]] = i % folds;
    }
  }
  return fold_of;
}

CvResult cross_validate(const Dataset& ds, const ClassifierFactory& factory,
                        std::size_t folds, std::uint64_t seed) {
  ds.validate();
  XDMODML_CHECK(!ds.labels.empty(), "CV requires a labeled dataset");
  XDMODML_CHECK(static_cast<bool>(factory), "CV requires a factory");
  Rng rng(seed);
  const auto fold_of = stratified_folds(ds.labels, folds, rng);

  CvResult result;
  RunningStats stats;
  for (std::size_t f = 0; f < folds; ++f) {
    std::vector<std::size_t> train_rows;
    std::vector<std::size_t> test_rows;
    for (std::size_t i = 0; i < ds.size(); ++i) {
      (fold_of[i] == f ? test_rows : train_rows).push_back(i);
    }
    XDMODML_CHECK(!train_rows.empty() && !test_rows.empty(),
                  "fold without train or test rows — too many folds");
    const auto train = ds.subset(train_rows);
    const auto test = ds.subset(test_rows);

    Standardizer standardizer;
    const auto x_train = standardizer.fit_transform(train.X);
    auto model = factory();
    model->fit(x_train, train.labels, static_cast<int>(ds.num_classes()));
    const auto x_test = standardizer.transform(test.X);
    const auto predictions = model->predict_batch(x_test);
    const double acc = accuracy(test.labels, predictions);
    result.fold_accuracies.push_back(acc);
    stats.add(acc);
  }
  result.mean_accuracy = stats.mean();
  result.stddev_accuracy = stats.stddev();
  return result;
}

CvResult forest_cross_validate(const Dataset& ds, const ForestConfig& config,
                               std::size_t folds, std::uint64_t seed) {
  ds.validate();
  XDMODML_CHECK(!ds.labels.empty(), "CV requires a labeled dataset");
  Rng rng(seed);
  const auto fold_of = stratified_folds(ds.labels, folds, rng);

  // Bin the full matrix once; every fold's forest trains on a row subset
  // of the same codes.  With the exact split algorithm the shared
  // dataset is simply ignored by the trees.
  std::shared_ptr<const BinnedDataset> binned;
  if (resolve_split_algo(config.tree.split_algo) == SplitAlgo::kHist) {
    binned = std::make_shared<const BinnedDataset>(ds.X);
  }

  const int num_classes = static_cast<int>(ds.num_classes());
  CvResult result;
  RunningStats stats;
  for (std::size_t f = 0; f < folds; ++f) {
    std::vector<std::size_t> train_rows;
    std::vector<std::size_t> test_rows;
    std::vector<int> test_labels;
    for (std::size_t i = 0; i < ds.size(); ++i) {
      if (fold_of[i] == f) {
        test_rows.push_back(i);
        test_labels.push_back(ds.labels[i]);
      } else {
        train_rows.push_back(i);
      }
    }
    XDMODML_CHECK(!train_rows.empty() && !test_rows.empty(),
                  "fold without train or test rows — too many folds");
    RandomForestClassifier forest(config, seed + f);
    forest.fit_rows(ds.X, ds.labels, num_classes, train_rows, binned);
    const auto predictions = forest.predict_batch(ds.X.gather_rows(test_rows));
    const double acc = accuracy(test_labels, predictions);
    result.fold_accuracies.push_back(acc);
    stats.add(acc);
  }
  result.mean_accuracy = stats.mean();
  result.stddev_accuracy = stats.stddev();
  return result;
}

std::vector<GridPoint> svm_grid_search(const Dataset& ds,
                                       std::span<const double> gammas,
                                       std::span<const double> cs,
                                       const SvmGridSearchOptions& options) {
  ds.validate();
  XDMODML_CHECK(!ds.labels.empty(), "grid search requires a labeled dataset");
  XDMODML_CHECK(!gammas.empty() && !cs.empty(),
                "grid search requires candidate values");

  // Fold assignment is drawn once for the entire grid (not per cell), so
  // every (γ, C) cell trains and tests on identical splits: cross-cell
  // accuracy differences are hyper-parameter signal, not fold noise, and
  // a fold's kernel rows mean the same thing in every cell.
  Rng rng(options.seed);
  const auto fold_of = stratified_folds(ds.labels, options.folds, rng);

  // One standardization for the whole sweep, fit on the full dataset.
  // Per-fold standardizers would give each fold its own feature space —
  // and therefore its own kernel matrix — defeating cross-fold row
  // reuse.  The difference (means/stds over (k−1)/k of the rows vs all
  // of them) is identical for every cell, so the ranking the tuner
  // exists to produce is unaffected.
  Standardizer standardizer;
  const Matrix xs = standardizer.fit_transform(ds.X);

  struct FoldRows {
    std::vector<std::size_t> train;
    std::vector<int> train_y;
    std::vector<std::size_t> test;
    std::vector<int> test_y;
  };
  std::vector<FoldRows> fold_rows(options.folds);
  for (std::size_t f = 0; f < options.folds; ++f) {
    for (std::size_t i = 0; i < ds.size(); ++i) {
      if (fold_of[i] == f) {
        fold_rows[f].test.push_back(i);
        fold_rows[f].test_y.push_back(ds.labels[i]);
      } else {
        fold_rows[f].train.push_back(i);
        fold_rows[f].train_y.push_back(ds.labels[i]);
      }
    }
    XDMODML_CHECK(!fold_rows[f].train.empty() && !fold_rows[f].test.empty(),
                  "fold without train or test rows — too many folds");
  }

  const std::size_t capacity =
      std::min(SharedGramCache::rows_for_budget(xs.rows(),
                                                options.cache_bytes,
                                                options.cache_precision),
               xs.rows());
  const int num_classes = static_cast<int>(ds.num_classes());
  std::vector<GridPoint> points;
  for (const double gamma : gammas) {
    // The RBF Gram matrix depends on γ alone: one cache per γ serves
    // every C cell and every CV fold of this grid row (each fold's
    // training set is a row subset of the full standardized matrix, so
    // machines slice rows exactly the way one-vs-one pairs already do),
    // and the test folds read their decision values off the same rows
    // via predict_shared.
    std::unique_ptr<SharedGramCache> cache;
    if (options.reuse_kernel_cache) {
      cache = std::make_unique<SharedGramCache>(
          xs, Kernel::rbf(gamma), capacity, options.cache_precision);
    }
    for (const double c : cs) {
      auto& registry = obs::MetricsRegistry::instance();
      static auto& cells = registry.counter("grid.cells");
      static auto& cell_hits = registry.counter("grid.cache_hits");
      static auto& cell_misses = registry.counter("grid.cache_misses");
      static auto& cell_hist = registry.histogram("grid.cell_ns", "ns");
      obs::ScopedTimer cell_timer(cell_hist, "grid.cell");
      RunningStats stats;
      for (std::size_t f = 0; f < options.folds; ++f) {
        const auto& fr = fold_rows[f];
        SvmConfig config = options.base;
        config.kernel = Kernel::rbf(gamma);
        config.c = c;
        config.cache_precision = options.cache_precision;
        // The refit arm (reuse off) runs the *same* code path against a
        // fresh cache per fit, so every fold of every cell recomputes
        // its kernel rows from scratch; identical arithmetic, so the
        // two arms' accuracy tables are bit-identical by construction.
        std::unique_ptr<SharedGramCache> fresh;
        if (!options.reuse_kernel_cache) {
          fresh = std::make_unique<SharedGramCache>(
              xs, Kernel::rbf(gamma), capacity, options.cache_precision);
        }
        SharedGramCache& active = fresh ? *fresh : *cache;
        const auto before = active.stats();
        SvmClassifier model(config, options.seed);
        model.fit_shared(xs.gather_rows(fr.train), fr.train_y, num_classes,
                         &active, fr.train);
        const auto predictions = model.predict_shared(active, fr.test);
        stats.add(accuracy(fr.test_y, predictions));
        // Per-fold delta against the active cache: in the reuse arm the
        // cache persists across cells, so totals need differencing; in
        // the refit arm `before` is all zeros.  The ratio of these two
        // counters is the sweep's cache-reuse ratio (see `derived`
        // fields in the metrics exporters).
        const auto after = active.stats();
        cell_hits.inc(after.hits - before.hits);
        cell_misses.inc(after.misses - before.misses);
      }
      cells.inc();
      points.push_back({gamma, c, stats.mean()});
    }
  }
  std::sort(points.begin(), points.end(),
            [](const GridPoint& a, const GridPoint& b) {
              return a.cv_accuracy > b.cv_accuracy;
            });
  return points;
}

std::vector<GridPoint> svm_grid_search(const Dataset& ds,
                                       std::span<const double> gammas,
                                       std::span<const double> cs,
                                       std::size_t folds,
                                       std::uint64_t seed) {
  SvmGridSearchOptions options;
  options.folds = folds;
  options.seed = seed;
  return svm_grid_search(ds, gammas, cs, options);
}

}  // namespace xdmodml::ml
