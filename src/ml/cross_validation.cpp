#include "ml/cross_validation.hpp"

#include <algorithm>
#include <cmath>

#include "ml/metrics.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace xdmodml::ml {

std::vector<std::size_t> stratified_folds(std::span<const int> labels,
                                          std::size_t folds, Rng& rng) {
  XDMODML_CHECK(folds >= 2, "need at least two folds");
  XDMODML_CHECK(!labels.empty(), "need labels");
  int max_label = 0;
  for (const int y : labels) max_label = std::max(max_label, y);
  std::vector<std::vector<std::size_t>> by_class(
      static_cast<std::size_t>(max_label) + 1);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    by_class[static_cast<std::size_t>(labels[i])].push_back(i);
  }
  std::vector<std::size_t> fold_of(labels.size(), 0);
  for (auto& rows : by_class) {
    rng.shuffle(rows);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      fold_of[rows[i]] = i % folds;
    }
  }
  return fold_of;
}

CvResult cross_validate(const Dataset& ds, const ClassifierFactory& factory,
                        std::size_t folds, std::uint64_t seed) {
  ds.validate();
  XDMODML_CHECK(!ds.labels.empty(), "CV requires a labeled dataset");
  XDMODML_CHECK(static_cast<bool>(factory), "CV requires a factory");
  Rng rng(seed);
  const auto fold_of = stratified_folds(ds.labels, folds, rng);

  CvResult result;
  RunningStats stats;
  for (std::size_t f = 0; f < folds; ++f) {
    std::vector<std::size_t> train_rows;
    std::vector<std::size_t> test_rows;
    for (std::size_t i = 0; i < ds.size(); ++i) {
      (fold_of[i] == f ? test_rows : train_rows).push_back(i);
    }
    XDMODML_CHECK(!train_rows.empty() && !test_rows.empty(),
                  "fold without train or test rows — too many folds");
    const auto train = ds.subset(train_rows);
    const auto test = ds.subset(test_rows);

    Standardizer standardizer;
    const auto x_train = standardizer.fit_transform(train.X);
    auto model = factory();
    model->fit(x_train, train.labels, static_cast<int>(ds.num_classes()));
    const auto x_test = standardizer.transform(test.X);
    const auto predictions = model->predict_batch(x_test);
    const double acc = accuracy(test.labels, predictions);
    result.fold_accuracies.push_back(acc);
    stats.add(acc);
  }
  result.mean_accuracy = stats.mean();
  result.stddev_accuracy = stats.stddev();
  return result;
}

std::vector<GridPoint> svm_grid_search(const Dataset& ds,
                                       std::span<const double> gammas,
                                       std::span<const double> cs,
                                       std::size_t folds,
                                       std::uint64_t seed) {
  XDMODML_CHECK(!gammas.empty() && !cs.empty(),
                "grid search requires candidate values");
  std::vector<GridPoint> points;
  for (const double gamma : gammas) {
    for (const double c : cs) {
      SvmConfig config;
      config.kernel = Kernel::rbf(gamma);
      config.c = c;
      config.probability = false;  // accuracy-only tuning, much faster
      const auto result = cross_validate(
          ds,
          [&config, seed] {
            return std::make_unique<SvmClassifier>(config, seed);
          },
          folds, seed);
      points.push_back({gamma, c, result.mean_accuracy});
    }
  }
  std::sort(points.begin(), points.end(),
            [](const GridPoint& a, const GridPoint& b) {
              return a.cv_accuracy > b.cv_accuracy;
            });
  return points;
}

}  // namespace xdmodml::ml
