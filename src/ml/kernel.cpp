#include "ml/kernel.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace xdmodml::ml {

namespace {

// Below this many multiply-adds a row is filled inline; above it the
// sweep is fanned out across the thread pool.  ~32k flops is roughly
// where chunk dispatch overhead drops below 10% on a 2-core box.
constexpr std::size_t kParallelFlopThreshold = 32 * 1024;

// Degrees up to this bound with integral values use exponentiation by
// squaring instead of std::pow.
constexpr double kMaxIntegralDegree = 64.0;

}  // namespace

double squared_distance(std::span<const double> a,
                        std::span<const double> b) {
  XDMODML_CHECK(a.size() == b.size(), "kernel operand size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

double dot(std::span<const double> a, std::span<const double> b) {
  XDMODML_CHECK(a.size() == b.size(), "kernel operand size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double powi(double base, std::uint64_t exp) {
  // One shared definition with the SIMD layer so the vectorized
  // polynomial transform is lane-exact against this scalar reference.
  return simd::powi(base, exp);
}

double Kernel::operator()(std::span<const double> a,
                          std::span<const double> b) const {
  switch (type) {
    case Type::kLinear:
      return dot(a, b);
    case Type::kRbf:
      return std::exp(-gamma * squared_distance(a, b));
    case Type::kPolynomial: {
      const double base = gamma * dot(a, b) + coef0;
      // Keep the scalar path bit-identical with the row path so the
      // Gram-row engine reproduces operator() exactly.
      if (degree > 0.0 && degree <= kMaxIntegralDegree &&
          degree == std::floor(degree)) {
        return powi(base, static_cast<std::uint64_t>(degree));
      }
      return std::pow(base, degree);
    }
  }
  return 0.0;  // unreachable
}

Kernel Kernel::linear() { return Kernel{Type::kLinear, 0.0, 0.0, 0.0}; }

Kernel Kernel::rbf(double gamma) {
  XDMODML_CHECK(gamma > 0.0, "RBF gamma must be positive");
  return Kernel{Type::kRbf, gamma, 0.0, 0.0};
}

Kernel Kernel::polynomial(double degree, double gamma, double coef0) {
  XDMODML_CHECK(degree > 0.0 && gamma > 0.0,
                "polynomial kernel requires positive degree and gamma");
  return Kernel{Type::kPolynomial, gamma, degree, coef0};
}

std::string Kernel::name() const {
  switch (type) {
    case Type::kLinear:
      return "linear";
    case Type::kRbf:
      return "rbf";
    case Type::kPolynomial:
      return "polynomial";
  }
  return "?";
}

GramRowEngine::GramRowEngine(const Matrix& X, Kernel kernel)
    : X_(&X), kernel_(kernel) {
  XDMODML_CHECK(!X.empty(), "GramRowEngine requires a non-empty matrix");
  sq_norms_ = X.row_squared_norms();
  if (kernel_.type == Kernel::Type::kPolynomial &&
      kernel_.degree > 0.0 && kernel_.degree <= kMaxIntegralDegree &&
      kernel_.degree == std::floor(kernel_.degree)) {
    integral_degree_ = true;
    degree_int_ = static_cast<std::uint64_t>(kernel_.degree);
  }
}

void GramRowEngine::fill_range(std::span<const double> x, double x_sq_norm,
                               std::size_t lo, std::size_t hi,
                               double* out) const {
  const std::size_t d = X_->cols();
  const double* base = X_->data().data();

  // Blocked dot-product sweep: each row is a contiguous d-length run
  // fed to the SIMD dot microkernel (AVX2/FMA where dispatched, scalar
  // otherwise).  The kernel transform runs as a second vectorized pass
  // over the block — for RBF that is where the vectorized exp replaces
  // the scalar std::exp that used to dominate the sweep.
  constexpr std::size_t kBlock = 256;
  for (std::size_t blk = lo; blk < hi; blk += kBlock) {
    const std::size_t blk_end = std::min(hi, blk + kBlock);
    const std::size_t blk_len = blk_end - blk;
    simd::dot_rows(x.data(), base + blk * d, d, blk_len, out + blk);
    switch (kernel_.type) {
      case Kernel::Type::kLinear:
        break;
      case Kernel::Type::kRbf:
        simd::rbf_row_transform(out + blk, sq_norms_.data() + blk, blk_len,
                                x_sq_norm, kernel_.gamma);
        break;
      case Kernel::Type::kPolynomial: {
        const double g = kernel_.gamma;
        const double c0 = kernel_.coef0;
        if (integral_degree_) {
          simd::poly_row_transform_powi(out + blk, blk_len, g, c0,
                                        degree_int_);
        } else {
          for (std::size_t j = blk; j < blk_end; ++j) {
            out[j] = std::pow(g * out[j] + c0, kernel_.degree);
          }
        }
        break;
      }
    }
  }
}

double GramRowEngine::diagonal(std::size_t i) const {
  XDMODML_CHECK(i < X_->rows(), "GramRowEngine row index out of range");
  switch (kernel_.type) {
    case Kernel::Type::kLinear:
      return sq_norms_[i];
    case Kernel::Type::kRbf:
      return 1.0;
    case Kernel::Type::kPolynomial: {
      const double base = kernel_.gamma * sq_norms_[i] + kernel_.coef0;
      return integral_degree_ ? powi(base, degree_int_)
                              : std::pow(base, kernel_.degree);
    }
  }
  return 0.0;  // unreachable
}

void GramRowEngine::fill_row(std::size_t i, std::span<double> out) const {
  XDMODML_CHECK(i < X_->rows(), "GramRowEngine row index out of range");
  fill_row_for(X_->row(i), out);
}

void GramRowEngine::fill_row_for(std::span<const double> x,
                                 std::span<double> out) const {
  const std::size_t n = X_->rows();
  XDMODML_CHECK(x.size() == X_->cols(),
                "GramRowEngine probe width mismatch");
  XDMODML_CHECK(out.size() >= n, "GramRowEngine output row too short");
  {
    // Per-row granularity (one fill = n kernel values), so these adds
    // are invisible next to the sweep itself.  The ISA split feeds the
    // bench trajectories: SIMD-vs-scalar dispatch mix per run.
    auto& registry = obs::MetricsRegistry::instance();
    static auto& rows_filled = registry.counter("gram_rows.filled");
    static auto& elements = registry.counter("gram_rows.elements");
    static auto& fills_avx2 = registry.counter("gram_rows.fill_avx2");
    static auto& fills_scalar = registry.counter("gram_rows.fill_scalar");
    rows_filled.inc();
    elements.inc(n);
    (simd::active() == simd::Isa::kAvx2 ? fills_avx2 : fills_scalar).inc();
  }
  double x_sq = 0.0;
  if (kernel_.type == Kernel::Type::kRbf) {
    for (const double v : x) x_sq += v * v;
  }
  const std::size_t d = std::max<std::size_t>(1, X_->cols());
  // A single-worker pool would only add submit/wait overhead on top of
  // the same serial sweep.
  if (n * d < kParallelFlopThreshold || ThreadPool::global().size() <= 1) {
    fill_range(x, x_sq, 0, n, out.data());
    return;
  }
  const std::size_t grain = std::max<std::size_t>(1, kParallelFlopThreshold / d);
  ThreadPool::global().parallel_for_ranges(
      0, n, grain, [&](std::size_t lo, std::size_t hi) {
        fill_range(x, x_sq, lo, hi, out.data());
      });
}

}  // namespace xdmodml::ml
