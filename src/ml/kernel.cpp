#include "ml/kernel.hpp"

#include <cmath>

#include "util/error.hpp"

namespace xdmodml::ml {

double squared_distance(std::span<const double> a,
                        std::span<const double> b) {
  XDMODML_CHECK(a.size() == b.size(), "kernel operand size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

double dot(std::span<const double> a, std::span<const double> b) {
  XDMODML_CHECK(a.size() == b.size(), "kernel operand size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double Kernel::operator()(std::span<const double> a,
                          std::span<const double> b) const {
  switch (type) {
    case Type::kLinear:
      return dot(a, b);
    case Type::kRbf:
      return std::exp(-gamma * squared_distance(a, b));
    case Type::kPolynomial:
      return std::pow(gamma * dot(a, b) + coef0, degree);
  }
  return 0.0;  // unreachable
}

Kernel Kernel::linear() { return Kernel{Type::kLinear, 0.0, 0.0, 0.0}; }

Kernel Kernel::rbf(double gamma) {
  XDMODML_CHECK(gamma > 0.0, "RBF gamma must be positive");
  return Kernel{Type::kRbf, gamma, 0.0, 0.0};
}

Kernel Kernel::polynomial(double degree, double gamma, double coef0) {
  XDMODML_CHECK(degree > 0.0 && gamma > 0.0,
                "polynomial kernel requires positive degree and gamma");
  return Kernel{Type::kPolynomial, gamma, degree, coef0};
}

std::string Kernel::name() const {
  switch (type) {
    case Type::kLinear:
      return "linear";
    case Type::kRbf:
      return "rbf";
    case Type::kPolynomial:
      return "polynomial";
  }
  return "?";
}

}  // namespace xdmodml::ml
