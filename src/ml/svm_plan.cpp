#include "ml/svm_plan.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/simd.hpp"

namespace xdmodml::ml {

namespace {

// Pool rows swept per pass.  A block of support vectors is streamed from
// memory once and reused for every query of a batch, so the block must
// fit in L1/L2 alongside a query row: 256 rows × 32 doubles ≈ 64 KiB.
constexpr std::size_t kPoolBlock = 256;

// Mirrors kernel.cpp: integral degrees up to this bound use
// exponentiation by squaring (bit-identical to the scalar kernel path).
constexpr double kMaxIntegralDegree = 64.0;

// The active prediction mode, published once.  -1 = unselected;
// otherwise the SvmPredictMode value.  Mirrors simd.cpp's startup ISA
// selection: racing first reads all compute the same env-derived value.
std::atomic<int> g_mode{-1};

SvmPredictMode choose_startup_mode() {
  if (const char* env = std::getenv("XDMODML_SVM_PREDICT")) {
    if (const auto requested = svm_predict_mode_from_string(env)) {
      return *requested;
    }
    std::fprintf(stderr,
                 "xdmodml: XDMODML_SVM_PREDICT=%s unrecognized "
                 "(want legacy|compiled); using compiled\n",
                 env);
  }
  return SvmPredictMode::kCompiled;
}

// FNV-1a over a row's raw bytes — the content-dedup bucket key.  Exact
// equality is re-verified with memcmp, so collisions only cost a probe.
std::uint64_t hash_row_bytes(const double* row, std::size_t d) {
  std::uint64_t h = 1469598103934665603ull;
  const auto* bytes = reinterpret_cast<const unsigned char*>(row);
  for (std::size_t i = 0; i < d * sizeof(double); ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
  return h;
}

struct PlanMetrics {
  obs::Gauge& unique_svs;
  obs::Gauge& total_svs;
  obs::Gauge& dedup_ratio_x1000;
  obs::Gauge& pool_bytes;
  obs::Gauge& precision_bits;
  obs::Counter& builds;

  static PlanMetrics& instance() {
    auto& reg = obs::MetricsRegistry::instance();
    static PlanMetrics m{reg.gauge("svm.plan.unique_svs"),
                         reg.gauge("svm.plan.total_svs"),
                         reg.gauge("svm.plan.dedup_ratio_x1000"),
                         reg.gauge("svm.plan.pool_bytes"),
                         reg.gauge("svm.plan.precision_bits"),
                         reg.counter("svm.plan.builds")};
    return m;
  }
};

}  // namespace

SvmPredictMode svm_predict_mode() {
  int m = g_mode.load(std::memory_order_relaxed);
  if (m < 0) {
    m = static_cast<int>(choose_startup_mode());
    g_mode.store(m, std::memory_order_relaxed);
  }
  return static_cast<SvmPredictMode>(m);
}

void set_svm_predict_mode(SvmPredictMode mode) {
  g_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

std::string_view svm_predict_mode_name(SvmPredictMode mode) {
  return mode == SvmPredictMode::kLegacy ? "legacy" : "compiled";
}

std::optional<SvmPredictMode> svm_predict_mode_from_string(
    std::string_view name) {
  if (name == "legacy") return SvmPredictMode::kLegacy;
  if (name == "compiled") return SvmPredictMode::kCompiled;
  return std::nullopt;
}

std::shared_ptr<const SvmInferencePlan> SvmInferencePlan::build(
    std::span<const BinarySvm> machines, GramPrecision precision) {
  XDMODML_CHECK(!machines.empty(), "inference plan needs trained machines");

  auto plan = std::shared_ptr<SvmInferencePlan>(new SvmInferencePlan());
  plan->kernel_ = machines[0].kernel();
  plan->precision_ = precision;
  plan->dims_ = machines[0].support_vectors().cols();
  if (plan->kernel_.type == Kernel::Type::kPolynomial &&
      plan->kernel_.degree > 0.0 &&
      plan->kernel_.degree <= kMaxIntegralDegree &&
      plan->kernel_.degree == std::floor(plan->kernel_.degree)) {
    plan->integral_degree_ = true;
    plan->degree_int_ = static_cast<std::uint64_t>(plan->kernel_.degree);
  }

  // Every one-vs-one machine of a fit shares one kernel; a mixed set
  // cannot share a pool row sweep.
  for (const auto& m : machines) {
    const auto& k = m.kernel();
    XDMODML_CHECK(k.type == plan->kernel_.type &&
                      k.gamma == plan->kernel_.gamma &&
                      k.degree == plan->kernel_.degree &&
                      k.coef0 == plan->kernel_.coef0,
                  "inference plan requires one kernel across machines");
    XDMODML_CHECK(m.support_vectors().cols() == plan->dims_,
                  "inference plan requires one feature width");
    XDMODML_CHECK(m.num_support_vectors() > 0,
                  "inference plan requires trained machines");
    plan->total_ += m.num_support_vectors();
  }

  // Provenance keying is valid only when EVERY machine carries full-
  // matrix row indices (one fit's machines share a row keyspace; a
  // machine without provenance — e.g. fitted cache-less or loaded from
  // a v1 file — would alias index 7 of a different matrix).
  bool provenance = true;
  for (const auto& m : machines) {
    if (m.sv_full_rows().size() != m.num_support_vectors()) {
      provenance = false;
      break;
    }
  }
  plan->provenance_ = provenance;

  // Stage the unique rows in double regardless of the target precision;
  // content keying compares the original doubles bit-exactly.
  const std::size_t d = plan->dims_;
  std::vector<double> staging;
  staging.reserve(machines[0].num_support_vectors() * d);
  std::unordered_map<std::size_t, std::uint32_t> by_full_row;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_content;

  auto pool_index_for = [&](const BinarySvm& m,
                            std::size_t s) -> std::uint32_t {
    const std::size_t next = staging.size() / d;
    XDMODML_CHECK(next <= 0xffffffffull, "support-vector pool too large");
    const auto row = m.support_vectors().row(s);
    if (provenance) {
      const auto [it, inserted] =
          by_full_row.try_emplace(m.sv_full_rows()[s],
                                  static_cast<std::uint32_t>(next));
      if (!inserted) return it->second;
    } else {
      auto& bucket = by_content[hash_row_bytes(row.data(), d)];
      for (const auto idx : bucket) {
        if (std::memcmp(staging.data() + idx * d, row.data(),
                        d * sizeof(double)) == 0) {
          return idx;
        }
      }
      bucket.push_back(static_cast<std::uint32_t>(next));
    }
    staging.insert(staging.end(), row.begin(), row.end());
    return static_cast<std::uint32_t>(next);
  };

  plan->machines_.reserve(machines.size());
  for (const auto& m : machines) {
    MachineSlice slice;
    const std::size_t svs = m.num_support_vectors();
    slice.sv_pool_idx.reserve(svs);
    for (std::size_t s = 0; s < svs; ++s) {
      slice.sv_pool_idx.push_back(pool_index_for(m, s));
    }
    slice.coef.assign(m.coefficients().begin(), m.coefficients().end());
    slice.rho = m.rho();
    slice.has_platt = m.has_probability();
    if (slice.has_platt) slice.sigmoid = m.sigmoid();
    plan->machines_.push_back(std::move(slice));
  }

  plan->unique_ = staging.size() / d;
  if (precision == GramPrecision::kFloat32) {
    // Quantize the coordinates; kernels evaluate in double on the
    // widened values, and the cached norms match the quantized pool so
    // the norm expansion stays self-consistent.
    plan->pool_f32_.resize(staging.size());
    for (std::size_t i = 0; i < staging.size(); ++i) {
      plan->pool_f32_[i] = static_cast<float>(staging[i]);
    }
    plan->sq_norms_.resize(plan->unique_);
    std::vector<double> wide(d);
    for (std::size_t j = 0; j < plan->unique_; ++j) {
      for (std::size_t i = 0; i < d; ++i) {
        wide[i] = static_cast<double>(plan->pool_f32_[j * d + i]);
      }
      plan->sq_norms_[j] = simd::squared_norm(wide.data(), d);
    }
  } else {
    plan->pool_f64_ = std::move(staging);
    plan->sq_norms_.resize(plan->unique_);
    for (std::size_t j = 0; j < plan->unique_; ++j) {
      plan->sq_norms_[j] =
          simd::squared_norm(plan->pool_f64_.data() + j * d, d);
    }
  }

  auto& metrics = PlanMetrics::instance();
  metrics.unique_svs.set(static_cast<std::int64_t>(plan->unique_));
  metrics.total_svs.set(static_cast<std::int64_t>(plan->total_));
  metrics.dedup_ratio_x1000.set(
      static_cast<std::int64_t>(plan->dedup_ratio() * 1000.0));
  metrics.pool_bytes.set(static_cast<std::int64_t>(plan->pool_bytes()));
  metrics.precision_bits.set(precision == GramPrecision::kFloat32 ? 32 : 64);
  metrics.builds.inc();
  return plan;
}

double SvmInferencePlan::dedup_ratio() const {
  return unique_ == 0 ? 0.0
                      : static_cast<double>(total_) /
                            static_cast<double>(unique_);
}

std::size_t SvmInferencePlan::pool_bytes() const {
  return unique_ * dims_ *
         (precision_ == GramPrecision::kFloat32 ? sizeof(float)
                                                : sizeof(double));
}

void SvmInferencePlan::transform_block(std::span<const double> x, double x_sq,
                                       const double* rows, std::size_t lo,
                                       std::size_t hi, double* out) const {
  const std::size_t len = hi - lo;
  simd::dot_rows(x.data(), rows, dims_, len, out + lo);
  switch (kernel_.type) {
    case Kernel::Type::kLinear:
      break;
    case Kernel::Type::kRbf:
      simd::rbf_row_transform(out + lo, sq_norms_.data() + lo, len, x_sq,
                              kernel_.gamma);
      break;
    case Kernel::Type::kPolynomial: {
      const double g = kernel_.gamma;
      const double c0 = kernel_.coef0;
      if (integral_degree_) {
        simd::poly_row_transform_powi(out + lo, len, g, c0, degree_int_);
      } else {
        for (std::size_t j = lo; j < hi; ++j) {
          out[j] = std::pow(g * out[j] + c0, kernel_.degree);
        }
      }
      break;
    }
  }
}

void SvmInferencePlan::kernel_rows(const double* queries, std::size_t b,
                                   double* out) const {
  if (b == 0) return;
  static auto& queries_counter =
      obs::MetricsRegistry::instance().counter("svm.predict.queries");
  static auto& elements_counter =
      obs::MetricsRegistry::instance().counter(
          "svm.predict.kernel_row_elements");
  queries_counter.inc(b);
  elements_counter.inc(b * unique_);

  const bool rbf = kernel_.type == Kernel::Type::kRbf;
  std::vector<double> x_sq(rbf ? b : 0, 0.0);
  if (rbf) {
    for (std::size_t q = 0; q < b; ++q) {
      x_sq[q] = simd::squared_norm(queries + q * dims_, dims_);
    }
  }

  // Pool-block outer, query inner: each block of support vectors is
  // read from memory once per b queries.
  std::vector<double> wide;
  if (precision_ == GramPrecision::kFloat32) {
    wide.resize(std::min(kPoolBlock, unique_) * dims_);
  }
  for (std::size_t lo = 0; lo < unique_; lo += kPoolBlock) {
    const std::size_t hi = std::min(lo + kPoolBlock, unique_);
    const double* rows = nullptr;
    if (precision_ == GramPrecision::kFloat32) {
      const std::size_t n = (hi - lo) * dims_;
      const float* src = pool_f32_.data() + lo * dims_;
      for (std::size_t i = 0; i < n; ++i) {
        wide[i] = static_cast<double>(src[i]);
      }
      rows = wide.data();
    } else {
      rows = pool_f64_.data() + lo * dims_;
    }
    for (std::size_t q = 0; q < b; ++q) {
      transform_block({queries + q * dims_, dims_}, rbf ? x_sq[q] : 0.0,
                      rows, lo, hi, out + q * unique_);
    }
  }
}

void SvmInferencePlan::kernel_row(std::span<const double> x,
                                  std::span<double> out) const {
  XDMODML_CHECK(x.size() == dims_, "kernel_row probe width mismatch");
  XDMODML_CHECK(out.size() >= unique_, "kernel_row output too small");
  kernel_rows(x.data(), 1, out.data());
}

double SvmInferencePlan::decision_value(std::size_t idx,
                                        std::span<const double> krow) const {
  const MachineSlice& slice = machines_[idx];
  double f = -slice.rho;
  const std::size_t svs = slice.sv_pool_idx.size();
  for (std::size_t s = 0; s < svs; ++s) {
    f += slice.coef[s] * krow[slice.sv_pool_idx[s]];
  }
  return f;
}

}  // namespace xdmodml::ml
