// CART decision trees (classification via Gini impurity, regression via
// variance reduction), the building block of the random forest.
//
// Two split-search algorithms share one engine:
//
//  * kExact — the classic sort-and-scan: for each candidate feature the
//    samples reaching a node are sorted by feature value and every
//    midpoint between distinct consecutive values is scored
//    incrementally.  O(n log n) per feature per node.
//  * kHist — histogram-binned search over a `BinnedDataset`: per-bin
//    class-count (or count/sum/sumsq) histograms are accumulated in one
//    O(n) pass per feature and the ≤256 bins are scanned instead of
//    sorting.  A node derives a child's histogram from its own minus the
//    sibling's whenever that is cheaper than rescanning (the
//    parent-minus-sibling subtraction trick).
//
// `max_features` enables the per-split feature subsampling that
// distinguishes a *random* forest from plain bagging.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "ml/classifier.hpp"
#include "util/rng.hpp"

namespace xdmodml::ml {

class BinnedDataset;

/// Split-search algorithm selector.  kAuto defers to the
/// XDMODML_TREE_SPLIT environment variable ("exact" / "hist", read once
/// per process) and defaults to kHist; an explicit kExact/kHist in the
/// config always wins over the environment, mirroring how
/// XDMODML_SIMD interacts with simd::set_active.
enum class SplitAlgo { kAuto, kExact, kHist };

/// Resolves kAuto against the environment; returns non-auto requests
/// unchanged.
SplitAlgo resolve_split_algo(SplitAlgo requested);

/// Hyper-parameters shared by tree classifier / regressor / forest.
struct TreeConfig {
  std::size_t max_depth = 0;          ///< 0 = unlimited
  std::size_t min_samples_split = 2;  ///< do not split smaller nodes
  std::size_t min_samples_leaf = 1;   ///< both children must have >= this
  std::size_t max_features = 0;       ///< features tried per split; 0 = all
  double min_impurity_decrease = 0.0; ///< prune splits that gain less
  SplitAlgo split_algo = SplitAlgo::kAuto;  ///< split search (see above)
};

namespace detail {

/// One tree node; children are indices into the tree's node vector.
struct TreeNode {
  int feature = -1;          ///< -1 marks a leaf
  double threshold = 0.0;    ///< go left when x[feature] <= threshold
  std::size_t left = 0;
  std::size_t right = 0;
  std::vector<double> class_probs;  ///< leaf class distribution
  double value = 0.0;               ///< leaf regression value
};

/// Task-agnostic CART engine used by both public wrappers.
class TreeEngine {
 public:
  enum class Task { kClassification, kRegression };

  TreeEngine(Task task, TreeConfig config) : task_(task), config_(config) {}

  /// Trains on the rows of X listed in `sample_indices` (duplicates allowed
  /// — this is how the forest passes bootstrap samples).  For
  /// classification, `y_class` supplies labels; for regression, `y_value`.
  /// With the kHist algorithm, `binned` supplies the shared quantile-binned
  /// codes of X (the forest bins once and passes the same dataset to every
  /// tree); when null the engine bins X itself.
  void fit(const Matrix& X, std::span<const int> y_class,
           std::span<const double> y_value, int num_classes,
           std::span<const std::size_t> sample_indices, Rng& rng,
           const BinnedDataset* binned = nullptr);

  /// Leaf class distribution for one row (classification).
  std::span<const double> leaf_probs(std::span<const double> x) const;

  /// Leaf value for one row (regression).
  double leaf_value(std::span<const double> x) const;

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t depth() const;
  bool trained() const { return !nodes_.empty(); }

  /// Total impurity decrease contributed by each feature (Gini importance).
  std::span<const double> impurity_importance() const {
    return impurity_importance_;
  }

  /// Serialization of a *trained* engine (inference state only).
  void save(std::ostream& out) const;
  static TreeEngine load(std::istream& in);

 private:
  struct BuildContext;
  std::size_t build_node(BuildContext& ctx, std::size_t begin,
                         std::size_t end, std::size_t depth_now);
  const detail::TreeNode& descend(std::span<const double> x) const;

  Task task_;
  TreeConfig config_;
  int num_classes_ = 0;
  std::size_t num_features_ = 0;
  std::vector<TreeNode> nodes_;
  std::vector<double> impurity_importance_;
};

}  // namespace detail

/// Single CART classifier with a `Classifier` interface.
class DecisionTreeClassifier final : public Classifier {
 public:
  explicit DecisionTreeClassifier(TreeConfig config = {},
                                  std::uint64_t seed = 1);

  void fit(const Matrix& X, std::span<const int> y, int num_classes) override;
  std::vector<double> predict_proba(std::span<const double> x) const override;
  int num_classes() const override { return num_classes_; }

  std::size_t node_count() const { return engine_.node_count(); }
  std::size_t depth() const { return engine_.depth(); }

 private:
  detail::TreeEngine engine_;
  Rng rng_;
  int num_classes_ = 0;
};

/// Single CART regressor with a `Regressor` interface.
class DecisionTreeRegressor final : public Regressor {
 public:
  explicit DecisionTreeRegressor(TreeConfig config = {},
                                 std::uint64_t seed = 1);

  void fit(const Matrix& X, std::span<const double> y) override;
  double predict(std::span<const double> x) const override;

  std::size_t node_count() const { return engine_.node_count(); }

 private:
  detail::TreeEngine engine_;
  Rng rng_;
};

}  // namespace xdmodml::ml
