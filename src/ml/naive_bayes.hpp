// Gaussian Naive Bayes classifier.
//
// Included because the paper's Section II evaluates it first and discards
// it: "The Naïve Bayesian classifier performed very poorly on this problem,
// which is not surprising since the a priori data distributions are not
// normal and the metrics are known to be correlated."  The efficiency
// bench reproduces exactly that ordering (NB ≪ SVM ≈ RF).
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "ml/classifier.hpp"

namespace xdmodml::ml {

/// Gaussian NB with per-class feature means/variances and log-space
/// posterior evaluation.  A small variance floor keeps degenerate
/// (constant) features from producing infinities.
class NaiveBayesClassifier final : public Classifier {
 public:
  /// `var_smoothing` is added to every per-class variance, scaled by the
  /// largest feature variance (the scikit-learn convention).
  explicit NaiveBayesClassifier(double var_smoothing = 1e-9);

  void fit(const Matrix& X, std::span<const int> y, int num_classes) override;
  std::vector<double> predict_proba(std::span<const double> x) const override;
  int num_classes() const override { return num_classes_; }

  /// Serialization of a trained model.
  void save(std::ostream& out) const;
  static NaiveBayesClassifier load(std::istream& in);

 private:
  double var_smoothing_;
  int num_classes_ = 0;
  std::size_t num_features_ = 0;
  std::vector<double> log_priors_;  // [class]
  std::vector<double> means_;       // [class * F + f]
  std::vector<double> vars_;        // [class * F + f]
};

}  // namespace xdmodml::ml
