// Labeled dataset container and preprocessing utilities.
//
// A `Dataset` couples a feature matrix with integer class labels, feature
// names and class names.  The helpers implement the sampling protocols the
// paper uses: class-balanced training mixtures, native-mix test sets, and
// stratified train/test splits, plus z-score standardization (required for
// the RBF SVM with the paper's γ = 0.1 to be meaningful).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace xdmodml::ml {

/// Feature matrix + labels + names.  Labels are dense ints in
/// [0, num_classes).  For regression tasks, use `targets` instead of
/// `labels` (exactly one of the two is populated).
struct Dataset {
  Matrix X;
  std::vector<int> labels;        // classification targets
  std::vector<double> targets;    // regression targets
  std::vector<std::string> feature_names;
  std::vector<std::string> class_names;

  std::size_t size() const { return X.rows(); }
  std::size_t num_features() const { return X.cols(); }
  std::size_t num_classes() const { return class_names.size(); }

  /// Throws InvalidArgument unless shapes/labels are consistent.
  void validate() const;

  /// Returns the subset at the given row indices (labels/targets follow).
  Dataset subset(std::span<const std::size_t> indices) const;

  /// Returns a copy restricted to the given feature columns.
  Dataset select_features(std::span<const std::size_t> feature_indices) const;

  /// Per-class row counts (classification only).
  std::vector<std::size_t> class_counts() const;
};

/// Train/test split result (indices into the original dataset).
struct SplitIndices {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Stratified split: each class contributes ~train_fraction of its rows to
/// the train side.  Shuffles within class using `rng`.
SplitIndices stratified_split(const Dataset& ds, double train_fraction,
                              Rng& rng);

/// Class-balanced sample of up to `per_class` rows from each class
/// (sampling *without* replacement; classes with fewer rows contribute all
/// of them).  This mirrors the paper's "application-balanced mixture".
std::vector<std::size_t> balanced_sample(const Dataset& ds,
                                         std::size_t per_class, Rng& rng);

/// Uniform random sample of `n` distinct rows (native mix preserved).
std::vector<std::size_t> random_sample(std::size_t dataset_size,
                                       std::size_t n, Rng& rng);

/// Z-score standardizer fit on training data, applied everywhere else.
/// Constant features get scale 1 so they map to 0 rather than NaN.
class Standardizer {
 public:
  /// Learns per-column mean and standard deviation.
  void fit(const Matrix& X);

  /// Applies (x - mean) / sd column-wise.  Requires fit() first.
  Matrix transform(const Matrix& X) const;

  /// Applies to a single row in place.
  void transform_row(std::span<double> row) const;

  Matrix fit_transform(const Matrix& X);

  bool fitted() const { return !means_.empty(); }
  std::span<const double> means() const { return means_; }
  std::span<const double> scales() const { return scales_; }

  /// Serialization (see ml/model_io.hpp for the format).
  void save(std::ostream& out) const;
  static Standardizer load(std::istream& in);

 private:
  std::vector<double> means_;
  std::vector<double> scales_;
};

/// Maps arbitrary string labels to dense int codes (insertion order).
class LabelEncoder {
 public:
  int encode(const std::string& label);                 // inserts if new
  std::optional<int> lookup(const std::string& label) const;
  const std::string& decode(int code) const;
  std::size_t size() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
};

}  // namespace xdmodml::ml
