#include "ml/naive_bayes.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "ml/model_io.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace xdmodml::ml {

NaiveBayesClassifier::NaiveBayesClassifier(double var_smoothing)
    : var_smoothing_(var_smoothing) {
  XDMODML_CHECK(var_smoothing >= 0.0, "var_smoothing must be >= 0");
}

void NaiveBayesClassifier::fit(const Matrix& X, std::span<const int> y,
                               int num_classes) {
  XDMODML_CHECK(X.rows() == y.size() && X.rows() > 0,
                "fit requires matching non-empty X and y");
  XDMODML_CHECK(num_classes > 0, "num_classes must be positive");
  num_classes_ = num_classes;
  num_features_ = X.cols();
  const auto k = static_cast<std::size_t>(num_classes);

  std::vector<std::vector<RunningStats>> acc(
      k, std::vector<RunningStats>(num_features_));
  std::vector<std::size_t> counts(k, 0);
  for (std::size_t r = 0; r < X.rows(); ++r) {
    XDMODML_CHECK(y[r] >= 0 && y[r] < num_classes, "label out of range");
    const auto c = static_cast<std::size_t>(y[r]);
    ++counts[c];
    const auto row = X.row(r);
    for (std::size_t f = 0; f < num_features_; ++f) acc[c][f].add(row[f]);
  }

  // Global variance ceiling for the smoothing term.
  double max_var = 0.0;
  for (std::size_t f = 0; f < num_features_; ++f) {
    RunningStats rs;
    for (std::size_t r = 0; r < X.rows(); ++r) rs.add(X(r, f));
    max_var = std::max(max_var, rs.population_variance());
  }
  const double eps = var_smoothing_ * std::max(max_var, 1.0);

  log_priors_.assign(k, -std::numeric_limits<double>::infinity());
  means_.assign(k * num_features_, 0.0);
  vars_.assign(k * num_features_, eps);
  for (std::size_t c = 0; c < k; ++c) {
    if (counts[c] == 0) continue;  // prior stays -inf: never predicted
    log_priors_[c] = std::log(static_cast<double>(counts[c]) /
                              static_cast<double>(X.rows()));
    for (std::size_t f = 0; f < num_features_; ++f) {
      means_[c * num_features_ + f] = acc[c][f].mean();
      vars_[c * num_features_ + f] =
          acc[c][f].population_variance() + std::max(eps, 1e-300);
    }
  }
}

void NaiveBayesClassifier::save(std::ostream& out) const {
  XDMODML_CHECK(num_classes_ > 0, "cannot save an untrained model");
  io::write_tag(out, "naive-bayes-v1");
  io::write_scalar(out, "classes",
                   static_cast<std::int64_t>(num_classes_));
  io::write_scalar(out, "features",
                   static_cast<std::int64_t>(num_features_));
  // -inf priors (never-seen classes) are encoded as a sentinel.
  std::vector<double> priors = log_priors_;
  for (auto& p : priors) {
    if (std::isinf(p)) p = -1e308;
  }
  io::write_vector(out, "log_priors", priors);
  io::write_vector(out, "means", means_);
  io::write_vector(out, "vars", vars_);
}

NaiveBayesClassifier NaiveBayesClassifier::load(std::istream& in) {
  io::TokenReader reader(in);
  reader.expect("naive-bayes-v1");
  NaiveBayesClassifier nb;
  nb.num_classes_ = static_cast<int>(reader.read_int("classes"));
  nb.num_features_ = static_cast<std::size_t>(reader.read_int("features"));
  nb.log_priors_ = reader.read_vector("log_priors");
  for (auto& p : nb.log_priors_) {
    if (p <= -1e308) p = -std::numeric_limits<double>::infinity();
  }
  nb.means_ = reader.read_vector("means");
  nb.vars_ = reader.read_vector("vars");
  const auto k = static_cast<std::size_t>(nb.num_classes_);
  XDMODML_CHECK(nb.log_priors_.size() == k &&
                    nb.means_.size() == k * nb.num_features_ &&
                    nb.vars_.size() == k * nb.num_features_,
                "corrupt naive-bayes stream");
  for (const double v : nb.vars_) {
    XDMODML_CHECK(v > 0.0, "corrupt naive-bayes variance");
  }
  return nb;
}

std::vector<double> NaiveBayesClassifier::predict_proba(
    std::span<const double> x) const {
  XDMODML_CHECK(num_classes_ > 0, "predict before fit");
  XDMODML_CHECK(x.size() == num_features_, "feature width mismatch");
  const auto k = static_cast<std::size_t>(num_classes_);
  std::vector<double> log_post(k);
  for (std::size_t c = 0; c < k; ++c) {
    double lp = log_priors_[c];
    if (std::isinf(lp)) {
      log_post[c] = lp;
      continue;
    }
    for (std::size_t f = 0; f < num_features_; ++f) {
      const double mu = means_[c * num_features_ + f];
      const double var = vars_[c * num_features_ + f];
      const double d = x[f] - mu;
      lp += -0.5 * (std::log(2.0 * std::numbers::pi * var) + d * d / var);
    }
    log_post[c] = lp;
  }
  // Softmax in log space.
  const double mx = *std::max_element(log_post.begin(), log_post.end());
  std::vector<double> proba(k, 0.0);
  if (std::isinf(mx)) {  // no class observed — uniform fallback
    std::fill(proba.begin(), proba.end(), 1.0 / static_cast<double>(k));
    return proba;
  }
  double total = 0.0;
  for (std::size_t c = 0; c < k; ++c) {
    proba[c] = std::exp(log_post[c] - mx);
    total += proba[c];
  }
  for (auto& p : proba) p /= total;
  return proba;
}

}  // namespace xdmodml::ml
