// K-means clustering with k-means++ seeding.
//
// §II lists "clustering" among the data-discovery techniques suited to
// SUPReMM data, and the abstract promises help "in characterizing the
// job mixture".  `bench_job_mixture` uses this to show that unsupervised
// clusters of standardized job summaries align strongly with the
// application labels — the unsupervised face of the signature claim.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace xdmodml::ml {

/// K-means configuration.
struct KMeansConfig {
  std::size_t clusters = 8;
  std::size_t max_iterations = 100;
  double tolerance = 1e-6;  ///< stop when inertia improves less than this
  std::size_t restarts = 4; ///< independent runs, best inertia wins
};

/// Clustering result.
struct KMeansResult {
  Matrix centroids;                  ///< clusters x dims
  std::vector<int> assignments;      ///< per input row
  double inertia = 0.0;              ///< sum of squared distances
  std::size_t iterations = 0;        ///< of the winning run
};

/// Runs k-means++ / Lloyd on the rows of X.
KMeansResult kmeans(const Matrix& X, const KMeansConfig& config,
                    std::uint64_t seed = 1);

/// Assigns one row to the nearest centroid.
int nearest_centroid(const Matrix& centroids, std::span<const double> x);

/// Cluster purity against reference labels: each cluster votes for its
/// majority label; purity = fraction of rows matching their cluster's
/// majority.  1.0 means clusters are label-pure.
double cluster_purity(std::span<const int> assignments,
                      std::span<const int> labels);

/// Adjusted-for-chance agreement is overkill here; the simpler
/// normalized mutual information is provided for the mixture study.
double normalized_mutual_information(std::span<const int> a,
                                     std::span<const int> b);

}  // namespace xdmodml::ml
