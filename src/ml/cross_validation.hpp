// K-fold cross-validation and hyper-parameter grid search.
//
// The paper states its SVM was "tuned with γ = 0.1 and C = 1000"; this
// module provides the tuning machinery: stratified k-fold CV over any
// classifier factory, and a (γ, C) grid search for the RBF SVM.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "ml/classifier.hpp"
#include "ml/dataset.hpp"
#include "ml/random_forest.hpp"
#include "ml/svm.hpp"
#include "util/rng.hpp"

namespace xdmodml::ml {

/// Builds a fresh, untrained classifier (one per fold).
using ClassifierFactory = std::function<std::unique_ptr<Classifier>()>;

/// Stratified fold assignment: fold_of[i] in [0, folds) with per-class
/// round-robin so every fold sees every class.
std::vector<std::size_t> stratified_folds(std::span<const int> labels,
                                          std::size_t folds, Rng& rng);

/// Result of a cross-validation run.
struct CvResult {
  std::vector<double> fold_accuracies;
  double mean_accuracy = 0.0;
  double stddev_accuracy = 0.0;
};

/// Runs stratified k-fold CV of `factory`'s classifier on the dataset.
/// Features are standardized per fold (fit on the training side only).
CvResult cross_validate(const Dataset& ds, const ClassifierFactory& factory,
                        std::size_t folds, std::uint64_t seed = 1);

/// Forest-specialized k-fold CV: every fold's training set is a row
/// subset of the same matrix, so the quantile-binned dataset is built
/// ONCE and shared across all folds (and all trees within each fold)
/// via `RandomForestClassifier::fit_rows` — the forest analogue of the
/// per-γ kernel-cache sharing in svm_grid_search.  Features are used
/// raw: trees are invariant to monotone per-feature transforms, so the
/// per-fold standardization of the generic path adds nothing here.
CvResult forest_cross_validate(const Dataset& ds, const ForestConfig& config,
                               std::size_t folds, std::uint64_t seed = 1);

/// One evaluated point of an SVM (γ, C) grid search.
struct GridPoint {
  double gamma = 0.0;
  double c = 0.0;
  double cv_accuracy = 0.0;
};

/// Knobs for the (γ, C) tuning sweep.
struct SvmGridSearchOptions {
  SvmGridSearchOptions() { base.probability = false; }

  std::size_t folds = 3;
  std::uint64_t seed = 1;
  /// Share one full-matrix kernel-row cache per γ across every C cell
  /// and every CV fold (the RBF Gram matrix depends on γ alone, and each
  /// fold's training set is a row subset of the full dataset).  Pure
  /// reuse: the accuracy table is bit-identical to per-cell refits,
  /// which remain available as the ablation/baseline arm.
  bool reuse_kernel_cache = true;
  /// Row storage precision of the tuning caches (and of the per-cell
  /// caches in the refit arm, so the two arms stay comparable).
  GramPrecision cache_precision = GramPrecision::kFloat32;
  /// Byte budget per per-γ tuning cache.
  std::size_t cache_bytes = 256ull << 20;
  /// Base SVM config; kernel, C, and cache_precision are overwritten per
  /// cell.  Defaults to probability = false (accuracy-only tuning); with
  /// probability on, Platt CV folds also slice out of the shared cache.
  SvmConfig base;
};

/// Grid-searches the RBF SVM over the cartesian product of `gammas` and
/// `cs`; returns all points, best first.  The fold assignment and the
/// feature standardization are hoisted out of the cell loop — one RNG
/// draw and one standardizer for the whole grid — so every cell trains
/// on identical fold splits (cross-cell deltas are signal, not fold
/// noise) and kernel rows can be shared across cells and folds.
std::vector<GridPoint> svm_grid_search(const Dataset& ds,
                                       std::span<const double> gammas,
                                       std::span<const double> cs,
                                       const SvmGridSearchOptions& options);

/// Convenience overload with default options (kernel reuse on).
std::vector<GridPoint> svm_grid_search(const Dataset& ds,
                                       std::span<const double> gammas,
                                       std::span<const double> cs,
                                       std::size_t folds = 3,
                                       std::uint64_t seed = 1);

}  // namespace xdmodml::ml
