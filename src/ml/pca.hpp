// Principal component analysis.
//
// The paper's §II lists "dimensionality reduction" among the techniques
// suited to SUPReMM data.  This PCA centers the data (optionally after
// z-scoring via Standardizer, which callers should do for SUPReMM's
// wildly mixed units), computes the covariance eigensystem with the
// Jacobi solver, and projects onto the leading components.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/matrix.hpp"

namespace xdmodml::ml {

/// Fitted PCA model.
class Pca {
 public:
  /// Fits on rows of X; keeps `components` directions (0 = all).
  void fit(const Matrix& X, std::size_t components = 0);

  bool fitted() const { return !eigenvalues_.empty(); }
  std::size_t num_components() const { return components_; }
  std::size_t input_dimension() const { return means_.size(); }

  /// Eigenvalues of the covariance (descending), all of them.
  std::span<const double> eigenvalues() const { return eigenvalues_; }

  /// Fraction of total variance captured by the first k components.
  double explained_variance_ratio(std::size_t k) const;

  /// Projects rows onto the retained components.
  Matrix transform(const Matrix& X) const;
  std::vector<double> transform_row(std::span<const double> x) const;

  /// Reconstructs from component space back to the original space.
  Matrix inverse_transform(const Matrix& Z) const;

 private:
  std::size_t components_ = 0;
  std::vector<double> means_;
  std::vector<double> eigenvalues_;
  Matrix basis_;  ///< input_dim x components_
};

}  // namespace xdmodml::ml
