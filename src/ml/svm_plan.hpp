// Compiled SVM inference plan: a deduplicated support-vector pool with
// SIMD-batched one-vs-one prediction.
//
// Serving is the traffic-facing hot path (the paper's §IV production
// goal pushes every Uncategorized/NA job through the 20-class RBF
// classifier), but the legacy `BinarySvm::decision_value` walks each
// machine's private support-vector copy with a scalar kernel call — a
// training row that supports many of the k(k−1)/2 one-vs-one machines
// has K(x, row) recomputed once per machine on every query.
//
// The plan fixes that once per model:
//  * all machines' support vectors are merged into ONE row-major pool of
//    unique rows — keyed on full-matrix row provenance (`sv_full_rows_`)
//    when every machine carries it, content (bit-exact row bytes)
//    otherwise — with per-row squared norms precomputed;
//  * prediction computes ONE fused kernel row K(x, pool) through the
//    runtime-dispatched SIMD microkernels (util/simd.hpp: the blocked
//    4-rows-per-pass dot sweep + vectorized RBF/poly transforms; the
//    scalar table serves XDMODML_SIMD=scalar builds/CPUs identically);
//  * each one-vs-one machine reduces its decision value as a sparse
//    coefficient dot over indices into that shared row;
//  * a batched entry point evaluates B queries per pool block, so a
//    block of support vectors is read from memory once per B queries.
//
// Storage precision mirrors GramPrecision: kFloat64 (the default) keeps
// decision values within ~1e-10 of the legacy scalar walk; kFloat32
// halves the pool bytes by quantizing support-vector *coordinates* to
// float (kernels are still evaluated in double on the widened values,
// and the precomputed norms are consistent with the quantized pool).
//
// The legacy path remains runtime-selectable via XDMODML_SVM_PREDICT
// (see SvmPredictMode below) and is bit-identical to its pre-plan
// behaviour — it is the differential arm the tier1-infer tests and
// bench_svm_infer compare against.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "ml/svm.hpp"

namespace xdmodml::ml {

/// Prediction-path selector.  kCompiled (default) routes SvmClassifier
/// prediction through the shared-pool plan; kLegacy keeps the original
/// per-machine scalar kernel walk (differential / ablation arm).
enum class SvmPredictMode { kLegacy, kCompiled };

/// The active mode.  Selected once on first use from the
/// XDMODML_SVM_PREDICT environment variable ("legacy" / "compiled";
/// anything else, or unset, means compiled).
SvmPredictMode svm_predict_mode();

/// Forces the mode (A/B testing, the differential test suite).
void set_svm_predict_mode(SvmPredictMode mode);

/// "legacy" / "compiled".
std::string_view svm_predict_mode_name(SvmPredictMode mode);

/// Parses an XDMODML_SVM_PREDICT value; nullopt for anything
/// unrecognized.  Exposed for tests.
std::optional<SvmPredictMode> svm_predict_mode_from_string(
    std::string_view name);

/// Immutable compiled inference plan over a set of trained one-vs-one
/// machines.  Build once (SvmClassifier does so after fit, or lazily and
/// thread-safely after load), then share freely: every method is const
/// and touches no mutable state.
class SvmInferencePlan {
 public:
  /// One machine's view into the pool: decision value
  ///   f(x) = Σ_s coef[s] · krow[sv_pool_idx[s]] − rho.
  struct MachineSlice {
    std::vector<std::uint32_t> sv_pool_idx;  ///< pool row per SV
    std::vector<double> coef;                ///< alpha_i · y_i, aligned
    double rho = 0.0;
    PlattSigmoid sigmoid{};
    bool has_platt = false;
  };

  /// Merges the machines' support vectors into the deduplicated pool.
  /// Keyed on sv_full_rows() provenance when every machine carries it
  /// (one fit's machines share a full-matrix keyspace), content hash
  /// with bit-exact verification otherwise.  Updates the svm.plan.*
  /// gauges.  Requires at least one trained machine.
  static std::shared_ptr<const SvmInferencePlan> build(
      std::span<const BinarySvm> machines, GramPrecision precision);

  std::size_t unique_support_vectors() const { return unique_; }
  std::size_t total_support_vectors() const { return total_; }
  /// total / unique — how many machines the average pool row serves.
  double dedup_ratio() const;
  std::size_t dims() const { return dims_; }
  GramPrecision precision() const { return precision_; }
  bool provenance_keyed() const { return provenance_; }
  /// Bytes of pool storage (support-vector payload at `precision`).
  std::size_t pool_bytes() const;
  const Kernel& kernel() const { return kernel_; }
  std::size_t num_machines() const { return machines_.size(); }
  const MachineSlice& machine(std::size_t idx) const {
    return machines_[idx];
  }

  /// out[j] = k(x, pool_j) for j in [0, unique_support_vectors()).
  /// One fused SIMD sweep; out.size() must be >= the pool size.
  void kernel_row(std::span<const double> x, std::span<double> out) const;

  /// Batched form: `queries` is b contiguous row-major query rows of
  /// dims() doubles; out is b × unique_support_vectors() row-major.
  /// Processes the pool block-outer / query-inner so each block of
  /// support vectors is streamed from memory once per b queries.
  void kernel_rows(const double* queries, std::size_t b, double* out) const;

  /// Decision value of machine `idx` against a kernel row produced by
  /// kernel_row(s) for the query.
  double decision_value(std::size_t idx,
                        std::span<const double> krow) const;

 private:
  SvmInferencePlan() = default;

  /// Pool rows [lo, hi) for one query: SIMD dot sweep + kernel
  /// transform into out[lo..hi).  `rows` is the (widened) block base.
  void transform_block(std::span<const double> x, double x_sq,
                       const double* rows, std::size_t lo, std::size_t hi,
                       double* out) const;

  Kernel kernel_;
  GramPrecision precision_ = GramPrecision::kFloat64;
  bool provenance_ = false;
  std::size_t dims_ = 0;
  std::size_t unique_ = 0;
  std::size_t total_ = 0;
  std::vector<double> pool_f64_;   ///< unique_ × dims_ (kFloat64 arm)
  std::vector<float> pool_f32_;    ///< unique_ × dims_ (kFloat32 arm)
  std::vector<double> sq_norms_;   ///< ‖pool_j‖² over the stored values
  bool integral_degree_ = false;   ///< polynomial degree is a small int
  std::uint64_t degree_int_ = 0;
  std::vector<MachineSlice> machines_;
};

}  // namespace xdmodml::ml
