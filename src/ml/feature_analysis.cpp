#include "ml/feature_analysis.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace xdmodml::ml {

Matrix correlation_matrix(const Matrix& X) {
  XDMODML_CHECK(X.rows() >= 2, "correlation requires >= 2 rows");
  const std::size_t d = X.cols();
  // Column means and stddevs.
  std::vector<double> mean(d, 0.0);
  std::vector<double> sd(d, 0.0);
  for (std::size_t c = 0; c < d; ++c) {
    RunningStats rs;
    for (std::size_t r = 0; r < X.rows(); ++r) rs.add(X(r, c));
    mean[c] = rs.mean();
    sd[c] = rs.stddev();
  }
  Matrix corr(d, d, 0.0);
  for (std::size_t i = 0; i < d; ++i) corr(i, i) = 1.0;
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i + 1; j < d; ++j) {
      if (sd[i] == 0.0 || sd[j] == 0.0) continue;  // constant column
      double s = 0.0;
      for (std::size_t r = 0; r < X.rows(); ++r) {
        s += (X(r, i) - mean[i]) * (X(r, j) - mean[j]);
      }
      const double r = s / (static_cast<double>(X.rows() - 1) * sd[i] * sd[j]);
      corr(i, j) = r;
      corr(j, i) = r;
    }
  }
  return corr;
}

std::vector<PrunedAttribute> prune_correlated(const Matrix& X,
                                              double threshold,
                                              std::size_t max_drops) {
  XDMODML_CHECK(threshold > 0.0 && threshold < 1.0,
                "threshold must be in (0, 1)");
  auto corr = correlation_matrix(X);
  const std::size_t d = corr.rows();
  std::vector<bool> alive(d, true);
  std::vector<PrunedAttribute> pruned;

  auto mean_abs_corr = [&](std::size_t i) {
    double s = 0.0;
    std::size_t count = 0;
    for (std::size_t j = 0; j < d; ++j) {
      if (j == i || !alive[j]) continue;
      s += std::abs(corr(i, j));
      ++count;
    }
    return count == 0 ? 0.0 : s / static_cast<double>(count);
  };

  while (pruned.size() < max_drops) {
    double best = threshold;
    std::size_t bi = d;
    std::size_t bj = d;
    for (std::size_t i = 0; i < d; ++i) {
      if (!alive[i]) continue;
      for (std::size_t j = i + 1; j < d; ++j) {
        if (!alive[j]) continue;
        if (std::abs(corr(i, j)) > best) {
          best = std::abs(corr(i, j));
          bi = i;
          bj = j;
        }
      }
    }
    if (bi == d) break;  // no pair above threshold
    // Drop the member more entangled with the rest of the attributes.
    const std::size_t drop = mean_abs_corr(bi) >= mean_abs_corr(bj) ? bi : bj;
    const std::size_t keep = drop == bi ? bj : bi;
    alive[drop] = false;
    pruned.push_back({drop, keep, best});
  }
  return pruned;
}

std::vector<std::size_t> surviving_columns(
    std::size_t num_columns, const std::vector<PrunedAttribute>& pruned) {
  std::vector<bool> alive(num_columns, true);
  for (const auto& p : pruned) {
    XDMODML_CHECK(p.dropped < num_columns, "pruned index out of range");
    alive[p.dropped] = false;
  }
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < num_columns; ++i) {
    if (alive[i]) out.push_back(i);
  }
  return out;
}

}  // namespace xdmodml::ml
