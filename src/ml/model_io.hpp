// Token-stream helpers for model serialization.
//
// Models serialize to a line-oriented text format: a header token, then
// tagged fields.  The format is versioned per model type; loaders
// validate every tag and throw InvalidArgument on mismatch, so a
// truncated or foreign file cannot produce a silently wrong model.
//
// Each model class exposes `save(std::ostream&)` and a static
// `load(std::istream&)`; this header provides the shared reader/writer
// plumbing they use.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace xdmodml::ml::io {

/// Writes a tagged scalar / vector line.
void write_tag(std::ostream& out, const std::string& tag);
void write_scalar(std::ostream& out, const std::string& tag, double value);
void write_scalar(std::ostream& out, const std::string& tag,
                  std::int64_t value);
void write_string(std::ostream& out, const std::string& tag,
                  const std::string& value);
void write_vector(std::ostream& out, const std::string& tag,
                  std::span<const double> values);
/// Index vectors (row provenance) serialize as exact integers, not the
/// max_digits10 doubles of write_vector.
void write_index_vector(std::ostream& out, const std::string& tag,
                        std::span<const std::size_t> values);

/// Token reader with tag validation.
class TokenReader {
 public:
  explicit TokenReader(std::istream& in) : in_(in) {}

  /// Consumes exactly `tag` or throws.
  void expect(const std::string& tag);

  /// Consumes and returns the next token — for versioned headers where
  /// the loader must branch on which tag it finds (e.g. binary-svm-v1
  /// vs binary-svm-v2) instead of demanding one exact spelling.
  std::string read_tag();

  double read_double(const std::string& tag);
  std::int64_t read_int(const std::string& tag);
  std::string read_string(const std::string& tag);
  std::vector<double> read_vector(const std::string& tag);
  std::vector<std::size_t> read_index_vector(const std::string& tag);

 private:
  std::string next_token();
  std::istream& in_;
};

}  // namespace xdmodml::ml::io
