#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <numeric>

#include "ml/binned_dataset.hpp"
#include "ml/model_io.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"

namespace xdmodml::ml {

SplitAlgo resolve_split_algo(SplitAlgo requested) {
  if (requested != SplitAlgo::kAuto) return requested;
  static const SplitAlgo from_env = [] {
    if (const char* v = std::getenv("XDMODML_TREE_SPLIT")) {
      if (std::strcmp(v, "exact") == 0) return SplitAlgo::kExact;
      if (std::strcmp(v, "hist") == 0) return SplitAlgo::kHist;
      std::fprintf(stderr,
                   "xdmodml: XDMODML_TREE_SPLIT=%s unknown (want exact or "
                   "hist); using hist\n",
                   v);
    }
    return SplitAlgo::kHist;
  }();
  return from_env;
}

}  // namespace xdmodml::ml

namespace xdmodml::ml::detail {

namespace {

/// Gini impurity of a class-count vector with `total` samples.
double gini(std::span<const std::size_t> counts, std::size_t total) {
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  for (const auto c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

/// Same impurity over integral counts stored as doubles (histogram
/// accumulators).  The arithmetic matches `gini` exactly: an integral
/// double divided by double(total) is the same value the size_t version
/// computes, so the two split arms score identical partitions
/// identically.
double gini_counts(std::span<const double> counts, std::size_t total) {
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  for (const double c : counts) {
    const double p = c / static_cast<double>(total);
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

/// Histogram storage is capped at this recursion depth: below it every
/// stored level costs up to ~mtry histograms of max_bins · width doubles,
/// and a pathological 1/(n−1) split chain would otherwise hold one level
/// per sample.  Deeper nodes fall back to direct accumulation (they are
/// almost always tiny anyway).
constexpr std::size_t kMaxStoredLevels = 64;

}  // namespace

struct TreeEngine::BuildContext {
  const Matrix* X = nullptr;
  std::span<const int> y_class;
  std::span<const double> y_value;
  std::vector<std::size_t> samples;  // reordered in place during the build
  Rng* rng = nullptr;
  // Scratch buffers reused across nodes (hoisted out of the split loop so
  // neither arm touches the allocator per candidate feature).
  std::vector<std::size_t> feature_pool;
  std::vector<std::pair<double, std::size_t>> sorted;  // (value, sample idx)
  std::vector<std::size_t> node_counts;  // per-class counts of the node
  std::vector<std::size_t> left_counts;  // exact-arm running counts
  std::vector<std::size_t> right_counts;

  // ---- histogram-arm (kHist) state ----
  SplitAlgo algo = SplitAlgo::kExact;
  bool classification = true;
  const BinnedDataset* binned = nullptr;
  std::size_t width = 0;  // doubles per bin: num_classes, or 3 for regression

  /// One feature's histogram: `data` is num_bins(feature) · width doubles
  /// (class counts, or count/sum/sumsq triples), `touched` the sorted
  /// bins that hold at least one sample.  Invariant: every slot outside
  /// `touched` is zero, so reusing a buffer only needs the touched slots
  /// rezeroed.
  struct HistSlot {
    int feature = -1;
    std::vector<double> data;
    std::vector<std::uint16_t> touched;
  };

  /// Per-depth histogram store for the subtraction trick.  `own` holds
  /// the histograms of the node currently being built at this depth (its
  /// children subtract against them); after that node's subtree finishes,
  /// the claim of the *next* node at the same depth — its right sibling —
  /// swaps them into `sibling`, where they serve as the already-built
  /// smaller-child histograms.
  struct LevelStore {
    std::vector<HistSlot> own;
    std::size_t own_begin = 0, own_end = 0;
    std::size_t own_used = 0;  // active prefix of `own`
    std::vector<HistSlot> sibling;
    std::size_t sib_begin = 0, sib_end = 0;
    std::size_t sib_used = 0;
  };

  std::vector<LevelStore> levels;
  HistSlot scratch_hist;  // destination for nodes below the storage gate
  HistSlot scratch_sib;   // lazily built sibling histograms
  std::vector<std::uint32_t> bin_stamp;  // touched-bin dedup (kMaxBins)
  std::uint32_t stamp_gen = 0;
  std::vector<double> node_stats;          // node totals (width doubles)
  std::vector<double> left_acc, right_acc; // hist-scan running stats

  // Per-fit tallies, flushed to util/metrics once per fit (coarse sites).
  std::uint64_t tally_nodes = 0;
  std::uint64_t tally_sorted_values = 0;
  std::uint64_t tally_hist_built = 0;
  std::uint64_t tally_hist_subtracted = 0;
  std::uint64_t tally_scan_bins = 0;

  /// Restores a slot to the all-zero state and sizes it for `bins` bins.
  static void reset_slot(HistSlot& h, std::size_t bins, std::size_t width) {
    for (const auto b : h.touched) {
      std::fill_n(h.data.data() + b * width, width, 0.0);
    }
    h.touched.clear();
    if (h.data.size() < bins * width) h.data.resize(bins * width, 0.0);
    h.feature = -1;
  }

  /// Marks `depth` as occupied by the node [begin, end): the previous
  /// occupant's histograms (this node's left sibling, when one exists)
  /// move to the sibling slot, and `own` is cleared for this node.  Every
  /// node claims its level — even ones that store nothing — so a child's
  /// parent lookup at levels[depth-1] is always *this* lineage, never a
  /// stale subtree.
  void claim_level(std::size_t depth, std::size_t begin, std::size_t end) {
    if (levels.size() <= depth) levels.resize(depth + 1);
    LevelStore& lv = levels[depth];
    std::swap(lv.own, lv.sibling);
    lv.sib_begin = lv.own_begin;
    lv.sib_end = lv.own_end;
    lv.sib_used = lv.own_used;
    lv.own_begin = begin;
    lv.own_end = end;
    lv.own_used = 0;
  }

  /// One O(n) accumulation pass over ctx.samples[begin, end) into `h`
  /// (which must be all-zero).  Touched bins are deduplicated with a
  /// generation stamp and sorted afterwards, so the scan and the
  /// threshold reconstruction see bins in ascending value order.
  void accumulate(std::size_t f, std::size_t begin, std::size_t end,
                  HistSlot& h) {
    const std::uint8_t* col = binned->column(f);
    const auto gen = ++stamp_gen;
    if (classification) {
      for (std::size_t i = begin; i < end; ++i) {
        const std::size_t s = samples[i];
        const std::uint8_t b = col[s];
        if (bin_stamp[b] != gen) {
          bin_stamp[b] = gen;
          h.touched.push_back(b);
        }
        h.data[b * width + static_cast<std::size_t>(y_class[s])] += 1.0;
      }
    } else {
      for (std::size_t i = begin; i < end; ++i) {
        const std::size_t s = samples[i];
        const std::uint8_t b = col[s];
        if (bin_stamp[b] != gen) {
          bin_stamp[b] = gen;
          h.touched.push_back(b);
        }
        double* slot = h.data.data() + b * 3;
        const double v = y_value[s];
        slot[0] += 1.0;
        slot[1] += v;
        slot[2] += v * v;
      }
    }
    std::sort(h.touched.begin(), h.touched.end());
    ++tally_hist_built;
  }

  /// dst := parent − sib over the parent's touched bins.  Class counts
  /// subtract exactly (integral doubles); regression sums can leave
  /// ~1e-17 residue in bins whose count reaches zero, so those slots are
  /// rezeroed explicitly to keep the all-zero-outside-touched invariant.
  void subtract(const HistSlot& parent, const HistSlot& sib, HistSlot& dst) {
    for (const auto b : parent.touched) {
      double* o = dst.data.data() + b * width;
      const double* p = parent.data.data() + b * width;
      const double* s = sib.data.data() + b * width;
      double count = 0.0;
      if (classification) {
        for (std::size_t c = 0; c < width; ++c) {
          o[c] = p[c] - s[c];
          count += o[c];
        }
      } else {
        for (std::size_t c = 0; c < 3; ++c) o[c] = p[c] - s[c];
        count = o[0];
      }
      if (count > 0.0) {
        dst.touched.push_back(b);
      } else {
        std::fill_n(o, width, 0.0);
      }
    }
    ++tally_hist_subtracted;
  }

  /// Histogram of feature f over the node [begin, end), by the cheapest
  /// available route: subtract the stored sibling histogram from the
  /// parent's, lazily build the (smaller) sibling and subtract, or
  /// accumulate directly.  With `store` the result lands in this level's
  /// own store so children and the right sibling can subtract against it.
  const HistSlot* node_hist(std::size_t depth, std::size_t f,
                            std::size_t begin, std::size_t end, bool store) {
    LevelStore& lv = levels[depth];
    HistSlot* dst;
    if (store) {
      if (lv.own_used == lv.own.size()) lv.own.emplace_back();
      dst = &lv.own[lv.own_used];
    } else {
      dst = &scratch_hist;
    }
    reset_slot(*dst, binned->num_bins(f), width);
    dst->feature = static_cast<int>(f);

    const std::size_t n = end - begin;
    const HistSlot* parent = nullptr;
    std::size_t parent_begin = 0;
    std::size_t parent_end = 0;
    if (depth > 0) {
      LevelStore& up = levels[depth - 1];
      parent_begin = up.own_begin;  // claim protocol: always this node's parent
      parent_end = up.own_end;
      for (std::size_t i = 0; i < up.own_used; ++i) {
        if (up.own[i].feature == static_cast<int>(f)) {
          parent = &up.own[i];
          break;
        }
      }
    }

    bool filled = false;
    if (parent != nullptr) {
      // Cost of one subtraction pass, vs ~n for a direct accumulation.
      const std::size_t cost_sub = parent->touched.size() * width;
      const HistSlot* sib = nullptr;
      if (lv.sib_begin == parent_begin && lv.sib_end == begin &&
          begin > parent_begin) {
        // Right child: the left sibling's store survived its subtree
        // (deeper levels never touch this slot) and covers [parent, me).
        for (std::size_t i = 0; i < lv.sib_used; ++i) {
          if (lv.sibling[i].feature == static_cast<int>(f)) {
            sib = &lv.sibling[i];
            break;
          }
        }
      }
      if (sib != nullptr && cost_sub < 2 * n) {
        subtract(*parent, *sib, *dst);
        filled = true;
      } else if (sib == nullptr) {
        // Lazy sibling build: the sibling's sample range is still intact
        // as a multiset (the partition put it there; only its own subtree
        // reorders it), so its histogram can be built now.  Worth it when
        // sibling-scan + subtraction beats a direct scan — i.e. when this
        // node is the larger child.
        const std::size_t n_sib = (parent_end - parent_begin) - n;
        if (n_sib + cost_sub < n) {
          const std::size_t sib_lo = begin == parent_begin ? end : parent_begin;
          const std::size_t sib_hi = begin == parent_begin ? parent_end : begin;
          reset_slot(scratch_sib, binned->num_bins(f), width);
          accumulate(f, sib_lo, sib_hi, scratch_sib);
          subtract(*parent, scratch_sib, *dst);
          filled = true;
        }
      }
    }
    if (!filled) accumulate(f, begin, end, *dst);
    if (store) ++lv.own_used;
    return dst;
  }
};

void TreeEngine::fit(const Matrix& X, std::span<const int> y_class,
                     std::span<const double> y_value, int num_classes,
                     std::span<const std::size_t> sample_indices, Rng& rng,
                     const BinnedDataset* binned) {
  XDMODML_CHECK(!sample_indices.empty(), "tree fit requires samples");
  if (task_ == Task::kClassification) {
    XDMODML_CHECK(num_classes > 0, "classification requires num_classes");
    XDMODML_CHECK(y_class.size() == X.rows(), "labels must match rows");
  } else {
    XDMODML_CHECK(y_value.size() == X.rows(), "targets must match rows");
  }
  num_classes_ = num_classes;
  num_features_ = X.cols();
  nodes_.clear();
  impurity_importance_.assign(num_features_, 0.0);

  BuildContext ctx;
  ctx.X = &X;
  ctx.y_class = y_class;
  ctx.y_value = y_value;
  ctx.samples.assign(sample_indices.begin(), sample_indices.end());
  ctx.rng = &rng;
  ctx.feature_pool.resize(num_features_);
  std::iota(ctx.feature_pool.begin(), ctx.feature_pool.end(), 0);
  ctx.algo = resolve_split_algo(config_.split_algo);
  ctx.classification = task_ == Task::kClassification;

  std::unique_ptr<BinnedDataset> owned;
  if (ctx.algo == SplitAlgo::kHist) {
    if (binned == nullptr) {
      owned = std::make_unique<BinnedDataset>(X);
      binned = owned.get();
    }
    XDMODML_CHECK(binned->rows() == X.rows() &&
                      binned->features() == X.cols(),
                  "binned dataset does not match X");
    ctx.binned = binned;
    ctx.width =
        ctx.classification ? static_cast<std::size_t>(num_classes) : 3;
    ctx.bin_stamp.assign(BinnedDataset::kMaxBins, 0);
  }

  build_node(ctx, 0, ctx.samples.size(), 0);

  // Flush the per-fit tallies: one batch of relaxed adds per fit, never
  // per node or per bin.
  auto& registry = obs::MetricsRegistry::instance();
  static auto& nodes_counter = registry.counter("tree.nodes");
  static auto& sorted_counter = registry.counter("tree.exact_sorted_values");
  static auto& built_counter = registry.counter("tree.hist_built");
  static auto& subtracted_counter = registry.counter("tree.hist_subtracted");
  static auto& scan_counter = registry.counter("tree.hist_scan_bins");
  nodes_counter.inc(ctx.tally_nodes);
  sorted_counter.inc(ctx.tally_sorted_values);
  built_counter.inc(ctx.tally_hist_built);
  subtracted_counter.inc(ctx.tally_hist_subtracted);
  scan_counter.inc(ctx.tally_scan_bins);
}

std::size_t TreeEngine::build_node(BuildContext& ctx, std::size_t begin,
                                   std::size_t end, std::size_t depth_now) {
  const Matrix& X = *ctx.X;
  const std::size_t n = end - begin;
  const std::size_t node_index = nodes_.size();
  nodes_.emplace_back();
  ++ctx.tally_nodes;

  const bool hist = ctx.algo == SplitAlgo::kHist;
  if (hist) ctx.claim_level(depth_now, begin, end);

  // Node statistics.
  auto& counts = ctx.node_counts;
  double sum = 0.0;
  double sum_sq = 0.0;
  if (task_ == Task::kClassification) {
    counts.assign(static_cast<std::size_t>(num_classes_), 0);
    for (std::size_t i = begin; i < end; ++i) {
      ++counts[static_cast<std::size_t>(ctx.y_class[ctx.samples[i]])];
    }
  } else {
    for (std::size_t i = begin; i < end; ++i) {
      const double v = ctx.y_value[ctx.samples[i]];
      sum += v;
      sum_sq += v * v;
    }
  }
  const double node_impurity =
      task_ == Task::kClassification
          ? gini(counts, n)
          : std::max(0.0, sum_sq / static_cast<double>(n) -
                              (sum / static_cast<double>(n)) *
                                  (sum / static_cast<double>(n)));

  auto make_leaf = [&]() {
    TreeNode& leaf = nodes_[node_index];
    leaf.feature = -1;
    if (task_ == Task::kClassification) {
      leaf.class_probs.resize(counts.size());
      for (std::size_t c = 0; c < counts.size(); ++c) {
        leaf.class_probs[c] =
            static_cast<double>(counts[c]) / static_cast<double>(n);
      }
    } else {
      leaf.value = sum / static_cast<double>(n);
    }
    return node_index;
  };

  const bool pure =
      task_ == Task::kClassification
          ? std::count_if(counts.begin(), counts.end(),
                          [](std::size_t c) { return c > 0; }) <= 1
          : node_impurity <= 1e-12;
  if (pure || n < config_.min_samples_split ||
      (config_.max_depth != 0 && depth_now >= config_.max_depth)) {
    return make_leaf();
  }

  // Feature subset for this split.  Features that are constant within
  // the node do not count against the mtry budget (the scikit-learn
  // convention): the lazy Fisher–Yates below keeps drawing fresh features
  // until mtry *splittable* candidates have been scored or the pool is
  // exhausted.  Without this, one-hot-heavy feature spaces starve small
  // mtry values of usable candidates.  Both split arms draw features the
  // same way, so on data where binning is lossless (every distinct value
  // in its own bin) their RNG streams — and therefore their trees — stay
  // aligned.
  const std::size_t mtry =
      config_.max_features == 0
          ? num_features_
          : std::min(config_.max_features, num_features_);

  int best_feature = -1;
  double best_threshold = 0.0;
  double best_gain = config_.min_impurity_decrease;
  int best_bin = -1;
  std::size_t evaluated = 0;

  if (hist) {
    // Histograms are kept for the subtraction trick only on nodes large
    // enough that a child rescan would dominate the buffer cost, with a
    // depth cap bounding worst-case memory.
    const bool store = n >= 2 * ctx.binned->max_bins_used() &&
                       depth_now < kMaxStoredLevels;
    auto& totals = ctx.node_stats;
    if (task_ == Task::kClassification) {
      totals.resize(ctx.width);
      for (std::size_t c = 0; c < ctx.width; ++c) {
        totals[c] = static_cast<double>(counts[c]);
      }
    } else {
      totals.assign({static_cast<double>(n), sum, sum_sq});
    }
    for (std::size_t fi = 0; fi < num_features_ && evaluated < mtry; ++fi) {
      const std::size_t j =
          fi + static_cast<std::size_t>(ctx.rng->uniform_index(
                   static_cast<std::uint64_t>(num_features_ - fi)));
      std::swap(ctx.feature_pool[fi], ctx.feature_pool[j]);
      const std::size_t f = ctx.feature_pool[fi];
      const auto* h = ctx.node_hist(depth_now, f, begin, end, store);
      const auto& touched = h->touched;
      if (touched.size() < 2) continue;  // constant within this node
      ++evaluated;
      ctx.tally_scan_bins += touched.size();

      auto& left = ctx.left_acc;
      auto& right = ctx.right_acc;
      left.assign(ctx.width, 0.0);
      right.assign(totals.begin(), totals.end());
      if (task_ == Task::kClassification) {
        std::size_t nl = 0;
        for (std::size_t t = 0; t + 1 < touched.size(); ++t) {
          const double* hb = h->data.data() + touched[t] * ctx.width;
          double moved = 0.0;
          for (std::size_t c = 0; c < ctx.width; ++c) {
            left[c] += hb[c];
            right[c] -= hb[c];
            moved += hb[c];
          }
          nl += static_cast<std::size_t>(moved);
          const std::size_t nr = n - nl;
          if (nl < config_.min_samples_leaf ||
              nr < config_.min_samples_leaf) {
            continue;
          }
          const double gain =
              node_impurity -
              (static_cast<double>(nl) * gini_counts(left, nl) +
               static_cast<double>(nr) * gini_counts(right, nr)) /
                  static_cast<double>(n);
          if (gain > best_gain) {
            best_gain = gain;
            best_feature = static_cast<int>(f);
            best_bin = touched[t];
            best_threshold =
                ctx.binned->split_threshold(f, touched[t], touched[t + 1]);
          }
        }
      } else {
        const auto min_leaf =
            static_cast<double>(config_.min_samples_leaf);
        for (std::size_t t = 0; t + 1 < touched.size(); ++t) {
          const double* hb = h->data.data() + touched[t] * 3;
          for (std::size_t c = 0; c < 3; ++c) {
            left[c] += hb[c];
            right[c] -= hb[c];
          }
          const double nl = left[0];
          const double nr = right[0];
          if (nl < min_leaf || nr < min_leaf) continue;
          const double var_l = std::max(
              0.0, left[2] / nl - (left[1] / nl) * (left[1] / nl));
          const double var_r = std::max(
              0.0, right[2] / nr - (right[1] / nr) * (right[1] / nr));
          const double gain = node_impurity -
                              (nl * var_l + nr * var_r) /
                                  static_cast<double>(n);
          if (gain > best_gain) {
            best_gain = gain;
            best_feature = static_cast<int>(f);
            best_bin = touched[t];
            best_threshold =
                ctx.binned->split_threshold(f, touched[t], touched[t + 1]);
          }
        }
      }
    }
  } else {
    for (std::size_t fi = 0; fi < num_features_ && evaluated < mtry; ++fi) {
      // Lazy partial shuffle: position fi gets a uniform draw from the
      // remaining pool.
      const std::size_t j =
          fi + static_cast<std::size_t>(ctx.rng->uniform_index(
                   static_cast<std::uint64_t>(num_features_ - fi)));
      std::swap(ctx.feature_pool[fi], ctx.feature_pool[j]);
      const std::size_t f = ctx.feature_pool[fi];
      auto& sorted = ctx.sorted;
      sorted.clear();
      sorted.reserve(n);
      for (std::size_t i = begin; i < end; ++i) {
        sorted.emplace_back(X(ctx.samples[i], f), ctx.samples[i]);
      }
      std::sort(sorted.begin(), sorted.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      ctx.tally_sorted_values += n;
      if (sorted.front().first == sorted.back().first) continue;  // constant
      ++evaluated;

      if (task_ == Task::kClassification) {
        auto& left_counts = ctx.left_counts;
        auto& right_counts = ctx.right_counts;
        left_counts.assign(counts.size(), 0);
        right_counts = counts;
        for (std::size_t i = 0; i + 1 < n; ++i) {
          const auto cls =
              static_cast<std::size_t>(ctx.y_class[sorted[i].second]);
          ++left_counts[cls];
          --right_counts[cls];
          if (sorted[i].first == sorted[i + 1].first) continue;
          const std::size_t nl = i + 1;
          const std::size_t nr = n - nl;
          if (nl < config_.min_samples_leaf || nr < config_.min_samples_leaf) {
            continue;
          }
          const double gain =
              node_impurity -
              (static_cast<double>(nl) * gini(left_counts, nl) +
               static_cast<double>(nr) * gini(right_counts, nr)) /
                  static_cast<double>(n);
          if (gain > best_gain) {
            best_gain = gain;
            best_feature = static_cast<int>(f);
            best_threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
          }
        }
      } else {
        double left_sum = 0.0;
        double left_sq = 0.0;
        double right_sum = sum;
        double right_sq = sum_sq;
        for (std::size_t i = 0; i + 1 < n; ++i) {
          const double v = ctx.y_value[sorted[i].second];
          left_sum += v;
          left_sq += v * v;
          right_sum -= v;
          right_sq -= v * v;
          if (sorted[i].first == sorted[i + 1].first) continue;
          const auto nl = static_cast<double>(i + 1);
          const auto nr = static_cast<double>(n - i - 1);
          if (i + 1 < config_.min_samples_leaf ||
              n - i - 1 < config_.min_samples_leaf) {
            continue;
          }
          const double var_l = std::max(0.0, left_sq / nl -
                                                 (left_sum / nl) *
                                                     (left_sum / nl));
          const double var_r = std::max(0.0, right_sq / nr -
                                                 (right_sum / nr) *
                                                     (right_sum / nr));
          const double gain = node_impurity -
                              (nl * var_l + nr * var_r) /
                                  static_cast<double>(n);
          if (gain > best_gain) {
            best_gain = gain;
            best_feature = static_cast<int>(f);
            best_threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
          }
        }
      }
    }
  }

  if (best_feature < 0) return make_leaf();

  // Partition ctx.samples[begin, end) around the chosen split.  The hist
  // arm partitions by bin code — the same sample set that thresholding
  // the raw values would select, resolved with one byte compare per
  // sample.
  std::size_t mid;
  if (hist) {
    const std::uint8_t* col =
        ctx.binned->column(static_cast<std::size_t>(best_feature));
    const auto bin = static_cast<std::uint8_t>(best_bin);
    auto* mid_it = std::partition(
        ctx.samples.data() + begin, ctx.samples.data() + end,
        [col, bin](std::size_t s) { return col[s] <= bin; });
    mid = static_cast<std::size_t>(mid_it - ctx.samples.data());
  } else {
    auto* mid_it = std::partition(
        ctx.samples.data() + begin, ctx.samples.data() + end,
        [&](std::size_t s) {
          return X(s, static_cast<std::size_t>(best_feature)) <=
                 best_threshold;
        });
    mid = static_cast<std::size_t>(mid_it - ctx.samples.data());
  }
  if (mid == begin || mid == end) return make_leaf();  // numeric edge case

  impurity_importance_[static_cast<std::size_t>(best_feature)] +=
      best_gain * static_cast<double>(n);

  // Fill the split node; children are built afterwards so their indices
  // are known only post-recursion.  Left before right: the left child's
  // level store must be in place when the right sibling claims the level.
  nodes_[node_index].feature = best_feature;
  nodes_[node_index].threshold = best_threshold;
  const std::size_t left_index = build_node(ctx, begin, mid, depth_now + 1);
  const std::size_t right_index = build_node(ctx, mid, end, depth_now + 1);
  nodes_[node_index].left = left_index;
  nodes_[node_index].right = right_index;
  return node_index;
}

const TreeNode& TreeEngine::descend(std::span<const double> x) const {
  XDMODML_CHECK(trained(), "tree used before fit");
  XDMODML_CHECK(x.size() == num_features_, "feature width mismatch");
  std::size_t i = 0;
  while (nodes_[i].feature >= 0) {
    const auto f = static_cast<std::size_t>(nodes_[i].feature);
    i = x[f] <= nodes_[i].threshold ? nodes_[i].left : nodes_[i].right;
  }
  return nodes_[i];
}

std::span<const double> TreeEngine::leaf_probs(
    std::span<const double> x) const {
  return descend(x).class_probs;
}

double TreeEngine::leaf_value(std::span<const double> x) const {
  return descend(x).value;
}

void TreeEngine::save(std::ostream& out) const {
  XDMODML_CHECK(trained(), "cannot save an untrained tree");
  io::write_tag(out, "tree-v1");
  io::write_scalar(out, "task",
                   static_cast<std::int64_t>(
                       task_ == Task::kClassification ? 0 : 1));
  io::write_scalar(out, "classes",
                   static_cast<std::int64_t>(num_classes_));
  io::write_scalar(out, "features",
                   static_cast<std::int64_t>(num_features_));
  io::write_scalar(out, "nodes", static_cast<std::int64_t>(nodes_.size()));
  for (const auto& node : nodes_) {
    io::write_scalar(out, "f", static_cast<std::int64_t>(node.feature));
    io::write_scalar(out, "t", node.threshold);
    io::write_scalar(out, "l", static_cast<std::int64_t>(node.left));
    io::write_scalar(out, "r", static_cast<std::int64_t>(node.right));
    io::write_scalar(out, "v", node.value);
    io::write_vector(out, "p", node.class_probs);
  }
  io::write_vector(out, "importance", impurity_importance_);
}

TreeEngine TreeEngine::load(std::istream& in) {
  io::TokenReader reader(in);
  reader.expect("tree-v1");
  const auto task = reader.read_int("task");
  XDMODML_CHECK(task == 0 || task == 1, "corrupt tree task");
  TreeEngine engine(task == 0 ? Task::kClassification : Task::kRegression,
                    TreeConfig{});
  engine.num_classes_ = static_cast<int>(reader.read_int("classes"));
  engine.num_features_ =
      static_cast<std::size_t>(reader.read_int("features"));
  const auto node_count = reader.read_int("nodes");
  XDMODML_CHECK(node_count > 0, "corrupt tree node count");
  engine.nodes_.resize(static_cast<std::size_t>(node_count));
  for (std::size_t idx = 0; idx < engine.nodes_.size(); ++idx) {
    auto& node = engine.nodes_[idx];
    node.feature = static_cast<int>(reader.read_int("f"));
    node.threshold = reader.read_double("t");
    node.left = static_cast<std::size_t>(reader.read_int("l"));
    node.right = static_cast<std::size_t>(reader.read_int("r"));
    node.value = reader.read_double("v");
    node.class_probs = reader.read_vector("p");
    XDMODML_CHECK(node.feature >= -1 &&
                      node.feature < static_cast<int>(engine.num_features_),
                  "corrupt tree feature index");
    if (node.feature >= 0) {
      // The builder emits children after their parent, so every edge
      // points strictly forward.  Anything else — a self-loop, a back
      // edge to an ancestor — would make descend() spin forever on a
      // crafted payload.
      XDMODML_CHECK(node.left > idx && node.left < engine.nodes_.size() &&
                        node.right > idx &&
                        node.right < engine.nodes_.size(),
                    "corrupt tree child index");
    } else if (task == 0) {
      XDMODML_CHECK(node.class_probs.size() ==
                        static_cast<std::size_t>(engine.num_classes_),
                    "corrupt tree leaf distribution");
    }
  }
  engine.impurity_importance_ = reader.read_vector("importance");
  return engine;
}

std::size_t TreeEngine::depth() const {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the node vector.
  std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 1}};
  std::size_t max_depth = 0;
  while (!stack.empty()) {
    const auto [idx, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    if (nodes_[idx].feature >= 0) {
      stack.emplace_back(nodes_[idx].left, d + 1);
      stack.emplace_back(nodes_[idx].right, d + 1);
    }
  }
  return max_depth;
}

}  // namespace xdmodml::ml::detail

namespace xdmodml::ml {

DecisionTreeClassifier::DecisionTreeClassifier(TreeConfig config,
                                               std::uint64_t seed)
    : engine_(detail::TreeEngine::Task::kClassification, config),
      rng_(seed) {}

void DecisionTreeClassifier::fit(const Matrix& X, std::span<const int> y,
                                 int num_classes) {
  num_classes_ = num_classes;
  std::vector<std::size_t> all(X.rows());
  std::iota(all.begin(), all.end(), 0);
  engine_.fit(X, y, {}, num_classes, all, rng_);
}

std::vector<double> DecisionTreeClassifier::predict_proba(
    std::span<const double> x) const {
  const auto probs = engine_.leaf_probs(x);
  return {probs.begin(), probs.end()};
}

DecisionTreeRegressor::DecisionTreeRegressor(TreeConfig config,
                                             std::uint64_t seed)
    : engine_(detail::TreeEngine::Task::kRegression, config), rng_(seed) {}

void DecisionTreeRegressor::fit(const Matrix& X, std::span<const double> y) {
  std::vector<std::size_t> all(X.rows());
  std::iota(all.begin(), all.end(), 0);
  engine_.fit(X, {}, y, 0, all, rng_);
}

double DecisionTreeRegressor::predict(std::span<const double> x) const {
  return engine_.leaf_value(x);
}

}  // namespace xdmodml::ml
