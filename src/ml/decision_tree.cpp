#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ml/model_io.hpp"
#include "util/error.hpp"

namespace xdmodml::ml::detail {

namespace {

/// Gini impurity of a class-count vector with `total` samples.
double gini(std::span<const std::size_t> counts, std::size_t total) {
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  for (const auto c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

}  // namespace

struct TreeEngine::BuildContext {
  const Matrix* X = nullptr;
  std::span<const int> y_class;
  std::span<const double> y_value;
  std::vector<std::size_t> samples;  // reordered in place during the build
  Rng* rng = nullptr;
  // Scratch buffers reused across nodes.
  std::vector<std::size_t> feature_pool;
  std::vector<std::pair<double, std::size_t>> sorted;  // (value, sample idx)
};

void TreeEngine::fit(const Matrix& X, std::span<const int> y_class,
                     std::span<const double> y_value, int num_classes,
                     std::span<const std::size_t> sample_indices, Rng& rng) {
  XDMODML_CHECK(!sample_indices.empty(), "tree fit requires samples");
  if (task_ == Task::kClassification) {
    XDMODML_CHECK(num_classes > 0, "classification requires num_classes");
    XDMODML_CHECK(y_class.size() == X.rows(), "labels must match rows");
  } else {
    XDMODML_CHECK(y_value.size() == X.rows(), "targets must match rows");
  }
  num_classes_ = num_classes;
  num_features_ = X.cols();
  nodes_.clear();
  impurity_importance_.assign(num_features_, 0.0);

  BuildContext ctx;
  ctx.X = &X;
  ctx.y_class = y_class;
  ctx.y_value = y_value;
  ctx.samples.assign(sample_indices.begin(), sample_indices.end());
  ctx.rng = &rng;
  ctx.feature_pool.resize(num_features_);
  std::iota(ctx.feature_pool.begin(), ctx.feature_pool.end(), 0);

  build_node(ctx, 0, ctx.samples.size(), 0);
}

std::size_t TreeEngine::build_node(BuildContext& ctx, std::size_t begin,
                                   std::size_t end, std::size_t depth_now) {
  const Matrix& X = *ctx.X;
  const std::size_t n = end - begin;
  const std::size_t node_index = nodes_.size();
  nodes_.emplace_back();

  // Node statistics.
  std::vector<std::size_t> counts;
  double sum = 0.0;
  double sum_sq = 0.0;
  if (task_ == Task::kClassification) {
    counts.assign(static_cast<std::size_t>(num_classes_), 0);
    for (std::size_t i = begin; i < end; ++i) {
      ++counts[static_cast<std::size_t>(ctx.y_class[ctx.samples[i]])];
    }
  } else {
    for (std::size_t i = begin; i < end; ++i) {
      const double v = ctx.y_value[ctx.samples[i]];
      sum += v;
      sum_sq += v * v;
    }
  }
  const double node_impurity =
      task_ == Task::kClassification
          ? gini(counts, n)
          : std::max(0.0, sum_sq / static_cast<double>(n) -
                              (sum / static_cast<double>(n)) *
                                  (sum / static_cast<double>(n)));

  auto make_leaf = [&]() {
    TreeNode& leaf = nodes_[node_index];
    leaf.feature = -1;
    if (task_ == Task::kClassification) {
      leaf.class_probs.resize(counts.size());
      for (std::size_t c = 0; c < counts.size(); ++c) {
        leaf.class_probs[c] =
            static_cast<double>(counts[c]) / static_cast<double>(n);
      }
    } else {
      leaf.value = sum / static_cast<double>(n);
    }
    return node_index;
  };

  const bool pure =
      task_ == Task::kClassification
          ? std::count_if(counts.begin(), counts.end(),
                          [](std::size_t c) { return c > 0; }) <= 1
          : node_impurity <= 1e-12;
  if (pure || n < config_.min_samples_split ||
      (config_.max_depth != 0 && depth_now >= config_.max_depth)) {
    return make_leaf();
  }

  // Feature subset for this split.  Features that are constant within
  // the node do not count against the mtry budget (the scikit-learn
  // convention): the lazy Fisher–Yates below keeps drawing fresh features
  // until mtry *splittable* candidates have been scored or the pool is
  // exhausted.  Without this, one-hot-heavy feature spaces starve small
  // mtry values of usable candidates.
  const std::size_t mtry =
      config_.max_features == 0
          ? num_features_
          : std::min(config_.max_features, num_features_);

  int best_feature = -1;
  double best_threshold = 0.0;
  double best_gain = config_.min_impurity_decrease;
  std::size_t evaluated = 0;
  for (std::size_t fi = 0; fi < num_features_ && evaluated < mtry; ++fi) {
    // Lazy partial shuffle: position fi gets a uniform draw from the
    // remaining pool.
    const std::size_t j =
        fi + static_cast<std::size_t>(ctx.rng->uniform_index(
                 static_cast<std::uint64_t>(num_features_ - fi)));
    std::swap(ctx.feature_pool[fi], ctx.feature_pool[j]);
    const std::size_t f = ctx.feature_pool[fi];
    auto& sorted = ctx.sorted;
    sorted.clear();
    sorted.reserve(n);
    for (std::size_t i = begin; i < end; ++i) {
      sorted.emplace_back(X(ctx.samples[i], f), ctx.samples[i]);
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    if (sorted.front().first == sorted.back().first) continue;  // constant
    ++evaluated;

    if (task_ == Task::kClassification) {
      std::vector<std::size_t> left_counts(counts.size(), 0);
      std::vector<std::size_t> right_counts = counts;
      for (std::size_t i = 0; i + 1 < n; ++i) {
        const auto cls =
            static_cast<std::size_t>(ctx.y_class[sorted[i].second]);
        ++left_counts[cls];
        --right_counts[cls];
        if (sorted[i].first == sorted[i + 1].first) continue;
        const std::size_t nl = i + 1;
        const std::size_t nr = n - nl;
        if (nl < config_.min_samples_leaf || nr < config_.min_samples_leaf) {
          continue;
        }
        const double gain =
            node_impurity -
            (static_cast<double>(nl) * gini(left_counts, nl) +
             static_cast<double>(nr) * gini(right_counts, nr)) /
                static_cast<double>(n);
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = static_cast<int>(f);
          best_threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
        }
      }
    } else {
      double left_sum = 0.0;
      double left_sq = 0.0;
      double right_sum = sum;
      double right_sq = sum_sq;
      for (std::size_t i = 0; i + 1 < n; ++i) {
        const double v = ctx.y_value[sorted[i].second];
        left_sum += v;
        left_sq += v * v;
        right_sum -= v;
        right_sq -= v * v;
        if (sorted[i].first == sorted[i + 1].first) continue;
        const auto nl = static_cast<double>(i + 1);
        const auto nr = static_cast<double>(n - i - 1);
        if (i + 1 < config_.min_samples_leaf ||
            n - i - 1 < config_.min_samples_leaf) {
          continue;
        }
        const double var_l = std::max(0.0, left_sq / nl -
                                               (left_sum / nl) *
                                                   (left_sum / nl));
        const double var_r = std::max(0.0, right_sq / nr -
                                               (right_sum / nr) *
                                                   (right_sum / nr));
        const double gain = node_impurity -
                            (nl * var_l + nr * var_r) /
                                static_cast<double>(n);
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = static_cast<int>(f);
          best_threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
        }
      }
    }
  }

  if (best_feature < 0) return make_leaf();

  // Partition ctx.samples[begin, end) around the chosen split.
  auto* mid_it = std::partition(
      ctx.samples.data() + begin, ctx.samples.data() + end,
      [&](std::size_t s) { return X(s, static_cast<std::size_t>(best_feature)) <= best_threshold; });
  const auto mid = static_cast<std::size_t>(mid_it - ctx.samples.data());
  if (mid == begin || mid == end) return make_leaf();  // numeric edge case

  impurity_importance_[static_cast<std::size_t>(best_feature)] +=
      best_gain * static_cast<double>(n);

  // Fill the split node; children are built afterwards so their indices
  // are known only post-recursion.
  nodes_[node_index].feature = best_feature;
  nodes_[node_index].threshold = best_threshold;
  const std::size_t left_index = build_node(ctx, begin, mid, depth_now + 1);
  const std::size_t right_index = build_node(ctx, mid, end, depth_now + 1);
  nodes_[node_index].left = left_index;
  nodes_[node_index].right = right_index;
  return node_index;
}

const TreeNode& TreeEngine::descend(std::span<const double> x) const {
  XDMODML_CHECK(trained(), "tree used before fit");
  XDMODML_CHECK(x.size() == num_features_, "feature width mismatch");
  std::size_t i = 0;
  while (nodes_[i].feature >= 0) {
    const auto f = static_cast<std::size_t>(nodes_[i].feature);
    i = x[f] <= nodes_[i].threshold ? nodes_[i].left : nodes_[i].right;
  }
  return nodes_[i];
}

std::span<const double> TreeEngine::leaf_probs(
    std::span<const double> x) const {
  return descend(x).class_probs;
}

double TreeEngine::leaf_value(std::span<const double> x) const {
  return descend(x).value;
}

void TreeEngine::save(std::ostream& out) const {
  XDMODML_CHECK(trained(), "cannot save an untrained tree");
  io::write_tag(out, "tree-v1");
  io::write_scalar(out, "task",
                   static_cast<std::int64_t>(
                       task_ == Task::kClassification ? 0 : 1));
  io::write_scalar(out, "classes",
                   static_cast<std::int64_t>(num_classes_));
  io::write_scalar(out, "features",
                   static_cast<std::int64_t>(num_features_));
  io::write_scalar(out, "nodes", static_cast<std::int64_t>(nodes_.size()));
  for (const auto& node : nodes_) {
    io::write_scalar(out, "f", static_cast<std::int64_t>(node.feature));
    io::write_scalar(out, "t", node.threshold);
    io::write_scalar(out, "l", static_cast<std::int64_t>(node.left));
    io::write_scalar(out, "r", static_cast<std::int64_t>(node.right));
    io::write_scalar(out, "v", node.value);
    io::write_vector(out, "p", node.class_probs);
  }
  io::write_vector(out, "importance", impurity_importance_);
}

TreeEngine TreeEngine::load(std::istream& in) {
  io::TokenReader reader(in);
  reader.expect("tree-v1");
  const auto task = reader.read_int("task");
  XDMODML_CHECK(task == 0 || task == 1, "corrupt tree task");
  TreeEngine engine(task == 0 ? Task::kClassification : Task::kRegression,
                    TreeConfig{});
  engine.num_classes_ = static_cast<int>(reader.read_int("classes"));
  engine.num_features_ =
      static_cast<std::size_t>(reader.read_int("features"));
  const auto node_count = reader.read_int("nodes");
  XDMODML_CHECK(node_count > 0, "corrupt tree node count");
  engine.nodes_.resize(static_cast<std::size_t>(node_count));
  for (auto& node : engine.nodes_) {
    node.feature = static_cast<int>(reader.read_int("f"));
    node.threshold = reader.read_double("t");
    node.left = static_cast<std::size_t>(reader.read_int("l"));
    node.right = static_cast<std::size_t>(reader.read_int("r"));
    node.value = reader.read_double("v");
    node.class_probs = reader.read_vector("p");
    XDMODML_CHECK(node.feature < static_cast<int>(engine.num_features_),
                  "corrupt tree feature index");
    XDMODML_CHECK(node.left < engine.nodes_.size() &&
                      node.right < engine.nodes_.size(),
                  "corrupt tree child index");
  }
  engine.impurity_importance_ = reader.read_vector("importance");
  return engine;
}

std::size_t TreeEngine::depth() const {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the node vector.
  std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 1}};
  std::size_t max_depth = 0;
  while (!stack.empty()) {
    const auto [idx, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    if (nodes_[idx].feature >= 0) {
      stack.emplace_back(nodes_[idx].left, d + 1);
      stack.emplace_back(nodes_[idx].right, d + 1);
    }
  }
  return max_depth;
}

}  // namespace xdmodml::ml::detail

namespace xdmodml::ml {

DecisionTreeClassifier::DecisionTreeClassifier(TreeConfig config,
                                               std::uint64_t seed)
    : engine_(detail::TreeEngine::Task::kClassification, config),
      rng_(seed) {}

void DecisionTreeClassifier::fit(const Matrix& X, std::span<const int> y,
                                 int num_classes) {
  num_classes_ = num_classes;
  std::vector<std::size_t> all(X.rows());
  std::iota(all.begin(), all.end(), 0);
  engine_.fit(X, y, {}, num_classes, all, rng_);
}

std::vector<double> DecisionTreeClassifier::predict_proba(
    std::span<const double> x) const {
  const auto probs = engine_.leaf_probs(x);
  return {probs.begin(), probs.end()};
}

DecisionTreeRegressor::DecisionTreeRegressor(TreeConfig config,
                                             std::uint64_t seed)
    : engine_(detail::TreeEngine::Task::kRegression, config), rng_(seed) {}

void DecisionTreeRegressor::fit(const Matrix& X, std::span<const double> y) {
  std::vector<std::size_t> all(X.rows());
  std::iota(all.begin(), all.end(), 0);
  engine_.fit(X, {}, y, 0, all, rng_);
}

double DecisionTreeRegressor::predict(std::span<const double> x) const {
  return engine_.leaf_value(x);
}

}  // namespace xdmodml::ml
