#include "ml/svm.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <numeric>
#include <optional>

#include "ml/model_io.hpp"
#include "ml/svm_plan.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace xdmodml::ml {

double PlattSigmoid::probability(double decision_value) const {
  // Numerically stable logistic evaluation.
  const double f = a * decision_value + b;
  if (f >= 0.0) {
    const double e = std::exp(-f);
    return e / (1.0 + e);
  }
  return 1.0 / (1.0 + std::exp(f));
}

PlattSigmoid fit_platt_sigmoid(std::span<const double> decision_values,
                               std::span<const signed char> labels) {
  XDMODML_CHECK(decision_values.size() == labels.size() &&
                    !decision_values.empty(),
                "Platt fit requires parallel non-empty inputs");
  const std::size_t n = decision_values.size();

  // Lin, Lin & Weng (2007) Algorithm 1.
  double prior1 = 0.0;
  double prior0 = 0.0;
  for (const auto y : labels) (y > 0 ? prior1 : prior0) += 1.0;

  const double hi_target = (prior1 + 1.0) / (prior1 + 2.0);
  const double lo_target = 1.0 / (prior0 + 2.0);
  std::vector<double> t(n);
  for (std::size_t i = 0; i < n; ++i) {
    t[i] = labels[i] > 0 ? hi_target : lo_target;
  }

  double a = 0.0;
  double b = std::log((prior0 + 1.0) / (prior1 + 1.0));
  constexpr int kMaxIter = 100;
  constexpr double kMinStep = 1e-10;
  constexpr double kSigma = 1e-12;
  constexpr double kEps = 1e-5;

  auto objective = [&](double aa, double bb) {
    double obj = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double f = decision_values[i] * aa + bb;
      if (f >= 0.0) {
        obj += t[i] * f + std::log1p(std::exp(-f));
      } else {
        obj += (t[i] - 1.0) * f + std::log1p(std::exp(f));
      }
    }
    return obj;
  };

  double fval = objective(a, b);
  for (int iter = 0; iter < kMaxIter; ++iter) {
    // Gradient and Hessian.
    double h11 = kSigma;
    double h22 = kSigma;
    double h21 = 0.0;
    double g1 = 0.0;
    double g2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double f = decision_values[i] * a + b;
      double p = 0.0;
      double q = 0.0;
      if (f >= 0.0) {
        const double e = std::exp(-f);
        p = e / (1.0 + e);
        q = 1.0 / (1.0 + e);
      } else {
        const double e = std::exp(f);
        p = 1.0 / (1.0 + e);
        q = e / (1.0 + e);
      }
      const double d2 = p * q;
      h11 += decision_values[i] * decision_values[i] * d2;
      h22 += d2;
      h21 += decision_values[i] * d2;
      const double d1 = t[i] - p;
      g1 += decision_values[i] * d1;
      g2 += d1;
    }
    if (std::abs(g1) < kEps && std::abs(g2) < kEps) break;

    // Newton direction with backtracking line search.
    const double det = h11 * h22 - h21 * h21;
    const double da = -(h22 * g1 - h21 * g2) / det;
    const double db = -(-h21 * g1 + h11 * g2) / det;
    const double gd = g1 * da + g2 * db;
    double step = 1.0;
    while (step >= kMinStep) {
      const double new_a = a + step * da;
      const double new_b = b + step * db;
      const double new_f = objective(new_a, new_b);
      if (new_f < fval + 1e-4 * step * gd) {
        a = new_a;
        b = new_b;
        fval = new_f;
        break;
      }
      step *= 0.5;
    }
    if (step < kMinStep) break;  // line search failed
  }
  return PlattSigmoid{a, b};
}

std::vector<double> couple_pairwise_probabilities(const Matrix& pairwise) {
  const std::size_t k = pairwise.rows();
  XDMODML_CHECK(k > 0 && pairwise.cols() == k,
                "pairwise matrix must be square");
  if (k == 1) return {1.0};

  // LIBSVM multiclass_probability (Wu–Lin–Weng method 2).
  // r(i, j) = P(i | i or j); r(j, i) = 1 - r(i, j).
  Matrix q(k, k, 0.0);
  for (std::size_t t = 0; t < k; ++t) {
    for (std::size_t j = 0; j < k; ++j) {
      if (j == t) continue;
      q(t, t) += pairwise(j, t) * pairwise(j, t);
      q(t, j) = -pairwise(j, t) * pairwise(t, j);
    }
  }

  std::vector<double> p(k, 1.0 / static_cast<double>(k));
  std::vector<double> qp(k, 0.0);
  const std::size_t max_iter = std::max<std::size_t>(100, k);
  constexpr double kEps = 0.005 / 100.0;
  for (std::size_t iter = 0; iter < max_iter; ++iter) {
    double pqp = 0.0;
    for (std::size_t t = 0; t < k; ++t) {
      qp[t] = 0.0;
      for (std::size_t j = 0; j < k; ++j) qp[t] += q(t, j) * p[j];
      pqp += p[t] * qp[t];
    }
    double max_error = 0.0;
    for (std::size_t t = 0; t < k; ++t) {
      max_error = std::max(max_error, std::abs(qp[t] - pqp));
    }
    if (max_error < kEps) break;
    for (std::size_t t = 0; t < k; ++t) {
      const double diff = (-qp[t] + pqp) / q(t, t);
      p[t] += diff;
      pqp = (pqp + diff * (diff * q(t, t) + 2.0 * qp[t])) /
            ((1.0 + diff) * (1.0 + diff));
      for (std::size_t j = 0; j < k; ++j) {
        qp[j] = (qp[j] + diff * q(t, j)) / (1.0 + diff);
        p[j] /= (1.0 + diff);
      }
    }
  }
  // Clean up round-off and renormalize.
  double total = 0.0;
  for (auto& v : p) {
    v = std::max(0.0, v);
    total += v;
  }
  if (total <= 0.0) {
    std::fill(p.begin(), p.end(), 1.0 / static_cast<double>(k));
  } else {
    for (auto& v : p) v /= total;
  }
  return p;
}

void BinarySvm::fit_decision(const Matrix& X, std::span<const signed char> y,
                             const SvmConfig& config, double c_positive,
                             double c_negative, SharedGramCache* shared_cache,
                             std::span<const std::size_t> shared_rows) {
  const std::size_t n = X.rows();
  std::vector<double> p(n, -1.0);
  std::vector<double> c(n);
  for (std::size_t i = 0; i < n; ++i) {
    c[i] = config.c * (y[i] > 0 ? c_positive : c_negative);
  }

  SmoProblem problem;
  problem.n = n;
  problem.p = p;
  problem.y = y;
  problem.c = c;
  std::optional<GramRowEngine> engine;
  if (shared_cache != nullptr && shared_rows.size() == n) {
    // One-vs-one sub-problem: slice this pair's rows/columns out of the
    // shared full-matrix cache instead of recomputing the kernels over
    // the gathered subset.
    problem.kernel_row = [shared_cache, shared_rows](std::size_t i,
                                                     std::span<double> out) {
      const auto full = shared_cache->row(shared_rows[i]);
      full->gather(shared_rows, out.subspan(0, shared_rows.size()));
    };
    problem.kernel_diag = [shared_cache, shared_rows](std::size_t i) {
      return shared_cache->diagonal(shared_rows[i]);
    };
  } else if (config.gram_engine) {
    engine.emplace(X, config.kernel);
    problem.kernel_row = [&engine](std::size_t i, std::span<double> out) {
      engine->fill_row(i, out);
    };
    problem.kernel_diag = [&engine](std::size_t i) {
      return engine->diagonal(i);
    };
  } else {
    // Scalar per-pair path (perf baseline / ablation arm).
    problem.kernel_row = [&X, &config](std::size_t i, std::span<double> out) {
      const auto xi = X.row(i);
      for (std::size_t j = 0; j < X.rows(); ++j) {
        out[j] = config.kernel(xi, X.row(j));
      }
    };
  }

  const SmoResult result = solve_smo(problem, config.smo);
  rho_ = result.rho;
  kernel_ = config.kernel;

  // Keep only the support vectors.
  std::vector<std::size_t> sv_rows;
  for (std::size_t i = 0; i < n; ++i) {
    if (result.alpha[i] > 0.0) sv_rows.push_back(i);
  }
  support_vectors_ = X.gather_rows(sv_rows);
  coef_.resize(sv_rows.size());
  for (std::size_t s = 0; s < sv_rows.size(); ++s) {
    coef_[s] = result.alpha[sv_rows[s]] *
               static_cast<double>(y[sv_rows[s]]);
  }
  sv_full_rows_.clear();
  if (shared_cache != nullptr && shared_rows.size() == n) {
    sv_full_rows_.reserve(sv_rows.size());
    for (const auto r : sv_rows) sv_full_rows_.push_back(shared_rows[r]);
  }
  trained_ = true;
}

void BinarySvm::fit(const Matrix& X, std::span<const signed char> y,
                    const SvmConfig& config, std::uint64_t seed,
                    double c_positive, double c_negative,
                    SharedGramCache* shared_cache,
                    std::span<const std::size_t> shared_rows) {
  XDMODML_CHECK(c_positive > 0.0 && c_negative > 0.0,
                "class weights must be positive");
  XDMODML_CHECK(shared_cache == nullptr || shared_rows.size() == X.rows(),
                "shared_rows must map every row of X into the shared cache");
  XDMODML_CHECK(X.rows() == y.size() && X.rows() >= 2,
                "binary SVM needs at least two samples");
  bool has_pos = false;
  bool has_neg = false;
  for (const auto v : y) {
    XDMODML_CHECK(v == 1 || v == -1, "binary SVM labels must be ±1");
    (v > 0 ? has_pos : has_neg) = true;
  }
  XDMODML_CHECK(has_pos && has_neg, "binary SVM needs both classes");

  has_platt_ = false;
  if (config.probability) {
    // Cross-validated decision values keep the sigmoid honest: in-sample
    // decision values of a C=1000 RBF machine are nearly separable and
    // would produce a degenerate, overconfident sigmoid.
    const std::size_t folds =
        std::min<std::size_t>(std::max<std::size_t>(2, config.platt_cv_folds),
                              X.rows());
    Rng rng(seed);
    std::vector<std::size_t> order(X.rows());
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);

    std::vector<double> cv_decisions(X.rows(), 0.0);
    std::vector<signed char> cv_labels(X.rows(), 0);
    bool cv_ok = true;
    for (std::size_t f = 0; f < folds && cv_ok; ++f) {
      std::vector<std::size_t> train_rows;
      std::vector<std::size_t> test_rows;
      for (std::size_t i = 0; i < order.size(); ++i) {
        (i % folds == f ? test_rows : train_rows).push_back(order[i]);
      }
      std::vector<signed char> train_y;
      train_y.reserve(train_rows.size());
      bool fold_pos = false;
      bool fold_neg = false;
      for (const auto r : train_rows) {
        train_y.push_back(y[r]);
        (y[r] > 0 ? fold_pos : fold_neg) = true;
      }
      if (!fold_pos || !fold_neg || train_rows.size() < 2) {
        cv_ok = false;
        break;
      }
      BinarySvm fold_svm;
      SvmConfig fold_config = config;
      fold_config.probability = false;
      // Fold rows are a subset of a subset: compose the mapping so the
      // fold fit still slices rows out of the same shared cache.
      std::vector<std::size_t> fold_shared;
      if (shared_cache != nullptr) {
        fold_shared.reserve(train_rows.size());
        for (const auto r : train_rows) fold_shared.push_back(shared_rows[r]);
      }
      fold_svm.fit(X.gather_rows(train_rows), train_y, fold_config,
                   seed + f, c_positive, c_negative, shared_cache,
                   fold_shared);
      for (std::size_t i = 0; i < test_rows.size(); ++i) {
        const auto r = test_rows[i];
        // Held-out rows are rows of the shared cache's full matrix, so
        // their decision values are dot products against an already (or
        // soon-to-be) cached Gram row — no fresh kernel evaluations.
        cv_decisions[r] =
            shared_cache != nullptr
                ? fold_svm.decision_value_cached(*shared_cache,
                                                shared_rows[r])
                : fold_svm.decision_value(X.row(r));
        cv_labels[r] = y[r];
      }
    }
    if (cv_ok) {
      platt_ = fit_platt_sigmoid(cv_decisions, cv_labels);
      has_platt_ = true;
    }
  }

  fit_decision(X, y, config, c_positive, c_negative, shared_cache,
               shared_rows);

  if (config.probability && !has_platt_) {
    // CV degenerate (tiny class) — fall back to in-sample calibration.
    std::vector<double> decisions(X.rows());
    for (std::size_t i = 0; i < X.rows(); ++i) {
      decisions[i] = shared_cache != nullptr
                         ? decision_value_cached(*shared_cache,
                                                 shared_rows[i])
                         : decision_value(X.row(i));
    }
    platt_ = fit_platt_sigmoid(decisions, y);
    has_platt_ = true;
  }
}

double BinarySvm::decision_value(std::span<const double> x) const {
  XDMODML_CHECK(trained_, "decision_value before fit");
  double f = -rho_;
  for (std::size_t s = 0; s < support_vectors_.rows(); ++s) {
    f += coef_[s] * kernel_(support_vectors_.row(s), x);
  }
  return f;
}

double BinarySvm::decision_value_cached(SharedGramCache& cache,
                                        std::size_t full_row) const {
  XDMODML_CHECK(trained_, "decision_value before fit");
  XDMODML_CHECK(sv_full_rows_.size() == coef_.size(),
                "machine was not fitted through this shared cache");
  const auto row = cache.row(full_row);
  return row->dot_at(sv_full_rows_, coef_) - rho_;
}

double BinarySvm::probability_positive(std::span<const double> x) const {
  XDMODML_CHECK(has_platt_, "probability requested without Platt fit");
  return platt_.probability(decision_value(x));
}

const PlattSigmoid& BinarySvm::sigmoid() const {
  XDMODML_CHECK(has_platt_, "sigmoid unavailable");
  return platt_;
}

void BinarySvm::save(std::ostream& out) const {
  XDMODML_CHECK(trained_, "cannot save an untrained SVM");
  // v2 appends the full-matrix row provenance after the SV rows so a
  // reloaded model can index-dedup its inference-plan pool; v1 files
  // (no provenance) still load, falling back to content-hash dedup.
  io::write_tag(out, "binary-svm-v2");
  io::write_scalar(out, "kernel_type",
                   static_cast<std::int64_t>(kernel_.type));
  io::write_scalar(out, "gamma", kernel_.gamma);
  io::write_scalar(out, "degree", kernel_.degree);
  io::write_scalar(out, "coef0", kernel_.coef0);
  io::write_scalar(out, "rho", rho_);
  io::write_scalar(out, "has_platt",
                   static_cast<std::int64_t>(has_platt_ ? 1 : 0));
  io::write_scalar(out, "platt_a", platt_.a);
  io::write_scalar(out, "platt_b", platt_.b);
  io::write_scalar(out, "svs",
                   static_cast<std::int64_t>(support_vectors_.rows()));
  io::write_scalar(out, "dims",
                   static_cast<std::int64_t>(support_vectors_.cols()));
  io::write_vector(out, "coef", coef_);
  for (std::size_t r = 0; r < support_vectors_.rows(); ++r) {
    io::write_vector(out, "sv", support_vectors_.row(r));
  }
  io::write_index_vector(out, "full_rows", sv_full_rows_);
}

BinarySvm BinarySvm::load(std::istream& in) {
  io::TokenReader reader(in);
  const auto tag = reader.read_tag();
  XDMODML_CHECK(tag == "binary-svm-v1" || tag == "binary-svm-v2",
                "model stream: unknown binary SVM version '" + tag + "'");
  BinarySvm svm;
  const auto kernel_type = reader.read_int("kernel_type");
  XDMODML_CHECK(kernel_type >= 0 && kernel_type <= 2,
                "corrupt SVM kernel type");
  svm.kernel_.type = static_cast<Kernel::Type>(kernel_type);
  svm.kernel_.gamma = reader.read_double("gamma");
  svm.kernel_.degree = reader.read_double("degree");
  svm.kernel_.coef0 = reader.read_double("coef0");
  svm.rho_ = reader.read_double("rho");
  svm.has_platt_ = reader.read_int("has_platt") != 0;
  svm.platt_.a = reader.read_double("platt_a");
  svm.platt_.b = reader.read_double("platt_b");
  const auto svs = reader.read_int("svs");
  const auto dims = reader.read_int("dims");
  XDMODML_CHECK(svs > 0 && dims > 0, "corrupt SVM shape");
  svm.coef_ = reader.read_vector("coef");
  XDMODML_CHECK(svm.coef_.size() == static_cast<std::size_t>(svs),
                "corrupt SVM coefficient count");
  for (std::int64_t r = 0; r < svs; ++r) {
    const auto row = reader.read_vector("sv");
    XDMODML_CHECK(row.size() == static_cast<std::size_t>(dims),
                  "corrupt SVM support vector width");
    svm.support_vectors_.append_row(row);
  }
  if (tag == "binary-svm-v2") {
    svm.sv_full_rows_ = reader.read_index_vector("full_rows");
    XDMODML_CHECK(svm.sv_full_rows_.empty() ||
                      svm.sv_full_rows_.size() ==
                          static_cast<std::size_t>(svs),
                  "corrupt SVM provenance length");
  }
  svm.trained_ = true;
  return svm;
}

/// The lazily built compiled plan.  `once` serializes construction on
/// concurrent first use; `plan` is additionally published under `m` so
/// plan_if_built() can peek without entering the call_once.  Lives
/// behind a unique_ptr because once_flag is immovable and the
/// classifier must stay movable (load() returns by value).
struct SvmClassifier::PlanSlot {
  std::once_flag once;
  mutable std::mutex m;
  std::shared_ptr<const SvmInferencePlan> plan;
};

SvmClassifier::SvmClassifier(SvmConfig config, std::uint64_t seed)
    : config_(config),
      seed_(seed),
      plan_slot_(std::make_unique<PlanSlot>()) {}

SvmClassifier::~SvmClassifier() = default;
SvmClassifier::SvmClassifier(SvmClassifier&&) noexcept = default;
SvmClassifier& SvmClassifier::operator=(SvmClassifier&&) noexcept = default;

SvmClassifier::SvmClassifier(const SvmClassifier& other)
    : config_(other.config_),
      seed_(other.seed_),
      num_classes_(other.num_classes_),
      machines_(other.machines_),
      plan_slot_(std::make_unique<PlanSlot>()) {}

SvmClassifier& SvmClassifier::operator=(const SvmClassifier& other) {
  if (this != &other) {
    config_ = other.config_;
    seed_ = other.seed_;
    num_classes_ = other.num_classes_;
    machines_ = other.machines_;
    plan_slot_ = std::make_unique<PlanSlot>();
  }
  return *this;
}

const SvmInferencePlan& SvmClassifier::inference_plan() const {
  XDMODML_CHECK(!machines_.empty(), "predict before fit");
  PlanSlot& slot = *plan_slot_;
  std::call_once(slot.once, [&] {
    auto built = SvmInferencePlan::build(machines_, config_.plan_precision);
    const std::lock_guard<std::mutex> lock(slot.m);
    slot.plan = std::move(built);
  });
  // call_once completion happens-before every post-once read: no lock.
  return *slot.plan;
}

std::shared_ptr<const SvmInferencePlan> SvmClassifier::plan_if_built()
    const {
  if (plan_slot_ == nullptr) return nullptr;
  const std::lock_guard<std::mutex> lock(plan_slot_->m);
  return plan_slot_->plan;
}

void SvmClassifier::set_plan_precision(GramPrecision precision) {
  config_.plan_precision = precision;
  plan_slot_ = std::make_unique<PlanSlot>();
}

bool SvmClassifier::use_compiled() const {
  return svm_predict_mode() == SvmPredictMode::kCompiled;
}

std::size_t SvmClassifier::machine_index(int a, int b) const {
  XDMODML_CHECK(a >= 0 && b > a && b < num_classes_,
                "machine_index requires 0 <= a < b < k");
  // Machines are stored in lexicographic (a, b) order.
  const auto k = static_cast<std::size_t>(num_classes_);
  const auto ua = static_cast<std::size_t>(a);
  const auto ub = static_cast<std::size_t>(b);
  return ua * k - ua * (ua + 1) / 2 + (ub - ua - 1);
}

void SvmClassifier::fit(const Matrix& X, std::span<const int> y,
                        int num_classes) {
  fit_shared(X, y, num_classes, nullptr, {});
}

void SvmClassifier::fit_shared(const Matrix& X, std::span<const int> y,
                               int num_classes, SharedGramCache* cache,
                               std::span<const std::size_t> cache_rows) {
  XDMODML_CHECK(X.rows() == y.size() && X.rows() > 0,
                "fit requires matching non-empty X and y");
  XDMODML_CHECK(num_classes >= 2, "multiclass SVM needs >= 2 classes");
  if (cache != nullptr) {
    XDMODML_CHECK(cache_rows.size() == X.rows(),
                  "cache_rows must map every row of X into the cache");
    const auto& k = cache->engine().kernel();
    XDMODML_CHECK(k.type == config_.kernel.type &&
                      k.gamma == config_.kernel.gamma &&
                      k.degree == config_.kernel.degree &&
                      k.coef0 == config_.kernel.coef0,
                  "external cache kernel must match the SVM kernel");
  }
  num_classes_ = num_classes;

  // Group rows by class once.
  std::vector<std::vector<std::size_t>> rows_by_class(
      static_cast<std::size_t>(num_classes));
  for (std::size_t i = 0; i < y.size(); ++i) {
    XDMODML_CHECK(y[i] >= 0 && y[i] < num_classes, "label out of range");
    rows_by_class[static_cast<std::size_t>(y[i])].push_back(i);
  }

  struct PairTask {
    int a;
    int b;
    std::uint64_t seed;
  };
  std::vector<PairTask> tasks;
  for (int a = 0; a < num_classes; ++a) {
    for (int b = a + 1; b < num_classes; ++b) {
      tasks.push_back({a, b, 0});
    }
  }
  Rng root(seed_);
  for (auto& task : tasks) task.seed = root();

  // One norm vector + kernel-row cache over the full training matrix,
  // shared by every one-vs-one sub-problem (and their Platt CV folds):
  // each Gram row is computed once, vectorized, and sliced by the up to
  // k−1 machines whose subsets contain that sample.  The capacity is
  // clamped to a byte budget so huge fits degrade to LRU reuse instead
  // of materialising an n² matrix.  A caller-provided cache (the tuning
  // sweep's per-γ cache over the full standardized dataset) takes the
  // place of the per-fit one and amortizes rows across fits too.
  std::unique_ptr<SharedGramCache> owned;
  SharedGramCache* shared = cache;
  if (shared == nullptr && config_.gram_engine && config_.share_kernel_cache) {
    const std::size_t budget_rows = SharedGramCache::rows_for_budget(
        X.rows(), config_.shared_cache_bytes, config_.cache_precision);
    owned = std::make_unique<SharedGramCache>(
        X, config_.kernel, std::min(budget_rows, X.rows()),
        config_.cache_precision);
    shared = owned.get();
  }

  machines_.assign(tasks.size(), BinarySvm{});
  auto train_pair = [&](std::size_t idx) {
    const auto& task = tasks[idx];
    const auto& rows_a = rows_by_class[static_cast<std::size_t>(task.a)];
    const auto& rows_b = rows_by_class[static_cast<std::size_t>(task.b)];
    XDMODML_CHECK(!rows_a.empty() && !rows_b.empty(),
                  "one-vs-one training requires samples in every class");
    std::vector<std::size_t> rows;
    rows.reserve(rows_a.size() + rows_b.size());
    rows.insert(rows.end(), rows_a.begin(), rows_a.end());
    rows.insert(rows.end(), rows_b.begin(), rows_b.end());
    std::vector<signed char> labels(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      labels[i] = i < rows_a.size() ? 1 : -1;
    }
    double c_pos = 1.0;
    double c_neg = 1.0;
    if (!config_.class_weights.empty()) {
      XDMODML_CHECK(config_.class_weights.size() ==
                        static_cast<std::size_t>(num_classes),
                    "class_weights must have one entry per class");
      c_pos = config_.class_weights[static_cast<std::size_t>(task.a)];
      c_neg = config_.class_weights[static_cast<std::size_t>(task.b)];
    }
    // With an external cache, X is itself a subset of the cache's
    // matrix: compose the pair's rows through cache_rows so machines
    // slice the right full-matrix rows, while the gather stays in
    // X-space.
    std::vector<std::size_t> full_rows;
    if (cache != nullptr) {
      full_rows.reserve(rows.size());
      for (const auto r : rows) full_rows.push_back(cache_rows[r]);
    }
    machines_[idx].fit(X.gather_rows(rows), labels, config_, task.seed,
                       c_pos, c_neg, shared,
                       cache != nullptr ? full_rows : rows);
  };
  if (config_.parallel) {
    ThreadPool::global().parallel_for(0, tasks.size(), train_pair);
  } else {
    for (std::size_t i = 0; i < tasks.size(); ++i) train_pair(i);
  }

  // Refit invalidates any previously compiled plan.  In compiled mode
  // build the fresh plan eagerly so serving threads never pay for it;
  // legacy mode (and grid-search sweeps run under it) skips the cost.
  plan_slot_ = std::make_unique<PlanSlot>();
  if (use_compiled()) inference_plan();
}

std::vector<double> SvmClassifier::proba_from_kernel_row(
    const SvmInferencePlan& plan, std::span<const double> krow) const {
  const auto k = static_cast<std::size_t>(num_classes_);
  if (config_.probability) {
    // Same pairwise coupling as the legacy path, with each machine's
    // decision value reduced off the shared kernel row.
    Matrix pairwise(k, k, 0.0);
    for (int a = 0; a < num_classes_; ++a) {
      for (int b = a + 1; b < num_classes_; ++b) {
        const std::size_t idx = machine_index(a, b);
        const auto& slice = plan.machine(idx);
        XDMODML_CHECK(slice.has_platt,
                      "probability requested without Platt fit");
        double r =
            slice.sigmoid.probability(plan.decision_value(idx, krow));
        r = std::min(std::max(r, 1e-7), 1.0 - 1e-7);
        pairwise(static_cast<std::size_t>(a), static_cast<std::size_t>(b)) = r;
        pairwise(static_cast<std::size_t>(b), static_cast<std::size_t>(a)) =
            1.0 - r;
      }
    }
    return couple_pairwise_probabilities(pairwise);
  }
  std::vector<double> votes(k, 0.0);
  for (int a = 0; a < num_classes_; ++a) {
    for (int b = a + 1; b < num_classes_; ++b) {
      const double f = plan.decision_value(machine_index(a, b), krow);
      ++votes[static_cast<std::size_t>(f > 0.0 ? a : b)];
    }
  }
  const double total = static_cast<double>(machines_.size());
  for (auto& v : votes) v /= total;
  return votes;
}

int SvmClassifier::votes_from_kernel_row(const SvmInferencePlan& plan,
                                         std::span<const double> krow) const {
  std::vector<std::size_t> votes(static_cast<std::size_t>(num_classes_), 0);
  for (int a = 0; a < num_classes_; ++a) {
    for (int b = a + 1; b < num_classes_; ++b) {
      const double f = plan.decision_value(machine_index(a, b), krow);
      ++votes[static_cast<std::size_t>(f > 0.0 ? a : b)];
    }
  }
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) -
                          votes.begin());
}

std::vector<double> SvmClassifier::predict_proba(
    std::span<const double> x) const {
  XDMODML_CHECK(!machines_.empty(), "predict before fit");
  if (use_compiled()) {
    const auto& plan = inference_plan();
    std::vector<double> krow(plan.unique_support_vectors());
    plan.kernel_row(x, krow);
    return proba_from_kernel_row(plan, krow);
  }
  const auto k = static_cast<std::size_t>(num_classes_);
  if (config_.probability) {
    // Pairwise class-conditional probabilities, clipped away from {0, 1}
    // as LIBSVM does to keep the coupling well-posed.
    Matrix pairwise(k, k, 0.0);
    for (int a = 0; a < num_classes_; ++a) {
      for (int b = a + 1; b < num_classes_; ++b) {
        const auto& machine = machines_[machine_index(a, b)];
        double r = machine.probability_positive(x);
        r = std::min(std::max(r, 1e-7), 1.0 - 1e-7);
        pairwise(static_cast<std::size_t>(a), static_cast<std::size_t>(b)) = r;
        pairwise(static_cast<std::size_t>(b), static_cast<std::size_t>(a)) =
            1.0 - r;
      }
    }
    return couple_pairwise_probabilities(pairwise);
  }
  // Vote fractions (no Platt fit).
  std::vector<double> votes(k, 0.0);
  for (int a = 0; a < num_classes_; ++a) {
    for (int b = a + 1; b < num_classes_; ++b) {
      const auto& machine = machines_[machine_index(a, b)];
      const double f = machine.decision_value(x);
      ++votes[static_cast<std::size_t>(f > 0.0 ? a : b)];
    }
  }
  const double total = static_cast<double>(machines_.size());
  for (auto& v : votes) v /= total;
  return votes;
}

int SvmClassifier::predict_by_votes(std::span<const double> x) const {
  XDMODML_CHECK(!machines_.empty(), "predict before fit");
  if (use_compiled()) {
    const auto& plan = inference_plan();
    std::vector<double> krow(plan.unique_support_vectors());
    plan.kernel_row(x, krow);
    return votes_from_kernel_row(plan, krow);
  }
  std::vector<std::size_t> votes(static_cast<std::size_t>(num_classes_), 0);
  for (int a = 0; a < num_classes_; ++a) {
    for (int b = a + 1; b < num_classes_; ++b) {
      const auto& machine = machines_[machine_index(a, b)];
      ++votes[static_cast<std::size_t>(
          machine.decision_value(x) > 0.0 ? a : b)];
    }
  }
  // std::max_element keeps the first maximum: ties go to the lowest
  // class index, matching the vote-fraction argmax in predict_proba.
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) -
                          votes.begin());
}

std::vector<int> SvmClassifier::predict_shared(
    SharedGramCache& cache, std::span<const std::size_t> rows) const {
  XDMODML_CHECK(!machines_.empty(), "predict before fit");
  const auto k = static_cast<std::size_t>(num_classes_);
  std::vector<int> labels;
  labels.reserve(rows.size());
  for (const auto r : rows) {
    if (config_.probability) {
      // Same pairwise coupling as predict_proba, with the decision
      // values read off the probe's cached Gram row.
      Matrix pairwise(k, k, 0.0);
      for (int a = 0; a < num_classes_; ++a) {
        for (int b = a + 1; b < num_classes_; ++b) {
          const auto& machine = machines_[machine_index(a, b)];
          double p = machine.sigmoid().probability(
              machine.decision_value_cached(cache, r));
          p = std::min(std::max(p, 1e-7), 1.0 - 1e-7);
          pairwise(static_cast<std::size_t>(a),
                   static_cast<std::size_t>(b)) = p;
          pairwise(static_cast<std::size_t>(b),
                   static_cast<std::size_t>(a)) = 1.0 - p;
        }
      }
      const auto proba = couple_pairwise_probabilities(pairwise);
      labels.push_back(static_cast<int>(
          std::max_element(proba.begin(), proba.end()) - proba.begin()));
    } else {
      std::vector<std::size_t> votes(k, 0);
      for (int a = 0; a < num_classes_; ++a) {
        for (int b = a + 1; b < num_classes_; ++b) {
          const auto& machine = machines_[machine_index(a, b)];
          ++votes[static_cast<std::size_t>(
              machine.decision_value_cached(cache, r) > 0.0 ? a : b)];
        }
      }
      labels.push_back(static_cast<int>(
          std::max_element(votes.begin(), votes.end()) - votes.begin()));
    }
  }
  return labels;
}

int SvmClassifier::predict(std::span<const double> x) const {
  XDMODML_CHECK(!machines_.empty(), "predict before fit");
  if (!config_.probability) return predict_by_votes(x);
  const auto proba = predict_proba(x);
  return static_cast<int>(std::max_element(proba.begin(), proba.end()) -
                          proba.begin());
}

Prediction SvmClassifier::predict_with_probability(
    std::span<const double> x) const {
  // One predict_proba call serves both the label and its probability:
  // in probability mode these are the coupled probabilities, otherwise
  // vote fractions whose argmax equals the hard-vote label (same
  // lowest-index tie rule), so label and probability always agree.
  const auto proba = predict_proba(x);
  const auto it = std::max_element(proba.begin(), proba.end());
  return {static_cast<int>(it - proba.begin()), *it};
}

namespace {

// Queries fused per kernel_rows pass.  Each pool block is streamed from
// memory once per kQueryBlock queries; the krows scratch stays at
// kQueryBlock × unique doubles per worker.
constexpr std::size_t kQueryBlock = 8;

obs::Counter& batch_counter() {
  static auto& c =
      obs::MetricsRegistry::instance().counter("svm.predict.batches");
  return c;
}

obs::Histogram& batch_histogram() {
  static auto& h =
      obs::MetricsRegistry::instance().histogram("svm.predict.batch_ns");
  return h;
}

// Shared skeleton of the fused batch overrides: sweeps X in
// kQueryBlock-row blocks against the plan's pool (thread-pool fanned)
// and hands each row's kernel row to `emit(row, krow)`.  Per-row
// results are identical to the single-row compiled calls — kernel_rows
// computes each query independently of its block.
template <typename Emit>
void sweep_batch(const SvmInferencePlan& plan, const Matrix& X,
                 const Emit& emit) {
  if (X.rows() == 0) return;
  XDMODML_CHECK(X.cols() == plan.dims(), "predict_batch feature width");
  batch_counter().inc();
  obs::ScopedTimer timer(batch_histogram(), "svm.predict.batch");
  const std::size_t unique = plan.unique_support_vectors();
  ThreadPool::global().parallel_for_ranges(
      0, X.rows(), kQueryBlock, [&](std::size_t lo, std::size_t hi) {
        std::vector<double> krows(kQueryBlock * unique);
        for (std::size_t q0 = lo; q0 < hi; q0 += kQueryBlock) {
          const std::size_t b = std::min(kQueryBlock, hi - q0);
          plan.kernel_rows(X.row(q0).data(), b, krows.data());
          for (std::size_t i = 0; i < b; ++i) {
            emit(q0 + i,
                 std::span<const double>{krows.data() + i * unique, unique});
          }
        }
      });
}

}  // namespace

std::vector<int> SvmClassifier::predict_batch(const Matrix& X) const {
  if (!use_compiled()) return Classifier::predict_batch(X);
  XDMODML_CHECK(!machines_.empty(), "predict before fit");
  const auto& plan = inference_plan();
  std::vector<int> labels(X.rows(), -1);
  sweep_batch(plan, X, [&](std::size_t row, std::span<const double> krow) {
    if (!config_.probability) {
      labels[row] = votes_from_kernel_row(plan, krow);
    } else {
      const auto proba = proba_from_kernel_row(plan, krow);
      labels[row] = static_cast<int>(
          std::max_element(proba.begin(), proba.end()) - proba.begin());
    }
  });
  return labels;
}

std::vector<std::vector<double>> SvmClassifier::predict_proba_batch(
    const Matrix& X) const {
  if (!use_compiled()) return Classifier::predict_proba_batch(X);
  XDMODML_CHECK(!machines_.empty(), "predict before fit");
  const auto& plan = inference_plan();
  std::vector<std::vector<double>> proba(X.rows());
  sweep_batch(plan, X, [&](std::size_t row, std::span<const double> krow) {
    proba[row] = proba_from_kernel_row(plan, krow);
  });
  return proba;
}

std::vector<Prediction> SvmClassifier::predict_batch_with_probability(
    const Matrix& X) const {
  if (!use_compiled()) return Classifier::predict_batch_with_probability(X);
  XDMODML_CHECK(!machines_.empty(), "predict before fit");
  const auto& plan = inference_plan();
  std::vector<Prediction> out(X.rows());
  sweep_batch(plan, X, [&](std::size_t row, std::span<const double> krow) {
    const auto proba = proba_from_kernel_row(plan, krow);
    const auto it = std::max_element(proba.begin(), proba.end());
    out[row] = {static_cast<int>(it - proba.begin()), *it};
  });
  return out;
}

std::size_t SvmClassifier::total_support_vectors() const {
  std::size_t total = 0;
  for (const auto& m : machines_) total += m.num_support_vectors();
  return total;
}

void SvmClassifier::save(std::ostream& out) const {
  XDMODML_CHECK(!machines_.empty(), "cannot save an untrained classifier");
  io::write_tag(out, "svm-ovo-v1");
  io::write_scalar(out, "classes",
                   static_cast<std::int64_t>(num_classes_));
  io::write_scalar(out, "probability",
                   static_cast<std::int64_t>(config_.probability ? 1 : 0));
  io::write_scalar(out, "machines",
                   static_cast<std::int64_t>(machines_.size()));
  for (const auto& machine : machines_) machine.save(out);
}

SvmClassifier SvmClassifier::load(std::istream& in) {
  io::TokenReader reader(in);
  reader.expect("svm-ovo-v1");
  SvmClassifier clf;
  clf.num_classes_ = static_cast<int>(reader.read_int("classes"));
  clf.config_.probability = reader.read_int("probability") != 0;
  const auto machine_count = reader.read_int("machines");
  const auto k = static_cast<std::int64_t>(clf.num_classes_);
  XDMODML_CHECK(machine_count == k * (k - 1) / 2,
                "corrupt one-vs-one machine count");
  clf.machines_.reserve(static_cast<std::size_t>(machine_count));
  for (std::int64_t i = 0; i < machine_count; ++i) {
    clf.machines_.push_back(BinarySvm::load(in));
  }
  return clf;
}

SvmRegressor::SvmRegressor(SvmConfig config) : config_(config) {
  XDMODML_CHECK(config.epsilon >= 0.0, "SVR epsilon must be >= 0");
}

void SvmRegressor::fit(const Matrix& X, std::span<const double> y) {
  XDMODML_CHECK(X.rows() == y.size() && X.rows() > 0,
                "fit requires matching non-empty X and y");
  const std::size_t l = X.rows();
  const std::size_t n = 2 * l;

  // LIBSVM's EPSILON_SVR formulation: variables [α; α*], labels [+1; −1],
  // linear term [ε − y; ε + y], and the kernel extended by index mod l.
  std::vector<double> p(n);
  std::vector<signed char> labels(n);
  std::vector<double> c(n, config_.c);
  for (std::size_t i = 0; i < l; ++i) {
    p[i] = config_.epsilon - y[i];
    labels[i] = 1;
    p[i + l] = config_.epsilon + y[i];
    labels[i + l] = -1;
  }

  SmoProblem problem;
  problem.n = n;
  problem.p = p;
  problem.y = labels;
  problem.c = c;
  std::optional<GramRowEngine> engine;
  if (config_.gram_engine) {
    engine.emplace(X, config_.kernel);
    // The doubled SVR variables alias the same l samples: fill one
    // vectorized row and mirror it into the second half.
    problem.kernel_row = [&engine, l](std::size_t i, std::span<double> out) {
      engine->fill_row(i % l, out.subspan(0, l));
      std::copy_n(out.data(), l, out.data() + l);
    };
    problem.kernel_diag = [&engine, l](std::size_t i) {
      return engine->diagonal(i % l);
    };
  } else {
    problem.kernel_row = [&X, this, l](std::size_t i, std::span<double> out) {
      const auto xi = X.row(i % l);
      for (std::size_t j = 0; j < l; ++j) {
        const double k = config_.kernel(xi, X.row(j));
        out[j] = k;
        out[j + l] = k;
      }
    };
  }

  const SmoResult result = solve_smo(problem, config_.smo);
  rho_ = result.rho;
  kernel_ = config_.kernel;

  std::vector<std::size_t> sv_rows;
  std::vector<double> sv_coef;
  for (std::size_t i = 0; i < l; ++i) {
    const double beta = result.alpha[i] - result.alpha[i + l];
    if (beta != 0.0) {
      sv_rows.push_back(i);
      sv_coef.push_back(beta);
    }
  }
  support_vectors_ = X.gather_rows(sv_rows);
  coef_ = std::move(sv_coef);
  trained_ = true;
}

void SvmRegressor::save(std::ostream& out) const {
  XDMODML_CHECK(trained_, "cannot save an untrained regressor");
  io::write_tag(out, "svr-v1");
  io::write_scalar(out, "kernel_type",
                   static_cast<std::int64_t>(kernel_.type));
  io::write_scalar(out, "gamma", kernel_.gamma);
  io::write_scalar(out, "degree", kernel_.degree);
  io::write_scalar(out, "coef0", kernel_.coef0);
  io::write_scalar(out, "rho", rho_);
  io::write_scalar(out, "svs",
                   static_cast<std::int64_t>(support_vectors_.rows()));
  io::write_scalar(out, "dims",
                   static_cast<std::int64_t>(support_vectors_.cols()));
  io::write_vector(out, "coef", coef_);
  for (std::size_t r = 0; r < support_vectors_.rows(); ++r) {
    io::write_vector(out, "sv", support_vectors_.row(r));
  }
}

SvmRegressor SvmRegressor::load(std::istream& in) {
  io::TokenReader reader(in);
  reader.expect("svr-v1");
  SvmRegressor svr;
  const auto kernel_type = reader.read_int("kernel_type");
  XDMODML_CHECK(kernel_type >= 0 && kernel_type <= 2,
                "corrupt SVR kernel type");
  svr.kernel_.type = static_cast<Kernel::Type>(kernel_type);
  svr.kernel_.gamma = reader.read_double("gamma");
  svr.kernel_.degree = reader.read_double("degree");
  svr.kernel_.coef0 = reader.read_double("coef0");
  svr.rho_ = reader.read_double("rho");
  const auto svs = reader.read_int("svs");
  const auto dims = reader.read_int("dims");
  XDMODML_CHECK(svs > 0 && dims > 0, "corrupt SVR shape");
  svr.coef_ = reader.read_vector("coef");
  XDMODML_CHECK(svr.coef_.size() == static_cast<std::size_t>(svs),
                "corrupt SVR coefficient count");
  for (std::int64_t r = 0; r < svs; ++r) {
    const auto row = reader.read_vector("sv");
    XDMODML_CHECK(row.size() == static_cast<std::size_t>(dims),
                  "corrupt SVR support vector width");
    svr.support_vectors_.append_row(row);
  }
  svr.trained_ = true;
  return svr;
}

double SvmRegressor::predict(std::span<const double> x) const {
  XDMODML_CHECK(trained_, "predict before fit");
  double f = -rho_;
  for (std::size_t s = 0; s < support_vectors_.rows(); ++s) {
    f += coef_[s] * kernel_(support_vectors_.row(s), x);
  }
  return f;
}

}  // namespace xdmodml::ml
