// Sequential Minimal Optimization solver for SVM dual problems.
//
// Solves   min_a  1/2 aᵀQa + pᵀa
//          s.t.   yᵀa = 0,  0 <= a_i <= C_i
//
// with Q_ij = y_i y_j k(x_i, x_j), using maximal-violating-pair working-set
// selection (Keerthi et al.; the LIBSVM first-order rule).  Both C-SVC and
// ε-SVR reduce to this form — SVR by doubling the variables, exactly as in
// LIBSVM.  Kernel rows are memoised in a bounded LRU cache so the solver
// handles training sets whose full Gram matrix would not fit in memory.
#pragma once

#include <cstddef>
#include <functional>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

namespace xdmodml::ml {

/// Inputs to the SMO solver.  `kernel_row(i)` must return the full i-th row
/// of the *kernel* matrix k(x_i, x_j) for j in [0, n) — the solver applies
/// the y_i y_j signs itself.
struct SmoProblem {
  std::size_t n = 0;
  std::function<void(std::size_t i, std::span<double> out)> kernel_row;
  std::span<const double> p;     ///< linear term, size n
  std::span<const signed char> y;  ///< ±1 labels, size n
  std::span<const double> c;     ///< per-variable upper bounds, size n
};

/// Solver knobs.
struct SmoConfig {
  double tolerance = 1e-3;      ///< KKT violation tolerance
  std::size_t max_iterations = 10'000'000;
  std::size_t cache_rows = 4096;  ///< LRU capacity (rows of length n)
};

/// Solver output.
struct SmoResult {
  std::vector<double> alpha;
  double rho = 0.0;  ///< decision offset; f(x) = Σ y_i a_i k(x_i,x) - rho
  std::size_t iterations = 0;
  bool converged = false;
  double objective = 0.0;
};

/// Runs SMO to convergence (or the iteration cap).
SmoResult solve_smo(const SmoProblem& problem, const SmoConfig& config = {});

/// Bounded LRU cache of kernel rows, shared by solver and tests.
class KernelRowCache {
 public:
  KernelRowCache(std::size_t n, std::size_t capacity,
                 std::function<void(std::size_t, std::span<double>)> compute);

  /// Returns the row, computing and caching it if absent.
  std::span<const double> row(std::size_t i);

  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }

 private:
  std::size_t n_;
  std::size_t capacity_;
  std::function<void(std::size_t, std::span<double>)> compute_;
  std::list<std::size_t> lru_;  // most recent at front
  struct Entry {
    std::vector<double> data;
    std::list<std::size_t>::iterator lru_it;
  };
  std::unordered_map<std::size_t, Entry> rows_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace xdmodml::ml
