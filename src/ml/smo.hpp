// Sequential Minimal Optimization solver for SVM dual problems.
//
// Solves   min_a  1/2 aᵀQa + pᵀa
//          s.t.   yᵀa = 0,  0 <= a_i <= C_i
//
// with Q_ij = y_i y_j k(x_i, x_j), using maximal-violating-pair working-set
// selection (Keerthi et al.; the LIBSVM first-order rule).  Both C-SVC and
// ε-SVR reduce to this form — SVR by doubling the variables, exactly as in
// LIBSVM.  Kernel rows are memoised in a bounded LRU cache so the solver
// handles training sets whose full Gram matrix would not fit in memory.
//
// The solver also implements LIBSVM's shrinking heuristic: every
// `shrink_interval` iterations, variables clamped at a bound whose KKT
// violation lies strictly outside the current (m(α), M(α)) window are
// removed from the active set, so late-stage selection and gradient
// maintenance touch only the variables that can still move.  A second
// gradient vector G_bar tracks the contribution of upper-bound variables,
// which lets the full gradient be reconstructed exactly before the final
// convergence check (and whenever the active set optimizes out early).
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "ml/kernel.hpp"
#include "util/matrix.hpp"

namespace xdmodml::ml {

/// Inputs to the SMO solver.  `kernel_row(i)` must return the full i-th row
/// of the *kernel* matrix k(x_i, x_j) for j in [0, n) — the solver applies
/// the y_i y_j signs itself.
struct SmoProblem {
  std::size_t n = 0;
  std::function<void(std::size_t i, std::span<double> out)> kernel_row;
  /// Optional O(1) diagonal k(x_i, x_i); when absent the solver derives
  /// the diagonal by materialising every row once (the legacy path).
  std::function<double(std::size_t i)> kernel_diag;
  std::span<const double> p;     ///< linear term, size n
  std::span<const signed char> y;  ///< ±1 labels, size n
  std::span<const double> c;     ///< per-variable upper bounds, size n
};

/// Solver knobs.
struct SmoConfig {
  double tolerance = 1e-3;      ///< KKT violation tolerance
  std::size_t max_iterations = 10'000'000;
  std::size_t cache_rows = 4096;  ///< LRU capacity (rows of length n)
  bool shrinking = true;        ///< LIBSVM-style active-set shrinking
  /// Iterations between shrink passes; 0 = min(n, 1000) (LIBSVM default).
  std::size_t shrink_interval = 0;
};

/// Solver output.
struct SmoResult {
  std::vector<double> alpha;
  double rho = 0.0;  ///< decision offset; f(x) = Σ y_i a_i k(x_i,x) - rho
  std::size_t iterations = 0;
  bool converged = false;
  double objective = 0.0;
};

/// Runs SMO to convergence (or the iteration cap).
SmoResult solve_smo(const SmoProblem& problem, const SmoConfig& config = {});

/// Bounded LRU cache of kernel rows, shared by solver and tests.
/// Single-threaded; each solve_smo call owns one.
class KernelRowCache {
 public:
  KernelRowCache(std::size_t n, std::size_t capacity,
                 std::function<void(std::size_t, std::span<double>)> compute);

  /// Returns the row, computing and caching it if absent.
  std::span<const double> row(std::size_t i);

  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }

 private:
  std::size_t n_;
  std::size_t capacity_;
  std::function<void(std::size_t, std::span<double>)> compute_;
  std::list<std::size_t> lru_;  // most recent at front
  struct Entry {
    std::vector<double> data;
    std::list<std::size_t>::iterator lru_it;
  };
  std::unordered_map<std::size_t, Entry> rows_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

/// Storage precision of cached full-matrix Gram rows.  Float32 doubles
/// the effective cache capacity and halves the memory bandwidth of every
/// reuse; its ~1e-7 relative rounding sits far below the SMO KKT
/// tolerance (1e-3), so solver results are equivalent (tested to 1e-3 on
/// alphas/rho/objective, exact on predicted labels).  Float64 is the
/// exact ablation arm.
enum class GramPrecision { kFloat32, kFloat64 };

/// Thread-safe LRU cache of *full-matrix* kernel rows, backed by a
/// GramRowEngine.  One instance is shared by every one-vs-one sub-problem
/// of a multiclass fit — and, through `SvmClassifier::fit_shared`, by
/// every CV fold and grid cell of a tuning sweep: each row of the full
/// Gram matrix is computed once (vectorized, norm-cached) and then sliced
/// by every consumer whose training subset contains that sample, instead
/// of each fit re-deriving kernels over its private row subset.  Rows are
/// handed out as shared_ptrs so concurrent readers stay valid across
/// evictions; a row raced by two threads may be computed twice but is
/// inserted once.  Rows are stored in `precision` (float32 by default;
/// see GramPrecision) and always read back as double.
///
/// Degraded modes (both produce bit-identical rows — the bypass path
/// shares the cached path's fill-and-narrow code):
///  - Row-payload allocation failure (std::bad_alloc, or the injected
///    `gram_cache.alloc` fault) evicts every resident row and retries the
///    compute once before giving up (`fail.gram_cache.alloc` /
///    `retry.gram_cache.evict_retry` metrics).
///  - When the memory budget is exceeded (`set_bypass(true)`, or the
///    `gram_cache.budget` failpoint armed with a `return` policy), row()
///    computes without caching and the LRU is left untouched
///    (`gram_cache.uncached_rows` metric).
class SharedGramCache {
 public:
  SharedGramCache(const Matrix& X, Kernel kernel, std::size_t capacity_rows,
                  GramPrecision precision = GramPrecision::kFloat32);
  /// Releases this cache's share of the process-wide resident gauges.
  ~SharedGramCache();

  /// One cached full-matrix kernel row; exactly one of the two payload
  /// vectors is populated, matching the cache's precision.  Immutable
  /// once handed out.
  class Row {
   public:
    std::size_t size() const {
      return f32_.empty() ? f64_.size() : f32_.size();
    }

    double operator[](std::size_t j) const {
      return f32_.empty() ? f64_[j] : static_cast<double>(f32_[j]);
    }

    /// out[t] = row[idx[t]] — the one-vs-one subset slice, with the
    /// precision branch hoisted out of the gather loop.
    void gather(std::span<const std::size_t> idx,
                std::span<double> out) const;

    /// Σ_s coef[s] * row[idx[s]] — a cached-row decision value.
    double dot_at(std::span<const std::size_t> idx,
                  std::span<const double> coef) const;

   private:
    friend class SharedGramCache;
    std::vector<float> f32_;
    std::vector<double> f64_;
  };

  using RowPtr = std::shared_ptr<const Row>;

  /// Full kernel row i of the backing matrix (computed/cached on demand;
  /// computed-only in bypass mode — see the class comment).
  RowPtr row(std::size_t i);

  /// Compute-without-caching mode: row() returns fresh rows and never
  /// touches the LRU.  Identical numerics to the cached path.
  void set_bypass(bool bypass) {
    bypass_.store(bypass, std::memory_order_relaxed);
  }
  bool bypass() const { return bypass_.load(std::memory_order_relaxed); }

  /// k(x_i, x_i) in O(1) from the cached norms (always full precision —
  /// the solver's curvature terms never pay the float32 rounding).
  double diagonal(std::size_t i) const { return diag_[i]; }

  const GramRowEngine& engine() const { return engine_; }
  std::size_t rows() const { return engine_.rows(); }
  GramPrecision precision() const { return precision_; }

  /// Bytes of payload per cached row at this cache's precision.
  std::size_t row_bytes() const;
  std::size_t capacity_rows() const { return capacity_; }
  std::size_t capacity_bytes() const { return capacity_ * row_bytes(); }

  /// Rows of length `n` affordable under `budget_bytes` at `precision`
  /// (floor 2, so the LRU always has a victim and a survivor).  Float32
  /// affords exactly twice the rows of float64 for the same budget.
  static std::size_t rows_for_budget(std::size_t n, std::size_t budget_bytes,
                                     GramPrecision precision);

  /// One consistent view of the cache counters.  Taken under the cache
  /// lock in a single acquisition, so cross-field invariants (e.g.
  /// evictions ≤ misses, resident_rows ≤ capacity) hold even while
  /// other threads ingest rows — reading the individual accessors one
  /// after another can interleave with writers and tear.
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
    std::size_t resident_rows = 0;
    std::size_t resident_bytes = 0;
  };
  Stats stats() const;

  std::size_t hits() const { return stats().hits; }
  std::size_t misses() const { return stats().misses; }
  std::size_t evictions() const { return stats().evictions; }

 private:
  /// Fills row i at this cache's precision (no locking, no LRU).  The
  /// single compute used by the cached, bypass and evict-retry paths.
  RowPtr compute_row(std::size_t i) const;
  /// Allocation-pressure fallback: drops every resident row (gauges
  /// updated) so the retried compute has the whole budget to itself.
  void evict_all();

  GramRowEngine engine_;
  std::vector<double> diag_;
  std::size_t capacity_;
  GramPrecision precision_;
  std::atomic<bool> bypass_{false};
  mutable std::mutex mutex_;
  std::list<std::size_t> lru_;  // most recent at front
  struct Entry {
    RowPtr data;
    std::list<std::size_t>::iterator lru_it;
  };
  std::unordered_map<std::size_t, Entry> rows_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t evictions_ = 0;
};

}  // namespace xdmodml::ml
