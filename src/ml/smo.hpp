// Sequential Minimal Optimization solver for SVM dual problems.
//
// Solves   min_a  1/2 aᵀQa + pᵀa
//          s.t.   yᵀa = 0,  0 <= a_i <= C_i
//
// with Q_ij = y_i y_j k(x_i, x_j), using maximal-violating-pair working-set
// selection (Keerthi et al.; the LIBSVM first-order rule).  Both C-SVC and
// ε-SVR reduce to this form — SVR by doubling the variables, exactly as in
// LIBSVM.  Kernel rows are memoised in a bounded LRU cache so the solver
// handles training sets whose full Gram matrix would not fit in memory.
//
// The solver also implements LIBSVM's shrinking heuristic: every
// `shrink_interval` iterations, variables clamped at a bound whose KKT
// violation lies strictly outside the current (m(α), M(α)) window are
// removed from the active set, so late-stage selection and gradient
// maintenance touch only the variables that can still move.  A second
// gradient vector G_bar tracks the contribution of upper-bound variables,
// which lets the full gradient be reconstructed exactly before the final
// convergence check (and whenever the active set optimizes out early).
#pragma once

#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "ml/kernel.hpp"
#include "util/matrix.hpp"

namespace xdmodml::ml {

/// Inputs to the SMO solver.  `kernel_row(i)` must return the full i-th row
/// of the *kernel* matrix k(x_i, x_j) for j in [0, n) — the solver applies
/// the y_i y_j signs itself.
struct SmoProblem {
  std::size_t n = 0;
  std::function<void(std::size_t i, std::span<double> out)> kernel_row;
  /// Optional O(1) diagonal k(x_i, x_i); when absent the solver derives
  /// the diagonal by materialising every row once (the legacy path).
  std::function<double(std::size_t i)> kernel_diag;
  std::span<const double> p;     ///< linear term, size n
  std::span<const signed char> y;  ///< ±1 labels, size n
  std::span<const double> c;     ///< per-variable upper bounds, size n
};

/// Solver knobs.
struct SmoConfig {
  double tolerance = 1e-3;      ///< KKT violation tolerance
  std::size_t max_iterations = 10'000'000;
  std::size_t cache_rows = 4096;  ///< LRU capacity (rows of length n)
  bool shrinking = true;        ///< LIBSVM-style active-set shrinking
  /// Iterations between shrink passes; 0 = min(n, 1000) (LIBSVM default).
  std::size_t shrink_interval = 0;
};

/// Solver output.
struct SmoResult {
  std::vector<double> alpha;
  double rho = 0.0;  ///< decision offset; f(x) = Σ y_i a_i k(x_i,x) - rho
  std::size_t iterations = 0;
  bool converged = false;
  double objective = 0.0;
};

/// Runs SMO to convergence (or the iteration cap).
SmoResult solve_smo(const SmoProblem& problem, const SmoConfig& config = {});

/// Bounded LRU cache of kernel rows, shared by solver and tests.
/// Single-threaded; each solve_smo call owns one.
class KernelRowCache {
 public:
  KernelRowCache(std::size_t n, std::size_t capacity,
                 std::function<void(std::size_t, std::span<double>)> compute);

  /// Returns the row, computing and caching it if absent.
  std::span<const double> row(std::size_t i);

  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }

 private:
  std::size_t n_;
  std::size_t capacity_;
  std::function<void(std::size_t, std::span<double>)> compute_;
  std::list<std::size_t> lru_;  // most recent at front
  struct Entry {
    std::vector<double> data;
    std::list<std::size_t>::iterator lru_it;
  };
  std::unordered_map<std::size_t, Entry> rows_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

/// Thread-safe LRU cache of *full-matrix* kernel rows, backed by a
/// GramRowEngine.  One instance is shared by every one-vs-one sub-problem
/// of a multiclass fit: each row of the full Gram matrix is computed once
/// (vectorized, norm-cached) and then sliced by up to k−1 machines whose
/// training subsets contain that sample, instead of each pair re-deriving
/// kernels over its private row subset.  Rows are handed out as
/// shared_ptrs so concurrent readers stay valid across evictions; a row
/// raced by two threads may be computed twice but is inserted once.
class SharedGramCache {
 public:
  SharedGramCache(const Matrix& X, Kernel kernel, std::size_t capacity);

  using RowPtr = std::shared_ptr<const std::vector<double>>;

  /// Full kernel row i of the backing matrix (computed/cached on demand).
  RowPtr row(std::size_t i);

  /// k(x_i, x_i) in O(1) from the cached norms.
  double diagonal(std::size_t i) const { return diag_[i]; }

  const GramRowEngine& engine() const { return engine_; }
  std::size_t rows() const { return engine_.rows(); }
  std::size_t hits() const;
  std::size_t misses() const;

 private:
  GramRowEngine engine_;
  std::vector<double> diag_;
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<std::size_t> lru_;  // most recent at front
  struct Entry {
    RowPtr data;
    std::list<std::size_t>::iterator lru_it;
  };
  std::unordered_map<std::size_t, Entry> rows_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace xdmodml::ml
