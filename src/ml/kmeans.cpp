#include "ml/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "ml/kernel.hpp"  // squared_distance
#include "util/error.hpp"

namespace xdmodml::ml {

namespace {

/// One k-means++ initialization + Lloyd run.
KMeansResult run_once(const Matrix& X, const KMeansConfig& config,
                      Rng& rng) {
  const std::size_t n = X.rows();
  const std::size_t k = config.clusters;
  const std::size_t d = X.cols();

  // k-means++ seeding.
  Matrix centroids(k, d);
  std::vector<double> dist2(n, std::numeric_limits<double>::infinity());
  {
    const auto first = static_cast<std::size_t>(rng.uniform_index(n));
    std::copy(X.row(first).begin(), X.row(first).end(),
              centroids.row(0).begin());
  }
  for (std::size_t c = 1; c < k; ++c) {
    for (std::size_t i = 0; i < n; ++i) {
      dist2[i] = std::min(dist2[i],
                          squared_distance(X.row(i), centroids.row(c - 1)));
    }
    double total = 0.0;
    for (const auto v : dist2) total += v;
    std::size_t chosen = 0;
    if (total > 0.0) {
      chosen = rng.categorical(dist2);
    } else {
      chosen = static_cast<std::size_t>(rng.uniform_index(n));
    }
    std::copy(X.row(chosen).begin(), X.row(chosen).end(),
              centroids.row(c).begin());
  }

  KMeansResult result;
  result.centroids = std::move(centroids);
  result.assignments.assign(n, 0);
  double prev_inertia = std::numeric_limits<double>::infinity();

  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    // Assignment step.
    double inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d2 =
            squared_distance(X.row(i), result.centroids.row(c));
        if (d2 < best) {
          best = d2;
          best_c = static_cast<int>(c);
        }
      }
      result.assignments[i] = best_c;
      inertia += best;
    }
    result.inertia = inertia;
    result.iterations = iter + 1;

    // Update step.
    Matrix sums(k, d, 0.0);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto c = static_cast<std::size_t>(result.assignments[i]);
      const auto row = X.row(i);
      for (std::size_t j = 0; j < d; ++j) sums(c, j) += row[j];
      ++counts[c];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Dead cluster: reseed at the point farthest from its centroid.
        std::size_t far = 0;
        double far_d = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double d2 = squared_distance(
              X.row(i), result.centroids.row(
                            static_cast<std::size_t>(result.assignments[i])));
          if (d2 > far_d) {
            far_d = d2;
            far = i;
          }
        }
        std::copy(X.row(far).begin(), X.row(far).end(),
                  result.centroids.row(c).begin());
        continue;
      }
      for (std::size_t j = 0; j < d; ++j) {
        result.centroids(c, j) =
            sums(c, j) / static_cast<double>(counts[c]);
      }
    }

    if (prev_inertia - inertia < config.tolerance * (1.0 + inertia)) break;
    prev_inertia = inertia;
  }
  return result;
}

}  // namespace

KMeansResult kmeans(const Matrix& X, const KMeansConfig& config,
                    std::uint64_t seed) {
  XDMODML_CHECK(X.rows() >= config.clusters && config.clusters > 0,
                "kmeans requires clusters in [1, rows]");
  XDMODML_CHECK(config.restarts > 0, "kmeans requires >= 1 restart");
  Rng root(seed);
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < config.restarts; ++r) {
    Rng run_rng = root.split();
    auto result = run_once(X, config, run_rng);
    if (result.inertia < best.inertia) best = std::move(result);
  }
  return best;
}

int nearest_centroid(const Matrix& centroids, std::span<const double> x) {
  XDMODML_CHECK(centroids.rows() > 0, "no centroids");
  double best = std::numeric_limits<double>::infinity();
  int best_c = 0;
  for (std::size_t c = 0; c < centroids.rows(); ++c) {
    const double d2 = squared_distance(centroids.row(c), x);
    if (d2 < best) {
      best = d2;
      best_c = static_cast<int>(c);
    }
  }
  return best_c;
}

double cluster_purity(std::span<const int> assignments,
                      std::span<const int> labels) {
  XDMODML_CHECK(assignments.size() == labels.size() && !labels.empty(),
                "purity requires parallel non-empty vectors");
  std::map<int, std::map<int, std::size_t>> votes;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    ++votes[assignments[i]][labels[i]];
  }
  std::size_t agree = 0;
  for (const auto& [cluster, counts] : votes) {
    std::size_t best = 0;
    for (const auto& [label, count] : counts) best = std::max(best, count);
    agree += best;
  }
  return static_cast<double>(agree) / static_cast<double>(labels.size());
}

double normalized_mutual_information(std::span<const int> a,
                                     std::span<const int> b) {
  XDMODML_CHECK(a.size() == b.size() && !a.empty(),
                "NMI requires parallel non-empty vectors");
  const auto n = static_cast<double>(a.size());
  std::map<int, double> pa;
  std::map<int, double> pb;
  std::map<std::pair<int, int>, double> pab;
  for (std::size_t i = 0; i < a.size(); ++i) {
    pa[a[i]] += 1.0 / n;
    pb[b[i]] += 1.0 / n;
    pab[{a[i], b[i]}] += 1.0 / n;
  }
  auto entropy = [](const std::map<int, double>& p) {
    double h = 0.0;
    for (const auto& [key, v] : p) {
      if (v > 0.0) h -= v * std::log(v);
    }
    return h;
  };
  double mi = 0.0;
  for (const auto& [key, pxy] : pab) {
    if (pxy <= 0.0) continue;
    mi += pxy * std::log(pxy / (pa[key.first] * pb[key.second]));
  }
  const double ha = entropy(pa);
  const double hb = entropy(pb);
  // Accumulating n copies of 1/n leaves round-off crumbs; treat
  // near-zero entropy (a constant labelling) as exactly zero.
  constexpr double kEps = 1e-9;
  if (ha <= kEps || hb <= kEps) {
    return (ha <= kEps) == (hb <= kEps) ? 1.0 : 0.0;
  }
  return mi / std::sqrt(ha * hb);
}

}  // namespace xdmodml::ml
