#include "ml/random_forest.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ml/model_io.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace xdmodml::ml {

namespace {

/// Default mtry: sqrt(F) for classification, F/3 for regression.
std::size_t default_mtry(std::size_t num_features, bool classification) {
  if (classification) {
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::sqrt(static_cast<double>(num_features))));
  }
  return std::max<std::size_t>(1, num_features / 3);
}

/// Bootstrap sample of n indices plus the complementary OOB set.
void bootstrap_sample(std::size_t n, Rng& rng,
                      std::vector<std::size_t>& in_bag,
                      std::vector<std::size_t>& oob) {
  in_bag.resize(n);
  std::vector<bool> seen(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const auto j = static_cast<std::size_t>(rng.uniform_index(n));
    in_bag[i] = j;
    seen[j] = true;
  }
  oob.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (!seen[i]) oob.push_back(i);
  }
}

}  // namespace

RandomForestClassifier::RandomForestClassifier(ForestConfig config,
                                               std::uint64_t seed)
    : config_(config), seed_(seed) {
  XDMODML_CHECK(config.num_trees > 0, "forest requires >= 1 tree");
}

void RandomForestClassifier::fit(const Matrix& X, std::span<const int> y,
                                 int num_classes) {
  XDMODML_CHECK(X.rows() == y.size() && X.rows() > 0,
                "fit requires matching non-empty X and y");
  XDMODML_CHECK(num_classes > 0, "num_classes must be positive");
  num_classes_ = num_classes;
  num_features_ = X.cols();

  TreeConfig tree_config = config_.tree;
  if (tree_config.max_features == 0) {
    tree_config.max_features = default_mtry(num_features_, true);
  }

  const std::size_t t = config_.num_trees;
  trees_.assign(t, detail::TreeEngine(
                       detail::TreeEngine::Task::kClassification,
                       tree_config));
  oob_rows_.assign(t, {});

  // Pre-split one RNG stream per tree for scheduling-independent results.
  Rng root(seed_);
  std::vector<Rng> streams;
  streams.reserve(t);
  for (std::size_t i = 0; i < t; ++i) streams.push_back(root.split());

  const std::size_t n = X.rows();
  auto train_tree = [&](std::size_t i) {
    Rng& rng = streams[i];
    std::vector<std::size_t> in_bag;
    if (config_.bootstrap) {
      bootstrap_sample(n, rng, in_bag, oob_rows_[i]);
    } else {
      in_bag.resize(n);
      std::iota(in_bag.begin(), in_bag.end(), 0);
    }
    trees_[i].fit(X, y, {}, num_classes, in_bag, rng);
  };
  if (config_.parallel) {
    ThreadPool::global().parallel_for(0, t, train_tree);
  } else {
    for (std::size_t i = 0; i < t; ++i) train_tree(i);
  }

  // Aggregate impurity importance across trees.
  impurity_importance_.assign(num_features_, 0.0);
  for (const auto& tree : trees_) {
    const auto imp = tree.impurity_importance();
    for (std::size_t f = 0; f < num_features_; ++f) {
      impurity_importance_[f] += imp[f];
    }
  }
  const double total = std::accumulate(impurity_importance_.begin(),
                                       impurity_importance_.end(), 0.0);
  if (total > 0.0) {
    for (auto& v : impurity_importance_) v /= total;
  }

  // OOB error: majority vote over the trees for which each row was OOB.
  oob_error_ = -1.0;
  if (config_.bootstrap) {
    std::vector<std::vector<std::size_t>> votes(
        n, std::vector<std::size_t>(static_cast<std::size_t>(num_classes), 0));
    for (std::size_t i = 0; i < t; ++i) {
      for (const auto row : oob_rows_[i]) {
        const auto probs = trees_[i].leaf_probs(X.row(row));
        const auto best = static_cast<std::size_t>(
            std::max_element(probs.begin(), probs.end()) - probs.begin());
        ++votes[row][best];
      }
    }
    std::size_t evaluated = 0;
    std::size_t wrong = 0;
    for (std::size_t row = 0; row < n; ++row) {
      const auto total_votes = std::accumulate(votes[row].begin(),
                                               votes[row].end(),
                                               std::size_t{0});
      if (total_votes == 0) continue;
      ++evaluated;
      const auto best = static_cast<int>(
          std::max_element(votes[row].begin(), votes[row].end()) -
          votes[row].begin());
      if (best != y[row]) ++wrong;
    }
    if (evaluated > 0) {
      oob_error_ =
          static_cast<double>(wrong) / static_cast<double>(evaluated);
    }
  }
}

std::vector<double> RandomForestClassifier::predict_proba(
    std::span<const double> x) const {
  XDMODML_CHECK(!trees_.empty(), "predict before fit");
  std::vector<double> proba(static_cast<std::size_t>(num_classes_), 0.0);
  for (const auto& tree : trees_) {
    const auto probs = tree.leaf_probs(x);
    for (std::size_t c = 0; c < proba.size(); ++c) proba[c] += probs[c];
  }
  const auto t = static_cast<double>(trees_.size());
  for (auto& p : proba) p /= t;
  return proba;
}

double RandomForestClassifier::oob_error() const {
  XDMODML_CHECK(oob_error_ >= 0.0,
                "OOB error unavailable (bootstrap disabled or not fitted)");
  return oob_error_;
}

std::vector<FeatureImportance>
RandomForestClassifier::permutation_importance(const Matrix& X,
                                               std::span<const int> y,
                                               std::uint64_t seed) const {
  XDMODML_CHECK(!trees_.empty(), "importance before fit");
  XDMODML_CHECK(config_.bootstrap, "permutation importance requires OOB rows");
  XDMODML_CHECK(X.rows() == y.size() && X.cols() == num_features_,
                "X/y must be the training data");

  const std::size_t t = trees_.size();
  // decrease[tree][feature]
  std::vector<std::vector<double>> decrease(
      t, std::vector<double>(num_features_, 0.0));
  std::vector<char> tree_used(t, 0);

  Rng root(seed);
  std::vector<Rng> streams;
  streams.reserve(t);
  for (std::size_t i = 0; i < t; ++i) streams.push_back(root.split());

  auto evaluate_tree = [&](std::size_t i) {
    const auto& oob = oob_rows_[i];
    if (oob.empty()) return;
    tree_used[i] = 1;
    Rng& rng = streams[i];
    const auto n_oob = static_cast<double>(oob.size());

    // Baseline accuracy on this tree's OOB rows.
    std::size_t baseline_correct = 0;
    for (const auto row : oob) {
      const auto probs = trees_[i].leaf_probs(X.row(row));
      const auto best = static_cast<int>(
          std::max_element(probs.begin(), probs.end()) - probs.begin());
      if (best == y[row]) ++baseline_correct;
    }
    const double baseline =
        static_cast<double>(baseline_correct) / n_oob;

    std::vector<double> scratch;
    std::vector<double> permuted(oob.size());
    for (std::size_t f = 0; f < num_features_; ++f) {
      // Permute feature f among the OOB rows.
      permuted.resize(oob.size());
      for (std::size_t k = 0; k < oob.size(); ++k) {
        permuted[k] = X(oob[k], f);
      }
      rng.shuffle(permuted);
      std::size_t correct = 0;
      for (std::size_t k = 0; k < oob.size(); ++k) {
        const auto row = X.row(oob[k]);
        scratch.assign(row.begin(), row.end());
        scratch[f] = permuted[k];
        const auto probs = trees_[i].leaf_probs(scratch);
        const auto best = static_cast<int>(
            std::max_element(probs.begin(), probs.end()) - probs.begin());
        if (best == y[oob[k]]) ++correct;
      }
      decrease[i][f] = baseline - static_cast<double>(correct) / n_oob;
    }
  };
  if (config_.parallel) {
    ThreadPool::global().parallel_for(0, t, evaluate_tree);
  } else {
    for (std::size_t i = 0; i < t; ++i) evaluate_tree(i);
  }

  std::size_t used = 0;
  for (const auto flag : tree_used) used += flag;
  XDMODML_CHECK(used > 0, "no tree had OOB rows");

  std::vector<FeatureImportance> out(num_features_);
  for (std::size_t f = 0; f < num_features_; ++f) {
    double sum = 0.0;
    for (std::size_t i = 0; i < t; ++i) sum += decrease[i][f];
    out[f].feature = f;
    out[f].mean_decrease_accuracy = sum / static_cast<double>(used);
    out[f].mean_decrease_impurity = impurity_importance_[f];
  }
  return out;
}

void RandomForestClassifier::save(std::ostream& out) const {
  XDMODML_CHECK(!trees_.empty(), "cannot save an untrained forest");
  io::write_tag(out, "forest-v1");
  io::write_scalar(out, "classes",
                   static_cast<std::int64_t>(num_classes_));
  io::write_scalar(out, "features",
                   static_cast<std::int64_t>(num_features_));
  io::write_scalar(out, "trees", static_cast<std::int64_t>(trees_.size()));
  for (const auto& tree : trees_) tree.save(out);
  io::write_vector(out, "impurity_importance", impurity_importance_);
}

RandomForestClassifier RandomForestClassifier::load(std::istream& in) {
  io::TokenReader reader(in);
  reader.expect("forest-v1");
  RandomForestClassifier forest;
  forest.num_classes_ = static_cast<int>(reader.read_int("classes"));
  forest.num_features_ =
      static_cast<std::size_t>(reader.read_int("features"));
  const auto tree_count = reader.read_int("trees");
  XDMODML_CHECK(tree_count > 0, "corrupt forest tree count");
  forest.trees_.reserve(static_cast<std::size_t>(tree_count));
  for (std::int64_t i = 0; i < tree_count; ++i) {
    forest.trees_.push_back(detail::TreeEngine::load(in));
  }
  io::TokenReader tail(in);
  forest.impurity_importance_ = tail.read_vector("impurity_importance");
  forest.oob_error_ = -1.0;  // training-time artifact, not serialized
  return forest;
}

RandomForestRegressor::RandomForestRegressor(ForestConfig config,
                                             std::uint64_t seed)
    : config_(config), seed_(seed) {
  XDMODML_CHECK(config.num_trees > 0, "forest requires >= 1 tree");
}

void RandomForestRegressor::fit(const Matrix& X, std::span<const double> y) {
  XDMODML_CHECK(X.rows() == y.size() && X.rows() > 0,
                "fit requires matching non-empty X and y");
  num_features_ = X.cols();

  TreeConfig tree_config = config_.tree;
  if (tree_config.max_features == 0) {
    tree_config.max_features = default_mtry(num_features_, false);
  }
  if (tree_config.min_samples_leaf < 2) {
    tree_config.min_samples_leaf = 2;  // randomForest regression default ~5
  }

  const std::size_t t = config_.num_trees;
  trees_.assign(
      t, detail::TreeEngine(detail::TreeEngine::Task::kRegression,
                            tree_config));
  std::vector<std::vector<std::size_t>> oob_rows(t);

  Rng root(seed_);
  std::vector<Rng> streams;
  streams.reserve(t);
  for (std::size_t i = 0; i < t; ++i) streams.push_back(root.split());

  const std::size_t n = X.rows();
  auto train_tree = [&](std::size_t i) {
    Rng& rng = streams[i];
    std::vector<std::size_t> in_bag;
    if (config_.bootstrap) {
      bootstrap_sample(n, rng, in_bag, oob_rows[i]);
    } else {
      in_bag.resize(n);
      std::iota(in_bag.begin(), in_bag.end(), 0);
    }
    trees_[i].fit(X, {}, y, 0, in_bag, rng);
  };
  if (config_.parallel) {
    ThreadPool::global().parallel_for(0, t, train_tree);
  } else {
    for (std::size_t i = 0; i < t; ++i) train_tree(i);
  }

  // OOB MSE.
  oob_mse_ = -1.0;
  if (config_.bootstrap) {
    std::vector<double> pred_sum(n, 0.0);
    std::vector<std::size_t> pred_count(n, 0);
    for (std::size_t i = 0; i < t; ++i) {
      for (const auto row : oob_rows[i]) {
        pred_sum[row] += trees_[i].leaf_value(X.row(row));
        ++pred_count[row];
      }
    }
    double se = 0.0;
    std::size_t evaluated = 0;
    for (std::size_t row = 0; row < n; ++row) {
      if (pred_count[row] == 0) continue;
      const double pred =
          pred_sum[row] / static_cast<double>(pred_count[row]);
      const double d = pred - y[row];
      se += d * d;
      ++evaluated;
    }
    if (evaluated > 0) oob_mse_ = se / static_cast<double>(evaluated);
  }
}

double RandomForestRegressor::predict(std::span<const double> x) const {
  XDMODML_CHECK(!trees_.empty(), "predict before fit");
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree.leaf_value(x);
  return sum / static_cast<double>(trees_.size());
}

void RandomForestRegressor::save(std::ostream& out) const {
  XDMODML_CHECK(!trees_.empty(), "cannot save an untrained forest");
  io::write_tag(out, "forest-reg-v1");
  io::write_scalar(out, "features",
                   static_cast<std::int64_t>(num_features_));
  io::write_scalar(out, "trees", static_cast<std::int64_t>(trees_.size()));
  for (const auto& tree : trees_) tree.save(out);
}

RandomForestRegressor RandomForestRegressor::load(std::istream& in) {
  io::TokenReader reader(in);
  reader.expect("forest-reg-v1");
  RandomForestRegressor forest;
  forest.num_features_ =
      static_cast<std::size_t>(reader.read_int("features"));
  const auto tree_count = reader.read_int("trees");
  XDMODML_CHECK(tree_count > 0, "corrupt forest tree count");
  forest.trees_.reserve(static_cast<std::size_t>(tree_count));
  for (std::int64_t i = 0; i < tree_count; ++i) {
    forest.trees_.push_back(detail::TreeEngine::load(in));
  }
  forest.oob_mse_ = -1.0;
  return forest;
}

double RandomForestRegressor::oob_mse() const {
  XDMODML_CHECK(oob_mse_ >= 0.0,
                "OOB MSE unavailable (bootstrap disabled or not fitted)");
  return oob_mse_;
}

}  // namespace xdmodml::ml
