#include "ml/random_forest.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <numeric>

#include "ml/binned_dataset.hpp"
#include "ml/model_io.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace xdmodml::ml {

namespace {

/// Default mtry: sqrt(F) for classification, F/3 for regression.
std::size_t default_mtry(std::size_t num_features, bool classification) {
  if (classification) {
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::sqrt(static_cast<double>(num_features))));
  }
  return std::max<std::size_t>(1, num_features / 3);
}

/// Bootstrap sample drawn from `rows` (|rows| draws with replacement)
/// plus the complementary OOB set, both as global row indices.  `seen`
/// is caller-owned scratch so a range of trees reuses one bitmap
/// instead of allocating per call.
void bootstrap_sample(std::span<const std::size_t> rows, Rng& rng,
                      std::vector<std::size_t>& in_bag,
                      std::vector<std::size_t>& oob,
                      std::vector<char>& seen) {
  const std::size_t n = rows.size();
  in_bag.resize(n);
  seen.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto j = static_cast<std::size_t>(rng.uniform_index(n));
    in_bag[i] = rows[j];
    seen[j] = 1;
  }
  oob.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (!seen[i]) oob.push_back(rows[i]);
  }
}

/// Bins X once for the whole forest when the resolved split algorithm
/// wants histograms and the caller did not supply a shared dataset.
std::shared_ptr<const BinnedDataset> ensure_binned(
    const Matrix& X, const TreeConfig& tree_config,
    std::shared_ptr<const BinnedDataset> binned) {
  if (binned != nullptr) {
    XDMODML_CHECK(binned->rows() == X.rows() &&
                      binned->features() == X.cols(),
                  "shared binned dataset does not match X");
    return binned;
  }
  if (resolve_split_algo(tree_config.split_algo) == SplitAlgo::kHist) {
    return std::make_shared<const BinnedDataset>(X);
  }
  return nullptr;
}

}  // namespace

RandomForestClassifier::RandomForestClassifier(ForestConfig config,
                                               std::uint64_t seed)
    : config_(config), seed_(seed) {
  XDMODML_CHECK(config.num_trees > 0, "forest requires >= 1 tree");
}

void RandomForestClassifier::fit(const Matrix& X, std::span<const int> y,
                                 int num_classes) {
  std::vector<std::size_t> all(X.rows());
  std::iota(all.begin(), all.end(), 0);
  fit_rows(X, y, num_classes, all, nullptr);
}

void RandomForestClassifier::fit_rows(
    const Matrix& X, std::span<const int> y, int num_classes,
    std::span<const std::size_t> rows,
    std::shared_ptr<const BinnedDataset> binned) {
  XDMODML_CHECK(X.rows() == y.size() && X.rows() > 0,
                "fit requires matching non-empty X and y");
  XDMODML_CHECK(!rows.empty(), "fit_rows requires a non-empty row subset");
  XDMODML_CHECK(num_classes > 0, "num_classes must be positive");
  num_classes_ = num_classes;
  num_features_ = X.cols();

  TreeConfig tree_config = config_.tree;
  if (tree_config.max_features == 0) {
    tree_config.max_features = default_mtry(num_features_, true);
  }
  binned = ensure_binned(X, tree_config, std::move(binned));

  const std::size_t t = config_.num_trees;
  trees_.assign(t, detail::TreeEngine(
                       detail::TreeEngine::Task::kClassification,
                       tree_config));
  oob_rows_.assign(t, {});

  // Pre-split one RNG stream per tree for scheduling-independent results.
  Rng root(seed_);
  std::vector<Rng> streams;
  streams.reserve(t);
  for (std::size_t i = 0; i < t; ++i) streams.push_back(root.split());

  auto train_range = [&](std::size_t lo, std::size_t hi) {
    // Per-range scratch: the in-bag list and bootstrap bitmap are reused
    // across every tree of the range instead of reallocated per tree.
    std::vector<std::size_t> in_bag;
    std::vector<char> seen;
    for (std::size_t i = lo; i < hi; ++i) {
      Rng& rng = streams[i];
      if (config_.bootstrap) {
        bootstrap_sample(rows, rng, in_bag, oob_rows_[i], seen);
      } else {
        in_bag.assign(rows.begin(), rows.end());
      }
      trees_[i].fit(X, y, {}, num_classes, in_bag, rng, binned.get());
    }
  };
  if (config_.parallel) {
    ThreadPool::global().parallel_for_ranges(0, t, 1, train_range);
  } else {
    train_range(0, t);
  }

  // Aggregate impurity importance and OOB votes in one parallel pass
  // over the trees.  Each range produces a private tally; tallies are
  // merged in tree order (sorted by range start), so the floating-point
  // importance sums are independent of which worker ran which range.
  const auto num_class_sz = static_cast<std::size_t>(num_classes);
  const std::size_t total_rows = X.rows();
  struct Partial {
    std::size_t lo = 0;
    std::vector<double> importance;
    std::vector<std::uint32_t> votes;  // row-major total_rows x classes
  };
  std::vector<Partial> partials;
  std::mutex partials_mutex;
  auto aggregate_range = [&](std::size_t lo, std::size_t hi) {
    Partial part;
    part.lo = lo;
    part.importance.assign(num_features_, 0.0);
    if (config_.bootstrap) part.votes.assign(total_rows * num_class_sz, 0);
    for (std::size_t i = lo; i < hi; ++i) {
      const auto imp = trees_[i].impurity_importance();
      for (std::size_t f = 0; f < num_features_; ++f) {
        part.importance[f] += imp[f];
      }
      if (config_.bootstrap) {
        for (const auto row : oob_rows_[i]) {
          const auto probs = trees_[i].leaf_probs(X.row(row));
          const auto best = static_cast<std::size_t>(
              std::max_element(probs.begin(), probs.end()) - probs.begin());
          ++part.votes[row * num_class_sz + best];
        }
      }
    }
    const std::lock_guard lock(partials_mutex);
    partials.push_back(std::move(part));
  };
  if (config_.parallel) {
    ThreadPool::global().parallel_for_ranges(0, t, 1, aggregate_range);
  } else {
    aggregate_range(0, t);
  }
  std::sort(partials.begin(), partials.end(),
            [](const Partial& a, const Partial& b) { return a.lo < b.lo; });

  impurity_importance_.assign(num_features_, 0.0);
  std::vector<std::uint32_t> votes;
  if (config_.bootstrap) votes.assign(total_rows * num_class_sz, 0);
  for (const auto& part : partials) {
    for (std::size_t f = 0; f < num_features_; ++f) {
      impurity_importance_[f] += part.importance[f];
    }
    for (std::size_t k = 0; k < part.votes.size(); ++k) {
      votes[k] += part.votes[k];
    }
  }
  const double total = std::accumulate(impurity_importance_.begin(),
                                       impurity_importance_.end(), 0.0);
  if (total > 0.0) {
    for (auto& v : impurity_importance_) v /= total;
  }

  // OOB error: majority vote over the trees for which each row was OOB.
  oob_error_ = -1.0;
  if (config_.bootstrap) {
    std::size_t evaluated = 0;
    std::size_t wrong = 0;
    for (const auto row : rows) {
      const std::uint32_t* row_votes = votes.data() + row * num_class_sz;
      const auto total_votes =
          std::accumulate(row_votes, row_votes + num_class_sz,
                          std::uint64_t{0});
      if (total_votes == 0) continue;
      ++evaluated;
      const auto best = static_cast<int>(
          std::max_element(row_votes, row_votes + num_class_sz) - row_votes);
      if (best != y[row]) ++wrong;
    }
    if (evaluated > 0) {
      oob_error_ =
          static_cast<double>(wrong) / static_cast<double>(evaluated);
    }
  }
}

std::vector<double> RandomForestClassifier::predict_proba(
    std::span<const double> x) const {
  XDMODML_CHECK(!trees_.empty(), "predict before fit");
  std::vector<double> proba(static_cast<std::size_t>(num_classes_), 0.0);
  for (const auto& tree : trees_) {
    const auto probs = tree.leaf_probs(x);
    for (std::size_t c = 0; c < proba.size(); ++c) proba[c] += probs[c];
  }
  const auto t = static_cast<double>(trees_.size());
  for (auto& p : proba) p /= t;
  return proba;
}

double RandomForestClassifier::oob_error() const {
  XDMODML_CHECK(oob_error_ >= 0.0,
                "OOB error unavailable (bootstrap disabled or not fitted)");
  return oob_error_;
}

std::vector<FeatureImportance>
RandomForestClassifier::permutation_importance(const Matrix& X,
                                               std::span<const int> y,
                                               std::uint64_t seed) const {
  XDMODML_CHECK(!trees_.empty(), "importance before fit");
  XDMODML_CHECK(config_.bootstrap, "permutation importance requires OOB rows");
  XDMODML_CHECK(X.rows() == y.size() && X.cols() == num_features_,
                "X/y must be the training data");

  const std::size_t t = trees_.size();
  // decrease[tree][feature]
  std::vector<std::vector<double>> decrease(
      t, std::vector<double>(num_features_, 0.0));
  std::vector<char> tree_used(t, 0);

  Rng root(seed);
  std::vector<Rng> streams;
  streams.reserve(t);
  for (std::size_t i = 0; i < t; ++i) streams.push_back(root.split());

  auto evaluate_tree = [&](std::size_t i) {
    const auto& oob = oob_rows_[i];
    if (oob.empty()) return;
    tree_used[i] = 1;
    Rng& rng = streams[i];
    const auto n_oob = static_cast<double>(oob.size());

    // Baseline accuracy on this tree's OOB rows.
    std::size_t baseline_correct = 0;
    for (const auto row : oob) {
      const auto probs = trees_[i].leaf_probs(X.row(row));
      const auto best = static_cast<int>(
          std::max_element(probs.begin(), probs.end()) - probs.begin());
      if (best == y[row]) ++baseline_correct;
    }
    const double baseline =
        static_cast<double>(baseline_correct) / n_oob;

    std::vector<double> scratch;
    std::vector<double> permuted(oob.size());
    for (std::size_t f = 0; f < num_features_; ++f) {
      // Permute feature f among the OOB rows.
      permuted.resize(oob.size());
      for (std::size_t k = 0; k < oob.size(); ++k) {
        permuted[k] = X(oob[k], f);
      }
      rng.shuffle(permuted);
      std::size_t correct = 0;
      for (std::size_t k = 0; k < oob.size(); ++k) {
        const auto row = X.row(oob[k]);
        scratch.assign(row.begin(), row.end());
        scratch[f] = permuted[k];
        const auto probs = trees_[i].leaf_probs(scratch);
        const auto best = static_cast<int>(
            std::max_element(probs.begin(), probs.end()) - probs.begin());
        if (best == y[oob[k]]) ++correct;
      }
      decrease[i][f] = baseline - static_cast<double>(correct) / n_oob;
    }
  };
  if (config_.parallel) {
    ThreadPool::global().parallel_for(0, t, evaluate_tree);
  } else {
    for (std::size_t i = 0; i < t; ++i) evaluate_tree(i);
  }

  std::size_t used = 0;
  for (const auto flag : tree_used) used += flag;
  XDMODML_CHECK(used > 0, "no tree had OOB rows");

  std::vector<FeatureImportance> out(num_features_);
  for (std::size_t f = 0; f < num_features_; ++f) {
    double sum = 0.0;
    for (std::size_t i = 0; i < t; ++i) sum += decrease[i][f];
    out[f].feature = f;
    out[f].mean_decrease_accuracy = sum / static_cast<double>(used);
    out[f].mean_decrease_impurity = impurity_importance_[f];
  }
  return out;
}

void RandomForestClassifier::save(std::ostream& out) const {
  XDMODML_CHECK(!trees_.empty(), "cannot save an untrained forest");
  io::write_tag(out, "forest-v1");
  io::write_scalar(out, "classes",
                   static_cast<std::int64_t>(num_classes_));
  io::write_scalar(out, "features",
                   static_cast<std::int64_t>(num_features_));
  io::write_scalar(out, "trees", static_cast<std::int64_t>(trees_.size()));
  for (const auto& tree : trees_) tree.save(out);
  io::write_vector(out, "impurity_importance", impurity_importance_);
}

RandomForestClassifier RandomForestClassifier::load(std::istream& in) {
  io::TokenReader reader(in);
  reader.expect("forest-v1");
  RandomForestClassifier forest;
  forest.num_classes_ = static_cast<int>(reader.read_int("classes"));
  forest.num_features_ =
      static_cast<std::size_t>(reader.read_int("features"));
  const auto tree_count = reader.read_int("trees");
  XDMODML_CHECK(tree_count > 0, "corrupt forest tree count");
  forest.trees_.reserve(static_cast<std::size_t>(tree_count));
  for (std::int64_t i = 0; i < tree_count; ++i) {
    forest.trees_.push_back(detail::TreeEngine::load(in));
  }
  io::TokenReader tail(in);
  forest.impurity_importance_ = tail.read_vector("impurity_importance");
  forest.oob_error_ = -1.0;  // training-time artifact, not serialized
  return forest;
}

RandomForestRegressor::RandomForestRegressor(ForestConfig config,
                                             std::uint64_t seed)
    : config_(config), seed_(seed) {
  XDMODML_CHECK(config.num_trees > 0, "forest requires >= 1 tree");
}

void RandomForestRegressor::fit(const Matrix& X, std::span<const double> y) {
  std::vector<std::size_t> all(X.rows());
  std::iota(all.begin(), all.end(), 0);
  fit_rows(X, y, all, nullptr);
}

void RandomForestRegressor::fit_rows(
    const Matrix& X, std::span<const double> y,
    std::span<const std::size_t> rows,
    std::shared_ptr<const BinnedDataset> binned) {
  XDMODML_CHECK(X.rows() == y.size() && X.rows() > 0,
                "fit requires matching non-empty X and y");
  XDMODML_CHECK(!rows.empty(), "fit_rows requires a non-empty row subset");
  num_features_ = X.cols();

  TreeConfig tree_config = config_.tree;
  if (tree_config.max_features == 0) {
    tree_config.max_features = default_mtry(num_features_, false);
  }
  if (tree_config.min_samples_leaf < 2) {
    tree_config.min_samples_leaf = 2;  // randomForest regression default ~5
  }
  binned = ensure_binned(X, tree_config, std::move(binned));

  const std::size_t t = config_.num_trees;
  trees_.assign(
      t, detail::TreeEngine(detail::TreeEngine::Task::kRegression,
                            tree_config));
  std::vector<std::vector<std::size_t>> oob_rows(t);

  Rng root(seed_);
  std::vector<Rng> streams;
  streams.reserve(t);
  for (std::size_t i = 0; i < t; ++i) streams.push_back(root.split());

  auto train_range = [&](std::size_t lo, std::size_t hi) {
    std::vector<std::size_t> in_bag;
    std::vector<char> seen;
    for (std::size_t i = lo; i < hi; ++i) {
      Rng& rng = streams[i];
      if (config_.bootstrap) {
        bootstrap_sample(rows, rng, in_bag, oob_rows[i], seen);
      } else {
        in_bag.assign(rows.begin(), rows.end());
      }
      trees_[i].fit(X, {}, y, 0, in_bag, rng, binned.get());
    }
  };
  if (config_.parallel) {
    ThreadPool::global().parallel_for_ranges(0, t, 1, train_range);
  } else {
    train_range(0, t);
  }

  // OOB MSE.
  oob_mse_ = -1.0;
  if (config_.bootstrap) {
    std::vector<double> pred_sum(X.rows(), 0.0);
    std::vector<std::size_t> pred_count(X.rows(), 0);
    for (std::size_t i = 0; i < t; ++i) {
      for (const auto row : oob_rows[i]) {
        pred_sum[row] += trees_[i].leaf_value(X.row(row));
        ++pred_count[row];
      }
    }
    double se = 0.0;
    std::size_t evaluated = 0;
    for (const auto row : rows) {
      if (pred_count[row] == 0) continue;
      const double pred =
          pred_sum[row] / static_cast<double>(pred_count[row]);
      const double d = pred - y[row];
      se += d * d;
      ++evaluated;
    }
    if (evaluated > 0) oob_mse_ = se / static_cast<double>(evaluated);
  }
}

double RandomForestRegressor::predict(std::span<const double> x) const {
  XDMODML_CHECK(!trees_.empty(), "predict before fit");
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree.leaf_value(x);
  return sum / static_cast<double>(trees_.size());
}

void RandomForestRegressor::save(std::ostream& out) const {
  XDMODML_CHECK(!trees_.empty(), "cannot save an untrained forest");
  io::write_tag(out, "forest-reg-v1");
  io::write_scalar(out, "features",
                   static_cast<std::int64_t>(num_features_));
  io::write_scalar(out, "trees", static_cast<std::int64_t>(trees_.size()));
  for (const auto& tree : trees_) tree.save(out);
}

RandomForestRegressor RandomForestRegressor::load(std::istream& in) {
  io::TokenReader reader(in);
  reader.expect("forest-reg-v1");
  RandomForestRegressor forest;
  forest.num_features_ =
      static_cast<std::size_t>(reader.read_int("features"));
  const auto tree_count = reader.read_int("trees");
  XDMODML_CHECK(tree_count > 0, "corrupt forest tree count");
  forest.trees_.reserve(static_cast<std::size_t>(tree_count));
  for (std::int64_t i = 0; i < tree_count; ++i) {
    forest.trees_.push_back(detail::TreeEngine::load(in));
  }
  forest.oob_mse_ = -1.0;
  return forest;
}

double RandomForestRegressor::oob_mse() const {
  XDMODML_CHECK(oob_mse_ >= 0.0,
                "OOB MSE unavailable (bootstrap disabled or not fitted)");
  return oob_mse_;
}

}  // namespace xdmodml::ml
