// Support vector machines: binary C-SVC, one-vs-one multiclass with
// probability outputs, and ε-SVR — functional equivalents of the R e1071
// (LIBSVM) models the paper uses with γ = 0.1, C = 1000.
//
// Probability machinery follows LIBSVM:
//  * per-binary-machine Platt scaling, with the sigmoid fit by the
//    Lin–Weng Newton iteration on cross-validated decision values;
//  * multiclass probabilities by pairwise coupling (Wu, Lin & Weng 2004,
//    the `multiclass_probability` fixed-point iteration).
// These probabilities drive every threshold figure in the paper (1–4).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "ml/classifier.hpp"
#include "ml/kernel.hpp"
#include "ml/smo.hpp"
#include "util/matrix.hpp"

namespace xdmodml::ml {

/// Shared SVM hyper-parameters (paper defaults).
struct SvmConfig {
  Kernel kernel = Kernel::rbf(0.1);
  double c = 1000.0;            ///< soft-margin penalty
  /// Optional per-class multipliers on C (size = num_classes).  The
  /// paper suggests class weighting to counter the native mix's
  /// imbalance ("could possibly be ameliorated by weighting the
  /// classes"); rare classes get larger effective C.
  std::vector<double> class_weights;
  SmoConfig smo;                ///< solver knobs
  bool probability = true;      ///< fit Platt sigmoids (needed for Figs 1–4)
  std::size_t platt_cv_folds = 3;  ///< CV folds for calibration values
  bool parallel = true;         ///< train OvO machines on the thread pool
  double epsilon = 0.1;         ///< ε-SVR tube half-width
  /// Vectorized norm-cached Gram-row engine for training kernels.  Off =
  /// the scalar per-pair Kernel::operator() path (ablation / perf
  /// baseline; results are numerically equivalent either way).
  bool gram_engine = true;
  /// Share one thread-safe full-matrix kernel-row cache across all
  /// one-vs-one sub-problems (each Gram row is computed once and sliced
  /// by every machine whose subset contains it).  Requires gram_engine.
  bool share_kernel_cache = true;
  /// Memory budget for the shared cache (bytes of row storage).
  std::size_t shared_cache_bytes = 256ull << 20;
  /// Storage precision of the shared cache's rows.  Float32 (default)
  /// doubles the rows the byte budget affords and halves reuse
  /// bandwidth; float64 is the exact ablation arm (run-time flag).
  GramPrecision cache_precision = GramPrecision::kFloat32;
  /// Storage precision of the compiled inference plan's deduplicated
  /// support-vector pool (see ml/svm_plan.hpp).  Float64 (default)
  /// keeps compiled decision values within ~1e-10 of the legacy scalar
  /// path; float32 halves the pool bytes at a magnitude-scaled accuracy
  /// cost (the paper's features are standardized, so coordinates are
  /// O(1) and the quantization error is benign).
  GramPrecision plan_precision = GramPrecision::kFloat64;
};

/// Parameters of a fitted Platt sigmoid  P(+1|f) = 1/(1+exp(A f + B)).
struct PlattSigmoid {
  double a = 0.0;
  double b = 0.0;

  double probability(double decision_value) const;
};

/// Fits the Platt sigmoid by the Lin–Weng regularized Newton method.
/// `decision_values` and `labels` (±1) must be parallel and non-empty.
PlattSigmoid fit_platt_sigmoid(std::span<const double> decision_values,
                               std::span<const signed char> labels);

/// Pairwise coupling of one-vs-one probabilities into class probabilities
/// (Wu–Lin–Weng).  `pairwise(i, j)` for i < j is P(class i | {i, j}, x).
std::vector<double> couple_pairwise_probabilities(const Matrix& pairwise);

/// A single two-class soft-margin SVM.
class BinarySvm {
 public:
  /// Trains on rows of X with ±1 labels.  When `config.probability` is
  /// set, also fits a Platt sigmoid on cross-validated decision values.
  /// `c_positive` / `c_negative` scale C for the two classes (class
  /// weighting); 1.0 = unweighted.
  ///
  /// `shared_cache` (optional) is a kernel-row cache over a *full*
  /// training matrix of which X is a row subset; `shared_rows[i]` is the
  /// full-matrix row backing X's row i.  When provided, kernel rows are
  /// sliced out of the shared cache instead of being recomputed over the
  /// subset — the multiclass one-vs-one trainer passes one cache to all
  /// of its machines.
  void fit(const Matrix& X, std::span<const signed char> y,
           const SvmConfig& config, std::uint64_t seed = 1,
           double c_positive = 1.0, double c_negative = 1.0,
           SharedGramCache* shared_cache = nullptr,
           std::span<const std::size_t> shared_rows = {});

  /// Signed decision value f(x) = Σ coef_i k(sv_i, x) − rho.
  double decision_value(std::span<const double> x) const;

  /// P(label = +1 | x) via the Platt sigmoid (requires probability fit).
  double probability_positive(std::span<const double> x) const;

  bool has_probability() const { return has_platt_; }
  std::size_t num_support_vectors() const { return support_vectors_.rows(); }
  /// The gathered support-vector rows (inference-plan pool building).
  const Matrix& support_vectors() const { return support_vectors_; }
  /// Full-matrix row provenance per SV when fitted via a shared cache
  /// or loaded from a v2 file; empty otherwise.  Parallel to the SV
  /// rows when present.
  std::span<const std::size_t> sv_full_rows() const { return sv_full_rows_; }
  const Kernel& kernel() const { return kernel_; }
  double rho() const { return rho_; }
  /// alpha_i * y_i per support vector (|coef_i| = alpha_i); exposed for
  /// the float-vs-double equivalence tests.
  std::span<const double> coefficients() const { return coef_; }
  const PlattSigmoid& sigmoid() const;

  /// decision_value for a probe that is itself a row of the shared
  /// cache's full matrix: every k(sv, probe) is an entry of the probe's
  /// cached Gram row, so no kernel evaluation happens here.  Only valid
  /// when this machine was fitted through the same cache.  Used by the
  /// Platt CV folds and by `SvmClassifier::predict_shared` (CV test
  /// rows of a tuning sweep live in the same full matrix).
  double decision_value_cached(SharedGramCache& cache,
                               std::size_t full_row) const;

  /// Serialization of a trained machine.
  void save(std::ostream& out) const;
  static BinarySvm load(std::istream& in);

 private:
  void fit_decision(const Matrix& X, std::span<const signed char> y,
                    const SvmConfig& config, double c_positive,
                    double c_negative, SharedGramCache* shared_cache,
                    std::span<const std::size_t> shared_rows);

  Kernel kernel_;
  Matrix support_vectors_;
  std::vector<double> coef_;  ///< alpha_i * y_i, aligned with SV rows
  /// Full-matrix row index of each SV when fitted via a shared cache
  /// (empty otherwise); enables decision_value_cached.
  std::vector<std::size_t> sv_full_rows_;
  double rho_ = 0.0;
  PlattSigmoid platt_;
  bool has_platt_ = false;
  bool trained_ = false;
};

class SvmInferencePlan;  // ml/svm_plan.hpp

/// One-vs-one multiclass SVM with coupled probability outputs.
///
/// Prediction has two runtime-selectable paths (XDMODML_SVM_PREDICT,
/// see ml/svm_plan.hpp): the legacy per-machine scalar kernel walk, and
/// the compiled inference plan — one deduplicated support-vector pool
/// swept with SIMD kernel rows, shared by all machines.  The plan is
/// built after fit (compiled mode) or lazily and thread-safely on first
/// compiled prediction (e.g. after load).
class SvmClassifier final : public Classifier {
 public:
  explicit SvmClassifier(SvmConfig config = {}, std::uint64_t seed = 11);
  ~SvmClassifier() override;

  /// Copies share nothing: the copy re-derives its plan on first use.
  SvmClassifier(const SvmClassifier& other);
  SvmClassifier& operator=(const SvmClassifier& other);
  SvmClassifier(SvmClassifier&&) noexcept;
  SvmClassifier& operator=(SvmClassifier&&) noexcept;

  void fit(const Matrix& X, std::span<const int> y, int num_classes) override;

  /// Trains against an *external* full-matrix kernel-row cache.  X must
  /// be a row subset of the cache's backing matrix and `cache_rows[i]`
  /// the full-matrix row behind X's row i; the kernel must match
  /// `config.kernel`.  This is the cross-fit reuse hook: a tuning sweep
  /// builds one SharedGramCache per γ over the standardized full dataset
  /// and every CV fold of every C cell slices rows out of it, exactly
  /// the way one-vs-one machines already share the per-fit cache.  With
  /// `cache == nullptr` this is identical to fit().
  void fit_shared(const Matrix& X, std::span<const int> y, int num_classes,
                  SharedGramCache* cache,
                  std::span<const std::size_t> cache_rows);

  /// With probability fitting: pairwise-coupled class probabilities.
  /// Without: normalized vote fractions (ablation arm).
  std::vector<double> predict_proba(std::span<const double> x) const override;

  /// Predicted label.  In probability mode this is the argmax of the
  /// pairwise-coupled probability vector, so the label always agrees
  /// with `predict_proba` / `predict_with_probability` and a threshold
  /// on the top-class probability gates the *reported* class (the
  /// paper's Figures 1–4 workflow).  Without probability fitting the
  /// label comes from hard one-vs-one votes, ties resolving to the
  /// lowest class index.
  ///
  /// Note this deliberately differs from LIBSVM/e1071, which keep the
  /// vote label even when probabilities are fitted and can therefore
  /// report a label that disagrees with the probability argmax; that
  /// inconsistency is exactly the bug the threshold workflow tripped
  /// over.  The vote rule remains available via `predict_by_votes`.
  int predict(std::span<const double> x) const override;

  /// Hard one-vs-one vote label (LIBSVM's rule), independent of
  /// probability fitting.  Ties resolve to the lowest class index.
  int predict_by_votes(std::span<const double> x) const;

  /// Predicts probes that are themselves rows of `cache`'s full matrix,
  /// given by full-matrix row index.  Every k(sv, probe) the machines
  /// need is an entry of the probe's cached Gram row, so no kernel
  /// evaluations happen here — a tuning sweep's CV test folds reuse the
  /// very rows training filled.  Only valid after `fit_shared` through
  /// the same cache; follows `predict`'s labelling rule.
  std::vector<int> predict_shared(SharedGramCache& cache,
                                  std::span<const std::size_t> rows) const;

  /// Label + probability; the label is the argmax of `predict_proba`
  /// (coupled probabilities, or vote fractions without a Platt fit) and
  /// the probability is that same class's entry, so the pair is always
  /// self-consistent.
  Prediction predict_with_probability(
      std::span<const double> x) const override;

  /// Fused batch entry points: in compiled mode, blocks of query rows
  /// are swept against the shared support-vector pool (one pool read
  /// serves the whole block); in legacy mode these fall back to the
  /// per-row base-class loop.  Results match the single-row calls.
  std::vector<int> predict_batch(const Matrix& X) const override;
  std::vector<std::vector<double>> predict_proba_batch(
      const Matrix& X) const override;
  std::vector<Prediction> predict_batch_with_probability(
      const Matrix& X) const override;

  /// The compiled inference plan, built on first call (thread-safe via
  /// std::call_once; concurrent first predictions build exactly once).
  /// Requires a trained model.
  const SvmInferencePlan& inference_plan() const;

  /// The plan if some caller already forced its construction, else
  /// nullptr — report/metrics hooks peek without paying for a build.
  std::shared_ptr<const SvmInferencePlan> plan_if_built() const;

  /// Re-arms the plan with a new pool storage precision (f32/f64
  /// A/B arm).  Not thread-safe against concurrent predictions.
  void set_plan_precision(GramPrecision precision);

  int num_classes() const override { return num_classes_; }
  std::size_t num_machines() const { return machines_.size(); }
  /// The idx-th one-vs-one machine in lexicographic (a, b) order;
  /// exposed for the equivalence test layer.
  const BinarySvm& machine(std::size_t idx) const { return machines_[idx]; }
  std::size_t total_support_vectors() const;

  /// Serialization of a trained multiclass model.
  void save(std::ostream& out) const;
  static SvmClassifier load(std::istream& in);

 private:
  std::size_t machine_index(int a, int b) const;  // requires a < b

  /// True when this call should ride the compiled plan.
  bool use_compiled() const;
  /// predict_proba computed from a plan kernel row (coupled
  /// probabilities or vote fractions, mirroring the legacy rules).
  std::vector<double> proba_from_kernel_row(
      const SvmInferencePlan& plan, std::span<const double> krow) const;
  int votes_from_kernel_row(const SvmInferencePlan& plan,
                            std::span<const double> krow) const;

  SvmConfig config_;
  std::uint64_t seed_;
  int num_classes_ = 0;
  std::vector<BinarySvm> machines_;  // (0,1), (0,2), ..., (k-2,k-1)

  /// Lazily built compiled plan.  Behind a unique_ptr because
  /// std::once_flag is immovable and the classifier must stay movable
  /// (load() returns by value); defined in svm.cpp.
  struct PlanSlot;
  mutable std::unique_ptr<PlanSlot> plan_slot_;
};

/// ε-support-vector regression (doubled-variable SMO, as in LIBSVM).
class SvmRegressor final : public Regressor {
 public:
  explicit SvmRegressor(SvmConfig config = {});

  void fit(const Matrix& X, std::span<const double> y) override;
  double predict(std::span<const double> x) const override;

  std::size_t num_support_vectors() const { return support_vectors_.rows(); }

  /// Serialization of a trained regressor.
  void save(std::ostream& out) const;
  static SvmRegressor load(std::istream& in);

 private:
  SvmConfig config_;
  Kernel kernel_;
  Matrix support_vectors_;
  std::vector<double> coef_;
  double rho_ = 0.0;
  bool trained_ = false;
};

}  // namespace xdmodml::ml
