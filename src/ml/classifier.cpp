#include "ml/classifier.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace xdmodml::ml {

int Classifier::predict(std::span<const double> x) const {
  const auto proba = predict_proba(x);
  XDMODML_CHECK(!proba.empty(), "predict_proba returned no classes");
  const auto it = std::max_element(proba.begin(), proba.end());
  return static_cast<int>(it - proba.begin());
}

Prediction Classifier::predict_with_probability(
    std::span<const double> x) const {
  const auto proba = predict_proba(x);
  XDMODML_CHECK(!proba.empty(), "predict_proba returned no classes");
  const auto it = std::max_element(proba.begin(), proba.end());
  return {static_cast<int>(it - proba.begin()), *it};
}

std::vector<int> Classifier::predict_batch(const Matrix& X) const {
  std::vector<int> out(X.rows());
  ThreadPool::global().parallel_for(
      0, X.rows(), [&](std::size_t r) { out[r] = predict(X.row(r)); });
  return out;
}

std::vector<std::vector<double>> Classifier::predict_proba_batch(
    const Matrix& X) const {
  std::vector<std::vector<double>> out(X.rows());
  ThreadPool::global().parallel_for(
      0, X.rows(), [&](std::size_t r) { out[r] = predict_proba(X.row(r)); });
  return out;
}

std::vector<Prediction> Classifier::predict_batch_with_probability(
    const Matrix& X) const {
  std::vector<Prediction> out(X.rows());
  ThreadPool::global().parallel_for(0, X.rows(), [&](std::size_t r) {
    out[r] = predict_with_probability(X.row(r));
  });
  return out;
}

std::vector<double> Regressor::predict_batch(const Matrix& X) const {
  std::vector<double> out(X.rows());
  ThreadPool::global().parallel_for(
      0, X.rows(), [&](std::size_t r) { out[r] = predict(X.row(r)); });
  return out;
}

}  // namespace xdmodml::ml
