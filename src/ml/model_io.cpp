#include "ml/model_io.hpp"

#include <istream>
#include <limits>
#include <ostream>

#include "util/error.hpp"

namespace xdmodml::ml::io {

void write_tag(std::ostream& out, const std::string& tag) {
  out << tag << '\n';
}

void write_scalar(std::ostream& out, const std::string& tag, double value) {
  out.precision(std::numeric_limits<double>::max_digits10);
  out << tag << ' ' << value << '\n';
}

void write_scalar(std::ostream& out, const std::string& tag,
                  std::int64_t value) {
  out << tag << ' ' << value << '\n';
}

void write_string(std::ostream& out, const std::string& tag,
                  const std::string& value) {
  XDMODML_CHECK(value.find_first_of(" \t\n") == std::string::npos,
                "serialized strings must be token-safe");
  out << tag << ' ' << value << '\n';
}

void write_vector(std::ostream& out, const std::string& tag,
                  std::span<const double> values) {
  out.precision(std::numeric_limits<double>::max_digits10);
  out << tag << ' ' << values.size();
  for (const double v : values) out << ' ' << v;
  out << '\n';
}

void write_index_vector(std::ostream& out, const std::string& tag,
                        std::span<const std::size_t> values) {
  out << tag << ' ' << values.size();
  for (const std::size_t v : values) out << ' ' << v;
  out << '\n';
}

std::string TokenReader::next_token() {
  std::string token;
  if (!(in_ >> token)) {
    throw InvalidArgument("model stream truncated");
  }
  return token;
}

std::string TokenReader::read_tag() { return next_token(); }

void TokenReader::expect(const std::string& tag) {
  const auto token = next_token();
  XDMODML_CHECK(token == tag,
                "model stream: expected '" + tag + "', got '" + token + "'");
}

double TokenReader::read_double(const std::string& tag) {
  expect(tag);
  double v = 0.0;
  XDMODML_CHECK(static_cast<bool>(in_ >> v),
                "model stream: bad double for tag " + tag);
  return v;
}

std::int64_t TokenReader::read_int(const std::string& tag) {
  expect(tag);
  std::int64_t v = 0;
  XDMODML_CHECK(static_cast<bool>(in_ >> v),
                "model stream: bad integer for tag " + tag);
  return v;
}

std::string TokenReader::read_string(const std::string& tag) {
  expect(tag);
  return next_token();
}

std::vector<std::size_t> TokenReader::read_index_vector(
    const std::string& tag) {
  expect(tag);
  std::int64_t n = 0;
  XDMODML_CHECK(static_cast<bool>(in_ >> n) && n >= 0,
                "model stream: bad index vector length for tag " + tag);
  std::vector<std::size_t> values(static_cast<std::size_t>(n));
  for (auto& v : values) {
    std::int64_t raw = 0;
    XDMODML_CHECK(static_cast<bool>(in_ >> raw) && raw >= 0,
                  "model stream: bad index element for tag " + tag);
    v = static_cast<std::size_t>(raw);
  }
  return values;
}

std::vector<double> TokenReader::read_vector(const std::string& tag) {
  expect(tag);
  std::int64_t n = 0;
  XDMODML_CHECK(static_cast<bool>(in_ >> n) && n >= 0,
                "model stream: bad vector length for tag " + tag);
  std::vector<double> values(static_cast<std::size_t>(n));
  for (auto& v : values) {
    XDMODML_CHECK(static_cast<bool>(in_ >> v),
                  "model stream: bad vector element for tag " + tag);
  }
  return values;
}

}  // namespace xdmodml::ml::io
