// Quantile-binned feature codes for histogram-based tree training.
//
// The tree engine's exact split search re-sorts the samples reaching a
// node for every candidate feature — O(n log n) per feature per node.
// `BinnedDataset` pays that sort ONCE per feature for the whole matrix:
// each feature is quantile-binned into at most 256 bins and stored as
// column-major `uint8` codes.  A tree node then scores a feature by
// accumulating a per-bin histogram in one O(n) pass and scanning the
// (≤256) bins, and a forest bins once and trains every tree — and every
// CV fold, since folds are row subsets of the same matrix — against the
// same read-only code table.  This is the `SharedGramCache` idea applied
// to the forest path: precompute once, share across fits.
//
// Threshold reconstruction: alongside the codes we keep, per bin, the
// smallest and largest raw value that was binned into it.  A split
// between bins `lo < hi` materializes as the midpoint of
// `bin_max(lo)` and `bin_min(hi)` — when every distinct value gets its
// own bin this is bit-identical to the exact arm's midpoint between
// consecutive distinct values, which is what the binned-vs-exact
// equivalence tests lock down.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/matrix.hpp"

namespace xdmodml::ml {

/// Immutable quantile-binned view of a feature matrix.  Construction is
/// the only mutating phase; afterwards the object is safe to share
/// read-only across threads (forest training reads it concurrently).
class BinnedDataset {
 public:
  /// Codes are uint8, so at most 256 bins per feature.
  static constexpr std::size_t kMaxBins = 256;

  /// Bins every column of X.  `max_bins` caps the bins per feature
  /// (clamped to kMaxBins); features with fewer distinct values get one
  /// bin per distinct value, which makes binned split search exact.
  explicit BinnedDataset(const Matrix& X, std::size_t max_bins = kMaxBins);

  std::size_t rows() const { return rows_; }
  std::size_t features() const { return bins_.size(); }

  /// Bins actually used by feature f (>= 1; 1 means constant).
  std::size_t num_bins(std::size_t f) const { return bins_[f]; }

  /// Largest num_bins over all features (sizing for histogram buffers).
  std::size_t max_bins_used() const { return max_bins_used_; }

  /// Column-major code column for feature f (length rows()).
  const std::uint8_t* column(std::size_t f) const {
    return codes_.data() + f * rows_;
  }

  std::uint8_t code(std::size_t row, std::size_t f) const {
    return codes_[f * rows_ + row];
  }

  /// Smallest / largest raw value binned into bin b of feature f.
  double bin_min(std::size_t f, std::size_t b) const {
    return bin_min_[f][b];
  }
  double bin_max(std::size_t f, std::size_t b) const {
    return bin_max_[f][b];
  }

  /// Split threshold between non-empty bins lo < hi of feature f: the
  /// midpoint of the last value of lo and the first value of hi.  Every
  /// value coded <= lo compares <= threshold and every value coded >= hi
  /// compares > threshold, so `x <= t` at predict time reproduces the
  /// training-time code partition.
  double split_threshold(std::size_t f, std::size_t lo, std::size_t hi) const {
    return 0.5 * (bin_max_[f][lo] + bin_min_[f][hi]);
  }

  /// Cheap column-subset copy (no re-sorting / re-quantiling): the
  /// attribute-sweep path bins the full table once and derives each
  /// feature subset from the codes.
  BinnedDataset select_features(std::span<const std::size_t> features) const;

  /// Approximate resident size of the code table and bin edges.
  std::size_t memory_bytes() const;

 private:
  BinnedDataset() = default;

  std::size_t rows_ = 0;
  std::size_t max_bins_used_ = 1;
  std::vector<std::size_t> bins_;            // per feature
  std::vector<std::uint8_t> codes_;          // column-major: f * rows_ + i
  std::vector<std::vector<double>> bin_min_; // per feature, per bin
  std::vector<std::vector<double>> bin_max_;
};

/// Dense class-count histogram of one feature over a sample multiset:
/// out[bin * num_classes + c] accumulates how many of `samples` (row
/// indices into the binned matrix; duplicates allowed) fall into `bin`
/// with label c.  `out` must be zeroed and sized
/// num_bins(feature) * num_classes.  Counts are integral, so histograms
/// over disjoint sample sets add exactly: hist(parent) == hist(left) +
/// hist(right) bin-for-bin — the identity behind the subtraction trick.
void accumulate_class_hist(const BinnedDataset& binned, std::size_t feature,
                           std::span<const std::size_t> samples,
                           std::span<const int> labels,
                           std::size_t num_classes, std::span<double> out);

/// Regression variant: out[bin * 3 + {0,1,2}] accumulates count, sum and
/// sum of squares of `targets` per bin.  `out` must be zeroed and sized
/// num_bins(feature) * 3.
void accumulate_value_hist(const BinnedDataset& binned, std::size_t feature,
                           std::span<const std::size_t> samples,
                           std::span<const double> targets,
                           std::span<double> out);

}  // namespace xdmodml::ml
