// Abstract classifier / regressor interfaces.
//
// All models in this library share the same contract: `fit` on a feature
// matrix plus targets, then `predict_proba` row-by-row.  `predict` defaults
// to the argmax of `predict_proba`, which keeps probability-threshold
// analyses (Figures 1–4 of the paper) uniform across SVM, random forest and
// naive Bayes.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "util/matrix.hpp"

namespace xdmodml::ml {

/// A classification result with calibrated-ish class probabilities.
struct Prediction {
  int label = -1;          ///< argmax class
  double probability = 0;  ///< probability of the argmax class
};

/// Interface for multiclass probabilistic classifiers.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on rows of X with labels in [0, num_classes).
  virtual void fit(const Matrix& X, std::span<const int> y,
                   int num_classes) = 0;

  /// Per-class probabilities for one feature row (sums to 1).
  virtual std::vector<double> predict_proba(
      std::span<const double> x) const = 0;

  /// Argmax class for one feature row.
  virtual int predict(std::span<const double> x) const;

  /// Predicted class + its probability.  Default: argmax of
  /// predict_proba.  Overrides must keep the label consistent with the
  /// probability vector — the paper's threshold workflow gates on the
  /// *reported* class's probability, so the pair must agree.
  virtual Prediction predict_with_probability(
      std::span<const double> x) const;

  /// Batched inference over the rows of X (row-major feature matrix),
  /// chunked across the process-wide thread pool.  Trained models are
  /// immutable, so per-row prediction is const-thread-safe; results are
  /// identical to the serial row-by-row loop regardless of scheduling.
  /// Safe to call from a pool worker (nested dispatch runs inline).
  /// Virtual so models with a fused batch path (the SVM's compiled
  /// inference plan sweeps blocks of queries against one shared
  /// support-vector pool) can override; overrides must return the same
  /// labels as the default per-row loop.
  virtual std::vector<int> predict_batch(const Matrix& X) const;
  virtual std::vector<std::vector<double>> predict_proba_batch(
      const Matrix& X) const;
  virtual std::vector<Prediction> predict_batch_with_probability(
      const Matrix& X) const;

  virtual int num_classes() const = 0;
};

/// Interface for regressors (used by the app-kernel wall-time study).
class Regressor {
 public:
  virtual ~Regressor() = default;
  virtual void fit(const Matrix& X, std::span<const double> y) = 0;
  virtual double predict(std::span<const double> x) const = 0;
  /// Batched inference on the shared thread pool (see Classifier).
  std::vector<double> predict_batch(const Matrix& X) const;
};

}  // namespace xdmodml::ml
