// Model-quality metrics: confusion matrices, accuracy, and the paper's
// probability-threshold analyses.
//
// Figure 1/3/4 of the paper plot, against a probability threshold t, the
// fraction of jobs whose top-class probability meets t ("classified") and
// the fraction that meet t *and* are correct ("correctly classified").
// Figure 2 plots the ROC-like curve of Equation 1:
//
//   (x, y) = ( Σ(P_t ∧ C_correct) / N_correct ,
//              Σ(P_t ∧ C_incorrect) / N_incorrect )
//
// where P_t marks predictions whose probability meets the threshold and
// C_correct / C_incorrect mark correct / incorrect predictions.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "ml/classifier.hpp"

namespace xdmodml::ml {

/// Dense multiclass confusion matrix; rows = actual, cols = predicted.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes);

  void add(int actual, int predicted);

  std::size_t num_classes() const { return n_; }
  std::size_t count(int actual, int predicted) const;
  std::size_t total() const { return total_; }
  std::size_t correct() const;

  double accuracy() const;

  /// Recall of one class: diag / row-sum (0 when the class is absent).
  double recall(int cls) const;

  /// Precision of one class: diag / col-sum (0 when never predicted).
  double precision(int cls) const;

  /// Row sums (actual class totals).
  std::vector<std::size_t> actual_totals() const;

  /// Renders in the paper's Table 2 style: one row per class, the correct
  /// count in parentheses, then each nonzero off-diagonal "NAME (count)".
  std::string render_paper_style(
      const std::vector<std::string>& class_names) const;

  /// Renders a dense numeric grid.
  std::string render_grid(const std::vector<std::string>& class_names) const;

 private:
  std::size_t index(int actual, int predicted) const;

  std::size_t n_ = 0;
  std::size_t total_ = 0;
  std::vector<std::size_t> counts_;
};

/// Builds a confusion matrix from parallel actual/predicted vectors.
ConfusionMatrix build_confusion(std::span<const int> actual,
                                std::span<const int> predicted,
                                std::size_t num_classes);

/// Fraction of equal entries; requires equal non-zero lengths.
double accuracy(std::span<const int> actual, std::span<const int> predicted);

/// One point of a threshold-sweep analysis.
struct ThresholdPoint {
  double threshold = 0.0;
  double classified_fraction = 0.0;  ///< P(top-prob >= t)
  double correct_fraction = 0.0;     ///< P(top-prob >= t and correct)
  double eq1_x = 0.0;  ///< Σ(P_t ∧ correct) / N_correct   (Equation 1)
  double eq1_y = 0.0;  ///< Σ(P_t ∧ incorrect) / N_incorrect
};

/// Sweeps thresholds (descending, as in Figure 2: 1.0 down to 0.05 in
/// steps of 0.05 by default) over predictions with probabilities.
/// For unlabeled pools (Figures 3/4's Uncategorized/NA data), pass an
/// empty `actual`: correct_fraction and the Eq.-1 coordinates are then 0.
std::vector<ThresholdPoint> threshold_sweep(
    std::span<const Prediction> predictions, std::span<const int> actual,
    std::span<const double> thresholds);

/// The paper's default grid: 1.00, 0.95, ..., 0.05.
std::vector<double> default_threshold_grid();

/// Regression metrics for the app-kernel study.
double mean_squared_error(std::span<const double> actual,
                          std::span<const double> predicted);
double mean_absolute_error(std::span<const double> actual,
                           std::span<const double> predicted);
double r_squared(std::span<const double> actual,
                 std::span<const double> predicted);

}  // namespace xdmodml::ml
